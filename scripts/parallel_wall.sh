#!/bin/sh
# parallel_wall.sh — measure the full-protocol `all` wall clock at
# several worker counts and emit a JSON fragment in BENCH_NNN.json's
# ci_measured format.
#
# Usage: scripts/parallel_wall.sh [output.json]
#
# This is the measurement ROADMAP's "measure the multi-core parallel
# win" item asks for: the reference container exposes one core, so the
# committed BENCH_005.json carries a modeled floor; CI runs this script
# on GitHub's multi-core runners and uploads the measured figure with
# the bench-point artifact. Fold fresh runner numbers back into
# BENCH_005.json's ci_measured block when they land.
set -eu
out="${1:-parallel_wall.json}"

go build -o /tmp/squeezyctl-bench ./cmd/squeezyctl

measure() {
    w="$1"
    best=""
    for _ in 1 2 3; do
        start=$(date +%s%N)
        /tmp/squeezyctl-bench -format json -parallel "$w" -o /dev/null all
        end=$(date +%s%N)
        ms=$(( (end - start) / 1000000 ))
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best="$ms"; fi
    done
    echo "$best"
}

cores=$(nproc 2>/dev/null || echo 1)
w1=$(measure 1)
w8=$(measure 8)

cat > "$out" <<EOF
{
  "ci_measured": {
    "note": "best-of-3 wall clock of 'squeezyctl -format json all' per worker count",
    "host_cores": $cores,
    "workers_1_s": $(awk "BEGIN{printf \"%.2f\", $w1/1000}"),
    "workers_8_s": $(awk "BEGIN{printf \"%.2f\", $w8/1000}")
  }
}
EOF
echo "wrote $out (workers_1=${w1}ms workers_8=${w8}ms on $cores cores)" >&2
