#!/bin/sh
# bench_json.sh — run the full-protocol experiment benchmark once and
# emit one JSON point of the perf trajectory (the BENCH_NNN.json files).
#
# Usage: scripts/bench_json.sh [output.json]
#
# One iteration per registered experiment (-benchtime 1x) keeps the job
# cheap while still timing the exact protocol the paper tables use; the
# point records ns/op and allocs/op per experiment plus their geomeans.
# Compare two points (e.g. a PR's base and head) with any JSON diff;
# per-experiment speedup is before_ns / after_ns.
set -eu
out="${1:-bench_point.json}"

go test -bench BenchmarkExperiments -benchtime 1x -benchmem -run '^$' . |
awk -v out="$out" '
  BEGIN { n = 0 }
  /^BenchmarkExperiments\// {
    split($1, parts, "/")
    name = parts[2]
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    names[n] = name; ns[n] = $3
    # With -benchmem the line ends "... X B/op Y allocs/op"; find Y.
    allocs[n] = ""
    for (i = 4; i <= NF; i++)
      if ($i == "allocs/op") allocs[n] = $(i-1)
    n++
  }
  END {
    if (n == 0) { print "bench_json.sh: no benchmark output parsed" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmark\": \"BenchmarkExperiments\",\n  \"protocol\": \"full\",\n  \"benchtime\": \"1x\",\n  \"ns_per_op\": {\n" > out
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", names[i], ns[i], (i < n-1 ? "," : "") > out
    printf "  },\n  \"allocs_per_op\": {\n" > out
    for (i = 0; i < n; i++)
      printf "    \"%s\": %s%s\n", names[i], (allocs[i] == "" ? "null" : allocs[i]), (i < n-1 ? "," : "") > out
    printf "  },\n" > out
    glog = 0; galloc = 0; gac = 0
    for (i = 0; i < n; i++) {
      glog += log(ns[i])
      if (allocs[i] != "" && allocs[i] > 0) { galloc += log(allocs[i]); gac++ }
    }
    printf "  \"geomean_ns\": %.0f,\n", exp(glog / n) > out
    if (gac > 0)
      printf "  \"geomean_allocs\": %.0f\n", exp(galloc / gac) > out
    else
      printf "  \"geomean_allocs\": null\n" > out
    printf "}\n" > out
  }'
echo "wrote $out" >&2
