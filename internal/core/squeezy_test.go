package core

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func newRig(t *testing.T, n int, partBytes, sharedBytes, hostCap int64) (*Manager, *guestos.Kernel, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler()
	vm := vmm.New("vm0", s, costmodel.Default(), hostmem.New(hostCap), 4)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes:           units.BlockSize,
		MovableBytes:        0,
		KernelResidentBytes: 8 * units.MiB,
	})
	m := NewManager(k, Config{PartitionBytes: partBytes, Concurrency: n, SharedBytes: sharedBytes})
	return m, k, s
}

func TestBootState(t *testing.T) {
	m, k, _ := newRig(t, 4, 256*units.MiB, 128*units.MiB, 0)
	if got := m.CountState(PartEmpty); got != 4 {
		t.Fatalf("empty partitions = %d", got)
	}
	// Shared partition is pre-populated at boot.
	if m.Shared == nil || m.Shared.NrOnline() == 0 {
		t.Fatal("shared partition not populated at boot")
	}
	if k.SharedZone != m.Shared {
		t.Fatal("kernel file path not wired to shared partition")
	}
	// Private partitions consume no host memory at boot (zone structs
	// only, §4.1).
	wantCommit := units.BytesToPages(units.BlockSize) + units.BytesToPages(128*units.MiB)
	if got := k.VM.CommittedPages(); got != wantCommit {
		t.Fatalf("boot commit = %d pages, want %d (boot+shared only)", got, wantCommit)
	}
}

func TestPlugPopulatesPartitions(t *testing.T) {
	m, _, s := newRig(t, 4, 256*units.MiB, 0, 0)
	var plugged int
	m.Plug(2, func(n int) { plugged = n })
	s.Run()
	if plugged != 2 {
		t.Fatalf("plugged = %d", plugged)
	}
	if m.CountState(PartFree) != 2 || m.CountState(PartEmpty) != 2 {
		t.Fatalf("states: free=%d empty=%d", m.CountState(PartFree), m.CountState(PartEmpty))
	}
}

func TestPlugLatencyBand(t *testing.T) {
	m, _, s := newRig(t, 4, 768*units.MiB, 0, 0)
	start := s.Now()
	var took sim.Duration
	m.Plug(1, func(int) { took = s.Now().Sub(start) })
	s.Run()
	// §6.2.1: 35-45ms for all function sizes.
	if took < 20*sim.Millisecond || took > 60*sim.Millisecond {
		t.Fatalf("plug latency %v outside band", took)
	}
}

func TestAttachImmediateWhenFree(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	var got *Partition
	m.Attach(p, func(part *Partition) { got = part })
	if got == nil {
		t.Fatal("attach did not complete synchronously with a free partition")
	}
	if got.State() != PartReserved || got.Users() != 1 {
		t.Fatalf("partition state=%v users=%d", got.State(), got.Users())
	}
	if p.AssignedZone != got.Zone {
		t.Fatal("process not confined to partition zone")
	}
}

func TestAttachWaitsForPlug(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 0, 0)
	p := k.Spawn("f1")
	attached := false
	m.Attach(p, func(*Partition) { attached = true })
	if attached {
		t.Fatal("attach completed with no populated partition")
	}
	if m.WaitqueueLen() != 1 {
		t.Fatalf("waitqueue = %d", m.WaitqueueLen())
	}
	m.Plug(1, func(int) {})
	s.Run()
	if !attached {
		t.Fatal("waiter not woken by plug")
	}
	if m.WaitqueueLen() != 0 {
		t.Fatal("waitqueue not drained")
	}
}

func TestWaitqueueFIFO(t *testing.T) {
	m, k, s := newRig(t, 4, 256*units.MiB, 0, 0)
	var order []int
	for i := 1; i <= 3; i++ {
		i := i
		m.Attach(k.Spawn("f"), func(*Partition) { order = append(order, i) })
	}
	m.Plug(3, func(int) {})
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wake order = %v", order)
	}
}

func TestExitFreesPartition(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	var part *Partition
	m.Attach(p, func(pt *Partition) { part = pt })
	k.TouchAnon(p, 100*units.MiB, guestos.HugeOrder)
	k.Exit(p)
	if part.State() != PartFree {
		t.Fatalf("partition state after exit = %v", part.State())
	}
	if part.Zone.NrAllocated() != 0 {
		t.Fatal("partition not empty after exit")
	}
	if m.FreeReclaimable() != 1 {
		t.Fatalf("reclaimable = %d", m.FreeReclaimable())
	}
}

func TestForkRefcounting(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	var part *Partition
	m.Attach(p, func(pt *Partition) { part = pt })
	c1 := k.Fork(p, "w1")
	c2 := k.Fork(c1, "w2")
	if part.Users() != 3 {
		t.Fatalf("users = %d, want 3", part.Users())
	}
	k.Exit(c2)
	k.Exit(p)
	if part.State() != PartReserved {
		t.Fatal("partition freed while a member process lives")
	}
	k.Exit(c1)
	if part.State() != PartFree || part.Users() != 0 {
		t.Fatalf("state=%v users=%d after last exit", part.State(), part.Users())
	}
}

func TestUnplugInstantNoMigrationNoZeroing(t *testing.T) {
	m, k, s := newRig(t, 4, 512*units.MiB, 0, 0)
	m.Plug(2, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	m.Attach(p, func(*Partition) {})
	k.TouchAnon(p, 400*units.MiB, guestos.HugeOrder)
	k.Exit(p)
	var res UnplugResult
	m.Unplug(1, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 512*units.MiB {
		t.Fatalf("reclaimed = %s", units.HumanBytes(res.ReclaimedBytes))
	}
	if res.Breakdown.Get(vmm.StepMigration) != 0 || res.Breakdown.Get(vmm.StepZeroing) != 0 {
		t.Fatalf("squeezy unplug migrated/zeroed: %v", res.Breakdown)
	}
	// §6.1.1: 2 GiB in ~127ms scales to ~32ms for 512 MiB; allow slack.
	if ms := res.Latency.Milliseconds(); ms > 80 {
		t.Fatalf("squeezy unplug took %.0fms", ms)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnplugReleasesHostMemory(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	m.Attach(p, func(*Partition) {})
	k.TouchAnon(p, 200*units.MiB, guestos.HugeOrder)
	popBefore := k.VM.PopulatedPages()
	commitBefore := k.VM.CommittedPages()
	k.Exit(p)
	m.Unplug(1, func(UnplugResult) {})
	s.Run()
	if released := popBefore - k.VM.PopulatedPages(); released != units.BytesToPages(200*units.MiB) {
		t.Fatalf("released %d pages, want the touched 200 MiB", released)
	}
	if commitBefore-k.VM.CommittedPages() != units.BytesToPages(256*units.MiB) {
		t.Fatal("commit not returned")
	}
}

func TestUnplugOnlyTakesFreePartitions(t *testing.T) {
	m, k, s := newRig(t, 3, 256*units.MiB, 0, 0)
	m.Plug(3, func(int) {})
	s.Run()
	busy := k.Spawn("busy")
	m.Attach(busy, func(*Partition) {})
	k.TouchAnon(busy, 100*units.MiB, guestos.HugeOrder)
	var res UnplugResult
	m.Unplug(3, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 2*256*units.MiB {
		t.Fatalf("reclaimed = %s, want exactly the 2 free partitions", units.HumanBytes(res.ReclaimedBytes))
	}
	if busy.AnonPages() == 0 {
		t.Fatal("running instance lost memory")
	}
}

func TestReplugAfterUnplugRepopulates(t *testing.T) {
	m, k, s := newRig(t, 1, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	m.Attach(p, func(*Partition) {})
	k.TouchAnon(p, 128*units.MiB, guestos.HugeOrder)
	k.Exit(p)
	m.Unplug(1, func(UnplugResult) {})
	s.Run()
	if k.VM.PopulatedPages() <= units.BytesToPages(8*units.MiB) { // kernel only
		// ok: partition frames released
	} else {
		t.Fatalf("frames not released: %d", k.VM.PopulatedPages())
	}
	// Plug again; a new instance must re-fault its memory (fresh host
	// frames).
	m.Plug(1, func(int) {})
	s.Run()
	q := k.Spawn("f2")
	m.Attach(q, func(*Partition) {})
	popBefore := k.VM.PopulatedPages()
	k.TouchAnon(q, 64*units.MiB, guestos.HugeOrder)
	if k.VM.PopulatedPages()-popBefore != units.BytesToPages(64*units.MiB) {
		t.Fatal("re-touch after replug did not repopulate host frames")
	}
}

func TestAnonNeverLeavesPartition(t *testing.T) {
	m, k, s := newRig(t, 2, 256*units.MiB, 128*units.MiB, 0)
	m.Plug(2, func(int) {})
	s.Run()
	p1 := k.Spawn("f1")
	p2 := k.Spawn("f2")
	var pt1, pt2 *Partition
	m.Attach(p1, func(pt *Partition) { pt1 = pt })
	m.Attach(p2, func(pt *Partition) { pt2 = pt })
	k.TouchAnon(p1, 200*units.MiB, guestos.HugeOrder)
	k.TouchAnon(p2, 200*units.MiB, guestos.HugeOrder)
	if pt1.Zone.NrAllocated() != units.BytesToPages(200*units.MiB) {
		t.Fatal("p1 anon not confined")
	}
	if pt2.Zone.NrAllocated() != units.BytesToPages(200*units.MiB) {
		t.Fatal("p2 anon not confined")
	}
	// File pages land in the shared partition, not the private ones.
	f := k.File("deps", 64*units.MiB)
	k.TouchFile(p1, f, 64*units.MiB)
	if m.Shared.NrAllocated() != units.BytesToPages(64*units.MiB) {
		t.Fatal("file pages not in shared partition")
	}
}

func TestPartitionOverflowTriggersOOM(t *testing.T) {
	m, k, s := newRig(t, 1, 256*units.MiB, 0, 0)
	m.Plug(1, func(int) {})
	s.Run()
	p := k.Spawn("f1")
	m.Attach(p, func(*Partition) {})
	if _, ok := k.TouchAnon(p, 512*units.MiB, guestos.HugeOrder); ok {
		t.Fatal("overflow allocation should fail")
	}
	// The OOM killer reaps the process; the partition then recycles.
	k.Exit(p)
	if m.FreeReclaimable() != 1 {
		t.Fatal("partition not reclaimable after OOM kill")
	}
}

func TestPlugRespectsHostBudget(t *testing.T) {
	// Host capacity: boot (128 MiB) + 1 partition only.
	m, _, s := newRig(t, 4, 256*units.MiB, 0, units.BlockSize+256*units.MiB)
	var plugged int
	m.Plug(3, func(n int) { plugged = n })
	s.Run()
	if plugged != 1 {
		t.Fatalf("plugged = %d, want 1 (budget-limited)", plugged)
	}
}

func TestBatchedExitsAblation(t *testing.T) {
	m, k, s := newRig(t, 4, 256*units.MiB, 0, 0)
	m.Plug(4, func(int) {})
	s.Run()
	for i := 0; i < 4; i++ {
		p := k.Spawn("f")
		m.Attach(p, func(*Partition) {})
		k.Exit(p)
	}
	var res UnplugResult
	m.Unplug(4, func(r UnplugResult) { res = r })
	s.Run()
	unbatched := res.Latency

	// Same again, with batching.
	m2, k2, s2 := newRig(t, 4, 256*units.MiB, 0, 0)
	k2.VM.Cost.BatchUnplugExits = true
	m2.Plug(4, func(int) {})
	s2.Run()
	for i := 0; i < 4; i++ {
		p := k2.Spawn("f")
		m2.Attach(p, func(*Partition) {})
		k2.Exit(p)
	}
	var res2 UnplugResult
	m2.Unplug(4, func(r UnplugResult) { res2 = r })
	s2.Run()
	if res2.Latency >= unbatched {
		t.Fatalf("batched %v not faster than unbatched %v", res2.Latency, unbatched)
	}
}
