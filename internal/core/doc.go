// Package core implements Squeezy, the paper's contribution: an
// extension to the guest OS memory manager that partitions guest memory
// between function instances so that terminated instances' memory can
// be hot-unplugged instantly — no page migrations, no zeroing.
//
// The manager owns:
//
//   - N private partition zones, created empty at boot (the concurrency
//     factor), each rated at the function's user-configured memory
//     limit (§4.1);
//   - one shared partition backing file mappings (runtime and language
//     dependencies), pre-populated at boot (§3);
//   - the syscall interface that assigns populated partitions to
//     processes, with a waitqueue decoupling plug events from
//     assignment requests;
//   - the partition_users reference counting across fork/exit;
//   - the partition-aware unplug path that offlines empty partitions
//     without touching a single page, and the allocator hot(un)plug-
//     awareness that skips zeroing.
package core
