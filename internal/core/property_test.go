package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"squeezy/internal/guestos"
	"squeezy/internal/units"
)

// TestSqueezyLifecycleProperty drives random plug / attach / touch /
// exit / unplug sequences through the manager and validates the
// paper's invariants at every step:
//
//   - a process's anonymous pages never leave its partition,
//   - partition_users hits zero exactly when all member processes exit,
//   - an unplugged partition is empty and its host frames are released,
//   - partition states and counts remain consistent.
func TestSqueezyLifecycleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x5eed))
		m, k, s := newRig(t, 6, 256*units.MiB, 128*units.MiB, 0)
		type inst struct {
			proc *guestos.Process
			part *Partition
		}
		var live []inst
		pending := 0
		ok := true
		for step := 0; step < 200 && ok; step++ {
			switch op := rng.IntN(10); {
			case op < 3: // plug 1-2 partitions
				m.Plug(1+rng.IntN(2), func(int) {})
				s.Run()
			case op < 6: // spawn + attach (may park on the waitqueue)
				p := k.Spawn("f")
				pending++
				m.Attach(p, func(pt *Partition) {
					pending--
					live = append(live, inst{p, pt})
					if pt.State() != PartReserved {
						ok = false
					}
				})
			case op < 8 && len(live) > 0: // touch within the limit
				in := live[rng.IntN(len(live))]
				bytes := int64(rng.IntN(100)+1) * units.MiB
				if _, fit := k.TouchAnon(in.proc, bytes, guestos.HugeOrder); !fit {
					// Partition overflow: the OOM killer reaps it.
					k.Exit(in.proc)
					for i := range live {
						if live[i].proc == in.proc {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			case op < 9 && len(live) > 0: // instance terminates
				i := rng.IntN(len(live))
				in := live[i]
				live = append(live[:i], live[i+1:]...)
				k.Exit(in.proc)
				// The partition drained; it is either free or already
				// recycled to a parked waiter (never stuck mid-state).
				if in.part.Zone.NrAllocated() != 0 {
					ok = false
				}
				if in.part.State() == PartEmpty {
					ok = false // exit cannot unplug memory by itself
				}
			default: // unplug whatever is free
				m.Unplug(1+rng.IntN(2), func(r UnplugResult) {
					if r.Breakdown.Get("migration") != 0 || r.Breakdown.Get("zeroing") != 0 {
						ok = false
					}
				})
				s.Run()
			}
			// Confinement invariant.
			for _, in := range live {
				if in.proc.AssignedZone != in.part.Zone {
					ok = false
				}
			}
			// State count sanity.
			total := m.CountState(PartEmpty) + m.CountState(PartFree) + m.CountState(PartReserved)
			if total != 6 {
				ok = false
			}
			if m.CountState(PartReserved) != len(live) {
				ok = false
			}
		}
		s.Run()
		if !ok {
			return false
		}
		// Drain: exits free partitions, which serve parked attaches
		// (appending to live); plugs cover the case of no live
		// instances. Every waiter must be served eventually.
		for round := 0; round < 100 && pending > 0; round++ {
			if len(live) > 0 {
				in := live[0]
				live = live[1:]
				k.Exit(in.proc)
			} else {
				m.Plug(6, func(int) {})
				s.Run()
			}
		}
		if pending != 0 {
			return false // a waiter starved
		}
		for _, in := range live {
			k.Exit(in.proc)
		}
		if m.CountState(PartReserved) != 0 {
			return false
		}
		m.Unplug(6, func(UnplugResult) {})
		s.Run()
		return k.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestWaitqueueNeverStarves checks that every parked Attach is
// eventually served once enough partitions are plugged.
func TestWaitqueueNeverStarves(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xfeed))
		m, k, s := newRig(t, 8, 128*units.MiB, 0, 0)
		served := 0
		want := 8
		for i := 0; i < want; i++ {
			m.Attach(k.Spawn("f"), func(*Partition) { served++ })
			if rng.IntN(2) == 0 {
				m.Plug(1, func(int) {})
			}
		}
		// Top up: plug everything remaining.
		m.Plug(8, func(int) {})
		s.Run()
		return served == want && m.WaitqueueLen() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
