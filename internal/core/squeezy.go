package core

import (
	"fmt"

	"squeezy/internal/guestos"
	"squeezy/internal/mem"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

// CPU accounting classes.
const (
	GuestClass = "squeezy"
	HostClass  = "squeezy-vmm"
)

// PartitionState is the lifecycle state of a Squeezy partition.
type PartitionState int

// Partition states.
const (
	// PartEmpty: zone struct exists, no memory plugged.
	PartEmpty PartitionState = iota
	// PartFree: memory plugged and onlined, no instance assigned;
	// available for Attach or reclaimable by Unplug.
	PartFree
	// PartReserved: assigned to a live instance (partition_users > 0).
	PartReserved
)

func (s PartitionState) String() string {
	switch s {
	case PartEmpty:
		return "empty"
	case PartFree:
		return "free"
	case PartReserved:
		return "reserved"
	default:
		return fmt.Sprintf("PartitionState(%d)", int(s))
	}
}

// Partition is one fixed-size Squeezy partition.
type Partition struct {
	ID    int
	Zone  *mem.Zone
	state PartitionState
	users int // partition_users: processes assigned to this partition
}

// State returns the partition's lifecycle state.
func (p *Partition) State() PartitionState { return p.state }

// Users returns the partition_users reference count.
func (p *Partition) Users() int { return p.users }

// UnplugResult reports one Squeezy unplug request, shaped like the
// virtio-mem result for side-by-side comparison.
type UnplugResult struct {
	RequestedBytes int64
	ReclaimedBytes int64
	Breakdown      *stats.Breakdown
	Latency        sim.Duration
}

// Config sizes a Squeezy manager.
type Config struct {
	// PartitionBytes is the rated size of each private partition — the
	// function's user-set memory limit (rounded up to 128 MiB blocks).
	PartitionBytes int64
	// Concurrency is N, the maximum concurrent instances (§4.1).
	Concurrency int
	// SharedBytes sizes the shared partition for file-backed pages;
	// it is plugged and populated at boot. Zero disables it (file pages
	// then fall back to ZONE_MOVABLE).
	SharedBytes int64
}

// FaultHooks degrades the manager's device path for fault-injection
// windows: a non-zero ReclaimStall delays every command completion
// (the command occupies the device queue the whole time), and a
// ReclaimFraction below 1 caps how many partitions an unplug attempts.
type FaultHooks interface {
	ReclaimStall() sim.Duration
	ReclaimFraction() float64
}

// Manager is the Squeezy memory manager extension of one guest kernel.
type Manager struct {
	K   *guestos.Kernel
	Cfg Config

	// Obs, when non-nil, records a span per plug/unplug command;
	// recording never alters the command.
	Obs *obs.Recorder

	// Faults, when non-nil, injects stalled and partial commands.
	Faults FaultHooks

	Shared *mem.Zone
	parts  []*Partition
	byZone map[*mem.Zone]*Partition

	// waitq holds Attach requests that arrived before a populated
	// partition was available (§4.1, "Squeezy waitqueue").
	waitq []waiter

	busy    bool
	pending []func()
}

type waiter struct {
	proc *guestos.Process
	fn   func(*Partition)
}

// NewManager creates the N partition zones and the shared partition at
// boot time and hooks the kernel's fork/exit paths. The shared
// partition is plugged and populated immediately (its host commit must
// succeed); private partitions start empty.
func NewManager(k *guestos.Kernel, cfg Config) *Manager {
	if cfg.Concurrency <= 0 {
		panic("core: concurrency factor must be positive")
	}
	if cfg.PartitionBytes <= 0 {
		panic("core: partition size must be positive")
	}
	m := &Manager{K: k, Cfg: cfg, byZone: make(map[*mem.Zone]*Partition)}
	partBytes := units.AlignUp(cfg.PartitionBytes, units.BlockSize)
	for i := 0; i < cfg.Concurrency; i++ {
		z := k.AddZone(fmt.Sprintf("squeezy%d", i), mem.ZoneSqueezyPrivate, partBytes)
		p := &Partition{ID: i, Zone: z, state: PartEmpty}
		m.parts = append(m.parts, p)
		m.byZone[z] = p
	}
	if cfg.SharedBytes > 0 {
		shBytes := units.AlignUp(cfg.SharedBytes, units.BlockSize)
		m.Shared = k.AddZone("squeezy-shared", mem.ZoneSqueezyShared, shBytes)
		if !k.VM.Commit(units.BytesToPages(shBytes)) {
			panic("core: host cannot back the shared partition")
		}
		for i := 0; i < m.Shared.Blocks(); i++ {
			m.Shared.OnlineBlock(i)
		}
		k.SharedZone = m.Shared
	}
	k.OnProcExit = m.onExit
	k.OnProcFork = m.onFork
	return m
}

// Partitions returns all partitions in ID order.
func (m *Manager) Partitions() []*Partition { return m.parts }

// CountState returns how many partitions are in the given state.
func (m *Manager) CountState(s PartitionState) int {
	n := 0
	for _, p := range m.parts {
		if p.state == s {
			n++
		}
	}
	return n
}

// PartitionBlocks returns blocks per private partition.
func (m *Manager) PartitionBlocks() int64 {
	return units.BytesToBlocks(units.AlignUp(m.Cfg.PartitionBytes, units.BlockSize))
}

func (m *Manager) enqueue(fn func()) {
	if m.busy {
		m.pending = append(m.pending, fn)
		return
	}
	m.busy = true
	fn()
}

func (m *Manager) finish() {
	if len(m.pending) > 0 {
		next := m.pending[0]
		m.pending = m.pending[1:]
		next()
		return
	}
	m.busy = false
}

// deliver completes a command, imposing the injected stall first; the
// stall happens inside the device's busy window, so queued commands
// wait behind it and the runtime's ReclaimDrainTimeout can fire.
func (m *Manager) deliver(fn func()) {
	if m.Faults != nil {
		if stall := m.Faults.ReclaimStall(); stall > 0 {
			m.K.VM.Sched.After(stall, fn)
			return
		}
	}
	fn()
}

// Plug populates nParts empty partitions with hotplugged memory
// (triggered by the hypervisor on a scale-up event, Figure 4 step 2).
// onDone receives how many partitions were populated once the memory is
// online; waiting Attach calls are then served in FIFO order.
func (m *Manager) Plug(nParts int, onDone func(plugged int)) {
	m.enqueue(func() {
		vm := m.K.VM
		var plugged []*Partition
		for _, p := range m.parts {
			if len(plugged) >= nParts {
				break
			}
			if p.state != PartEmpty {
				continue
			}
			if !vm.Commit(p.Zone.Pages()) {
				break
			}
			for i := 0; i < p.Zone.Blocks(); i++ {
				p.Zone.OnlineBlock(i)
			}
			plugged = append(plugged, p)
		}
		blocks := int64(0)
		for _, p := range plugged {
			blocks += int64(p.Zone.Blocks())
		}
		steps := []vmm.Step{
			{Pool: vm.HostThreads, Work: vm.Cost.PlugHostFixed, Class: HostClass, Label: vmm.StepVMExits},
			{Pool: vm.GuestReclaimPool(), Work: sim.Duration(blocks) * vm.Cost.OnlineMetaPerBlock, Class: GuestClass, Label: vmm.StepRest, Weight: vmm.KthreadWeight},
		}
		if len(plugged) > 0 {
			vm.CountExit("squeezy-plug", 1)
		}
		start := vm.Sched.Now()
		vmm.RunChain(vm.Sched, steps, func(_ *stats.Breakdown, _ sim.Duration) {
			m.deliver(func() {
				for _, p := range plugged {
					p.state = PartFree
				}
				if m.Obs != nil {
					m.Obs.Span("squeezy/plug", obs.CatMemory, start,
						obs.I("partitions", int64(len(plugged))), obs.I("blocks", blocks))
				}
				m.finish()
				m.wakeWaiters()
				onDone(len(plugged))
			})
		})
	})
}

// Attach implements the Squeezy syscall: it assigns a free populated
// partition to proc and confines the process's anonymous allocations to
// it. If no partition is available the request parks on the waitqueue
// until a Plug completes (§4.1). onAttached runs at assignment time.
func (m *Manager) Attach(proc *guestos.Process, onAttached func(*Partition)) {
	if p := m.takeFree(); p != nil {
		m.assign(p, proc)
		onAttached(p)
		return
	}
	m.waitq = append(m.waitq, waiter{proc: proc, fn: onAttached})
}

// WaitqueueLen returns the number of parked Attach requests.
func (m *Manager) WaitqueueLen() int { return len(m.waitq) }

func (m *Manager) takeFree() *Partition {
	for _, p := range m.parts {
		if p.state == PartFree {
			return p
		}
	}
	return nil
}

func (m *Manager) assign(p *Partition, proc *guestos.Process) {
	p.state = PartReserved
	p.users = 1
	proc.AssignedZone = p.Zone
}

func (m *Manager) wakeWaiters() {
	for len(m.waitq) > 0 {
		p := m.takeFree()
		if p == nil {
			return
		}
		w := m.waitq[0]
		m.waitq = m.waitq[1:]
		m.assign(p, w.proc)
		w.fn(p)
	}
}

// onFork bumps partition_users when a Squeezy process forks (§4.1,
// "Handling fork()").
func (m *Manager) onFork(parent, child *guestos.Process) {
	if p, ok := m.byZone[parent.AssignedZone]; ok {
		p.users++
	}
}

// onExit drops partition_users on process exit; at zero the partition
// becomes free, hence reclaimable by the unplug path.
func (m *Manager) onExit(proc *guestos.Process) {
	p, ok := m.byZone[proc.AssignedZone]
	if !ok {
		return
	}
	if p.users <= 0 {
		panic(fmt.Sprintf("core: partition %d users underflow", p.ID))
	}
	p.users--
	if p.users == 0 {
		if got := p.Zone.NrAllocated(); got != 0 {
			panic(fmt.Sprintf("core: partition %d freed with %d pages still allocated", p.ID, got))
		}
		p.state = PartFree
		// A freed partition can serve a parked Attach directly —
		// recycling it without an unplug/replug round trip.
		m.wakeWaiters()
	}
}

// Unplug reclaims up to nParts free partitions instantly: their blocks
// are guaranteed empty, so offlining involves zero migrations and zero
// zeroing (Figure 4 step 6). onDone receives the result once the host
// has madvise()d the frames away.
func (m *Manager) Unplug(nParts int, onDone func(UnplugResult)) {
	m.enqueue(func() {
		vm := m.K.VM
		if m.Faults != nil {
			if f := m.Faults.ReclaimFraction(); f < 1 {
				// Partial command: the degraded device attempts only a
				// fraction of the request (possibly none of it).
				nParts = int(float64(nParts) * f)
			}
		}
		var victims []*Partition
		for _, p := range m.parts {
			if len(victims) >= nParts {
				break
			}
			if p.state == PartFree {
				victims = append(victims, p)
			}
		}
		var blocks int64
		for _, p := range victims {
			for i := 0; i < p.Zone.Blocks(); i++ {
				if occ := p.Zone.IsolateBlock(i); occ != 0 {
					panic(fmt.Sprintf("core: free partition %d block %d has %d occupied pages", p.ID, i, occ))
				}
				p.Zone.FinishOffline(i)
				blocks++
			}
			p.state = PartEmpty
		}
		exits := blocks
		if vm.Cost.BatchUnplugExits && exits > 1 {
			exits = 1
		}
		steps := []vmm.Step{
			// Squeezy's allocator is hot(un)plug-aware: zeroing is
			// skipped entirely; the memory is zeroed by whoever
			// allocates it next, host or guest (§4.1).
			{Pool: vm.GuestReclaimPool(), Work: sim.Duration(blocks) * vm.Cost.OfflineMetaPerBlockSqueezy, Class: GuestClass, Label: vmm.StepRest, Weight: vmm.KthreadWeight},
			{Pool: vm.HostThreads, Work: sim.Duration(exits) * vm.Cost.VMExitPerBlock, Class: HostClass, Label: vmm.StepVMExits},
		}
		vm.CountExit("squeezy-unplug", exits)
		reclaimed := blocks * units.BlockSize
		req := int64(nParts) * m.PartitionBlocks() * units.BlockSize
		cmdStart := vm.Sched.Now()
		vmm.RunChain(vm.Sched, steps, func(bd *stats.Breakdown, total sim.Duration) {
			m.deliver(func() {
				for _, p := range victims {
					for i := 0; i < p.Zone.Blocks(); i++ {
						start, count := p.Zone.BlockRange(i)
						m.K.ReleaseRange(start, count)
						vm.Uncommit(count)
					}
				}
				if m.Obs != nil {
					m.Obs.Span("squeezy/unplug", obs.CatMemory, cmdStart,
						obs.I("requested_bytes", req), obs.I("reclaimed_bytes", reclaimed),
						obs.I("blocks", blocks))
				}
				m.finish()
				onDone(UnplugResult{
					RequestedBytes: req,
					ReclaimedBytes: reclaimed,
					Breakdown:      bd,
					Latency:        total,
				})
			})
		})
	})
}

// FreeReclaimable reports how many partitions are immediately
// unpluggable.
func (m *Manager) FreeReclaimable() int { return m.CountState(PartFree) }

// PartitionOf returns the partition backing proc, if any.
func (m *Manager) PartitionOf(proc *guestos.Process) (*Partition, bool) {
	p, ok := m.byZone[proc.AssignedZone]
	return p, ok
}
