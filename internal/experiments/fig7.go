package experiments

import (
	"fmt"
	"math/rand/v2"

	"squeezy/internal/balloon"
	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/cpu"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/workload"
)

// Fig7Series is one method's CPU-utilization trace: per-second guest
// and host reclaim-thread utilization percentages over the experiment.
type Fig7Series struct {
	Method   string
	GuestPct []float64
	HostPct  []float64
}

// AvgGuest returns the mean guest reclaim-thread utilization.
func (s *Fig7Series) AvgGuest() float64 { return meanOf(s.GuestPct) }

// AvgHost returns the mean host reclaim-thread utilization.
func (s *Fig7Series) AvgHost() float64 { return meanOf(s.HostPct) }

// PeakHost returns the max per-second host utilization.
func (s *Fig7Series) PeakHost() float64 {
	m := 0.0
	for _, v := range s.HostPct {
		if v > m {
			m = v
		}
	}
	return m
}

// PeakGuest returns the max per-second guest utilization.
func (s *Fig7Series) PeakGuest() float64 {
	m := 0.0
	for _, v := range s.GuestPct {
		if v > m {
			m = v
		}
	}
	return m
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Fig7Result is the full figure.
type Fig7Result struct {
	Series []Fig7Series
}

// Fig7 reproduces §6.1.2 / Figure 7: with reclaim kernel threads pinned
// to a dedicated vCPU and the VMM threads to a dedicated host core,
// repeatedly reclaim (and return) 512 MiB of guest memory for 200
// seconds and sample both threads' CPU utilization once per second.
// Ballooning spikes the host thread, vanilla virtio-mem burns the guest
// vCPU on migrations, Squeezy uses almost nothing.
func Fig7(opts Options) *Fig7Result {
	return Fig7Plan(opts).runSerial(newWorld()).(*Fig7Result)
}

// Fig7Plan is the figure as a cell plan: one cell per method.
func Fig7Plan(opts Options) *Plan {
	duration := 200 * sim.Second
	if opts.Quick {
		duration = 60 * sim.Second
	}
	methods := []string{"balloon", "virtio-mem", "squeezy"}
	res := &Fig7Result{Series: make([]Fig7Series, len(methods))}
	p := &Plan{Assemble: func() Result { return res }}
	for i, method := range methods {
		i, method := i, method
		p.Stage.Cell(method, func(w *World) {
			res.Series[i] = fig7Run(w, method, duration, opts.seed())
		})
	}
	return p
}

func fig7Run(w *World, method string, duration sim.Duration, seed uint64) Fig7Series {
	const (
		vmBytes   = 16 * units.GiB
		loadBytes = 8 * units.GiB
		reclaim   = 512 * units.MiB
		period    = 10 * sim.Second
	)
	sched := w.Scheduler()
	host := hostmem.New(0)
	cost := costmodel.Default()
	vm := w.VM("fig7", cost, host, 8)
	vm.PinReclaimThreads() // dedicated guest vCPU, as in §6.1.2
	rng := rand.New(rand.NewPCG(seed, 7))

	var k *guestos.Kernel
	var sq *core.Manager
	var vdrv *virtiomem.Driver
	var bdrv *balloon.Driver
	guestClass, hostClass := "", ""

	switch method {
	case "squeezy":
		k = w.Kernel(vm, guestos.Config{BootBytes: units.BlockSize, KernelResidentBytes: 32 * units.MiB})
		n := int(vmBytes / reclaim)
		sq = core.NewManager(k, core.Config{PartitionBytes: reclaim, Concurrency: n})
		loadParts := int(loadBytes / reclaim)
		sq.Plug(loadParts+1, func(int) {}) // one spare partition cycles
		sched.Run()
		for i := 0; i < loadParts; i++ {
			h := workload.NewMemhog(k, fmt.Sprintf("hog%d", i), reclaim*3/4)
			sq.Attach(h.Proc, func(*core.Partition) {})
			h.Warmup()
		}
		guestClass, hostClass = core.GuestClass, core.HostClass
	default:
		k = w.Kernel(vm, guestos.Config{
			BootBytes: units.BlockSize, MovableBytes: vmBytes, KernelResidentBytes: 32 * units.MiB,
		})
		if method == "virtio-mem" {
			vdrv = virtiomem.New(k)
			vdrv.Plug(vmBytes, func(int64) {})
			sched.Run()
			guestClass, hostClass = virtiomem.GuestClass, virtiomem.HostClass
		} else {
			k.OnlineAllMovable()
			bdrv = balloon.New(k)
			guestClass, hostClass = balloon.GuestClass, balloon.HostClass
		}
		k.ScrambleFreeLists(k.Movable, rng)
		var hogs []*workload.Memhog
		for filled := int64(0); filled < loadBytes; filled += units.GiB {
			hogs = append(hogs, workload.NewMemhog(k, fmt.Sprintf("hog%d", len(hogs)), units.GiB))
		}
		interleavedWarmup(k, hogs)
	}

	// Reclaim/return cycle.
	var cycle func()
	cycle = func() {
		switch method {
		case "balloon":
			bdrv.Inflate(reclaim, func(balloon.InflateResult) {
				sched.After(period/2, func() { bdrv.Deflate(reclaim) })
			})
		case "virtio-mem":
			vdrv.Unplug(reclaim, func(virtiomem.UnplugResult) {
				sched.After(period/2, func() { vdrv.Plug(reclaim, func(int64) {}) })
			})
		case "squeezy":
			sq.Unplug(1, func(core.UnplugResult) {
				sched.After(period/2, func() { sq.Plug(1, func(int) {}) })
			})
		}
	}
	for t := sim.Duration(0); t < duration; t += period {
		sched.At(sched.Now().Add(t+sim.Second), cycle)
	}

	// Per-second sampling of both pinned threads.
	series := Fig7Series{Method: method}
	samplePools := func() (g, h *cpu.Pool) { return vm.GuestReclaimPool(), vm.HostThreads }
	var lastG, lastH sim.Duration
	var tick func()
	tick = func() {
		g, h := samplePools()
		curG, curH := g.Utilization(guestClass), h.Utilization(hostClass)
		series.GuestPct = append(series.GuestPct, 100*float64(curG-lastG)/float64(sim.Second))
		series.HostPct = append(series.HostPct, 100*float64(curH-lastH)/float64(sim.Second))
		lastG, lastH = curG, curH
		if sched.Now() < sim.Time(duration) {
			sched.After(sim.Second, tick)
		}
	}
	sched.After(sim.Second, tick)
	sched.RunUntil(sim.Time(duration))
	return series
}

// Table renders the figure summary (mean and peak utilization).
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:  "Figure 7: reclaim-thread CPU utilization (%) over repeated 512 MiB reclaims",
		Header: []string{"method", "guest avg", "guest peak", "host avg", "host peak"},
	}
	for _, s := range r.Series {
		t.AddRow(s.Method, f1(s.AvgGuest()), f1(s.PeakGuest()), f1(s.AvgHost()), f1(s.PeakHost()))
	}
	return t
}

func init() {
	RegisterPlan("fig7", "Figure 7: reclaim-thread CPU utilization (%) over repeated 512 MiB reclaims", Fig7Plan)
}
