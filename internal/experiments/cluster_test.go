package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// clusterNames returns every registered cluster-* experiment; the fleet
// layer must never lose one silently.
func clusterNames(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, n := range Names() {
		if strings.HasPrefix(n, "cluster-") {
			names = append(names, n)
		}
	}
	if len(names) < 3 {
		t.Fatalf("only %d cluster experiments registered: %v", len(names), names)
	}
	return names
}

// TestClusterParallelMatchesSerial is the acceptance gate for the fleet
// experiments: running every cluster-* driver through the worker pool
// must be byte-identical to a serial run.
func TestClusterParallelMatchesSerial(t *testing.T) {
	names := clusterNames(t)
	opts := Options{Seed: 5, Quick: true}
	serial, err := Run(names, opts, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(names, opts, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	encode := func(reports []Report) []byte {
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, reports); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(serial), encode(par)) {
		t.Fatal("parallel cluster run differs from serial run")
	}
}

// TestClusterPoliciesTableShape checks the acceptance criterion that
// cluster-policies emits a policy x backend x host-count table: every
// combination appears exactly once.
func TestClusterPoliciesTableShape(t *testing.T) {
	tab := ClusterPolicies(Options{Seed: 2, Quick: true}).Table()
	if got := len(tab.Header); got < 10 {
		t.Fatalf("header has %d columns: %v", got, tab.Header)
	}
	seen := map[string]bool{}
	policies := map[string]bool{}
	backends := map[string]bool{}
	hosts := map[string]bool{}
	for _, row := range tab.Rows {
		key := row[0] + "/" + row[1] + "/" + row[2]
		if seen[key] {
			t.Fatalf("duplicate combination %s", key)
		}
		seen[key] = true
		policies[row[0]] = true
		backends[row[1]] = true
		hosts[row[2]] = true
	}
	if len(policies) < 4 || len(backends) < 2 || len(hosts) < 2 {
		t.Fatalf("sweep incomplete: %d policies, %d backends, %d host counts",
			len(policies), len(backends), len(hosts))
	}
	if len(tab.Rows) != len(policies)*len(backends)*len(hosts) {
		t.Fatalf("rows = %d, want full cross product %d", len(tab.Rows),
			len(policies)*len(backends)*len(hosts))
	}
}

// TestClusterScaleRowsGrow sanity-checks the weak-scaling sweep: hosts
// and invocations should both grow down the table.
func TestClusterScaleRowsGrow(t *testing.T) {
	tab := ClusterScale(Options{Seed: 2, Quick: true}).Table()
	if len(tab.Rows) < 2 {
		t.Fatalf("want >= 2 scale points, got %d", len(tab.Rows))
	}
	prev := ""
	for _, row := range tab.Rows {
		if row[0] <= prev {
			t.Fatalf("host counts not increasing: %v", tab.Rows)
		}
		prev = row[0]
	}
}
