package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/trace"
	"squeezy/internal/units"
)

// cluster-diurnal: the ROADMAP's "days of diurnal traffic" scenario.
// A fleet replays multiple simulated days of Zipf traffic whose rate
// swings with a 24 h diurnal cycle plus a weekly envelope — over a
// million invocations in the full protocol — streamed straight from
// the generator cursors through the epoch loop with reservoir sketches
// collecting the latency tails. Nothing in the run grows with
// invocation count: the trace is never materialized, and the sketches
// hold a fixed K values per sample. The memory-bound regression test
// (memory_test.go) asserts exactly that property; this sweep is the
// measured table it protects.

// diurnalDays returns the simulated length in days: the -days override
// when set, else the protocol default.
func diurnalDays(opts Options) float64 {
	if opts.Days > 0 {
		return opts.Days
	}
	if opts.Quick {
		return 0.01 // ~14 simulated minutes: a smoke-sized slice
	}
	return 2
}

// diurnalCfg builds the shared fleet shape of the sweep: a fleet sized
// so the diurnal peaks push into reclamation while the troughs idle,
// with the trace modulated by a 24 h cycle and a weekly envelope. In
// quick mode the cycle periods shrink with the trace so the smoke run
// still sees peaks and troughs.
func diurnalCfg(opts Options, backend faas.BackendKind) fleetCfg {
	days := diurnalDays(opts)
	duration := sim.Duration(days * 24 * float64(sim.Hour))
	fc := fleetCfg{
		policy: "reclaim-aware", backend: backend,
		hosts: 4, hostMem: 32 * units.GiB,
		funcs: 48, duration: duration,
		baseRPS: 4, burstRPS: 12,
		// Coarsen the memory-series cadence so its length tracks
		// simulated days (~5.8k points/day), not invocations.
		tick: 30 * sim.Second,
		mods: []trace.DiurnalConfig{
			{Period: 24 * sim.Hour, Amplitude: 0.6},
			{Period: 7 * 24 * sim.Hour, Amplitude: 0.2, Phase: 1.0},
		},
		sketch: &stats.SketchConfig{K: stats.DefaultSketchK, Seed: opts.seed()},
	}
	if opts.Quick {
		fc.hosts, fc.funcs = 2, 12
		fc.baseRPS, fc.burstRPS = 2, 6
		fc.tick = 10 * sim.Second
		fc.mods = []trace.DiurnalConfig{
			{Period: duration / 3, Amplitude: 0.6},
			{Period: duration, Amplitude: 0.2, Phase: 1.0},
		}
	}
	return fc
}

// ClusterDiurnalPlan replays the multi-day diurnal fleet per backend.
// Sketches are on by default here — the point of the experiment is the
// bounded-memory pipeline — so its table is rank-error-accurate rather
// than byte-exact; every other experiment keeps exact statistics.
func ClusterDiurnalPlan(opts Options) *Plan {
	days := diurnalDays(opts)
	backends := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	if opts.Quick {
		backends = []faas.BackendKind{faas.Squeezy}
	}

	type cellCfg struct {
		fc   fleetCfg
		lead []string
	}
	var cells []cellCfg
	for _, backend := range backends {
		fc := diurnalCfg(opts, backend)
		applyOptTopology(opts, &fc)
		applyOptFaults(opts, &fc)
		cells = append(cells, cellCfg{
			fc:   fc,
			lead: []string{backend.String(), fmt.Sprintf("%.2f", days)},
		})
	}

	seed := opts.seed()
	results := make([]fleetStats, len(cells))
	p := &Plan{Assemble: func() Result {
		t := &Table{
			Title: "cluster-diurnal: multi-day diurnal traffic, streamed with reservoir sketches",
			Header: []string{
				"backend", "days", "invocations", "cold", "warm",
				"cold_p50_ms", "cold_p99_ms", "cold_p999_ms", "warm_p99_ms",
				"memwait_p99_ms", "dropped", "unserved", "mem_eff", "GiB*s",
			},
		}
		for i, c := range cells {
			s := results[i]
			t.AddRow(append(append([]string{}, c.lead...),
				fmt.Sprintf("%d", s.Invoked),
				fmt.Sprintf("%d", s.Cold),
				fmt.Sprintf("%d", s.Warm),
				f1(s.ColdP50Ms),
				f1(s.ColdP99Ms),
				f1(s.ColdP999Ms),
				f1(s.WarmP99Ms),
				f1(s.MemWaitP99),
				fmt.Sprintf("%d", s.Dropped),
				fmt.Sprintf("%d", s.Unserved),
				f2(s.MemEff),
				f1(s.GiBs),
			)...)
		}
		return t
	}}
	for i, c := range cells {
		i, c := i, c
		p.Stage.Cell(strings.Join(c.lead, "/"), func(w *World) {
			results[i] = fleetRun(w, seed, c.fc)
		})
	}
	return p
}

// ClusterDiurnal runs the diurnal sweep serially.
func ClusterDiurnal(opts Options) Result { return ClusterDiurnalPlan(opts).runSerial(newWorld()) }

func init() {
	RegisterPlan("cluster-diurnal", "multi-day diurnal fleet: streamed traces + reservoir sketches (bounded memory)", ClusterDiurnalPlan)
}
