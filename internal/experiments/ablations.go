package experiments

import (
	"fmt"

	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/vmm"
	"squeezy/internal/workload"
)

// Ablation drivers for the design choices DESIGN.md calls out. Each
// returns a latency in milliseconds.

// AblationBatching measures a Squeezy unplug of the given size with and
// without VM-exit batching (§8: batching would merge the ~3 ms per
// 128 MiB chunk exits of one request into a single exit).
func AblationBatching(batched bool, bytes int64) float64 {
	sched := sim.NewScheduler()
	cost := costmodel.Default()
	cost.BatchUnplugExits = batched
	vm := vmm.New("ablation", sched, cost, hostmem.New(0), 4)
	vm.PinReclaimThreads()
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes: units.BlockSize, KernelResidentBytes: 16 * units.MiB,
	})
	mgr := core.NewManager(k, core.Config{PartitionBytes: bytes, Concurrency: 2})
	mgr.Plug(1, func(int) {})
	sched.Run()
	var latMs float64
	mgr.Unplug(1, func(r core.UnplugResult) { latMs = r.Latency.Milliseconds() })
	sched.Run()
	return latMs
}

// AblationZeroing measures a vanilla virtio-mem 512 MiB unplug from a
// half-loaded guest with the kernel's zero-on-alloc hardening on or off
// (§2.2: zeroing is ~24% of unplug latency).
func AblationZeroing(zeroing bool) float64 {
	cost := costmodel.Default()
	cost.ZeroOnUnplug = zeroing
	return vanillaUnplug512(cost, virtiomem.EmptiestFirst)
}

// AblationCandidatePolicy measures the same unplug under different
// block-selection policies ("emptiest" or "highest").
func AblationCandidatePolicy(policy string) float64 {
	p := virtiomem.EmptiestFirst
	if policy == "highest" {
		p = virtiomem.HighestFirst
	}
	return vanillaUnplug512(costmodel.Default(), p)
}

func vanillaUnplug512(cost *costmodel.Model, policy virtiomem.CandidatePolicy) float64 {
	sched := sim.NewScheduler()
	vm := vmm.New("ablation", sched, cost, hostmem.New(0), 4)
	vm.PinReclaimThreads()
	const vmBytes = 4 * units.GiB
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes: units.BlockSize, MovableBytes: vmBytes,
		KernelResidentBytes: 16 * units.MiB,
	})
	drv := virtiomem.New(k)
	drv.Policy = policy
	drv.Plug(vmBytes, func(int64) {})
	sched.Run()
	hogs := make([]*workload.Memhog, 4)
	for i := range hogs {
		hogs[i] = workload.NewMemhog(k, fmt.Sprintf("hog%d", i), 512*units.MiB)
	}
	interleavedWarmup(k, hogs)
	hogs[0].Kill()
	var latMs float64
	drv.Unplug(512*units.MiB, func(r virtiomem.UnplugResult) { latMs = r.Latency.Milliseconds() })
	sched.Run()
	return latMs
}

// AblationPartitionSize measures one Squeezy partition unplug at the
// given rated size; latency is linear in blocks per partition.
func AblationPartitionSize(bytes int64) float64 {
	return AblationBatching(false, bytes)
}

// The ablations register as experiments too, so `squeezyctl all`
// covers the design-choice studies alongside the paper figures. They
// are deterministic closed-form sweeps: Options.Seed is accepted for
// interface uniformity but unused, and Quick shrinks the swept sizes.

func init() {
	Register("abl-batching", "Ablation (§8): VM-exit batching on a Squeezy unplug",
		func(o Options) Result {
			bytes := int64(2 * units.GiB)
			if o.Quick {
				bytes = 512 * units.MiB
			}
			t := &Table{
				Title:  "Ablation: VM-exit batching on a " + units.HumanBytes(bytes) + " Squeezy unplug",
				Header: []string{"mode", "unplug(ms)"},
			}
			t.AddRow("unbatched", f1(AblationBatching(false, bytes)))
			t.AddRow("batched", f1(AblationBatching(true, bytes)))
			return t
		})
	Register("abl-zeroing", "Ablation (§2.2): zero-on-unplug tax on a vanilla 512 MiB unplug",
		func(o Options) Result {
			t := &Table{
				Title:  "Ablation: kernel zeroing on the vanilla virtio-mem unplug path",
				Header: []string{"zeroing", "unplug-512MiB(ms)"},
			}
			t.AddRow("on", f1(AblationZeroing(true)))
			t.AddRow("off", f1(AblationZeroing(false)))
			return t
		})
	Register("abl-policy", "Ablation: virtio-mem block-selection policy (emptiest vs highest)",
		func(o Options) Result {
			t := &Table{
				Title:  "Ablation: virtio-mem candidate-block policy, 512 MiB unplug",
				Header: []string{"policy", "unplug-512MiB(ms)"},
			}
			for _, p := range []string{"emptiest", "highest"} {
				t.AddRow(p, f1(AblationCandidatePolicy(p)))
			}
			return t
		})
	Register("abl-partition", "Ablation: Squeezy partition rated size vs unplug latency",
		func(o Options) Result {
			sizes := []int64{128, 512, 2048}
			if o.Quick {
				sizes = []int64{128, 512}
			}
			t := &Table{
				Title:  "Ablation: unplug latency of one partition by rated size",
				Header: []string{"partition", "unplug(ms)"},
			}
			for _, mib := range sizes {
				t.AddRow(units.HumanBytes(mib*units.MiB), f1(AblationPartitionSize(mib*units.MiB)))
			}
			return t
		})
}
