package experiments

import (
	"fmt"

	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/workload"
)

// Ablation drivers for the design choices DESIGN.md calls out. Each
// returns a latency in milliseconds.

// AblationBatching measures a Squeezy unplug of the given size with and
// without VM-exit batching (§8: batching would merge the ~3 ms per
// 128 MiB chunk exits of one request into a single exit).
func AblationBatching(batched bool, bytes int64) float64 {
	return ablationBatching(newWorld(), batched, bytes)
}

func ablationBatching(w *World, batched bool, bytes int64) float64 {
	sched := w.Scheduler()
	cost := costmodel.Default()
	cost.BatchUnplugExits = batched
	vm := w.VM("ablation", cost, hostmem.New(0), 4)
	vm.PinReclaimThreads()
	k := w.Kernel(vm, guestos.Config{
		BootBytes: units.BlockSize, KernelResidentBytes: 16 * units.MiB,
	})
	mgr := core.NewManager(k, core.Config{PartitionBytes: bytes, Concurrency: 2})
	mgr.Plug(1, func(int) {})
	sched.Run()
	var latMs float64
	mgr.Unplug(1, func(r core.UnplugResult) { latMs = r.Latency.Milliseconds() })
	sched.Run()
	return latMs
}

// AblationZeroing measures a vanilla virtio-mem 512 MiB unplug from a
// half-loaded guest with the kernel's zero-on-alloc hardening on or off
// (§2.2: zeroing is ~24% of unplug latency).
func AblationZeroing(zeroing bool) float64 {
	return ablationZeroing(newWorld(), zeroing)
}

func ablationZeroing(w *World, zeroing bool) float64 {
	cost := costmodel.Default()
	cost.ZeroOnUnplug = zeroing
	return vanillaUnplug512(w, cost, virtiomem.EmptiestFirst)
}

// AblationCandidatePolicy measures the same unplug under different
// block-selection policies ("emptiest" or "highest").
func AblationCandidatePolicy(policy string) float64 {
	return ablationCandidatePolicy(newWorld(), policy)
}

func ablationCandidatePolicy(w *World, policy string) float64 {
	p := virtiomem.EmptiestFirst
	if policy == "highest" {
		p = virtiomem.HighestFirst
	}
	return vanillaUnplug512(w, costmodel.Default(), p)
}

func vanillaUnplug512(w *World, cost *costmodel.Model, policy virtiomem.CandidatePolicy) float64 {
	sched := w.Scheduler()
	vm := w.VM("ablation", cost, hostmem.New(0), 4)
	vm.PinReclaimThreads()
	const vmBytes = 4 * units.GiB
	k := w.Kernel(vm, guestos.Config{
		BootBytes: units.BlockSize, MovableBytes: vmBytes,
		KernelResidentBytes: 16 * units.MiB,
	})
	drv := virtiomem.New(k)
	drv.Policy = policy
	drv.Plug(vmBytes, func(int64) {})
	sched.Run()
	hogs := make([]*workload.Memhog, 4)
	for i := range hogs {
		hogs[i] = workload.NewMemhog(k, fmt.Sprintf("hog%d", i), 512*units.MiB)
	}
	interleavedWarmup(k, hogs)
	hogs[0].Kill()
	var latMs float64
	drv.Unplug(512*units.MiB, func(r virtiomem.UnplugResult) { latMs = r.Latency.Milliseconds() })
	sched.Run()
	return latMs
}

// AblationPartitionSize measures one Squeezy partition unplug at the
// given rated size; latency is linear in blocks per partition.
func AblationPartitionSize(bytes int64) float64 {
	return AblationBatching(false, bytes)
}

// The ablations register as experiments too, so `squeezyctl all`
// covers the design-choice studies alongside the paper figures. They
// are deterministic closed-form sweeps: Options.Seed is accepted for
// interface uniformity but unused, and Quick shrinks the swept sizes.
// Each sweep point is one cell of the experiment's plan.

// ablationPlan builds a two-column table plan: one cell per swept
// configuration, each filling its pre-assigned row value.
func ablationPlan(title string, header [2]string, rows []string, run func(w *World, i int) float64) *Plan {
	vals := make([]float64, len(rows))
	p := &Plan{Assemble: func() Result {
		t := &Table{Title: title, Header: header[:]}
		for i, label := range rows {
			t.AddRow(label, f1(vals[i]))
		}
		return t
	}}
	for i, label := range rows {
		i := i
		p.Stage.Cell(label, func(w *World) { vals[i] = run(w, i) })
	}
	return p
}

func init() {
	RegisterPlan("abl-batching", "Ablation (§8): VM-exit batching on a Squeezy unplug",
		func(o Options) *Plan {
			bytes := int64(2 * units.GiB)
			if o.Quick {
				bytes = 512 * units.MiB
			}
			return ablationPlan(
				"Ablation: VM-exit batching on a "+units.HumanBytes(bytes)+" Squeezy unplug",
				[2]string{"mode", "unplug(ms)"}, []string{"unbatched", "batched"},
				func(w *World, i int) float64 { return ablationBatching(w, i == 1, bytes) })
		})
	RegisterPlan("abl-zeroing", "Ablation (§2.2): zero-on-unplug tax on a vanilla 512 MiB unplug",
		func(o Options) *Plan {
			return ablationPlan(
				"Ablation: kernel zeroing on the vanilla virtio-mem unplug path",
				[2]string{"zeroing", "unplug-512MiB(ms)"}, []string{"on", "off"},
				func(w *World, i int) float64 { return ablationZeroing(w, i == 0) })
		})
	RegisterPlan("abl-policy", "Ablation: virtio-mem block-selection policy (emptiest vs highest)",
		func(o Options) *Plan {
			policies := []string{"emptiest", "highest"}
			return ablationPlan(
				"Ablation: virtio-mem candidate-block policy, 512 MiB unplug",
				[2]string{"policy", "unplug-512MiB(ms)"}, policies,
				func(w *World, i int) float64 { return ablationCandidatePolicy(w, policies[i]) })
		})
	RegisterPlan("abl-partition", "Ablation: Squeezy partition rated size vs unplug latency",
		func(o Options) *Plan {
			sizes := []int64{128, 512, 2048}
			if o.Quick {
				sizes = []int64{128, 512}
			}
			labels := make([]string, len(sizes))
			for i, mib := range sizes {
				labels[i] = units.HumanBytes(mib * units.MiB)
			}
			return ablationPlan(
				"Ablation: unplug latency of one partition by rated size",
				[2]string{"partition", "unplug(ms)"}, labels,
				func(w *World, i int) float64 { return ablationBatching(w, false, sizes[i]*units.MiB) })
		})
}
