package experiments

import (
	"fmt"

	"squeezy/internal/balloon"
	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/vmm"
	"squeezy/internal/workload"
)

// Fig5Row is one bar of Figure 5: the average latency to reclaim
// memory of a given size with one interface, broken down into the
// paper's four buckets (milliseconds).
type Fig5Row struct {
	SizeMiB      int64
	Method       string
	AvgLatencyMs float64
	ZeroingMs    float64
	MigrationMs  float64
	VMExitsMs    float64
	RestMs       float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5 reproduces §6.1.1 / Figure 5: a 32:1 VM fully occupied by 32
// memhog instances; instances are killed iteratively and after each
// kill the host reclaims one instance's worth of memory. The reported
// latency is the average over the 32 reclamation steps, per memory
// size and interface.
func Fig5(opts Options) *Fig5Result {
	return Fig5Plan(opts).runSerial(newWorld()).(*Fig5Result)
}

// Fig5Plan is the figure as a cell plan: one cell per size × method
// combination.
func Fig5Plan(opts Options) *Plan {
	sizes := []int64{128, 256, 512, 1024, 2048}
	instances := 32
	if opts.Quick {
		sizes = []int64{128, 512}
		instances = 8
	}
	methods := []string{"balloon", "virtio-mem", "squeezy"}
	res := &Fig5Result{Rows: make([]Fig5Row, len(sizes)*len(methods))}
	p := &Plan{Assemble: func() Result { return res }}
	for si, sizeMiB := range sizes {
		for mi, method := range methods {
			i, sizeMiB, method := si*len(methods)+mi, sizeMiB, method
			p.Stage.Cell(fmt.Sprintf("%s/%dMiB", method, sizeMiB), func(w *World) {
				res.Rows[i] = fig5Run(w, method, sizeMiB*units.MiB, instances)
			})
		}
	}
	return p
}

func fig5Run(w *World, method string, instSize int64, n int) Fig5Row {
	sched := w.Scheduler()
	host := hostmem.New(0)
	cost := costmodel.Default()
	vm := w.VM("fig5", cost, host, float64(n))
	vm.PinReclaimThreads()

	instBytes := units.AlignUp(instSize, units.BlockSize)
	var k *guestos.Kernel
	var sq *core.Manager
	var vdrv *virtiomem.Driver
	var bdrv *balloon.Driver

	switch method {
	case "squeezy":
		k = w.Kernel(vm, guestos.Config{
			BootBytes:           units.BlockSize,
			KernelResidentBytes: 32 * units.MiB,
		})
		sq = core.NewManager(k, core.Config{PartitionBytes: instBytes, Concurrency: n})
		sq.Plug(n, func(int) {})
		sched.Run()
	default:
		k = w.Kernel(vm, guestos.Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        int64(n) * instBytes,
			KernelResidentBytes: 32 * units.MiB,
		})
		if method == "virtio-mem" {
			vdrv = virtiomem.New(k)
			vdrv.Plug(int64(n)*instBytes, func(int64) {})
			sched.Run()
		} else {
			k.OnlineAllMovable()
			bdrv = balloon.New(k)
		}
	}

	// 32 memhogs sized so the VM is fully occupied; interleaved warmup
	// and churn scatter their footprints across blocks (vanilla case).
	hogs := make([]*workload.Memhog, n)
	for i := range hogs {
		hogs[i] = workload.NewMemhog(k, fmt.Sprintf("memhog%d", i), instSize)
	}
	if method == "squeezy" {
		for _, h := range hogs {
			sq.Attach(h.Proc, func(*core.Partition) {})
		}
	}
	// Interleaved warm-up in 16 MiB slices: concurrent instances fault
	// alternately, so every 128 MiB block ends up holding pages of many
	// instances — the interleaving of Figure 3. (Slices much smaller
	// than a block are what make vanilla unplug migration-bound.)
	const slice = 16 * units.MiB
	rounds := int((instSize + slice - 1) / slice)
	for r := 0; r < rounds; r++ {
		for _, h := range hogs {
			chunk := slice
			if remaining := instSize - units.PagesToBytes(h.Proc.AnonPages()); remaining < chunk {
				chunk = remaining
			}
			if chunk > 0 {
				if _, ok := k.TouchAnon(h.Proc, chunk, guestos.HugeOrder); !ok {
					panic("fig5: warmup did not fit")
				}
			}
		}
	}

	// Kill iteratively; reclaim after each kill; average the steps.
	var lat stats.Sample
	bd := stats.NewBreakdown(vmm.BreakdownLabels()...)
	for _, h := range hogs {
		h.Kill()
		start := sched.Now()
		switch method {
		case "balloon":
			bdrv.Inflate(instBytes, func(r balloon.InflateResult) {
				lat.Add(sched.Now().Sub(start).Milliseconds())
				accumulate(bd, r.Breakdown)
			})
		case "virtio-mem":
			vdrv.Unplug(instBytes, func(r virtiomem.UnplugResult) {
				lat.Add(sched.Now().Sub(start).Milliseconds())
				accumulate(bd, r.Breakdown)
			})
		case "squeezy":
			sq.Unplug(1, func(r core.UnplugResult) {
				lat.Add(sched.Now().Sub(start).Milliseconds())
				accumulate(bd, r.Breakdown)
			})
		}
		sched.Run()
	}

	steps := float64(lat.N())
	return Fig5Row{
		SizeMiB:      instSize / units.MiB,
		Method:       method,
		AvgLatencyMs: lat.Mean(),
		ZeroingMs:    bd.Get(vmm.StepZeroing) / steps,
		MigrationMs:  bd.Get(vmm.StepMigration) / steps,
		VMExitsMs:    bd.Get(vmm.StepVMExits) / steps,
		RestMs:       bd.Get(vmm.StepRest) / steps,
	}
}

func accumulate(dst, src *stats.Breakdown) {
	for i, l := range src.Labels {
		dst.Add(l, src.Parts[i])
	}
}

// Table renders the figure as text.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: reclaim latency (ms) by size and interface",
		Header: []string{"size(MiB)", "method", "avg(ms)", "zeroing", "migration", "vmexits", "rest"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.SizeMiB), row.Method, f1(row.AvgLatencyMs),
			f1(row.ZeroingMs), f1(row.MigrationMs), f1(row.VMExitsMs), f1(row.RestMs))
	}
	return t
}

// Speedup returns the average latency ratio of two methods across
// sizes (e.g. virtio-mem over squeezy ≈ 10.9x in the paper).
func (r *Fig5Result) Speedup(slow, fast string) float64 {
	bySize := map[int64]map[string]float64{}
	for _, row := range r.Rows {
		if bySize[row.SizeMiB] == nil {
			bySize[row.SizeMiB] = map[string]float64{}
		}
		bySize[row.SizeMiB][row.Method] = row.AvgLatencyMs
	}
	var ratios []float64
	for _, m := range bySize {
		if m[fast] > 0 {
			ratios = append(ratios, m[slow]/m[fast])
		}
	}
	var sum float64
	for _, x := range ratios {
		sum += x
	}
	if len(ratios) == 0 {
		return 0
	}
	return sum / float64(len(ratios))
}

func init() {
	RegisterPlan("fig5", "Figure 5: reclaim latency (ms) by size and interface", Fig5Plan)
}
