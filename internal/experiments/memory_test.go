package experiments

import (
	"testing"

	"squeezy/internal/faas"
	"squeezy/internal/units"
)

// TestStreamingMemoryBounded is the tentpole's acceptance gate: a
// streaming fleet cell's peak live heap must be independent of how
// many invocations flow through it. The cell runs twice over the same
// simulated length — once at baseline load and once at double the
// request rates (over a million invocations in the full protocol) —
// so everything that legitimately scales with simulated time or
// simulated memory (the 30 s memory time series, buddy free-list
// fragmentation) is held near-constant while any per-invocation
// retention would double. A mid-run heap diff during calibration
// showed the only live-heap growth over simulated time is the buddy
// allocators' free lists (fragmentation state bounded by the hosts'
// simulated page counts); per-request state is flat, which is exactly
// what this test pins down.
func TestStreamingMemoryBounded(t *testing.T) {
	days := 0.6
	if testing.Short() {
		days = 0.02
	}
	n1, peak1 := StreamMemProbe(days, 1)
	n2, peak2 := StreamMemProbe(days, 2)
	if n1 == 0 || float64(n2) < 1.8*float64(n1) {
		t.Fatalf("vacuous scaling: %d -> %d invocations", n1, n2)
	}
	if !testing.Short() && n2 < 1_000_000 {
		t.Fatalf("full protocol must exceed a million invocations, got %d", n2)
	}
	t.Logf("%d invocations: peak live heap %s; %d invocations: %s",
		n1, units.HumanBytes(int64(peak1)), n2, units.HumanBytes(int64(peak2)))
	// The slack absorbs what doubling the load legitimately holds live:
	// more concurrently warm VMs, hence more in-use simulated memory and
	// deeper buddy fragmentation — measured at 44–51 MiB across repeated
	// full-protocol runs, stable to a few MiB. It is far below what the
	// half-million extra invocations would pin if any per-invocation
	// state were retained (a materialized trace, a completion log, an
	// exact latency sample): ~50 B/invocation of retention blows the
	// budget.
	const slack = 72 * units.MiB
	if peak2 > peak1+uint64(slack) {
		t.Fatalf("peak live heap grew with invocation count: %s at %d invocations vs %s at %d",
			units.HumanBytes(int64(peak2)), n2, units.HumanBytes(int64(peak1)), n1)
	}
	// And a hard absolute ceiling, so the bound cannot ratchet up
	// silently through the relative check alone. The full-protocol cell
	// (4 hosts x 32 GiB simulated, >1M invocations) peaks around
	// 350 MiB; CI additionally runs this test under GOMEMLIMIT.
	const ceiling = uint64(768 * units.MiB)
	if peak2 > ceiling {
		t.Fatalf("peak live heap %s exceeds the hard ceiling %s",
			units.HumanBytes(int64(peak2)), units.HumanBytes(int64(ceiling)))
	}
}

// TestDiurnalSketchOnPooledWorld extends the reset-vs-fresh guard to
// sketched cells: a sketched diurnal run on a world polluted by a
// different (exact-mode) shape must match a fresh world byte for byte,
// proving EnableSketch/Reset recycling leaks nothing between cells.
func TestDiurnalSketchOnPooledWorld(t *testing.T) {
	fc := diurnalCfg(Options{Quick: true}, faas.Squeezy)
	want := fleetRun(newWorld(), 4, fc)
	if want.Invoked == 0 {
		t.Fatalf("degenerate run: %+v", want)
	}

	w := newWorld()
	dirty := fleetCfg{
		policy: "headroom", backend: faas.Harvest,
		hosts: 3, hostMem: 16 * units.GiB,
		funcs: 8, duration: fc.duration / 4, baseRPS: 4, burstRPS: 20,
	}
	w.begin()
	fleetRun(w, 99, dirty) // pollute the pools with an exact-mode shape
	w.endCell()
	w.begin()
	got := fleetRun(w, 4, fc)
	w.endCell()
	if got != want {
		t.Fatalf("pooled sketched run diverges from fresh:\n%+v\n%+v", got, want)
	}

	// And the reverse direction: an exact cell after a sketched one
	// must not inherit reservoir mode.
	w.begin()
	exact := fleetRun(w, 99, dirty)
	w.endCell()
	if exact != fleetRun(newWorld(), 99, dirty) {
		t.Fatal("exact-mode run after a sketched cell diverges from fresh")
	}
}
