package experiments

import (
	"fmt"
	"sync/atomic"
	"testing"

	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// TestFleetShardCountByteIdentity is the experiments-level acceptance
// gate for the tentpole: one pressured fleet cell run unsharded
// (shards=1), at shards=2, and at one shard per host must produce an
// identical stats row — the row the cluster tables are built from.
func TestFleetShardCountByteIdentity(t *testing.T) {
	fc := fleetCfg{
		policy: "reclaim-aware", backend: faas.VirtioMem,
		hosts: 3, hostMem: 20 * units.GiB,
		funcs: 12, duration: 45 * sim.Second, baseRPS: 6, burstRPS: 30,
	}
	run := func(shards int) fleetStats {
		fc := fc
		fc.shards = shards
		return fleetRun(newWorld(), 9, fc)
	}
	want := run(1)
	if want.Invoked == 0 || want.Cold == 0 {
		t.Fatalf("degenerate run: %+v", want)
	}
	for _, shards := range []int{2, 3, 0 /* one per host */} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d diverges:\n%+v\n%+v", shards, got, want)
		}
	}
}

// TestFleetShardsOnPooledWorld re-runs the same cell on a dirty pooled
// world and requires identity with a fresh world — the reset-vs-fresh
// guard for the sharded fleet's per-host schedulers and recyclers.
func TestFleetShardsOnPooledWorld(t *testing.T) {
	fc := fleetCfg{
		policy: "headroom", backend: faas.Squeezy,
		hosts: 2, hostMem: 16 * units.GiB,
		funcs: 8, duration: 30 * sim.Second, baseRPS: 4, burstRPS: 20,
	}
	want := fleetRun(newWorld(), 4, fc)

	w := newWorld()
	dirty := fc
	dirty.backend, dirty.hosts, dirty.policy = faas.Harvest, 4, "round-robin"
	w.begin()
	fleetRun(w, 99, dirty) // pollute the pools with a different shape
	w.endCell()
	w.begin()
	got := fleetRun(w, 4, fc)
	w.endCell()
	if got != want {
		t.Fatalf("pooled fleet run diverges from fresh:\n%+v\n%+v", got, want)
	}
}

// TestExecutorSubTasks exercises the sub-cell task path of the worker
// pool directly: a registered plan whose cells fan out tasks through
// World.Exec must complete every task exactly once at any worker
// count, including workers=1 (the publisher must be able to run its
// own batch).
func TestExecutorSubTasks(t *testing.T) {
	const cells, tasksPerCell = 3, 8
	var ran atomic.Int64
	RegisterPlan("test-subtasks", "sub-task fan-out test plan", func(o Options) *Plan {
		res := make([]int64, cells)
		p := &Plan{Assemble: func() Result {
			tab := &Table{Title: "subtasks", Header: []string{"n"}}
			for _, v := range res {
				tab.AddRow(fmt.Sprintf("%d", v))
			}
			return tab
		}}
		for i := 0; i < cells; i++ {
			i := i
			p.Stage.Cell(fmt.Sprintf("cell%d", i), func(w *World) {
				var local atomic.Int64
				tasks := make([]func(), tasksPerCell)
				for j := range tasks {
					tasks[j] = func() { local.Add(1); ran.Add(1) }
				}
				w.Exec(tasks)
				res[i] = local.Load()
			})
		}
		return p
	})
	defer delete(registry, "test-subtasks")

	for _, workers := range []int{1, 4} {
		ran.Store(0)
		reports, err := Run([]string{"test-subtasks"}, Options{}, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := ran.Load(); got != cells*tasksPerCell {
			t.Fatalf("workers=%d ran %d tasks, want %d", workers, got, cells*tasksPerCell)
		}
		for _, row := range reports[0].Table.Rows {
			if row[0] != fmt.Sprintf("%d", tasksPerCell) {
				t.Fatalf("workers=%d cell saw %s of its tasks", workers, row[0])
			}
		}
	}
}

// TestFleetCellReportsShardWalls checks the -cellstats plumbing end to
// end: cluster cells surface one wall per shard through the executor.
func TestFleetCellReportsShardWalls(t *testing.T) {
	_, stats, err := RunWithCellStats([]string{"cluster-overcommit"}, Options{Quick: true, Seed: 2}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 {
		t.Fatal("no cell stats")
	}
	for _, s := range stats {
		if len(s.ShardWalls) == 0 {
			t.Fatalf("cell %s/%s reported no shard walls", s.Experiment, s.Label)
		}
	}
}

// TestWorkersForBudget pins the -parallel 0 capping rule.
func TestWorkersForBudget(t *testing.T) {
	cases := []struct {
		procs  int
		budget int64
		want   int
	}{
		{8, 0, 8},                           // no budget: uncapped
		{8, 16 * WorldMemEstimateBytes, 8},  // roomy: uncapped
		{8, 3 * WorldMemEstimateBytes, 3},   // tight: capped below procs
		{8, WorldMemEstimateBytes / 2, 1},   // tiny: never below one
		{1, 64 * WorldMemEstimateBytes, 1},  // single core stays single
		{0, 2 * WorldMemEstimateBytes, 1},   // degenerate procs
		{4, 4*WorldMemEstimateBytes + 1, 4}, // exact fit counts
		{4, 4*WorldMemEstimateBytes - 1, 3}, // just under drops one
	}
	for _, c := range cases {
		if got := workersForBudget(c.procs, c.budget); got != c.want {
			t.Fatalf("workersForBudget(%d, %d) = %d, want %d", c.procs, c.budget, got, c.want)
		}
	}
	if AutoWorkers(0) < 1 {
		t.Fatal("AutoWorkers must return at least one worker")
	}
}
