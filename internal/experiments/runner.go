package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"squeezy/internal/obs"
)

// The runner executes a batch of experiments — optionally several
// trials of each under derived seeds — as one unified pool of cells:
// every experiment's plan is enumerated up front and the cells of all
// experiments × trials × stages are scheduled together, so a single
// slow sweep no longer serializes a whole worker while others idle.
// Results come back in a deterministic (experiment, trial) order with
// rows assembled in cell-enumeration order, so the encoded output does
// not depend on the worker count: a -parallel 8 run is byte-identical
// to a serial one.

// SubSeed derives a well-separated random stream for the given
// coordinates under a base seed, mixing each dimension through
// splitmix64. It is the single sub-seed derivation used for both
// trials (TrialSeed) and cells, so adjacent coordinates — trial 3 and
// trial 4, cell 7 and cell 8 — never produce correlated streams the
// way naive base+index arithmetic can. The result is never 0, which
// Options would remap to the default seed.
func SubSeed(base uint64, dims ...int) uint64 {
	x := base
	for _, d := range dims {
		x += uint64(d) * 0x9E3779B97F4A7C15
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
	}
	if x == 0 {
		x = 0x9E3779B97F4A7C15
	}
	return x
}

// TrialSeed derives the seed for trial t of a run with the given base
// seed. Trial 0 uses the base seed unchanged, so a single-trial run
// reproduces a plain `run -seed N` exactly; later trials draw from
// SubSeed, giving well-separated streams even for adjacent base seeds.
func TrialSeed(base uint64, trial int) uint64 {
	if trial == 0 {
		return base
	}
	return SubSeed(base, trial)
}

// Report is one completed experiment×trial unit. It carries only
// run-deterministic fields — no wall-clock timing — so that encoded
// reports are byte-identical across serial and parallel runs.
type Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Trial       int    `json:"trial"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	Table       *Table `json:"table"`
}

// CellStat is the measured wall-clock time of one executed cell, for
// `squeezyctl -cellstats`. Wall times are scheduling-dependent and
// never part of a Report.
type CellStat struct {
	Experiment string
	Trial      int
	Label      string
	Wall       time.Duration
	// Start is the offset from the batch's start to the cell's run
	// start; Wait is how long the cell sat queued before that; Worker is
	// the pool worker that ran it. Together they place the cell on the
	// runner's wall-clock timeline (obs.RunnerSpan).
	Start  time.Duration
	Wait   time.Duration
	Worker int
	// ShardWalls is the per-shard wall-clock breakdown of a cell that
	// decomposed into sub-cell shards (a sharded fleet run): entry i is
	// the time shard i's advance tasks consumed, wherever they ran.
	// With enough idle workers the cell's critical path is its slowest
	// shard, not Wall.
	ShardWalls []time.Duration
}

// CellFloor is a cell's contribution to the batch's parallel wall-clock
// floor. A plain cell contributes its whole wall. A sharded cell's
// shard advances parallelize, but its dispatcher step — routing between
// epochs — stays serial, so the critical-path bound is the serial
// remainder (wall minus all shard work) plus the slowest shard.
func CellFloor(s CellStat) time.Duration {
	if len(s.ShardWalls) == 0 {
		return s.Wall
	}
	var slowest, sum time.Duration
	for _, sw := range s.ShardWalls {
		sum += sw
		if sw > slowest {
			slowest = sw
		}
	}
	floor := s.Wall - sum + slowest
	if floor < slowest {
		floor = slowest
	}
	return floor
}

// Run executes each named experiment for the given number of trials on
// a pool of `workers` goroutines (workers<=0 selects GOMAXPROCS).
// Trial t runs with TrialSeed(opts.seed(), t). The returned reports
// are ordered by (position in names, trial) regardless of scheduling,
// and an unknown name fails up front before anything runs.
func Run(names []string, opts Options, trials, workers int) ([]Report, error) {
	reports, _, err := RunWithCellStats(names, opts, trials, workers)
	return reports, err
}

// planRun tracks one report's progress through its plan's stages.
type planRun struct {
	report *Report
	plan   *Plan
	stage  *Stage
	left   int // cells of the current stage still running or queued
}

// cellUnit is one schedulable cell of one report.
type cellUnit struct {
	pr   *planRun
	cell Cell
	enq  time.Time // when the cell was published, for queue-wait stats
}

// subGroup tracks one World.Exec batch of sub-cell tasks; left is
// guarded by the executor mutex.
type subGroup struct {
	left int
}

// subUnit is one schedulable sub-cell task (a shard advance of a
// sharded fleet cell). Sub-tasks never need a World: they operate on
// state owned by the cell that published them.
type subUnit struct {
	run func()
	g   *subGroup
}

// RunWithCellStats is Run plus the per-cell wall-clock timings of the
// executed cells, in completion order.
func RunWithCellStats(names []string, opts Options, trials, workers int) ([]Report, []CellStat, error) {
	if trials <= 0 {
		trials = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	exps := make([]Experiment, len(names))
	for i, n := range names {
		e, ok := Get(n)
		if !ok {
			return nil, nil, fmt.Errorf("unknown experiment %q (see `squeezyctl list`)", n)
		}
		exps[i] = e
	}

	base := opts.seed()
	reports := make([]Report, len(exps)*trials)
	runs := make([]*planRun, len(reports))
	for i, e := range exps {
		for t := 0; t < trials; t++ {
			r := &reports[i*trials+t]
			*r = Report{
				Experiment:  e.Name(),
				Description: e.Describe(),
				Trial:       t,
				Seed:        TrialSeed(base, t),
				Quick:       opts.Quick,
			}
			o := opts
			o.Seed = r.Seed
			plan := e.Plan(o)
			runs[i*trials+t] = &planRun{report: r, plan: plan, stage: &plan.Stage}
		}
	}

	x := &executor{pending: len(runs), obsSink: opts.Obs, start: time.Now()}
	x.cond = sync.NewCond(&x.mu)
	for _, pr := range runs {
		x.advance(pr)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			w := newWorld()
			w.par = x.par
			x.work(w, wk)
		}(wk)
	}
	wg.Wait()
	return reports, x.stats, nil
}

// executor is the shared scheduling state of one RunWithCellStats
// call: a FIFO of runnable cells, a LIFO of sub-cell tasks published
// by running cells (sharded fleet advances), and per-report stage
// bookkeeping. All fields are guarded by mu; simulations run outside
// the lock.
//
// Sub-tasks always outrank cells: a worker with both available picks
// the sub-task, because a published sub-task is on some running cell's
// critical path while a queued cell is not on anyone's yet.
type executor struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []cellUnit
	subq    []subUnit
	pending int // reports not yet assembled
	stats   []CellStat

	obsSink *obs.Sink // per-cell trace collection; nil when tracing is off
	start   time.Time // batch start, the zero of CellStat.Start
}

// par is World.Exec's pooled implementation: publish the batch on the
// sub-task queue, then help until the whole batch has completed. The
// helping loop makes the scheme deadlock-free at any worker count —
// the publishing worker can always run its own tasks — and lets idle
// workers (and workers blocked in their own par) steal shard advances,
// which is what drops a fleet cell's critical path to its slowest
// shard. Tasks may be executed in any order by any worker; callers
// guarantee order-independence.
func (x *executor) par(tasks []func()) {
	if len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	g := &subGroup{left: len(tasks)}
	x.mu.Lock()
	for _, t := range tasks {
		x.subq = append(x.subq, subUnit{run: t, g: g})
	}
	x.cond.Broadcast()
	for g.left > 0 {
		if n := len(x.subq); n > 0 {
			u := x.subq[n-1] // LIFO: newest batch first, likely our own
			x.subq[n-1] = subUnit{}
			x.subq = x.subq[:n-1]
			x.mu.Unlock()
			u.run()
			x.mu.Lock()
			x.finishSub(u)
			continue
		}
		// Our remaining tasks are running on other workers; wait for
		// their completion broadcasts.
		x.cond.Wait()
	}
	x.mu.Unlock()
}

// finishSub retires one executed sub-task under the lock, waking its
// publisher when the batch drains.
func (x *executor) finishSub(u subUnit) {
	u.g.left--
	if u.g.left == 0 {
		x.cond.Broadcast()
	}
}

// advance schedules pr's current stage, walking the Then chain past
// empty stages; when the chain ends the report is assembled. The
// caller must own pr exclusively — at batch start, or as the worker
// that drained the stage's last cell. Then and Assemble run outside
// the executor lock, so a slow continuation never stalls the pool;
// the lock is taken only to publish the stage's cells.
func (x *executor) advance(pr *planRun) {
	for {
		if len(pr.stage.Cells) > 0 {
			now := time.Now()
			x.mu.Lock()
			pr.left = len(pr.stage.Cells)
			for _, c := range pr.stage.Cells {
				x.queue = append(x.queue, cellUnit{pr: pr, cell: c, enq: now})
			}
			x.cond.Broadcast()
			x.mu.Unlock()
			return
		}
		if pr.stage.Then == nil {
			break
		}
		next := pr.stage.Then()
		if next == nil {
			break
		}
		pr.stage = next
	}
	pr.report.Table = pr.plan.Assemble().Table()
	x.mu.Lock()
	x.pending--
	if x.pending == 0 {
		x.cond.Broadcast()
	}
	x.mu.Unlock()
}

// work is one worker's loop: run a published sub-task when one is
// available (it is on a running cell's critical path), else pop a
// cell, simulate it on the pooled world, and on the stage's last cell
// advance the report to its next stage (or assemble it).
func (x *executor) work(w *World, wk int) {
	for {
		x.mu.Lock()
		for len(x.subq) == 0 && len(x.queue) == 0 && x.pending > 0 {
			x.cond.Wait()
		}
		if n := len(x.subq); n > 0 {
			u := x.subq[n-1]
			x.subq[n-1] = subUnit{}
			x.subq = x.subq[:n-1]
			x.mu.Unlock()
			u.run()
			x.mu.Lock()
			x.finishSub(u)
			x.mu.Unlock()
			continue
		}
		if len(x.queue) == 0 {
			x.mu.Unlock()
			return
		}
		u := x.queue[0]
		x.queue = x.queue[1:]
		x.mu.Unlock()

		w.begin()
		w.beginObs(x.obsSink, u.pr.report.Experiment, u.pr.report.Trial, u.cell.Label)
		start := time.Now()
		u.cell.Run(w)
		wall := time.Since(start)
		shardWalls := w.shardWalls
		w.shardWalls = nil
		w.endCell()

		x.mu.Lock()
		x.stats = append(x.stats, CellStat{
			Experiment: u.pr.report.Experiment,
			Trial:      u.pr.report.Trial,
			Label:      u.cell.Label,
			Wall:       wall,
			Start:      start.Sub(x.start),
			Wait:       start.Sub(u.enq),
			Worker:     wk,
			ShardWalls: shardWalls,
		})
		u.pr.left--
		last := u.pr.left == 0
		x.mu.Unlock()
		if !last {
			continue
		}
		// Stage drained; this worker now owns pr. Follow the Then
		// continuation (which may read the finished cells' results)
		// outside the lock, or end the chain.
		var next *Stage
		if then := u.pr.stage.Then; then != nil {
			next = then()
		}
		if next == nil {
			next = &Stage{}
		}
		u.pr.stage = next
		x.advance(u.pr)
	}
}

// EncodeText writes each report's aligned-text table, separated by
// blank lines. Multi-trial runs get a per-trial banner so tables with
// identical titles stay distinguishable.
func EncodeText(w io.Writer, reports []Report, trials int) error {
	for i, r := range reports {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if trials > 1 {
			banner := fmt.Sprintf("== %s trial %d (seed %d) ==\n", r.Experiment, r.Trial, r.Seed)
			if _, err := io.WriteString(w, banner); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, r.Table.String()); err != nil {
			return err
		}
	}
	return nil
}

// EncodeJSON writes the reports as one indented JSON array.
func EncodeJSON(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// cellStatJSON is the machine-readable form of one CellStat
// (`squeezyctl -cellstats=json`). Durations are milliseconds.
type cellStatJSON struct {
	Experiment  string    `json:"experiment"`
	Trial       int       `json:"trial"`
	Cell        string    `json:"cell"`
	WallMs      float64   `json:"wall_ms"`
	StartMs     float64   `json:"start_ms"`
	WaitMs      float64   `json:"wait_ms"`
	Worker      int       `json:"worker"`
	ShardWallMs []float64 `json:"shard_walls_ms,omitempty"`
	FloorMs     float64   `json:"floor_ms"`
}

// cellStatsDoc is the `-cellstats=json` document: the per-cell walls
// plus the batch-level floor rule, so bench scripts read the numbers
// the text mode prints to stderr without scraping it.
type cellStatsDoc struct {
	Cells []cellStatJSON `json:"cells"`
	// SummedWallMs is total cell wall time (== CPU time only when
	// workers <= cores).
	SummedWallMs float64 `json:"summed_wall_ms"`
	// SlowestCellMs is the wall of the slowest single cell.
	SlowestCellMs float64 `json:"slowest_cell_ms"`
	// ParallelFloorMs is max over cells of CellFloor: serial dispatch
	// remainder plus the slowest shard of the worst cell — the parallel
	// wall-clock floor when workers <= cores.
	ParallelFloorMs float64 `json:"parallel_floor_ms"`
}

// EncodeCellStatsJSON writes the cell timings and the floor rule as
// indented JSON, cells in execution-completion order.
func EncodeCellStatsJSON(w io.Writer, stats []CellStat) error {
	msf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	doc := cellStatsDoc{Cells: make([]cellStatJSON, 0, len(stats))}
	var summed, slowest, floor time.Duration
	for _, s := range stats {
		f := CellFloor(s)
		summed += s.Wall
		if s.Wall > slowest {
			slowest = s.Wall
		}
		if f > floor {
			floor = f
		}
		c := cellStatJSON{
			Experiment: s.Experiment, Trial: s.Trial, Cell: s.Label,
			WallMs: msf(s.Wall), StartMs: msf(s.Start), WaitMs: msf(s.Wait),
			Worker: s.Worker, FloorMs: msf(f),
		}
		for _, sw := range s.ShardWalls {
			c.ShardWallMs = append(c.ShardWallMs, msf(sw))
		}
		doc.Cells = append(doc.Cells, c)
	}
	doc.SummedWallMs = msf(summed)
	doc.SlowestCellMs = msf(slowest)
	doc.ParallelFloorMs = msf(floor)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// RunnerSpans converts the cell timings into the exporter's wall-clock
// runner spans, so `-simtrace` files carry the executor's own timeline
// (queue wait vs run, per worker) next to the simulated-time tracks.
func RunnerSpans(stats []CellStat) []obs.RunnerSpan {
	spans := make([]obs.RunnerSpan, 0, len(stats))
	for _, s := range stats {
		name := fmt.Sprintf("%s/%d", s.Experiment, s.Trial)
		if s.Label != "" {
			name += "/" + s.Label
		}
		spans = append(spans, obs.RunnerSpan{
			Worker: s.Worker, Name: name,
			Start: s.Start, Wait: s.Wait, Dur: s.Wall,
			ShardWalls: s.ShardWalls,
		})
	}
	return spans
}

// EncodeCSV writes all reports as one CSV stream. Each table
// contributes its header record then its rows, every record prefixed
// with (experiment, trial, seed) columns so concatenated tables of
// different shapes remain self-describing. One record buffer is reused
// across all rows: encoding allocates per report, not per row.
func EncodeCSV(w io.Writer, reports []Report) error {
	cw := csv.NewWriter(w)
	var rec []string
	for _, r := range reports {
		prefix := [...]string{r.Experiment, strconv.Itoa(r.Trial), strconv.FormatUint(r.Seed, 10)}
		write := func(cells []string) error {
			rec = append(rec[:0], prefix[:]...)
			rec = append(rec, cells...)
			return cw.Write(rec)
		}
		if err := write(r.Table.Header); err != nil {
			return err
		}
		for _, row := range r.Table.Rows {
			if err := write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
