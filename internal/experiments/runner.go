package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
)

// The runner executes a batch of experiments — optionally several
// trials of each under derived seeds — across a worker pool. Results
// come back in a deterministic (experiment, trial) order that does
// not depend on the worker count, so a -parallel 8 run is
// byte-identical to a serial one.

// TrialSeed derives the seed for trial t of a run with the given base
// seed. Trial 0 uses the base seed unchanged, so a single-trial run
// reproduces a plain `run -seed N` exactly; later trials mix the
// trial index through splitmix64, giving well-separated streams even
// for adjacent base seeds.
func TrialSeed(base uint64, trial int) uint64 {
	if trial == 0 {
		return base
	}
	x := base + uint64(trial)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		// Options treats seed 0 as "use the default"; avoid aliasing.
		x = 0x9E3779B97F4A7C15
	}
	return x
}

// Report is one completed experiment×trial unit. It carries only
// run-deterministic fields — no wall-clock timing — so that encoded
// reports are byte-identical across serial and parallel runs.
type Report struct {
	Experiment  string `json:"experiment"`
	Description string `json:"description"`
	Trial       int    `json:"trial"`
	Seed        uint64 `json:"seed"`
	Quick       bool   `json:"quick"`
	Table       *Table `json:"table"`
}

// Run executes each named experiment for the given number of trials
// on a pool of `workers` goroutines (workers<=0 selects GOMAXPROCS).
// Trial t runs with TrialSeed(opts.seed(), t). The returned reports
// are ordered by (position in names, trial) regardless of scheduling,
// and an unknown name fails up front before anything runs.
func Run(names []string, opts Options, trials, workers int) ([]Report, error) {
	if trials <= 0 {
		trials = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	exps := make([]Experiment, len(names))
	for i, n := range names {
		e, ok := Get(n)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (see `squeezyctl list`)", n)
		}
		exps[i] = e
	}

	base := opts.seed()
	reports := make([]Report, len(exps)*trials)
	for i, e := range exps {
		for t := 0; t < trials; t++ {
			reports[i*trials+t] = Report{
				Experiment:  e.Name(),
				Description: e.Describe(),
				Trial:       t,
				Seed:        TrialSeed(base, t),
				Quick:       opts.Quick,
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	if workers > len(reports) {
		workers = len(reports)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r := &reports[j]
				o := opts
				o.Seed = r.Seed
				r.Table = exps[j/trials].Run(o).Table()
			}
		}()
	}
	for j := range reports {
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return reports, nil
}

// EncodeText writes each report's aligned-text table, separated by
// blank lines. Multi-trial runs get a per-trial banner so tables with
// identical titles stay distinguishable.
func EncodeText(w io.Writer, reports []Report, trials int) error {
	for i, r := range reports {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if trials > 1 {
			banner := fmt.Sprintf("== %s trial %d (seed %d) ==\n", r.Experiment, r.Trial, r.Seed)
			if _, err := io.WriteString(w, banner); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, r.Table.String()); err != nil {
			return err
		}
	}
	return nil
}

// EncodeJSON writes the reports as one indented JSON array.
func EncodeJSON(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// EncodeCSV writes all reports as one CSV stream. Each table
// contributes its header record then its rows, every record prefixed
// with (experiment, trial, seed) columns so concatenated tables of
// different shapes remain self-describing.
func EncodeCSV(w io.Writer, reports []Report) error {
	cw := csv.NewWriter(w)
	for _, r := range reports {
		prefix := []string{r.Experiment, strconv.Itoa(r.Trial), strconv.FormatUint(r.Seed, 10)}
		if err := cw.Write(append(append([]string{}, prefix...), r.Table.Header...)); err != nil {
			return err
		}
		for _, row := range r.Table.Rows {
			if err := cw.Write(append(append([]string{}, prefix...), row...)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
