package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/cluster"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// cluster-domains: the blast-radius study. The fleet gets a rack/zone
// topology and the fault is no longer one host: a whole rack fails, or
// a zone's racks brown out together. The sweep crosses recovery mode
// (unpaced vs paced re-placement with domain-aware shedding) with
// placement policy (the reclaim-aware baseline vs the blast-radius
// policies) and backend, under three failure shapes of growing radius
// — single host, rack, zone. Phase bounds sit at the failure instant,
// so the *_post columns read the recovery tail on the survivors: how
// much of a function's capacity one domain held, and whether the
// re-placement storm or the reclamation path dominates the recovery.

// domainMode is one recovery configuration of the sweep.
type domainMode struct {
	name   string
	repace *cluster.RepaceConfig
}

func domainModes() []domainMode {
	return []domainMode{
		// Unpaced: every displaced flight re-dispatches at the failure
		// boundary — the recovery storm lands on the survivors at once.
		{name: "unpaced"},
		// Paced: displaced flights drain through the bounded re-placement
		// queue (costmodel.RepacePerTick per tick), and admission sheds
		// low-priority work while the backlog holds pages hostage.
		{name: "paced", repace: &cluster.RepaceConfig{Shed: true}},
	}
}

// domainScenario is one failure shape: either a churn event (single
// host) or a rack-level fault plan.
type domainScenario struct {
	name   string
	events func(at sim.Time) []cluster.FleetEvent
	faults string // fault.Scenario name, "" for churn-only shapes
}

func domainScenarios() []domainScenario {
	return []domainScenario{
		// The PR 6 baseline shape: the busiest single host fails.
		{name: "host-fail", events: func(at sim.Time) []cluster.FleetEvent {
			return []cluster.FleetEvent{{T: at, Kind: cluster.HostFail, Host: -1}}
		}},
		// One rack dies outright: every member fails at the boundary.
		{name: "rack-fail", faults: "rack-fail"},
		// One zone's racks brown out: correlated stragglers, capacity
		// survives but slows.
		{name: "zone-degrade", faults: "zone-degrade"},
	}
}

func addDomainRow(t *Table, s fleetStats, lead ...string) {
	t.AddRow(append(lead,
		fmt.Sprintf("%d", s.Cold),
		fmt.Sprintf("%d", s.Fails),
		fmt.Sprintf("%d", s.Replaced),
		fmt.Sprintf("%d", s.Paced),
		fmt.Sprintf("%d", s.WarmLost),
		fmt.Sprintf("%d", s.Dropped),
		fmt.Sprintf("%d", s.Shed),
		f1(s.ColdP99PreMs),
		f1(s.ColdP99PostMs),
		f1(s.LatP99PostMs),
		fmt.Sprintf("%d", s.Unserved),
	)...)
}

var domainCols = []string{
	"cold", "host_fails", "replaced", "paced", "warm_lost", "dropped", "shed",
	"cold_p99_pre_ms", "cold_p99_post_ms", "lat_p99_post_ms", "unserved",
}

// ClusterDomainsPlan sweeps recovery mode × policy × backend × failure
// shape on a topology-aware fleet. Full scale is 8 hosts in 4 racks
// and 2 zones (16 GiB each — the same 128 GiB the resilience study
// spreads over 4 hosts), so a rack failure removes exactly a quarter
// of the fleet and a zone degrade slows half of it. The failure fires
// at duration/2 with the phase bound on the same instant: the *_pre
// columns are the healthy fleet, the *_post columns are the blast and
// the recovery.
func ClusterDomainsPlan(opts Options) *Plan {
	funcs, duration, baseRPS, burstRPS := fleetScale(opts)
	hosts, hostMem := 8, int64(16)*units.GiB
	topo := &cluster.Topology{Racks: 4, Zones: 2}
	policies := append([]string{"reclaim-aware"}, cluster.DomainPolicyNames()...)
	backends := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	if opts.Quick {
		hosts = 4
		topo = &cluster.Topology{Racks: 2, Zones: 2}
		policies = []string{"reclaim-aware", "spread"}
		backends = []faas.BackendKind{faas.Squeezy}
	}
	at := sim.Time(duration / 2)

	type cellCfg struct {
		fc   fleetCfg
		lead []string
	}
	var cells []cellCfg
	for _, mode := range domainModes() {
		for _, policy := range policies {
			for _, backend := range backends {
				for _, sc := range domainScenarios() {
					fc := fleetCfg{
						policy: policy, backend: backend, hosts: hosts, hostMem: hostMem,
						funcs: funcs, duration: duration, baseRPS: baseRPS, burstRPS: burstRPS,
						phases: []sim.Time{at},
						topo:   topo,
						repace: mode.repace,
					}
					if sc.events != nil {
						fc.events = sc.events(at)
					}
					if sc.faults != "" {
						evs, ok := fault.Scenario(sc.faults, hosts, duration)
						if !ok {
							panic("experiments: unknown fault scenario " + sc.faults)
						}
						fc.faults = evs
						fc.faultSeed = opts.seed()
					}
					applyOptSketch(opts, &fc)
					cells = append(cells, cellCfg{
						fc:   fc,
						lead: []string{mode.name, policy, backend.String(), sc.name},
					})
				}
			}
		}
	}

	seed := opts.seed()
	results := make([]fleetStats, len(cells))
	p := &Plan{Assemble: func() Result {
		t := &Table{
			Title:  "cluster-domains: failure domains vs blast-radius-aware placement (mode x policy x backend x failure)",
			Header: append([]string{"recovery", "policy", "backend", "failure"}, domainCols...),
		}
		for i, c := range cells {
			addDomainRow(t, results[i], c.lead...)
		}
		return t
	}}
	for i, c := range cells {
		i, c := i, c
		p.Stage.Cell(strings.Join(c.lead, "/"), func(w *World) {
			results[i] = fleetRun(w, seed, c.fc)
		})
	}
	return p
}

// ClusterDomains runs the failure-domain sweep serially.
func ClusterDomains(opts Options) Result { return ClusterDomainsPlan(opts).runSerial(newWorld()) }

func init() {
	RegisterPlan("cluster-domains", "failure domains: rack/zone faults vs blast-radius-aware placement and paced recovery", ClusterDomainsPlan)
}
