package experiments

import "testing"

func TestFig7Shape(t *testing.T) {
	res := Fig7(Options{Quick: true})
	byM := map[string]Fig7Series{}
	for _, s := range res.Series {
		byM[s.Method] = s
	}
	ba, vm, sq := byM["balloon"], byM["virtio-mem"], byM["squeezy"]
	// Ballooning hammers the host-side thread (VM exits).
	if ba.PeakHost() < 50 {
		t.Fatalf("balloon host peak = %.1f%%, expected heavy spikes", ba.PeakHost())
	}
	// Vanilla virtio-mem burns the guest vCPU on migrations.
	if vm.PeakGuest() < 30 {
		t.Fatalf("virtio-mem guest peak = %.1f%%, expected migration load", vm.PeakGuest())
	}
	if vm.PeakGuest() <= sq.PeakGuest() {
		t.Fatal("virtio-mem guest CPU not above squeezy")
	}
	// Squeezy is negligible on both sides (§6.1.2).
	if sq.AvgGuest() > 5 || sq.AvgHost() > 5 {
		t.Fatalf("squeezy avg utilization guest=%.1f%% host=%.1f%%, expected negligible",
			sq.AvgGuest(), sq.AvgHost())
	}
	if len(sq.GuestPct) < 50 {
		t.Fatalf("samples = %d", len(sq.GuestPct))
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
