package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/obs"
	"squeezy/internal/sim"
)

// Options tune experiment scale; the zero value selects the paper's
// full protocol.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick shrinks workloads (fewer instances, shorter traces) for
	// smoke tests and -short benchmarks. Shapes still hold; absolute
	// confidence intervals are looser.
	Quick bool
	// Obs, when non-nil, collects one simulation trace per cell
	// (squeezyctl -simtrace / -metrics). Tracing observes only: reports
	// and tables are byte-identical with it on or off.
	Obs *obs.Sink
	// FaultScenario applies a fault plan to every fleet experiment
	// cell: "" or "none" runs fault-free (byte-identical to a build
	// without the fault machinery), a name from fault.ScenarioNames()
	// plays that profile, and "fuzz" generates a random plan from
	// FaultSeed (squeezyctl -faults).
	FaultScenario string
	// FaultSeed seeds fuzzed fault plans and every host's fault
	// decision stream; 0 uses the experiment seed (squeezyctl
	// -faultseed).
	FaultSeed uint64
	// TopoRacks/TopoZones overlay a rack/zone topology on every fleet
	// experiment cell (squeezyctl -topology RxZ). TopoRacks <= 1 leaves
	// fleets flat — byte-identical to a build without the topology
	// layer. With racks set, rack-level fault scenarios and the
	// blast-radius-aware policies become meaningful, and "fuzz" plans
	// draw rack-level kinds too.
	TopoRacks int
	TopoZones int
	// Sketch moves every fleet experiment's latency samples into
	// bounded-memory reservoir mode (squeezyctl -sketch). Off — the
	// default — keeps exact percentiles; recorded tables are
	// byte-identical only with sketches off, since sketched order
	// statistics may differ within stats.RankErrorBound.
	Sketch bool
	// Days overrides the simulated length of the multi-day experiments
	// (squeezyctl -days): cluster-diurnal replays Days simulated days of
	// diurnally modulated traffic. 0 keeps the experiment's default.
	Days float64
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Table is a generic experiment output: a header and rows of cells,
// renderable as an aligned text table (the paper's rows/series), as
// JSON, or as CSV (see encode.go).
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Table lets a bare *Table satisfy Result, so drivers whose natural
// output is already tabular need no wrapper type.
func (t *Table) Table() *Table { return t }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("# " + t.Title + "\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// ms formats a duration as milliseconds with sensible precision.
func ms(d sim.Duration) string { return fmt.Sprintf("%.1f", d.Milliseconds()) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
