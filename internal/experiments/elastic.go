package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/cluster"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// cluster-elastic: the reclaim comparison under fleet churn. A
// pressured fleet plays the Zipf trace while the fleet shape changes
// mid-burst: a host fails at peak (warm pool lost, in-flight work
// re-placed), a host drains at peak (graceful exit under the reclaim
// drain deadline), or an autoscaler grows and shrinks the fleet from
// memory pressure. Latency metrics split at the churn instant, so the
// post-event columns isolate the cold-start storm and tail the event
// causes — the steady-state columns of cluster-policies can't see it.

// elasticChurn is one churn profile of the sweep.
type elasticChurn struct {
	name      string
	events    func(at sim.Time) []cluster.FleetEvent
	autoscale func(hosts int) *cluster.AutoscaleConfig
}

func elasticChurns() []elasticChurn {
	return []elasticChurn{
		{name: "none"},
		{
			// The busiest host dies mid-burst: worst-case warm-pool loss.
			name: "fail-peak",
			events: func(at sim.Time) []cluster.FleetEvent {
				return []cluster.FleetEvent{{T: at, Kind: cluster.HostFail, Host: -1}}
			},
		},
		{
			// The busiest host drains mid-burst: same capacity loss, paid
			// gracefully.
			name: "drain-peak",
			events: func(at sim.Time) []cluster.FleetEvent {
				return []cluster.FleetEvent{{T: at, Kind: cluster.HostDrain, Host: -1}}
			},
		},
		{
			// Memory-pressure autoscaling: scale up into the burst (after
			// a provisioning delay), scale down in the quiet tail.
			name: "autoscale",
			autoscale: func(hosts int) *cluster.AutoscaleConfig {
				return &cluster.AutoscaleConfig{
					High: 0.85, Low: 0.50,
					MinHosts: hosts / 2, MaxHosts: 2 * hosts,
					Cooldown:  20 * sim.Second,
					JoinDelay: 10 * sim.Second,
				}
			},
		},
	}
}

func addElasticRow(t *Table, s fleetStats, lead ...string) {
	t.AddRow(append(lead,
		fmt.Sprintf("%d", s.Joins),
		fmt.Sprintf("%d", s.Fails),
		fmt.Sprintf("%d", s.Drains),
		fmt.Sprintf("%d", s.WarmLost),
		fmt.Sprintf("%d", s.Replaced),
		fmt.Sprintf("%d", s.ColdPre),
		fmt.Sprintf("%d", s.ColdPost),
		f1(s.ColdP99PreMs),
		f1(s.ColdP99PostMs),
		f1(s.LatP99PostMs),
		fmt.Sprintf("%d", s.Dropped),
		fmt.Sprintf("%d", s.Unserved),
	)...)
}

var elasticCols = []string{
	"joins", "fails", "drains", "warm_lost", "replaced",
	"cold_pre", "cold_post", "cold_p99_pre_ms", "cold_p99_post_ms",
	"lat_p99_post_ms", "dropped", "unserved",
}

// ClusterElasticPlan sweeps policy × backend × churn profile on a
// pressured fleet. The churn instant is mid-trace — inside the bursty
// region — and the phase bound sits at the same time, so cold_post /
// cold_p99_post_ms read the storm the event causes.
func ClusterElasticPlan(opts Options) *Plan {
	funcs, duration, baseRPS, burstRPS := fleetScale(opts)
	hosts, hostMem := 4, int64(28)*units.GiB
	backends := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	if opts.Quick {
		hosts, hostMem = 2, 28*units.GiB
		backends = []faas.BackendKind{faas.Squeezy}
	}
	churnAt := sim.Time(duration / 2)

	type cellCfg struct {
		fc   fleetCfg
		lead []string
	}
	var cells []cellCfg
	for _, policy := range []string{"headroom", "reclaim-aware"} {
		for _, backend := range backends {
			for _, churn := range elasticChurns() {
				fc := fleetCfg{
					policy: policy, backend: backend, hosts: hosts, hostMem: hostMem,
					funcs: funcs, duration: duration, baseRPS: baseRPS, burstRPS: burstRPS,
					phases: []sim.Time{churnAt},
				}
				if churn.events != nil {
					fc.events = churn.events(churnAt)
				}
				if churn.autoscale != nil {
					fc.autoscale = churn.autoscale(hosts)
				}
				applyOptTopology(opts, &fc)
				applyOptFaults(opts, &fc)
				applyOptSketch(opts, &fc)
				cells = append(cells, cellCfg{
					fc:   fc,
					lead: []string{policy, backend.String(), churn.name},
				})
			}
		}
	}

	seed := opts.seed()
	results := make([]fleetStats, len(cells))
	p := &Plan{Assemble: func() Result {
		t := &Table{
			Title:  "cluster-elastic: fleet churn at peak (policy x backend x churn profile)",
			Header: append([]string{"policy", "backend", "churn"}, elasticCols...),
		}
		for i, c := range cells {
			addElasticRow(t, results[i], c.lead...)
		}
		return t
	}}
	for i, c := range cells {
		i, c := i, c
		p.Stage.Cell(strings.Join(c.lead, "/"), func(w *World) {
			results[i] = fleetRun(w, seed, c.fc)
		})
	}
	return p
}

// ClusterElastic runs the churn sweep serially.
func ClusterElastic(opts Options) Result { return ClusterElasticPlan(opts).runSerial(newWorld()) }

func init() {
	RegisterPlan("cluster-elastic", "fleet churn: failure/drain at peak and autoscaling vs policy x backend", ClusterElasticPlan)
}
