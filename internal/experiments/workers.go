package experiments

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Adaptive worker sizing: `-parallel 0` means "use the machine", but
// every worker owns a pooled World whose arena cache grows to the
// largest kernel it has simulated — a 64 GiB-span VM's population
// bitmap, buddy ord span, and region counters, plus recycled vmm.VMs
// and scheduler arenas. On memory-tight hosts, GOMAXPROCS worlds can
// push RSS past what the box wants, so the default worker count is
// capped by a memory budget: at most budget/WorldMemEstimateBytes
// workers, never fewer than one. An explicit `-parallel N` is always
// honored as given.

// WorldMemEstimateBytes is the per-world RSS estimate behind the cap:
// a deliberately conservative upper bound for a world that has cached
// the full protocol's largest arena set (the 64 GiB-span fig6/fig7
// kernels dominate: ~2 MiB population bitmap, ~16 MiB buddy ord span,
// region counters, recycled zone structs, scheduler arena, plus the
// recycled FuncVM/vmm state of the fleet sweeps).
const WorldMemEstimateBytes = 256 << 20

// AutoWorkers returns the worker count a `-parallel 0` run should use:
// GOMAXPROCS, capped so that workers × WorldMemEstimateBytes fits in
// budgetBytes. budgetBytes < 0 means "detect": the currently available
// memory (MemAvailable on Linux, clamped by the process's cgroup
// limit in containers); budgetBytes == 0 disables the cap.
func AutoWorkers(budgetBytes int64) int {
	if budgetBytes < 0 {
		budgetBytes = availableMemBytes()
	}
	return workersForBudget(runtime.GOMAXPROCS(0), budgetBytes)
}

// workersForBudget is the pure capping rule: min(procs,
// budget/estimate), at least 1; budget 0 means uncapped.
func workersForBudget(procs int, budgetBytes int64) int {
	if procs < 1 {
		procs = 1
	}
	if budgetBytes <= 0 {
		return procs
	}
	fit := int(budgetBytes / WorldMemEstimateBytes)
	if fit < 1 {
		fit = 1
	}
	if fit < procs {
		return fit
	}
	return procs
}

// availableMemBytes reports the memory this process can actually
// grow into: the host's reclaimable-free memory (MemAvailable from
// /proc/meminfo) clamped by any cgroup memory limit — in a container,
// /proc/meminfo describes the host, and sizing workers to it gets the
// run OOM-killed by the much smaller cgroup. Returns 0 — "unknown,
// don't cap" — when the platform exposes neither.
func availableMemBytes() int64 {
	avail := memAvailableBytes()
	limit := cgroupMemLimitBytes()
	switch {
	case avail == 0:
		return limit
	case limit != 0 && limit < avail:
		return limit
	default:
		return avail
	}
}

// memAvailableBytes reads MemAvailable from /proc/meminfo, 0 on any
// failure.
func memAvailableBytes() int64 {
	data, err := os.ReadFile("/proc/meminfo")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemAvailable:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kib, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kib << 10
	}
	return 0
}

// cgroupMemLimitBytes reads the process's cgroup memory limit
// (v2 memory.max, then v1 memory.limit_in_bytes), 0 when unlimited,
// absent, or implausibly large (kernels report "no limit" as a huge
// page-rounded number).
func cgroupMemLimitBytes() int64 {
	for _, path := range []string{
		"/sys/fs/cgroup/memory.max",
		"/sys/fs/cgroup/memory/memory.limit_in_bytes",
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		s := strings.TrimSpace(string(data))
		if s == "max" {
			continue
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil || n <= 0 || n >= 1<<60 {
			continue
		}
		return n
	}
	return 0
}
