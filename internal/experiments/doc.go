// Package experiments contains one driver per table and figure of the
// paper's evaluation (§6), plus ablations and the fleet-scale
// cluster-* sweeps. Each driver builds the full stack — host, VMM,
// guest kernel, reclamation interface, FaaS runtime, workload — runs
// the paper's protocol in virtual time, and returns the rows or series
// the paper plots. Every driver is a pure function of its seed.
//
// # Structure
//
// Drivers self-register into a package-level registry (registry.go)
// from init(), so the CLI, benchmarks, and determinism tests all
// enumerate one source of truth. A driver exposes its work as a cell
// plan (plan.go): independent simulation cells plus an Assemble step,
// optionally chained into data-dependent stages. The unified executor
// (runner.go) flattens experiments × trials × stages onto one worker
// pool; each worker owns a pooled World (world.go) whose scheduler,
// arena caches, recycled VMs, and sharded fleet are reset — not
// rebuilt — between cells.
//
// Cells may decompose further at run time: a sharded fleet cell fans
// per-host shard advances through World.Exec onto the same worker
// pool, where idle workers — and workers blocked in their own Exec —
// steal them. The parallel wall-clock floor of a full run is therefore
// the slowest host-shard, not the slowest cell.
//
// # Determinism
//
// Workers write only pre-assigned result slots, per-trial and per-cell
// seeds derive through SubSeed (splitmix64), pooled worlds reset to
// fresh-equivalent state, shard tasks are order-independent, and
// reports carry no timing fields — so output is byte-identical across
// worker counts, shard counts, and serial/parallel execution, which
// the determinism tests assert for every registered experiment.
//
// EXPERIMENTS.md records paper-reported vs measured values for each
// driver.
package experiments
