package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/cluster"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// cluster-resilience: the fault-injection study. A pressured fleet
// plays the Zipf trace while a named fault scenario degrades it
// mid-burst — reclaim commands stalling and completing half-strength,
// cold boots failing and executions crashing, or one host browning
// out to 30x slow — and the dispatcher either runs the plain path (faults land on
// callers unmitigated) or the resilience layer (per-attempt timeouts,
// capped-backoff retries, hedged dispatch, priority shedding). Phase
// bounds sit at the fault-window start, so the post columns read the
// tail the faults cause and how much of it each mitigation buys back.

// resilMode is one dispatcher configuration of the sweep.
type resilMode struct {
	name  string
	resil *cluster.ResilienceConfig
}

func resilModes() []resilMode {
	return []resilMode{
		// Plain dispatch: every injected failure reaches the caller.
		{name: "none"},
		// Timeouts + capped-backoff retries. No shedding, so the row
		// serves the same admitted workload as mode=none and the latency
		// columns compare directly.
		{name: "retry", resil: &cluster.ResilienceConfig{}},
		// Retries plus hedged dispatch with first-wins cancellation.
		{name: "retry+hedge", resil: &cluster.ResilienceConfig{Hedge: true}},
		// The full layer, adding priority load shedding — the one mode
		// that changes the admitted workload, so its columns read as a
		// tradeoff (shed_pct bought the rest) rather than a like-for-like
		// latency comparison.
		{name: "retry+hedge+shed", resil: &cluster.ResilienceConfig{Hedge: true, Shed: true}},
	}
}

func addResilienceRow(t *Table, s fleetStats, lead ...string) {
	pct := func(n int) string {
		if s.Invoked == 0 {
			return f1(0)
		}
		return f1(100 * float64(n) / float64(s.Invoked))
	}
	t.AddRow(append(lead,
		fmt.Sprintf("%d", s.Cold),
		fmt.Sprintf("%d", s.Failed),
		fmt.Sprintf("%d", s.Dropped),
		fmt.Sprintf("%d", s.Shed),
		pct(s.Dropped+s.Failed),
		pct(s.Shed),
		fmt.Sprintf("%d", s.TimedOut),
		fmt.Sprintf("%d", s.Retries),
		fmt.Sprintf("%d", s.Hedges),
		fmt.Sprintf("%d", s.HedgeWins),
		f1(s.ColdP99PreMs),
		f1(s.ColdP99PostMs),
		f1(s.LatP99PostMs),
		fmt.Sprintf("%d", s.Unserved),
	)...)
}

var resilienceCols = []string{
	"cold", "failed", "dropped", "shed", "fail_pct", "shed_pct",
	"timeouts", "retries", "hedges", "hedge_wins",
	"cold_p99_pre_ms", "cold_p99_post_ms", "lat_p99_post_ms", "unserved",
}

// ClusterResiliencePlan sweeps resilience mode × backend × fault
// scenario on a pressured fleet. Every scenario opens its windows over
// the third quarter of the trace ([duration/2, 3·duration/4)), and the
// phase bound sits at the window start, so the *_post columns compare
// the fault-era tail across mitigation levels — mode=none is the
// unmitigated baseline the retry and hedge rows are read against.
func ClusterResiliencePlan(opts Options) *Plan {
	funcs, duration, baseRPS, burstRPS := fleetScale(opts)
	// 32 GiB hosts, not cluster-elastic's 28: the fault study needs a
	// fleet whose healthy tails are congestion-light, so the *_post
	// columns measure what the injected faults cause and what the
	// mitigations buy back — in the overcommitted regime the backlog
	// dominates every tail and no dispatcher policy can conjure the
	// missing capacity.
	hosts, hostMem := 4, int64(32)*units.GiB
	backends := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	if opts.Quick {
		hosts = 2
		backends = []faas.BackendKind{faas.Squeezy}
	}

	type cellCfg struct {
		fc   fleetCfg
		lead []string
	}
	var cells []cellCfg
	for _, mode := range resilModes() {
		for _, backend := range backends {
			for _, scenario := range fault.ScenarioNames() {
				evs, ok := fault.Scenario(scenario, hosts, duration)
				if !ok {
					panic("experiments: unknown fault scenario " + scenario)
				}
				fc := fleetCfg{
					policy: "reclaim-aware", backend: backend, hosts: hosts, hostMem: hostMem,
					funcs: funcs, duration: duration, baseRPS: baseRPS, burstRPS: burstRPS,
					phases:    []sim.Time{sim.Time(duration / 2)},
					faults:    evs,
					faultSeed: opts.seed(),
					resil:     mode.resil,
				}
				applyOptSketch(opts, &fc)
				cells = append(cells, cellCfg{
					fc:   fc,
					lead: []string{mode.name, backend.String(), scenario},
				})
			}
		}
	}

	seed := opts.seed()
	results := make([]fleetStats, len(cells))
	p := &Plan{Assemble: func() Result {
		t := &Table{
			Title:  "cluster-resilience: fault scenarios vs dispatcher mitigation (mode x backend x fault)",
			Header: append([]string{"resilience", "backend", "fault"}, resilienceCols...),
		}
		for i, c := range cells {
			addResilienceRow(t, results[i], c.lead...)
		}
		return t
	}}
	for i, c := range cells {
		i, c := i, c
		p.Stage.Cell(strings.Join(c.lead, "/"), func(w *World) {
			results[i] = fleetRun(w, seed, c.fc)
		})
	}
	return p
}

// ClusterResilience runs the fault sweep serially.
func ClusterResilience(opts Options) Result { return ClusterResiliencePlan(opts).runSerial(newWorld()) }

func init() {
	RegisterPlan("cluster-resilience", "fault injection: reclaim degradation, crashes, stragglers vs retries/hedging/shedding", ClusterResiliencePlan)
}
