package experiments

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Fig11Row compares the 1:1 and N:1 models for one function: the cold
// start phase breakdown (Figure 11a) and the per-instance host memory
// footprint (Figure 11b).
type Fig11Row struct {
	Fn string

	OneToOne Phases11
	NToOne   Phases11

	Footprint1to1 int64
	FootprintN1   int64
}

// Phases11 is a cold-start breakdown in milliseconds.
type Phases11 struct {
	VMMDelayMs      float64
	ContainerInitMs float64
	FuncInitMs      float64
	ExecMs          float64
}

// TotalMs returns the end-to-end cold start.
func (p Phases11) TotalMs() float64 {
	return p.VMMDelayMs + p.ContainerInitMs + p.FuncInitMs + p.ExecMs
}

func toPhases11(p faas.Phases) Phases11 {
	return Phases11{
		VMMDelayMs:      p.VMMDelay.Milliseconds(),
		ContainerInitMs: p.ContainerInit.Milliseconds(),
		FuncInitMs:      p.FuncInit.Milliseconds(),
		ExecMs:          p.Exec.Milliseconds(),
	}
}

// Fig11Result is the full figure.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11 reproduces §6.3 / Figure 11: for each Table 1 function, cold
// start a fresh 1:1 microVM and compare against creating a new instance
// on an already running, dynamically resized (Squeezy) N:1 VM whose
// shared dependencies are already cached. The N:1 model skips the boot,
// shares the page cache (faster container/function init), and its
// per-instance footprint excludes the replicated guest OS and
// dependencies.
func Fig11(opts Options) *Fig11Result {
	return Fig11Plan(opts).runSerial(newWorld()).(*Fig11Result)
}

// Fig11Plan is the figure as a cell plan: two cells per function, one
// for the 1:1 microVM cold start and one for the warmed N:1 VM.
func Fig11Plan(opts Options) *Plan {
	fns := workload.Functions()
	res := &Fig11Result{Rows: make([]Fig11Row, len(fns))}
	p := &Plan{Assemble: func() Result { return res }}
	for i, fn := range fns {
		i, fn := i, fn
		res.Rows[i].Fn = fn.Name
		p.Stage.Cell(fn.Name+"/1to1", func(w *World) {
			// 1:1: fresh microVM per instance.
			sched := w.Scheduler()
			host := hostmem.New(0)
			faas.ColdStart1to1(sched, host, costmodel.Default(), fn, func(ph faas.Phases, fp int64) {
				res.Rows[i].OneToOne = toPhases11(ph)
				res.Rows[i].Footprint1to1 = fp
			})
			sched.Run()
		})
		p.Stage.Cell(fn.Name+"/Nto1", func(w *World) {
			// N:1: warmed Squeezy VM; measure the second instance.
			sched := w.Scheduler()
			rt := w.Runtime(hostmem.New(0), costmodel.Default())
			fv := rt.AddVM(faas.VMConfig{
				Name: fn.Name, Kind: faas.Squeezy, Fn: fn, N: 4,
				KeepAlive: 30 * sim.Second,
			})
			fv.InvokePrimary(nil) // warm the shared page cache
			sched.RunUntil(sim.Time(60 * sim.Second))
			popBefore := fv.VM.PopulatedPages()
			fv.InvokePrimary(func(r faas.Result) {
				res.Rows[i].NToOne = toPhases11(r.Phases)
				res.Rows[i].FootprintN1 = units.PagesToBytes(fv.VM.PopulatedPages() - popBefore)
			})
			sched.RunUntil(sim.Time(120 * sim.Second))
		})
	}
	return p
}

// ColdStartSpeedup returns the geomean of 1:1/N:1 cold start times
// (≈1.6x in the paper).
func (r *Fig11Result) ColdStartSpeedup() float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, row.OneToOne.TotalMs()/row.NToOne.TotalMs())
	}
	return stats.Geomean(xs)
}

// FootprintRatio returns the geomean of 1:1/N:1 footprints (≈2.53x in
// the paper).
func (r *Fig11Result) FootprintRatio() float64 {
	var xs []float64
	for _, row := range r.Rows {
		xs = append(xs, float64(row.Footprint1to1)/float64(row.FootprintN1))
	}
	return stats.Geomean(xs)
}

// Table renders both sub-figures.
func (r *Fig11Result) Table() *Table {
	t := &Table{
		Title: "Figure 11: 1:1 vs N:1 cold start (ms) and footprint (MiB)",
		Header: []string{"function", "model", "vmm", "container", "init", "exec", "total",
			"footprint"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Fn, "1:1",
			f1(row.OneToOne.VMMDelayMs), f1(row.OneToOne.ContainerInitMs),
			f1(row.OneToOne.FuncInitMs), f1(row.OneToOne.ExecMs), f1(row.OneToOne.TotalMs()),
			f1(float64(row.Footprint1to1)/float64(units.MiB)))
		t.AddRow(row.Fn, "N:1",
			f1(row.NToOne.VMMDelayMs), f1(row.NToOne.ContainerInitMs),
			f1(row.NToOne.FuncInitMs), f1(row.NToOne.ExecMs), f1(row.NToOne.TotalMs()),
			f1(float64(row.FootprintN1)/float64(units.MiB)))
	}
	t.AddRow("Geomean", "1:1 / N:1", "", "", "", "", f2(r.ColdStartSpeedup()), f2(r.FootprintRatio()))
	return t
}

func init() {
	RegisterPlan("fig11", "Figure 11: 1:1 vs N:1 cold start (ms) and footprint (MiB)", Fig11Plan)
}
