package experiments

import (
	"reflect"
	"testing"
)

// The whole simulation must be a pure function of its seed: identical
// seeds give byte-identical tables, different seeds (for stochastic
// experiments) may differ.

func TestFig5Deterministic(t *testing.T) {
	a := Fig5(Options{Quick: true, Seed: 7})
	b := Fig5(Options{Quick: true, Seed: 7})
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("Fig5 not deterministic for equal seeds")
	}
}

func TestFig6Deterministic(t *testing.T) {
	a := Fig6(Options{Quick: true, Seed: 5})
	b := Fig6(Options{Quick: true, Seed: 5})
	if !reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("Fig6 not deterministic for equal seeds")
	}
}

func TestFig8Deterministic(t *testing.T) {
	a := Fig8(Options{Quick: true, Seed: 3})
	b := Fig8(Options{Quick: true, Seed: 3})
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatal("Fig8 not deterministic for equal seeds")
	}
}

func TestFig2SeedSensitivity(t *testing.T) {
	a := Fig2(Options{Quick: true, Seed: 1})
	b := Fig2(Options{Quick: true, Seed: 2})
	if reflect.DeepEqual(a.Points, b.Points) {
		t.Fatal("different seeds produced identical churn — generator ignores the seed")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	out := tab.String()
	if out == "" || out[0] != '#' {
		t.Fatalf("table rendering broken: %q", out)
	}
}
