package experiments

import (
	"fmt"

	"squeezy/internal/sim"
	"squeezy/internal/trace"
)

// Fig2Result is Figure 2: per-minute instance creations and evictions
// aggregated over the 10 most popular functions, one simulated hour,
// 5-minute keep-alive.
type Fig2Result struct {
	Points []trace.ChurnPoint
}

// Fig2 reproduces Figure 2's analysis: replay Azure-top-10-shaped
// invocation streams against a keep-alive instance pool and count
// creations and evictions per minute. Thousands of instances churn per
// minute, motivating agile VM resizing.
func Fig2(opts Options) *Fig2Result {
	return Fig2Plan(opts).runSerial(newWorld()).(*Fig2Result)
}

// Fig2Plan decomposes Figure 2 into one cell per top-10 function: each
// cell generates only its own rank's trace and replays it through the
// churn model; Assemble sums the per-minute points across ranks.
func Fig2Plan(opts Options) *Plan {
	duration := sim.Duration(sim.Hour)
	if opts.Quick {
		duration = 10 * sim.Minute
	}
	const ranks = 10
	perRank := make([][]trace.ChurnPoint, ranks)
	p := &Plan{Assemble: func() Result {
		minutes := int((duration + sim.Minute - 1) / sim.Minute)
		agg := make([]trace.ChurnPoint, minutes)
		for i := range agg {
			agg[i].Minute = i
		}
		for _, pts := range perRank {
			for i, pt := range pts {
				agg[i].Creations += pt.Creations
				agg[i].Evictions += pt.Evictions
			}
		}
		return &Fig2Result{Points: agg}
	}}
	for i := 0; i < ranks; i++ {
		i := i
		p.Stage.Cell(fmt.Sprintf("rank%d", i), func(*World) {
			tr := trace.TopTenTrace(opts.seed(), duration, i)
			perRank[i] = trace.InstanceChurn(tr, sim.Second, 5*sim.Minute, duration)
		})
	}
	return p
}

// PeakCreations returns the busiest minute's creation count.
func (r *Fig2Result) PeakCreations() int {
	m := 0
	for _, p := range r.Points {
		if p.Creations > m {
			m = p.Creations
		}
	}
	return m
}

// PeakEvictions returns the busiest minute's eviction count.
func (r *Fig2Result) PeakEvictions() int {
	m := 0
	for _, p := range r.Points {
		if p.Evictions > m {
			m = p.Evictions
		}
	}
	return m
}

// Table renders the per-minute churn.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2: instance creations/evictions per minute (top-10 functions)",
		Header: []string{"minute", "creations", "evictions"},
	}
	for _, p := range r.Points {
		t.AddRow(fmt.Sprintf("%d", p.Minute), fmt.Sprintf("%d", p.Creations), fmt.Sprintf("%d", p.Evictions))
	}
	return t
}

func init() {
	RegisterPlan("fig2", "Figure 2: instance creations/evictions per minute (top-10 functions)", Fig2Plan)
}
