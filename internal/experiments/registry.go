package experiments

import (
	"fmt"
	"sort"
)

// Result is what an experiment run produces. Every driver's typed
// result satisfies it by exposing the figure's rows as a Table, which
// in turn renders as aligned text, JSON, or CSV.
type Result interface {
	Table() *Table
}

// Experiment is a registered, runnable driver: one table or figure of
// the paper's evaluation, or an ablation of a design choice.
type Experiment interface {
	// Name is the short CLI-facing identifier, e.g. "fig6".
	Name() string
	// Describe is a one-line summary shown by `squeezyctl list`.
	Describe() string
	// Run executes the driver serially. It must be a pure function of
	// opts.Seed: equal seeds give byte-identical tables.
	Run(opts Options) Result
	// Plan enumerates the driver's cells for the unified executor.
	// Executing the plan (at any worker count) must produce the same
	// result as Run.
	Plan(opts Options) *Plan
}

// planExperiment adapts a plan-enumerating driver function to
// Experiment.
type planExperiment struct {
	name string
	desc string
	plan func(Options) *Plan
}

func (e planExperiment) Name() string            { return e.name }
func (e planExperiment) Describe() string        { return e.desc }
func (e planExperiment) Run(opts Options) Result { return e.plan(opts).runSerial(newWorld()) }
func (e planExperiment) Plan(opts Options) *Plan { return e.plan(opts) }

var registry = map[string]Experiment{}

// RegisterPlan adds a cell-plan experiment under its name. Drivers
// call it from init(), so importing this package is enough to populate
// the registry. Duplicate names panic: they are a build-time bug.
func RegisterPlan(name, desc string, plan func(Options) *Plan) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %q", name))
	}
	registry[name] = planExperiment{name: name, desc: desc, plan: plan}
}

// Register adds an experiment from a plain driver function, wrapped as
// a single-cell plan. Sweep drivers should prefer RegisterPlan so the
// executor can spread their cells across workers.
func Register(name, desc string, run func(Options) Result) {
	RegisterPlan(name, desc, func(opts Options) *Plan {
		var res Result
		p := &Plan{Assemble: func() Result { return res }}
		p.Stage.Cell(name, func(w *World) { res = run(opts) })
		return p
	})
}

// Get returns the named experiment, or false if none is registered.
func Get(name string) (Experiment, bool) {
	e, ok := registry[name]
	return e, ok
}

// Names returns all registered names in canonical order: natural
// sort, with embedded integers compared numerically so fig2 < fig10
// (ablations sort before figures, as in `squeezyctl list`). The
// order is the serial execution order `squeezyctl all` reproduces.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return lessNatural(names[i], names[j]) })
	return names
}

// All returns every registered experiment in Names() order.
func All() []Experiment {
	names := Names()
	out := make([]Experiment, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// lessNatural orders strings with embedded integers numerically, so
// fig2 < fig10 and fig-style names stay in paper order.
func lessNatural(a, b string) bool {
	for len(a) > 0 && len(b) > 0 {
		if isDigit(a[0]) && isDigit(b[0]) {
			an, ar := takeInt(a)
			bn, br := takeInt(b)
			if an != bn {
				return an < bn
			}
			a, b = ar, br
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func takeInt(s string) (int, string) {
	n := 0
	i := 0
	for i < len(s) && isDigit(s[i]) {
		n = n*10 + int(s[i]-'0')
		i++
	}
	return n, s[i:]
}
