package experiments

import "testing"

func TestFig6Shape(t *testing.T) {
	res := Fig6(Options{Quick: true})
	var vmemLow, vmemHigh, sqMin, sqMax float64
	for _, p := range res.Points {
		switch p.Method {
		case "virtio-mem":
			if p.UtilizationPct == 0 {
				vmemLow = p.LatencyMs
			}
			if p.UtilizationPct == 90 {
				vmemHigh = p.LatencyMs
			}
		case "squeezy":
			if sqMin == 0 || p.LatencyMs < sqMin {
				sqMin = p.LatencyMs
			}
			if p.LatencyMs > sqMax {
				sqMax = p.LatencyMs
			}
		}
	}
	// Vanilla climbs with utilization (migrations); Squeezy is flat.
	if vmemHigh <= vmemLow*2 {
		t.Fatalf("virtio-mem latency not climbing: %v -> %v", vmemLow, vmemHigh)
	}
	if sqMax > sqMin*1.2 {
		t.Fatalf("squeezy latency not flat: min %v, max %v", sqMin, sqMax)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig6SqueezyAbsolute(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64 GiB VM")
	}
	// Full-size anchor: Squeezy reclaims 2 GiB in ~125 ms regardless of
	// utilization (§6.1.1).
	res := Fig6(Options{})
	for _, p := range res.Points {
		if p.Method != "squeezy" {
			continue
		}
		if p.LatencyMs < 100 || p.LatencyMs > 160 {
			t.Fatalf("squeezy at %d%% = %.0fms, outside the ~125ms band", p.UtilizationPct, p.LatencyMs)
		}
	}
}
