package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

func TestTrialSeed(t *testing.T) {
	if TrialSeed(7, 0) != 7 {
		t.Fatal("trial 0 must reuse the base seed")
	}
	seen := map[uint64]bool{}
	for trial := 0; trial < 64; trial++ {
		s := TrialSeed(7, trial)
		if s == 0 {
			t.Fatalf("trial %d derived seed 0, which Options would remap", trial)
		}
		if seen[s] {
			t.Fatalf("trial %d repeats an earlier seed", trial)
		}
		seen[s] = true
		if s != TrialSeed(7, trial) {
			t.Fatalf("TrialSeed not deterministic at trial %d", trial)
		}
	}
	if TrialSeed(7, 1) == TrialSeed(8, 1) {
		t.Fatal("adjacent base seeds collide at trial 1")
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run([]string{"fig1", "nope"}, Options{Quick: true}, 1, 1); err == nil {
		t.Fatal("unknown experiment name did not error")
	}
}

// TestRunParallelMatchesSerial is the determinism guard for the
// worker pool: the same batch across 1 and 8 workers, 2 trials each,
// must encode to identical bytes in every format.
func TestRunParallelMatchesSerial(t *testing.T) {
	names := []string{"fig5", "fig2", "abl-policy", "pluglat", "cluster-scale"}
	opts := Options{Seed: 3, Quick: true}
	const trials = 2
	serial, err := Run(names, opts, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(names, opts, trials, 8)
	if err != nil {
		t.Fatal(err)
	}
	encodeAll := func(reports []Report) []byte {
		var buf bytes.Buffer
		if err := EncodeText(&buf, reports, trials); err != nil {
			t.Fatal(err)
		}
		if err := EncodeJSON(&buf, reports); err != nil {
			t.Fatal(err)
		}
		if err := EncodeCSV(&buf, reports); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encodeAll(serial), encodeAll(par)) {
		t.Fatal("parallel run differs from serial run")
	}
	// Order and seed schedule must follow (name position, trial).
	for i, n := range names {
		for tr := 0; tr < trials; tr++ {
			r := serial[i*trials+tr]
			if r.Experiment != n || r.Trial != tr || r.Seed != TrialSeed(3, tr) {
				t.Fatalf("report %d out of order: %+v", i*trials+tr, r)
			}
		}
	}
}

func TestSubSeed(t *testing.T) {
	if SubSeed(9) != 9 {
		t.Fatal("SubSeed with no dims must return the base")
	}
	seen := map[uint64]bool{}
	for cell := 0; cell < 256; cell++ {
		s := SubSeed(7, cell)
		if s == 0 {
			t.Fatalf("cell %d derived seed 0, which Options would remap", cell)
		}
		if seen[s] {
			t.Fatalf("cell %d repeats an earlier stream", cell)
		}
		seen[s] = true
	}
	// Multi-dimensional coordinates must not alias their flattened
	// neighbours: (trial 1, cell 0) != (trial 0, cell 1) style collisions.
	if SubSeed(7, 1, 0) == SubSeed(7, 0, 1) {
		t.Fatal("adjacent (trial, cell) coordinates collide")
	}
	if SubSeed(7, 2) == SubSeed(8, 2) {
		t.Fatal("adjacent base seeds collide at the same coordinate")
	}
	// TrialSeed is SubSeed's single-dimension form with the trial-0
	// identity.
	if TrialSeed(7, 0) != 7 || TrialSeed(7, 3) != SubSeed(7, 3) {
		t.Fatal("TrialSeed must be the one-dimensional SubSeed")
	}
}

// TestFullRegistryWorkerCountDeterminism is the cross-worker-count
// determinism guard the unified executor must uphold: the complete
// registry — every experiment's cells plus two trials — encodes to
// byte-identical JSON, CSV, and text at workers ∈ {1, 2, 8}.
func TestFullRegistryWorkerCountDeterminism(t *testing.T) {
	names := Names()
	opts := Options{Seed: 3, Quick: true}
	const trials = 2
	encodeAll := func(reports []Report) []byte {
		var buf bytes.Buffer
		if err := EncodeText(&buf, reports, trials); err != nil {
			t.Fatal(err)
		}
		if err := EncodeJSON(&buf, reports); err != nil {
			t.Fatal(err)
		}
		if err := EncodeCSV(&buf, reports); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		reports, err := Run(names, opts, trials, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := encodeAll(reports)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("output at %d workers differs from 1 worker", workers)
		}
	}
}

// TestRunCellStats checks the per-cell timing channel: every cell of
// every report shows up exactly once.
func TestRunCellStats(t *testing.T) {
	names := []string{"fig5", "abl-policy"}
	opts := Options{Seed: 1, Quick: true}
	reports, stats, err := RunWithCellStats(names, opts, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 0
	for _, n := range names {
		e, _ := Get(n)
		wantCells += len(e.Plan(opts).Cells)
	}
	if len(stats) != wantCells {
		t.Fatalf("got %d cell stats, want %d", len(stats), wantCells)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, s := range stats {
		if s.Experiment != "fig5" && s.Experiment != "abl-policy" {
			t.Fatalf("stat for unknown experiment %q", s.Experiment)
		}
	}
}

// TestStagedPlanExecutes exercises the Then continuation path of the
// executor directly: a two-stage plan whose second stage depends on
// the first stage's results.
func TestStagedPlanExecutes(t *testing.T) {
	RegisterPlan("test-staged", "two-stage test plan", func(o Options) *Plan {
		first := make([]int, 3)
		var second []int
		p := &Plan{Assemble: func() Result {
			t := &Table{Title: "staged", Header: []string{"v"}}
			for _, v := range second {
				t.AddRow(fmt.Sprintf("%d", v))
			}
			return t
		}}
		for i := range first {
			i := i
			p.Stage.Cell(fmt.Sprintf("first%d", i), func(*World) { first[i] = i + 1 })
		}
		p.Stage.Then = func() *Stage {
			sum := first[0] + first[1] + first[2]
			st := &Stage{}
			second = make([]int, 2)
			for i := range second {
				i := i
				st.Cell(fmt.Sprintf("second%d", i), func(*World) { second[i] = sum * (i + 1) })
			}
			return st
		}
		return p
	})
	defer delete(registry, "test-staged")
	for _, workers := range []int{1, 4} {
		reports, err := Run([]string{"test-staged"}, Options{}, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		tab := reports[0].Table
		if len(tab.Rows) != 2 || tab.Rows[0][0] != "6" || tab.Rows[1][0] != "12" {
			t.Fatalf("staged plan at %d workers produced %v", workers, tab.Rows)
		}
	}
}
