package experiments

import (
	"bytes"
	"testing"
)

func TestTrialSeed(t *testing.T) {
	if TrialSeed(7, 0) != 7 {
		t.Fatal("trial 0 must reuse the base seed")
	}
	seen := map[uint64]bool{}
	for trial := 0; trial < 64; trial++ {
		s := TrialSeed(7, trial)
		if s == 0 {
			t.Fatalf("trial %d derived seed 0, which Options would remap", trial)
		}
		if seen[s] {
			t.Fatalf("trial %d repeats an earlier seed", trial)
		}
		seen[s] = true
		if s != TrialSeed(7, trial) {
			t.Fatalf("TrialSeed not deterministic at trial %d", trial)
		}
	}
	if TrialSeed(7, 1) == TrialSeed(8, 1) {
		t.Fatal("adjacent base seeds collide at trial 1")
	}
}

func TestRunUnknownName(t *testing.T) {
	if _, err := Run([]string{"fig1", "nope"}, Options{Quick: true}, 1, 1); err == nil {
		t.Fatal("unknown experiment name did not error")
	}
}

// TestRunParallelMatchesSerial is the determinism guard for the
// worker pool: the same batch across 1 and 8 workers, 2 trials each,
// must encode to identical bytes in every format.
func TestRunParallelMatchesSerial(t *testing.T) {
	names := []string{"fig5", "fig2", "abl-policy", "pluglat", "cluster-scale"}
	opts := Options{Seed: 3, Quick: true}
	const trials = 2
	serial, err := Run(names, opts, trials, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(names, opts, trials, 8)
	if err != nil {
		t.Fatal(err)
	}
	encodeAll := func(reports []Report) []byte {
		var buf bytes.Buffer
		if err := EncodeText(&buf, reports, trials); err != nil {
			t.Fatal(err)
		}
		if err := EncodeJSON(&buf, reports); err != nil {
			t.Fatal(err)
		}
		if err := EncodeCSV(&buf, reports); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encodeAll(serial), encodeAll(par)) {
		t.Fatal("parallel run differs from serial run")
	}
	// Order and seed schedule must follow (name position, trial).
	for i, n := range names {
		for tr := 0; tr < trials; tr++ {
			r := serial[i*trials+tr]
			if r.Experiment != n || r.Trial != tr || r.Seed != TrialSeed(3, tr) {
				t.Fatalf("report %d out of order: %+v", i*trials+tr, r)
			}
		}
	}
}
