package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The registry is the CLI's source of truth: every driver must be
// present, runnable in Quick mode, and a pure function of its seed —
// the property the parallel runner's byte-identity guarantee rests on.

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "pluglat",
		"abl-batching", "abl-zeroing", "abl-policy", "abl-partition",
		"cluster-policies", "cluster-scale", "cluster-overcommit",
		"cluster-elastic",
	}
	for _, n := range want {
		if _, ok := Get(n); !ok {
			t.Errorf("experiment %q not registered", n)
		}
	}
	if got := len(Names()); got < 11 {
		t.Fatalf("registry has %d experiments, want >= 11", got)
	}
}

func TestNamesNaturalOrder(t *testing.T) {
	names := Names()
	idx := func(n string) int {
		for i, v := range names {
			if v == n {
				return i
			}
		}
		t.Fatalf("%q missing from Names()", n)
		return -1
	}
	if !(idx("fig2") < idx("fig5") && idx("fig9") < idx("fig10") && idx("fig10") < idx("fig11")) {
		t.Fatalf("figures not in numeric order: %v", names)
	}
}

// TestRegistryQuickDeterminism runs every registered experiment twice
// in Quick mode under the same seed and requires byte-identical JSON.
func TestRegistryQuickDeterminism(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			opts := Options{Seed: 11, Quick: true}
			runJSON := func() []byte {
				tab := e.Run(opts).Table()
				if tab == nil {
					t.Fatal("nil table")
				}
				if len(tab.Rows) == 0 {
					t.Fatal("empty table")
				}
				j, err := tab.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return j
			}
			if a, b := runJSON(), runJSON(); !bytes.Equal(a, b) {
				t.Fatalf("two runs with seed 11 differ:\n%s\n---\n%s", a, b)
			}
		})
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("fig1", "dup", func(Options) Result { return &Table{} })
}

func TestTableEncoders(t *testing.T) {
	tab := &Table{Title: "t", Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y")
	j, err := tab.JSON()
	if err != nil || !strings.Contains(string(j), `"rows"`) {
		t.Fatalf("JSON: %v %s", err, j)
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\n1,\"x,y\"\n" {
		t.Fatalf("CSV = %q", got)
	}
}
