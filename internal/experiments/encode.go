package experiments

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// Machine-readable encoders for experiment output. Both are
// deterministic: equal tables encode to equal bytes, which is what
// the determinism tests and the parallel/serial equivalence guarantee
// are checked against.

// JSON returns the table as indented JSON.
func (t *Table) JSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// WriteCSV writes the table as CSV: one header record then one record
// per row. The title is not emitted; callers that concatenate several
// tables should prefix their own identifying columns (the runner's
// CSV format does).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
