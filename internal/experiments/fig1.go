package experiments

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Fig1Result is Figure 1: guest and host memory usage (GiB) and the
// live-instance count of a statically provisioned 50:1 VM serving a
// bursty trace.
type Fig1Result struct {
	Guest     stats.TimeSeries
	HostUsage stats.TimeSeries
	Instances stats.TimeSeries
}

// Fig1 reproduces Figure 1: a 50:1 VM without memory elasticity serves
// a bursty, real-world-shaped trace. The guest's allocated memory
// follows the load down after keep-alive evictions, but the host's
// populated memory never shrinks — the idle-memory pathology motivating
// the paper.
func Fig1(opts Options) *Fig1Result {
	return Fig1Plan(opts).runSerial(newWorld()).(*Fig1Result)
}

// Fig1Plan is Fig1 as a cell plan: one simulation, one cell.
func Fig1Plan(opts Options) *Plan {
	res := &Fig1Result{}
	p := &Plan{Assemble: func() Result { return res }}
	p.Stage.Cell("fig1", func(w *World) { fig1Run(w, opts, res) })
	return p
}

func fig1Run(w *World, opts Options, res *Fig1Result) {
	duration := 450 * sim.Second
	n := 50
	if opts.Quick {
		duration = 150 * sim.Second
		n = 12
	}
	sched := w.Scheduler()
	host := hostmem.New(0)
	cost := costmodel.Default()
	rt := w.Runtime(host, cost)
	fn := workload.ByName("HTML")
	fv := rt.AddVM(faas.VMConfig{
		Name: "n1-static", Kind: faas.Static, Fn: fn, N: n,
		KeepAlive: 60 * sim.Second,
	})

	// A bursty trace with an early load spike that dies down, so
	// instances are created then evicted within the window.
	tr := trace.GenBursty(opts.seed(), trace.BurstyConfig{
		Duration: sim.Duration(duration) * 2 / 5, // load only in the first 40%
		BaseRPS:  0.5,
		BurstRPS: float64(n) * 2,
		BurstLen: 20 * sim.Second,
		BurstGap: 10 * sim.Second,
	})
	for _, ts := range tr.Times {
		ts := ts
		sched.At(ts, func() { fv.InvokePrimary(nil) })
	}

	points := int(duration/sim.Second) + 1
	res.Guest.Reserve(points)
	res.HostUsage.Reserve(points)
	res.Instances.Reserve(points)
	var tick func()
	tick = func() {
		now := sched.Now().Seconds()
		res.Guest.Append(now, float64(rt.GuestAllocatedBytes())/float64(units.GiB))
		res.HostUsage.Append(now, float64(rt.PopulatedBytes())/float64(units.GiB))
		res.Instances.Append(now, float64(rt.LiveInstances()))
		if sched.Now() < sim.Time(duration) {
			sched.After(sim.Second, tick)
		}
	}
	sched.At(0, tick)
	sched.RunUntil(sim.Time(duration))
}

// Table summarizes the series.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1: static 50:1 VM — memory usage vs load",
		Header: []string{"series", "peak", "final", "unit"},
	}
	t.AddRow("guest allocated", f2(r.Guest.Max()), f2(last(r.Guest.Values)), "GiB")
	t.AddRow("host populated", f2(r.HostUsage.Max()), f2(last(r.HostUsage.Values)), "GiB")
	t.AddRow("instances", f1(r.Instances.Max()), f1(last(r.Instances.Values)), "count")
	return t
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func init() {
	RegisterPlan("fig1", "Figure 1: static 50:1 VM — memory usage vs load", Fig1Plan)
}
