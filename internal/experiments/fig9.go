package experiments

import (
	"math/rand/v2"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/workload"
)

// rampSeg is one constant-rate segment of an arrival schedule.
type rampSeg struct {
	from, to sim.Duration
	rps      float64
}

// rampArrivals synthesizes Poisson arrivals whose rate steps through
// the given segments.
func rampArrivals(seed uint64, segs []rampSeg) []sim.Time {
	rng := rand.New(rand.NewPCG(seed, 0x99))
	var out []sim.Time
	for _, seg := range segs {
		t := seg.from
		for t < seg.to {
			gap := sim.Duration(rng.ExpFloat64() / seg.rps * float64(sim.Second))
			if gap < sim.Millisecond {
				gap = sim.Millisecond
			}
			t += gap
			if t < seg.to {
				out = append(out, sim.Time(t))
			}
		}
	}
	return out
}

// Fig9Series is one method's per-second average CNN request latency
// (ms) around the HTML scale-down event.
type Fig9Series struct {
	Method    string
	Seconds   []int
	LatencyMs []float64
	// EvictionStart marks when HTML keep-alive evictions began.
	EvictionStart sim.Time
}

// Baseline returns the mean latency in the quiet window right before
// the scale-down event (after the HTML load stopped, so only CNN runs).
func (s *Fig9Series) Baseline() float64 {
	lo := s.EvictionStart.Add(-25 * sim.Second)
	var xs []float64
	for i, sec := range s.Seconds {
		at := sim.Time(sec) * sim.Time(sim.Second)
		if at >= lo && at < s.EvictionStart && s.LatencyMs[i] > 0 {
			xs = append(xs, s.LatencyMs[i])
		}
	}
	return meanOf(xs)
}

// PeakDuring returns the max per-second latency in the scale-down
// window (eviction start plus 30 seconds).
func (s *Fig9Series) PeakDuring() float64 {
	hi := s.EvictionStart.Add(30 * sim.Second)
	m := 0.0
	for i, sec := range s.Seconds {
		at := sim.Time(sec) * sim.Time(sim.Second)
		if at >= s.EvictionStart && at < hi && s.LatencyMs[i] > m {
			m = s.LatencyMs[i]
		}
	}
	return m
}

// Fig9Result is the full figure.
type Fig9Result struct {
	Series []Fig9Series
}

// Fig9 reproduces §6.2.1 / Figure 9: CNN and HTML instances co-located
// in one N:1 VM whose reclaim threads share the vCPUs with the
// instances. HTML load stops early; when its keep-alive expires the
// runtime scales the HTML instances down while CNN keeps serving.
// Vanilla virtio-mem's migrations steal CNN's CPU and more than double
// its latency; Squeezy's unplug is invisible.
func Fig9(opts Options) *Fig9Result {
	return Fig9Plan(opts).runSerial(newWorld()).(*Fig9Result)
}

// Fig9Plan is the figure as a cell plan: one cell per backend.
func Fig9Plan(opts Options) *Plan {
	duration := 280 * sim.Second
	htmlStop := 150 * sim.Second
	keepAlive := 45 * sim.Second
	kinds := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	res := &Fig9Result{Series: make([]Fig9Series, len(kinds))}
	p := &Plan{Assemble: func() Result { return res }}
	for i, kind := range kinds {
		i, kind := i, kind
		p.Stage.Cell(kind.String(), func(w *World) {
			res.Series[i] = fig9Run(w, kind, duration, htmlStop, keepAlive, opts)
		})
	}
	return p
}

func fig9Run(w *World, kind faas.BackendKind, duration, htmlStop, keepAlive sim.Duration, opts Options) Fig9Series {
	cnn := workload.ByName("Cnn")
	html := workload.ByName("HTML")
	sched := w.Scheduler()
	rt := w.Runtime(hostmem.New(0), costmodel.Default())
	fv := rt.AddVM(faas.VMConfig{
		Name: "colo", Kind: kind, Fn: cnn, CoFns: []*workload.Function{html},
		N: 32, KeepAlive: keepAlive,
		// vCPUs sized so the steady CNN load runs at ~90% utilization:
		// the unpinned reclaim kthread stealing one vCPU tips the VM
		// into overload, exactly the §6.2.1 interference scenario.
		VCPUs: 4,
	})

	// CNN: ramp to ~22 warm rps (≈3.3 busy cores of the 4) so the cold
	// starts spread out instead of storming the vCPUs at t=0.
	cnnTimes := rampArrivals(SubSeed(opts.seed(), 0), []rampSeg{
		{0, 30 * sim.Second, 4},
		{30 * sim.Second, 60 * sim.Second, 10},
		{60 * sim.Second, 90 * sim.Second, 16},
		{90 * sim.Second, duration, 22},
	})
	// HTML: load until htmlStop, then silent — its instances idle out.
	htmlTimes := rampArrivals(SubSeed(opts.seed(), 1), []rampSeg{
		{0, htmlStop, 4},
	})
	for _, ts := range cnnTimes {
		ts := ts
		sched.At(ts, func() { fv.InvokePrimary(nil) })
	}
	for _, ts := range htmlTimes {
		ts := ts
		sched.At(ts, func() { fv.Invoke(html, nil) })
	}
	sched.RunUntil(sim.Time(duration))

	// Bin CNN completions per second.
	evictionStart := sim.Time(htmlStop + keepAlive)
	secs := int(duration / sim.Second)
	sums := make([]float64, secs)
	counts := make([]int, secs)
	for _, c := range fv.Completions {
		if c.Fn != "Cnn" || c.Cold {
			continue // the paper plots steady-state request latency
		}
		b := int(sim.Duration(c.At) / sim.Second)
		if b >= 0 && b < secs {
			sums[b] += c.Latency.Milliseconds()
			counts[b]++
		}
	}
	s := Fig9Series{Method: kind.String(), EvictionStart: evictionStart}
	for i := 0; i < secs; i++ {
		if counts[i] == 0 {
			continue
		}
		s.Seconds = append(s.Seconds, i)
		s.LatencyMs = append(s.LatencyMs, sums[i]/float64(counts[i]))
	}
	return s
}

// Table summarizes the interference.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9: CNN request latency around the HTML scale-down",
		Header: []string{"method", "baseline(ms)", "peak during scale-down(ms)", "slowdown"},
	}
	for _, s := range r.Series {
		base, peak := s.Baseline(), s.PeakDuring()
		slow := 0.0
		if base > 0 {
			slow = peak / base
		}
		t.AddRow(s.Method, f1(base), f1(peak), f2(slow))
	}
	return t
}

func init() {
	RegisterPlan("fig9", "Figure 9: CNN request latency around the HTML scale-down", Fig9Plan)
}
