package experiments

import "testing"

func TestFig10Shape(t *testing.T) {
	res := Fig10(Options{Quick: true})
	// Every method completed its requests (or close to it).
	for _, run := range res.Runs {
		if run.Dropped > 5 {
			t.Fatalf("%s dropped %d requests", run.Method, run.Dropped)
		}
		if len(run.P99Ms) != 4 {
			t.Fatalf("%s has P99 for %d functions", run.Method, len(run.P99Ms))
		}
	}
	sq := res.GeomeanP99("squeezy")
	vm := res.GeomeanP99("virtio-mem")
	hv := res.GeomeanP99("harvestvm-opts")
	// Squeezy keeps tail latency near the abundant baseline (§6.2.2:
	// 1.1x); vanilla virtio-mem suffers badly (3.15x); the HarvestVM
	// optimizations land in between.
	if sq > 1.8 {
		t.Fatalf("squeezy normalized P99 = %.2fx, want near 1", sq)
	}
	if vm < 2*sq {
		t.Fatalf("virtio-mem (%.2fx) not clearly worse than squeezy (%.2fx)", vm, sq)
	}
	if hv <= sq || hv >= vm {
		t.Fatalf("harvest (%.2fx) not between squeezy (%.2fx) and virtio-mem (%.2fx)", hv, sq, vm)
	}
	// Memory integral: squeezy below harvest (buffers cost memory).
	if res.GiBs("squeezy") >= res.GiBs("harvestvm-opts") {
		t.Fatalf("squeezy GiB*s (%.0f) not below harvest (%.0f)",
			res.GiBs("squeezy"), res.GiBs("harvestvm-opts"))
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
