package experiments

import "testing"

func TestFig9Shape(t *testing.T) {
	res := Fig9(Options{})
	byM := map[string]Fig9Series{}
	for _, s := range res.Series {
		byM[s.Method] = s
	}
	vm, sq := byM["virtio-mem"], byM["squeezy"]
	if vm.Baseline() <= 0 || sq.Baseline() <= 0 {
		t.Fatalf("no baseline latency: vm=%v sq=%v", vm.Baseline(), sq.Baseline())
	}
	// Vanilla virtio-mem's migrations slow CNN down substantially
	// during the HTML scale-down (paper: >2x).
	vmSlow := vm.PeakDuring() / vm.Baseline()
	sqSlow := sq.PeakDuring() / sq.Baseline()
	if vmSlow < 1.5 {
		t.Fatalf("virtio-mem slowdown = %.2fx, expected visible interference", vmSlow)
	}
	// Squeezy does not interfere.
	if sqSlow > 1.45 {
		t.Fatalf("squeezy slowdown = %.2fx, expected none", sqSlow)
	}
	if vmSlow <= sqSlow {
		t.Fatal("virtio-mem interference not above squeezy")
	}
}

func TestFig11Shape(t *testing.T) {
	res := Fig11(Options{})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Boot dominates the 1:1 VMM phase; plug is tiny in N:1
		// (§6.3: plug is ~1.19% of cold start).
		if row.OneToOne.VMMDelayMs < 500 {
			t.Fatalf("%s 1:1 boot = %.0fms", row.Fn, row.OneToOne.VMMDelayMs)
		}
		if row.NToOne.VMMDelayMs >= 100 {
			t.Fatalf("%s N:1 plug = %.0fms", row.Fn, row.NToOne.VMMDelayMs)
		}
		// N:1 container and function init benefit from the shared cache.
		if row.NToOne.ContainerInitMs >= row.OneToOne.ContainerInitMs {
			t.Fatalf("%s container init not faster in N:1", row.Fn)
		}
		if row.OneToOne.TotalMs() <= row.NToOne.TotalMs() {
			t.Fatalf("%s cold start not faster in N:1", row.Fn)
		}
		if row.Footprint1to1 <= row.FootprintN1 {
			t.Fatalf("%s footprint not larger in 1:1", row.Fn)
		}
	}
	// Headline geomeans: ≈1.6x faster cold starts, ≈2.53x footprint.
	if sp := res.ColdStartSpeedup(); sp < 1.2 || sp > 2.5 {
		t.Fatalf("cold start speedup = %.2fx, outside the paper's band", sp)
	}
	if fr := res.FootprintRatio(); fr < 1.7 || fr > 4 {
		t.Fatalf("footprint ratio = %.2fx, outside the paper's band", fr)
	}
}
