package experiments

// A cell plan is the declarative form of an experiment driver: instead
// of one monolithic Run loop that simulates every configuration
// serially, the driver enumerates Cells — independent simulation units
// — and an Assemble step that builds the figure's table after all of
// them have run. The unified executor (runner.go) schedules the cells
// of every experiment and trial on one worker pool; because each cell
// writes only its own pre-allocated result slot and Assemble reads the
// slots in enumeration order, the encoded output is byte-identical to
// a serial run at any worker count.
//
// Cell seeds: a cell captures its sub-seed in its closure. Every
// driver derives per-stream randomness with SubSeed(opts.seed(), i) —
// the single guarded splitmix64 derivation — so adjacent streams are
// well separated; the pre-PR-5 ad-hoc seed arithmetic (seed+i*31
// style) is gone, and EXPERIMENTS.md's tables are baselined on the
// SubSeed streams.
//
// Sub-cell shards: a cell is the executor's scheduling unit, but a
// cell may decompose further at run time by fanning independent tasks
// through World.Exec — a sharded fleet cell advances each host shard
// as one such task, with the executor's idle workers picking them up.
// Shard tasks never touch the World's own pools, only state the cell
// handed them, and must be order-independent so serial and pooled
// execution agree byte-for-byte.

// Cell is one independently runnable simulation unit: a label for
// per-cell timing (-cellstats), and a closure that runs the simulation
// against a pooled world and stashes its result for Assemble.
type Cell struct {
	Label string
	Run   func(w *World)
}

// Stage is one set of cells with no dependencies among them, plus an
// optional continuation producing the next, data-dependent stage.
// Then runs after every cell of the stage has completed; it may read
// their results (fig10 derives its host-memory cap from its abundant
// stage) and returns nil to end the chain.
type Stage struct {
	Cells []Cell
	Then  func() *Stage
}

// Cell appends a cell to the stage.
func (s *Stage) Cell(label string, run func(w *World)) {
	s.Cells = append(s.Cells, Cell{Label: label, Run: run})
}

// Plan is a full experiment: a chain of stages and the Assemble step
// that builds the result once every stage has drained.
type Plan struct {
	Stage
	Assemble func() Result
}

// runSerial executes the plan's stages in enumeration order on one
// world and returns the assembled result. It is the serial reference
// implementation the parallel executor must be byte-equivalent to,
// and what Experiment.Run uses.
func (p *Plan) runSerial(w *World) Result {
	for st := &p.Stage; st != nil; {
		for _, c := range st.Cells {
			w.begin()
			c.Run(w)
			w.endCell()
		}
		if st.Then == nil {
			break
		}
		st = st.Then()
	}
	return p.Assemble()
}
