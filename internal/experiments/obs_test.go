package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"squeezy/internal/obs"
)

// The tentpole acceptance bar at the runner level: attaching a trace
// sink to a full-registry run changes no output byte, and the sink's
// exported traces are themselves worker-count invariant.

// encodeReports renders reports through every encoder, the same bytes
// squeezyctl writes.
func encodeReports(t *testing.T, reports []Report, trials int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeText(&buf, reports, trials); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&buf, reports); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCSV(&buf, reports); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsFullRegistryByteIdentity runs the complete quick registry with
// tracing off and with tracing on at workers {1, 8}, and requires the
// text+JSON+CSV encoding to be byte-identical in all three runs —
// recording must not perturb a single table cell.
func TestObsFullRegistryByteIdentity(t *testing.T) {
	names := Names()
	const trials = 1
	base := Options{Seed: 3, Quick: true}

	off, err := Run(names, base, trials, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := encodeReports(t, off, trials)

	for _, workers := range []int{1, 8} {
		opts := base
		opts.Obs = &obs.Sink{}
		reports, _, err := RunWithCellStats(names, opts, trials, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeReports(t, reports, trials); !bytes.Equal(got, want) {
			t.Fatalf("tracing on at %d workers changed the tables", workers)
		}
		if len(opts.Obs.Traces()) == 0 {
			t.Fatalf("sink collected no traces at %d workers; test is vacuous", workers)
		}
	}
}

// TestObsSinkWorkerInvariance: the collected traces export to identical
// bytes at every worker count — cells land in the sink in scheduling
// order, but Sink.Traces re-sorts and each cell's trace content is a
// pure function of (experiment, trial, cell).
func TestObsSinkWorkerInvariance(t *testing.T) {
	names := []string{"cluster-elastic", "fig5"}
	export := func(workers int) []byte {
		opts := Options{Seed: 1, Quick: true, Obs: &obs.Sink{}}
		_, _, err := RunWithCellStats(names, opts, 1, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		traces := opts.Obs.Traces()
		if err := obs.WriteTrace(&buf, traces, nil); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteMetrics(&buf, traces); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := export(1)
	if len(want) == 0 {
		t.Fatal("empty export")
	}
	for _, workers := range []int{2, 8} {
		if got := export(workers); !bytes.Equal(got, want) {
			t.Fatalf("trace export at %d workers differs from 1 worker (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestObsCellStatsJSONShape: the machine-readable -cellstats=json
// document carries every cell with the floor rule applied.
func TestObsCellStatsJSONShape(t *testing.T) {
	opts := Options{Seed: 1, Quick: true}
	_, stats, err := RunWithCellStats([]string{"cluster-elastic"}, opts, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeCellStatsJSON(&buf, stats); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cells []struct {
			Experiment string    `json:"experiment"`
			Cell       string    `json:"cell"`
			WallMs     float64   `json:"wall_ms"`
			ShardWalls []float64 `json:"shard_walls_ms"`
			FloorMs    float64   `json:"floor_ms"`
		} `json:"cells"`
		SummedWallMs    float64 `json:"summed_wall_ms"`
		SlowestCellMs   float64 `json:"slowest_cell_ms"`
		ParallelFloorMs float64 `json:"parallel_floor_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Cells) != len(stats) {
		t.Fatalf("doc has %d cells, want %d", len(doc.Cells), len(stats))
	}
	for _, c := range doc.Cells {
		if c.WallMs <= 0 {
			t.Fatalf("cell %s/%s has non-positive wall", c.Experiment, c.Cell)
		}
		if len(c.ShardWalls) > 0 && c.FloorMs > c.WallMs {
			t.Fatalf("cell %s floor %v exceeds wall %v", c.Cell, c.FloorMs, c.WallMs)
		}
	}
	if doc.ParallelFloorMs <= 0 || doc.ParallelFloorMs > doc.SummedWallMs {
		t.Fatalf("parallel floor %v outside (0, summed %v]", doc.ParallelFloorMs, doc.SummedWallMs)
	}
	if doc.SlowestCellMs > doc.SummedWallMs {
		t.Fatalf("slowest cell %v exceeds summed wall %v", doc.SlowestCellMs, doc.SummedWallMs)
	}
}

// TestRunnerSpans: CellStats convert to wall-clock runner spans with
// names carrying experiment/trial/cell identity.
func TestRunnerSpans(t *testing.T) {
	opts := Options{Seed: 1, Quick: true}
	_, stats, err := RunWithCellStats([]string{"fig5"}, opts, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	spans := RunnerSpans(stats)
	if len(spans) != len(stats) {
		t.Fatalf("got %d spans for %d stats", len(spans), len(stats))
	}
	seen := map[string]bool{}
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Fatalf("span %q has non-positive duration", s.Name)
		}
		seen[s.Name] = true
	}
	if len(seen) != len(spans) {
		t.Fatalf("span names collide: %d unique of %d", len(seen), len(spans))
	}
}
