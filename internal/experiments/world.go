package experiments

import (
	"time"

	"squeezy/internal/cluster"
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/vmm"
)

// World is the pooled simulation state one worker hands to each cell
// it executes. Construction of a simulation world — scheduler event
// arenas, buddy ord spans, population bitmaps, cluster node structs,
// FuncVM shells and their inner VMs — is a significant share of a
// sweep cell's cost, and none of it needs to be rebuilt from scratch:
// the World resets the previous cell's storage instead.
//
// Cells obtain their stack through the World (Scheduler, Kernel,
// Runtime, VM, Fleet) rather than the packages' constructors;
// everything built this way draws from the worker's pools and is
// released back when the cell ends. The reset invariants of the
// underlying layers (sim.Scheduler.Reset, buddy.Allocator.Reset,
// mem.Zone.Reset, vmm.VM.Reset, cluster.ShardedCluster.Reset, ...)
// guarantee a cell runs identically on a pooled world and on a fresh
// one, so worker count and cell interleaving never leak into results.
//
// A World is owned by exactly one goroutine. Sharded fleet cells are
// still single-owner: the shard tasks a cell fans out through Exec
// touch the fleet's per-host state (each host with its own scheduler
// and recycler), never the World's own pools.
type World struct {
	sched *sim.Scheduler
	rec   *faas.Recycler

	kernels  []*guestos.Kernel
	runtimes []*faas.Runtime
	fleet    *cluster.ShardedCluster

	vmInUse []*vmm.VM // this cell's kernel-direct VMs, retired at cell end

	// par, when non-nil, runs a batch of independent sub-cell tasks on
	// the executor's worker pool (runner.go installs it); nil runs
	// them serially. Exec exposes it to cells.
	par func(tasks []func())

	// shardWalls is the per-shard wall-clock breakdown the current
	// cell reported via NoteShardWalls, if any; the executor drains it
	// into the cell's CellStat.
	shardWalls []time.Duration

	// Observability: the executor hands each cell its identity and the
	// run's sink via beginObs; Trace lazily creates the cell's trace,
	// and endCell flushes a non-empty one into the sink. All nil when
	// tracing is off.
	obsSink  *obs.Sink
	obsTrace *obs.Trace
	obsExp   string
	obsTrial int
	obsLabel string
}

// newWorld returns a fresh world, ready for its first cell.
func newWorld() *World {
	return &World{sched: sim.NewScheduler(), rec: faas.NewRecycler()}
}

// begin prepares the world for the next cell: the scheduler restarts
// at virtual time zero with its arenas kept, and any per-cell
// reporting state clears.
func (w *World) begin() {
	w.sched.Reset()
	w.shardWalls = nil
}

// beginObs sets the next cell's trace identity. A nil sink disables
// tracing for the cell (Trace returns nil and every layer stays on its
// free disabled path).
func (w *World) beginObs(sink *obs.Sink, exp string, trial int, label string) {
	w.obsSink = sink
	w.obsTrace = nil
	w.obsExp, w.obsTrial, w.obsLabel = exp, trial, label
}

// Trace returns the current cell's trace, creating it on first use; nil
// when tracing is off. Cells that build their stack through the World
// (Fleet, Runtime) are traced automatically; a cell wiring layers by
// hand can AttachObs the trace itself.
func (w *World) Trace() *obs.Trace {
	if w.obsSink == nil {
		return nil
	}
	if w.obsTrace == nil {
		w.obsTrace = &obs.Trace{Experiment: w.obsExp, Trial: w.obsTrial, Label: w.obsLabel}
	}
	return w.obsTrace
}

// endCell releases the finished cell's kernels and VMs back into the
// worker's pools so the next cell reuses their storage, and flushes a
// non-empty trace into the run's sink.
func (w *World) endCell() {
	if w.obsTrace != nil && !w.obsTrace.Empty() {
		w.obsSink.Add(w.obsTrace)
	}
	w.obsTrace = nil
	for i, k := range w.kernels {
		k.Release()
		w.kernels[i] = nil
	}
	w.kernels = w.kernels[:0]
	for i, rt := range w.runtimes {
		rt.Release()
		w.runtimes[i] = nil
	}
	w.runtimes = w.runtimes[:0]
	if w.fleet != nil {
		w.fleet.Release()
	}
	for i, vm := range w.vmInUse {
		w.rec.ReleaseVM(vm)
		w.vmInUse[i] = nil
	}
	w.vmInUse = w.vmInUse[:0]
}

// VM returns a virtual machine on the world's scheduler: a retired VM
// reset in place (its cpu pools, exit counters, and accounting
// restored to boot state) when one is spare, else a fresh one. It is
// retired automatically when the cell ends.
func (w *World) VM(name string, cost *costmodel.Model, host *hostmem.Host, vcpus float64) *vmm.VM {
	vm := w.rec.AcquireVM(name, w.sched, cost, host, vcpus)
	w.vmInUse = append(w.vmInUse, vm)
	return vm
}

// Scheduler returns the cell's scheduler, already reset to virtual
// time zero.
func (w *World) Scheduler() *sim.Scheduler { return w.sched }

// Kernel builds a guest kernel from the world's arena cache and tracks
// it for release when the cell ends.
func (w *World) Kernel(vm *vmm.VM, cfg guestos.Config) *guestos.Kernel {
	cfg.Recycle = w.rec.Kernels
	k := guestos.NewKernel(vm, cfg)
	w.kernels = append(w.kernels, k)
	return k
}

// Runtime builds a FaaS runtime on the world's scheduler whose VMs —
// guest kernels, inner vmm.VMs, and agent shells — draw from the
// worker's pool; everything is released when the cell ends.
func (w *World) Runtime(host *hostmem.Host, cost *costmodel.Model) *faas.Runtime {
	rt := faas.NewRuntime(w.sched, host, cost)
	rt.Recycle = w.rec
	if tr := w.Trace(); tr != nil {
		rt.Obs = tr.HostTrack(len(w.runtimes), w.sched)
	}
	w.runtimes = append(w.runtimes, rt)
	return rt
}

// Fleet returns a sharded fleet of the requested shape: the worker's
// cached fleet reset in place when one exists, else a fresh one. Each
// of the fleet's hosts runs on its own scheduler with its own
// recycler (per-host arenas), so whichever shard worker advances a
// host reuses that host's storage; the fleet's Exec hook is wired to
// the world so shard tasks land on the executor's worker pool.
func (w *World) Fleet(cost *costmodel.Model, cfg cluster.Config, policy cluster.Policy) *cluster.ShardedCluster {
	if w.fleet == nil {
		w.fleet = cluster.NewSharded(cost, cfg, policy)
	} else {
		w.fleet.Reset(cost, cfg, policy)
	}
	w.fleet.Exec = w.Exec
	w.fleet.AttachObs(w.Trace())
	return w.fleet
}

// Exec runs independent sub-cell tasks — a sharded fleet's per-host
// advances — to completion: on the executor's worker pool when the
// world belongs to one (idle and waiting workers pick them up), else
// serially in order. Tasks must be order-independent; results may not
// depend on which path ran them.
func (w *World) Exec(tasks []func()) {
	if w.par != nil {
		w.par(tasks)
		return
	}
	for _, t := range tasks {
		t()
	}
}

// NoteShardWalls reports the finished cell's per-shard wall-clock
// breakdown for `squeezyctl -cellstats`. Walls are instrumentation
// only and never enter a Report.
func (w *World) NoteShardWalls(walls []time.Duration) {
	w.shardWalls = append(w.shardWalls[:0], walls...)
}
