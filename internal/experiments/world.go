package experiments

import (
	"squeezy/internal/cluster"
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/vmm"
)

// World is the pooled simulation state one worker hands to each cell
// it executes. Construction of a simulation world — scheduler event
// arenas, buddy ord spans, population bitmaps, cluster node structs —
// is a significant share of a sweep cell's cost, and none of it needs
// to be rebuilt from scratch: the World resets the previous cell's
// storage instead.
//
// Cells obtain their stack through the World (Scheduler, Kernel,
// Runtime, Cluster) rather than the packages' constructors; everything
// built this way draws from the worker's arena cache and is released
// back to it when the cell ends. The reset invariants of the
// underlying layers (sim.Scheduler.Reset, buddy.Allocator.Reset,
// mem.Zone.Reset, cluster.Cluster.Reset, ...) guarantee a cell runs
// identically on a pooled world and on a fresh one, so worker count
// and cell interleaving never leak into results.
//
// A World is owned by exactly one goroutine; it is not safe for
// concurrent use.
type World struct {
	sched *sim.Scheduler
	rec   *guestos.Recycler

	kernels  []*guestos.Kernel
	runtimes []*faas.Runtime
	cluster  *cluster.Cluster

	vmSpare []*vmm.VM // retired VMs, reset on reuse
	vmInUse []*vmm.VM // this cell's VMs, retired at cell end
}

// newWorld returns a fresh world, ready for its first cell.
func newWorld() *World {
	return &World{sched: sim.NewScheduler(), rec: guestos.NewRecycler()}
}

// begin prepares the world for the next cell: the scheduler restarts
// at virtual time zero with its arenas kept.
func (w *World) begin() { w.sched.Reset() }

// endCell releases the finished cell's kernels back into the worker's
// arena cache so the next cell reuses their storage.
func (w *World) endCell() {
	for i, k := range w.kernels {
		k.Release()
		w.kernels[i] = nil
	}
	w.kernels = w.kernels[:0]
	for i, rt := range w.runtimes {
		rt.Release()
		w.runtimes[i] = nil
	}
	w.runtimes = w.runtimes[:0]
	if w.cluster != nil {
		w.cluster.Release()
	}
	w.vmSpare = append(w.vmSpare, w.vmInUse...)
	clear(w.vmInUse)
	w.vmInUse = w.vmInUse[:0]
}

// VM returns a virtual machine on the world's scheduler: a retired VM
// reset in place (its cpu pools, exit counters, and accounting
// restored to boot state) when one is spare, else a fresh one. It is
// retired automatically when the cell ends.
func (w *World) VM(name string, cost *costmodel.Model, host *hostmem.Host, vcpus float64) *vmm.VM {
	var vm *vmm.VM
	if n := len(w.vmSpare); n > 0 {
		vm = w.vmSpare[n-1]
		w.vmSpare = w.vmSpare[:n-1]
		vm.Reset(name, cost, host, vcpus)
	} else {
		vm = vmm.New(name, w.sched, cost, host, vcpus)
	}
	w.vmInUse = append(w.vmInUse, vm)
	return vm
}

// Scheduler returns the cell's scheduler, already reset to virtual
// time zero.
func (w *World) Scheduler() *sim.Scheduler { return w.sched }

// Kernel builds a guest kernel from the world's arena cache and tracks
// it for release when the cell ends.
func (w *World) Kernel(vm *vmm.VM, cfg guestos.Config) *guestos.Kernel {
	cfg.Recycle = w.rec
	k := guestos.NewKernel(vm, cfg)
	w.kernels = append(w.kernels, k)
	return k
}

// Runtime builds a FaaS runtime on the world's scheduler whose VMs'
// guest kernels draw from the arena cache; the kernels are released
// when the cell ends.
func (w *World) Runtime(host *hostmem.Host, cost *costmodel.Model) *faas.Runtime {
	rt := faas.NewRuntime(w.sched, host, cost)
	rt.Recycle = w.rec
	w.runtimes = append(w.runtimes, rt)
	return rt
}

// Cluster returns a fleet of the requested shape on the world's
// scheduler: the worker's cached cluster reset in place when one
// exists, else a fresh one. The previous fleet's guest kernels are
// harvested into the arena cache as part of the reset.
func (w *World) Cluster(cost *costmodel.Model, cfg cluster.Config, policy cluster.Policy) *cluster.Cluster {
	if w.cluster == nil {
		c := cluster.New(w.sched, cost, cfg, policy)
		c.Recycle = w.rec
		w.cluster = c
	}
	// Reset even on first use: New built the node runtimes before the
	// recycler was attached, and a reset wires them to it.
	w.cluster.Reset(cost, cfg, policy)
	return w.cluster
}
