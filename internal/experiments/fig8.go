package experiments

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/trace"
	"squeezy/internal/workload"
)

// Fig8Row is one bar of Figure 8: reclamation throughput (MiB/s) for
// one function and method.
type Fig8Row struct {
	Fn             string
	Method         string
	ThroughputMiBs float64
	ReclaimOps     int
}

// Fig8Result is the full figure.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 reproduces §6.2.1 / Figure 8: each Table 1 function runs in its
// own dynamically resized N:1 VM, driven by a bursty Azure-shaped
// trace with abundant host memory. When bursts die down, keep-alive
// evictions trigger unplugs; the figure reports the memory reclamation
// throughput achieved per function, for vanilla virtio-mem vs Squeezy.
func Fig8(opts Options) *Fig8Result {
	return Fig8Plan(opts).runSerial(newWorld()).(*Fig8Result)
}

// Fig8Plan is the figure as a cell plan: one cell per backend ×
// function combination.
func Fig8Plan(opts Options) *Plan {
	duration := 8 * sim.Minute
	keepAlive := 45 * sim.Second
	if opts.Quick {
		duration = 3 * sim.Minute
		keepAlive = 20 * sim.Second
	}
	kinds := []faas.BackendKind{faas.VirtioMem, faas.Squeezy}
	fns := workload.Functions()
	res := &Fig8Result{Rows: make([]Fig8Row, len(kinds)*len(fns))}
	p := &Plan{Assemble: func() Result { return res }}
	for ki, kind := range kinds {
		for fi, fn := range fns {
			i, kind, fi, fn := ki*len(fns)+fi, kind, fi, fn
			p.Stage.Cell(kind.String()+"/"+fn.Name, func(w *World) {
				res.Rows[i] = fig8Run(w, opts, kind, fi, fn, duration, keepAlive)
			})
		}
	}
	return p
}

func fig8Run(w *World, opts Options, kind faas.BackendKind, fi int, fn *workload.Function,
	duration, keepAlive sim.Duration) Fig8Row {

	// One well-separated stream per function, shared across backends on
	// purpose: both methods replay the identical trace, so the speedup
	// column compares reclamation, not workload luck.
	tr := trace.GenBursty(SubSeed(opts.seed(), fi), trace.BurstyConfig{
		Duration: sim.Duration(duration) * 3 / 5,
		BaseRPS:  0.2,
		BurstRPS: 4,
		BurstLen: 15 * sim.Second,
		BurstGap: 40 * sim.Second,
	})
	n := trace.PeakConcurrency(tr, fn.ExecCPU+8*sim.Second) + 2

	sched := w.Scheduler()
	rt := w.Runtime(hostmem.New(0), costmodel.Default())
	fv := rt.AddVM(faas.VMConfig{
		Name: fn.Name, Kind: kind, Fn: fn, N: n, KeepAlive: keepAlive,
	})
	for _, ts := range tr.Times {
		ts := ts
		sched.At(ts, func() { fv.InvokePrimary(nil) })
	}
	sched.RunUntil(sim.Time(duration))
	sched.Run() // drain keep-alive evictions and unplugs
	return Fig8Row{
		Fn: fn.Name, Method: kind.String(),
		ThroughputMiBs: fv.ReclaimThroughputMiBs(),
		ReclaimOps:     fv.ReclaimOps,
	}
}

// Throughput returns the measured throughput for a function/method.
func (r *Fig8Result) Throughput(fn, method string) float64 {
	for _, row := range r.Rows {
		if row.Fn == fn && row.Method == method {
			return row.ThroughputMiBs
		}
	}
	return 0
}

// Geomean returns the geometric-mean throughput for a method.
func (r *Fig8Result) Geomean(method string) float64 {
	var xs []float64
	for _, row := range r.Rows {
		if row.Method == method {
			xs = append(xs, row.ThroughputMiBs)
		}
	}
	return stats.Geomean(xs)
}

// Table renders the figure.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:  "Figure 8: memory reclamation throughput (MiB/s) under FaaS load",
		Header: []string{"function", "virtio-mem", "squeezy", "speedup"},
	}
	for _, fn := range workload.Functions() {
		v := r.Throughput(fn.Name, "virtio-mem")
		s := r.Throughput(fn.Name, "squeezy")
		sp := 0.0
		if v > 0 {
			sp = s / v
		}
		t.AddRow(fn.Name, f1(v), f1(s), f2(sp))
	}
	gv, gs := r.Geomean("virtio-mem"), r.Geomean("squeezy")
	sp := 0.0
	if gv > 0 {
		sp = gs / gv
	}
	t.AddRow("Geomean", f1(gv), f1(gs), f2(sp))
	return t
}

func init() {
	RegisterPlan("fig8", "Figure 8: memory reclamation throughput (MiB/s) under FaaS load", Fig8Plan)
}
