package experiments

import (
	"runtime"
	"time"

	"squeezy/internal/faas"
)

// StreamMemProbe replays a streaming diurnal fleet cell of the given
// simulated length through the real experiment cell path (fleetRun on
// a fresh world) and reports the cell's invocation count together with
// the peak live heap — HeapAlloc after a forced collection — observed
// while the replay runs. A watcher goroutine samples the live heap
// every few milliseconds with GC forced, so anything the cell keeps
// reachable for the duration of the run (a materialized trace slice,
// an unbounded sample) lands in the peak, while transient garbage does
// not. load multiplies the cell's request rates: the memory-bound
// regression test scales the invocation count through it at a fixed
// simulated length, holding constant everything that legitimately
// scales with simulated time or simulated memory size (the tick
// series, buddy free-list fragmentation) while the per-invocation
// retention it hunts would scale linearly.
func StreamMemProbe(days, load float64) (invocations int, peakLiveHeap uint64) {
	fc := diurnalCfg(Options{Days: days}, faas.Squeezy)
	fc.baseRPS *= load
	fc.burstRPS *= load
	done := make(chan struct{})
	peakCh := make(chan uint64)
	go func() {
		var peak uint64
		var ms runtime.MemStats
		for {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
			select {
			case <-done:
				peakCh <- peak
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	s := fleetRun(newWorld(), 1, fc)
	close(done)
	return s.Invoked, <-peakCh
}
