package experiments

import (
	"fmt"
	"math/rand/v2"

	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/workload"
)

// Fig6Point is one point of Figure 6: the latency to unplug 2 GiB from
// a 64 GiB VM at a given memory utilization.
type Fig6Point struct {
	UtilizationPct int
	Method         string
	LatencyMs      float64
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 reproduces §6.1.1 / Figure 6: reclaim 2 GiB out of a 64 GiB VM
// while the rest of the memory fills with memhog instances. Page
// zeroing is disabled for vanilla virtio-mem, as in the paper, to
// isolate the migration effect. Vanilla latency climbs (and jitters)
// with utilization; Squeezy stays flat at ≈125 ms.
func Fig6(opts Options) *Fig6Result {
	return Fig6Plan(opts).runSerial(newWorld()).(*Fig6Result)
}

// Fig6Plan is the figure as a cell plan: one cell per utilization ×
// method point. These are the largest single worlds in the registry
// (64 GiB spans), so the pooled ord arrays and bitmaps pay off most
// here.
func Fig6Plan(opts Options) *Plan {
	vmBytes := int64(64) * units.GiB
	utils := []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	if opts.Quick {
		vmBytes = 8 * units.GiB
		utils = []int{0, 30, 60, 90}
	}
	methods := []string{"virtio-mem", "squeezy"}
	res := &Fig6Result{Points: make([]Fig6Point, len(utils)*len(methods))}
	p := &Plan{Assemble: func() Result { return res }}
	for ui, u := range utils {
		for mi, method := range methods {
			i, u, method := ui*len(methods)+mi, u, method
			p.Stage.Cell(fmt.Sprintf("%s/util%d", method, u), func(w *World) {
				lat := fig6Run(w, method, vmBytes, u, opts.seed())
				res.Points[i] = Fig6Point{UtilizationPct: u, Method: method, LatencyMs: lat}
			})
		}
	}
	return p
}

func fig6Run(w *World, method string, vmBytes int64, utilPct int, seed uint64) float64 {
	const reclaim = 2 * units.GiB
	sched := w.Scheduler()
	host := hostmem.New(0)
	cost := costmodel.Default()
	cost.ZeroOnUnplug = false // isolate migrations, as the paper does
	vm := w.VM("fig6", cost, host, 8)
	vm.PinReclaimThreads()
	rng := rand.New(rand.NewPCG(seed, uint64(utilPct)))

	// The workload may occupy everything except the 2 GiB to reclaim.
	loadable := vmBytes - reclaim
	target := loadable * int64(utilPct) / 100

	switch method {
	case "squeezy":
		k := w.Kernel(vm, guestos.Config{
			BootBytes:           units.BlockSize,
			KernelResidentBytes: 32 * units.MiB,
		})
		n := int(vmBytes / reclaim)
		sq := core.NewManager(k, core.Config{PartitionBytes: reclaim, Concurrency: n})
		// Populate partitions for the load plus one instance that will
		// terminate and be reclaimed.
		loadParts := int((target + reclaim - 1) / reclaim)
		sq.Plug(loadParts+1, func(int) {})
		sched.Run()
		remaining := target
		for i := 0; i < loadParts; i++ {
			h := workload.NewMemhog(k, fmt.Sprintf("memhog%d", i), min64(reclaim, remaining))
			remaining -= h.Size
			sq.Attach(h.Proc, func(*core.Partition) {})
			if h.Size > 0 && !h.Warmup() {
				panic("fig6: warmup failed")
			}
		}
		// The to-be-reclaimed instance lives in its own partition.
		victim := workload.NewMemhog(k, "victim", reclaim*3/4)
		sq.Attach(victim.Proc, func(*core.Partition) {})
		victim.Warmup()
		victim.Kill()
		var lat sim.Duration
		start := sched.Now()
		sq.Unplug(1, func(core.UnplugResult) { lat = sched.Now().Sub(start) })
		sched.Run()
		return lat.Milliseconds()

	default:
		k := w.Kernel(vm, guestos.Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        vmBytes,
			KernelResidentBytes: 32 * units.MiB,
		})
		drv := virtiomem.New(k)
		drv.Plug(vmBytes, func(int64) {})
		sched.Run()
		// Give the allocator the history of a long-running guest, so
		// allocations scatter across all blocks (§6.1.1: "random
		// placement of memhog's pages over multiple memory blocks").
		k.ScrambleFreeLists(k.Movable, rng)
		// Fill to the target with concurrently faulting memhogs of
		// randomized sizes; interleaved slices scatter the footprints.
		var hogs []*workload.Memhog
		remaining := target
		for remaining > 0 {
			size := min64((512+int64(rng.IntN(1024)))*units.MiB, remaining)
			hogs = append(hogs, workload.NewMemhog(k, fmt.Sprintf("memhog%d", len(hogs)), size))
			remaining -= size
		}
		interleavedWarmup(k, hogs)
		// Churn a little so placement is history-dependent (the paper's
		// "random placement" jitter).
		for r := 0; r < 3; r++ {
			for _, h := range hogs {
				h.ReleaseChurn()
			}
			for _, h := range hogs {
				if !h.TouchChurn() {
					panic("fig6: churn failed")
				}
			}
		}
		var lat sim.Duration
		start := sched.Now()
		drv.Unplug(reclaim, func(res virtiomem.UnplugResult) {
			if res.ReclaimedBytes < reclaim {
				panic("fig6: partial reclaim with free memory available")
			}
			lat = sched.Now().Sub(start)
		})
		sched.Run()
		return lat.Milliseconds()
	}
}

// interleavedWarmup touches all memhogs' footprints in interleaved 16
// MiB slices, mimicking concurrent faulting.
func interleavedWarmup(k *guestos.Kernel, hogs []*workload.Memhog) {
	const slice = 16 * units.MiB
	for {
		progressed := false
		for _, h := range hogs {
			remaining := h.Size - units.PagesToBytes(h.Proc.AnonPages())
			if remaining <= 0 {
				continue
			}
			chunk := min64(slice, remaining)
			if _, ok := k.TouchAnon(h.Proc, chunk, guestos.HugeOrder); !ok {
				panic("warmup did not fit")
			}
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Table renders the figure.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Figure 6: latency to unplug 2 GiB vs memory utilization",
		Header: []string{"util(%)", "virtio-mem(ms)", "squeezy(ms)"},
	}
	byUtil := map[int]map[string]float64{}
	var order []int
	for _, p := range r.Points {
		if byUtil[p.UtilizationPct] == nil {
			byUtil[p.UtilizationPct] = map[string]float64{}
			order = append(order, p.UtilizationPct)
		}
		byUtil[p.UtilizationPct][p.Method] = p.LatencyMs
	}
	for _, u := range order {
		t.AddRow(fmt.Sprintf("%d", u), f1(byUtil[u]["virtio-mem"]), f1(byUtil[u]["squeezy"]))
	}
	return t
}

func init() {
	RegisterPlan("fig6", "Figure 6: latency to unplug 2 GiB vs memory utilization", Fig6Plan)
}
