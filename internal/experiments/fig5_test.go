package experiments

import (
	"fmt"
	"testing"
)

func TestFig5Shape(t *testing.T) {
	res := Fig5(Options{Quick: true})
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range res.Rows {
		byKey[fmt.Sprintf("%s/%d", r.Method, r.SizeMiB)] = r
		if r.AvgLatencyMs <= 0 {
			t.Fatalf("%s/%d has no latency", r.Method, r.SizeMiB)
		}
	}
	// Headline orderings: squeezy << virtio-mem << balloon at 512 MiB.
	sq, vm, ba := byKey["squeezy/512"], byKey["virtio-mem/512"], byKey["balloon/512"]
	if !(sq.AvgLatencyMs < vm.AvgLatencyMs && vm.AvgLatencyMs < ba.AvgLatencyMs) {
		t.Fatalf("ordering broken: sq=%.0f vm=%.0f ba=%.0f",
			sq.AvgLatencyMs, vm.AvgLatencyMs, ba.AvgLatencyMs)
	}
	// Squeezy never migrates or zeroes.
	if sq.MigrationMs != 0 || sq.ZeroingMs != 0 {
		t.Fatalf("squeezy breakdown: %+v", sq)
	}
	// Balloon is exit-dominated; virtio-mem migration-heavy.
	if ba.VMExitsMs < ba.MigrationMs {
		t.Fatalf("balloon not exit-dominated: %+v", ba)
	}
	if vm.MigrationMs <= 0 {
		t.Fatalf("virtio-mem without migrations: %+v", vm)
	}
	// Latency grows with size for balloon (page-granular).
	if byKey["balloon/512"].AvgLatencyMs <= byKey["balloon/128"].AvgLatencyMs {
		t.Fatal("balloon latency not growing with size")
	}
	// Order-of-magnitude claim (allow a broad band in quick mode).
	if sp := res.Speedup("virtio-mem", "squeezy"); sp < 4 {
		t.Fatalf("squeezy speedup over virtio-mem = %.1fx, want >= 4x", sp)
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
