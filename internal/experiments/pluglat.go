package experiments

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/workload"
)

// PlugLatencyRow is one function's §6.2.1 scale-up measurements.
type PlugLatencyRow struct {
	Fn string
	// PlugMs is the memory plug latency on the Squeezy path (the paper
	// measures 35-45 ms for every function size).
	PlugMs float64
	// StaticColdMs is cold start latency on a statically provisioned
	// (never-resized) N:1 VM.
	StaticColdMs float64
	// ResizedColdMs is cold start latency on a dynamically resized VM;
	// 3-35% slower than static because freshly plugged memory must be
	// nested-faulted into the host.
	ResizedColdMs float64
}

// PlugLatencyResult is the full experiment.
type PlugLatencyResult struct {
	Rows []PlugLatencyRow
}

// PlugLatency reproduces the §6.2.1 scale-up study.
func PlugLatency(opts Options) *PlugLatencyResult {
	return PlugLatencyPlan(opts).runSerial(newWorld()).(*PlugLatencyResult)
}

// PlugLatencyPlan is the study as a cell plan: two cells per function,
// one per backend.
func PlugLatencyPlan(opts Options) *Plan {
	fns := workload.Functions()
	res := &PlugLatencyResult{Rows: make([]PlugLatencyRow, len(fns))}
	p := &Plan{Assemble: func() Result { return res }}
	for i, fn := range fns {
		i, fn := i, fn
		res.Rows[i].Fn = fn.Name
		p.Stage.Cell(fn.Name+"/squeezy", func(w *World) {
			res.Rows[i].ResizedColdMs, res.Rows[i].PlugMs = coldStartOn(w, faas.Squeezy, fn)
		})
		p.Stage.Cell(fn.Name+"/static", func(w *World) {
			res.Rows[i].StaticColdMs, _ = coldStartOn(w, faas.Static, fn)
		})
	}
	return p
}

// coldStartOn measures a warmed-VM cold start for one backend,
// returning the total and the plug (VMM) latency in ms.
func coldStartOn(w *World, kind faas.BackendKind, fn *workload.Function) (totalMs, plugMs float64) {
	sched := w.Scheduler()
	rt := w.Runtime(hostmem.New(0), costmodel.Default())
	fv := rt.AddVM(faas.VMConfig{
		Name: fn.Name, Kind: kind, Fn: fn, N: 4, KeepAlive: 20 * sim.Second,
	})
	fv.InvokePrimary(nil) // warm the shared page cache
	sched.RunUntil(sim.Time(40 * sim.Second))
	var phases faas.Phases
	fv.InvokePrimary(func(r faas.Result) { phases = r.Phases })
	sched.RunUntil(sim.Time(80 * sim.Second))
	return phases.Total().Milliseconds(), phases.VMMDelay.Milliseconds()
}

// Table renders the experiment.
func (r *PlugLatencyResult) Table() *Table {
	t := &Table{
		Title:  "§6.2.1: plug latency and the cost of cold-starting on a resized VM",
		Header: []string{"function", "plug(ms)", "static cold(ms)", "resized cold(ms)", "slowdown(%)"},
	}
	for _, row := range r.Rows {
		slow := 100 * (row.ResizedColdMs - row.StaticColdMs) / row.StaticColdMs
		t.AddRow(row.Fn, f1(row.PlugMs), f1(row.StaticColdMs), f1(row.ResizedColdMs), f1(slow))
	}
	return t
}

func init() {
	RegisterPlan("pluglat", "§6.2.1: plug latency and the cost of cold-starting on a resized VM", PlugLatencyPlan)
}
