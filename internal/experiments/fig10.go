package experiments

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Fig10Run is one end-to-end run of the restricted-memory experiment.
type Fig10Run struct {
	Method string
	// P99Ms is the per-function P99 latency in milliseconds.
	P99Ms map[string]float64
	// Committed is the host committed-memory time series (GiB).
	Committed stats.TimeSeries
	// GiBs is the time integral of committed memory (GiB·s).
	GiBs float64
	// PeakCommittedBytes is the run's peak committed memory.
	PeakCommittedBytes int64
	// Dropped counts requests that failed outright.
	Dropped int
}

// Fig10Result is the full figure: the Abundant Memory baselines plus
// the three methods under a restricted host. Each method normalizes
// against its own abundant run, as the paper does — otherwise backend
// perks unrelated to the restriction (HarvestVM's instant buffer
// scale-ups, say) leak into the normalized ratios.
type Fig10Result struct {
	Abundant  Fig10Run
	Baselines map[string]Fig10Run
	Runs      []Fig10Run
}

// Fig10 reproduces §6.2.2 / Figure 10. Four N:1 VMs (one per Table 1
// function) serve staggered bursts sized so that scale-ups must reuse
// memory reclaimed from other functions' idle instances. With the host
// capped below the Abundant-Memory peak, slow reclamation stalls
// scale-ups and inflates tail latency (vanilla virtio-mem ≈3.15x);
// HarvestVM's buffers help latency but hold extra memory; Squeezy keeps
// both tail latency (≈1.1x) and the memory integral low.
func Fig10(opts Options) *Fig10Result {
	return Fig10Plan(opts).runSerial(newWorld()).(*Fig10Result)
}

// Fig10Plan is the figure as a two-stage cell plan. The restricted
// runs depend on data from the abundant runs — the host cap is half
// the abundant peak — so the plan uses a Then continuation: stage one
// simulates the three abundant baselines in parallel, stage two the
// three capped runs.
func Fig10Plan(opts Options) *Plan {
	// The protocol needs the full two burst waves to build memory
	// pressure, so Quick does not shrink this experiment (it runs in
	// ~2 s of real time anyway).
	duration := 320 * sim.Second
	kinds := []faas.BackendKind{faas.VirtioMem, faas.Harvest, faas.Squeezy}
	res := &Fig10Result{Baselines: make(map[string]Fig10Run)}
	baselines := make([]Fig10Run, len(kinds)) // skipping Squeezy's (== Abundant)
	capped := make([]Fig10Run, len(kinds))
	p := &Plan{Assemble: func() Result {
		for i, kind := range kinds {
			if kind == faas.Squeezy {
				res.Baselines[kind.String()] = res.Abundant
			} else {
				res.Baselines[kind.String()] = baselines[i]
			}
		}
		res.Runs = append(res.Runs[:0], capped...)
		return res
	}}
	p.Stage.Cell("abundant", func(w *World) {
		res.Abundant = fig10Run(w, "abundant", faas.Squeezy, 0, duration, opts)
	})
	for i, kind := range kinds {
		if kind == faas.Squeezy {
			// The cap-sizing run already is the uncapped Squeezy
			// configuration; don't simulate it a second time.
			continue
		}
		i, kind := i, kind
		p.Stage.Cell(kind.String()+"-abundant", func(w *World) {
			baselines[i] = fig10Run(w, kind.String()+"-abundant", kind, 0, duration, opts)
		})
	}
	p.Stage.Then = func() *Stage {
		// The paper restricts the host to ~70% of the abundant peak.
		// Under the SubSeed streams (PR 5's re-baseline) 2/3 lands in
		// the same regime: every scale-up rides on reclamation without
		// tipping any backend into queueing collapse — squeezy ≈1.1x as
		// in §6.2.2, vanilla virtio-mem several times worse. At 1/2 all
		// three backends storm; at 7/10 the pressure is too rare to
		// separate virtio-mem from the HarvestVM buffers.
		capBytes := res.Abundant.PeakCommittedBytes * 2 / 3
		st := &Stage{}
		for i, kind := range kinds {
			i, kind := i, kind
			st.Cell(kind.String()+"-capped", func(w *World) {
				capped[i] = fig10Run(w, kind.String(), kind, capBytes, duration, opts)
			})
		}
		return st
	}
	return p
}

// fig10Traces builds the per-function invocation schedule: a low base
// rate plus bursts staggered ~35 s apart, repeating every half of the
// experiment, so one function's scale-up overlaps another's keep-alive
// window (the tug-of-war of Figure 10 right).
func fig10Traces(duration sim.Duration, opts Options) map[string][]sim.Time {
	burstRPS := map[string]float64{"Cnn": 5, "Bert": 3, "BFS": 5, "HTML": 10}
	out := make(map[string][]sim.Time)
	half := duration / 2
	for i, fn := range workload.Functions() {
		offset := sim.Duration(20+35*i) * sim.Second
		segs := []rampSeg{
			{0, duration, 0.1}, // trickle keeps one instance warm
			{offset, offset + 30*sim.Second, burstRPS[fn.Name]},
			{half + offset, half + offset + 30*sim.Second, burstRPS[fn.Name]},
		}
		out[fn.Name] = rampArrivals(SubSeed(opts.seed(), i), segs)
	}
	return out
}

func fig10Run(w *World, label string, kind faas.BackendKind, hostCap int64, duration sim.Duration, opts Options) Fig10Run {
	sched := w.Scheduler()
	host := hostmem.New(hostCap)
	rt := w.Runtime(host, costmodel.Default())
	if kind == faas.Harvest {
		rt.ProactiveFactor = 1.5
	}
	vms := make(map[string]*faas.FuncVM)
	for _, fn := range workload.Functions() {
		cfg := faas.VMConfig{
			Name: fn.Name + "-" + label, Kind: kind, Fn: fn, N: 14,
			// Shorter than the stagger between burst waves (35 s), so a
			// wave's instances age out before the next wave lands and
			// its scale-ups must go through reclamation rather than the
			// leftover warm pool — the regime the figure measures. At
			// >= 33 s the warm pools bridge the stagger and every
			// backend looks abundant.
			KeepAlive: 32 * sim.Second,
		}
		if kind == faas.Harvest {
			cfg.HarvestBufferBytes = 2 * units.AlignUp(fn.MemoryLimit, units.BlockSize)
		}
		vms[fn.Name] = rt.AddVM(cfg)
	}
	for name, times := range fig10Traces(duration, opts) {
		fv := vms[name]
		fn := workload.ByName(name)
		for _, ts := range times {
			ts := ts
			sched.At(ts, func() { fv.Invoke(fn, nil) })
		}
	}

	run := Fig10Run{Method: label, P99Ms: make(map[string]float64)}
	run.Committed.Reserve(int(duration/sim.Second) + 1)
	var tick func()
	tick = func() {
		committed := rt.CommittedBytes()
		run.Committed.Append(sched.Now().Seconds(), float64(committed)/float64(units.GiB))
		if committed > run.PeakCommittedBytes {
			run.PeakCommittedBytes = committed
		}
		if sched.Now() < sim.Time(duration) {
			sched.After(sim.Second, tick)
		}
	}
	sched.At(0, tick)
	sched.RunUntil(sim.Time(duration))

	for name, fv := range vms {
		if s := fv.Latencies[name]; s != nil {
			run.P99Ms[name] = s.P99()
		}
		run.Dropped += fv.DroppedReqs
	}
	run.GiBs = run.Committed.Integral()
	return run
}

// NormalizedP99 returns run's P99 over the same method's abundant
// baseline for fn.
func (r *Fig10Result) NormalizedP99(method, fn string) float64 {
	base := r.Baselines[method].P99Ms[fn]
	if base == 0 {
		return 0
	}
	for _, run := range r.Runs {
		if run.Method == method {
			return run.P99Ms[fn] / base
		}
	}
	return 0
}

// GeomeanP99 returns the geometric mean of normalized P99s for a
// method.
func (r *Fig10Result) GeomeanP99(method string) float64 {
	var xs []float64
	for _, fn := range workload.Functions() {
		xs = append(xs, r.NormalizedP99(method, fn.Name))
	}
	return stats.Geomean(xs)
}

// GiBs returns the committed-memory integral for a method.
func (r *Fig10Result) GiBs(method string) float64 {
	if method == "abundant" {
		return r.Abundant.GiBs
	}
	for _, run := range r.Runs {
		if run.Method == method {
			return run.GiBs
		}
	}
	return 0
}

// Table renders both panels of the figure.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title:  "Figure 10: normalized P99 latency and memory integral under restricted host memory",
		Header: []string{"method", "Html", "Cnn", "Bfs", "Bert", "Geomean", "GiB*s"},
	}
	t.AddRow("abundant", "1.00", "1.00", "1.00", "1.00", "1.00", f1(r.Abundant.GiBs))
	for _, run := range r.Runs {
		t.AddRow(run.Method,
			f2(r.NormalizedP99(run.Method, "HTML")),
			f2(r.NormalizedP99(run.Method, "Cnn")),
			f2(r.NormalizedP99(run.Method, "BFS")),
			f2(r.NormalizedP99(run.Method, "Bert")),
			f2(r.GeomeanP99(run.Method)),
			f1(run.GiBs))
	}
	return t
}

func init() {
	RegisterPlan("fig10", "Figure 10: normalized P99 latency and memory integral under restricted host memory", Fig10Plan)
}
