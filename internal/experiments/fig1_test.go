package experiments

import "testing"

func TestFig1Shape(t *testing.T) {
	res := Fig1(Options{Quick: true})
	if res.Guest.Len() == 0 || res.HostUsage.Len() == 0 {
		t.Fatal("empty series")
	}
	// Instances scale up with the burst and back down after keep-alive.
	if res.Instances.Max() < 3 {
		t.Fatalf("peak instances = %v, burst did not scale up", res.Instances.Max())
	}
	finalInstances := last(res.Instances.Values)
	if finalInstances >= res.Instances.Max() {
		t.Fatal("instances never scaled down")
	}
	// Guest memory follows the evictions down...
	guestDrop := res.Guest.Max() - last(res.Guest.Values)
	if guestDrop <= 0 {
		t.Fatal("guest memory never dropped after evictions")
	}
	// ...but host populated memory never shrinks (the Figure 1 claim).
	if last(r0(res.HostUsage.Values)) < res.HostUsage.Max()*0.999 {
		t.Fatalf("host memory shrank: peak %v final %v", res.HostUsage.Max(), last(res.HostUsage.Values))
	}
}

func r0(v []float64) []float64 { return v }

func TestFig2Shape(t *testing.T) {
	res := Fig2(Options{Quick: true})
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	// Hundreds-to-thousands of creations per minute across the top-10
	// functions.
	if res.PeakCreations() < 100 {
		t.Fatalf("peak creations/min = %d, want bursty churn", res.PeakCreations())
	}
	if res.PeakEvictions() <= 0 {
		t.Fatal("no evictions observed")
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig8Shape(t *testing.T) {
	res := Fig8(Options{Quick: true})
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ReclaimOps == 0 {
			t.Fatalf("%s/%s had no reclamations", row.Fn, row.Method)
		}
		if row.ThroughputMiBs <= 0 {
			t.Fatalf("%s/%s throughput = %v", row.Fn, row.Method, row.ThroughputMiBs)
		}
	}
	// Squeezy beats virtio-mem for every function, and by a large
	// geomean factor (§6.2.1 reports ≈7x).
	for _, fn := range []string{"Cnn", "Bert", "BFS", "HTML"} {
		if res.Throughput(fn, "squeezy") <= res.Throughput(fn, "virtio-mem") {
			t.Fatalf("%s: squeezy not faster", fn)
		}
	}
	ratio := res.Geomean("squeezy") / res.Geomean("virtio-mem")
	if ratio < 3 {
		t.Fatalf("geomean speedup = %.1fx, want >= 3x", ratio)
	}
}
