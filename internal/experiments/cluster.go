package experiments

import (
	"fmt"
	"strings"

	"squeezy/internal/cluster"
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The cluster-* experiments take the paper's single-host reclamation
// comparison to fleet scale: N simulated hosts under one scheduler, a
// Zipf fleet of functions replayed through the dispatcher, and the
// placement policy deciding which host pays plug — and, under
// pressure, unplug — latency.

// fleetCfg parameterizes one fleet run.
type fleetCfg struct {
	policy   string
	backend  faas.BackendKind
	hosts    int
	hostMem  int64
	funcs    int
	duration sim.Duration
	baseRPS  float64 // fleet-aggregate quiet rate
	burstRPS float64 // fleet-aggregate in-burst rate
	// shards overrides the host-shard count of the epoch engine; 0
	// selects one shard per host. Any value produces byte-identical
	// tables — the knob exists for the determinism tests.
	shards int

	// Fleet dynamics (cluster-elastic): a churn schedule, an optional
	// autoscaler, and phase bounds that split latency metrics at the
	// churn instant. All nil/empty for the static experiments.
	events    []cluster.FleetEvent
	autoscale *cluster.AutoscaleConfig
	phases    []sim.Time

	// Fault injection and resilience (cluster-resilience, or any fleet
	// experiment under squeezyctl -faults): a fault plan with its
	// decision-stream seed, and the dispatcher resilience config (nil =
	// plain dispatch). All zero for the fault-free experiments.
	faults    []fault.Event
	faultSeed uint64
	resil     *cluster.ResilienceConfig

	// Failure domains (cluster-domains, or any fleet experiment under
	// squeezyctl -topology): the rack/zone topology and the recovery
	// pacing config. Both nil for the flat-fleet experiments, which
	// keeps their tables byte-identical to builds without the domain
	// machinery.
	topo   *cluster.Topology
	repace *cluster.RepaceConfig

	// Diurnal/weekly rate modulation on the fleet trace
	// (cluster-diurnal). Empty for the flat-rate experiments, which
	// keeps their traces byte-identical to the unmodulated generators.
	mods []trace.DiurnalConfig
	// tick overrides the fleet memory-sampling cadence; 0 keeps the
	// default 1 s. Multi-day runs coarsen it so the memory series stays
	// proportional to simulated days, not invocations.
	tick sim.Duration
	// sketch, when non-nil, moves the fleet's latency samples into
	// bounded-memory reservoir mode (stats.SketchConfig). Nil — the
	// default everywhere but cluster-diurnal and squeezyctl -sketch —
	// keeps exact percentiles and byte-identical recorded tables.
	sketch *stats.SketchConfig
}

// applyOptTopology overlays the options' rack/zone topology (squeezyctl
// -topology) on a cell config. Call it before applyOptFaults so fuzzed
// fault plans know whether rack-level kinds are drawable.
func applyOptTopology(opts Options, fc *fleetCfg) {
	if opts.TopoRacks <= 1 {
		return
	}
	zones := opts.TopoZones
	if zones <= 0 {
		zones = 1
	}
	fc.topo = &cluster.Topology{Racks: opts.TopoRacks, Zones: zones}
}

// applyOptSketch overlays bounded-memory reservoir sketches
// (squeezyctl -sketch) on a cell config, unless the cell already
// configured its own. Order statistics then come from the sketch, so
// recorded tables may differ within the documented rank-error bound;
// the byte-identity contract holds only with sketches off.
func applyOptSketch(opts Options, fc *fleetCfg) {
	if !opts.Sketch || fc.sketch != nil {
		return
	}
	fc.sketch = &stats.SketchConfig{K: stats.DefaultSketchK, Seed: opts.seed()}
}

// applyOptFaults overlays the options' fault scenario (squeezyctl
// -faults) on a cell config. Phase bounds are added at the window
// start when the run has none, so the post-fault tail is readable even
// in the static experiments.
func applyOptFaults(opts Options, fc *fleetCfg) {
	name := opts.FaultScenario
	if name == "" || name == "none" {
		return
	}
	seed := opts.FaultSeed
	if seed == 0 {
		seed = opts.seed()
	}
	if name == "fuzz" {
		racks := 0
		if fc.topo != nil {
			racks = fc.topo.Racks
		}
		fc.faults = fault.GenFaults(seed, fault.Config{
			Duration: fc.duration, Events: 12, Hosts: fc.hosts, Racks: racks,
		})
	} else {
		evs, ok := fault.Scenario(name, fc.hosts, fc.duration)
		if !ok {
			panic("experiments: unknown fault scenario " + name)
		}
		fc.faults = evs
	}
	fc.faultSeed = seed
	if len(fc.phases) == 0 {
		fc.phases = []sim.Time{sim.Time(fc.duration / 2)}
	}
}

// fleetStats is the measured outcome of one fleet run.
type fleetStats struct {
	VMs        int
	Invoked    int
	Cold       int
	Warm       int
	ColdP50Ms  float64
	ColdP99Ms  float64
	ColdP999Ms float64
	WarmP99Ms  float64
	MemWaitP99 float64
	Evictions  int
	Dropped    int // execution drops + admission drops
	Unserved   int // still queued at the drain horizon (unbounded tail)
	MemEff     float64
	GiBs       float64

	// Fleet-dynamics outcomes, populated when the run configures churn
	// or phase bounds (zero otherwise). Pre/post split at the first
	// phase bound — the churn instant.
	Joins, Fails, Drains int
	Replaced, WarmLost   int
	ColdPre, ColdPost    int
	ColdP99PreMs         float64
	ColdP99PostMs        float64
	LatP99PostMs         float64

	// Resilience and fault outcomes (cluster-resilience), zero in the
	// fault-free plain-dispatch experiments.
	Failed    int // injected failures delivered as error results
	Shed      int // invocations shed at admission under pressure
	Retries   int
	Hedges    int
	HedgeWins int
	TimedOut  int

	// Failure-domain outcomes (cluster-domains), zero on flat fleets.
	Paced      int // re-placements routed through the pacing queue
	RackEvents int // rack-level fault windows expanded onto hosts
}

// traceStream adapts a merged trace cursor to the dispatcher's
// invocation stream, resolving function ranks through a lazy fleet
// pool. Nothing is materialized: the adapter buffers exactly one
// invocation (for Peek), so a multi-day million-invocation replay
// holds O(funcs) state however many invocations flow through.
type traceStream struct {
	src  trace.Stream
	pool workload.FleetPool
	next cluster.Invocation
	have bool
}

func (s *traceStream) fill() {
	if s.have {
		return
	}
	if it, ok := s.src.Next(); ok {
		s.next = cluster.Invocation{T: it.T, Fn: s.pool.Get(it.Func)}
		s.have = true
	}
}

func (s *traceStream) Peek() (sim.Time, bool) {
	s.fill()
	return s.next.T, s.have
}

func (s *traceStream) Next() (cluster.Invocation, bool) {
	s.fill()
	if !s.have {
		return cluster.Invocation{}, false
	}
	s.have = false
	return s.next, true
}

// fleetRun replays a Zipf fleet trace against a sharded cluster and
// collects fleet-wide latency, churn, and memory-efficiency metrics.
// The trace streams straight from the generator cursors into the epoch
// loop (never materialized — the same sequence the pre-streaming
// GenFleet+Merge produced, byte-identical by the trace package's
// golden-fingerprint contract). The run is a pure function of
// (seed, fc) — the pooled world only contributes recycled storage, and
// the epoch engine's shard count and worker placement never reach the
// results (the cluster package's determinism contract).
func fleetRun(w *World, seed uint64, fc fleetCfg) fleetStats {
	cost := costmodel.Default()
	c := w.Fleet(cost, cluster.Config{
		Hosts:        fc.hosts,
		HostMemBytes: fc.hostMem,
		Backend:      fc.backend,
		N:            8,
		KeepAlive:    45 * sim.Second,
		PhaseBounds:  fc.phases,
		Resilience:   fc.resil,
		Topology:     fc.topo,
		Repace:       fc.repace,
		Sketch:       fc.sketch,
	}, cluster.NewPolicy(fc.policy, cost))

	src := &traceStream{src: trace.NewFleetStream(seed, trace.FleetConfig{
		Funcs:         fc.funcs,
		Duration:      fc.duration,
		TotalBaseRPS:  fc.baseRPS,
		TotalBurstRPS: fc.burstRPS,
		Modulation:    fc.mods,
	})}
	tick := fc.tick
	if tick == 0 {
		tick = sim.Second
	}
	// Drain far past the trace end (10x the trace) so slow requests
	// finish and their latencies are counted — in the pressured regimes
	// the tail outlives the trace by minutes, and a short cutoff would
	// deflate exactly the numbers these experiments compare. Requests
	// still unfinished at the horizon are reported as `unserved`
	// instead of being silently censored: a nonzero count means the
	// configuration cannot work off its backlog at all (its true tail
	// is unbounded, not merely long). The memory series still covers
	// only the trace window.
	c.PlayStream(src, cluster.PlayConfig{
		Shards:     fc.shards,
		TickEvery:  tick,
		TickUntil:  sim.Time(fc.duration),
		DrainUntil: sim.Time(10 * fc.duration),
		Events:     fc.events,
		Autoscale:  fc.autoscale,
		Faults:     fc.faults,
		FaultSeed:  fc.faultSeed,
	})
	w.NoteShardWalls(c.ShardWalls())

	m := c.Stats()
	served := m.ColdStarts + m.WarmStarts + m.Dropped + m.AdmissionDrops + m.Failed + m.Shed
	fs := fleetStats{
		VMs:        c.VMCount(),
		Invoked:    m.Invocations,
		Cold:       m.ColdStarts,
		Warm:       m.WarmStarts,
		ColdP50Ms:  m.ColdLatMs.P50(),
		ColdP99Ms:  m.ColdLatMs.P99(),
		ColdP999Ms: m.ColdLatMs.Percentile(99.9),
		WarmP99Ms:  m.WarmLatMs.P99(),
		MemWaitP99: m.MemWaitMs.P99(),
		Evictions:  c.Evictions(),
		Dropped:    m.Dropped + m.AdmissionDrops,
		Unserved:   m.Invocations - served,
		MemEff:     c.MemoryEfficiency(),
		GiBs:       c.CommittedGiBs(),
		Joins:      m.HostJoins,
		Fails:      m.HostFails,
		Drains:     m.HostDrains,
		Replaced:   m.Replaced,
		WarmLost:   m.WarmLost,
		Failed:     m.Failed,
		Shed:       m.Shed,
		Retries:    m.Retries,
		Hedges:     m.Hedges,
		HedgeWins:  m.HedgeWins,
		TimedOut:   m.TimedOut,
		Paced:      m.Paced,
		RackEvents: m.RackEvents,
	}
	if m.ColdPhase != nil && m.ColdPhase.Phases() >= 2 {
		pre, post := m.ColdPhase.Phase(0), m.ColdPhase.Phase(1)
		fs.ColdPre, fs.ColdPost = pre.N(), post.N()
		fs.ColdP99PreMs, fs.ColdP99PostMs = pre.P99(), post.P99()
		fs.LatP99PostMs = m.LatPhase.Phase(1).P99()
	}
	return fs
}

// fleetScale returns the shared workload scale: quick shrinks the
// fleet and trace for smoke runs.
func fleetScale(opts Options) (funcs int, duration sim.Duration, baseRPS, burstRPS float64) {
	if opts.Quick {
		return 16, 60 * sim.Second, 6, 36
	}
	// 40 functions at these rates saturate ~4 x 32 GiB hosts into the
	// pressured-but-functional regime; well past that (half the memory,
	// or double the load) the fleet collapses into pure queueing and
	// every policy and backend looks identically bad.
	return 40, 180 * sim.Second, 16, 80
}

func addFleetRow(t *Table, s fleetStats, lead ...string) {
	t.AddRow(append(lead,
		fmt.Sprintf("%d", s.VMs),
		fmt.Sprintf("%d", s.Cold),
		fmt.Sprintf("%d", s.Warm),
		f1(s.ColdP50Ms),
		f1(s.ColdP99Ms),
		f1(s.MemWaitP99),
		fmt.Sprintf("%d", s.Evictions),
		fmt.Sprintf("%d", s.Dropped),
		fmt.Sprintf("%d", s.Unserved),
		f2(s.MemEff),
		f1(s.GiBs),
	)...)
}

var fleetCols = []string{"vms", "cold", "warm", "cold_p50_ms", "cold_p99_ms", "memwait_p99_ms", "evictions", "dropped", "unserved", "mem_eff", "GiB*s"}

// fleetCell is one (config, lead-columns) pair of a fleet sweep.
type fleetCell struct {
	fc   fleetCfg
	lead []string
}

// fleetPlan turns a list of fleet configurations into a cell plan: one
// cell per configuration, each simulating its fleet on the pooled
// world and writing its own result slot; Assemble emits the rows in
// enumeration order, so the table is identical at any worker count.
// extra, when non-nil, appends run-derived lead columns after each
// cell's static ones (cluster-scale's invocation count).
func fleetPlan(title string, header []string, seed uint64, cells []fleetCell, extra func(fleetStats) []string) *Plan {
	results := make([]fleetStats, len(cells))
	p := &Plan{Assemble: func() Result {
		t := &Table{Title: title, Header: header}
		for i, c := range cells {
			lead := c.lead
			if extra != nil {
				lead = append(append([]string{}, lead...), extra(results[i])...)
			}
			addFleetRow(t, results[i], lead...)
		}
		return t
	}}
	for i, c := range cells {
		i, c := i, c
		p.Stage.Cell(strings.Join(c.lead, "/"), func(w *World) {
			results[i] = fleetRun(w, seed, c.fc)
		})
	}
	return p
}

// ClusterPoliciesPlan sweeps placement policy × backend × host count
// under a fixed fleet workload: with few hosts the fleet is
// memory-tight and placement decides who stalls on reclamation; with
// more hosts the pressure relaxes and the policies converge.
func ClusterPoliciesPlan(opts Options) *Plan {
	funcs, duration, baseRPS, burstRPS := fleetScale(opts)
	hostCounts := []int{4, 8}
	hostMem := int64(32) * units.GiB
	if opts.Quick {
		hostCounts = []int{2, 3}
		hostMem = 28 * units.GiB
	}
	var cells []fleetCell
	for _, hosts := range hostCounts {
		for _, backend := range []faas.BackendKind{faas.VirtioMem, faas.Squeezy} {
			for _, policy := range cluster.PolicyNames() {
				fc := fleetCfg{
					policy: policy, backend: backend, hosts: hosts, hostMem: hostMem,
					funcs: funcs, duration: duration, baseRPS: baseRPS, burstRPS: burstRPS,
				}
				applyOptTopology(opts, &fc)
				applyOptFaults(opts, &fc)
				applyOptSketch(opts, &fc)
				cells = append(cells, fleetCell{
					fc:   fc,
					lead: []string{policy, backend.String(), fmt.Sprintf("%d", hosts)},
				})
			}
		}
	}
	return fleetPlan(
		"cluster-policies: placement policy x backend x host count under a Zipf fleet",
		append([]string{"policy", "backend", "hosts"}, fleetCols...),
		opts.seed(), cells, nil)
}

// ClusterPolicies runs the policy sweep serially.
func ClusterPolicies(opts Options) Result { return ClusterPoliciesPlan(opts).runSerial(newWorld()) }

// ClusterScalePlan grows hosts and load together (weak scaling) under
// the reclaim-aware policy on Squeezy hosts: per-request latency
// should stay flat while the fleet absorbs proportionally more
// traffic.
func ClusterScalePlan(opts Options) *Plan {
	hostCounts := []int{2, 4, 8, 16}
	perHostFuncs, perHostBase, perHostBurst := 10, 4.0, 20.0
	duration := 180 * sim.Second
	if opts.Quick {
		hostCounts = []int{2, 4}
		perHostFuncs, perHostBase, perHostBurst = 8, 3, 15
		duration = 60 * sim.Second
	}
	var cells []fleetCell
	for _, hosts := range hostCounts {
		funcs := perHostFuncs * hosts
		fc := fleetCfg{
			policy: "reclaim-aware", backend: faas.Squeezy,
			hosts: hosts, hostMem: 32 * units.GiB,
			funcs: funcs, duration: duration,
			baseRPS: perHostBase * float64(hosts), burstRPS: perHostBurst * float64(hosts),
		}
		applyOptTopology(opts, &fc)
		applyOptFaults(opts, &fc)
		applyOptSketch(opts, &fc)
		cells = append(cells, fleetCell{
			fc:   fc,
			lead: []string{fmt.Sprintf("%d", hosts), fmt.Sprintf("%d", funcs)},
		})
	}
	return fleetPlan(
		"cluster-scale: weak scaling of the fleet (reclaim-aware, squeezy)",
		append([]string{"hosts", "funcs", "invocations"}, fleetCols...),
		opts.seed(), cells,
		// The invocations column comes from the run itself.
		func(s fleetStats) []string { return []string{fmt.Sprintf("%d", s.Invoked)} })
}

// ClusterScale runs the weak-scaling sweep serially.
func ClusterScale(opts Options) Result { return ClusterScalePlan(opts).runSerial(newWorld()) }

// ClusterOvercommitPlan fixes the fleet and shrinks per-host memory:
// as overcommit tightens, every scale-up depends on reclaiming another
// function's memory, and the backend's unplug latency becomes the
// fleet's cold-start tail.
func ClusterOvercommitPlan(opts Options) *Plan {
	funcs, duration, baseRPS, burstRPS := fleetScale(opts)
	hosts := 4
	memSteps := []int64{32, 28, 24}
	if opts.Quick {
		hosts = 2
		memSteps = []int64{28, 24, 20}
	}
	var cells []fleetCell
	for _, backend := range []faas.BackendKind{faas.VirtioMem, faas.Harvest, faas.Squeezy} {
		for _, gib := range memSteps {
			fc := fleetCfg{
				policy: "reclaim-aware", backend: backend, hosts: hosts, hostMem: gib * units.GiB,
				funcs: funcs, duration: duration, baseRPS: baseRPS, burstRPS: burstRPS,
			}
			applyOptTopology(opts, &fc)
			applyOptFaults(opts, &fc)
			applyOptSketch(opts, &fc)
			cells = append(cells, fleetCell{
				fc:   fc,
				lead: []string{backend.String(), fmt.Sprintf("%d", gib)},
			})
		}
	}
	return fleetPlan(
		"cluster-overcommit: tightening per-host memory (reclaim-aware placement)",
		append([]string{"backend", "host_mem_gib"}, fleetCols...),
		opts.seed(), cells, nil)
}

// ClusterOvercommit runs the overcommit sweep serially.
func ClusterOvercommit(opts Options) Result { return ClusterOvercommitPlan(opts).runSerial(newWorld()) }

func init() {
	RegisterPlan("cluster-policies", "fleet placement: policy x backend x host count over a Zipf fleet", ClusterPoliciesPlan)
	RegisterPlan("cluster-scale", "fleet weak scaling: hosts and load grow together (reclaim-aware, squeezy)", ClusterScalePlan)
	RegisterPlan("cluster-overcommit", "fleet overcommit: per-host memory shrinks, backends pay the unplug tail", ClusterOvercommitPlan)
}
