package experiments

import "testing"

func TestPlugLatency(t *testing.T) {
	res := PlugLatency(Options{})
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// §6.2.1: plugging costs 35-45 ms for all function sizes.
		if row.PlugMs < 20 || row.PlugMs > 60 {
			t.Fatalf("%s plug = %.1fms outside the 35-45ms band", row.Fn, row.PlugMs)
		}
		// Cold start on a resized VM is 3-35% slower than static.
		slow := (row.ResizedColdMs - row.StaticColdMs) / row.StaticColdMs
		if slow < 0.005 || slow > 0.50 {
			t.Fatalf("%s resized-VM slowdown = %.1f%%, outside the paper's 3-35%% band",
				row.Fn, 100*slow)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}
