package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates float64 observations and answers order-statistic
// queries. The zero value is an empty sample.
//
// Sortedness is maintained incrementally: observations land in an
// unsorted tail, and the first order-statistic query after a batch of
// appends sorts just that tail and merges it into the sorted prefix —
// O(n + k log k) for k new points — instead of re-sorting all n
// observations on every percentile call. Min, Max, Sum, and Mean are
// tracked on Add and never trigger a sort.
//
// EnableSketch (sketch.go) switches a sample to bounded-memory
// reservoir mode: O(K) memory at any observation count, exact
// N/Sum/Mean/Min/Max, and order statistics within RankErrorBound(K)
// of exact. Exact mode is the default and is untouched by the sketch
// machinery.
type Sample struct {
	xs       []float64 // observations; xs[:nsorted] is sorted ascending
	nsorted  int       // length of the sorted prefix
	scratch  []float64 // merge buffer, reused across queries
	sum      float64
	min, max float64
	sk       *sketch // non-nil selects reservoir mode (sketch.go)
}

// Add appends an observation.
func (s *Sample) Add(v float64) {
	if s.N() == 0 || v < s.min {
		s.min = v
	}
	if s.N() == 0 || v > s.max {
		s.max = v
	}
	s.sum += v
	if s.sk != nil {
		s.sk.add(v)
		return
	}
	s.xs = append(s.xs, v)
}

// Reset empties the sample while keeping its buffers (and, in sketch
// mode, the sketch configuration), so a pooled metrics struct can be
// reused across simulation runs. A reset sketched sample restarts its
// counter-mode priority stream from zero: reset-then-refill is
// byte-identical to a fresh sketch with the same configuration.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.nsorted = 0
	s.sum = 0
	s.min = 0
	s.max = 0
	if s.sk != nil {
		s.sk.reset()
	}
}

// N returns the number of observations (exact in both modes).
func (s *Sample) N() int {
	if s.sk != nil {
		return s.sk.n
	}
	return len(s.xs)
}

// Sum returns the sum of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	n := s.N()
	if n == 0 {
		return 0
	}
	return s.sum / float64(n)
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// Percentile returns the p-th percentile using linear interpolation
// between closest ranks. Boundary behavior, pinned by the property
// tests:
//
//   - N == 0 returns 0 for every p, including p = 0 and p = 100.
//   - N == 1 returns the single observation for every p.
//   - p <= 0 returns Min() and p >= 100 returns Max(), exactly — in
//     sketch mode too, where both extremes are tracked outside the
//     reservoir.
//   - p = NaN panics: a NaN rank would silently index garbage, and a
//     caller computing percentiles from NaN arithmetic has a bug.
//
// In sketch mode interior percentiles interpolate over the reservoir
// instead of the full sample, within RankErrorBound(K) of exact rank.
func (s *Sample) Percentile(p float64) float64 {
	if math.IsNaN(p) {
		panic("stats: Percentile(NaN)")
	}
	if s.N() == 0 {
		return 0
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	var xs []float64
	if s.sk != nil {
		xs = s.sk.sortedVals()
		if len(xs) == 0 {
			return 0
		}
	} else {
		s.ensureSorted()
		xs = s.xs
	}
	n := len(xs)
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return xs[lo]
	}
	frac := rank - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// P50 returns the median.
func (s *Sample) P50() float64 { return s.Percentile(50) }

// P99 returns the 99th percentile.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// P999 returns the 99.9th percentile.
func (s *Sample) P999() float64 { return s.Percentile(99.9) }

// Stddev returns the population standard deviation, or 0 for fewer than
// two observations. Sketch mode computes it exactly from the tracked
// moments (n, sum, sum of squares) — it is not an estimate, though the
// one-pass moment formula can differ from the exact-mode two-pass
// result by floating-point rounding.
func (s *Sample) Stddev() float64 {
	n := s.N()
	if n < 2 {
		return 0
	}
	if s.sk != nil {
		m := s.Mean()
		varc := s.sk.sumsq/float64(n) - m*m
		if varc < 0 {
			varc = 0
		}
		return math.Sqrt(varc)
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Merge adds every observation of o to s. Percentiles, Min, and Max of
// the result depend only on the combined multiset of observations, so
// merging per-shard samples in any fixed order reproduces the
// order-statistics of a single globally-accumulated sample.
//
// Sketched samples merge with sketched samples of the same capacity
// (the union's bottom-K reservoir — commutative and associative, so
// any merge order is byte-identical); mixing a sketched sample with an
// exact one panics, because silently dropping or re-prioritizing
// observations across the mode boundary would corrupt both contracts.
func (s *Sample) Merge(o *Sample) {
	if (s.sk != nil) != (o.sk != nil) {
		panic(sketchMergePanic(s, o))
	}
	if s.sk != nil {
		if s.sk.cfg.K != o.sk.cfg.K {
			panic(fmt.Sprintf("stats: merging sketches with different capacities (%d vs %d)", s.sk.cfg.K, o.sk.cfg.K))
		}
		if o.sk.n == 0 {
			return
		}
		if s.sk.n == 0 || o.min < s.min {
			s.min = o.min
		}
		if s.sk.n == 0 || o.max > s.max {
			s.max = o.max
		}
		s.sum += o.sum
		s.sk.merge(o.sk)
		s.sk.sorted = false
		return
	}
	for _, v := range o.xs {
		s.Add(v)
	}
}

// Values returns a copy of the retained observations; insertion order
// is not guaranteed (the slice may be sorted). In sketch mode only the
// reservoir's observations are returned.
func (s *Sample) Values() []float64 {
	if s.sk != nil {
		out := make([]float64, 0, len(s.sk.ents))
		for _, e := range s.sk.ents {
			out = append(out, e.v)
		}
		return out
	}
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// ensureSorted restores full sortedness by sorting the unsorted tail
// and merging it with the sorted prefix.
func (s *Sample) ensureSorted() {
	if s.nsorted == len(s.xs) {
		return
	}
	tail := s.xs[s.nsorted:]
	sort.Float64s(tail)
	if s.nsorted > 0 {
		// Merge prefix and tail through the scratch buffer.
		if cap(s.scratch) < len(s.xs) {
			s.scratch = make([]float64, len(s.xs))
		}
		out := s.scratch[:len(s.xs)]
		i, j, k := 0, s.nsorted, 0
		for i < s.nsorted && j < len(s.xs) {
			if s.xs[i] <= s.xs[j] {
				out[k] = s.xs[i]
				i++
			} else {
				out[k] = s.xs[j]
				j++
			}
			k++
		}
		k += copy(out[k:], s.xs[i:s.nsorted])
		copy(out[k:], s.xs[j:])
		// Swap buffers: the merged result becomes xs, the old backing
		// array becomes the next merge's scratch.
		s.xs, s.scratch = out, s.xs[:0]
	}
	s.nsorted = len(s.xs)
}

// PhasedSample partitions timestamped observations into phases split
// at fixed time bounds, keeping one Sample per phase. It is the
// tail-metric container for runs with a distinguished event in the
// middle — a host failure, a drain — where the question is not the
// whole-run percentile but the percentile *after* the event (the
// cold-start storm) versus before it. Phase i covers
// [bounds[i-1], bounds[i]); observations at or past the last bound
// land in the final phase.
type PhasedSample struct {
	bounds []float64
	phases []*Sample
}

// NewPhased builds a phased sample with len(bounds)+1 phases. Bounds
// must be strictly ascending; NewPhased panics otherwise, because a
// misordered phase split silently misfiles every observation.
func NewPhased(bounds ...float64) *PhasedSample {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: phase bounds not ascending: %v", bounds))
		}
	}
	p := &PhasedSample{bounds: append([]float64(nil), bounds...)}
	for i := 0; i <= len(bounds); i++ {
		p.phases = append(p.phases, &Sample{})
	}
	return p
}

// Add files the observation v, timestamped t, into its phase.
func (p *PhasedSample) Add(t, v float64) {
	p.phases[p.phaseOf(t)].Add(v)
}

func (p *PhasedSample) phaseOf(t float64) int {
	for i, b := range p.bounds {
		if t < b {
			return i
		}
	}
	return len(p.bounds)
}

// Phases returns the number of phases (bounds + 1).
func (p *PhasedSample) Phases() int { return len(p.phases) }

// Phase returns the sample of phase i.
func (p *PhasedSample) Phase(i int) *Sample { return p.phases[i] }

// Merge adds every observation of o into the matching phase of p. Both
// samples must have identical bounds — per-shard phased samples are
// built from one shared configuration — and Merge panics otherwise.
// Like Sample.Merge, the result depends only on the combined multiset
// per phase, so merging in any fixed order is order-insensitive.
func (p *PhasedSample) Merge(o *PhasedSample) {
	if len(o.bounds) != len(p.bounds) {
		panic("stats: merging phased samples with different bounds")
	}
	for i, b := range o.bounds {
		if b != p.bounds[i] {
			panic("stats: merging phased samples with different bounds")
		}
	}
	for i, s := range o.phases {
		p.phases[i].Merge(s)
	}
}

// Reset empties every phase while keeping bounds and buffers.
func (p *PhasedSample) Reset() {
	for _, s := range p.phases {
		s.Reset()
	}
}

// EnableSketch switches every phase to bounded-memory reservoir mode,
// deriving a distinct priority sub-stream per phase (FNV-folded off
// cfg.Stream) so phases stay uncorrelated. Like Sample.EnableSketch it
// must be called while the phases are empty.
func (p *PhasedSample) EnableSketch(cfg SketchConfig) {
	for i, s := range p.phases {
		c := cfg
		c.Stream = cfg.Stream*0x100000001B3 + uint64(i) + 1
		s.EnableSketch(c)
	}
}

// DisableSketch returns every (empty) phase to exact mode.
func (p *PhasedSample) DisableSketch() {
	for _, s := range p.phases {
		s.DisableSketch()
	}
}

// Geomean returns the geometric mean of xs. Non-positive values and an
// empty slice yield 0, matching the "undefined" convention used when a
// speedup table contains a zero entry.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// TimeSeries is an append-only series of (time, value) points sampled
// during a simulation, e.g. memory utilization over time.
type TimeSeries struct {
	Name   string
	Times  []float64 // seconds
	Values []float64
}

// Reset empties the series while keeping its buffers.
func (ts *TimeSeries) Reset() {
	ts.Times = ts.Times[:0]
	ts.Values = ts.Values[:0]
}

// Reserve grows the series' capacity to hold at least n points, so a
// driver that knows its sampling cadence (e.g. one tick per simulated
// second across a multi-day run) can pre-size the buffers once instead
// of growing them through repeated appends. Each buffer is checked
// independently: a pooled series whose Times and Values capacities
// diverged (buffer swaps, partial growth) is fully sized either way —
// the old single-cap check could leave Values under-sized and
// reallocating throughout a multi-day run.
func (ts *TimeSeries) Reserve(n int) {
	if n > cap(ts.Times) {
		times := make([]float64, len(ts.Times), n)
		copy(times, ts.Times)
		ts.Times = times
	}
	if n > cap(ts.Values) {
		values := make([]float64, len(ts.Values), n)
		copy(values, ts.Values)
		ts.Values = values
	}
}

// Append adds a point. Times must be non-decreasing; Append panics
// otherwise because an out-of-order sample is a simulation bug.
func (ts *TimeSeries) Append(t, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		panic(fmt.Sprintf("stats: out-of-order time series point %v after %v", t, ts.Times[n-1]))
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Max returns the maximum value, or 0 for an empty series.
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for i, v := range ts.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Mean returns the time-unweighted mean value, or 0 for an empty series.
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	var s float64
	for _, v := range ts.Values {
		s += v
	}
	return s / float64(len(ts.Values))
}

// Integral returns the time integral of the series (trapezoidal rule),
// in value·seconds — e.g. GiB·s for a memory-usage series in GiB.
func (ts *TimeSeries) Integral() float64 {
	var area float64
	for i := 1; i < len(ts.Times); i++ {
		dt := ts.Times[i] - ts.Times[i-1]
		area += dt * (ts.Values[i] + ts.Values[i-1]) / 2
	}
	return area
}

// Breakdown is a labelled decomposition of a total cost, e.g. the
// zeroing / migration / VM-exit / rest split of Figure 5.
type Breakdown struct {
	Labels []string
	Parts  []float64
}

// NewBreakdown creates a breakdown with the given component labels, all
// parts zero.
func NewBreakdown(labels ...string) *Breakdown {
	return &Breakdown{Labels: labels, Parts: make([]float64, len(labels))}
}

// Add accumulates v into the named component; it panics on an unknown
// label (a typo in an experiment driver should fail loudly).
func (b *Breakdown) Add(label string, v float64) {
	for i, l := range b.Labels {
		if l == label {
			b.Parts[i] += v
			return
		}
	}
	panic("stats: unknown breakdown label " + label)
}

// Get returns the accumulated value of the named component.
func (b *Breakdown) Get(label string) float64 {
	for i, l := range b.Labels {
		if l == label {
			return b.Parts[i]
		}
	}
	panic("stats: unknown breakdown label " + label)
}

// Total returns the sum of all components.
func (b *Breakdown) Total() float64 {
	var s float64
	for _, p := range b.Parts {
		s += p
	}
	return s
}

// Fraction returns the named component's share of the total, or 0 when
// the total is zero.
func (b *Breakdown) Fraction(label string) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Get(label) / t
}

// String renders the breakdown as "label=value(pct%)" pairs.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, l := range b.Labels {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "%s=%.2f(%.0f%%)", l, b.Parts[i], 100*b.Fraction(l))
	}
	return sb.String()
}
