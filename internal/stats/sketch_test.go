package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// rankError returns the estimate's rank error versus the exact sorted
// sample: the distance (as a rank fraction) between the target
// quantile and the closest rank the estimate actually occupies.
func rankError(exact []float64, estimate, q float64) float64 {
	lo := sort.SearchFloat64s(exact, estimate)
	hi := sort.Search(len(exact), func(i int) bool { return exact[i] > estimate })
	// The estimate occupies ranks [lo, hi); take the closest edge to q.
	n := float64(len(exact) - 1)
	if n <= 0 {
		return 0
	}
	rLo, rHi := float64(lo)/n, float64(hi-1)/n
	errLo, errHi := math.Abs(rLo-q), math.Abs(rHi-q)
	if errLo < errHi {
		return errLo
	}
	return errHi
}

// TestSketchAccuracy: for fuzzed uniform, Zipf-heavy-tail, and bimodal
// distributions, the reservoir's P50/P99/P999 fall within the
// documented DKW rank-error bound of the exact percentiles.
func TestSketchAccuracy(t *testing.T) {
	const k = 4096
	bound := RankErrorBound(k)
	draws := []struct {
		name string
		gen  func(rng *rand.Rand) float64
	}{
		{"uniform", func(rng *rand.Rand) float64 { return rng.Float64() * 1000 }},
		{"zipf-heavy-tail", func(rng *rand.Rand) float64 {
			// Pareto-like: most mass near 1 ms, a long latency tail.
			return 1 / math.Pow(1-rng.Float64(), 1.3)
		}},
		{"bimodal", func(rng *rand.Rand) float64 {
			// Warm hits near 2, cold starts near 300 — the fleet's
			// actual latency shape.
			if rng.IntN(10) == 0 {
				return 300 + rng.Float64()*50
			}
			return 2 + rng.Float64()
		}},
	}
	for _, d := range draws {
		for _, seed := range []uint64{1, 2, 3} {
			rng := rand.New(rand.NewPCG(seed, 0xd157))
			var exactS, sketchS Sample
			sketchS.EnableSketch(SketchConfig{K: k, Seed: seed, Stream: 7})
			n := 100000
			exact := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := d.gen(rng)
				exactS.Add(v)
				sketchS.Add(v)
				exact = append(exact, v)
			}
			sort.Float64s(exact)
			if sketchS.N() != n || sketchS.Sum() != exactS.Sum() ||
				sketchS.Min() != exactS.Min() || sketchS.Max() != exactS.Max() {
				t.Fatalf("%s seed %d: sketch moments not exact", d.name, seed)
			}
			for _, q := range []float64{0.50, 0.99, 0.999} {
				got := sketchS.Percentile(q * 100)
				if re := rankError(exact, got, q); re > bound {
					t.Errorf("%s seed %d: P%g rank error %.5f exceeds bound %.5f (got %v, exact %v)",
						d.name, seed, q*100, re, bound, got, exactS.Percentile(q*100))
				}
			}
			// Stddev from moments must be close to the two-pass value.
			if es, ss := exactS.Stddev(), sketchS.Stddev(); math.Abs(es-ss) > 1e-6*math.Max(1, es) {
				t.Errorf("%s seed %d: sketch stddev %v vs exact %v", d.name, seed, ss, es)
			}
		}
	}
}

// TestSketchMergeOrderInvariance: merging per-host sketches in any
// order yields a byte-identical reservoir (fingerprint equality) and
// identical percentile answers — the property the sharded cluster's
// host-order metric merge relies on.
func TestSketchMergeOrderInvariance(t *testing.T) {
	const hosts = 8
	build := func() []*Sample {
		out := make([]*Sample, hosts)
		for h := range out {
			s := &Sample{}
			s.EnableSketch(SketchConfig{K: 512, Seed: 42, Stream: uint64(h)})
			rng := rand.New(rand.NewPCG(uint64(h), 99))
			for i := 0; i < 2000+500*h; i++ {
				s.Add(rng.ExpFloat64() * 50)
			}
			out[h] = s
		}
		return out
	}
	mergeIn := func(order []int) *Sample {
		m := &Sample{}
		m.EnableSketch(SketchConfig{K: 512, Seed: 42, Stream: 1 << 60})
		for _, h := range order {
			m.Merge(build()[h])
		}
		return m
	}
	base := mergeIn([]int{0, 1, 2, 3, 4, 5, 6, 7})
	orders := [][]int{
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 7, 1, 6, 2, 5, 4},
		{1, 3, 5, 7, 0, 2, 4, 6},
	}
	for _, ord := range orders {
		m := mergeIn(ord)
		if m.SketchFingerprint() != base.SketchFingerprint() {
			t.Fatalf("merge order %v: fingerprint %#x != base %#x", ord, m.SketchFingerprint(), base.SketchFingerprint())
		}
		if m.N() != base.N() || m.P50() != base.P50() || m.P99() != base.P99() || m.P999() != base.P999() ||
			m.Min() != base.Min() || m.Max() != base.Max() {
			t.Fatalf("merge order %v: answers differ from base", ord)
		}
		// Sum accumulates in merge order (float addition), exactly like
		// exact-mode Merge: deterministic for a fixed order, not
		// order-invariant. Only the order statistics carry the stronger
		// guarantee.
		if math.Abs(m.Sum()-base.Sum()) > 1e-9*math.Abs(base.Sum()) {
			t.Fatalf("merge order %v: sum drifted beyond rounding: %v vs %v", ord, m.Sum(), base.Sum())
		}
	}
}

// TestSketchResetVsFresh: a reset sketched sample refilled with the
// same observations is byte-identical to a fresh one — the world-pool
// reuse contract, extended to reservoir mode.
func TestSketchResetVsFresh(t *testing.T) {
	cfg := SketchConfig{K: 256, Seed: 5, Stream: 3}
	feed := func(s *Sample) {
		rng := rand.New(rand.NewPCG(8, 8))
		for i := 0; i < 5000; i++ {
			s.Add(rng.Float64() * 100)
		}
	}
	var fresh Sample
	fresh.EnableSketch(cfg)
	feed(&fresh)

	var pooled Sample
	pooled.EnableSketch(cfg)
	feed(&pooled)
	// Dirty it further, then reset — the pool path.
	pooled.Add(1e9)
	pooled.Reset()
	feed(&pooled)

	if pooled.SketchFingerprint() != fresh.SketchFingerprint() {
		t.Fatalf("reset-then-refill fingerprint %#x != fresh %#x", pooled.SketchFingerprint(), fresh.SketchFingerprint())
	}
	if pooled.N() != fresh.N() || pooled.P99() != fresh.P99() || pooled.Stddev() != fresh.Stddev() {
		t.Fatal("reset-then-refill answers differ from fresh")
	}

	// Re-enabling with a different config on the pooled sample must
	// also behave like fresh.
	cfg2 := SketchConfig{K: 128, Seed: 6, Stream: 9}
	pooled.Reset()
	pooled.EnableSketch(cfg2)
	feed(&pooled)
	var fresh2 Sample
	fresh2.EnableSketch(cfg2)
	feed(&fresh2)
	if pooled.SketchFingerprint() != fresh2.SketchFingerprint() {
		t.Fatal("re-enabled sketch differs from fresh sketch with same config")
	}
}

// TestSketchModeGuards: the mode boundary fails loudly — enabling on a
// non-empty sample, merging across modes, and merging mismatched
// capacities all panic.
func TestSketchModeGuards(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	var dirty Sample
	dirty.Add(1)
	expectPanic("EnableSketch on non-empty", func() { dirty.EnableSketch(SketchConfig{}) })

	var sk, exact Sample
	sk.EnableSketch(SketchConfig{K: 64})
	sk.Add(1)
	exact.Add(2)
	expectPanic("exact.Merge(sketched)", func() { exact.Merge(&sk) })
	expectPanic("sketched.Merge(exact)", func() { sk.Merge(&exact) })

	var sk2 Sample
	sk2.EnableSketch(SketchConfig{K: 128})
	sk2.Add(3)
	expectPanic("capacity mismatch", func() { sk.Merge(&sk2) })

	expectPanic("DisableSketch on non-empty", func() { sk.DisableSketch() })
	expectPanic("Percentile(NaN)", func() { sk.Percentile(math.NaN()) })
}

// TestPercentileBoundaries pins the documented N=0 / N=1 / p=0 / p=100
// behavior in both modes.
func TestPercentileBoundaries(t *testing.T) {
	for _, sketched := range []bool{false, true} {
		var s Sample
		if sketched {
			s.EnableSketch(SketchConfig{K: 16})
		}
		for _, p := range []float64{0, 50, 100} {
			if got := s.Percentile(p); got != 0 {
				t.Fatalf("sketched=%v: empty Percentile(%v) = %v, want 0", sketched, p, got)
			}
		}
		s.Add(7.5)
		for _, p := range []float64{0, 1, 50, 99.9, 100} {
			if got := s.Percentile(p); got != 7.5 {
				t.Fatalf("sketched=%v: N=1 Percentile(%v) = %v, want 7.5", sketched, p, got)
			}
		}
		s.Add(2.5)
		if got := s.Percentile(0); got != 2.5 {
			t.Fatalf("sketched=%v: Percentile(0) = %v, want Min", sketched, got)
		}
		if got := s.Percentile(100); got != 7.5 {
			t.Fatalf("sketched=%v: Percentile(100) = %v, want Max", sketched, got)
		}
		if got := s.Percentile(-5); got != 2.5 {
			t.Fatalf("sketched=%v: Percentile(-5) = %v, want Min", sketched, got)
		}
		if got := s.Percentile(250); got != 7.5 {
			t.Fatalf("sketched=%v: Percentile(250) = %v, want Max", sketched, got)
		}
	}
}

// TestSketchBoundedMemory: the reservoir never grows past K entries no
// matter how many observations stream through.
func TestSketchBoundedMemory(t *testing.T) {
	var s Sample
	s.EnableSketch(SketchConfig{K: 64, Seed: 1})
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 200000; i++ {
		s.Add(rng.Float64())
	}
	if len(s.sk.ents) != 64 {
		t.Fatalf("reservoir holds %d entries, want 64", len(s.sk.ents))
	}
	if s.N() != 200000 {
		t.Fatalf("N = %d", s.N())
	}
	if got := len(s.Values()); got != 64 {
		t.Fatalf("Values() returned %d, want 64", got)
	}
}

// TestPhasedSketch: per-phase sketches file observations exactly like
// exact phases and merge phase-by-phase.
func TestPhasedSketch(t *testing.T) {
	a := NewPhased(10, 20)
	b := NewPhased(10, 20)
	a.EnableSketch(SketchConfig{K: 64, Seed: 2, Stream: 1})
	b.EnableSketch(SketchConfig{K: 64, Seed: 2, Stream: 2})
	for i := 0; i < 100; i++ {
		a.Add(float64(i%30), float64(i))
		b.Add(float64(i%30), float64(i)*2)
	}
	if a.Phase(0).N() == 0 || a.Phase(1).N() == 0 || a.Phase(2).N() == 0 {
		t.Fatal("phased sketch lost observations")
	}
	na := a.Phase(0).N()
	a.Merge(b)
	if a.Phase(0).N() != na+b.Phase(0).N() {
		t.Fatal("phased sketch merge lost observations")
	}
	a.Reset()
	if a.Phase(0).N() != 0 || !a.Phase(0).Sketched() {
		t.Fatal("reset must empty phases but keep sketch mode")
	}
	a.DisableSketch()
	if a.Phase(0).Sketched() {
		t.Fatal("DisableSketch left phases sketched")
	}
}

// TestTimeSeriesReserveMultiDay: Reserve sizes both buffers even when
// their capacities have diverged (the multi-day tick-count fix), and a
// reserved series absorbs a multi-day tick count without reallocating.
func TestTimeSeriesReserveMultiDay(t *testing.T) {
	var ts TimeSeries
	// Force divergent capacities the way pooled buffer swaps can.
	ts.Times = make([]float64, 0, 256)
	ts.Values = make([]float64, 0, 4)
	ts.Reserve(128)
	if cap(ts.Times) < 128 || cap(ts.Values) < 128 {
		t.Fatalf("Reserve left caps %d/%d, want >= 128 both", cap(ts.Times), cap(ts.Values))
	}
	// Two simulated days at 1 s ticks.
	n := 2*24*3600 + 1
	ts.Reset()
	ts.Reserve(n)
	base := &ts.Times[:1][0]
	for i := 0; i < n; i++ {
		ts.Append(float64(i), float64(i%7))
	}
	if ts.Len() != n {
		t.Fatalf("Len = %d, want %d", ts.Len(), n)
	}
	if &ts.Times[0] != base {
		t.Fatal("multi-day append reallocated a reserved series")
	}
}
