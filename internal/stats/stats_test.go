package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Sum() != 15 {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.P50() != 3 {
		t.Fatalf("P50 = %v", s.P50())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.Add(10)
	s.Add(20)
	if got := s.Percentile(50); got != 15 {
		t.Fatalf("P50 of {10,20} = %v, want 15", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 20 {
		t.Fatalf("P100 = %v", got)
	}
	if got := s.Percentile(25); got != 12.5 {
		t.Fatalf("P25 = %v, want 12.5", got)
	}
}

func TestAddAfterQuery(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(1)
	_ = s.P50() // forces sort
	s.Add(0)    // must re-sort on next query
	if s.Min() != 0 {
		t.Fatalf("Min after late Add = %v", s.Min())
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 2))
		var s Sample
		for i := 0; i < int(n)+1; i++ {
			s.Add(rng.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return s.Min() <= s.P50() && s.P50() <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStddev(t *testing.T) {
	var s Sample
	s.Add(2)
	if s.Stddev() != 0 {
		t.Fatal("stddev of single sample should be 0")
	}
	s.Add(4)
	if got := s.Stddev(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Stddev = %v, want 1", got)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil) != 0")
	}
	if Geomean([]float64{1, 0, 3}) != 0 {
		t.Fatal("Geomean with zero element should be 0")
	}
	if Geomean([]float64{-1}) != 0 {
		t.Fatal("Geomean with negative element should be 0")
	}
}

func TestGeomeanScaleInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		xs := make([]float64, 5)
		for i := range xs {
			xs[i] = rng.Float64() + 0.1
		}
		g := Geomean(xs)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 2
		}
		return math.Abs(Geomean(scaled)-2*g) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeSeries(t *testing.T) {
	var ts TimeSeries
	ts.Append(0, 0)
	ts.Append(1, 2)
	ts.Append(3, 2)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if ts.Max() != 2 {
		t.Fatalf("Max = %v", ts.Max())
	}
	// Integral: trapezoid 0..1 area 1, 1..3 area 4.
	if got := ts.Integral(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Integral = %v, want 5", got)
	}
	if got := ts.Mean(); math.Abs(got-4.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	var ts TimeSeries
	ts.Append(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order append")
		}
	}()
	ts.Append(4, 1)
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown("zeroing", "migration", "vmexits", "rest")
	b.Add("migration", 61.5)
	b.Add("zeroing", 24)
	b.Add("vmexits", 4.5)
	b.Add("rest", 10)
	if got := b.Total(); got != 100 {
		t.Fatalf("Total = %v", got)
	}
	if got := b.Fraction("migration"); math.Abs(got-0.615) > 1e-12 {
		t.Fatalf("Fraction(migration) = %v", got)
	}
	if got := b.Get("zeroing"); got != 24 {
		t.Fatalf("Get(zeroing) = %v", got)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBreakdownUnknownLabelPanics(t *testing.T) {
	b := NewBreakdown("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown label")
		}
	}()
	b.Add("nope", 1)
}

func TestBreakdownFractionZeroTotal(t *testing.T) {
	b := NewBreakdown("a", "b")
	if b.Fraction("a") != 0 {
		t.Fatal("Fraction with zero total should be 0")
	}
}

// Regression for the re-sort-per-percentile pattern: interleaved Add
// and percentile queries on a large sample must stay correct — the
// incremental merge is an optimization, not a semantics change — and
// repeated queries on an unchanged sample must not disturb the result.
func TestPercentileIncrementalMerge(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	var s Sample
	naive := func(p float64) float64 {
		xs := s.Values()
		if len(xs) == 0 {
			return 0
		}
		sort.Float64s(xs)
		rank := p / 100 * float64(len(xs)-1)
		lo := int(math.Floor(rank))
		hi := int(math.Ceil(rank))
		frac := rank - float64(lo)
		return xs[lo]*(1-frac) + xs[hi]*frac
	}
	for round := 0; round < 50; round++ {
		// A batch of appends, then a burst of order-statistic queries —
		// the access pattern of the fleet experiments' metric readouts.
		for i := 0; i < 200; i++ {
			s.Add(rng.ExpFloat64() * 100)
		}
		for _, p := range []float64{50, 99, 99.9} {
			want := naive(p)
			for rep := 0; rep < 3; rep++ {
				if got := s.Percentile(p); got != want {
					t.Fatalf("round %d P%v rep %d = %v, want %v", round, p, rep, got, want)
				}
			}
		}
		if got, want := s.P999(), naive(99.9); got != want {
			t.Fatalf("P999 = %v, want %v", got, want)
		}
	}
	if s.N() != 50*200 {
		t.Fatalf("N = %d after interleaved queries, want %d", s.N(), 50*200)
	}
}

func TestTimeSeriesReserve(t *testing.T) {
	var ts TimeSeries
	ts.Append(1, 10)
	ts.Reserve(100)
	if ts.Len() != 1 || ts.Times[0] != 1 || ts.Values[0] != 10 {
		t.Fatal("Reserve must preserve existing points")
	}
	if cap(ts.Times) < 100 || cap(ts.Values) < 100 {
		t.Fatalf("Reserve(100) left caps %d/%d", cap(ts.Times), cap(ts.Values))
	}
	for i := 2; i <= 100; i++ {
		ts.Append(float64(i), float64(10*i))
	}
	if ts.Len() != 100 {
		t.Fatalf("Len = %d", ts.Len())
	}
}

// TestPhasedSample checks the time-split sample used to separate
// pre-churn from post-churn latency: observations route to the phase
// their timestamp falls in, Merge is per-phase, and mismatched bounds
// are a programming error.
func TestPhasedSample(t *testing.T) {
	p := NewPhased(10, 20)
	if p.Phases() != 3 {
		t.Fatalf("Phases = %d, want 3", p.Phases())
	}
	p.Add(5, 100)  // phase 0: t < 10
	p.Add(10, 200) // phase 1: bound belongs to the later phase
	p.Add(15, 300) // phase 1
	p.Add(25, 400) // phase 2
	for i, wantN := range []int{1, 2, 1} {
		if got := p.Phase(i).N(); got != wantN {
			t.Fatalf("phase %d N = %d, want %d", i, got, wantN)
		}
	}
	if got := p.Phase(1).Max(); got != 300 {
		t.Fatalf("phase 1 max = %v, want 300", got)
	}

	q := NewPhased(10, 20)
	q.Add(3, 50)
	p.Merge(q)
	if got := p.Phase(0).N(); got != 2 {
		t.Fatalf("merged phase 0 N = %d, want 2", got)
	}

	p.Reset()
	for i := 0; i < p.Phases(); i++ {
		if p.Phase(i).N() != 0 {
			t.Fatalf("phase %d not empty after Reset", i)
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Merge with mismatched bounds did not panic")
			}
		}()
		p.Merge(NewPhased(10, 30))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-ascending bounds did not panic")
			}
		}()
		NewPhased(20, 10)
	}()
}
