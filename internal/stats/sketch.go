package stats

import (
	"fmt"
	"math"
	"sort"
)

// DefaultSketchK is the reservoir capacity used when SketchConfig.K is
// unset. At K = 4096 the DKW bound puts the estimated quantile within
// ~2 rank points of the exact quantile with 99% confidence (see
// RankErrorBound), which resolves P99 of a million-observation stream
// to a handful of true ranks.
const DefaultSketchK = 4096

// SketchConfig switches a Sample into bounded-memory reservoir mode.
//
// The reservoir is a deterministic bottom-K sketch: observation number
// k of a stream is assigned the priority
//
//	splitmix64(Seed + Stream*GOLDEN + k*PRIME)
//
// — a pure function of (Seed, Stream, k), no shared RNG state — and
// the sketch keeps the K observations with the smallest
// (priority, value) pairs. Because each priority depends only on the
// observation's identity, not on when or where it was processed, and
// because "bottom K of a multiset" is commutative and associative, the
// kept set is invariant under sharding, worker count, and merge order:
// merging per-host sketches in any order yields byte-identical
// reservoirs, the same property the exact Sample.Merge guarantees for
// full retention.
type SketchConfig struct {
	// K is the reservoir capacity; <= 0 selects DefaultSketchK.
	K int
	// Seed salts every priority, so different runs draw independent
	// reservoirs.
	Seed uint64
	// Stream identifies the logical observation stream (e.g. a host ID,
	// or a host ID x metric index). Distinct streams draw independent
	// priorities, which keeps per-host reservoirs uncorrelated before
	// they merge.
	Stream uint64
}

// RankErrorBound returns the two-sided 99%-confidence bound on the
// rank error of a K-entry reservoir's quantile estimates, as a
// fraction of the stream length (the Dvoretzky–Kiefer–Wolfowitz
// inequality: eps = sqrt(ln(2/delta) / 2K) with delta = 0.01). The
// sketch accuracy property tests assert estimated percentiles stay
// within this bound of the exact ones.
func RankErrorBound(k int) float64 {
	if k <= 0 {
		k = DefaultSketchK
	}
	// ln(2/0.01) = ln(200) ≈ 5.2983
	return math.Sqrt(5.2983173665480365 / (2 * float64(k)))
}

// sketchEntry is one retained observation with its replacement
// priority.
type sketchEntry struct {
	prio uint64
	v    float64
}

// entryLess orders entries by (priority, value); the reservoir keeps
// the K smallest under this order. Including the value breaks priority
// ties deterministically, so the kept set is a pure function of the
// entry multiset.
func entryLess(a, b sketchEntry) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.v < b.v
}

// sketch is the bounded-memory state behind a sketched Sample. ents is
// a max-heap under entryLess, so the largest retained key is ents[0]
// and replacement is O(log K). n, sum-of-squares (and the Sample's
// own sum/min/max) stay exact; only the order statistics are
// approximated.
type sketch struct {
	cfg    SketchConfig
	ents   []sketchEntry
	n      int     // exact observation count
	sumsq  float64 // exact sum of squares, for Stddev
	count  uint64  // counter-mode index of the next observation
	vals   []float64
	sorted bool // vals holds the sorted reservoir values
}

// sketchPrio mixes (seed, stream, k) through the splitmix64 finalizer:
// the same construction as the trace and fault layers' counter-mode
// decision streams.
func sketchPrio(seed, stream, k uint64) uint64 {
	x := seed + stream*0x9E3779B97F4A7C15 + k*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (sk *sketch) add(v float64) {
	p := sketchPrio(sk.cfg.Seed, sk.cfg.Stream, sk.count)
	sk.count++
	sk.n++
	sk.sumsq += v * v
	sk.insert(sketchEntry{prio: p, v: v})
}

func (sk *sketch) insert(e sketchEntry) {
	if len(sk.ents) < sk.cfg.K {
		sk.ents = append(sk.ents, e)
		sk.siftUp(len(sk.ents) - 1)
		sk.sorted = false
		return
	}
	// Full: keep e only if it beats the largest retained key.
	if !entryLess(e, sk.ents[0]) {
		return
	}
	sk.ents[0] = e
	sk.siftDown(0)
	sk.sorted = false
}

// siftUp/siftDown maintain the max-heap ordering (parent >= children
// under entryLess).
func (sk *sketch) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(sk.ents[parent], sk.ents[i]) {
			return
		}
		sk.ents[parent], sk.ents[i] = sk.ents[i], sk.ents[parent]
		i = parent
	}
}

func (sk *sketch) siftDown(i int) {
	n := len(sk.ents)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && entryLess(sk.ents[big], sk.ents[l]) {
			big = l
		}
		if r < n && entryLess(sk.ents[big], sk.ents[r]) {
			big = r
		}
		if big == i {
			return
		}
		sk.ents[big], sk.ents[i] = sk.ents[i], sk.ents[big]
		i = big
	}
}

// merge folds o's entries into sk: the union's bottom K. Exact moments
// add; the counter is untouched (it indexes sk's own future Adds).
func (sk *sketch) merge(o *sketch) {
	for _, e := range o.ents {
		sk.insert(e)
	}
	sk.n += o.n
	sk.sumsq += o.sumsq
}

// sortedVals returns the reservoir's values sorted ascending, cached
// until the next insertion.
func (sk *sketch) sortedVals() []float64 {
	if sk.sorted {
		return sk.vals
	}
	sk.vals = sk.vals[:0]
	for _, e := range sk.ents {
		sk.vals = append(sk.vals, e.v)
	}
	sort.Float64s(sk.vals)
	sk.sorted = true
	return sk.vals
}

func (sk *sketch) reset() {
	sk.ents = sk.ents[:0]
	sk.vals = sk.vals[:0]
	sk.sorted = false
	sk.n = 0
	sk.sumsq = 0
	sk.count = 0
}

// EnableSketch switches s into bounded-memory reservoir mode: memory
// stays O(K) regardless of how many observations are added, exact mode
// behavior is unchanged for Count/Sum/Mean/Min/Max (still exact), and
// order statistics (Percentile and friends) are estimated from the
// reservoir within RankErrorBound(K) of the exact ranks. Percentile(0)
// and Percentile(100) remain exact (they answer from Min/Max).
//
// EnableSketch must be called on an empty sample (it panics otherwise:
// retroactively sketching already-retained observations would silently
// change results). Reset keeps the sketch configuration, so pooled
// metrics reuse works the same as in exact mode; DisableSketch returns
// the (empty) sample to exact mode.
func (s *Sample) EnableSketch(cfg SketchConfig) {
	if s.N() != 0 {
		panic("stats: EnableSketch on a non-empty sample")
	}
	if cfg.K <= 0 {
		cfg.K = DefaultSketchK
	}
	if s.sk != nil {
		// Reuse the pooled buffers; only the identity changes.
		s.sk.cfg = cfg
		s.sk.reset()
		return
	}
	s.sk = &sketch{cfg: cfg}
}

// DisableSketch returns an empty sketched sample to exact mode. It
// panics on a non-empty sample for the same reason EnableSketch does.
func (s *Sample) DisableSketch() {
	if s.N() != 0 {
		panic("stats: DisableSketch on a non-empty sample")
	}
	s.sk = nil
}

// Sketched reports whether the sample is in reservoir mode.
func (s *Sample) Sketched() bool { return s.sk != nil }

// SketchFingerprint summarizes the reservoir state (entry count plus
// every retained (priority, value) pair folded through FNV-style
// mixing) for determinism tests: two sketches fingerprint equal iff
// their retained sets are identical. It returns 0 for exact-mode
// samples.
func (s *Sample) SketchFingerprint() uint64 {
	if s.sk == nil {
		return 0
	}
	// Fold entries order-insensitively (sum of mixed pairs), so the
	// heap's internal layout — which can differ across insertion
	// orders — doesn't leak into the fingerprint.
	var fp uint64
	for _, e := range s.sk.ents {
		x := e.prio ^ math.Float64bits(e.v)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		fp += x
	}
	return fp + uint64(len(s.sk.ents))<<48
}

func sketchMergePanic(dst, src *Sample) string {
	return fmt.Sprintf("stats: merging mismatched sample modes (dst sketched=%v, src sketched=%v)",
		dst.Sketched(), src.Sketched())
}
