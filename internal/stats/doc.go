// Package stats provides the small statistical toolkit used by the
// experiment drivers: latency samples with percentiles, time series,
// geometric means, and cost breakdowns matching the paper's figures.
package stats
