package virtiomem

import (
	"sort"

	"squeezy/internal/guestos"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

// CPU accounting classes.
const (
	GuestClass = "virtio-mem"
	HostClass  = "virtio-mem-vmm"
)

// CandidatePolicy selects the order in which online blocks are
// considered for offlining.
type CandidatePolicy int

const (
	// EmptiestFirst tries the blocks with the fewest occupied pages
	// first, minimizing migrations — the effective behaviour of the
	// driver's retry logic.
	EmptiestFirst CandidatePolicy = iota
	// HighestFirst walks the device memory top-down regardless of
	// occupancy, as a naive linear scan does (ablation).
	HighestFirst
)

// UnplugResult reports what one unplug request achieved.
type UnplugResult struct {
	RequestedBytes int64
	ReclaimedBytes int64
	MigratedPages  int64
	ZeroedPages    int64
	// Breakdown is the wall-time split (milliseconds) across the
	// Figure 5 buckets: zeroing, migration, vmexits, rest.
	Breakdown *stats.Breakdown
	// Latency is the total wall time of the request.
	Latency sim.Duration
}

// FaultHooks degrades the device for fault-injection windows: a
// non-zero ReclaimStall delays every command completion (the command
// occupies the device queue the whole time), and a ReclaimFraction
// below 1 caps how much of an unplug request is attempted.
type FaultHooks interface {
	ReclaimStall() sim.Duration
	ReclaimFraction() float64
}

// Driver is the guest-side virtio-mem driver bound to one VM's movable
// zone.
type Driver struct {
	K      *guestos.Kernel
	Policy CandidatePolicy

	// Obs, when non-nil, records a span per plug/unplug command with the
	// migrate/zero page detail; recording never alters the command.
	Obs *obs.Recorder

	// Faults, when non-nil, injects stalled and partial commands.
	Faults FaultHooks

	// pending serializes requests: the device processes one command at
	// a time.
	busy    bool
	pending []func()
}

// deliver completes a command, imposing the injected stall first; the
// stall happens inside the device's busy window, so queued commands
// wait behind it and the runtime's ReclaimDrainTimeout can fire.
func (d *Driver) deliver(fn func()) {
	if d.Faults != nil {
		if stall := d.Faults.ReclaimStall(); stall > 0 {
			d.K.VM.Sched.After(stall, fn)
			return
		}
	}
	fn()
}

// New creates a driver for the kernel's movable zone.
func New(k *guestos.Kernel) *Driver {
	if k.Movable == nil {
		panic("virtiomem: kernel has no movable zone")
	}
	return &Driver{K: k}
}

// enqueue runs fn now if the device is idle, else after the current
// command completes.
func (d *Driver) enqueue(fn func()) {
	if d.busy {
		d.pending = append(d.pending, fn)
		return
	}
	d.busy = true
	fn()
}

func (d *Driver) finish() {
	if len(d.pending) > 0 {
		next := d.pending[0]
		d.pending = d.pending[1:]
		next()
		return
	}
	d.busy = false
}

// PluggedBlocks returns the number of online movable blocks.
func (d *Driver) PluggedBlocks() int { return len(d.K.Movable.OnlineBlocks()) }

// Plug hot-adds and onlines enough blocks to cover bytes, bounded by
// the zone span and the host commit budget. onDone receives the bytes
// actually plugged after the (short) plug latency has elapsed.
func (d *Driver) Plug(bytes int64, onDone func(plugged int64)) {
	d.enqueue(func() {
		vm := d.K.VM
		want := units.BytesToBlocks(bytes)
		var onlined int64
		for i := 0; i < d.K.Movable.Blocks() && onlined < want; i++ {
			if d.K.Movable.BlockIsOnline(i) {
				continue
			}
			if !vm.Commit(units.PagesPerBlock) {
				break
			}
			d.K.Movable.OnlineBlock(i)
			onlined++
		}
		steps := []vmm.Step{
			{Pool: vm.HostThreads, Work: vm.Cost.PlugHostFixed, Class: HostClass, Label: vmm.StepVMExits},
			{Pool: vm.GuestReclaimPool(), Work: sim.Duration(onlined) * vm.Cost.OnlineMetaPerBlock, Class: GuestClass, Label: vmm.StepRest, Weight: vmm.KthreadWeight},
		}
		if onlined > 0 {
			vm.CountExit("virtio-mem-plug", 1)
		}
		plugged := onlined * units.BlockSize
		start := vm.Sched.Now()
		vmm.RunChain(vm.Sched, steps, func(_ *stats.Breakdown, _ sim.Duration) {
			d.deliver(func() {
				if d.Obs != nil {
					d.Obs.Span("virtio-mem/plug", obs.CatMemory, start,
						obs.I("plugged_bytes", plugged), obs.I("blocks", onlined))
				}
				d.finish()
				onDone(plugged)
			})
		})
	})
}

// Unplug offlines and removes enough blocks to cover bytes, migrating
// occupied pages out of candidate blocks. Blocks whose pages cannot be
// migrated (no free target memory) are skipped; the request then
// reclaims less than asked, as real virtio-mem does under pressure
// (§6.2.2). onDone fires when the host has released the frames.
func (d *Driver) Unplug(bytes int64, onDone func(UnplugResult)) {
	d.enqueue(func() { d.unplug(bytes, onDone) })
}

func (d *Driver) unplug(bytes int64, onDone func(UnplugResult)) {
	vm := d.K.VM
	zone := d.K.Movable
	want := units.BytesToBlocks(bytes)
	if d.Faults != nil {
		if f := d.Faults.ReclaimFraction(); f < 1 {
			// Partial command: the degraded device attempts only a
			// fraction of the request (possibly none of it).
			want = int64(float64(want) * f)
		}
	}

	candidates := zone.OnlineBlocks()
	switch d.Policy {
	case EmptiestFirst:
		occ := make(map[int]int64, len(candidates))
		for _, b := range candidates {
			occ[b] = zone.OccupiedInBlock(b)
		}
		sort.SliceStable(candidates, func(i, j int) bool {
			if occ[candidates[i]] != occ[candidates[j]] {
				return occ[candidates[i]] < occ[candidates[j]]
			}
			return candidates[i] > candidates[j]
		})
	case HighestFirst:
		sort.Sort(sort.Reverse(sort.IntSlice(candidates)))
	}

	var (
		offlined      []int
		migratedPages int64
		zeroedPages   int64
		migrateExtra  sim.Duration
	)
	for _, b := range candidates {
		if int64(len(offlined)) >= want {
			break
		}
		occupied := zone.IsolateBlock(b)
		start, count := zone.BlockRange(b)
		isolatedFree := count - occupied
		chunks := d.K.ChunksInRange(start, count)
		aborted := false
		var blockMigrated int64
		for _, c := range chunks {
			pages, extra, ok := d.K.MigrateChunk(c)
			if !ok {
				aborted = true
				break
			}
			blockMigrated += pages
			migrateExtra += extra
		}
		if aborted {
			// Out of migration targets: put the block back together.
			// Pages already migrated stay migrated (their new copies
			// live elsewhere); the rest of the block is re-onlined.
			d.K.ReturnIsolatedGaps(zone, start, count)
			migratedPages += blockMigrated
			if vm.Cost.ZeroOnUnplug {
				zeroedPages += blockMigrated // zero-on-alloc of targets
			}
			continue
		}
		migratedPages += blockMigrated
		if vm.Cost.ZeroOnUnplug {
			// init_on_alloc zeroes both the isolated free pages and the
			// freshly allocated migration targets.
			zeroedPages += isolatedFree + blockMigrated
		}
		zone.FinishOffline(b)
		offlined = append(offlined, b)
	}

	exits := int64(len(offlined))
	if vm.Cost.BatchUnplugExits && exits > 1 {
		exits = 1
	}
	steps := []vmm.Step{
		{Pool: vm.GuestReclaimPool(), Work: sim.Duration(migratedPages)*vm.Cost.MigratePerPage + migrateExtra, Class: GuestClass, Label: vmm.StepMigration, Weight: vmm.KthreadWeight},
		{Pool: vm.GuestReclaimPool(), Work: sim.Duration(zeroedPages) * vm.Cost.ZeroPerPage, Class: GuestClass, Label: vmm.StepZeroing, Weight: vmm.KthreadWeight},
		{Pool: vm.GuestReclaimPool(), Work: sim.Duration(len(offlined)) * vm.Cost.OfflineMetaPerBlockVanilla, Class: GuestClass, Label: vmm.StepRest, Weight: vmm.KthreadWeight},
		{Pool: vm.HostThreads, Work: sim.Duration(exits) * vm.Cost.VMExitPerBlock, Class: HostClass, Label: vmm.StepVMExits},
	}
	vm.CountExit("virtio-mem-unplug", exits)

	reclaimed := int64(len(offlined)) * units.BlockSize
	blocks := append([]int(nil), offlined...)
	start := vm.Sched.Now()
	vmm.RunChain(vm.Sched, steps, func(bd *stats.Breakdown, total sim.Duration) {
		d.deliver(func() {
			// Hot-remove done: the hypervisor madvise()s the frames away
			// and the commit budget returns to the host.
			for _, b := range blocks {
				start, count := zone.BlockRange(b)
				d.K.ReleaseRange(start, count)
				vm.Uncommit(count)
			}
			res := UnplugResult{
				RequestedBytes: bytes,
				ReclaimedBytes: reclaimed,
				MigratedPages:  migratedPages,
				ZeroedPages:    zeroedPages,
				Breakdown:      bd,
				Latency:        total,
			}
			if d.Obs != nil {
				d.Obs.Span("virtio-mem/unplug", obs.CatMemory, start,
					obs.I("requested_bytes", bytes), obs.I("reclaimed_bytes", reclaimed),
					obs.I("migrated_pages", migratedPages), obs.I("zeroed_pages", zeroedPages),
					obs.I("blocks", int64(len(blocks))))
			}
			d.finish()
			onDone(res)
		})
	})
}
