package virtiomem

import (
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"squeezy/internal/guestos"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// TestUnplugProperty drives random plug/unplug requests against a guest
// under random memhog load and checks, after every operation:
//
//   - no process ever loses or gains pages (migration is transparent),
//   - reclaimed bytes are block-aligned and never exceed the request,
//   - host commit accounting matches the online block count,
//   - the kernel's cross-layer invariants hold.
func TestUnplugProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0x77))
		d, k, s := newRig(t, 16, 0)
		d.Plug(16*units.BlockSize, func(int64) {})
		s.Run()
		k.ScrambleFreeLists(k.Movable, rng)

		var hogs []*workload.Memhog
		checkHogs := func() bool {
			for _, h := range hogs {
				if units.PagesToBytes(h.Proc.AnonPages()) != h.Size {
					return false
				}
			}
			return true
		}

		for step := 0; step < 40; step++ {
			switch rng.IntN(4) {
			case 0: // spawn a memhog if memory allows (THP-aligned size
				// so the footprint matches the request exactly)
				size := int64(rng.IntN(128)+32) * units.HugePageSize
				if units.PagesToBytes(k.Movable.NrFree()) < size+64*units.MiB {
					continue
				}
				h := workload.NewMemhog(k, fmt.Sprintf("hog%d", len(hogs)), size)
				if !h.Warmup() {
					h.Kill()
					continue
				}
				hogs = append(hogs, h)
			case 1: // kill one
				if len(hogs) == 0 {
					continue
				}
				i := rng.IntN(len(hogs))
				hogs[i].Kill()
				hogs = append(hogs[:i], hogs[i+1:]...)
			case 2: // unplug a random amount
				req := int64(rng.IntN(4)+1) * units.BlockSize
				var res UnplugResult
				d.Unplug(req, func(r UnplugResult) { res = r })
				s.Run()
				if res.ReclaimedBytes%units.BlockSize != 0 || res.ReclaimedBytes > req {
					return false
				}
			case 3: // plug some back
				d.Plug(int64(rng.IntN(3)+1)*units.BlockSize, func(int64) {})
				s.Run()
			}
			if !checkHogs() {
				return false
			}
			// Commit accounting: boot + online movable blocks.
			wantCommit := units.BytesToPages(units.BlockSize) +
				int64(len(k.Movable.OnlineBlocks()))*units.PagesPerBlock
			if k.VM.CommittedPages() != wantCommit {
				return false
			}
			if err := k.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestCandidatePolicyCost: the naive top-down scan migrates at least as
// much as emptiest-first for the same workload.
func TestCandidatePolicyCost(t *testing.T) {
	run := func(policy CandidatePolicy) int64 {
		d, k, s := newRig(t, 8, 0)
		d.Policy = policy
		d.Plug(8*units.BlockSize, func(int64) {})
		s.Run()
		rng := rand.New(rand.NewPCG(42, 42))
		k.ScrambleFreeLists(k.Movable, rng)
		hogs := make([]*workload.Memhog, 3)
		for i := range hogs {
			hogs[i] = workload.NewMemhog(k, fmt.Sprintf("hog%d", i), 192*units.MiB)
			hogs[i].Warmup()
		}
		hogs[0].Kill()
		var res UnplugResult
		d.Unplug(2*units.BlockSize, func(r UnplugResult) { res = r })
		s.Run()
		return res.MigratedPages
	}
	emptiest := run(EmptiestFirst)
	highest := run(HighestFirst)
	if highest < emptiest {
		t.Fatalf("top-down scan migrated less (%d) than emptiest-first (%d)", highest, emptiest)
	}
}

// TestPlugUnplugRoundTripStress: repeated full-cycle resizing never
// leaks blocks or host frames.
func TestPlugUnplugRoundTripStress(t *testing.T) {
	d, k, s := newRig(t, 8, 0)
	for cycle := 0; cycle < 10; cycle++ {
		d.Plug(8*units.BlockSize, func(int64) {})
		s.Run()
		p := k.Spawn("worker")
		if _, ok := k.TouchAnon(p, 512*units.MiB, guestos.HugeOrder); !ok {
			t.Fatalf("cycle %d: touch failed", cycle)
		}
		k.Exit(p)
		var res UnplugResult
		d.Unplug(8*units.BlockSize, func(r UnplugResult) { res = r })
		s.Run()
		if res.ReclaimedBytes != 8*units.BlockSize {
			t.Fatalf("cycle %d: reclaimed %s", cycle, units.HumanBytes(res.ReclaimedBytes))
		}
	}
	// After the last cycle only the boot memory remains committed.
	if got := k.VM.CommittedPages(); got != units.BytesToPages(units.BlockSize) {
		t.Fatalf("committed = %d pages after drain", got)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
