package virtiomem

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func newRig(t *testing.T, movableBlocks int, capacity int64) (*Driver, *guestos.Kernel, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler()
	host := hostmem.New(capacity)
	vm := vmm.New("vm0", s, costmodel.Default(), host, 4)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes:           units.BlockSize,
		MovableBytes:        int64(movableBlocks) * units.BlockSize,
		KernelResidentBytes: 8 * units.MiB,
	})
	return New(k), k, s
}

func TestPlugOnlinesBlocks(t *testing.T) {
	d, k, s := newRig(t, 8, 0)
	var plugged int64 = -1
	start := s.Now()
	var took sim.Duration
	d.Plug(512*units.MiB, func(n int64) { plugged = n; took = s.Now().Sub(start) })
	s.Run()
	if plugged != 512*units.MiB {
		t.Fatalf("plugged = %d", plugged)
	}
	if d.PluggedBlocks() != 4 {
		t.Fatalf("online blocks = %d", d.PluggedBlocks())
	}
	// §6.2.1: plugging costs 35-45 ms for function-sized requests.
	if took < 20*sim.Millisecond || took > 60*sim.Millisecond {
		t.Fatalf("plug latency %v outside the paper's 35-45ms band", took)
	}
	if k.Movable.NrFree() != 4*units.PagesPerBlock {
		t.Fatalf("free = %d", k.Movable.NrFree())
	}
}

func TestPlugRespectsHostBudget(t *testing.T) {
	// Host can back boot (128 MiB) + kernel + 2 movable blocks only.
	d, _, s := newRig(t, 8, 3*units.BlockSize)
	var plugged int64 = -1
	d.Plug(512*units.MiB, func(n int64) { plugged = n })
	s.Run()
	if plugged != 2*units.BlockSize {
		t.Fatalf("plugged = %s, want 2 blocks", units.HumanBytes(plugged))
	}
}

func TestUnplugEmptyBlocksNoMigrations(t *testing.T) {
	d, _, s := newRig(t, 8, 0)
	d.Plug(1024*units.MiB, func(int64) {})
	var res UnplugResult
	d.Unplug(512*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 512*units.MiB {
		t.Fatalf("reclaimed = %d", res.ReclaimedBytes)
	}
	if res.MigratedPages != 0 {
		t.Fatalf("migrated %d pages from empty blocks", res.MigratedPages)
	}
	// Zeroing still applies to the isolated free pages (the pathology
	// §2.2 calls out).
	if res.ZeroedPages != 4*units.PagesPerBlock {
		t.Fatalf("zeroed = %d", res.ZeroedPages)
	}
}

func TestUnplugMigratesOccupiedPages(t *testing.T) {
	d, k, s := newRig(t, 8, 0)
	d.Plug(8*128*units.MiB, func(int64) {})
	s.Run()
	// Two processes interleave their footprints across every block;
	// kill one.
	f1 := k.Spawn("f1")
	f2 := k.Spawn("f2")
	for i := 0; i < 8; i++ {
		k.TouchAnon(f1, 64*units.MiB, guestos.HugeOrder)
		k.TouchAnon(f2, 64*units.MiB, guestos.HugeOrder)
	}
	k.Exit(f2) // frees 512 MiB scattered across blocks
	var res UnplugResult
	d.Unplug(512*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 512*units.MiB {
		t.Fatalf("reclaimed = %s", units.HumanBytes(res.ReclaimedBytes))
	}
	if res.MigratedPages == 0 {
		t.Fatal("expected migrations with interleaved footprints")
	}
	// F1's memory is intact after migration.
	if f1.AnonPages() != units.BytesToPages(512*units.MiB) {
		t.Fatalf("f1 anon = %d", f1.AnonPages())
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Migration dominates the latency breakdown (§6.1.1: 61.5% avg).
	if res.Breakdown.Fraction(vmm.StepMigration) < 0.3 {
		t.Fatalf("migration fraction %.2f unexpectedly small: %v",
			res.Breakdown.Fraction(vmm.StepMigration), res.Breakdown)
	}
}

func TestUnplugPartialWhenMemoryFull(t *testing.T) {
	d, k, s := newRig(t, 4, 0)
	d.Plug(4*128*units.MiB, func(int64) {})
	s.Run()
	hog := k.Spawn("hog")
	// Occupy everything.
	if _, ok := k.TouchAnon(hog, 4*128*units.MiB, guestos.HugeOrder); !ok {
		t.Fatal("fill failed")
	}
	var res UnplugResult
	d.Unplug(256*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 0 {
		t.Fatalf("reclaimed %d from a full VM", res.ReclaimedBytes)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Guest memory must be intact after the aborted offline.
	if hog.AnonPages() != units.BytesToPages(4*128*units.MiB) {
		t.Fatalf("hog lost pages: %d", hog.AnonPages())
	}
}

func TestUnplugReleasesHostFrames(t *testing.T) {
	d, k, s := newRig(t, 8, 0)
	d.Plug(8*128*units.MiB, func(int64) {})
	s.Run()
	p := k.Spawn("f")
	k.TouchAnon(p, 512*units.MiB, guestos.HugeOrder)
	popBefore := k.VM.PopulatedPages()
	commitBefore := k.VM.CommittedPages()
	k.Exit(p)
	var res UnplugResult
	d.Unplug(512*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 512*units.MiB {
		t.Fatalf("reclaimed = %d", res.ReclaimedBytes)
	}
	releasedPages := popBefore - k.VM.PopulatedPages()
	if releasedPages <= 0 {
		t.Fatal("no host frames released")
	}
	if got := commitBefore - k.VM.CommittedPages(); got != units.BytesToPages(512*units.MiB) {
		t.Fatalf("uncommitted %d pages", got)
	}
}

func TestZeroingKnob(t *testing.T) {
	d, k, s := newRig(t, 8, 0)
	k.VM.Cost.ZeroOnUnplug = false
	d.Plug(8*128*units.MiB, func(int64) {})
	s.Run()
	p := k.Spawn("f")
	k.TouchAnon(p, 256*units.MiB, guestos.HugeOrder)
	k.Exit(p)
	var res UnplugResult
	d.Unplug(256*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ZeroedPages != 0 {
		t.Fatalf("zeroed %d pages with ZeroOnUnplug off", res.ZeroedPages)
	}
	if res.Breakdown.Get(vmm.StepZeroing) != 0 {
		t.Fatalf("zeroing time with knob off: %v", res.Breakdown)
	}
}

func TestRequestsSerialize(t *testing.T) {
	d, _, s := newRig(t, 8, 0)
	var order []string
	d.Plug(256*units.MiB, func(int64) { order = append(order, "plug1") })
	d.Plug(256*units.MiB, func(int64) { order = append(order, "plug2") })
	d.Unplug(128*units.MiB, func(UnplugResult) { order = append(order, "unplug") })
	s.Run()
	if len(order) != 3 || order[0] != "plug1" || order[1] != "plug2" || order[2] != "unplug" {
		t.Fatalf("completion order = %v", order)
	}
}

func TestUnplugLatencyCalibration(t *testing.T) {
	// Reproduce the §6.1.1 anchor: reclaiming 512 MiB from a loaded
	// guest should take several hundred ms, dominated by migrations.
	d, k, s := newRig(t, 33, 0) // ~4 GiB movable + boot
	d.Plug(33*128*units.MiB, func(int64) {})
	s.Run()
	// 8 memhog-like processes fill most of the VM.
	procs := make([]*guestos.Process, 8)
	for i := range procs {
		procs[i] = k.Spawn("memhog")
	}
	for round := 0; round < 8; round++ {
		for _, p := range procs {
			k.TouchAnon(p, 64*units.MiB, guestos.HugeOrder)
		}
	}
	k.Exit(procs[0]) // free 512 MiB, scattered
	var res UnplugResult
	d.Unplug(512*units.MiB, func(r UnplugResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 512*units.MiB {
		t.Fatalf("reclaimed = %s", units.HumanBytes(res.ReclaimedBytes))
	}
	ms := res.Latency.Milliseconds()
	if ms < 150 || ms > 1500 {
		t.Fatalf("unplug latency %.0fms outside plausible band around the paper's 617ms", ms)
	}
}
