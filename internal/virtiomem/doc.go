// Package virtiomem models the virtio-mem paravirtualized memory device
// and its vanilla Linux guest driver (Hildenbrand & Schulz, VEE'21) —
// the state-of-the-art baseline Squeezy is measured against.
//
// Plugging onlines 128 MiB blocks into ZONE_MOVABLE. Unplugging is the
// expensive path the paper dissects (§2.2): for each candidate block the
// driver isolates the block's free pages, migrates every occupied page
// to the remaining online memory (the dominant cost, ≈61.5%), zeroes the
// pages being handed back when the kernel hardening knob is on (≈24%),
// tears the block down, and notifies the hypervisor with a VM exit,
// after which the host madvise()s the frames away.
package virtiomem
