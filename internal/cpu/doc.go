// Package cpu models a pool of identical (v)CPUs shared by concurrent
// jobs under weighted processor sharing.
//
// Function executions, kernel reclaim threads (balloon, virtio-mem,
// Squeezy) and VMM threads are all jobs: each carries an amount of CPU
// work (in CPU-nanoseconds), a weight (its CPU shares, Table 1 of the
// paper) and a cap (the most cores it can occupy, 1.0 for a
// single-threaded kernel thread). The pool divides capacity by
// water-filling: capacity is split proportionally to weight, jobs that
// would exceed their cap are pinned at the cap, and the slack is
// redistributed. This reproduces the interference the paper measures in
// Figures 7 and 9 — a virtio-mem migration thread stealing cycles from
// co-located function instances — without a cycle-accurate scheduler.
package cpu
