package cpu

import (
	"fmt"
	"math"

	"squeezy/internal/sim"
)

// Job is a unit of CPU work executing on a Pool. Create jobs with
// Pool.Submit.
type Job struct {
	name   string
	class  string
	weight float64
	cap    float64

	remaining float64 // CPU-ns of work left
	rate      float64 // cores currently allocated
	onDone    func()
	done      bool
	cancelled bool
	pool      *Pool
}

// Name returns the job's display name.
func (j *Job) Name() string { return j.name }

// Class returns the job's accounting class.
func (j *Job) Class() string { return j.class }

// Done reports whether the job has finished or been cancelled.
func (j *Job) Done() bool { return j.done || j.cancelled }

// Remaining returns the CPU-ns of work left.
func (j *Job) Remaining() sim.Duration { return sim.Duration(math.Ceil(j.remaining)) }

// Rate returns the number of cores currently allocated to the job.
func (j *Job) Rate() float64 { return j.rate }

// Cancel removes the job from its pool without running its completion
// callback. Cancelling a finished job is a no-op.
func (j *Job) Cancel() {
	if j.Done() {
		return
	}
	j.pool.advance()
	j.cancelled = true
	j.pool.remove(j)
	j.pool.reschedule()
}

// AddWork increases the job's remaining work by d CPU-ns, e.g. when a
// reclaim thread receives another batch of blocks to migrate.
func (j *Job) AddWork(d sim.Duration) {
	if j.Done() {
		panic("cpu: AddWork on finished job " + j.name)
	}
	j.pool.advance()
	j.remaining += float64(d)
	j.pool.reschedule()
}

// Config parameterizes a job submission.
type Config struct {
	// Name is a display name for debugging.
	Name string
	// Class is the accounting bucket for utilization sampling, e.g.
	// "virtio-mem", "function".
	Class string
	// Weight is the processor-sharing weight; zero defaults to 1.
	Weight float64
	// Cap is the maximum number of cores the job may occupy; zero
	// defaults to 1 (a single thread).
	Cap float64
	// OnDone runs when the work completes.
	OnDone func()
}

// Pool is a set of cores scheduled by weighted processor sharing. It is
// driven by a sim.Scheduler and is not safe for concurrent use.
type Pool struct {
	sched *sim.Scheduler
	cores float64
	jobs  []*Job

	lastAdvance sim.Time
	completion  sim.Event

	usage     map[string]float64 // class -> cumulative CPU-ns consumed
	totalBusy float64            // cumulative CPU-ns consumed, all classes

	// Scratch buffers reused across allocate/advance calls; the
	// simulation reschedules on every event, so per-call allocations
	// here dominate the GC profile of a long run. advance is
	// re-entrant only at dt == 0 (nested calls return before touching
	// finScratch), so sharing is safe.
	allocScratch []*Job
	finScratch   []*Job
}

// NewPool creates a pool of cores CPUs driven by sched. cores may be
// fractional (e.g. an 0.25-share cgroup slice viewed as a pool), but
// must be positive.
func NewPool(sched *sim.Scheduler, cores float64) *Pool {
	if cores <= 0 {
		panic(fmt.Sprintf("cpu: non-positive core count %v", cores))
	}
	return &Pool{
		sched:       sched,
		cores:       cores,
		lastAdvance: sched.Now(),
		usage:       make(map[string]float64),
	}
}

// Reset returns the pool to its just-constructed state — no jobs, no
// accumulated usage, clock anchored at the scheduler's current time —
// while keeping the job slice, scratch buffers, and usage map. The
// scheduler must already be at the time the next simulation starts
// from (a pooled world resets the scheduler first); any pending
// completion event became stale with that reset, so the handle is
// simply dropped.
func (p *Pool) Reset(cores float64) {
	if cores <= 0 {
		panic(fmt.Sprintf("cpu: non-positive core count %v", cores))
	}
	p.cores = cores
	clear(p.jobs) // drop stale *Job pointers before truncating
	p.jobs = p.jobs[:0]
	p.lastAdvance = p.sched.Now()
	p.completion = sim.Event{}
	clear(p.usage)
	p.totalBusy = 0
}

// Cores returns the pool capacity.
func (p *Pool) Cores() float64 { return p.cores }

// Active returns the number of unfinished jobs.
func (p *Pool) Active() int { return len(p.jobs) }

// Submit adds a job with the given amount of CPU work. Zero or negative
// work completes immediately (the callback still fires, via the
// scheduler, at the current time).
func (p *Pool) Submit(work sim.Duration, cfg Config) *Job {
	p.advance()
	j := &Job{
		name:      cfg.Name,
		class:     cfg.Class,
		weight:    cfg.Weight,
		cap:       cfg.Cap,
		remaining: float64(work),
		onDone:    cfg.OnDone,
		pool:      p,
	}
	if j.weight <= 0 {
		j.weight = 1
	}
	if j.cap <= 0 {
		j.cap = 1
	}
	if j.class == "" {
		j.class = "default"
	}
	if j.remaining <= 0 {
		j.done = true
		if j.onDone != nil {
			p.sched.After(0, j.onDone)
		}
		return j
	}
	p.jobs = append(p.jobs, j)
	p.reschedule()
	return j
}

// Utilization returns the cumulative CPU-ns consumed by the given class
// since the pool was created. Sample it at two instants and divide the
// delta by the wall interval to obtain a utilization percentage.
func (p *Pool) Utilization(class string) sim.Duration {
	p.advance()
	return sim.Duration(p.usage[class])
}

// TotalBusy returns cumulative CPU-ns consumed across all classes.
func (p *Pool) TotalBusy() sim.Duration {
	p.advance()
	return sim.Duration(p.totalBusy)
}

// allocate recomputes per-job rates by water-filling: distribute
// capacity proportionally to weight; jobs exceeding their cap are frozen
// at the cap and the residual capacity is redistributed among the rest.
func (p *Pool) allocate() {
	capacity := p.cores
	unfrozen := append(p.allocScratch[:0], p.jobs...)
	for _, j := range unfrozen {
		j.rate = 0
	}
	defer func() {
		// Clear the whole backing array so stale *Job pointers beyond
		// the next use's length don't keep finished jobs alive.
		full := unfrozen[:cap(unfrozen)]
		clear(full)
		p.allocScratch = full[:0]
	}()
	for len(unfrozen) > 0 && capacity > 1e-15 {
		var wsum float64
		for _, j := range unfrozen {
			wsum += j.weight
		}
		frozeAny := false
		next := unfrozen[:0]
		for _, j := range unfrozen {
			share := capacity * j.weight / wsum
			if share >= j.cap-1e-15 {
				j.rate = j.cap
				capacity -= j.cap
				frozeAny = true
			} else {
				next = append(next, j)
			}
		}
		unfrozen = next
		if !frozeAny {
			// Nobody hit their cap: proportional split is final.
			for _, j := range unfrozen {
				j.rate = capacity * j.weight / wsum
			}
			return
		}
	}
}

// advance applies work progress between lastAdvance and now at the
// current rates, completing any job whose remaining work hits zero.
// Rates are piecewise-constant between events, so this is exact.
func (p *Pool) advance() {
	now := p.sched.Now()
	dt := float64(now.Sub(p.lastAdvance))
	p.lastAdvance = now
	if dt <= 0 || len(p.jobs) == 0 {
		return
	}
	finished := p.finScratch[:0]
	for _, j := range p.jobs {
		progress := j.rate * dt
		if progress > j.remaining {
			progress = j.remaining
		}
		j.remaining -= progress
		p.usage[j.class] += progress
		p.totalBusy += progress
		if j.remaining <= 1e-9 {
			j.remaining = 0
			finished = append(finished, j)
		}
	}
	for _, j := range finished {
		j.done = true
		p.remove(j)
	}
	for _, j := range finished {
		if j.onDone != nil {
			j.onDone()
		}
	}
	full := finished[:cap(finished)]
	clear(full)
	p.finScratch = full[:0]
}

func (p *Pool) remove(target *Job) {
	for i, j := range p.jobs {
		if j == target {
			p.jobs = append(p.jobs[:i], p.jobs[i+1:]...)
			return
		}
	}
}

// reschedule recomputes rates and (re)arms the next-completion event.
func (p *Pool) reschedule() {
	p.completion.Cancel()
	p.completion = sim.Event{}
	if len(p.jobs) == 0 {
		return
	}
	p.allocate()
	soonest := math.Inf(1)
	for _, j := range p.jobs {
		if j.rate <= 0 {
			continue
		}
		t := j.remaining / j.rate
		if t < soonest {
			soonest = t
		}
	}
	if math.IsInf(soonest, 1) {
		return // capacity exhausted by zero-rate jobs; nothing can finish
	}
	d := sim.Duration(math.Ceil(soonest))
	if d < 1 {
		d = 1
	}
	p.completion = p.sched.After(d, func() {
		p.completion = sim.Event{}
		p.advance()
		p.reschedule()
	})
}
