package cpu

import (
	"math"
	"testing"

	"squeezy/internal/sim"
)

func TestSingleJobRunsAtFullSpeed(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 4)
	done := sim.Time(-1)
	p.Submit(1000, Config{Name: "j", OnDone: func() { done = s.Now() }})
	s.Run()
	// Single job capped at 1 core: 1000 CPU-ns takes 1000 ns.
	if done != 1000 {
		t.Fatalf("completion at %d, want 1000", done)
	}
}

func TestTwoJobsShareOneCore(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	var doneA, doneB sim.Time
	p.Submit(1000, Config{Name: "a", OnDone: func() { doneA = s.Now() }})
	p.Submit(1000, Config{Name: "b", OnDone: func() { doneB = s.Now() }})
	s.Run()
	// Each runs at 0.5 cores: both finish at 2000.
	if doneA != 2000 || doneB != 2000 {
		t.Fatalf("completions %d,%d want 2000,2000", doneA, doneB)
	}
}

func TestJobsDoNotContendWhenCoresSuffice(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 2)
	var doneA, doneB sim.Time
	p.Submit(1000, Config{Name: "a", OnDone: func() { doneA = s.Now() }})
	p.Submit(500, Config{Name: "b", OnDone: func() { doneB = s.Now() }})
	s.Run()
	if doneA != 1000 || doneB != 500 {
		t.Fatalf("completions %d,%d want 1000,500", doneA, doneB)
	}
}

func TestWeightedSharing(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	var doneHeavy, doneLight sim.Time
	// Weight 3 vs 1 on one core: heavy runs at 0.75, light at 0.25.
	p.Submit(750, Config{Name: "heavy", Weight: 3, OnDone: func() { doneHeavy = s.Now() }})
	p.Submit(250, Config{Name: "light", Weight: 1, OnDone: func() { doneLight = s.Now() }})
	s.Run()
	if doneHeavy != 1000 || doneLight != 1000 {
		t.Fatalf("completions %d,%d want 1000,1000", doneHeavy, doneLight)
	}
}

func TestCapLimitsAllocation(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 4)
	var done sim.Time
	// Cap 0.25 (an HTML-like 0.25-share container): 1000 CPU-ns takes 4000 ns
	// even with idle cores.
	p.Submit(1000, Config{Name: "html", Cap: 0.25, OnDone: func() { done = s.Now() }})
	s.Run()
	if done != 4000 {
		t.Fatalf("completion at %d, want 4000", done)
	}
}

func TestWaterFillingRedistributesSlack(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	var doneA, doneB sim.Time
	// a capped at 0.25; b uncapped. b should get 0.75, not 0.5.
	p.Submit(250, Config{Name: "a", Cap: 0.25, OnDone: func() { doneA = s.Now() }})
	p.Submit(750, Config{Name: "b", OnDone: func() { doneB = s.Now() }})
	s.Run()
	if doneA != 1000 || doneB != 1000 {
		t.Fatalf("completions %d,%d want 1000,1000", doneA, doneB)
	}
}

func TestCompletionChangesRates(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	var doneShort, doneLong sim.Time
	p.Submit(500, Config{Name: "short", OnDone: func() { doneShort = s.Now() }})
	p.Submit(1000, Config{Name: "long", OnDone: func() { doneLong = s.Now() }})
	s.Run()
	// Both at 0.5 until short finishes at t=1000 (500 work done each).
	// Long then has 500 left at rate 1: finishes at 1500.
	if doneShort != 1000 {
		t.Fatalf("short done at %d, want 1000", doneShort)
	}
	if doneLong != 1500 {
		t.Fatalf("long done at %d, want 1500", doneLong)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	fired := false
	j := p.Submit(0, Config{OnDone: func() { fired = true }})
	if !j.Done() {
		t.Fatal("zero-work job should be done at submit")
	}
	s.Run()
	if !fired {
		t.Fatal("zero-work completion callback did not fire")
	}
}

func TestCancel(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	fired := false
	var doneB sim.Time
	a := p.Submit(1000, Config{Name: "a", OnDone: func() { fired = true }})
	p.Submit(1000, Config{Name: "b", OnDone: func() { doneB = s.Now() }})
	s.After(500, func() { a.Cancel() })
	s.Run()
	if fired {
		t.Fatal("cancelled job's callback fired")
	}
	// b: 250 done by t=500 (rate 0.5), then rate 1: 750 more ns -> 1250.
	if doneB != 1250 {
		t.Fatalf("b done at %d, want 1250", doneB)
	}
	if !a.Done() {
		t.Fatal("cancelled job not Done")
	}
}

func TestAddWork(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	var done sim.Time
	j := p.Submit(1000, Config{Name: "reclaim", OnDone: func() { done = s.Now() }})
	s.After(500, func() { j.AddWork(500) })
	s.Run()
	if done != 1500 {
		t.Fatalf("done at %d, want 1500", done)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 2)
	p.Submit(1000, Config{Class: "function"})
	p.Submit(400, Config{Class: "virtio-mem"})
	s.Run()
	if got := p.Utilization("function"); got != 1000 {
		t.Fatalf("function usage = %d, want 1000", got)
	}
	if got := p.Utilization("virtio-mem"); got != 400 {
		t.Fatalf("virtio-mem usage = %d, want 400", got)
	}
	if got := p.TotalBusy(); got != 1400 {
		t.Fatalf("total busy = %d, want 1400", got)
	}
}

func TestUtilizationMidFlight(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 1)
	p.Submit(10_000, Config{Class: "kthread"})
	s.After(1000, func() {
		if got := p.Utilization("kthread"); got != 1000 {
			t.Errorf("usage at t=1000 is %d, want 1000", got)
		}
	})
	s.Run()
}

func TestWorkConservation(t *testing.T) {
	// Total busy time must equal total submitted work regardless of the
	// contention pattern.
	s := sim.NewScheduler()
	p := NewPool(s, 3)
	var total sim.Duration
	works := []sim.Duration{123, 4567, 89, 1011, 121314, 1, 7777}
	for i, w := range works {
		total += w
		delay := sim.Duration(i * 100)
		w := w
		s.After(delay, func() { p.Submit(w, Config{Class: "x"}) })
	}
	s.Run()
	if got := p.Utilization("x"); got != total {
		t.Fatalf("total busy = %d, want %d", got, total)
	}
	if p.Active() != 0 {
		t.Fatalf("active jobs remain: %d", p.Active())
	}
}

func TestManyJobsFairness(t *testing.T) {
	s := sim.NewScheduler()
	p := NewPool(s, 4)
	const n = 16
	var finish [n]sim.Time
	for i := 0; i < n; i++ {
		i := i
		p.Submit(1000, Config{OnDone: func() { finish[i] = s.Now() }})
	}
	s.Run()
	// 16 equal jobs on 4 cores: each at 0.25 cores, all finish at 4000.
	for i, f := range finish {
		if f != 4000 {
			t.Fatalf("job %d finished at %d, want 4000", i, f)
		}
	}
}

func TestNonPositiveCoresPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPool(sim.NewScheduler(), 0)
}

func TestFractionalRatesConverge(t *testing.T) {
	// 3 jobs on 2 cores: each gets 2/3 core; work 2000 -> finish at 3000.
	s := sim.NewScheduler()
	p := NewPool(s, 2)
	var finishes []sim.Time
	for i := 0; i < 3; i++ {
		p.Submit(2000, Config{OnDone: func() { finishes = append(finishes, s.Now()) }})
	}
	s.Run()
	for _, f := range finishes {
		if math.Abs(float64(f)-3000) > 2 { // integer rounding tolerance
			t.Fatalf("finish at %d, want ~3000", f)
		}
	}
}

// TestPoolResetEquivalence runs the same job program on a fresh pool
// and on a reset pool (after unrelated prior work) and requires
// identical completion times and accounting.
func TestPoolResetEquivalence(t *testing.T) {
	program := func(s *sim.Scheduler, p *Pool) (doneAt []sim.Time, busy sim.Duration) {
		for i := 0; i < 4; i++ {
			w := sim.Duration(i+1) * 10 * sim.Millisecond
			p.Submit(w, Config{Name: "j", Class: "c", Weight: float64(i + 1), Cap: 1,
				OnDone: func() { doneAt = append(doneAt, s.Now()) }})
		}
		s.Run()
		return doneAt, p.TotalBusy()
	}
	sf := sim.NewScheduler()
	fresh := NewPool(sf, 2)
	wantDone, wantBusy := program(sf, fresh)

	sr := sim.NewScheduler()
	reused := NewPool(sr, 7)
	reused.Submit(time42, Config{Class: "old"})
	sr.RunFor(5 * sim.Millisecond)
	sr.Reset()
	reused.Reset(2)
	if reused.Active() != 0 || reused.TotalBusy() != 0 || reused.Utilization("old") != 0 {
		t.Fatal("Reset left job or usage state")
	}
	gotDone, gotBusy := program(sr, reused)
	if len(gotDone) != len(wantDone) {
		t.Fatalf("completions: %d vs %d", len(gotDone), len(wantDone))
	}
	for i := range wantDone {
		if gotDone[i] != wantDone[i] {
			t.Fatalf("completion %d at %d on reset pool, %d on fresh", i, gotDone[i], wantDone[i])
		}
	}
	if gotBusy != wantBusy {
		t.Fatalf("busy %v vs %v", gotBusy, wantBusy)
	}
}

const time42 = 42 * sim.Millisecond
