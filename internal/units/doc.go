// Package units provides byte-size constants, page/block geometry shared
// by the whole simulator, and human-readable formatting helpers.
//
// The geometry mirrors x86-64 Linux: 4 KiB base pages, 2 MiB huge pages,
// and 128 MiB hotplug memory blocks (the granularity at which virtio-mem
// and the Linux memory hot(un)plug core add and remove memory).
package units
