package units

import "fmt"

// Byte size constants.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Page and block geometry (x86-64 Linux defaults).
const (
	// PageSize is the base page size (4 KiB).
	PageSize int64 = 4 * KiB
	// HugePageSize is the THP/PMD page size (2 MiB).
	HugePageSize int64 = 2 * MiB
	// BlockSize is the memory hotplug block size (128 MiB on x86-64).
	BlockSize int64 = 128 * MiB
	// PagesPerBlock is the number of base pages per hotplug block.
	PagesPerBlock = BlockSize / PageSize // 32768
	// PagesPerHugePage is the number of base pages per huge page.
	PagesPerHugePage = HugePageSize / PageSize // 512
)

// BytesToPages converts a byte count to base pages, rounding up.
func BytesToPages(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (b + PageSize - 1) / PageSize
}

// PagesToBytes converts a base-page count to bytes.
func PagesToBytes(p int64) int64 { return p * PageSize }

// BytesToBlocks converts a byte count to hotplug blocks, rounding up.
func BytesToBlocks(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (b + BlockSize - 1) / BlockSize
}

// AlignUp rounds n up to the next multiple of align. align must be a
// power of two.
func AlignUp(n, align int64) int64 {
	return (n + align - 1) &^ (align - 1)
}

// AlignDown rounds n down to the previous multiple of align. align must
// be a power of two.
func AlignDown(n, align int64) int64 {
	return n &^ (align - 1)
}

// IsAligned reports whether n is a multiple of align (a power of two).
func IsAligned(n, align int64) bool { return n&(align-1) == 0 }

// HumanBytes formats a byte count with a binary unit suffix, e.g.
// "512.0 MiB". Values below 1 KiB print as plain bytes.
func HumanBytes(b int64) string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= TiB:
		return fmt.Sprintf("%.1f TiB", float64(b)/float64(TiB))
	case abs >= GiB:
		return fmt.Sprintf("%.1f GiB", float64(b)/float64(GiB))
	case abs >= MiB:
		return fmt.Sprintf("%.1f MiB", float64(b)/float64(MiB))
	case abs >= KiB:
		return fmt.Sprintf("%.1f KiB", float64(b)/float64(KiB))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
