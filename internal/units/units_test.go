package units

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	if PagesPerBlock != 32768 {
		t.Fatalf("PagesPerBlock = %d, want 32768", PagesPerBlock)
	}
	if PagesPerHugePage != 512 {
		t.Fatalf("PagesPerHugePage = %d, want 512", PagesPerHugePage)
	}
	if BlockSize != 128*MiB {
		t.Fatalf("BlockSize = %d, want 128 MiB", BlockSize)
	}
}

func TestBytesToPages(t *testing.T) {
	cases := []struct {
		in, want int64
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{PageSize, 1},
		{PageSize + 1, 2},
		{2 * GiB, 524288},
	}
	for _, c := range cases {
		if got := BytesToPages(c.in); got != c.want {
			t.Errorf("BytesToPages(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestBytesToBlocks(t *testing.T) {
	cases := []struct {
		in, want int64
	}{
		{0, 0},
		{1, 1},
		{BlockSize, 1},
		{BlockSize + 1, 2},
		{2 * GiB, 16},
		{512 * MiB, 4},
	}
	for _, c := range cases {
		if got := BytesToBlocks(c.in); got != c.want {
			t.Errorf("BytesToBlocks(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAlign(t *testing.T) {
	if got := AlignUp(1, 4096); got != 4096 {
		t.Errorf("AlignUp(1,4096) = %d", got)
	}
	if got := AlignUp(4096, 4096); got != 4096 {
		t.Errorf("AlignUp(4096,4096) = %d", got)
	}
	if got := AlignDown(4097, 4096); got != 4096 {
		t.Errorf("AlignDown(4097,4096) = %d", got)
	}
	if !IsAligned(8192, 4096) || IsAligned(8193, 4096) {
		t.Error("IsAligned misbehaves")
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(n uint32) bool {
		v := int64(n)
		up := AlignUp(v, PageSize)
		down := AlignDown(v, PageSize)
		if !IsAligned(up, PageSize) || !IsAligned(down, PageSize) {
			return false
		}
		if up < v || down > v {
			return false
		}
		return up-down == 0 || up-down == PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		b := PagesToBytes(int64(n))
		return BytesToPages(b) == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2 * KiB, "2.0 KiB"},
		{512 * MiB, "512.0 MiB"},
		{2 * GiB, "2.0 GiB"},
		{3 * TiB, "3.0 TiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
