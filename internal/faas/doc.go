// Package faas models the OpenWhisk-based N:1 serverless runtime the
// paper integrates Squeezy into (§4.2, §6.2), plus the 1:1 microVM
// model it compares against (§6.3).
//
// One FuncVM is an N:1 VM: an in-guest Agent dispatches requests to
// warm (kept-alive) container instances, creates instances on demand
// (scale-up: memory plug + container spawn), and evicts instances whose
// keep-alive window expires (scale-down: container kill + memory
// unplug). A Runtime coordinates several FuncVMs against one host
// memory pool through a Broker; when the host runs out of memory,
// scale-ups queue and idle instances across all VMs are evicted to free
// memory (§6.2.2).
//
// Four memory backends implement the paper's comparison points: a
// statically over-provisioned VM (no elasticity, Figure 1), vanilla
// virtio-mem, Squeezy, and virtio-mem with the HarvestVM optimizations
// (proactive reclamation + slack buffering, [24]).
//
// # Pooling
//
// FuncVM construction is expensive relative to a short sweep cell —
// guest-kernel arenas, a vmm.VM with its cpu pools, agent maps and
// queues. A Recycler caches all three across runs: Runtime.AddVM
// draws from it and FuncVM.Release returns to it, with every
// observable field re-initialized on reuse so a recycled FuncVM is
// indistinguishable from a fresh one. One Recycler belongs to one
// goroutine — in the sharded fleet, to one host.
package faas
