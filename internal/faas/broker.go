package faas

import (
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
)

// Grant is an admission ticket for host memory. The holder must either
// Consume it (after its VM committed the memory) or Cancel it.
type Grant struct {
	b       *Broker
	pages   int64
	granted bool
	settled bool
	fn      func(*Grant)
}

// Granted reports whether the grant has been issued.
func (g *Grant) Granted() bool { return g.granted }

// Consume settles the grant after the backend committed the memory.
func (g *Grant) Consume() {
	if g.settled {
		panic("faas: grant settled twice")
	}
	if !g.granted {
		panic("faas: consuming an unissued grant")
	}
	g.settled = true
	g.b.reserved -= g.pages
	// Consuming converts the reservation into a real commit, so the
	// free pool is unchanged; no pump needed.
}

// Cancel abandons the grant. A queued grant is dequeued; an issued
// grant's reservation returns to the pool and waiters are re-examined.
func (g *Grant) Cancel() {
	if g.settled {
		return
	}
	g.settled = true
	if g.granted {
		g.b.reserved -= g.pages
		g.b.Pump()
		return
	}
	for i, w := range g.b.waiters {
		if w == g {
			g.b.waiters = append(g.b.waiters[:i], g.b.waiters[i+1:]...)
			return
		}
	}
}

// Broker is the runtime's host-memory admission controller. Scale-up
// events acquire memory through it; when the host is out of budget the
// broker queues the request and raises a pressure signal so the runtime
// can evict idle instances and reclaim their memory (§6.2.2).
type Broker struct {
	Host  *hostmem.Host
	Sched *sim.Scheduler

	// OnPressure, when set, is invoked with the current total deficit
	// in pages whenever an acquire cannot be satisfied. The runtime
	// responds by evicting idle instances; each completed unplug calls
	// Pump.
	OnPressure func(deficitPages int64)

	// OnReclaimed, when set, is invoked with the pages freed by a
	// completed reclaim operation, before waiters are re-examined. The
	// runtime uses it to retire its in-flight reclaim accounting as
	// memory actually lands instead of waiting out the drain timer.
	OnReclaimed func(pages int64)

	reserved int64
	waiters  []*Grant
	pumping  bool
}

// NewBroker creates a broker over the host pool.
func NewBroker(host *hostmem.Host, sched *sim.Scheduler) *Broker {
	return &Broker{Host: host, Sched: sched}
}

// FreePages returns pages available for new grants.
func (b *Broker) FreePages() int64 { return b.Host.FreeCommitPages() - b.reserved }

// QueuedPages returns the total pages waiting for memory.
func (b *Broker) QueuedPages() int64 {
	var n int64
	for _, w := range b.waiters {
		n += w.pages
	}
	return n
}

// Acquire requests pages of host memory. fn runs with the issued grant
// as soon as the reservation is made — possibly synchronously, when the
// pool has room — otherwise after enough memory is reclaimed. Grants
// issue in FIFO order.
func (b *Broker) Acquire(pages int64, fn func(*Grant)) *Grant {
	g := &Grant{b: b, pages: pages, fn: fn}
	if len(b.waiters) == 0 && b.FreePages() >= pages {
		g.granted = true
		b.reserved += pages
		fn(g)
		return g
	}
	b.waiters = append(b.waiters, g)
	if b.OnPressure != nil {
		b.OnPressure(b.QueuedPages() - max64(b.FreePages(), 0))
	}
	return g
}

// Pump re-examines queued grants after memory is released. A partial
// pump — some grants issued, but the head waiter still starved —
// re-raises OnPressure with the remaining deficit, so a reclaim round
// that freed less than the queue needs triggers another round
// immediately instead of waiting out the drain timer.
func (b *Broker) Pump() {
	if b.pumping {
		return
	}
	b.pumping = true
	issued := false
	for len(b.waiters) > 0 {
		g := b.waiters[0]
		if b.FreePages() < g.pages {
			break
		}
		b.waiters = b.waiters[1:]
		g.granted = true
		b.reserved += g.pages
		issued = true
		g.fn(g)
	}
	b.pumping = false
	if issued && len(b.waiters) > 0 && b.OnPressure != nil {
		b.OnPressure(b.QueuedPages() - max64(b.FreePages(), 0))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
