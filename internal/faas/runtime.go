package faas

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// Runtime coordinates several N:1 FuncVMs against one host memory pool:
// it owns the broker, reacts to memory pressure by evicting idle
// instances across VMs (oldest first), and drains HarvestVM slack
// buffers before touching live instances (§6.2.2).
type Runtime struct {
	Sched  *sim.Scheduler
	Host   *hostmem.Host
	Cost   *costmodel.Model
	Broker *Broker
	VMs    []*FuncVM

	// ProactiveFactor scales pressure evictions: 1.0 evicts exactly the
	// deficit; HarvestVM's proactive reclamation uses >1 to reclaim
	// ahead of demand (§6.2.2).
	ProactiveFactor float64

	// Recycle, when non-nil, backs every AddVM with a shared pool: the
	// guest kernels of this runtime's VMs build from (and, via Release,
	// return to) its arena cache, and the FuncVM shells and inner
	// vmm.VMs themselves are recycled through it.
	Recycle *Recycler

	// Obs, when non-nil, records the host's memory-mechanics events:
	// pressure signals here, cold-start phases and reclaim detail in the
	// VMs AddVM hands it to. Set it before the first AddVM.
	Obs *obs.Recorder

	// Faults, when non-nil, is the host's fault-injection window state;
	// AddVM hands it to every VM (boot failures, crashes) and to the
	// VM's reclaim backend (stalled/partial commands). Set it before
	// the first AddVM.
	Faults FaultInjector

	reclaimInFlight int64         // pages expected from in-flight evictions
	reclaimRecs     []*reclaimRec // outstanding evictions, oldest first
}

// reclaimRec tracks one started eviction's not-yet-arrived pages, so
// completed reclaims retire exactly the share they delivered and the
// drain timer only writes off what its own eviction still owes.
type reclaimRec struct {
	pages int64
}

// NewRuntime creates a runtime over a host pool.
func NewRuntime(sched *sim.Scheduler, host *hostmem.Host, cost *costmodel.Model) *Runtime {
	r := &Runtime{
		Sched:           sched,
		Host:            host,
		Cost:            cost,
		Broker:          NewBroker(host, sched),
		ProactiveFactor: 1.0,
	}
	r.Broker.OnPressure = r.handlePressure
	r.Broker.OnReclaimed = r.noteReclaimCompleted
	return r
}

// AddVM boots a FuncVM and registers it with the runtime. With a
// recycler attached, the VM's kernel arenas, its vmm.VM, and the agent
// shell all come out of the pool.
func (r *Runtime) AddVM(cfg VMConfig) *FuncVM {
	if cfg.Recycle == nil && r.Recycle != nil {
		cfg.Recycle = r.Recycle.Kernels
	}
	fv := newFuncVM(r.Recycle, r.Sched, r.Host, r.Cost, r.Broker, r.Obs, r.Faults, cfg)
	r.VMs = append(r.VMs, fv)
	return fv
}

// Release retires every VM — guest-kernel arenas, inner vmm.VMs, and
// agent shells — into the runtime's recycler (no-op without one). Call
// it only when the simulation is over: the runtime and its VMs must
// not be used afterwards.
func (r *Runtime) Release() {
	for _, fv := range r.VMs {
		fv.Release()
	}
}

// handlePressure frees host memory for queued scale-ups: drain harvest
// buffers first, then evict idle instances oldest-first across VMs.
func (r *Runtime) handlePressure(deficitPages int64) {
	needed := deficitPages - r.reclaimInFlight
	if needed <= 0 {
		return
	}
	if r.Obs != nil {
		r.Obs.Count("pressure_events", 1)
		r.Obs.Instant("pressure", obs.CatMemory, obs.I("deficit_pages", needed))
	}
	target := int64(float64(needed) * r.ProactiveFactor)

	// 1) Slack buffers are free memory in disguise; unplug them first.
	for _, fv := range r.VMs {
		if target <= 0 {
			break
		}
		released := fv.ReleaseHarvestBuffer(units.PagesToBytes(target))
		pages := units.BytesToPages(released)
		r.noteReclaimStarted(fv, pages)
		target -= pages
	}

	// 2) Evict idle instances, globally oldest-idle first.
	for target > 0 {
		fv := r.oldestIdleVM()
		if fv == nil {
			return // nothing evictable; waiters stay queued
		}
		pages := units.BytesToPages(fv.instBytes)
		fv.pressureNext = true // tag the unplug as pressure-initiated
		fv.EvictOldestIdle()
		r.noteReclaimStarted(fv, pages)
		target -= pages
	}
}

// noteReclaimStarted tracks in-flight reclamation so overlapping
// pressure signals don't over-evict. The accounting retires through
// two paths: completed reclaims retire their delivered pages promptly
// (noteReclaimCompleted, via Broker.OnReclaimed), and a drain timer
// writes off whatever this eviction still owes — the unplug stalled,
// or delivered less than expected — and re-raises pressure.
func (r *Runtime) noteReclaimStarted(fv *FuncVM, pages int64) {
	if pages <= 0 {
		return
	}
	rec := &reclaimRec{pages: pages}
	r.reclaimRecs = append(r.reclaimRecs, rec)
	r.reclaimInFlight += pages
	r.Sched.After(costmodel.ReclaimDrainTimeout, func() {
		r.reclaimInFlight -= rec.pages
		rec.pages = 0
		r.dropSettledRecs()
		r.Broker.Pump()
		if r.Broker.QueuedPages() > 0 {
			r.handlePressure(r.Broker.QueuedPages())
		}
	})
}

// noteReclaimCompleted retires in-flight accounting as reclaimed pages
// actually land, consuming the oldest outstanding evictions first.
// Without it the counter would stay inflated until the drain timer and
// suppress the pressure re-raise of a partial pump (Broker.Pump), and
// starved waiters would stall the full timeout.
func (r *Runtime) noteReclaimCompleted(pages int64) {
	for pages > 0 && len(r.reclaimRecs) > 0 {
		rec := r.reclaimRecs[0]
		take := rec.pages
		if pages < take {
			take = pages
		}
		rec.pages -= take
		r.reclaimInFlight -= take
		pages -= take
		if rec.pages == 0 {
			r.reclaimRecs = r.reclaimRecs[1:]
		}
	}
}

// dropSettledRecs prunes fully-retired records after a timer write-off
// (completed records at the head are pruned inline by
// noteReclaimCompleted).
func (r *Runtime) dropSettledRecs() {
	keep := r.reclaimRecs[:0]
	for _, rec := range r.reclaimRecs {
		if rec.pages > 0 {
			keep = append(keep, rec)
		}
	}
	r.reclaimRecs = keep
}

// ReclaimInFlightPages returns the pages expected from in-flight
// pressure evictions — memory that is on its way back to the pool but
// not yet free. Placement policies use it to judge how much of a host's
// deficit is already being paid down.
func (r *Runtime) ReclaimInFlightPages() int64 { return r.reclaimInFlight }

// IdleReclaimablePages returns the pages the runtime could start
// reclaiming right now: idle instances plus plugged slack buffers. A
// deficit beyond this number is stranded until a keep-alive expires —
// the stall placement policies most want to avoid.
func (r *Runtime) IdleReclaimablePages() int64 {
	var pages int64
	for _, fv := range r.VMs {
		pages += int64(fv.IdleInstances()) * units.BytesToPages(fv.InstanceBytes())
		pages += units.BytesToPages(fv.HarvestBufferBytes())
	}
	return pages
}

func (r *Runtime) oldestIdleVM() *FuncVM {
	var best *FuncVM
	var bestSince sim.Time
	for _, fv := range r.VMs {
		if len(fv.idle) == 0 {
			continue
		}
		since := fv.idle[0].idleSince
		if best == nil || since < bestSince {
			best, bestSince = fv, since
		}
	}
	return best
}

// CommittedBytes returns host memory committed across all VMs plus
// pending grants.
func (r *Runtime) CommittedBytes() int64 {
	return units.PagesToBytes(r.Host.CommittedPages())
}

// PopulatedBytes returns host frames in use across all VMs.
func (r *Runtime) PopulatedBytes() int64 {
	return units.PagesToBytes(r.Host.PopulatedPages())
}

// GuestAllocatedBytes sums guest-side allocated memory across VMs (the
// guest line of Figure 1).
func (r *Runtime) GuestAllocatedBytes() int64 {
	var pages int64
	for _, fv := range r.VMs {
		pages += fv.K.AllocatedPages()
	}
	return units.PagesToBytes(pages)
}

// LiveInstances sums live instances across VMs.
func (r *Runtime) LiveInstances() int {
	n := 0
	for _, fv := range r.VMs {
		n += fv.LiveInstances()
	}
	return n
}

// IdleInstances sums idle (warm, not serving) instances across VMs —
// the warm pool a host failure destroys.
func (r *Runtime) IdleInstances() int {
	n := 0
	for _, fv := range r.VMs {
		n += fv.IdleInstances()
	}
	return n
}
