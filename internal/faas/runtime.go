package faas

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// Runtime coordinates several N:1 FuncVMs against one host memory pool:
// it owns the broker, reacts to memory pressure by evicting idle
// instances across VMs (oldest first), and drains HarvestVM slack
// buffers before touching live instances (§6.2.2).
type Runtime struct {
	Sched  *sim.Scheduler
	Host   *hostmem.Host
	Cost   *costmodel.Model
	Broker *Broker
	VMs    []*FuncVM

	// ProactiveFactor scales pressure evictions: 1.0 evicts exactly the
	// deficit; HarvestVM's proactive reclamation uses >1 to reclaim
	// ahead of demand (§6.2.2).
	ProactiveFactor float64

	reclaimInFlight int64 // pages expected from in-flight evictions
}

// NewRuntime creates a runtime over a host pool.
func NewRuntime(sched *sim.Scheduler, host *hostmem.Host, cost *costmodel.Model) *Runtime {
	r := &Runtime{
		Sched:           sched,
		Host:            host,
		Cost:            cost,
		Broker:          NewBroker(host, sched),
		ProactiveFactor: 1.0,
	}
	r.Broker.OnPressure = r.handlePressure
	return r
}

// AddVM boots a FuncVM and registers it with the runtime.
func (r *Runtime) AddVM(cfg VMConfig) *FuncVM {
	fv := NewFuncVM(r.Sched, r.Host, r.Cost, r.Broker, cfg)
	r.VMs = append(r.VMs, fv)
	return fv
}

// handlePressure frees host memory for queued scale-ups: drain harvest
// buffers first, then evict idle instances oldest-first across VMs.
func (r *Runtime) handlePressure(deficitPages int64) {
	needed := deficitPages - r.reclaimInFlight
	if needed <= 0 {
		return
	}
	target := int64(float64(needed) * r.ProactiveFactor)

	// 1) Slack buffers are free memory in disguise; unplug them first.
	for _, fv := range r.VMs {
		if target <= 0 {
			break
		}
		released := fv.ReleaseHarvestBuffer(units.PagesToBytes(target))
		pages := units.BytesToPages(released)
		r.noteReclaimStarted(fv, pages)
		target -= pages
	}

	// 2) Evict idle instances, globally oldest-idle first.
	for target > 0 {
		fv := r.oldestIdleVM()
		if fv == nil {
			return // nothing evictable; waiters stay queued
		}
		pages := units.BytesToPages(fv.instBytes)
		fv.EvictOldestIdle()
		r.noteReclaimStarted(fv, pages)
		target -= pages
	}
}

// noteReclaimStarted tracks in-flight reclamation so overlapping
// pressure signals don't over-evict; the counter drains on a timer
// since unplug completion is observed indirectly via Broker.Pump.
func (r *Runtime) noteReclaimStarted(fv *FuncVM, pages int64) {
	if pages <= 0 {
		return
	}
	r.reclaimInFlight += pages
	// Conservative upper bound on reclaim latency; afterwards the
	// memory either arrived (and Pump granted waiters) or the unplug
	// failed and pressure may fire again.
	r.Sched.After(5*sim.Second, func() {
		r.reclaimInFlight -= pages
		if r.reclaimInFlight < 0 {
			r.reclaimInFlight = 0
		}
		r.Broker.Pump()
		if r.Broker.QueuedPages() > 0 {
			r.handlePressure(r.Broker.QueuedPages())
		}
	})
}

func (r *Runtime) oldestIdleVM() *FuncVM {
	var best *FuncVM
	var bestSince sim.Time
	for _, fv := range r.VMs {
		if len(fv.idle) == 0 {
			continue
		}
		since := fv.idle[0].idleSince
		if best == nil || since < bestSince {
			best, bestSince = fv, since
		}
	}
	return best
}

// CommittedBytes returns host memory committed across all VMs plus
// pending grants.
func (r *Runtime) CommittedBytes() int64 {
	return units.PagesToBytes(r.Host.CommittedPages())
}

// PopulatedBytes returns host frames in use across all VMs.
func (r *Runtime) PopulatedBytes() int64 {
	return units.PagesToBytes(r.Host.PopulatedPages())
}

// GuestAllocatedBytes sums guest-side allocated memory across VMs (the
// guest line of Figure 1).
func (r *Runtime) GuestAllocatedBytes() int64 {
	var pages int64
	for _, fv := range r.VMs {
		pages += fv.K.AllocatedPages()
	}
	return units.PagesToBytes(pages)
}

// LiveInstances sums live instances across VMs.
func (r *Runtime) LiveInstances() int {
	n := 0
	for _, fv := range r.VMs {
		n += fv.LiveInstances()
	}
	return n
}
