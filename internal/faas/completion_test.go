package faas

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// TestEveryRequestCompletesExactlyOnce churns a memory-tight VM with
// overlapping invocations of two functions so requests queue at the
// broker while warm instances come and go. Every request must complete
// exactly once: a request served warm while its grant was still queued
// used to also cold-start when the grant later issued (completing — and
// executing — twice), which silently inflated every throughput and
// latency metric built on completions.
func TestEveryRequestCompletesExactlyOnce(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(3 * units.GiB)
	rt := NewRuntime(s, h, costmodel.Default())
	html := workload.ByName("HTML")
	bfs := workload.ByName("BFS")
	fv := rt.AddVM(VMConfig{
		Name: "vm", Kind: VirtioMem, Fn: html, CoFns: []*workload.Function{bfs},
		N: 4, KeepAlive: 10 * sim.Second,
	})
	total := 0
	completions := map[int]int{}
	for i := 0; i < 60; i++ {
		i := i
		fn := html
		if i%3 == 0 {
			fn = bfs
		}
		at := sim.Time(i%20) * sim.Time(2*sim.Second)
		s.At(at, func() {
			total++
			fv.Invoke(fn, func(Result) { completions[i]++ })
		})
	}
	s.Run()
	for i, c := range completions {
		if c != 1 {
			t.Errorf("request %d completed %d times", i, c)
		}
	}
	if len(completions) != total {
		t.Errorf("%d of %d requests never completed", total-len(completions), total)
	}
}
