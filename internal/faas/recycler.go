package faas

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/vmm"
)

// Recycler caches the expensive parts of FuncVM construction across
// simulation runs: the guest-kernel arena storage (zone structs, buddy
// ord spans, population bitmaps — delegated to a guestos.Recycler),
// whole vmm.VMs with their cpu pools, and the FuncVM agent shells
// themselves (instance maps, queues, latency tables). A runtime built
// with a Recycler boots VMs out of the cache and FuncVM.Release returns
// them, so consecutive runs on one worker (or one simulated host)
// reuse a single working set instead of reallocating it per run.
//
// The reset invariants of the recycled layers (vmm.VM.Reset,
// guestos zone/bitmap recycling, and the FuncVM field reset in
// newFuncVM) guarantee a recycled FuncVM behaves identically to a
// freshly constructed one. A Recycler is not safe for concurrent use;
// give each worker — or each simulated host advanced by its own shard
// worker — its own.
type Recycler struct {
	// Kernels caches guest-kernel arena storage; it is injected as
	// VMConfig.Recycle into every VM built through the recycler.
	Kernels *guestos.Recycler

	vms []*vmm.VM
	fvs []*FuncVM
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler {
	return &Recycler{Kernels: guestos.NewRecycler()}
}

// takeVM returns a cached VM reset for a new run, or nil when none is
// compatible. VMs are bound to the scheduler they were built on; a VM
// cached under a different scheduler is left for that scheduler's
// future runs rather than rewired (in practice one Recycler only ever
// sees one scheduler, so the guard is a safety net, not a code path).
func (r *Recycler) takeVM(name string, sched *sim.Scheduler, cost *costmodel.Model, host *hostmem.Host, vcpus float64) *vmm.VM {
	for i := len(r.vms) - 1; i >= 0; i-- {
		vm := r.vms[i]
		if vm.Sched != sched {
			continue
		}
		r.vms = append(r.vms[:i], r.vms[i+1:]...)
		vm.Reset(name, cost, host, vcpus)
		return vm
	}
	return nil
}

// putVM caches a retired VM for reuse. The VM must be dead: its
// simulation is over and nothing will touch it until takeVM revives it.
func (r *Recycler) putVM(vm *vmm.VM) { r.vms = append(r.vms, vm) }

// AcquireVM returns a VM on sched ready for a new run: a cached VM
// reset in place when one is compatible, else a fresh one. Callers
// that build VMs directly (the kernel-direct experiment drivers)
// retire them with ReleaseVM when the run ends.
func (r *Recycler) AcquireVM(name string, sched *sim.Scheduler, cost *costmodel.Model, host *hostmem.Host, vcpus float64) *vmm.VM {
	if vm := r.takeVM(name, sched, cost, host, vcpus); vm != nil {
		return vm
	}
	return vmm.New(name, sched, cost, host, vcpus)
}

// ReleaseVM retires a dead VM into the cache for AcquireVM to revive.
func (r *Recycler) ReleaseVM(vm *vmm.VM) { r.putVM(vm) }

// takeFuncVM returns a cached agent shell, or nil. The shell's fields
// are stale; newFuncVM re-initializes every one of them.
func (r *Recycler) takeFuncVM() *FuncVM {
	if n := len(r.fvs); n > 0 {
		fv := r.fvs[n-1]
		r.fvs[n-1] = nil
		r.fvs = r.fvs[:n-1]
		return fv
	}
	return nil
}

// putFuncVM caches a released agent shell for reuse.
func (r *Recycler) putFuncVM(fv *FuncVM) { r.fvs = append(r.fvs, fv) }
