package faas

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func newRuntime(t *testing.T, hostBytes int64) *Runtime {
	t.Helper()
	s := sim.NewScheduler()
	return NewRuntime(s, hostmem.New(hostBytes), costmodel.Default())
}

func addVM(r *Runtime, kind BackendKind, fnName string, n int) *FuncVM {
	return r.AddVM(VMConfig{
		Name: fnName + "-vm", Kind: kind, Fn: workload.ByName(fnName), N: n,
	})
}

func TestColdThenWarm(t *testing.T) {
	for _, kind := range []BackendKind{Static, VirtioMem, Squeezy, Harvest} {
		t.Run(kind.String(), func(t *testing.T) {
			r := newRuntime(t, 0)
			fv := addVM(r, kind, "HTML", 4)
			var first, second Result
			fv.InvokePrimary(func(res Result) { first = res })
			// Stop before the 2 min keep-alive window expires.
			r.Sched.RunUntil(sim.Time(30 * sim.Second))
			if !first.Cold || first.Dropped {
				t.Fatalf("first request: %+v", first)
			}
			fv.InvokePrimary(func(res Result) { second = res })
			r.Sched.RunUntil(sim.Time(60 * sim.Second))
			if second.Cold {
				t.Fatal("second request did not reuse the idle instance")
			}
			if second.Latency >= first.Latency {
				t.Fatalf("warm (%v) not faster than cold (%v)", second.Latency, first.Latency)
			}
			if fv.ColdStarts != 1 || fv.WarmStarts != 1 {
				t.Fatalf("cold=%d warm=%d", fv.ColdStarts, fv.WarmStarts)
			}
		})
	}
}

func TestColdStartPhases(t *testing.T) {
	r := newRuntime(t, 0)
	fv := addVM(r, Squeezy, "Cnn", 4)
	var res Result
	fv.InvokePrimary(func(rr Result) { res = rr })
	r.Sched.Run()
	p := res.Phases
	if p.VMMDelay <= 0 || p.ContainerInit <= 0 || p.FuncInit <= 0 || p.Exec <= 0 {
		t.Fatalf("phases missing: %+v", p)
	}
	// §6.2.1: plug latency is 35-45ms for every function size.
	if p.VMMDelay < 20*sim.Millisecond || p.VMMDelay > 60*sim.Millisecond {
		t.Fatalf("plug delay %v outside band", p.VMMDelay)
	}
	if got := p.Total(); got != res.Latency {
		t.Fatalf("phases total %v != latency %v", got, res.Latency)
	}
}

func TestConcurrencyCap(t *testing.T) {
	r := newRuntime(t, 0)
	fv := addVM(r, Squeezy, "BFS", 2)
	done := 0
	for i := 0; i < 5; i++ {
		fv.InvokePrimary(func(Result) { done++ })
	}
	if fv.LiveInstances() > 2 {
		t.Fatalf("live instances %d exceed N=2", fv.LiveInstances())
	}
	r.Sched.Run()
	if done != 5 {
		t.Fatalf("completed %d of 5", done)
	}
	if fv.LiveInstances() > 2 {
		t.Fatalf("live instances %d exceed N=2", fv.LiveInstances())
	}
}

func TestKeepAliveEviction(t *testing.T) {
	for _, kind := range []BackendKind{VirtioMem, Squeezy} {
		t.Run(kind.String(), func(t *testing.T) {
			r := newRuntime(t, 0)
			fv := addVM(r, kind, "HTML", 4)
			fv.InvokePrimary(nil)
			r.Sched.Run() // runs through keep-alive expiry
			if fv.Evictions != 1 {
				t.Fatalf("evictions = %d", fv.Evictions)
			}
			if fv.LiveInstances() != 0 {
				t.Fatalf("live = %d after keep-alive", fv.LiveInstances())
			}
			if fv.ReclaimedBytes != fv.InstanceBytes() {
				t.Fatalf("reclaimed %d, want %d", fv.ReclaimedBytes, fv.InstanceBytes())
			}
			// Host memory must be back: only boot + shared cache remain.
			if got := fv.VM.CommittedPages(); units.PagesToBytes(got) > 2*units.GiB {
				t.Fatalf("committed after eviction = %d pages", got)
			}
		})
	}
}

func TestKeepAliveResetOnReuse(t *testing.T) {
	r := newRuntime(t, 0)
	fv := addVM(r, Squeezy, "HTML", 2)
	fv.InvokePrimary(nil)
	// Re-invoke at 1.5 min: inside the 2 min window; instance survives
	// past the original expiry.
	r.Sched.At(sim.Time(90*sim.Second), func() { fv.InvokePrimary(nil) })
	r.Sched.RunUntil(sim.Time(150 * sim.Second))
	if fv.Evictions != 0 {
		t.Fatal("instance evicted despite reuse")
	}
	r.Sched.Run()
	if fv.Evictions != 1 {
		t.Fatalf("evictions = %d at end", fv.Evictions)
	}
}

func TestSqueezyReclaimFasterThanVirtioMem(t *testing.T) {
	measure := func(kind BackendKind) sim.Duration {
		r := newRuntime(t, 0)
		fv := addVM(r, kind, "Bert", 8)
		// Run several instances concurrently so footprints interleave
		// under virtio-mem.
		for i := 0; i < 4; i++ {
			fv.InvokePrimary(nil)
		}
		r.Sched.Run()
		if fv.ReclaimOps == 0 {
			t.Fatalf("%v: no reclaim ops", kind)
		}
		return fv.ReclaimTime / sim.Duration(fv.ReclaimOps)
	}
	vmem := measure(VirtioMem)
	sq := measure(Squeezy)
	if sq*3 > vmem {
		t.Fatalf("squeezy reclaim (%v) not clearly faster than virtio-mem (%v)", sq, vmem)
	}
}

func TestMemoryPressureEvictsIdle(t *testing.T) {
	// Host fits boot + shared + ~1 instance; a second cold start must
	// evict the idle first instance.
	fn := workload.ByName("BFS")
	instBytes := units.AlignUp(fn.MemoryLimit, units.BlockSize)
	hostBytes := units.AlignUp(fn.GuestOSBytes+64*units.MiB, units.BlockSize) + // boot
		units.AlignUp(fn.FileSharedBytes*5/4, units.BlockSize) + // shared cache
		instBytes + instBytes/2 // one instance + slack
	r := newRuntime(t, hostBytes)
	fv := addVM(r, Squeezy, "BFS", 4)
	var r1, r2 Result
	fv.InvokePrimary(func(res Result) { r1 = res })
	r.Sched.RunUntil(sim.Time(30 * sim.Second))
	if r1.Dropped || !r1.Cold {
		t.Fatalf("first request: %+v", r1)
	}
	// Second request 30s later: no memory for a second instance, but the
	// first is idle — pressure evicts it or the request reuses it warm.
	fv.InvokePrimary(func(res Result) { r2 = res })
	r.Sched.Run()
	if r2.Dropped {
		t.Fatal("second request dropped")
	}
	// It must have been served warm (idle instance reused is the fast
	// path the dispatcher prefers).
	if r2.Cold {
		t.Fatalf("expected warm reuse under pressure, got cold: %+v", r2)
	}
}

func TestPressureEvictionAcrossVMs(t *testing.T) {
	// Two VMs; host fits both boots + shareds + one instance. VM A's
	// idle instance must be evicted to admit VM B's cold start.
	fnA, fnB := workload.ByName("BFS"), workload.ByName("Cnn")
	boot := func(fn *workload.Function) int64 {
		return units.AlignUp(fn.GuestOSBytes+64*units.MiB, units.BlockSize) +
			units.AlignUp(fn.FileSharedBytes*5/4, units.BlockSize)
	}
	instBytes := units.AlignUp(fnA.MemoryLimit, units.BlockSize)
	hostBytes := boot(fnA) + boot(fnB) + instBytes + instBytes/2
	r := newRuntime(t, hostBytes)
	fvA := addVM(r, Squeezy, "BFS", 4)
	fvB := addVM(r, Squeezy, "Cnn", 4)
	var ra, rb Result
	fvA.InvokePrimary(func(res Result) { ra = res })
	r.Sched.RunUntil(sim.Time(20 * sim.Second))
	if ra.Dropped {
		t.Fatal("A's request failed")
	}
	fvB.InvokePrimary(func(res Result) { rb = res })
	r.Sched.Run()
	if rb.Dropped {
		t.Fatal("B's request dropped under pressure")
	}
	if !rb.Cold {
		t.Fatal("B should cold start")
	}
	if fvA.Evictions != 1 {
		t.Fatalf("A evictions = %d, want 1 (pressure)", fvA.Evictions)
	}
	if rb.Phases.MemWait <= 0 {
		t.Fatal("B's cold start should have waited for memory")
	}
}

func TestHarvestBufferAbsorbsChurn(t *testing.T) {
	r := newRuntime(t, 0)
	fn := workload.ByName("HTML")
	fv := r.AddVM(VMConfig{
		Name: "html-vm", Kind: Harvest, Fn: fn, N: 4,
		KeepAlive:          10 * sim.Second,
		HarvestBufferBytes: 2 * units.AlignUp(fn.MemoryLimit, units.BlockSize),
	})
	var cold1 Result
	fv.InvokePrimary(func(res Result) { cold1 = res })
	r.Sched.RunUntil(sim.Time(60 * sim.Second)) // keep-alive expires, memory buffered
	if fv.HarvestBufferBytes() != fv.InstanceBytes() {
		t.Fatalf("buffer = %d, want one instance", fv.HarvestBufferBytes())
	}
	if fv.ReclaimOps != 0 {
		t.Fatal("buffered eviction should not unplug")
	}
	// Next cold start draws from the buffer: no plug, faster VMM phase.
	var cold2 Result
	fv.InvokePrimary(func(res Result) { cold2 = res })
	r.Sched.RunUntil(sim.Time(70 * sim.Second))
	if !cold2.Cold {
		t.Fatal("expected a cold start")
	}
	if fv.HarvestBufferBytes() != 0 {
		t.Fatal("buffer not consumed")
	}
	if cold2.Phases.VMMDelay >= cold1.Phases.VMMDelay {
		t.Fatalf("buffered cold start VMM delay %v not below plug delay %v",
			cold2.Phases.VMMDelay, cold1.Phases.VMMDelay)
	}
}

func TestStaticVMNeverReclaims(t *testing.T) {
	r := newRuntime(t, 0)
	fv := addVM(r, Static, "HTML", 4)
	fv.InvokePrimary(nil)
	r.Sched.Run()
	if fv.ReclaimOps != 0 || fv.ReclaimedBytes != 0 {
		t.Fatal("static VM reclaimed memory")
	}
	// Host frames stay populated after eviction: the Figure 1
	// pathology.
	if fv.VM.PopulatedPages() == 0 {
		t.Fatal("populated pages dropped to zero")
	}
}

func TestCoLocationSharedVM(t *testing.T) {
	// Figure 9 setup: CNN and HTML instances in one VM (equal memory
	// limits).
	r := newRuntime(t, 0)
	html := workload.ByName("HTML")
	fv := r.AddVM(VMConfig{
		Name: "shared-vm", Kind: Squeezy, Fn: workload.ByName("Cnn"), N: 6,
		CoFns: []*workload.Function{html},
	})
	var resCnn, resHTML Result
	fv.InvokePrimary(func(res Result) { resCnn = res })
	fv.Invoke(html, func(res Result) { resHTML = res })
	r.Sched.RunUntil(sim.Time(30 * sim.Second))
	if resCnn.Dropped || resHTML.Dropped {
		t.Fatal("co-located requests failed")
	}
	if fv.Latencies["Cnn"].N() != 1 || fv.Latencies["HTML"].N() != 1 {
		t.Fatal("per-function latency tracking broken")
	}
	// Idle instances are function-specific: an HTML request does not
	// reuse a CNN instance.
	var second Result
	fv.Invoke(html, func(res Result) { second = res })
	r.Sched.RunUntil(sim.Time(60 * sim.Second))
	if second.Cold {
		t.Fatal("HTML request did not reuse the HTML instance")
	}
}

func TestReclaimThroughputMetric(t *testing.T) {
	r := newRuntime(t, 0)
	fv := addVM(r, Squeezy, "HTML", 2)
	fv.InvokePrimary(nil)
	r.Sched.Run()
	if tp := fv.ReclaimThroughputMiBs(); tp <= 0 {
		t.Fatalf("throughput = %v", tp)
	}
}

func TestMicroVMColdStart(t *testing.T) {
	s := sim.NewScheduler()
	host := hostmem.New(0)
	cost := costmodel.Default()
	fn := workload.ByName("HTML")
	var phases Phases
	var footprint int64
	ColdStart1to1(s, host, cost, fn, func(p Phases, fp int64) { phases, footprint = p, fp })
	s.Run()
	if phases.VMMDelay != sim.Duration(cost.MicroVMBoot) {
		t.Fatalf("boot = %v", phases.VMMDelay)
	}
	if phases.Total() <= sim.Duration(cost.MicroVMBoot) {
		t.Fatal("phases missing")
	}
	// Footprint covers guest OS + files + anon.
	min := fn.GuestOSBytes + fn.FileSharedBytes + fn.AnonBytes
	if footprint < min {
		t.Fatalf("footprint %s below expected %s", units.HumanBytes(footprint), units.HumanBytes(min))
	}
}

func TestN1CheaperThan1to1(t *testing.T) {
	// §6.3 headline: N:1 cold start ≈1.6x faster, 1:1 footprint ≈2.53x
	// larger. Verify direction for every function.
	for _, fn := range workload.Functions() {
		fn := fn
		t.Run(fn.Name, func(t *testing.T) {
			// 1:1.
			s := sim.NewScheduler()
			host := hostmem.New(0)
			var p11 Phases
			var fp11 int64
			ColdStart1to1(s, host, costmodel.Default(), fn, func(p Phases, fp int64) { p11, fp11 = p, fp })
			s.Run()

			// N:1 on a warmed Squeezy VM (shared deps already cached).
			r := newRuntime(t, 0)
			fv := r.AddVM(VMConfig{Name: "vm", Kind: Squeezy, Fn: fn, N: 4, KeepAlive: 5 * sim.Second})
			fv.InvokePrimary(nil) // warm the page cache
			r.Sched.RunUntil(sim.Time(60 * sim.Second))
			popBefore := fv.VM.PopulatedPages()
			var pN1 Phases
			var fpN1 int64
			fv.InvokePrimary(func(res Result) {
				pN1 = res.Phases
				// Footprint delta measured at completion, before the
				// keep-alive eviction releases the frames again.
				fpN1 = units.PagesToBytes(fv.VM.PopulatedPages() - popBefore)
			})
			r.Sched.RunUntil(sim.Time(120 * sim.Second))

			if pN1.Total() >= p11.Total() {
				t.Fatalf("N:1 cold start %v not faster than 1:1 %v", pN1.Total(), p11.Total())
			}
			if fpN1 <= 0 || fp11 <= fpN1 {
				t.Fatalf("1:1 footprint %s not larger than N:1 %s",
					units.HumanBytes(fp11), units.HumanBytes(fpN1))
			}
		})
	}
}
