package faas

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"

	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/cpu"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/vmm"
	"squeezy/internal/workload"
)

// BackendKind selects the memory-elasticity mechanism of an N:1 VM.
type BackendKind int

// Backends.
const (
	// Static is an over-provisioned VM sized for N instances up front;
	// no plugging or reclamation ever happens (Figure 1's baseline).
	Static BackendKind = iota
	// VirtioMem resizes with the vanilla virtio-mem driver.
	VirtioMem
	// Squeezy resizes with Squeezy partitions.
	Squeezy
	// Harvest is virtio-mem plus the HarvestVM optimizations:
	// per-VM slack buffers and proactive reclamation.
	Harvest
)

// String names the backend as the paper's figures do.
func (k BackendKind) String() string {
	switch k {
	case Static:
		return "static"
	case VirtioMem:
		return "virtio-mem"
	case Squeezy:
		return "squeezy"
	case Harvest:
		return "harvestvm-opts"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// Phases is the cold-start latency breakdown of Figure 11a.
type Phases struct {
	// VMMDelay is microVM boot (1:1) or memory plug latency (N:1).
	VMMDelay sim.Duration
	// MemWait is time spent queued for host memory (zero when memory
	// is abundant).
	MemWait       sim.Duration
	ContainerInit sim.Duration
	FuncInit      sim.Duration
	Exec          sim.Duration
}

// Total returns the end-to-end cold start latency.
func (p Phases) Total() sim.Duration {
	return p.VMMDelay + p.MemWait + p.ContainerInit + p.FuncInit + p.Exec
}

// Result is the outcome of one request.
type Result struct {
	Fn      *workload.Function
	Arrival sim.Time
	Done    sim.Time
	Latency sim.Duration
	Cold    bool
	Dropped bool
	// Failed marks an injected failure: the boot never produced an
	// instance, or the instance crashed mid-execution. Unlike Dropped
	// (resources exhausted), the work itself broke.
	Failed bool
	Phases Phases // populated for cold starts
}

// Completion is a compact record for time-series analyses (Figure 9).
type Completion struct {
	At      sim.Time
	Latency sim.Duration
	Fn      string
	Cold    bool
}

type instState int

const (
	instStarting instState = iota
	instBusy
	instIdle
	instEvicting
)

// Instance is one function container inside an N:1 VM (or the single
// container of a 1:1 microVM).
type Instance struct {
	fv        *FuncVM
	fn        *workload.Function
	proc      *guestos.Process
	state     instState
	idleSince sim.Time
	kaEvent   sim.Event
}

// request tracks one invocation through the dispatch queue.
type request struct {
	fn      *workload.Function
	arrival sim.Time
	onDone  func(Result)

	state      reqState
	grant      *Grant
	fromBuffer bool     // served from the HarvestVM slack buffer
	granted    sim.Time // when memory was granted
	memWaited  sim.Duration
	retries    int // OOM-retry attempts (movable backends)
	// detached marks a scale-up whose triggering request was served by
	// a warm instance while its grant was still queued. The scale-up
	// proceeds — the instance is provisioned into the warm pool, as the
	// agent already committed to creating it — but the request itself
	// must not run or complete a second time.
	detached bool
	// done marks a request that has delivered its Result (or was
	// cancelled); a done request can never be cancelled or completed
	// again.
	done bool
}

type reqState int

const (
	reqQueued reqState = iota
	reqAcquiring
	reqStarted // removed from queue
)

// VMConfig sizes one N:1 FuncVM.
type VMConfig struct {
	Name string
	Kind BackendKind
	// Fn is the primary function; its memory limit sets the partition
	// (and plug) size. Other functions with the same limit may also be
	// invoked on this VM (the Figure 9 co-location setup).
	Fn *workload.Function
	// CoFns lists additional functions that will run on this VM; their
	// file dependencies are accounted into the shared page cache
	// sizing. They must have the same memory limit as Fn.
	CoFns []*workload.Function
	// N is the concurrency factor: max concurrent instances.
	N int
	// VCPUs overrides the VM's vCPU count; 0 derives it from the CPU
	// shares and concurrency factor (§5.1).
	VCPUs float64
	// KeepAlive is the idle window before eviction; the paper uses 2
	// minutes (§6.2).
	KeepAlive sim.Duration
	// PinReclaim gives reclaim kernel threads a dedicated vCPU
	// (§6.1.2); without it they contend with instances (Figure 9).
	PinReclaim bool
	// HarvestBufferBytes is the slack buffer cap for the Harvest
	// backend.
	HarvestBufferBytes int64
	// Recycle, when non-nil, supplies recycled arena storage for the
	// VM's guest kernel (Runtime.AddVM injects the runtime's recycler
	// when this is unset). Release the kernel with FuncVM.Release once
	// the VM is dead.
	Recycle *guestos.Recycler
	// LeanMetrics skips the per-request Completions log and the
	// per-function Latencies samples, both of which grow with request
	// count. Bounded-memory fleet replays (cluster sketch mode) set it:
	// latencies there aggregate in the cluster's reservoir samples, and
	// nothing per-VM may scale with invocations. Off by default —
	// the single-VM experiments (fig9, fig10) read both records.
	LeanMetrics bool
}

// sizes derives the block-aligned memory geometry of a VM with this
// config: per-instance size, kernel boot span (guest OS plus a fixed
// working pad), and the shared page cache (rootfs/deps of all
// co-located functions plus 25% headroom). NewFuncVM builds the VM
// from exactly these numbers and BootFootprintBytes predicts its boot
// commit from them, so the admission estimate cannot drift from the
// real boot cost.
func (cfg VMConfig) sizes() (instBytes, bootBytes, sharedBytes int64) {
	instBytes = units.AlignUp(cfg.Fn.MemoryLimit, units.BlockSize)
	bootBytes = units.AlignUp(cfg.Fn.GuestOSBytes+64*units.MiB, units.BlockSize)
	sharedNeed := cfg.Fn.FileSharedBytes
	for _, co := range cfg.CoFns {
		sharedNeed += co.FileSharedBytes
	}
	sharedBytes = units.AlignUp(sharedNeed*5/4, units.BlockSize)
	return instBytes, bootBytes, sharedBytes
}

// BootFootprintBytes returns the host memory a VM with this config
// commits at boot, before serving any request: kernel boot memory plus
// the shared page cache backing, and — for the Static backend — the
// fully-onlined movable span. Dispatchers use it to avoid booting a VM
// on a host that cannot back it (NewFuncVM panics in that case).
func (cfg VMConfig) BootFootprintBytes() int64 {
	instBytes, boot, shared := cfg.sizes()
	if cfg.Kind == Static {
		return boot + int64(cfg.N)*instBytes + shared
	}
	return boot + shared
}

// FaultInjector is the host's fault-injection window state, consulted
// at decision points (fault.Injector implements it). FailCold and
// CrashExec are probabilistic draws from the host's deterministic
// decision stream; ReclaimStall and ReclaimFraction are passed through
// to the reclaim backends, whose FaultHooks interfaces this one
// subsumes.
type FaultInjector interface {
	FailCold() bool
	CrashExec() bool
	ReclaimStall() sim.Duration
	ReclaimFraction() float64
}

// FuncVM is one N:1 VM with its in-guest agent state.
type FuncVM struct {
	Cfg    VMConfig
	Sched  *sim.Scheduler
	Broker *Broker
	VM     *vmm.VM
	K      *guestos.Kernel

	sq   *core.Manager
	vmem *virtiomem.Driver
	// obs records the host's cold-start phases and reclaim outcomes; nil
	// when tracing is off (the common case — every use is nil-guarded).
	obs *obs.Recorder
	// faults injects boot failures and crashes; nil when fault
	// injection is off (the common case — every use is nil-guarded).
	faults FaultInjector

	instBytes int64 // block-aligned per-instance memory
	instances map[*Instance]struct{}
	idle      []*Instance // oldest-idle first
	queue     []*request
	starting  int

	harvestBuffer int64 // plugged-but-unassigned bytes (Harvest)
	rng           *rand.Rand

	// pressureNext marks the next unplug as pressure-initiated (set by
	// the runtime around pressure evictions); unplugOrigins remembers
	// the origin of each in-flight unplug in issue order, so completed
	// reclaims retire the runtime's in-flight accounting only when the
	// runtime was actually waiting on them.
	pressureNext  bool
	unplugOrigins []bool

	pumping, pumpAgain bool

	// recycle, when non-nil, is the pool this VM was built from and
	// returns to on Release; released guards against double-release
	// aliasing the shell into the pool twice.
	recycle  *Recycler
	released bool

	// Metrics.
	Latencies      map[string]*stats.Sample // per function name, ms
	Completions    []Completion
	ColdStarts     int
	WarmStarts     int
	DroppedReqs    int
	FailedReqs     int // injected boot failures and crashes
	CancelledReqs  int // requests cancelled via Ticket.TryCancel
	Evictions      int
	ReclaimedBytes int64
	ReclaimTime    sim.Duration
	ReclaimOps     int
	PlugTime       sim.Duration
	PlugOps        int
}

// NewFuncVM boots an N:1 VM on the host with the configured backend.
func NewFuncVM(sched *sim.Scheduler, host *hostmem.Host, cost *costmodel.Model, broker *Broker, cfg VMConfig) *FuncVM {
	return newFuncVM(nil, sched, host, cost, broker, nil, nil, cfg)
}

// newFuncVM is NewFuncVM with an optional recycler: the agent shell and
// the inner vmm.VM come out of the pool when possible, and the kernel
// arenas draw from the pool's guestos cache. Every observable field is
// (re-)initialized here, so a recycled FuncVM is indistinguishable from
// a fresh one.
func newFuncVM(rec *Recycler, sched *sim.Scheduler, host *hostmem.Host, cost *costmodel.Model, broker *Broker, recorder *obs.Recorder, faults FaultInjector, cfg VMConfig) *FuncVM {
	if cfg.N <= 0 {
		panic("faas: concurrency factor must be positive")
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 2 * sim.Minute
	}
	instBytes, bootBytes, sharedBytes := cfg.sizes()
	for _, co := range cfg.CoFns {
		if units.AlignUp(co.MemoryLimit, units.BlockSize) != instBytes {
			panic(fmt.Sprintf("faas: co-located function %s has a different memory limit", co.Name))
		}
	}
	vcpus := cfg.VCPUs
	if vcpus <= 0 {
		vcpus = cfg.Fn.CPUShares * float64(cfg.N)
	}
	if vcpus < 1 {
		vcpus = 1
	}
	var vm *vmm.VM
	var fv *FuncVM
	if rec != nil {
		vm = rec.takeVM(cfg.Name, sched, cost, host, vcpus)
		fv = rec.takeFuncVM()
	}
	if vm == nil {
		vm = vmm.New(cfg.Name, sched, cost, host, vcpus)
	}
	if cfg.PinReclaim {
		vm.PinReclaimThreads()
	}

	h := fnv.New64a()
	h.Write([]byte(cfg.Name))
	if fv == nil {
		fv = &FuncVM{
			instances: make(map[*Instance]struct{}),
			Latencies: make(map[string]*stats.Sample),
		}
	} else {
		clear(fv.instances)
		clear(fv.Latencies)
		clear(fv.idle)
		fv.idle = fv.idle[:0]
		clear(fv.queue)
		fv.queue = fv.queue[:0]
		fv.Completions = fv.Completions[:0]
		fv.unplugOrigins = fv.unplugOrigins[:0]
		fv.starting = 0
		fv.harvestBuffer = 0
		fv.pressureNext = false
		fv.pumping, fv.pumpAgain = false, false
		fv.sq, fv.vmem = nil, nil
		fv.ColdStarts, fv.WarmStarts, fv.DroppedReqs, fv.Evictions = 0, 0, 0, 0
		fv.FailedReqs, fv.CancelledReqs = 0, 0
		fv.ReclaimedBytes, fv.ReclaimTime, fv.ReclaimOps = 0, 0, 0
		fv.PlugTime, fv.PlugOps = 0, 0
	}
	fv.Cfg = cfg
	fv.Sched = sched
	fv.Broker = broker
	fv.VM = vm
	fv.obs = recorder
	fv.faults = faults
	fv.instBytes = instBytes
	fv.rng = rand.New(rand.NewPCG(h.Sum64(), 0x5a5a))
	fv.recycle = rec
	fv.released = false

	switch cfg.Kind {
	case Squeezy:
		fv.K = guestos.NewKernel(vm, guestos.Config{
			BootBytes:           bootBytes,
			MovableBytes:        0,
			KernelResidentBytes: cfg.Fn.GuestOSBytes,
			Recycle:             cfg.Recycle,
		})
		fv.sq = core.NewManager(fv.K, core.Config{
			PartitionBytes: instBytes,
			Concurrency:    cfg.N,
			SharedBytes:    sharedBytes,
		})
		fv.sq.Obs = recorder
		if faults != nil {
			fv.sq.Faults = faults
		}
	default:
		// Static, VirtioMem and Harvest back instances from
		// ZONE_MOVABLE; the span covers N instances plus the shared
		// page cache.
		movable := int64(cfg.N)*instBytes + sharedBytes
		fv.K = guestos.NewKernel(vm, guestos.Config{
			BootBytes:           bootBytes,
			MovableBytes:        movable,
			KernelResidentBytes: cfg.Fn.GuestOSBytes,
			Recycle:             cfg.Recycle,
		})
		if cfg.Kind == Static {
			fv.K.OnlineAllMovable()
		} else {
			fv.vmem = virtiomem.New(fv.K)
			fv.vmem.Obs = recorder
			if faults != nil {
				fv.vmem.Faults = faults
			}
			// The shared page cache needs backing from the start.
			fv.vmem.Plug(sharedBytes, func(plugged int64) {
				if plugged < sharedBytes {
					panic("faas: host cannot back the shared page cache")
				}
			})
		}
	}
	return fv
}

// Release retires the VM's guest-kernel arenas into the recycler it
// was configured with, and — when the FuncVM itself was built through a
// faas.Recycler — returns the inner vmm.VM and the agent shell to that
// pool. The VM must be dead: nothing may touch it afterwards. Release
// is idempotent; repeated calls are no-ops.
func (fv *FuncVM) Release() {
	if fv.released {
		return
	}
	fv.released = true
	fv.K.Release()
	if fv.recycle != nil {
		fv.recycle.putVM(fv.VM)
		fv.recycle.putFuncVM(fv)
	}
}

// InstanceBytes returns the block-aligned per-instance memory size.
func (fv *FuncVM) InstanceBytes() int64 { return fv.instBytes }

// LiveInstances returns the number of live (starting, busy or idle)
// instances.
func (fv *FuncVM) LiveInstances() int { return len(fv.instances) + fv.starting }

// IdleInstances returns the number of idle instances.
func (fv *FuncVM) IdleInstances() int { return len(fv.idle) }

// QueueLen returns requests waiting for an instance or memory.
func (fv *FuncVM) QueueLen() int { return len(fv.queue) }

// HarvestBufferBytes returns the current slack buffer (Harvest only).
func (fv *FuncVM) HarvestBufferBytes() int64 { return fv.harvestBuffer }

// Invoke submits a request for fn at the current virtual time. onDone
// may be nil.
func (fv *FuncVM) Invoke(fn *workload.Function, onDone func(Result)) {
	fv.Submit(fn, onDone)
}

// Submit is Invoke returning a Ticket for best-effort cancellation
// (used by the cluster dispatcher's hedged-dispatch first-wins
// cleanup).
func (fv *FuncVM) Submit(fn *workload.Function, onDone func(Result)) Ticket {
	req := &request{fn: fn, arrival: fv.Sched.Now(), onDone: onDone}
	fv.queue = append(fv.queue, req)
	fv.pump()
	return Ticket{fv: fv, req: req}
}

// Ticket is a handle on a submitted request for best-effort
// cancellation. The zero Ticket is valid and never cancels anything.
type Ticket struct {
	fv  *FuncVM
	req *request
}

// TryCancel withdraws the request if it has not started running:
// queued requests leave the queue, acquiring requests give their
// memory grant back. A request that reached an instance (or already
// completed) cannot be cancelled — TryCancel reports false and the
// request runs to completion as usual.
func (t Ticket) TryCancel() bool {
	req := t.req
	if req == nil || req.done {
		return false
	}
	switch req.state {
	case reqQueued:
		t.fv.removeRequest(req)
		req.done = true
		t.fv.CancelledReqs++
		t.fv.pump()
		return true
	case reqAcquiring:
		t.fv.removeRequest(req)
		if req.grant != nil {
			req.grant.Cancel()
			req.grant = nil
		}
		t.fv.starting--
		req.done = true
		t.fv.CancelledReqs++
		t.fv.pump()
		return true
	default: // reqStarted: running, boot-failing, or served warm
		return false
	}
}

// InvokePrimary submits a request for the VM's primary function.
func (fv *FuncVM) InvokePrimary(onDone func(Result)) { fv.Invoke(fv.Cfg.Fn, onDone) }

// pump dispatches queued requests: warm instances first, then cold
// starts while concurrency and memory allow.
func (fv *FuncVM) pump() {
	if fv.pumping {
		fv.pumpAgain = true
		return
	}
	fv.pumping = true
	for {
		fv.pumpAgain = false
		acted := fv.dispatchOne()
		if !acted && !fv.pumpAgain {
			break
		}
	}
	fv.pumping = false
}

func (fv *FuncVM) dispatchOne() bool {
	// Warm path: any queued request whose function has an idle
	// instance runs immediately, even if it was waiting for memory
	// (§6.2.2: delayed scale-ups fall back to already-alive instances).
	// An in-flight scale-up detaches rather than cancels: its grant
	// stays queued and the instance, once memory arrives, joins the
	// warm pool (the agent already decided the extra capacity was
	// needed) — but the request runs exactly once, here.
	for i, req := range fv.queue {
		if inst := fv.takeIdle(req.fn); inst != nil {
			fv.removeQueued(i)
			if req.state == reqAcquiring {
				req.detached = true // keep `starting` reserved for the provision
			}
			req.state = reqStarted
			fv.runWarm(inst, req)
			return true
		}
	}
	// Cold path: first plainly-queued request starts acquiring memory
	// if a concurrency slot is open.
	for _, req := range fv.queue {
		if req.state != reqQueued {
			continue
		}
		if fv.LiveInstances() >= fv.Cfg.N {
			return false
		}
		if fv.faults != nil && fv.faults.FailCold() {
			// Injected boot failure: the dispatch claims its slot and
			// burns the boot delay, then fails instead of producing an
			// instance.
			fv.removeRequest(req)
			req.state = reqStarted
			fv.starting++
			fv.failBoot(req)
			return true
		}
		fv.starting++
		req.state = reqAcquiring
		fv.acquireMemory(req)
		return true
	}
	return false
}

// failBoot models a cold dispatch whose instance boot fails: the boot
// delay elapses, then the caller gets an error Result.
func (fv *FuncVM) failBoot(req *request) {
	fv.Sched.After(fv.VM.Cost.MicroVMBoot, func() {
		fv.starting--
		fv.FailedReqs++
		if fv.obs != nil {
			fv.obs.Count("faults/boot_fails", 1)
			fv.obs.Instant("boot-fail: "+req.fn.Name, obs.CatFault)
		}
		req.done = true
		if req.onDone != nil {
			req.onDone(Result{Fn: req.fn, Arrival: req.arrival, Done: fv.Sched.Now(), Failed: true})
		}
		fv.pump()
	})
}

// crashInstance kills an instance mid-execution (injected fault): the
// instance dies, its memory is reclaimed, and the request fails. There
// is no agent-level retry — recovering from crashes is the cluster
// dispatcher's job.
func (fv *FuncVM) crashInstance(inst *Instance, req *request) {
	delete(fv.instances, inst)
	fv.K.Exit(inst.proc)
	fv.releaseInstanceMemory()
	fv.FailedReqs++
	if fv.obs != nil {
		fv.obs.Count("faults/crashes", 1)
		fv.obs.Instant("crash: "+req.fn.Name, obs.CatFault)
	}
	req.done = true
	if req.onDone != nil {
		req.onDone(Result{Fn: req.fn, Arrival: req.arrival, Done: fv.Sched.Now(), Failed: true})
	}
	fv.pump()
}

func (fv *FuncVM) removeQueued(i int) {
	fv.queue = append(fv.queue[:i], fv.queue[i+1:]...)
}

func (fv *FuncVM) removeRequest(req *request) {
	for i, r := range fv.queue {
		if r == req {
			fv.removeQueued(i)
			return
		}
	}
}

// acquireMemory obtains host memory for one instance according to the
// backend, then proceeds to plugAndStart.
func (fv *FuncVM) acquireMemory(req *request) {
	switch fv.Cfg.Kind {
	case Static:
		req.granted = fv.Sched.Now()
		fv.startCold(req)
	case Harvest:
		if fv.harvestBuffer >= fv.instBytes {
			// Plugged slack absorbs the scale-up instantly — the
			// HarvestVM buffering benefit.
			fv.harvestBuffer -= fv.instBytes
			req.fromBuffer = true
			req.granted = fv.Sched.Now()
			fv.startCold(req)
			return
		}
		fv.acquireViaBroker(req)
	default:
		fv.acquireViaBroker(req)
	}
}

func (fv *FuncVM) acquireViaBroker(req *request) {
	pages := units.BytesToPages(fv.instBytes)
	g := fv.Broker.Acquire(pages, func(g *Grant) {
		req.grant = g
		req.granted = fv.Sched.Now()
		req.memWaited = req.granted.Sub(req.arrival)
		if fv.obs != nil && req.memWaited > 0 {
			fv.obs.SpanAt("cold/memwait: "+req.fn.Name, obs.CatInvoke,
				req.arrival, req.memWaited)
		}
		fv.startCold(req)
	})
	if !g.Granted() {
		// Still queued at the broker: record the grant so the request's
		// scale-up state is complete while it waits (the issue callback
		// reassigns the same grant). Detached scale-ups keep it queued
		// on purpose — see dispatchOne's warm path.
		req.grant = g
	}
}

// startCold removes the request from the queue and runs the scale-up
// workflow: plug, spawn, container init, function init, execution.
func (fv *FuncVM) startCold(req *request) {
	fv.removeRequest(req)
	req.state = reqStarted
	plugStart := fv.Sched.Now()
	afterPlug := func(ok bool) {
		if !ok {
			if req.detached {
				// The triggering request already ran warm; abandon the
				// provision instead of re-queueing a request that must
				// not run again.
				fv.abandonProvision(req)
				return
			}
			// Transient: an in-flight unplug still owns the partition
			// or the host raced us. Retry shortly; drop only after
			// repeated failures.
			if fv.retryCold(req) {
				return
			}
			fv.failRequest(req)
			return
		}
		if req.grant != nil {
			req.grant.Consume()
			req.grant = nil
		}
		fv.PlugOps++
		fv.PlugTime += fv.Sched.Now().Sub(plugStart)
		fv.spawnInstance(req, fv.Sched.Now().Sub(plugStart))
	}
	switch fv.Cfg.Kind {
	case Static:
		fv.spawnInstance(req, 0)
	case Squeezy:
		fv.sq.Plug(1, func(n int) { afterPlug(n == 1) })
	case VirtioMem, Harvest:
		if req.fromBuffer {
			// Served from the plugged slack buffer: no plug needed.
			fv.spawnInstance(req, 0)
			return
		}
		fv.vmem.Plug(fv.instBytes, func(plugged int64) {
			// A long-running guest's allocator state is history-
			// dependent: allocations spread over all online blocks
			// rather than packing the newest ones. Re-scrambling the
			// free lists after each plug models that entropy; without
			// it the LIFO buddy would keep fresh blocks pristine and
			// make vanilla unplug artificially cheap.
			fv.K.ScrambleFreeLists(fv.K.Movable, fv.rng)
			// A partial plug is not fatal on the shared-movable
			// backends: earlier partial unplugs leave extra blocks
			// online (§6.2.2 — timeouts force virtio-mem to keep the
			// maximum memory), and the instance allocates from the
			// whole zone.
			afterPlug(true)
		})
	}
}

// spawnInstance creates the container process and walks the cold-start
// phases.
func (fv *FuncVM) spawnInstance(req *request, vmmDelay sim.Duration) {
	inst := &Instance{fv: fv, fn: req.fn, state: instStarting}
	inst.proc = fv.K.Spawn(req.fn.Name)
	phases := Phases{VMMDelay: vmmDelay, MemWait: req.memWaited}

	begin := func() {
		fv.starting--
		fv.instances[inst] = struct{}{}
		if req.detached {
			fv.runProvisionPhases(inst)
			return
		}
		fv.runColdPhases(inst, req, phases)
	}
	if fv.Cfg.Kind == Squeezy {
		fv.sq.Attach(inst.proc, func(*core.Partition) { begin() })
		return
	}
	begin()
}

// runProvisionPhases boots a detached scale-up's instance into the
// warm pool: container init and function init run as in a cold start,
// but there is no request to execute — the instance idles, ready for
// the next invocation (or for keep-alive eviction).
func (fv *FuncVM) runProvisionPhases(inst *Instance) {
	fn := inst.fn
	k := fv.K
	rootfs := k.File(fn.Name+"/rootfs", fn.FileSharedBytes)
	fileWork, okFile := k.TouchFile(inst.proc, rootfs, fn.FileSharedBytes)
	privWork, okPriv := k.TouchAnon(inst.proc, fn.FilePrivateBytes, guestos.HugeOrder)
	if !okFile || !okPriv {
		fv.abortProvision(inst)
		return
	}
	fv.VM.VCPUs.Submit(fn.ContainerInitCPU+fileWork+privWork, cpu.Config{
		Name: fn.Name + "/container", Class: "container", Weight: 1, Cap: 1,
		OnDone: func() {
			initWork, ok := k.TouchAnon(inst.proc, fn.InitAnonBytes(), guestos.HugeOrder)
			if !ok {
				fv.abortProvision(inst)
				return
			}
			fv.VM.VCPUs.Submit(fn.FuncInitCPU+initWork, cpu.Config{
				Name: fn.Name + "/init", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
				OnDone: func() {
					// First execution warms the instance (touching its
					// exec footprint), exactly as the request would
					// have — the work was already committed when the
					// scale-up was issued; only the completion event
					// belongs to the warm instance that served it.
					execWork, ok := k.TouchAnon(inst.proc, fn.ExecAnonBytes(), guestos.HugeOrder)
					if !ok {
						fv.abortProvision(inst)
						return
					}
					fv.VM.VCPUs.Submit(fn.ExecCPU+execWork, cpu.Config{
						Name: fn.Name + "/exec", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
						OnDone: func() { fv.idleInstance(inst) },
					})
				},
			})
		},
	})
}

// abandonProvision gives up on a detached scale-up whose plug failed.
func (fv *FuncVM) abandonProvision(req *request) {
	fv.starting--
	if req.grant != nil {
		req.grant.Cancel()
		req.grant = nil
	}
	fv.pump()
}

// abortProvision kills a provisioning instance that overran guest
// memory; unlike a request-carrying cold start there is nothing to
// retry.
func (fv *FuncVM) abortProvision(inst *Instance) {
	delete(fv.instances, inst)
	fv.K.Exit(inst.proc)
	fv.releaseInstanceMemory()
	fv.pump()
}

// idleInstance parks an instance in the warm pool and arms its
// keep-alive timer.
func (fv *FuncVM) idleInstance(inst *Instance) {
	inst.state = instIdle
	inst.idleSince = fv.Sched.Now()
	fv.idle = append(fv.idle, inst)
	inst.kaEvent = fv.Sched.After(fv.Cfg.KeepAlive, func() { fv.Evict(inst) })
	fv.pump()
}

// runColdPhases executes container init, function init and the first
// request, charging CPU and memory-touch work per phase.
func (fv *FuncVM) runColdPhases(inst *Instance, req *request, phases Phases) {
	fn := inst.fn
	k := fv.K

	// Container init: cold-touch the shared rootfs/deps plus the
	// private writable layer.
	rootfs := k.File(fn.Name+"/rootfs", fn.FileSharedBytes)
	fileWork, okFile := k.TouchFile(inst.proc, rootfs, fn.FileSharedBytes)
	privWork, okPriv := k.TouchAnon(inst.proc, fn.FilePrivateBytes, guestos.HugeOrder)
	if !okFile || !okPriv {
		fv.oomKill(inst, req)
		return
	}
	containerStart := fv.Sched.Now()
	fv.VM.VCPUs.Submit(fn.ContainerInitCPU+fileWork+privWork, cpu.Config{
		Name: fn.Name + "/container", Class: "container", Weight: 1, Cap: 1,
		OnDone: func() {
			phases.ContainerInit = fv.Sched.Now().Sub(containerStart)
			if fv.obs != nil {
				fv.obs.Span("cold/container: "+fn.Name, obs.CatInvoke, containerStart)
			}

			// Function init: runtime + model heap.
			initWork, ok := k.TouchAnon(inst.proc, fn.InitAnonBytes(), guestos.HugeOrder)
			if !ok {
				fv.oomKill(inst, req)
				return
			}
			initStart := fv.Sched.Now()
			fv.VM.VCPUs.Submit(fn.FuncInitCPU+initWork, cpu.Config{
				Name: fn.Name + "/init", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
				OnDone: func() {
					phases.FuncInit = fv.Sched.Now().Sub(initStart)
					if fv.obs != nil {
						fv.obs.Span("cold/init: "+fn.Name, obs.CatInvoke, initStart)
					}

					// First execution.
					execWork, ok := k.TouchAnon(inst.proc, fn.ExecAnonBytes(), guestos.HugeOrder)
					if !ok {
						fv.oomKill(inst, req)
						return
					}
					execStart := fv.Sched.Now()
					if fv.faults != nil && fv.faults.CrashExec() {
						// Injected crash: half the execution runs, then
						// the instance dies.
						fv.VM.VCPUs.Submit((fn.ExecCPU+execWork)/2, cpu.Config{
							Name: fn.Name + "/exec", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
							OnDone: func() { fv.crashInstance(inst, req) },
						})
						return
					}
					fv.VM.VCPUs.Submit(fn.ExecCPU+execWork, cpu.Config{
						Name: fn.Name + "/exec", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
						OnDone: func() {
							phases.Exec = fv.Sched.Now().Sub(execStart)
							if fv.obs != nil {
								fv.obs.Span("cold/exec: "+fn.Name, obs.CatInvoke, execStart)
							}
							fv.ColdStarts++
							fv.completeRequest(inst, req, true, phases)
						},
					})
				},
			})
		},
	})
}

// runWarm executes a request on a kept-alive instance.
func (fv *FuncVM) runWarm(inst *Instance, req *request) {
	inst.kaEvent.Cancel()
	inst.kaEvent = sim.Event{}
	inst.state = instBusy
	fn := inst.fn
	if fv.faults != nil && fv.faults.CrashExec() {
		// Injected crash: half the execution runs, then the instance
		// dies.
		fv.VM.VCPUs.Submit(fn.WarmExecCPU/2, cpu.Config{
			Name: fn.Name + "/exec", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
			OnDone: func() { fv.crashInstance(inst, req) },
		})
		return
	}
	fv.VM.VCPUs.Submit(fn.WarmExecCPU, cpu.Config{
		Name: fn.Name + "/exec", Class: "function", Weight: fn.CPUShares, Cap: maxf(fn.CPUShares, 0.1),
		OnDone: func() {
			fv.WarmStarts++
			fv.completeRequest(inst, req, false, Phases{})
		},
	})
}

func (fv *FuncVM) completeRequest(inst *Instance, req *request, cold bool, phases Phases) {
	now := fv.Sched.Now()
	lat := now.Sub(req.arrival)
	res := Result{
		Fn: req.fn, Arrival: req.arrival, Done: now,
		Latency: lat, Cold: cold, Phases: phases,
	}
	if !fv.Cfg.LeanMetrics {
		s := fv.Latencies[req.fn.Name]
		if s == nil {
			s = &stats.Sample{}
			fv.Latencies[req.fn.Name] = s
		}
		s.Add(lat.Milliseconds())
		fv.Completions = append(fv.Completions, Completion{At: now, Latency: lat, Fn: req.fn.Name, Cold: cold})
	}

	inst.state = instIdle
	inst.idleSince = now
	fv.idle = append(fv.idle, inst)
	inst.kaEvent = fv.Sched.After(fv.Cfg.KeepAlive, func() { fv.Evict(inst) })
	req.done = true
	if req.onDone != nil {
		req.onDone(res)
	}
	fv.pump()
}

func (fv *FuncVM) failRequest(req *request) {
	fv.starting--
	fv.DroppedReqs++
	if req.grant != nil {
		req.grant.Cancel()
		req.grant = nil
	}
	req.done = true
	if req.onDone != nil {
		req.onDone(Result{Fn: req.fn, Arrival: req.arrival, Done: fv.Sched.Now(), Dropped: true})
	}
	fv.pump()
}

// oomKill handles a cold start that overran guest memory (possible on
// the shared-movable backends when concurrent scale-ups race a
// shrinking zone). The instance dies; the request retries a few times —
// the runtime prefers late execution over failure (§6.2.2) — before
// being dropped.
func (fv *FuncVM) oomKill(inst *Instance, req *request) {
	delete(fv.instances, inst)
	fv.K.Exit(inst.proc)
	fv.releaseInstanceMemory()
	if fv.retryCold(req) {
		return
	}
	fv.starting++ // failRequest decrements
	fv.failRequest(req)
}

// retryCold puts a failed cold start back at the head of the queue for
// another attempt a moment later. It reports false once the retry
// budget is exhausted.
func (fv *FuncVM) retryCold(req *request) bool {
	if req.retries >= 5 {
		return false
	}
	req.retries++
	if req.grant != nil {
		req.grant.Cancel()
		req.grant = nil
	}
	req.state = reqQueued
	req.fromBuffer = false
	fv.starting--
	fv.queue = append([]*request{req}, fv.queue...)
	fv.Sched.After(100*sim.Millisecond, func() { fv.pump() })
	return true
}

func (fv *FuncVM) takeIdle(fn *workload.Function) *Instance {
	// Most-recently-idled instance of the right function (LIFO keeps
	// the warm set minimal, letting old instances age out).
	for i := len(fv.idle) - 1; i >= 0; i-- {
		if fv.idle[i].fn == fn {
			inst := fv.idle[i]
			fv.idle = append(fv.idle[:i], fv.idle[i+1:]...)
			return inst
		}
	}
	return nil
}

// Evict kills an idle instance and reclaims its memory (scale-down,
// Figure 4 right). It is called by keep-alive expiry and by the runtime
// under host memory pressure.
func (fv *FuncVM) Evict(inst *Instance) {
	if inst.state != instIdle {
		return
	}
	for i, in := range fv.idle {
		if in == inst {
			fv.idle = append(fv.idle[:i], fv.idle[i+1:]...)
			break
		}
	}
	inst.kaEvent.Cancel()
	inst.kaEvent = sim.Event{}
	inst.state = instEvicting
	delete(fv.instances, inst)
	fv.Evictions++
	if fv.obs != nil {
		// pressureNext is still unconsumed here (releaseInstanceMemory
		// takes it below), so it tells keep-alive expiry apart from a
		// runtime pressure eviction.
		kind := "keepalive"
		if fv.pressureNext {
			kind = "pressure"
		}
		fv.obs.Count("evictions/"+kind, 1)
		fv.obs.Instant("evict/"+kind+": "+inst.fn.Name, obs.CatMemory)
	}
	fv.K.Exit(inst.proc)
	fv.releaseInstanceMemory()
	fv.pump()
}

// EvictOldestIdle evicts the longest-idle instance, returning whether
// one existed (used by pressure handling and proactive reclamation).
func (fv *FuncVM) EvictOldestIdle() bool {
	if len(fv.idle) == 0 {
		return false
	}
	fv.Evict(fv.idle[0])
	return true
}

// releaseInstanceMemory reclaims one instance's memory via the backend.
func (fv *FuncVM) releaseInstanceMemory() {
	start := fv.Sched.Now()
	pressure := fv.pressureNext
	fv.pressureNext = false
	switch fv.Cfg.Kind {
	case Static:
		return
	case Squeezy:
		fv.unplugOrigins = append(fv.unplugOrigins, pressure)
		fv.sq.Unplug(1, func(res core.UnplugResult) {
			fv.recordReclaim(res.ReclaimedBytes, res.RequestedBytes, fv.Sched.Now().Sub(start))
		})
	case VirtioMem:
		fv.unplugOrigins = append(fv.unplugOrigins, pressure)
		fv.vmem.Unplug(fv.instBytes, func(res virtiomem.UnplugResult) {
			fv.recordReclaim(res.ReclaimedBytes, res.RequestedBytes, fv.Sched.Now().Sub(start))
		})
	case Harvest:
		if fv.harvestBuffer < fv.Cfg.HarvestBufferBytes {
			// Keep the memory plugged as slack; committed host memory
			// stays tied down (the HarvestVM memory tax, Figure 10
			// right).
			fv.harvestBuffer += fv.instBytes
			return
		}
		fv.unplugOrigins = append(fv.unplugOrigins, pressure)
		fv.vmem.Unplug(fv.instBytes, func(res virtiomem.UnplugResult) {
			fv.recordReclaim(res.ReclaimedBytes, res.RequestedBytes, fv.Sched.Now().Sub(start))
		})
	}
}

// ReleaseHarvestBuffer unplugs up to bytes of the slack buffer back to
// the host (pressure response). It returns the bytes being reclaimed.
func (fv *FuncVM) ReleaseHarvestBuffer(bytes int64) int64 {
	if fv.Cfg.Kind != Harvest || fv.harvestBuffer == 0 {
		return 0
	}
	take := fv.harvestBuffer
	if bytes < take {
		take = bytes
	}
	fv.harvestBuffer -= take
	start := fv.Sched.Now()
	// Buffer releases only happen on pressure response.
	fv.unplugOrigins = append(fv.unplugOrigins, true)
	fv.vmem.Unplug(take, func(res virtiomem.UnplugResult) {
		fv.recordReclaim(res.ReclaimedBytes, res.RequestedBytes, fv.Sched.Now().Sub(start))
	})
	return take
}

func (fv *FuncVM) recordReclaim(bytes, requested int64, took sim.Duration) {
	fv.ReclaimedBytes += bytes
	fv.ReclaimTime += took
	fv.ReclaimOps++
	if fv.obs != nil {
		kind := fv.Cfg.Kind.String()
		fv.obs.Count("pages_reclaimed/"+kind, units.BytesToPages(bytes))
		if stranded := units.BytesToPages(requested - bytes); stranded > 0 {
			fv.obs.Count("pages_stranded/"+kind, stranded)
		}
	}
	// Per-VM unplugs complete in issue order, so the oldest origin
	// entry is this reclaim's. Only pressure-initiated reclaims retire
	// the runtime's in-flight accounting — a keep-alive unplug landing
	// mid-pressure must not make the runtime forget memory it is still
	// owed, or it over-evicts into an eviction storm.
	pressure := false
	if len(fv.unplugOrigins) > 0 {
		pressure = fv.unplugOrigins[0]
		fv.unplugOrigins = fv.unplugOrigins[1:]
	}
	if pressure && fv.Broker.OnReclaimed != nil {
		fv.Broker.OnReclaimed(units.BytesToPages(bytes))
	}
	fv.Broker.Pump()
}

// ReclaimThroughputMiBs returns the Figure 8 metric: MiB reclaimed per
// second of reclaim-operation time.
func (fv *FuncVM) ReclaimThroughputMiBs() float64 {
	if fv.ReclaimTime <= 0 {
		return 0
	}
	return float64(fv.ReclaimedBytes) / float64(units.MiB) / fv.ReclaimTime.Seconds()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
