package faas

import (
	"testing"

	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// TestFullLifecycleInvariants runs a few hundred requests against every
// backend and checks global conservation at the end: every request
// resolved, host memory returns to the fixed baseline after all
// keep-alives expire, and the guest kernel's invariants hold.
func TestFullLifecycleInvariants(t *testing.T) {
	for _, kind := range []BackendKind{Static, VirtioMem, Squeezy, Harvest} {
		t.Run(kind.String(), func(t *testing.T) {
			r := newRuntime(t, 0)
			fn := workload.ByName("BFS")
			fv := r.AddVM(VMConfig{
				Name: "vm", Kind: kind, Fn: fn, N: 8,
				KeepAlive:          20 * sim.Second,
				HarvestBufferBytes: units.AlignUp(fn.MemoryLimit, units.BlockSize),
			})
			done, dropped := 0, 0
			// Three waves of requests with gaps longer than keep-alive.
			for wave := 0; wave < 3; wave++ {
				base := sim.Time(wave) * sim.Time(60*sim.Second)
				for i := 0; i < 6; i++ {
					at := base + sim.Time(i)*sim.Time(400*sim.Millisecond)
					r.Sched.At(at, func() {
						fv.InvokePrimary(func(res Result) {
							done++
							if res.Dropped {
								dropped++
							}
						})
					})
				}
			}
			r.Sched.Run()
			if done != 18 {
				t.Fatalf("resolved %d of 18 requests", done)
			}
			if dropped != 0 {
				t.Fatalf("dropped %d requests with abundant memory", dropped)
			}
			if fv.LiveInstances() != 0 {
				t.Fatalf("%d instances alive after drain", fv.LiveInstances())
			}
			if err := fv.K.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Elastic backends return instance memory; only boot, the
			// shared cache and (for Harvest) the slack buffer remain.
			if kind != Static {
				baseline := int64(3)*units.GiB + fv.HarvestBufferBytes()
				if got := fv.VM.CommittedBytes(); got > baseline {
					t.Fatalf("committed %s after drain", units.HumanBytes(got))
				}
			}
		})
	}
}

// TestRuntimeDeterminism: identical seeds and schedules give identical
// latency samples.
func TestRuntimeDeterminism(t *testing.T) {
	run := func() []float64 {
		r := newRuntime(t, 2*units.GiB+6*units.GiB)
		fv := addVM(r, Squeezy, "HTML", 6)
		for i := 0; i < 20; i++ {
			at := sim.Time(i) * sim.Time(700*sim.Millisecond)
			r.Sched.At(at, func() { fv.InvokePrimary(nil) })
		}
		r.Sched.Run()
		return fv.Latencies["HTML"].Values()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("latency %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestBackendMemoryConservation: plugged == unplugged over a full churn
// cycle for the elastic backends.
func TestBackendMemoryConservation(t *testing.T) {
	for _, kind := range []BackendKind{VirtioMem, Squeezy} {
		t.Run(kind.String(), func(t *testing.T) {
			r := newRuntime(t, 0)
			fv := addVM(r, kind, "Cnn", 6)
			fv.Cfg.KeepAlive = 15 * sim.Second
			for i := 0; i < 4; i++ {
				fv.InvokePrimary(nil)
			}
			r.Sched.Run()
			if fv.Evictions != 4 {
				t.Fatalf("evictions = %d", fv.Evictions)
			}
			// virtio-mem may leak a little via partial unplugs; Squeezy
			// must reclaim exactly what it plugged.
			if kind == Squeezy && fv.ReclaimedBytes != 4*fv.InstanceBytes() {
				t.Fatalf("reclaimed %s, plugged %s",
					units.HumanBytes(fv.ReclaimedBytes), units.HumanBytes(4*fv.InstanceBytes()))
			}
			if fv.VM.PopulatedPages() > units.BytesToPages(3*units.GiB) {
				t.Fatalf("populated %d pages after drain", fv.VM.PopulatedPages())
			}
		})
	}
}
