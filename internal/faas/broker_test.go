package faas

import (
	"testing"

	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

func TestBrokerImmediateGrant(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(1 * units.GiB)
	b := NewBroker(h, s)
	granted := false
	g := b.Acquire(100, func(*Grant) { granted = true })
	if !granted || !g.Granted() {
		t.Fatal("grant not immediate with free memory")
	}
	// Reservation holds memory until consumed.
	if b.FreePages() != units.BytesToPages(1*units.GiB)-100 {
		t.Fatalf("free = %d", b.FreePages())
	}
	h.TryCommit(100)
	g.Consume()
	if b.FreePages() != units.BytesToPages(1*units.GiB)-100 {
		t.Fatalf("free after consume = %d", b.FreePages())
	}
}

func TestBrokerQueuesAndPumps(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(90)
	var pressure int64 = -1
	b.OnPressure = func(d int64) { pressure = d }
	granted := false
	b.Acquire(50, func(*Grant) { granted = true })
	if granted {
		t.Fatal("grant should queue")
	}
	if pressure <= 0 {
		t.Fatalf("pressure = %d", pressure)
	}
	h.Uncommit(60)
	b.Pump()
	if !granted {
		t.Fatal("pump did not grant")
	}
}

func TestBrokerFIFO(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(100)
	var order []int
	b.Acquire(30, func(*Grant) { order = append(order, 1) })
	b.Acquire(10, func(*Grant) { order = append(order, 2) })
	h.Uncommit(15)
	b.Pump()
	// Head needs 30; only 15 free: nobody granted (no queue jumping).
	if len(order) != 0 {
		t.Fatalf("granted out of order: %v", order)
	}
	h.Uncommit(30)
	b.Pump()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestGrantCancelQueued(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(10))
	b := NewBroker(h, s)
	h.TryCommit(10)
	g := b.Acquire(5, func(*Grant) { t.Fatal("cancelled grant fired") })
	g.Cancel()
	h.Uncommit(10)
	b.Pump()
	if b.QueuedPages() != 0 {
		t.Fatal("cancelled waiter still queued")
	}
}

func TestGrantCancelIssuedReturnsReservation(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(10))
	b := NewBroker(h, s)
	fired2 := false
	g1 := b.Acquire(8, func(*Grant) {})
	b.Acquire(8, func(*Grant) { fired2 = true })
	g1.Cancel() // returns the 8-page reservation
	if !fired2 {
		t.Fatal("cancel did not pump the queue")
	}
}

func TestConsumeTwicePanics(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(0)
	b := NewBroker(h, s)
	g := b.Acquire(5, func(*Grant) {})
	h.TryCommit(5)
	g.Consume()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Consume()
}
