package faas

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func TestBrokerImmediateGrant(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(1 * units.GiB)
	b := NewBroker(h, s)
	granted := false
	g := b.Acquire(100, func(*Grant) { granted = true })
	if !granted || !g.Granted() {
		t.Fatal("grant not immediate with free memory")
	}
	// Reservation holds memory until consumed.
	if b.FreePages() != units.BytesToPages(1*units.GiB)-100 {
		t.Fatalf("free = %d", b.FreePages())
	}
	h.TryCommit(100)
	g.Consume()
	if b.FreePages() != units.BytesToPages(1*units.GiB)-100 {
		t.Fatalf("free after consume = %d", b.FreePages())
	}
}

func TestBrokerQueuesAndPumps(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(90)
	var pressure int64 = -1
	b.OnPressure = func(d int64) { pressure = d }
	granted := false
	b.Acquire(50, func(*Grant) { granted = true })
	if granted {
		t.Fatal("grant should queue")
	}
	if pressure <= 0 {
		t.Fatalf("pressure = %d", pressure)
	}
	h.Uncommit(60)
	b.Pump()
	if !granted {
		t.Fatal("pump did not grant")
	}
}

func TestBrokerFIFO(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(100)
	var order []int
	b.Acquire(30, func(*Grant) { order = append(order, 1) })
	b.Acquire(10, func(*Grant) { order = append(order, 2) })
	h.Uncommit(15)
	b.Pump()
	// Head needs 30; only 15 free: nobody granted (no queue jumping).
	if len(order) != 0 {
		t.Fatalf("granted out of order: %v", order)
	}
	h.Uncommit(30)
	b.Pump()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestGrantCancelQueued(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(10))
	b := NewBroker(h, s)
	h.TryCommit(10)
	g := b.Acquire(5, func(*Grant) { t.Fatal("cancelled grant fired") })
	g.Cancel()
	h.Uncommit(10)
	b.Pump()
	if b.QueuedPages() != 0 {
		t.Fatal("cancelled waiter still queued")
	}
}

func TestGrantCancelIssuedReturnsReservation(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(10))
	b := NewBroker(h, s)
	fired2 := false
	g1 := b.Acquire(8, func(*Grant) {})
	b.Acquire(8, func(*Grant) { fired2 = true })
	g1.Cancel() // returns the 8-page reservation
	if !fired2 {
		t.Fatal("cancel did not pump the queue")
	}
}

// TestGrantCancelQueuedDuringEvictions cancels a queued grant while
// the pressure-driven "evictions" it triggered are still in flight:
// the reclaimed memory must flow past the cancelled waiter to the next
// one, and the cancelled callback must never fire.
func TestGrantCancelQueuedDuringEvictions(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(100)

	// Pressure handler models the runtime: schedule an async unplug
	// that frees the deficit, then pumps.
	evicting := false
	b.OnPressure = func(deficit int64) {
		if evicting {
			return
		}
		evicting = true
		s.After(sim.Second, func() {
			h.Uncommit(deficit)
			b.Pump()
		})
	}
	g1 := b.Acquire(40, func(*Grant) { t.Fatal("cancelled grant fired") })
	granted2 := false
	b.Acquire(30, func(*Grant) { granted2 = true })
	if !evicting {
		t.Fatal("queued acquire did not raise pressure")
	}
	// Cancel the head waiter mid-eviction.
	g1.Cancel()
	if b.QueuedPages() != 30 {
		t.Fatalf("queued = %d after cancel, want 30", b.QueuedPages())
	}
	s.Run()
	if !granted2 {
		t.Fatal("reclaimed memory did not reach the surviving waiter")
	}
}

// TestBrokerReentrantFromPumpCallback consumes and cancels grants from
// inside Pump-issued callbacks, including a re-entrant Acquire: the
// waiter list and reservation accounting must stay consistent.
func TestBrokerReentrantFromPumpCallback(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(100)

	var g3 *Grant
	var order []int
	b.Acquire(20, func(g *Grant) {
		order = append(order, 1)
		// Consume re-entrantly (the VM committed its memory)...
		h.TryCommit(g.pages)
		g.Consume()
		// ...cancel a grant still queued behind us...
		g3.Cancel()
		// ...and acquire again from inside the callback.
		b.Acquire(10, func(*Grant) { order = append(order, 4) })
	})
	b.Acquire(30, func(*Grant) { order = append(order, 2) })
	g3 = b.Acquire(15, func(*Grant) { t.Fatal("cancelled grant fired") })

	// Free everything: the pump must grant 1, then 2, skip the
	// cancelled 3, then the re-entrant 4.
	h.Uncommit(100)
	b.Pump()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 4 {
		t.Fatalf("grant order = %v, want [1 2 4]", order)
	}
	if b.QueuedPages() != 0 {
		t.Fatalf("queued = %d after full drain", b.QueuedPages())
	}
	// Committed 20 (consumed grant 1) + reserved 40 (grants 2 and 4).
	if got := b.FreePages(); got != 100-20-40 {
		t.Fatalf("free = %d, want %d", got, 100-60)
	}
}

// TestPumpPartialReRaisesPressure checks the stalled-scale-up fix: a
// pump that grants some waiters but leaves the head starved must
// re-raise OnPressure with the remaining deficit instead of waiting
// for the drain timer.
func TestPumpPartialReRaisesPressure(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(units.PagesToBytes(100))
	b := NewBroker(h, s)
	h.TryCommit(100)
	b.Acquire(10, func(*Grant) {})
	b.Acquire(30, func(*Grant) {})

	var raised []int64
	b.OnPressure = func(d int64) { raised = append(raised, d) }
	// Free 15: enough for the head (10), not the second (30).
	h.Uncommit(15)
	b.Pump()
	if len(raised) != 1 {
		t.Fatalf("pressure raised %d times, want 1 (partial pump)", len(raised))
	}
	// Remaining deficit: 30 queued - 5 free = 25.
	if raised[0] != 25 {
		t.Fatalf("re-raised deficit = %d, want 25", raised[0])
	}
	// A pump that grants nothing must not re-raise (no progress, the
	// drain timer owns that case).
	raised = nil
	b.Pump()
	if len(raised) != 0 {
		t.Fatalf("no-progress pump re-raised pressure %d times", len(raised))
	}
}

// TestRuntimeRetiresReclaimOnCompletion drives the real pressure path:
// a scale-up on a full host evicts an idle instance, and when the
// unplug completes the runtime's in-flight accounting must retire
// immediately — not linger until the drain timer — so follow-up
// pressure rounds see the true deficit.
func TestRuntimeRetiresReclaimOnCompletion(t *testing.T) {
	s := sim.NewScheduler()
	// Capacity = VM boot commit (256 MiB boot + 640 MiB shared cache)
	// plus exactly one 768 MiB instance: the second function's cold
	// start can only be served by evicting the first's idle instance.
	h := hostmem.New((256 + 640 + 768) * units.MiB)
	rt := NewRuntime(s, h, costmodel.Default())
	html := workload.ByName("HTML")
	bfs := workload.ByName("BFS")
	fv := rt.AddVM(VMConfig{
		Name: "vm", Kind: VirtioMem, Fn: html, CoFns: []*workload.Function{bfs},
		N: 2, KeepAlive: 5 * sim.Minute,
	})
	fv.Invoke(html, nil)
	s.RunUntil(sim.Time(20 * sim.Second)) // HTML instance now idle

	var res *Result
	fv.Invoke(bfs, func(r Result) { res = &r })
	// Run past the eviction+unplug (~1 s) but before the drain timer
	// (fires 5 s after the eviction starts).
	s.RunUntil(sim.Time(23 * sim.Second))
	if rt.ReclaimInFlightPages() != 0 {
		t.Fatalf("in-flight = %d pages after the unplug completed; accounting stuck until the drain timer",
			rt.ReclaimInFlightPages())
	}
	s.RunUntil(sim.Time(60 * sim.Second))
	if res == nil || res.Dropped {
		t.Fatalf("BFS cold start did not complete: %+v", res)
	}
	if res.Phases.MemWait <= 0 || res.Phases.MemWait > 3*sim.Second {
		t.Fatalf("mem wait = %v, want one unplug's worth (0, 3s]", res.Phases.MemWait)
	}
}

func TestConsumeTwicePanics(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(0)
	b := NewBroker(h, s)
	g := b.Acquire(5, func(*Grant) {})
	h.TryCommit(5)
	g.Consume()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Consume()
}
