package faas

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/cpu"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
	"squeezy/internal/workload"
)

// ColdStart1to1 boots a fresh microVM for fn — the 1:1 model of §6.3,
// one dedicated lightweight VM per instance, nothing shared — runs one
// cold request, and reports the Figure 11a phase breakdown plus the
// instance's host memory footprint (Figure 11b). onDone receives the
// results.
func ColdStart1to1(sched *sim.Scheduler, host *hostmem.Host, cost *costmodel.Model,
	fn *workload.Function, onDone func(Phases, int64)) {

	bootStart := sched.Now()
	sched.After(sim.Duration(cost.MicroVMBoot), func() {
		vm := vmm.New("microvm-"+fn.Name, sched, cost, host, fn.CPUShares)
		k := guestos.NewKernel(vm, guestos.Config{
			BootBytes:           units.AlignUp(fn.GuestOSBytes+64*units.MiB, units.BlockSize),
			MovableBytes:        units.AlignUp(fn.MemoryLimit, units.BlockSize),
			KernelResidentBytes: fn.GuestOSBytes,
		})
		k.OnlineAllMovable()
		phases := Phases{VMMDelay: sched.Now().Sub(bootStart)}
		proc := k.Spawn(fn.Name)

		rootfs := k.File(fn.Name+"/rootfs", fn.FileSharedBytes)
		fileWork, ok1 := k.TouchFile(proc, rootfs, fn.FileSharedBytes)
		privWork, ok2 := k.TouchAnon(proc, fn.FilePrivateBytes, guestos.HugeOrder)
		if !ok1 || !ok2 {
			panic("faas: microVM too small for container init")
		}
		containerStart := sched.Now()
		vm.VCPUs.Submit(fn.ContainerInitCPU+fileWork+privWork, cpu.Config{
			Name: "container", Class: "container", Cap: 1,
			OnDone: func() {
				phases.ContainerInit = sched.Now().Sub(containerStart)
				initWork, ok := k.TouchAnon(proc, fn.InitAnonBytes(), guestos.HugeOrder)
				if !ok {
					panic("faas: microVM too small for function init")
				}
				initStart := sched.Now()
				vm.VCPUs.Submit(fn.FuncInitCPU+initWork, cpu.Config{
					Name: "init", Class: "function", Cap: maxf(fn.CPUShares, 0.1),
					OnDone: func() {
						phases.FuncInit = sched.Now().Sub(initStart)
						execWork, ok := k.TouchAnon(proc, fn.ExecAnonBytes(), guestos.HugeOrder)
						if !ok {
							panic("faas: microVM too small for execution")
						}
						execStart := sched.Now()
						vm.VCPUs.Submit(fn.ExecCPU+execWork, cpu.Config{
							Name: "exec", Class: "function", Cap: maxf(fn.CPUShares, 0.1),
							OnDone: func() {
								phases.Exec = sched.Now().Sub(execStart)
								onDone(phases, units.PagesToBytes(vm.PopulatedPages()))
							},
						})
					},
				})
			},
		})
	})
}
