package buddy

import "fmt"

// MaxOrder is the largest allocation order (inclusive); order 10 chunks
// are 4 MiB of 4 KiB pages, matching Linux's MAX_PAGE_ORDER.
const MaxOrder = 10

// ord encoding: 0 means "not the head of a free chunk"; k+1 means "head
// of a free chunk of order k". Using 0 as the empty state lets New hand
// back a zeroed slice without an O(span) fill.
const noChunk = int8(0)

// Allocator is a buddy allocator over a contiguous page-frame span. The
// zero value is not usable; call New.
type Allocator struct {
	base   int64
	npages int64

	// ord[i] is the encoded order of the free chunk whose head is page
	// base+i (see noChunk).
	ord []int8

	// stacks[k] holds candidate heads (relative indexes) of free chunks
	// of order k. Entries are validated against ord on pop (lazy
	// deletion), so stale entries are harmless.
	stacks [MaxOrder + 1][]int64

	free int64 // pages currently free

	// Region tracking (TrackRegions): regionPages is the region size in
	// pages (0 = disabled) and regionFree[r] the free pages in region r.
	regionPages int64
	regionFree  []int64
}

// New creates an allocator spanning npages page frames starting at page
// frame number base. All pages start absent (not free): online memory by
// calling FreeRange.
func New(base, npages int64) *Allocator {
	if npages <= 0 {
		panic(fmt.Sprintf("buddy: non-positive span %d", npages))
	}
	return &Allocator{base: base, npages: npages, ord: make([]int8, npages)}
}

// Reset re-dimensions the allocator to a fresh [base, base+npages)
// span while reusing its storage: the ord span is re-zeroed in place
// when capacity allows (growing only when the new span is larger),
// stacks are truncated, and region tracking — if it was enabled —
// survives at the same region size with cleared counters. All pages
// start absent again, exactly as after New, so a reset allocator
// behaves identically to a freshly constructed one.
func (a *Allocator) Reset(base, npages int64) {
	if npages <= 0 {
		panic(fmt.Sprintf("buddy: non-positive span %d", npages))
	}
	a.base = base
	a.npages = npages
	if int64(cap(a.ord)) >= npages {
		// Restore the all-zero state. Every nonzero ord position is the
		// head of a free chunk, and every head was recorded in a stack
		// (pop and coalescing only ever clear positions), so zeroing the
		// stack entries restores a sparse span without touching the
		// untouched bulk; heavily-churned spans whose stacks grew past
		// an eighth of the extent fall back to one memclr. Both leave
		// the entire backing array zero, so any re-slice within cap
		// starts clean.
		var entries int64
		for k := range a.stacks {
			entries += int64(len(a.stacks[k]))
		}
		if entries <= int64(len(a.ord))/8 {
			for k := range a.stacks {
				for _, i := range a.stacks[k] {
					a.ord[i] = noChunk
				}
			}
		} else {
			clear(a.ord)
		}
		a.ord = a.ord[:npages]
	} else {
		a.ord = make([]int8, npages)
	}
	for k := range a.stacks {
		a.stacks[k] = a.stacks[k][:0]
	}
	a.free = 0
	if rp := a.regionPages; rp != 0 {
		regions := (npages + rp - 1) / rp
		if int64(cap(a.regionFree)) >= regions {
			a.regionFree = a.regionFree[:regions]
			clear(a.regionFree)
		} else {
			a.regionFree = make([]int64, regions)
		}
	}
}

// TrackRegions enables per-region free-page counters at the given
// region size, which must be a power-of-two multiple of the largest
// chunk size (so no chunk ever straddles a region boundary) and must be
// enabled before any pages are freed into the allocator.
func (a *Allocator) TrackRegions(regionPages int64) {
	if regionPages < 1<<MaxOrder || regionPages&(regionPages-1) != 0 {
		panic(fmt.Sprintf("buddy: bad region size %d", regionPages))
	}
	if a.free != 0 {
		panic("buddy: TrackRegions on a populated allocator")
	}
	a.regionPages = regionPages
	a.regionFree = make([]int64, (a.npages+regionPages-1)/regionPages)
}

// Base returns the first page frame number of the span.
func (a *Allocator) Base() int64 { return a.base }

// Span returns the number of page frames the allocator covers.
func (a *Allocator) Span() int64 { return a.npages }

// NrFree returns the number of free pages.
func (a *Allocator) NrFree() int64 { return a.free }

// Contains reports whether pfn lies within the allocator's span.
func (a *Allocator) Contains(pfn int64) bool {
	return pfn >= a.base && pfn < a.base+a.npages
}

// creditRegion adjusts the free counter of the region containing
// relative page i.
func (a *Allocator) creditRegion(i, delta int64) {
	if a.regionPages != 0 {
		a.regionFree[i/a.regionPages] += delta
	}
}

// Alloc removes a free chunk of 2^order pages and returns its first page
// frame number. ok is false when no chunk of that size can be carved
// (external fragmentation or exhaustion).
func (a *Allocator) Alloc(order int) (pfn int64, ok bool) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: bad order %d", order))
	}
	for k := order; k <= MaxOrder; k++ {
		head, found := a.pop(k)
		if !found {
			continue
		}
		// Split down to the requested order, pushing upper halves.
		for j := k; j > order; j-- {
			half := head + 1<<(j-1)
			a.push(half, j-1)
		}
		a.free -= 1 << order
		a.creditRegion(head, -(1 << order))
		return a.base + head, true
	}
	return 0, false
}

// Free returns a chunk of 2^order pages starting at pfn to the
// allocator, coalescing with free buddies. The chunk must have been
// handed out by Alloc at the same order, or be new memory coming online
// (via FreeRange, which calls Free with aligned fragments). Freeing a
// page that is already free corrupts the allocator and panics when
// detectable.
func (a *Allocator) Free(pfn int64, order int) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: bad order %d", order))
	}
	i := pfn - a.base
	if i < 0 || i+(1<<order) > a.npages {
		panic(fmt.Sprintf("buddy: Free(%d, %d) outside span [%d,%d)", pfn, order, a.base, a.base+a.npages))
	}
	if i&((1<<order)-1) != 0 {
		panic(fmt.Sprintf("buddy: Free(%d, %d) misaligned", pfn, order))
	}
	if a.ord[i] != noChunk {
		panic(fmt.Sprintf("buddy: double free of pfn %d", pfn))
	}
	a.creditRegion(i, 1<<order)
	k := order
	for k < MaxOrder {
		bud := i ^ (1 << k)
		if bud+(1<<k) > a.npages || a.ord[bud] != int8(k)+1 {
			break
		}
		// Detach the buddy (its stack entry goes stale) and merge.
		a.ord[bud] = noChunk
		if bud < i {
			i = bud
		}
		k++
	}
	a.push(i, k)
	a.free += 1 << order
}

// FreeRange onlines an arbitrary (not necessarily aligned or power-of-
// two) range of pages, decomposing it into maximal aligned chunks.
func (a *Allocator) FreeRange(pfn, count int64) {
	i := pfn
	remaining := count
	for remaining > 0 {
		k := MaxOrder
		for k > 0 && ((i-a.base)&((1<<k)-1) != 0 || int64(1)<<k > remaining) {
			k--
		}
		a.Free(i, k)
		i += 1 << k
		remaining -= 1 << k
	}
}

// IsolateRange removes every free chunk lying entirely inside
// [pfn, pfn+count) from the allocator, as the MIGRATE_ISOLATE phase of
// memory offlining does. It returns the number of pages isolated. Pages
// in the range that are currently allocated are untouched — the caller
// must migrate and FreeRange-return them elsewhere, or hand them back
// with Free after the offline is aborted.
//
// The range must be aligned such that no free chunk straddles its
// boundary; hotplug blocks (128 MiB, 4 MiB-aligned) always satisfy this
// for MaxOrder 10. IsolateRange panics if a straddling chunk is found.
func (a *Allocator) IsolateRange(pfn, count int64) int64 {
	start := pfn - a.base
	end := start + count
	if start < 0 || end > a.npages {
		panic(fmt.Sprintf("buddy: IsolateRange(%d,%d) outside span", pfn, count))
	}
	var isolated int64
	for i := start; i < end; i++ {
		// A fully-occupied (or offline) region has nothing to isolate.
		if a.regionPages != 0 && i%a.regionPages == 0 {
			for i+a.regionPages <= end && a.regionFree[i/a.regionPages] == 0 {
				i += a.regionPages
			}
			if i >= end {
				break
			}
		}
		k := a.ord[i]
		if k == noChunk {
			continue
		}
		sz := int64(1) << (k - 1)
		if i+sz > end {
			panic(fmt.Sprintf("buddy: free chunk at %d order %d straddles isolation boundary", a.base+i, k-1))
		}
		a.ord[i] = noChunk // stack entry goes stale
		isolated += sz
		a.free -= sz
		a.creditRegion(i, -sz)
		i += sz - 1
	}
	return isolated
}

// FreeInRange returns the number of free pages inside [pfn, pfn+count)
// without modifying the allocator. Region-aligned ranges are answered
// from the region counters in O(regions).
func (a *Allocator) FreeInRange(pfn, count int64) int64 {
	start := pfn - a.base
	end := start + count
	if start < 0 {
		start = 0
	}
	if end > a.npages {
		end = a.npages
	}
	if rp := a.regionPages; rp != 0 && start%rp == 0 && (end%rp == 0 || end == a.npages) {
		var n int64
		for r := start / rp; r*rp < end; r++ {
			n += a.regionFree[r]
		}
		return n
	}
	// A free chunk covering [start, ...) may have its head before start;
	// chunks are order-aligned, so scanning from the max-order boundary
	// below start finds every chunk that can overlap the range.
	scan := start &^ ((1 << MaxOrder) - 1)
	var n int64
	for i := scan; i < end; i++ {
		k := a.ord[i]
		if k == noChunk {
			continue
		}
		sz := int64(1) << (k - 1)
		lo, hi := i, i+sz
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			n += hi - lo
		}
		i += sz - 1
	}
	return n
}

// FreeChunkAt reports whether pfn is the head of a free chunk, and if
// so that chunk's order. Interior pages of a free chunk, allocated
// pages, and absent pages all return ok=false.
func (a *Allocator) FreeChunkAt(pfn int64) (order int, ok bool) {
	i := pfn - a.base
	if i < 0 || i >= a.npages {
		return 0, false
	}
	if k := a.ord[i]; k != noChunk {
		return int(k) - 1, true
	}
	return 0, false
}

// LargestFreeOrder returns the highest order with at least one free
// chunk, or -1 if the allocator is empty.
func (a *Allocator) LargestFreeOrder() int {
	for k := MaxOrder; k >= 0; k-- {
		for _, head := range a.stacks[k] {
			if a.ord[head] == int8(k)+1 {
				return k
			}
		}
	}
	return -1
}

func (a *Allocator) push(i int64, order int) {
	a.ord[i] = int8(order) + 1
	a.stacks[order] = append(a.stacks[order], i)
}

func (a *Allocator) pop(order int) (int64, bool) {
	st := a.stacks[order]
	for len(st) > 0 {
		head := st[len(st)-1]
		st = st[:len(st)-1]
		if a.ord[head] == int8(order)+1 {
			a.ord[head] = noChunk
			a.stacks[order] = st
			return head, true
		}
	}
	a.stacks[order] = st
	return 0, false
}

// CheckInvariants validates internal consistency — the free count
// matches the chunks recorded in ord, no free chunk overlaps another,
// every free chunk is order-aligned, and the region counters (when
// enabled) agree with a fresh count. It is O(span) and intended for
// tests.
func (a *Allocator) CheckInvariants() error {
	var counted int64
	regions := make([]int64, len(a.regionFree))
	i := int64(0)
	for i < a.npages {
		k := a.ord[i]
		if k == noChunk {
			i++
			continue
		}
		sz := int64(1) << (k - 1)
		if i&(sz-1) != 0 {
			return fmt.Errorf("chunk at %d order %d misaligned", a.base+i, k-1)
		}
		if i+sz > a.npages {
			return fmt.Errorf("chunk at %d order %d overruns span", a.base+i, k-1)
		}
		for j := i + 1; j < i+sz; j++ {
			if a.ord[j] != noChunk {
				return fmt.Errorf("nested chunk head at %d inside chunk at %d", a.base+j, a.base+i)
			}
		}
		counted += sz
		if a.regionPages != 0 {
			regions[i/a.regionPages] += sz
		}
		i += sz
	}
	if counted != a.free {
		return fmt.Errorf("free count %d != chunks total %d", a.free, counted)
	}
	for r, want := range regions {
		if a.regionFree[r] != want {
			return fmt.Errorf("region %d free count %d != counted %d", r, a.regionFree[r], want)
		}
	}
	return nil
}
