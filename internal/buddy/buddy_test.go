package buddy

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newOnline(base, npages int64) *Allocator {
	a := New(base, npages)
	a.FreeRange(base, npages)
	return a
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := newOnline(0, 1024)
	if a.NrFree() != 1024 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	pfn, ok := a.Alloc(0)
	if !ok {
		t.Fatal("Alloc failed")
	}
	if a.NrFree() != 1023 {
		t.Fatalf("NrFree after alloc = %d", a.NrFree())
	}
	a.Free(pfn, 0)
	if a.NrFree() != 1024 {
		t.Fatalf("NrFree after free = %d", a.NrFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRestoresMaxOrder(t *testing.T) {
	a := newOnline(0, 1024)
	var pfns []int64
	for {
		pfn, ok := a.Alloc(0)
		if !ok {
			break
		}
		pfns = append(pfns, pfn)
	}
	if int64(len(pfns)) != 1024 {
		t.Fatalf("allocated %d pages, want 1024", len(pfns))
	}
	for _, p := range pfns {
		a.Free(p, 0)
	}
	if a.NrFree() != 1024 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	if got := a.LargestFreeOrder(); got != MaxOrder {
		t.Fatalf("LargestFreeOrder = %d, want %d (coalescing failed)", got, MaxOrder)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitProducesAlignedChunks(t *testing.T) {
	a := newOnline(0, 1<<MaxOrder)
	pfn, ok := a.Alloc(3)
	if !ok {
		t.Fatal("Alloc(3) failed")
	}
	if pfn%8 != 0 {
		t.Fatalf("order-3 chunk at %d not aligned", pfn)
	}
	if a.NrFree() != (1<<MaxOrder)-8 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNonZeroBase(t *testing.T) {
	a := newOnline(1<<20, 2048)
	pfn, ok := a.Alloc(0)
	if !ok || pfn < 1<<20 || pfn >= 1<<20+2048 {
		t.Fatalf("Alloc = %d,%v", pfn, ok)
	}
	if !a.Contains(pfn) || a.Contains(0) {
		t.Fatal("Contains misbehaves")
	}
	a.Free(pfn, 0)
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustion(t *testing.T) {
	a := newOnline(0, 16)
	for i := 0; i < 16; i++ {
		if _, ok := a.Alloc(0); !ok {
			t.Fatalf("Alloc %d failed early", i)
		}
	}
	if _, ok := a.Alloc(0); ok {
		t.Fatal("Alloc succeeded on empty allocator")
	}
}

func TestFragmentationBlocksHighOrder(t *testing.T) {
	a := newOnline(0, 1024)
	var held []int64
	// Allocate everything as single pages, free every other page:
	// 512 pages free but no order-1 chunk exists.
	var all []int64
	for {
		p, ok := a.Alloc(0)
		if !ok {
			break
		}
		all = append(all, p)
	}
	for i, p := range all {
		if i%2 == 0 {
			a.Free(p, 0)
		} else {
			held = append(held, p)
		}
	}
	if a.NrFree() != 512 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatal("order-1 alloc should fail under checkerboard fragmentation")
	}
	for _, p := range held {
		a.Free(p, 0)
	}
	if _, ok := a.Alloc(MaxOrder); !ok {
		t.Fatal("max-order alloc should succeed after defrag")
	}
}

func TestIsolateRange(t *testing.T) {
	a := newOnline(0, 4096)
	// Allocate 10 pages, then isolate the first 1024-page "block".
	var inBlock, outBlock int
	for i := 0; i < 10; i++ {
		p, ok := a.Alloc(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if p < 1024 {
			inBlock++
		} else {
			outBlock++
		}
	}
	freeBefore := a.FreeInRange(0, 1024)
	isolated := a.IsolateRange(0, 1024)
	if isolated != freeBefore {
		t.Fatalf("isolated %d, FreeInRange said %d", isolated, freeBefore)
	}
	if got := a.FreeInRange(0, 1024); got != 0 {
		t.Fatalf("FreeInRange after isolation = %d", got)
	}
	// Allocations now never land in the isolated range.
	for i := 0; i < 100; i++ {
		p, ok := a.Alloc(0)
		if !ok {
			break
		}
		if p < 1024 {
			t.Fatalf("alloc returned isolated page %d", p)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolateThenReturn(t *testing.T) {
	a := newOnline(0, 2048)
	isolated := a.IsolateRange(1024, 1024)
	if isolated != 1024 {
		t.Fatalf("isolated %d, want 1024", isolated)
	}
	if a.NrFree() != 1024 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	// Abort the offline: return the pages.
	a.FreeRange(1024, 1024)
	if a.NrFree() != 2048 {
		t.Fatalf("NrFree after return = %d", a.NrFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeRangeUnaligned(t *testing.T) {
	a := New(0, 10000)
	a.FreeRange(3, 4097) // deliberately awkward
	if a.NrFree() != 4097 {
		t.Fatalf("NrFree = %d", a.NrFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newOnline(0, 64)
	p, _ := a.Alloc(0)
	a.Free(p, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected double-free panic")
		}
	}()
	a.Free(p, 0)
}

func TestMisalignedFreePanics(t *testing.T) {
	a := New(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected misaligned-free panic")
		}
	}()
	a.Free(1, 3)
}

func TestOutOfSpanFreePanics(t *testing.T) {
	a := New(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-span panic")
		}
	}()
	a.Free(64, 0)
}

func TestBadOrderPanics(t *testing.T) {
	a := newOnline(0, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected bad-order panic")
		}
	}()
	a.Alloc(MaxOrder + 1)
}

func TestLIFOReuse(t *testing.T) {
	a := newOnline(0, 1024)
	p1, _ := a.Alloc(0)
	a.Free(p1, 0)
	p2, _ := a.Alloc(0)
	if p1 != p2 {
		t.Fatalf("expected LIFO reuse: got %d then %d", p1, p2)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		a := newOnline(0, 4096)
		rng := rand.New(rand.NewPCG(7, 7))
		var live []int64
		var trace []int64
		for i := 0; i < 2000; i++ {
			if len(live) > 0 && rng.IntN(2) == 0 {
				k := rng.IntN(len(live))
				a.Free(live[k], 0)
				live = append(live[:k], live[k+1:]...)
			} else if p, ok := a.Alloc(0); ok {
				live = append(live, p)
				trace = append(trace, p)
			}
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatal("nondeterministic trace length")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
}

// Property: after an arbitrary interleaving of allocs and frees, the
// free count is exact, invariants hold, and freeing everything restores
// a fully coalesced allocator.
func TestRandomizedInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		const span = 8192
		a := newOnline(0, span)
		type alloc struct {
			pfn   int64
			order int
		}
		var live []alloc
		var liveTotal int64
		for step := 0; step < 3000; step++ {
			if len(live) > 0 && rng.IntN(10) < 4 {
				k := rng.IntN(len(live))
				a.Free(live[k].pfn, live[k].order)
				liveTotal -= 1 << live[k].order
				live = append(live[:k], live[k+1:]...)
			} else {
				order := rng.IntN(MaxOrder + 1)
				if pfn, ok := a.Alloc(order); ok {
					live = append(live, alloc{pfn, order})
					liveTotal += 1 << order
				}
			}
			if a.NrFree() != span-liveTotal {
				return false
			}
		}
		if err := a.CheckInvariants(); err != nil {
			return false
		}
		for _, l := range live {
			a.Free(l.pfn, l.order)
		}
		if a.NrFree() != span {
			return false
		}
		return a.LargestFreeOrder() == MaxOrder && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: no two live allocations overlap.
func TestNoOverlappingAllocations(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		const span = 4096
		a := newOnline(0, span)
		owner := make([]int, span) // 0 = free, else allocation id
		id := 0
		type alloc struct {
			pfn   int64
			order int
			id    int
		}
		var live []alloc
		for step := 0; step < 1500; step++ {
			if len(live) > 0 && rng.IntN(3) == 0 {
				k := rng.IntN(len(live))
				l := live[k]
				for i := l.pfn; i < l.pfn+1<<l.order; i++ {
					if owner[i] != l.id {
						return false
					}
					owner[i] = 0
				}
				a.Free(l.pfn, l.order)
				live = append(live[:k], live[k+1:]...)
			} else {
				order := rng.IntN(4)
				pfn, ok := a.Alloc(order)
				if !ok {
					continue
				}
				id++
				for i := pfn; i < pfn+1<<order; i++ {
					if owner[i] != 0 {
						return false // overlap!
					}
					owner[i] = id
				}
				live = append(live, alloc{pfn, order, id})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreeInRangePartialOverlap(t *testing.T) {
	a := newOnline(0, 2048)
	// Whole span free; count free pages in an arbitrary sub-range.
	if got := a.FreeInRange(100, 200); got != 200 {
		t.Fatalf("FreeInRange = %d, want 200", got)
	}
}

func TestLargestFreeOrderEmpty(t *testing.T) {
	a := New(0, 64)
	if got := a.LargestFreeOrder(); got != -1 {
		t.Fatalf("LargestFreeOrder on absent memory = %d, want -1", got)
	}
}

// Region counters must agree with the O(span) scan across a random
// alloc/free/isolate history, and region-aligned FreeInRange must give
// the same answer through the counter fast path as through the scan.
func TestRegionCountersMatchScan(t *testing.T) {
	const region = 1 << MaxOrder // smallest legal region, max churn
	a := New(0, 8*region)
	a.TrackRegions(region)
	a.FreeRange(0, 8*region)
	rng := rand.New(rand.NewPCG(3, 9))
	var held [][2]int64 // pfn, order
	for step := 0; step < 2000; step++ {
		switch rng.IntN(3) {
		case 0:
			order := rng.IntN(MaxOrder + 1)
			if pfn, ok := a.Alloc(order); ok {
				held = append(held, [2]int64{pfn, int64(order)})
			}
		case 1:
			if len(held) > 0 {
				i := rng.IntN(len(held))
				a.Free(held[i][0], int(held[i][1]))
				held[i] = held[len(held)-1]
				held = held[:len(held)-1]
			}
		case 2:
			r := int64(rng.IntN(8))
			// Sub-region range: exercises the scan fallback.
			if got, want := a.FreeInRange(r*region+region/4, region/2), scanFree(a, r*region+region/4, region/2); got != want {
				t.Fatalf("step %d: sub-region FreeInRange = %d, scan = %d", step, got, want)
			}
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		r := int64(rng.IntN(8))
		if got, want := a.FreeInRange(r*region, region), scanFree(a, r*region, region); got != want {
			t.Fatalf("step %d: region FreeInRange = %d, scan = %d", step, got, want)
		}
	}
	// Isolation empties regions; counters must follow.
	for _, h := range held {
		a.Free(h[0], int(h[1]))
	}
	for r := int64(0); r < 8; r++ {
		if got := a.IsolateRange(r*region, region); got != region {
			t.Fatalf("isolating full region %d got %d pages", r, got)
		}
		if got := a.FreeInRange(r*region, region); got != 0 {
			t.Fatalf("region %d reports %d free after isolation", r, got)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// scanFree counts free pages in a range via FreeChunkAt, independent of
// both FreeInRange code paths.
func scanFree(a *Allocator, pfn, count int64) int64 {
	var n int64
	end := pfn + count
	for i := pfn - pfn%(1<<MaxOrder); i < end; i++ {
		order, ok := a.FreeChunkAt(i)
		if !ok {
			continue
		}
		lo, hi := i, i+(1<<order)
		if lo < pfn {
			lo = pfn
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			n += hi - lo
		}
		i += (1 << order) - 1
	}
	return n
}

// TestResetEquivalence replays an allocation program on a freshly
// constructed allocator and on one reset after heavy prior use
// (including a different span) and requires identical behaviour —
// the reset invariant the pooled-world layer depends on.
func TestResetEquivalence(t *testing.T) {
	program := func(a *Allocator) []int64 {
		a.FreeRange(a.Base(), a.Span())
		var log []int64
		rng := rand.New(rand.NewPCG(11, 13))
		var live [][2]int64 // pfn, order
		for i := 0; i < 2000; i++ {
			if rng.IntN(3) < 2 {
				order := rng.IntN(MaxOrder + 1)
				if pfn, ok := a.Alloc(order); ok {
					live = append(live, [2]int64{pfn, int64(order)})
					log = append(log, pfn)
				} else {
					log = append(log, -1)
				}
			} else if len(live) > 0 {
				i := rng.IntN(len(live))
				c := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				a.Free(c[0], int(c[1]))
				log = append(log, -2)
			}
		}
		log = append(log, a.NrFree())
		return log
	}

	fresh := New(1024, 1<<15)
	fresh.TrackRegions(1 << 12)
	want := program(fresh)

	reused := New(0, 1<<16) // different base and larger span
	reused.TrackRegions(1 << 12)
	reused.FreeRange(0, 1<<16)
	for i := 0; i < 500; i++ { // dirty it
		reused.Alloc(i % MaxOrder)
	}
	reused.Reset(1024, 1<<15)
	if reused.NrFree() != 0 {
		t.Fatalf("reset allocator reports %d free pages", reused.NrFree())
	}
	got := program(reused)
	if len(got) != len(want) {
		t.Fatalf("log lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("program diverged at step %d: reset %d, fresh %d", i, got[i], want[i])
		}
	}
	if err := reused.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResetGrowsSpan verifies a reset to a larger span than the
// original allocation works.
func TestResetGrowsSpan(t *testing.T) {
	a := New(0, 1<<10)
	a.TrackRegions(1 << 10)
	a.FreeRange(0, 1<<10)
	a.Reset(0, 1<<14)
	a.FreeRange(0, 1<<14)
	if a.NrFree() != 1<<14 {
		t.Fatalf("free %d after grow-reset, want %d", a.NrFree(), 1<<14)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
