// Package buddy implements a Linux-style binary buddy page allocator.
//
// The allocator manages a span of page frames [base, base+npages). Pages
// enter the allocator through Free/FreeRange (memory onlining) and leave
// through Alloc (page allocation) or IsolateRange (memory offlining, the
// MIGRATE_ISOLATE step of hot-unplug). Chunks are power-of-two sized,
// naturally aligned, and coalesce eagerly with their buddy on free, as
// in mm/page_alloc.c.
//
// Free lists are per-order LIFO stacks with lazy deletion, so allocation
// order is deterministic (most-recently-freed first, like the kernel's
// hot/cold page behaviour) and removing an arbitrary chunk during
// coalescing or isolation is O(1) amortized.
//
// For the hot-unplug paths the allocator also keeps bulk range state:
// with TrackRegions enabled it maintains a free-page counter per
// fixed-size region (the caller's hotplug block), so FreeInRange over a
// region-aligned range — the per-block occupancy question every unplug
// candidate scan asks — is O(regions) array reads instead of an O(span)
// page walk, and IsolateRange skips fully-occupied regions outright.
package buddy
