package cluster

import (
	"fmt"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Policy places one cold scale-up on a host. The dispatcher routes
// warm-servable invocations to the host holding the idle instance
// before consulting the policy, so policies differ only in where new
// instances (and, transitively, new VMs) land — the decision that
// determines which host pays plug latency and, under pressure, unplug
// latency.
//
// Pick must be deterministic: equal cluster states give equal picks.
// Policies may keep internal state (round-robin's cursor), so one
// Policy value belongs to one Cluster.
type Policy interface {
	// Name is the CLI- and table-facing identifier.
	Name() string
	// Pick chooses the host for a cold start of fn. nodes is never
	// empty; Pick must return one of them.
	Pick(nodes []*Node, fn *workload.Function) *Node
}

// PolicyNames lists the built-in single-host policies in presentation
// order. The topology-aware policies are listed separately
// (DomainPolicyNames) so the PR 2 sweeps keep their exact row sets.
func PolicyNames() []string {
	return []string{"round-robin", "least-loaded", "headroom", "reclaim-aware"}
}

// DomainPolicyNames lists the blast-radius-aware policies. They score
// candidates against fleet-wide domain state and only differentiate
// themselves on a fleet with a topology.
func DomainPolicyNames() []string {
	return []string{"spread", "zone-headroom"}
}

// NewPolicy constructs a fresh instance of a built-in policy. cost is
// only used by reclaim-aware (nil selects the default model).
func NewPolicy(name string, cost *costmodel.Model) Policy {
	switch name {
	case "round-robin":
		return &RoundRobin{}
	case "least-loaded":
		return LeastLoaded{}
	case "headroom":
		return Headroom{}
	case "reclaim-aware":
		if cost == nil {
			cost = costmodel.Default()
		}
		return ReclaimAware{Cost: cost}
	case "spread":
		return &Spread{}
	case "zone-headroom":
		return &ZoneHeadroom{}
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", name))
	}
}

// fleetBound is implemented by policies that score candidates against
// fleet-wide domain state. NewSharded and Reset bind such a policy to
// its cluster; an unbound instance falls back to scoring over the
// candidate set alone (unit tests construct policies bare).
type fleetBound interface{ bind(c *ShardedCluster) }

// bindPolicy attaches a fleet-bound policy to c (no-op for the
// candidate-only policies).
func bindPolicy(p Policy, c *ShardedCluster) {
	if b, ok := p.(fleetBound); ok {
		b.bind(c)
	}
}

// RoundRobin cycles hosts regardless of state: the classic baseline
// that spreads VMs everywhere and lets every host run hot.
type RoundRobin struct {
	next int
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(nodes []*Node, fn *workload.Function) *Node {
	n := nodes[p.next%len(nodes)]
	p.next++
	return n
}

// LeastLoaded places on the host with the fewest live instances,
// balancing compute but ignoring memory state entirely.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(nodes []*Node, fn *workload.Function) *Node {
	best := nodes[0]
	for _, n := range nodes[1:] {
		if n.LiveInstances() < best.LiveInstances() {
			best = n
		}
	}
	return best
}

// Headroom places on the host with the most free (uncommitted,
// unreserved, unqueued-for) memory: memory-aware but blind to how fast
// a full host can free memory.
type Headroom struct{}

// Name implements Policy.
func (Headroom) Name() string { return "headroom" }

// Pick implements Policy.
func (Headroom) Pick(nodes []*Node, fn *workload.Function) *Node {
	best := nodes[0]
	for _, n := range nodes[1:] {
		if n.HeadroomPages() > best.HeadroomPages() {
			best = n
		}
	}
	return best
}

// ReclaimAware scores each host by the memory-wait the new instance
// would suffer there: zero when the host has headroom, otherwise the
// estimated latency of reclaiming the deficit through that host's
// backend — discounted for reclamation already in flight. It is the
// policy that knows a Squeezy host can absorb an overflow placement in
// ~100 ms while a vanilla virtio-mem host would stall it for seconds.
type ReclaimAware struct {
	Cost *costmodel.Model
}

// Name implements Policy.
func (ReclaimAware) Name() string { return "reclaim-aware" }

// Pick implements Policy.
func (p ReclaimAware) Pick(nodes []*Node, fn *workload.Function) *Node {
	instPages := units.BytesToPages(units.AlignUp(fn.MemoryLimit, units.BlockSize))
	best := nodes[0]
	bestPenalty := p.penalty(best, instPages)
	for _, n := range nodes[1:] {
		pen := p.penalty(n, instPages)
		if pen < bestPenalty || (pen == bestPenalty && n.HeadroomPages() > best.HeadroomPages()) {
			best, bestPenalty = n, pen
		}
	}
	return best
}

// strandedPenalty prices the part of a deficit that nothing on the host
// can satisfy — no free memory, no in-flight reclaim, no idle instance
// to evict — so a waiter placed there stalls until a keep-alive window
// expires. Keep-alive horizons are tens of seconds, far beyond any
// unplug path, so the constant only needs to dominate every
// UnplugEstimate a movable backend can produce.
const strandedPenalty = 10 * costmodel.ReclaimDrainTimeout

// penalty estimates the memory-wait of placing an instPages scale-up on
// n: nothing when it fits; the unplug-path latency for the part of the
// deficit coverable by evicting idle instances now (discounted for
// reclaim already in flight); and a dominating stranded term for the
// part not even eviction can free.
func (p ReclaimAware) penalty(n *Node, instPages int64) sim.Duration {
	deficit := instPages - n.HeadroomPages()
	if deficit <= 0 {
		return 0
	}
	inFlight := min(n.RT.ReclaimInFlightPages(), deficit)
	fresh := deficit - inFlight
	evictable := min(n.RT.IdleReclaimablePages(), fresh)
	stranded := fresh - evictable
	// In-flight reclaim is discounted, not free: its pages are spoken
	// for by the FIFO queue that triggered it, and a new placement
	// waits behind that queue. A 25% discount keeps "host is actively
	// reclaiming" attractive without cancelling queue depth outright.
	pen := UnplugEstimate(p.Cost, n.Backend, units.PagesToBytes(evictable)) +
		UnplugEstimate(p.Cost, n.Backend, units.PagesToBytes(inFlight))*3/4
	if stranded > 0 {
		pen += strandedPenalty +
			UnplugEstimate(p.Cost, n.Backend, units.PagesToBytes(stranded))
	}
	return pen
}

// Spread minimizes the blast radius of a correlated failure: it places
// a function's new instance in the rack currently holding the fewest
// live instances of that function (over the whole placement-eligible
// fleet, not just the candidate set), so losing any one rack takes out
// the smallest possible share of the function's capacity and warm
// pool. Ties break to the candidate with the most headroom, then to
// the lowest host ID (scan order). On a flat fleet every host is rack
// 0 and Spread degrades to pure headroom scoring.
type Spread struct {
	c        *ShardedCluster
	rackLoad []int // scratch, reused across picks
}

func (p *Spread) bind(c *ShardedCluster) { p.c = c }

// Name implements Policy.
func (p *Spread) Name() string { return "spread" }

// Pick implements Policy.
func (p *Spread) Pick(nodes []*Node, fn *workload.Function) *Node {
	view := nodes
	if p.c != nil {
		view = p.c.active
	}
	maxRack := 0
	for _, n := range view {
		maxRack = max(maxRack, n.Rack)
	}
	for _, n := range nodes {
		maxRack = max(maxRack, n.Rack)
	}
	if cap(p.rackLoad) <= maxRack {
		p.rackLoad = make([]int, maxRack+1)
	}
	load := p.rackLoad[:maxRack+1]
	clear(load)
	for _, n := range view {
		if fv := n.vms[fn.Name]; fv != nil {
			load[n.Rack] += fv.LiveInstances()
		}
	}
	best := nodes[0]
	for _, n := range nodes[1:] {
		if load[n.Rack] < load[best.Rack] ||
			(load[n.Rack] == load[best.Rack] && n.HeadroomPages() > best.HeadroomPages()) {
			best = n
		}
	}
	return best
}

// ZoneHeadroom balances reclaim headroom across zones: it places in
// the zone with the most aggregate free-and-unclaimed memory (over the
// placement-eligible fleet), then on the roomiest candidate inside it
// — so no zone's reclaim capacity is silently exhausted while another
// sits idle, and a zone-wide brown-out always leaves a survivor zone
// with headroom to absorb the displaced load. On a flat fleet it
// degrades to pure headroom scoring.
type ZoneHeadroom struct {
	c        *ShardedCluster
	zoneHead []int64 // scratch, reused across picks
}

func (p *ZoneHeadroom) bind(c *ShardedCluster) { p.c = c }

// Name implements Policy.
func (p *ZoneHeadroom) Name() string { return "zone-headroom" }

// Pick implements Policy.
func (p *ZoneHeadroom) Pick(nodes []*Node, fn *workload.Function) *Node {
	view := nodes
	if p.c != nil {
		view = p.c.active
	}
	maxZone := 0
	for _, n := range view {
		maxZone = max(maxZone, n.Zone)
	}
	for _, n := range nodes {
		maxZone = max(maxZone, n.Zone)
	}
	if cap(p.zoneHead) <= maxZone {
		p.zoneHead = make([]int64, maxZone+1)
	}
	head := p.zoneHead[:maxZone+1]
	clear(head)
	for _, n := range view {
		head[n.Zone] += n.HeadroomPages()
	}
	best := nodes[0]
	for _, n := range nodes[1:] {
		if head[n.Zone] > head[best.Zone] ||
			(head[n.Zone] == head[best.Zone] && n.HeadroomPages() > best.HeadroomPages()) {
			best = n
		}
	}
	return best
}

// UnplugEstimate predicts how long the backend needs to reclaim bytes
// from a loaded guest, from the cost model's per-block and per-page
// constants. It deliberately mirrors the shape of each backend's unplug
// path rather than simulating it: Squeezy pays only offline metadata
// and VM exits; the movable-zone backends additionally migrate (about
// half the span, on average) and — on hardened kernels — zero every
// page. Static VMs cannot give memory back at all, which the sentinel
// return makes prohibitively expensive for any scorer.
func UnplugEstimate(m *costmodel.Model, kind faas.BackendKind, bytes int64) sim.Duration {
	if bytes <= 0 {
		return 0
	}
	blocks := units.BytesToBlocks(units.AlignUp(bytes, units.BlockSize))
	pages := units.BytesToPages(bytes)
	switch kind {
	case faas.Static:
		return sim.Duration(1) << 50 // ~13 days: effectively never
	case faas.Squeezy:
		return sim.Duration(blocks) * (m.OfflineMetaPerBlockSqueezy + m.VMExitPerBlock)
	default: // VirtioMem, Harvest
		d := sim.Duration(blocks) * (m.OfflineMetaPerBlockVanilla + m.VMExitPerBlock)
		d += sim.Duration(pages/2) * m.MigratePerPage
		if m.ZeroOnUnplug {
			d += sim.Duration(pages) * m.ZeroPerPage
		}
		return d
	}
}
