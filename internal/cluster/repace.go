package cluster

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// Recovery-storm control: when a whole rack dies, the exactly-once
// re-placement machinery would otherwise route every displaced
// invocation onto the survivors at one epoch boundary — a synchronized
// burst of boots and scale-ups against a fleet that just lost a chunk
// of its capacity. With Config.Repace set, displaced work instead
// enters a priority-ordered queue that the dispatcher drains at a
// bounded rate on its own timed boundaries, so the recovery load
// spreads over simulated time. The queue is dispatcher-owned serial
// state and its tick is an epoch boundary like any other, so pacing is
// byte-identical at every shard and worker count.

// RepaceConfig turns on paced re-placement (Config.Repace; nil
// preserves immediate re-placement bit-for-bit). Zero-valued fields
// take the costmodel defaults.
type RepaceConfig struct {
	// PerTick bounds the displaced invocations re-dispatched per pacing
	// tick. Default costmodel.RepacePerTick.
	PerTick int
	// Every is the pacing cadence. Default costmodel.RepaceEvery.
	Every sim.Duration
	// Shed extends admission shedding through the recovery window: the
	// queued backlog's memory demand joins the broker-queued pages in
	// the overload signal (shouldShed), and the plain dispatch path
	// sheds on it too, so a 25%-capacity loss degrades by dropping
	// low-priority work instead of burying the survivors.
	Shed bool
}

// withDefaults fills the zero-valued fields from the cost-model
// constants.
func (r RepaceConfig) withDefaults() RepaceConfig {
	if r.PerTick <= 0 {
		r.PerTick = costmodel.RepacePerTick
	}
	if r.Every <= 0 {
		r.Every = costmodel.RepaceEvery
	}
	return r
}

// repaceEntry is one displaced invocation waiting for a pacing slot:
// a plain-path flight or a resilient rflight, plus the host it was
// displaced from (for the dispatch-time trace instant).
type repaceEntry struct {
	fl   *flight
	rfl  *rflight
	from int
}

func (e repaceEntry) priority() int {
	if e.rfl != nil {
		return e.rfl.fn.Priority
	}
	return e.fl.fn.Priority
}

func (e repaceEntry) fnName() string {
	if e.rfl != nil {
		return e.rfl.fn.Name
	}
	return e.fl.fn.Name
}

func (e repaceEntry) memLimit() int64 {
	if e.rfl != nil {
		return e.rfl.fn.MemoryLimit
	}
	return e.fl.fn.MemoryLimit
}

// queueRepace admits one displaced invocation to the pacing queue,
// keeping it sorted by descending priority, FIFO within a priority
// class, and arms the pacing tick if it isn't already. Runs serially
// at a boundary (re-placement is always boundary work).
func (c *ShardedCluster) queueRepace(e repaceEntry) {
	c.Metrics.Paced++
	if c.fleetObs != nil {
		c.fleetObs.Count("repace/queued", 1)
		c.fleetObs.Instant("replace-queued: "+e.fnName(), obs.CatInvoke,
			obs.I("from_host", int64(e.from)), obs.I("depth", int64(len(c.repaceQ)+1)))
	}
	p := e.priority()
	i := len(c.repaceQ)
	for i > 0 && c.repaceQ[i-1].priority() < p {
		i--
	}
	c.repaceQ = append(c.repaceQ, repaceEntry{})
	copy(c.repaceQ[i+1:], c.repaceQ[i:])
	c.repaceQ[i] = e
	if c.repaceAt == 0 {
		c.repaceAt = c.now.Add(c.repace.Every)
	}
}

// nextRepace reports the pending pacing boundary, if armed.
func (c *ShardedCluster) nextRepace() (sim.Time, bool) {
	if c.repaceAt == 0 {
		return 0, false
	}
	return c.repaceAt, true
}

// fireRepace releases up to PerTick queued re-placements at boundary t
// and re-arms the tick while work remains. Runs in the canonical
// boundary order after the resilience events and before the
// invocations due at t, so recovered work and fresh arrivals interleave
// deterministically.
func (c *ShardedCluster) fireRepace(t sim.Time) {
	if c.repace == nil || c.repaceAt == 0 || c.repaceAt > t {
		return
	}
	budget := c.repace.PerTick
	for budget > 0 && len(c.repaceQ) > 0 {
		e := c.repaceQ[0]
		c.repaceQ[0] = repaceEntry{}
		c.repaceQ = c.repaceQ[1:]
		budget--
		c.dispatchRepace(e)
	}
	if len(c.repaceQ) > 0 {
		c.repaceAt = t.Add(c.repace.Every)
	} else {
		c.repaceAt = 0
	}
}

// dispatchRepace re-places one displaced invocation through the normal
// machinery. Replaced counts here — at actual re-dispatch — mirroring
// the unpaced path's accounting.
func (c *ShardedCluster) dispatchRepace(e repaceEntry) {
	if e.rfl != nil && e.rfl.resolved {
		return // a surviving racer won while this one waited
	}
	c.Metrics.Replaced++
	if c.fleetObs != nil {
		c.fleetObs.Count("replaced", 1)
		c.fleetObs.Instant("replace: "+e.fnName(), obs.CatInvoke,
			obs.I("from_host", int64(e.from)))
	}
	if e.rfl != nil {
		c.launchAttempt(e.rfl)
		return
	}
	c.route(e.fl)
}

// repaceBacklogPages sums the queued re-placements' memory demand —
// displaced work the fleet has promised to serve but not yet placed.
// It joins the broker-queued pages in the admission-shed signal, so
// the overload measure sees a rack's worth of displaced demand the
// moment the rack dies, not only after the queue drains onto brokers.
func (c *ShardedCluster) repaceBacklogPages() int64 {
	var pages int64
	for _, e := range c.repaceQ {
		pages += units.BytesToPages(e.memLimit())
	}
	return pages
}
