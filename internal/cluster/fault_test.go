package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The fault-injection determinism suite: PR 8's extension of the churn
// byte-identity guarantee. Fuzzed fault plans — overlapping windows of
// every kind, probabilistic boot failures and crashes drawn from
// per-host counter-mode streams — compose with fuzzed churn and the
// full resilience layer, and the run must still be a pure function of
// (seed, config) at every shard and worker count.

// faultTable extends the churn fingerprint with the resilience-layer
// outcome, so a divergence anywhere in the retry/hedge/shed machinery
// breaks byte-identity.
func faultTable(c *ShardedCluster) string {
	m := &c.Metrics
	return fmt.Sprintf("%s failed=%d shed=%d admdrop=%d timeouts=%d retries=%d hedges=%d hedgewins=%d",
		churnTable(c), c.Stats().Failed, m.Shed, m.AdmissionDrops,
		m.TimedOut, m.Retries, m.Hedges, m.HedgeWins)
}

// faultRun plays one pressured fleet under a fuzzed fault plan, fuzzed
// churn, and the full resilience layer (tight timeout so retries and
// hedges actually fire at this scale), and returns the fingerprint.
func faultRun(seed uint64, shards int, exec func([]func())) (uint64, string) {
	const hosts = 4
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		PhaseBounds: []sim.Time{sim.Time(dur / 2)},
		Resilience: &ResilienceConfig{
			Timeout: 5 * sim.Second, Hedge: true, HedgeDelay: 3 * sim.Second, Shed: true,
		},
	}, NewPolicy("reclaim-aware", cost))
	c.Exec = exec
	churn := trace.GenChurn(seed, trace.ChurnConfig{
		Duration: dur, Events: 4, Hosts: hosts,
	})
	c.Play(fleetInvs(seed, 6, dur, 6, 30), PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
		Events:     fleetEvents(churn),
		Faults: fault.GenFaults(seed, fault.Config{
			Duration: dur, Events: 8, Hosts: hosts,
		}),
		FaultSeed: seed,
	})
	return c.Fired(), faultTable(c)
}

// TestFaultShardInvariance is the PR 8 headline property: fuzzed fault
// plans layered on fuzzed churn with retries, hedging, and shedding
// all active, byte-identical at shard counts {1, 2, hosts} and worker
// counts {1, 2, 8}, serial and parallel.
func TestFaultShardInvariance(t *testing.T) {
	execs := []struct {
		name string
		exec func([]func())
	}{
		{"serial", nil},
		{"pool-1", poolExec(1)},
		{"pool-2", poolExec(2)},
		{"pool-8", poolExec(8)},
		{"goroutines", goExec},
	}
	exercised := false
	for seed := uint64(1); seed <= 3; seed++ {
		wantFired, wantTable := faultRun(seed, 1, nil)
		if wantFired == 0 {
			t.Fatalf("seed %d: degenerate run", seed)
		}
		for _, shards := range []int{1, 2, 0 /* = hosts */} {
			for _, e := range execs {
				gotFired, gotTable := faultRun(seed, shards, e.exec)
				if gotFired != wantFired || gotTable != wantTable {
					t.Fatalf("seed %d shards=%d exec=%s diverges from serial:\n%d %s\n%d %s",
						seed, shards, e.name, gotFired, gotTable, wantFired, wantTable)
				}
			}
		}
		c := rerunForMetrics(seed)
		if c.Stats().Failed+c.Metrics.Retries+c.Metrics.TimedOut > 0 {
			exercised = true
		}
	}
	if !exercised {
		t.Fatal("no seed exercised the fault/retry machinery; the invariance is vacuous")
	}
}

// rerunForMetrics replays one serial faultRun and returns the cluster
// for non-degeneracy inspection.
func rerunForMetrics(seed uint64) *ShardedCluster {
	const hosts = 4
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		Resilience: &ResilienceConfig{
			Timeout: 5 * sim.Second, Hedge: true, HedgeDelay: 3 * sim.Second, Shed: true,
		},
	}, NewPolicy("reclaim-aware", cost))
	c.Play(fleetInvs(seed, 6, dur, 6, 30), PlayConfig{
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
		Faults: fault.GenFaults(seed, fault.Config{
			Duration: dur, Events: 8, Hosts: hosts,
		}),
		FaultSeed: seed,
	})
	return c
}

// TestFaultTracedMatchesUntraced: attaching a trace to a faulted,
// resilient run must not perturb it — the observability hooks on every
// fault, timeout, retry, hedge, and shed decision are read-only.
func TestFaultTracedMatchesUntraced(t *testing.T) {
	run := func(traced bool) (uint64, string) {
		const hosts = 4
		dur := 25 * sim.Second
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
			Resilience: &ResilienceConfig{
				Timeout: 5 * sim.Second, Hedge: true, HedgeDelay: 3 * sim.Second, Shed: true,
			},
		}, NewPolicy("reclaim-aware", cost))
		if traced {
			c.AttachObs(&obs.Trace{Experiment: "faults"})
		}
		c.Play(fleetInvs(2, 6, dur, 6, 30), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(dur),
			DrainUntil: sim.Time(10 * dur),
			Faults: fault.GenFaults(2, fault.Config{
				Duration: dur, Events: 8, Hosts: hosts,
			}),
			FaultSeed: 2,
		})
		return c.Fired(), faultTable(c)
	}
	wantFired, wantTable := run(false)
	gotFired, gotTable := run(true)
	if gotFired != wantFired || gotTable != wantTable {
		t.Fatalf("traced run diverges from untraced:\n%d %s\n%d %s",
			gotFired, gotTable, wantFired, wantTable)
	}
}

// TestFaultNoOpPlansByteIdentical: an empty fault plan, and a plan
// whose windows all target hosts that never exist, must leave the run
// byte-identical to one with no plan at all — extra epoch boundaries
// and armed injectors may not perturb anything.
func TestFaultNoOpPlansByteIdentical(t *testing.T) {
	run := func(faults []fault.Event) (uint64, string) {
		dur := 25 * sim.Second
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: 3, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
		}, NewPolicy("reclaim-aware", cost))
		c.Play(fleetInvs(4, 6, dur, 6, 30), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(dur),
			DrainUntil: sim.Time(10 * dur),
			Faults:     faults, FaultSeed: 4,
		})
		return c.Fired(), churnTable(c)
	}
	wantFired, wantTable := run(nil)
	plans := map[string][]fault.Event{
		"empty": {},
		"dangling": {
			{T: sim.Time(2 * sim.Second), Dur: 5 * sim.Second, Kind: fault.ColdFail, Host: 99, Mag: 1},
			{T: sim.Time(3 * sim.Second), Dur: 5 * sim.Second, Kind: fault.Straggler, Host: 7, Mag: 8},
		},
	}
	for name, plan := range plans {
		gotFired, gotTable := run(plan)
		if gotFired != wantFired || gotTable != wantTable {
			t.Fatalf("%s plan diverges from no plan:\n%d %s\n%d %s",
				name, gotFired, gotTable, wantFired, wantTable)
		}
	}
}

// resilStep drives the dispatcher boundary loop the way Play does —
// advance, settle drains, fire fleet and fault events, resolve settled
// attempts, fire due resilience decisions — in fixed steps up to
// `until`. Manual-mode tests need it: outside Play nothing else runs
// the boundary sequence, so retries and hedges would never fire.
func resilStep(c *ShardedCluster, until sim.Time) {
	for t := c.Now(); t < until; {
		t = t.Add(500 * sim.Millisecond)
		if t > until {
			t = until
		}
		c.AdvanceTo(t)
		c.settleDrains()
		c.fireFleetEvents(t)
		c.fireFaultEvents(t)
		c.resolveSettled()
		c.fireResilEvents(t)
	}
}

// TestRetryAfterColdFail: a certain cold-boot failure inside a short
// window, then a retry after backoff lands outside it and completes —
// exactly one completion, no terminal failure. Hand-computed: the
// failed boot burns MicroVMBoot (~0.7 s), the 2 s backoff re-dispatches
// at ~3 s, past the 1 s window close.
func TestRetryAfterColdFail(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 4, KeepAlive: 30 * sim.Second,
		Resilience: &ResilienceConfig{BackoffBase: 2 * sim.Second},
	}, NewPolicy("round-robin", cost))
	c.ScheduleFaults([]fault.Event{
		{T: 0, Dur: 1 * sim.Second, Kind: fault.ColdFail, Host: -1, Mag: 1},
	}, 7)
	c.fireFaultEvents(0)
	fn := workload.ByName("HTML")
	completions, failures := 0, 0
	c.Invoke(fn, func(res faas.Result) {
		if res.Failed || res.Dropped {
			failures++
		} else {
			completions++
		}
	})
	resilStep(c, sim.Time(120*sim.Second))
	c.finishResil()
	if completions != 1 || failures != 0 {
		t.Fatalf("completions=%d failures=%d, want exactly one clean completion", completions, failures)
	}
	if c.Metrics.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", c.Metrics.Retries)
	}
	if got := c.Stats().Failed; got != 0 {
		t.Fatalf("Failed = %d, want 0 (the retry rescued the flight)", got)
	}
}

// TestRetryBudgetExhaustedFailsOnce: with the window covering every
// retry, the flight fails terminally after MaxRetries re-dispatches —
// exactly one failure callback, accounted exactly once.
func TestRetryBudgetExhaustedFailsOnce(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 4, KeepAlive: 30 * sim.Second,
		Resilience: &ResilienceConfig{MaxRetries: 2},
	}, NewPolicy("round-robin", cost))
	c.ScheduleFaults([]fault.Event{
		{T: 0, Dur: 600 * sim.Second, Kind: fault.ColdFail, Host: -1, Mag: 1},
	}, 7)
	c.fireFaultEvents(0)
	fn := workload.ByName("HTML")
	callbacks, failures := 0, 0
	c.Invoke(fn, func(res faas.Result) {
		callbacks++
		if res.Failed {
			failures++
		}
	})
	resilStep(c, sim.Time(120*sim.Second))
	c.finishResil()
	if callbacks != 1 || failures != 1 {
		t.Fatalf("callbacks=%d failures=%d, want exactly one terminal failure", callbacks, failures)
	}
	if c.Metrics.Retries != 2 {
		t.Fatalf("Retries = %d, want the full budget of 2", c.Metrics.Retries)
	}
	if got := c.Stats().Failed; got != 1 {
		t.Fatalf("Failed = %d, want 1", got)
	}
}

// TestHostFailMidBackoff: the flight's only attempt fails on a fault
// window, and while its retry backoff is pending the host that failed
// it dies. The retry must land on the survivor and complete exactly
// once — raced on real goroutines so `-race` guards the
// attempt-vs-churn boundary.
func TestHostFailMidBackoff(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 4, KeepAlive: 30 * sim.Second,
		Resilience: &ResilienceConfig{BackoffBase: 4 * sim.Second},
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	c.ScheduleFaults([]fault.Event{
		// Only host 0 fails boots; round-robin places the primary there.
		{T: 0, Dur: 1 * sim.Second, Kind: fault.ColdFail, Host: 0, Mag: 1},
	}, 7)
	c.fireFaultEvents(0)
	fn := workload.ByName("HTML")
	var completions int32
	c.Invoke(fn, func(res faas.Result) {
		if !res.Failed && !res.Dropped {
			atomic.AddInt32(&completions, 1)
		}
	})
	// Let the boot failure settle and the backoff arm, then kill the
	// failed host while the retry is still pending.
	c.AdvanceTo(sim.Time(2 * sim.Second))
	c.resolveSettled()
	c.fireResilEvents(sim.Time(2 * sim.Second))
	if c.Metrics.Retries != 1 {
		t.Fatalf("Retries = %d, want 1 armed before the host dies", c.Metrics.Retries)
	}
	c.failHost(c.Nodes[0])
	resilStep(c, sim.Time(120*sim.Second))
	c.finishResil()
	if got := atomic.LoadInt32(&completions); got != 1 {
		t.Fatalf("completions = %d, want exactly 1 on the survivor", got)
	}
	if c.Nodes[1].VM(fn.Name) == nil {
		t.Fatal("retry did not land on the surviving host")
	}
}

// TestHedgeOutstandingWhenHostDrains: the primary runs on a straggling
// host, the hedge lands warm on the other — which then drains with the
// hedge outstanding. The drain deadline re-places the hedge attempt;
// whichever racer wins, the flight completes exactly once. Raced on
// real goroutines for `-race`.
func TestHedgeOutstandingWhenHostDrains(t *testing.T) {
	long := workload.LongHaul()
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 1, KeepAlive: 60 * sim.Second,
		Resilience: &ResilienceConfig{Hedge: true, HedgeDelay: 2 * sim.Second},
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	// Pre-warm both hosts so the hedge finds an idle warm instance.
	var warm int32
	c.Invoke(long, func(res faas.Result) { atomic.AddInt32(&warm, 1) })
	c.Invoke(long, func(res faas.Result) { atomic.AddInt32(&warm, 1) })
	drainFor(c, 60*sim.Second)
	c.resolveSettled()
	if got := atomic.LoadInt32(&warm); got != 2 {
		t.Fatalf("pre-warm completions = %d, want 2", got)
	}
	// Host 0 turns straggler; the next invocation runs warm there (12 s
	// of warm exec at 10x), the hedge fires at +2 s onto host 1's warm
	// instance, and host 1 immediately starts draining.
	c.ScheduleFaults([]fault.Event{
		{T: c.Now(), Dur: 600 * sim.Second, Kind: fault.Straggler, Host: 0, Mag: 10},
	}, 7)
	c.fireFaultEvents(c.Now())
	var completions int32
	c.Invoke(long, func(res faas.Result) {
		if !res.Failed && !res.Dropped {
			atomic.AddInt32(&completions, 1)
		}
	})
	start := c.Now()
	c.AdvanceTo(start.Add(3 * sim.Second))
	c.resolveSettled()
	c.fireResilEvents(c.Now())
	if c.Metrics.Hedges != 1 {
		t.Fatalf("Hedges = %d, want the hedge launched before the drain", c.Metrics.Hedges)
	}
	c.startDrain(c.Nodes[1])
	// Ride past the drain deadline: the hedge attempt re-places.
	deadline := c.Now().Add(costmodel.ReclaimDrainTimeout)
	c.AdvanceTo(deadline)
	c.settleDrains()
	c.fireFleetEvents(deadline)
	drainFor(c, 600*sim.Second)
	c.finishResil()
	if got := atomic.LoadInt32(&completions); got != 1 {
		t.Fatalf("completions = %d, want exactly once across primary, hedge, and re-placement", got)
	}
}

// TestRetryLandsOnJoinedHost: the fleet's only host fails every cold
// boot, and dies while the flight's retry backoff is pending. A host
// that joined mid-backoff — after the fault plan was scheduled, so its
// injector is armed at join — is the only placement left, and the
// retry lands there cleanly, exactly once.
func TestRetryLandsOnJoinedHost(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 1, Backend: faas.Squeezy, N: 4, KeepAlive: 30 * sim.Second,
		Resilience: &ResilienceConfig{BackoffBase: 4 * sim.Second},
	}, NewPolicy("round-robin", cost))
	c.ScheduleFaults([]fault.Event{
		{T: 0, Dur: 600 * sim.Second, Kind: fault.ColdFail, Host: 0, Mag: 1},
	}, 7)
	c.fireFaultEvents(0)
	fn := workload.ByName("HTML")
	completions, failures := 0, 0
	c.Invoke(fn, func(res faas.Result) {
		if res.Failed || res.Dropped {
			failures++
		} else {
			completions++
		}
	})
	c.AdvanceTo(sim.Time(2 * sim.Second))
	c.resolveSettled()
	c.fireResilEvents(sim.Time(2 * sim.Second))
	if c.Metrics.Retries != 1 {
		t.Fatalf("Retries = %d, want the backoff armed", c.Metrics.Retries)
	}
	n := c.joinHost()
	if n.inj == nil {
		t.Fatal("joined host was not armed with an injector")
	}
	c.failHost(c.Nodes[0])
	resilStep(c, sim.Time(120*sim.Second))
	c.finishResil()
	if completions != 1 || failures != 0 {
		t.Fatalf("completions=%d failures=%d, want the retry to land cleanly on the joiner", completions, failures)
	}
	if n.VM(fn.Name) == nil {
		t.Fatal("retry did not land on the joined host")
	}
}
