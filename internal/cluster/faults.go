package cluster

import (
	"squeezy/internal/fault"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
)

// Fault-plan execution: windows open and close at dispatcher epoch
// boundaries, with every host paused — the same serialization point
// that makes routing and churn deterministic makes fault injection
// deterministic. Between boundaries each host consults only its own
// injector (internal/fault), whose probabilistic decisions come from a
// counter-mode stream seeded by (plan seed, host ID) — so nothing an
// injected fault does depends on the shard partition or worker pool.
//
// Window semantics follow fault.Event: Host -1 targets every host live
// at open time (the applied set is recorded, so the close targets
// exactly those hosts and a mid-window joiner is unaffected); dangling
// IDs are no-ops. At a boundary, closes fire before opens.

// openFault is one active window and the hosts it was applied to.
type openFault struct {
	ev    fault.Event
	until sim.Time
	hosts []*Node
}

// ScheduleFaults arms a fault plan for the next Play: every host gets
// an injector seeded from (seed, host ID), wired into its runtime so
// the VMs it boots see injected boot failures and crashes and its
// reclaim backends see stalls and partial completions. Call before the
// run places any VM (Play does, via PlayConfig.Faults); an empty plan
// is a no-op and leaves the fleet byte-identical to a fault-free run.
func (c *ShardedCluster) ScheduleFaults(events []fault.Event, seed uint64) {
	if len(events) == 0 {
		return
	}
	c.faultSeed = seed
	if !c.faultsOn {
		c.faultsOn = true
		for _, n := range c.live {
			c.armInjector(n)
		}
	}
	for _, ev := range events {
		c.enqueueFault(ev)
	}
}

// armInjector gives the host its decision stream. The injector seed
// depends only on the plan seed and the host ID, so a host's stream is
// identical no matter when it joined or which worker advances it.
func (c *ShardedCluster) armInjector(n *Node) {
	n.inj = fault.NewInjector(n.ID, c.faultSeed)
	n.RT.Faults = n.inj
}

// enqueueFault inserts the event keeping the queue sorted by time,
// FIFO among equal times.
func (c *ShardedCluster) enqueueFault(ev fault.Event) {
	i := len(c.faultQ)
	for i > 0 && c.faultQ[i-1].T > ev.T {
		i--
	}
	c.faultQ = append(c.faultQ, fault.Event{})
	copy(c.faultQ[i+1:], c.faultQ[i:])
	c.faultQ[i] = ev
}

// nextFault reports the earliest pending fault boundary — a window
// opening or closing — at or before horizon.
func (c *ShardedCluster) nextFault(horizon sim.Time) (sim.Time, bool) {
	t, have := sim.Time(0), false
	if len(c.faultQ) > 0 && c.faultQ[0].T <= horizon {
		t, have = c.faultQ[0].T, true
	}
	if len(c.faultOpen) > 0 {
		if u := c.faultOpen[0].until; u <= horizon && (!have || u < t) {
			t, have = u, true
		}
	}
	return t, have
}

// fireFaultEvents applies every window transition due at or before t:
// expired windows close first, then due windows open. The fleet must
// be paused at boundary t.
func (c *ShardedCluster) fireFaultEvents(t sim.Time) {
	if !c.faultsOn {
		return
	}
	for len(c.faultOpen) > 0 && c.faultOpen[0].until <= t {
		of := c.faultOpen[0]
		c.faultOpen = c.faultOpen[1:]
		c.closeFault(of)
	}
	for len(c.faultQ) > 0 && c.faultQ[0].T <= t {
		ev := c.faultQ[0]
		c.faultQ = c.faultQ[1:]
		c.openFaultWindow(ev)
	}
}

// openFaultWindow resolves the event's target hosts, opens the window
// on each, and records the applied set so the close mirrors it.
func (c *ShardedCluster) openFaultWindow(ev fault.Event) {
	if ev.Kind.Domain() {
		c.openDomainFault(ev)
		return
	}
	var hosts []*Node
	switch {
	case ev.Host < 0:
		hosts = append(hosts, c.live...)
	case ev.Host < len(c.Nodes):
		if n := c.Nodes[ev.Host]; n.state != nodeDead {
			hosts = append(hosts, n)
		}
	}
	if len(hosts) == 0 {
		return // dangling or dead target: fuzzed plans must be safe no-ops
	}
	for _, n := range hosts {
		n.inj.Open(ev)
		if ev.Kind == fault.Straggler {
			c.applyStraggler(n)
		}
	}
	c.insertOpenFault(openFault{ev: ev, until: ev.T.Add(ev.Dur), hosts: hosts})
	if c.fleetObs != nil {
		c.fleetObs.Count("faults/windows", 1)
		c.fleetObs.Instant("fault-open: "+ev.Kind.String(), obs.CatFault,
			obs.I("host", int64(ev.Host)), obs.F("mag", ev.Mag),
			obs.I("targets", int64(len(hosts))))
	}
}

// openDomainFault expands one rack-level event onto the rack's live
// members at the boundary. The expansion is a pure function of the
// fleet state every worker agrees on at the boundary (live membership
// in host-ID order) plus, for partial RackFail, the counter-mode
// fault.DomainDraw — so losing rack 2 of 4 is one plan entry that
// plays out identically at every shard and worker count. A fleet with
// no topology, a dangling rack index, or a rack with no live members
// makes the event a deterministic no-op — the domain mirror of the
// dangling-host contract.
func (c *ShardedCluster) openDomainFault(ev fault.Event) {
	topo := c.Cfg.Topology
	if !topo.ValidRack(ev.Host) {
		return
	}
	var hosts []*Node
	for _, n := range c.live {
		if n.Rack == ev.Host {
			hosts = append(hosts, n)
		}
	}
	if len(hosts) == 0 {
		return
	}
	c.Metrics.RackEvents++
	if c.fleetObs != nil {
		c.fleetObs.Count("faults/rack_events", 1)
		c.fleetObs.Instant("fault-open: "+ev.Kind.String(), obs.CatFault,
			obs.I("rack", int64(ev.Host)), obs.I("zone", int64(topo.ZoneOfRack(ev.Host))),
			obs.F("mag", ev.Mag), obs.I("targets", int64(len(hosts))))
	}
	switch ev.Kind {
	case fault.RackFail:
		for _, n := range hosts {
			if ev.Mag < 1 && fault.DomainDraw(c.faultSeed, ev, n.ID) >= ev.Mag {
				continue
			}
			if !c.canRemove(n) {
				continue
			}
			c.failHost(n)
		}
	case fault.RackDegrade:
		for _, n := range hosts {
			n.inj.Open(rackStraggler(ev, n))
			c.applyStraggler(n)
		}
		c.insertOpenFault(openFault{ev: ev, until: ev.T.Add(ev.Dur), hosts: hosts})
	case fault.RackPartition:
		for _, n := range hosts {
			c.partitionHost(n)
		}
		c.insertOpenFault(openFault{ev: ev, until: ev.T.Add(ev.Dur), hosts: hosts})
	}
}

// rackStraggler synthesizes the per-host window a RackDegrade expands
// to: a Straggler of the same magnitude keyed to the host, so the
// close can re-synthesize the identical value and match it in the
// injector's active list.
func rackStraggler(ev fault.Event, n *Node) fault.Event {
	return fault.Event{T: ev.T, Dur: ev.Dur, Kind: fault.Straggler, Host: n.ID, Mag: ev.Mag}
}

// partitionHost isolates the host from the dispatcher: it leaves the
// placement-eligible set but keeps advancing, so in-flight work
// completes normally — the control plane just routes around the rack.
func (c *ShardedCluster) partitionHost(n *Node) {
	n.partitioned++
	if n.partitioned == 1 && n.state == nodeActive {
		c.active = removeNode(c.active, n)
	}
}

// unpartitionHost heals one partition window. The host rejoins the
// placement set in host-ID order only when no other window still
// covers it and it is still active (a host drained or killed
// mid-partition stays out).
func (c *ShardedCluster) unpartitionHost(n *Node) {
	if n.partitioned > 0 {
		n.partitioned--
	}
	if n.partitioned == 0 && n.state == nodeActive {
		c.active = insertNode(c.active, n)
	}
}

// insertNode inserts n into the ID-ordered slice — the inverse of
// removeNode, for partition heals.
func insertNode(nodes []*Node, n *Node) []*Node {
	i := len(nodes)
	for i > 0 && nodes[i-1].ID > n.ID {
		i--
	}
	nodes = append(nodes, nil)
	copy(nodes[i+1:], nodes[i:])
	nodes[i] = n
	return nodes
}

// insertOpenFault keeps the active-window list sorted by expiry, FIFO
// among equal expiries.
func (c *ShardedCluster) insertOpenFault(of openFault) {
	i := len(c.faultOpen)
	for i > 0 && c.faultOpen[i-1].until > of.until {
		i--
	}
	c.faultOpen = append(c.faultOpen, openFault{})
	copy(c.faultOpen[i+1:], c.faultOpen[i:])
	c.faultOpen[i] = of
}

// closeFault closes the window on exactly the hosts it opened on;
// hosts that died mid-window are skipped (their injectors are frozen
// with their schedulers).
func (c *ShardedCluster) closeFault(of openFault) {
	for _, n := range of.hosts {
		if n.state == nodeDead {
			continue
		}
		switch of.ev.Kind {
		case fault.RackDegrade:
			n.inj.Close(rackStraggler(of.ev, n))
			c.applyStraggler(n)
		case fault.RackPartition:
			c.unpartitionHost(n)
		default:
			n.inj.Close(of.ev)
			if of.ev.Kind == fault.Straggler {
				c.applyStraggler(n)
			}
		}
	}
	if c.fleetObs != nil {
		c.fleetObs.Instant("fault-close: "+of.ev.Kind.String(), obs.CatFault,
			obs.I("host", int64(of.ev.Host)))
	}
}

// applyStraggler swaps the host onto a cost model scaled by its
// current straggler factor (back to the shared model when the factor
// returns to 1). Costs are read at operation time, so in-flight work
// finishes at the new speed; the dispatcher's policy costs stay
// unscaled — the control plane doesn't know the host got slow, which
// is exactly the blindness resilience has to absorb.
func (c *ShardedCluster) applyStraggler(n *Node) {
	cost := c.Cost
	if scale := n.inj.StragglerScale(); scale > 1 {
		cost = c.Cost.Scaled(scale)
		if c.fleetObs != nil {
			c.fleetObs.Instant("straggler", obs.CatFault,
				obs.I("host", int64(n.ID)), obs.F("scale", scale))
		}
	}
	n.RT.Cost = cost
	for _, fv := range n.RT.VMs {
		fv.VM.Cost = cost
		fv.K.Cost = cost
	}
}
