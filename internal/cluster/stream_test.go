package cluster

import (
	"fmt"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The streaming determinism suite: the epoch loop fed by a live trace
// cursor — diurnally modulated, with reservoir sketches collecting the
// latency tails — must remain byte-identical across shard counts,
// worker counts, and streamed-vs-materialized replay. This extends the
// PR 5–9 invariance harness to the PR 10 streaming path.

// fnStream adapts a trace cursor to the dispatcher's invocation
// stream for the tests, buffering one invocation for Peek.
type fnStream struct {
	src   trace.Stream
	fleet []*workload.Function
	next  Invocation
	have  bool
}

func (s *fnStream) fill() {
	if s.have {
		return
	}
	if it, ok := s.src.Next(); ok {
		s.next = Invocation{T: it.T, Fn: s.fleet[it.Func]}
		s.have = true
	}
}

func (s *fnStream) Peek() (sim.Time, bool) {
	s.fill()
	return s.next.T, s.have
}

func (s *fnStream) Next() (Invocation, bool) {
	s.fill()
	if !s.have {
		return Invocation{}, false
	}
	s.have = false
	return s.next, true
}

// streamRun plays a diurnally modulated fleet trace with reservoir
// sketches on, either streamed straight from the generator cursors or
// fully materialized first, and returns the run's fingerprint — the
// churn table extended with the sketches' order-insensitive content
// fingerprints and a deep-tail percentile only sketches serve.
func streamRun(seed uint64, shards int, exec func([]func()), materialize bool) (uint64, string) {
	const hosts, funcs = 4, 6
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		PhaseBounds: []sim.Time{sim.Time(dur / 2)},
		Sketch:      &stats.SketchConfig{K: 256, Seed: seed},
	}, NewPolicy("reclaim-aware", cost))
	c.Exec = exec
	src := &fnStream{
		fleet: workload.Fleet(funcs),
		src: trace.NewFleetStream(seed, trace.FleetConfig{
			Funcs: funcs, Duration: dur,
			TotalBaseRPS: 6, TotalBurstRPS: 30,
			Modulation: []trace.DiurnalConfig{
				{Period: dur / 2, Amplitude: 0.5},
				{Period: dur, Amplitude: 0.2, Phase: 1.0},
			},
		}),
	}
	pc := PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
	}
	if materialize {
		var invs []Invocation
		for {
			inv, ok := src.Next()
			if !ok {
				break
			}
			invs = append(invs, inv)
		}
		c.Play(invs, pc)
	} else {
		c.PlayStream(src, pc)
	}
	m := c.Stats()
	table := fmt.Sprintf("%s skfp=%x/%x/%x p999=%.6f/%.6f",
		churnTable(c),
		m.ColdLatMs.SketchFingerprint(), m.WarmLatMs.SketchFingerprint(), m.MemWaitMs.SketchFingerprint(),
		m.ColdLatMs.Percentile(99.9), m.WarmLatMs.Percentile(99.9))
	if !m.ColdLatMs.Sketched() || m.ColdLatMs.N() == 0 {
		panic("streamRun: sketches not exercised; the invariance test would be vacuous")
	}
	return c.Fired(), table
}

// TestStreamShardInvariance is the streaming headline property: a
// diurnally modulated trace streamed straight from its generator
// cursors, with sketched latency samples, fingerprints byte-identically
// at shard counts {1, 2, hosts} and worker counts {1, 2, 8}, serial
// and parallel — and identically again when the same stream is first
// materialized into a slice and replayed through Play.
func TestStreamShardInvariance(t *testing.T) {
	execs := []struct {
		name string
		exec func([]func())
	}{
		{"serial", nil},
		{"pool-1", poolExec(1)},
		{"pool-2", poolExec(2)},
		{"pool-8", poolExec(8)},
		{"goroutines", goExec},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		wantFired, wantTable := streamRun(seed, 1, nil, false)
		if wantFired == 0 {
			t.Fatalf("seed %d: degenerate run", seed)
		}
		for _, shards := range []int{1, 2, 0 /* = hosts */} {
			for _, e := range execs {
				gotFired, gotTable := streamRun(seed, shards, e.exec, false)
				if gotFired != wantFired || gotTable != wantTable {
					t.Fatalf("seed %d shards=%d exec=%s diverges from serial:\n%d %s\n%d %s",
						seed, shards, e.name, gotFired, gotTable, wantFired, wantTable)
				}
			}
		}
		gotFired, gotTable := streamRun(seed, 0, poolExec(2), true)
		if gotFired != wantFired || gotTable != wantTable {
			t.Fatalf("seed %d: materialized replay diverges from streamed:\n%d %s\n%d %s",
				seed, gotFired, gotTable, wantFired, wantTable)
		}
	}
}

// TestSketchResetReplay: a sketched cluster reset in place must replay
// byte-identically to a fresh one (the world-pool recycling contract,
// extended to reservoir mode), and resetting back to an exact config
// must fully leave sketch mode.
func TestSketchResetReplay(t *testing.T) {
	cost := costmodel.Default()
	cfg := Config{
		Hosts: 3, HostMemBytes: 16 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		Sketch: &stats.SketchConfig{K: 128, Seed: 7},
	}
	replay := func(c *ShardedCluster) (uint64, string) {
		c.Play(fleetInvs(11, 6, 25*sim.Second, 4, 20), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(25 * sim.Second),
			DrainUntil: sim.Time(250 * sim.Second),
		})
		m := c.Stats()
		return c.Fired(), fmt.Sprintf("%s skfp=%x p999=%.6f",
			metricsTable(c), m.ColdLatMs.SketchFingerprint(), m.ColdLatMs.Percentile(99.9))
	}
	fresh := NewSharded(cost, cfg, NewPolicy("reclaim-aware", cost))
	wantFired, wantTable := replay(fresh)

	reused := NewSharded(cost, cfg, NewPolicy("reclaim-aware", cost))
	replay(reused) // dirty the pools with a full sketched run
	reused.Reset(cost, cfg, NewPolicy("reclaim-aware", cost))
	gotFired, gotTable := replay(reused)
	if gotFired != wantFired || gotTable != wantTable {
		t.Fatalf("sketched reset replay diverges:\n%d %s\n%d %s",
			gotFired, gotTable, wantFired, wantTable)
	}

	// Reset to an exact config: every sample must leave reservoir mode.
	exact := cfg
	exact.Sketch = nil
	reused.Reset(cost, exact, NewPolicy("reclaim-aware", cost))
	m := reused.Stats()
	if m.ColdLatMs.Sketched() || m.WarmLatMs.Sketched() || m.MemWaitMs.Sketched() {
		t.Fatal("reset to an exact config left samples in sketch mode")
	}
	for _, n := range reused.Nodes {
		if n.M.ColdLatMs.Sketched() {
			t.Fatal("reset to an exact config left a host sample in sketch mode")
		}
	}
}
