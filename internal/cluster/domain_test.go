package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The failure-domain determinism suite: PR 9's extension of the fault
// byte-identity guarantee. Rack-level fault events expand onto whole
// failure domains at epoch boundaries, the blast-radius-aware policies
// read fleet-wide domain state, and displaced work drains through the
// paced re-placement queue — and the run must still be a pure function
// of (seed, config) at every shard and worker count.

// domainTable extends the fault fingerprint with the failure-domain
// outcome, so a divergence in rack expansion or recovery pacing breaks
// byte-identity.
func domainTable(c *ShardedCluster) string {
	return fmt.Sprintf("%s rackev=%d paced=%d", faultTable(c), c.Metrics.RackEvents, c.Metrics.Paced)
}

// splitDomainChurn adapts a rack-aware churn schedule: host-level
// events go to the fleet-event stream, rack failures become rack-level
// fault events (possibly dangling — fuzzed rack indices past the
// topology must be safe no-ops).
func splitDomainChurn(churn []trace.ChurnEvent) ([]FleetEvent, []fault.Event) {
	var fleet []FleetEvent
	var faults []fault.Event
	for _, ev := range churn {
		switch ev.Kind {
		case trace.ChurnRackFail:
			faults = append(faults, fault.Event{T: ev.T, Kind: fault.RackFail, Host: ev.Host, Mag: 1})
		case trace.ChurnFail:
			fleet = append(fleet, FleetEvent{T: ev.T, Kind: HostFail, Host: ev.Host})
		case trace.ChurnDrain:
			fleet = append(fleet, FleetEvent{T: ev.T, Kind: HostDrain, Host: ev.Host})
		default:
			fleet = append(fleet, FleetEvent{T: ev.T, Kind: HostJoin, Host: ev.Host})
		}
	}
	return fleet, faults
}

// domainCluster plays one pressured fleet with a topology, fuzzed
// rack-aware churn and faults, a blast-radius policy, pacing, and the
// full resilience layer, and returns the cluster for inspection.
func domainCluster(seed uint64, shards int, exec func([]func())) *ShardedCluster {
	const hosts = 4
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		Topology:    &Topology{Racks: 2, Zones: 2},
		PhaseBounds: []sim.Time{sim.Time(dur / 2)},
		Resilience: &ResilienceConfig{
			Timeout: 5 * sim.Second, Hedge: true, HedgeDelay: 3 * sim.Second, Shed: true,
		},
		Repace: &RepaceConfig{Shed: true},
	}, NewPolicy("spread", cost))
	c.Exec = exec
	churn := trace.GenChurn(seed, trace.ChurnConfig{
		Duration: dur, Events: 4, Hosts: hosts, Racks: 2,
	})
	fleetEvs, rackFails := splitDomainChurn(churn)
	faults := fault.GenFaults(seed, fault.Config{
		Duration: dur, Events: 8, Hosts: hosts, Racks: 2,
	})
	faults = append(faults, rackFails...)
	c.Play(fleetInvs(seed, 6, dur, 6, 30), PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
		Events:     fleetEvs,
		Faults:     faults,
		FaultSeed:  seed,
	})
	return c
}

func domainRun(seed uint64, shards int, exec func([]func())) (uint64, string) {
	c := domainCluster(seed, shards, exec)
	return c.Fired(), domainTable(c)
}

// TestDomainShardInvariance is the PR 9 headline property: fuzzed
// rack-fault plans layered on fuzzed churn, with the spread policy
// reading fleet-wide rack state and the paced re-placement queue
// draining displaced work, byte-identical at shard counts {1, 2,
// hosts} and worker counts {1, 2, 8}, serial and parallel.
func TestDomainShardInvariance(t *testing.T) {
	execs := []struct {
		name string
		exec func([]func())
	}{
		{"serial", nil},
		{"pool-1", poolExec(1)},
		{"pool-2", poolExec(2)},
		{"pool-8", poolExec(8)},
		{"goroutines", goExec},
	}
	rackEvents := 0
	for seed := uint64(1); seed <= 3; seed++ {
		wantFired, wantTable := domainRun(seed, 1, nil)
		if wantFired == 0 {
			t.Fatalf("seed %d: degenerate run", seed)
		}
		for _, shards := range []int{1, 2, 0 /* = hosts */} {
			for _, e := range execs {
				gotFired, gotTable := domainRun(seed, shards, e.exec)
				if gotFired != wantFired || gotTable != wantTable {
					t.Fatalf("seed %d shards=%d exec=%s diverges from serial:\n%d %s\n%d %s",
						seed, shards, e.name, gotFired, gotTable, wantFired, wantTable)
				}
			}
		}
		rackEvents += domainCluster(seed, 1, nil).Metrics.RackEvents
	}
	if rackEvents == 0 {
		t.Fatal("no seed expanded a rack-level fault; the invariance is vacuous")
	}
}

// TestDomainNoOpEventsByteIdentical: rack-level events on a fleet with
// no topology, on a dangling rack index, or on a valid rack with no
// live members must leave the run byte-identical to one with no plan
// at all — the domain mirror of the dangling-host contract.
func TestDomainNoOpEventsByteIdentical(t *testing.T) {
	run := func(topo *Topology, faults []fault.Event) (uint64, string) {
		dur := 25 * sim.Second
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: 3, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
			Topology: topo,
		}, NewPolicy("reclaim-aware", cost))
		c.Play(fleetInvs(4, 6, dur, 6, 30), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(dur),
			DrainUntil: sim.Time(10 * dur),
			Faults:     faults, FaultSeed: 4,
		})
		return c.Fired(), domainTable(c)
	}
	wantFired, wantTable := run(nil, nil)
	at := sim.Time(2 * sim.Second)
	cases := map[string]struct {
		topo   *Topology
		faults []fault.Event
	}{
		// No topology: every domain event is invalid by definition.
		"no-topology": {nil, []fault.Event{
			{T: at, Kind: fault.RackFail, Host: 0, Mag: 1},
			{T: at, Dur: 5 * sim.Second, Kind: fault.RackDegrade, Host: 1, Mag: 8},
		}},
		// Dangling rack indices (negative, past the topology).
		"dangling-rack": {&Topology{Racks: 2, Zones: 2}, []fault.Event{
			{T: at, Kind: fault.RackFail, Host: 5, Mag: 1},
			{T: at, Dur: 5 * sim.Second, Kind: fault.RackPartition, Host: -1},
		}},
		// Valid racks that no live host maps to (3 hosts, 8 racks: racks
		// 3..7 are empty).
		"empty-rack": {&Topology{Racks: 8, Zones: 2}, []fault.Event{
			{T: at, Kind: fault.RackFail, Host: 5, Mag: 1},
			{T: at, Dur: 5 * sim.Second, Kind: fault.RackDegrade, Host: 7, Mag: 8},
		}},
	}
	for name, tc := range cases {
		gotFired, gotTable := run(tc.topo, tc.faults)
		if gotFired != wantFired || gotTable != wantTable {
			t.Fatalf("%s diverges from no plan:\n%d %s\n%d %s",
				name, gotFired, gotTable, wantFired, wantTable)
		}
	}
}

// domainStep drives the dispatcher boundary loop the way Play does,
// including the paced re-placement queue, in fixed steps up to
// `until`. The manual-mode edge tests need it: outside Play nothing
// else releases queued re-placements.
func domainStep(c *ShardedCluster, until sim.Time) {
	for t := c.Now(); t < until; {
		t = t.Add(500 * sim.Millisecond)
		if t > until {
			t = until
		}
		c.AdvanceTo(t)
		c.settleDrains()
		c.fireFleetEvents(t)
		c.fireFaultEvents(t)
		c.resolveSettled()
		c.fireResilEvents(t)
		c.fireRepace(t)
	}
}

// TestRackFailWithDrainingMember: a rack fails while one of its hosts
// is already draining. Both members must die, the drain must not
// resurrect anything, and every in-flight invocation must complete
// exactly once on the survivors. Raced on real goroutines for `-race`.
func TestRackFailWithDrainingMember(t *testing.T) {
	long := workload.LongHaul()
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 4, Backend: faas.Squeezy, N: 1, KeepAlive: 60 * sim.Second,
		Topology: &Topology{Racks: 2, Zones: 2},
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	// One long-running flight per host (N=1 forces a fresh placement
	// each time), each counting its completions exactly once.
	var done [4]int32
	for i := range done {
		i := i
		c.Invoke(long, func(res faas.Result) { atomic.AddInt32(&done[i], 1) })
	}
	// Rack 1 = hosts {1, 3}. Host 1 starts draining, then its whole
	// rack fails out from under the drain.
	c.startDrain(c.Nodes[1])
	c.ScheduleFaults([]fault.Event{
		{T: c.Now(), Kind: fault.RackFail, Host: 1, Mag: 1},
	}, 7)
	c.fireFaultEvents(c.Now())
	if c.LiveHosts() != 2 || c.Metrics.HostFails != 2 {
		t.Fatalf("live=%d fails=%d after rack-fail, want 2 live and 2 fails", c.LiveHosts(), c.Metrics.HostFails)
	}
	if c.Metrics.RackEvents != 1 {
		t.Fatalf("RackEvents = %d, want 1", c.Metrics.RackEvents)
	}
	if c.Metrics.Replaced != 2 {
		t.Fatalf("Replaced = %d, want the two displaced flights", c.Metrics.Replaced)
	}
	domainStep(c, sim.Time(600*sim.Second))
	c.finishResil()
	for i, d := range done {
		if got := atomic.LoadInt32(&done[i]); got != 1 {
			t.Fatalf("flight %d completed %d times, want exactly once (%v)", i, got, d)
		}
	}
}

// TestRackFailLosesWarmPool: the failed rack holds a function's entire
// warm pool. The warm loss must be counted, the in-flight warm
// invocation must be re-placed and complete exactly once, and the next
// invocation must cold-start on a survivor. Raced for `-race`.
func TestRackFailLosesWarmPool(t *testing.T) {
	fn := workload.ByName("HTML")
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 4, Backend: faas.Squeezy, N: 4, KeepAlive: 60 * sim.Second,
		Topology: &Topology{Racks: 2, Zones: 2},
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	// Warm up: two completed invocations leave fn's entire warm pool —
	// two idle instances — on host 0 in rack 0 (the second concurrent
	// invocation scales up on the host already running fn's VM).
	var warm int32
	c.Invoke(fn, func(res faas.Result) { atomic.AddInt32(&warm, 1) })
	c.Invoke(fn, func(res faas.Result) { atomic.AddInt32(&warm, 1) })
	drainFor(c, 30*sim.Second)
	c.resolveSettled()
	if atomic.LoadInt32(&warm) != 2 {
		t.Fatal("warm-up invocations did not complete")
	}
	if n := c.warmNode(fn, nil); n == nil || n.ID != 0 {
		t.Fatalf("warm pool not on host 0 (got %v)", n)
	}
	// The next invocation routes warm onto host 0, leaving one idle
	// instance beside it; while it is in flight, rack 0 — hosts
	// {0, 2} — fails, taking both the busy and the idle instance.
	var done int32
	c.Invoke(fn, func(res faas.Result) {
		if !res.Failed && !res.Dropped {
			atomic.AddInt32(&done, 1)
		}
	})
	c.ScheduleFaults([]fault.Event{
		{T: c.Now(), Kind: fault.RackFail, Host: 0, Mag: 1},
	}, 7)
	c.fireFaultEvents(c.Now())
	if c.LiveHosts() != 2 {
		t.Fatalf("live = %d after rack-fail, want 2", c.LiveHosts())
	}
	if c.Metrics.WarmLost < 1 {
		t.Fatalf("WarmLost = %d, want the lost warm pool counted", c.Metrics.WarmLost)
	}
	if n := c.warmNode(fn, nil); n != nil {
		t.Fatalf("warm pool survived on host %d, want none", n.ID)
	}
	domainStep(c, sim.Time(600*sim.Second))
	c.finishResil()
	if got := atomic.LoadInt32(&done); got != 1 {
		t.Fatalf("displaced warm flight completed %d times, want exactly once", got)
	}
	// The re-placed flight had no warm pool left: it must have
	// cold-started on a surviving rack-1 host.
	if c.Nodes[1].VM(fn.Name) == nil && c.Nodes[3].VM(fn.Name) == nil {
		t.Fatal("re-placed flight did not land on the surviving rack")
	}
}

// TestRepaceDrainsAcrossJoin: displaced flights sit in the paced
// re-placement queue while a new host joins; the queue must keep its
// cadence, dispatch every entry exactly once, and be empty at the end.
// Raced for `-race`.
func TestRepaceDrainsAcrossJoin(t *testing.T) {
	long := workload.LongHaul()
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 1, KeepAlive: 60 * sim.Second,
		Topology: &Topology{Racks: 2, Zones: 2},
		Repace:   &RepaceConfig{PerTick: 1, Every: 250 * sim.Millisecond},
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	var done [3]int32
	for i := range done {
		i := i
		c.Invoke(long, func(res faas.Result) {
			if !res.Failed && !res.Dropped {
				atomic.AddInt32(&done[i], 1)
			}
		})
	}
	// Host 0 carries two of the three flights (N=1: the third pick
	// queued on it). Fail it: both flights enter the pacing queue.
	c.failHost(c.Nodes[0])
	if c.Metrics.Paced != 2 {
		t.Fatalf("Paced = %d, want both displaced flights queued", c.Metrics.Paced)
	}
	if c.Metrics.Replaced != 0 {
		t.Fatalf("Replaced = %d before any pacing tick, want 0", c.Metrics.Replaced)
	}
	if len(c.repaceQ) != 2 {
		t.Fatalf("queue depth = %d, want 2", len(c.repaceQ))
	}
	// A fresh host joins while the queue drains.
	c.joinHost()
	if c.LiveHosts() != 2 {
		t.Fatalf("live = %d after join, want 2", c.LiveHosts())
	}
	domainStep(c, sim.Time(600*sim.Second))
	c.finishResil()
	if c.Metrics.Replaced != 2 {
		t.Fatalf("Replaced = %d after draining, want 2", c.Metrics.Replaced)
	}
	if len(c.repaceQ) != 0 {
		t.Fatalf("queue depth = %d after draining, want 0", len(c.repaceQ))
	}
	for i := range done {
		if got := atomic.LoadInt32(&done[i]); got != 1 {
			t.Fatalf("flight %d completed %d times, want exactly once", i, got)
		}
	}
}

// TestSpreadPicksUnderloadedRack: with a function's instances piled on
// one rack, spread must place the next instance in the other rack —
// over the fleet-wide view, not just the candidate ordering.
func TestSpreadPicksUnderloadedRack(t *testing.T) {
	fn := workload.ByName("HTML")
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 4, Backend: faas.Squeezy, N: 4, KeepAlive: 60 * sim.Second,
		Topology: &Topology{Racks: 2, Zones: 2},
	}, NewPolicy("round-robin", cost))
	// Pile fn onto rack 0: hosts {0, 2}.
	for _, id := range []int{0, 2} {
		fv := c.vmOn(c.Nodes[id], fn)
		fv.Invoke(fn, nil)
	}
	sp := &Spread{}
	sp.bind(c)
	if got := sp.Pick(c.active, fn); got.Rack != 1 {
		t.Fatalf("spread picked host %d in rack %d, want rack 1", got.ID, got.Rack)
	}
	// The fleet-wide view matters: even when only rack-0 candidates and
	// one rack-1 candidate are offered, the rack-1 host must win.
	cands := []*Node{c.Nodes[0], c.Nodes[2], c.Nodes[3]}
	if got := sp.Pick(cands, fn); got.ID != 3 {
		t.Fatalf("spread picked host %d, want the rack-1 candidate (3)", got.ID)
	}
	// Unbound (unit-style) it degrades to scoring over the candidates
	// alone and must still return one of them.
	bare := &Spread{}
	if got := bare.Pick(cands, fn); got.Rack != 1 {
		t.Fatalf("unbound spread picked rack %d, want 1", got.Rack)
	}
}

// TestZoneHeadroomPicksRoomiestZone: with heterogeneous host sizes
// concentrating free memory in one zone, zone-headroom must place
// there, preferring the roomiest host inside it.
func TestZoneHeadroomPicksRoomiestZone(t *testing.T) {
	fn := workload.ByName("HTML")
	cost := costmodel.Default()
	// Racks 2, zones 2: host i is rack i%2, zone = rack. The MemBytes
	// cycle gives rack-0 hosts 8 GiB and rack-1 hosts 32 GiB, so zone 1
	// holds most of the fleet's headroom.
	c := NewSharded(cost, Config{
		Hosts: 4, Backend: faas.Squeezy, N: 4, KeepAlive: 60 * sim.Second,
		HostMemBytes: 16 * units.GiB,
		Topology: &Topology{
			Racks: 2, Zones: 2,
			MemBytes: []int64{8 * units.GiB, 32 * units.GiB},
		},
	}, NewPolicy("round-robin", cost))
	zh := &ZoneHeadroom{}
	zh.bind(c)
	got := zh.Pick(c.active, fn)
	if got.Zone != 1 {
		t.Fatalf("zone-headroom picked host %d in zone %d, want zone 1", got.ID, got.Zone)
	}
	if got.ID != 1 {
		t.Fatalf("zone-headroom picked host %d, want the first rack-1 host (1)", got.ID)
	}
}

// TestTopologyAccessors: the nil-safe topology helpers and the
// round-robin rack/zone assignment NewSharded derives from them.
func TestTopologyAccessors(t *testing.T) {
	var nilTopo *Topology
	if nilTopo.RackOf(3) != 0 || nilTopo.ZoneOfRack(2) != 0 || nilTopo.ValidRack(0) {
		t.Fatal("nil topology must be flat and reject every rack")
	}
	if nilTopo.HostMem(1, 42) != 42 {
		t.Fatal("nil topology must fall through to the default host size")
	}
	topo := &Topology{Racks: 4, Zones: 2}
	for id, wantRack := range []int{0, 1, 2, 3, 0, 1} {
		if got := topo.RackOf(id); got != wantRack {
			t.Fatalf("RackOf(%d) = %d, want %d", id, got, wantRack)
		}
	}
	for rack, wantZone := range []int{0, 0, 1, 1} {
		if got := topo.ZoneOfRack(rack); got != wantZone {
			t.Fatalf("ZoneOfRack(%d) = %d, want %d", rack, got, wantZone)
		}
	}
	if topo.ValidRack(-1) || topo.ValidRack(4) || !topo.ValidRack(3) {
		t.Fatal("ValidRack bounds are wrong")
	}
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 6, Backend: faas.Squeezy, N: 4, Topology: topo,
	}, NewPolicy("round-robin", cost))
	for _, n := range c.Nodes {
		if n.Rack != topo.RackOf(n.ID) || n.Zone != topo.ZoneOfRack(n.Rack) {
			t.Fatalf("host %d assigned rack %d zone %d, want %d/%d",
				n.ID, n.Rack, n.Zone, topo.RackOf(n.ID), topo.ZoneOfRack(topo.RackOf(n.ID)))
		}
	}
}

// TestHeterogeneousCapacity: per-host sizes from the topology reach
// the host memory models, the fleet capacity sum, and survive Reset —
// the autoscaler and shed thresholds read real capacity, not hosts
// times a uniform size.
func TestHeterogeneousCapacity(t *testing.T) {
	cost := costmodel.Default()
	cfg := Config{
		Hosts: 3, Backend: faas.Squeezy, N: 4,
		HostMemBytes: 64 * units.GiB,
		Topology: &Topology{
			Racks:    1,
			MemBytes: []int64{16 * units.GiB, 32 * units.GiB},
		},
	}
	c := NewSharded(cost, cfg, NewPolicy("round-robin", cost))
	check := func(stage string) {
		want := []int64{16 * units.GiB, 32 * units.GiB, 16 * units.GiB}
		var sum int64
		for i, n := range c.Nodes {
			if got := n.Host.CapacityPages(); got != units.BytesToPages(want[i]) {
				t.Fatalf("%s: host %d capacity %d pages, want %d",
					stage, i, got, units.BytesToPages(want[i]))
			}
			sum += units.BytesToPages(want[i])
		}
		if got := c.activeCapacityPages(); got != sum {
			t.Fatalf("%s: activeCapacityPages = %d, want %d", stage, got, sum)
		}
	}
	check("fresh")
	c.Reset(cost, cfg, NewPolicy("round-robin", cost))
	check("reset")
	// A fleet containing one unlimited host has no meaningful capacity
	// sum: the autoscaler and shed thresholds must see 0 (disabled).
	unl := cfg
	unl.HostMemBytes = 0
	unl.Topology = &Topology{Racks: 1, MemBytes: []int64{16 * units.GiB, 0}}
	c.Reset(cost, unl, NewPolicy("round-robin", cost))
	if got := c.activeCapacityPages(); got != 0 {
		t.Fatalf("unlimited host: activeCapacityPages = %d, want 0", got)
	}
}
