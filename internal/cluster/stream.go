package cluster

import (
	"fmt"

	"squeezy/internal/sim"
)

// InvocationStream is the dispatcher's pull-based invocation source:
// the epoch loop peeks the next arrival time to pick each boundary,
// then pops every invocation due at that boundary. A streaming source
// (e.g. a merged trace cursor) holds O(funcs) state, so a multi-day
// million-invocation replay never materializes its trace; a slice is
// adapted via SliceStream. Times must be non-decreasing.
type InvocationStream interface {
	// Peek returns the arrival time of the next invocation without
	// consuming it; ok is false when the stream is exhausted.
	Peek() (t sim.Time, ok bool)
	// Next consumes and returns the next invocation.
	Next() (Invocation, bool)
}

// sliceStream adapts a materialized invocation slice to the stream
// interface.
type sliceStream struct {
	invs []Invocation
	i    int
}

// SliceStream wraps a time-sorted invocation slice as an
// InvocationStream. PlayStream(SliceStream(invs), pc) is byte-identical
// to Play(invs, pc) — Play is implemented exactly that way.
func SliceStream(invs []Invocation) InvocationStream {
	return &sliceStream{invs: invs}
}

func (s *sliceStream) Peek() (sim.Time, bool) {
	if s.i >= len(s.invs) {
		return 0, false
	}
	return s.invs[s.i].T, true
}

func (s *sliceStream) Next() (Invocation, bool) {
	if s.i >= len(s.invs) {
		return Invocation{}, false
	}
	inv := s.invs[s.i]
	s.i++
	return inv, true
}

// PlayStream replays a time-sorted invocation stream through the
// dispatcher under the epoch protocol (see Play and the package
// comment in shard.go). The stream is consumed exactly once, one
// boundary at a time: peak memory is bounded by the stream's own
// cursor state plus the fleet, independent of how many invocations
// flow through — the property the memory-bound regression test
// asserts for million-invocation multi-day runs.
func (c *ShardedCluster) PlayStream(src InvocationStream, pc PlayConfig) {
	c.prepareShards(pc.Shards)
	c.autoscale = pc.Autoscale
	c.ScheduleFleetEvents(pc.Events)
	c.ScheduleFaults(pc.Faults, pc.FaultSeed)
	ticks := pc.TickEvery > 0
	if ticks {
		// Pre-size the fleet memory series for the full tick count: a
		// multi-day run at 1 s cadence appends hundreds of thousands of
		// points, and growing through repeated appends would double the
		// buffers a dozen times mid-run.
		if n := int(pc.TickUntil/sim.Time(pc.TickEvery)) + 1; n > 0 {
			c.Metrics.Committed.Reserve(n)
			c.Metrics.Populated.Reserve(n)
		}
	}
	var nextTick sim.Time
	for {
		// Next boundary: the earliest of the next invocation, the next
		// tick, the next due fleet event, the next fault-window
		// transition, and the next live resilience decision.
		t, have := sim.Time(0), false
		consider := func(x sim.Time) {
			if !have || x < t {
				t, have = x, true
			}
		}
		late := func(x sim.Time) sim.Time {
			if x < c.now {
				return c.now // late-queued event fires at the next boundary
			}
			return x
		}
		if it, ok := src.Peek(); ok {
			consider(it)
		}
		if ticks && nextTick <= pc.TickUntil {
			consider(nextTick)
		}
		if len(c.fleetQ) > 0 && c.fleetQ[0].T <= pc.DrainUntil {
			consider(late(c.fleetQ[0].T))
		}
		if ft, ok := c.nextFault(pc.DrainUntil); ok {
			consider(late(ft))
		}
		if rt, ok := c.nextResil(); ok && rt <= pc.DrainUntil {
			consider(late(rt))
		}
		if pt, ok := c.nextRepace(); ok && pt <= pc.DrainUntil {
			consider(late(pt))
		}
		if !have {
			break
		}
		if t < c.now {
			panic(fmt.Sprintf("cluster: invocation stream not sorted: %d after %d", t, c.now))
		}
		c.AdvanceTo(t)
		// Canonical boundary order: finished drains retire, fleet
		// events fire in queue order, fault windows transition (closes
		// before opens), settled attempts resolve (so a completion
		// beats a same-instant timeout), resilience decisions fire,
		// paced re-placements release, invocations route in trace
		// order, then the memory sample and the autoscaler.
		c.settleDrains()
		c.fireFleetEvents(t)
		c.fireFaultEvents(t)
		c.resolveSettled()
		c.fireResilEvents(t)
		c.fireRepace(t)
		for {
			it, ok := src.Peek()
			if !ok || it != t {
				break
			}
			inv, _ := src.Next()
			c.Invoke(inv.Fn, nil)
		}
		if ticks && nextTick == t && t <= pc.TickUntil {
			c.SampleMemory()
			nextTick += sim.Time(pc.TickEvery)
			c.autoscaleTick()
		}
	}
	c.Drain(pc.DrainUntil)
	c.finishResil()
}
