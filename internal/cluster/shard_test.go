package cluster

import (
	"sync"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// shardedRun plays one pressured fleet under the given shard count and
// Exec hook and returns the run's full fingerprint: total events fired
// plus the flattened metrics table.
func shardedRun(t *testing.T, backend faas.BackendKind, shards int, exec func([]func())) (uint64, string) {
	t.Helper()
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 3, HostMemBytes: 20 * units.GiB, Backend: backend,
		N: 4, KeepAlive: 20 * sim.Second,
	}, NewPolicy("reclaim-aware", cost))
	c.Exec = exec
	c.Play(fleetInvs(11, 8, 30*sim.Second, 6, 30), PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(30 * sim.Second),
		DrainUntil: sim.Time(300 * sim.Second),
	})
	return c.Fired(), metricsTable(c)
}

// TestShardCountInvariance is the core acceptance property of the
// epoch engine: the same fleet run under shard counts 1 (the serial
// unsharded path), 2, and hosts must fire the exact same events and
// produce byte-identical metrics tables.
func TestShardCountInvariance(t *testing.T) {
	for _, backend := range []faas.BackendKind{faas.VirtioMem, faas.Squeezy, faas.Harvest} {
		wantFired, wantTable := shardedRun(t, backend, 1, nil)
		if wantFired == 0 {
			t.Fatalf("%v: degenerate run", backend)
		}
		for _, shards := range []int{2, 3, 0 /* = hosts */} {
			gotFired, gotTable := shardedRun(t, backend, shards, nil)
			if gotFired != wantFired || gotTable != wantTable {
				t.Fatalf("%v: shards=%d diverges from unsharded:\n%d %s\n%d %s",
					backend, shards, gotFired, gotTable, wantFired, wantTable)
			}
		}
	}
}

// goExec advances shard tasks on real goroutines — the concurrency
// shape the experiments executor provides — so the race detector sees
// the exact parallel boundary production runs exercise.
func goExec(tasks []func()) {
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(task)
	}
	wg.Wait()
}

// TestParallelShardsMatchSerial runs the shard tasks truly
// concurrently and requires byte-identity with the serial path: the
// epoch barrier, host partitioning, and per-host metrics must make the
// schedule independent of real execution order.
func TestParallelShardsMatchSerial(t *testing.T) {
	wantFired, wantTable := shardedRun(t, faas.Squeezy, 1, nil)
	for _, shards := range []int{2, 3} {
		gotFired, gotTable := shardedRun(t, faas.Squeezy, shards, goExec)
		if gotFired != wantFired || gotTable != wantTable {
			t.Fatalf("parallel shards=%d diverges from serial:\n%d %s\n%d %s",
				shards, gotFired, gotTable, wantFired, wantTable)
		}
	}
}

// TestPlayTickCadence pins the memory-sample schedule: ticks at 0,
// 1 s, ..., TickUntil inclusive, regardless of invocation timing.
func TestPlayTickCadence(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{Hosts: 2, Backend: faas.Squeezy},
		NewPolicy("round-robin", cost))
	c.Play(fleetInvs(5, 4, 10*sim.Second, 2, 8), PlayConfig{
		TickEvery: sim.Second, TickUntil: sim.Time(10 * sim.Second),
		DrainUntil: sim.Time(20 * sim.Second),
	})
	if got, want := c.Metrics.Committed.Len(), 11; got != want {
		t.Fatalf("memory samples = %d, want %d", got, want)
	}
	if c.Now() != sim.Time(20*sim.Second) {
		t.Fatalf("dispatcher clock = %v, want drain horizon", c.Now())
	}
}

// TestShardWallsCoverShards checks the -cellstats plumbing: a sharded
// run reports one wall-clock accumulator per shard.
func TestShardWallsCoverShards(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{Hosts: 4, Backend: faas.Squeezy},
		NewPolicy("round-robin", cost))
	c.Play(fleetInvs(5, 4, 5*sim.Second, 2, 8), PlayConfig{
		Shards: 2, DrainUntil: sim.Time(10 * sim.Second),
	})
	if len(c.ShardWalls()) != 2 {
		t.Fatalf("shard walls = %v, want 2 entries", c.ShardWalls())
	}
}
