// Package cluster scales the single-host simulation out to a fleet —
// and, since PR 5, executes that fleet as per-host sub-simulations
// merged deterministically at dispatcher epochs.
//
// A ShardedCluster is N simulated hosts, each with its own
// sim.Scheduler, hostmem.Host, faas.Runtime, reclamation backend,
// memory broker, and recycler, fronted by a dispatcher that routes
// invocations and places cold scale-ups through a pluggable Policy.
// The split mirrors real FaaS-on-hypervisor stacks (a cluster-facing
// gateway over per-host runtimes): host-local mechanisms decide *how*
// memory is reclaimed, the cluster policy decides *which* host pays
// plug latency — and, under memory pressure, whose backend pays the
// unplug latency the paper measures. That interaction is exactly what
// the cluster-* experiments sweep.
//
// # Execution model
//
// Hosts interact only through the dispatcher, and the dispatcher only
// acts at known times: trace invocations and fleet-wide memory
// samples. The epoch engine (shard.go) exploits this: it advances
// every host to the next boundary with sim.Scheduler.RunUntilEpoch
// (events strictly before the boundary fire, clocks land exactly on
// it), runs the boundary's dispatcher work serially in canonical
// order — invocations in trace order, then the memory sample — and
// repeats. Hosts are partitioned into shards that advance as
// independent tasks, concurrently when an Exec hook is installed;
// after the last boundary every host drains to the horizon in
// parallel. Completion metrics accumulate per host and merge in
// host-ID order.
//
// # Fleet dynamics
//
// Since PR 6 the fleet's shape is itself simulated (fleetdyn.go):
// FleetEvents make hosts join, fail, or drain mid-trace, and an
// optional autoscaler turns aggregate memory pressure into delayed
// joins and drains. Node sets are layered active ⊆ live ⊆ Nodes —
// only active hosts take placements, only live hosts advance — and
// every shape change happens at an epoch boundary with all hosts
// paused, in canonical order (settle drains, fleet events, then the
// boundary's dispatcher work). A failed host's scheduler is simply
// never advanced again, so its pending completions and grants are
// frozen rather than cancelled; its in-flight work (tracked as
// flights) re-places through the normal dispatcher exactly once.
// Churn triggers a reshard of the live set, preserving epoch walls.
//
// # Determinism
//
// The dispatcher holds no RNG, iterates hosts in slice order, and
// breaks every tie by host ID; a host's evolution between boundaries
// is a pure function of its state at the last boundary; and nothing
// depends on the shard partition or on which worker advanced which
// host. A fleet run is therefore a pure function of its traces, its
// fleet-event schedule, and its seed, byte-identical at every shard
// count — the property TestShardCountInvariance,
// TestParallelShardsMatchSerial, and (under fuzzed churn)
// TestChurnShardInvariance pin down.
package cluster
