// Package cluster scales the single-host simulation out to a fleet —
// and, since PR 5, executes that fleet as per-host sub-simulations
// merged deterministically at dispatcher epochs.
//
// A ShardedCluster is N simulated hosts, each with its own
// sim.Scheduler, hostmem.Host, faas.Runtime, reclamation backend,
// memory broker, and recycler, fronted by a dispatcher that routes
// invocations and places cold scale-ups through a pluggable Policy.
// The split mirrors real FaaS-on-hypervisor stacks (a cluster-facing
// gateway over per-host runtimes): host-local mechanisms decide *how*
// memory is reclaimed, the cluster policy decides *which* host pays
// plug latency — and, under memory pressure, whose backend pays the
// unplug latency the paper measures. That interaction is exactly what
// the cluster-* experiments sweep.
//
// # Execution model
//
// Hosts interact only through the dispatcher, and the dispatcher only
// acts at known times: trace invocations and fleet-wide memory
// samples. The epoch engine (shard.go) exploits this: it advances
// every host to the next boundary with sim.Scheduler.RunUntilEpoch
// (events strictly before the boundary fire, clocks land exactly on
// it), runs the boundary's dispatcher work serially in canonical
// order — invocations in trace order, then the memory sample — and
// repeats. Hosts are partitioned into shards that advance as
// independent tasks, concurrently when an Exec hook is installed;
// after the last boundary every host drains to the horizon in
// parallel. Completion metrics accumulate per host and merge in
// host-ID order.
//
// # Determinism
//
// The dispatcher holds no RNG, iterates hosts in slice order, and
// breaks every tie by host ID; a host's evolution between boundaries
// is a pure function of its state at the last boundary; and nothing
// depends on the shard partition or on which worker advanced which
// host. A fleet run is therefore a pure function of its traces and
// seed, byte-identical at every shard count — the property
// TestShardCountInvariance and TestParallelShardsMatchSerial pin down.
package cluster
