package cluster

import (
	"fmt"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/guestos"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func newTestCluster(hosts int, hostMem int64, kind faas.BackendKind, policy string) *Cluster {
	sched := sim.NewScheduler()
	cost := costmodel.Default()
	return New(sched, cost, Config{
		Hosts: hosts, HostMemBytes: hostMem, Backend: kind, N: 4,
		KeepAlive: 30 * sim.Second,
	}, NewPolicy(policy, cost))
}

func TestWarmAffinityReusesInstance(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	fn := workload.ByName("HTML")
	c.Invoke(fn, nil)
	c.Sched.RunFor(20 * sim.Second)
	if c.Metrics.ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", c.Metrics.ColdStarts)
	}
	// Round-robin would pick host 1 next, but the idle instance on
	// host 0 must win.
	c.Invoke(fn, nil)
	c.Sched.RunFor(20 * sim.Second)
	if c.Metrics.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", c.Metrics.WarmStarts)
	}
	if c.VMCount() != 1 {
		t.Fatalf("VM count = %d, want 1 (warm routing must not boot a second VM)", c.VMCount())
	}
}

func TestRoundRobinSpreadsColdPlacements(t *testing.T) {
	c := newTestCluster(3, 0, faas.Squeezy, "round-robin")
	for _, fn := range workload.Fleet(3) {
		c.Invoke(fn, nil)
	}
	c.Sched.RunFor(20 * sim.Second)
	for i, n := range c.Nodes {
		if len(n.VMs()) != 1 {
			t.Fatalf("host %d has %d VMs, want 1 each under round-robin", i, len(n.VMs()))
		}
	}
}

func TestLeastLoadedBalancesInstances(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "least-loaded")
	fns := workload.Fleet(4)
	// Sequential cold starts: each placement should land on the host
	// with fewer live instances, alternating hosts.
	for _, fn := range fns {
		c.Invoke(fn, nil)
		c.Sched.RunFor(sim.Second)
	}
	c.Sched.RunFor(20 * sim.Second)
	a, b := c.Nodes[0].LiveInstances(), c.Nodes[1].LiveInstances()
	if a != b {
		t.Fatalf("instance imbalance %d vs %d under least-loaded", a, b)
	}
}

func TestHeadroomAvoidsFullHost(t *testing.T) {
	c := newTestCluster(2, 8*units.GiB, faas.Squeezy, "headroom")
	// Tie down most of host 0's memory out-of-band: headroom must place
	// every cold start on host 1.
	if !c.Nodes[0].Host.TryCommit(units.BytesToPages(7 * units.GiB)) {
		t.Fatal("setup commit failed")
	}
	for _, fn := range workload.Fleet(3) {
		c.Invoke(fn, nil)
	}
	c.Sched.RunFor(20 * sim.Second)
	if got := len(c.Nodes[0].VMs()); got != 0 {
		t.Fatalf("headroom booted %d VMs on the full host", got)
	}
	if got := len(c.Nodes[1].VMs()); got != 3 {
		t.Fatalf("host 1 has %d VMs, want 3", got)
	}
}

func TestAdmissionDropWhenFleetFull(t *testing.T) {
	// 256 MiB hosts cannot back any VM boot footprint.
	c := newTestCluster(2, 256*units.MiB, faas.VirtioMem, "headroom")
	dropped := false
	c.Invoke(workload.ByName("HTML"), func(res faas.Result) { dropped = res.Dropped })
	c.Sched.RunFor(sim.Second)
	if !dropped || c.Metrics.AdmissionDrops != 1 {
		t.Fatalf("dropped=%v admissionDrops=%d, want drop", dropped, c.Metrics.AdmissionDrops)
	}
	if c.VMCount() != 0 {
		t.Fatalf("VM count = %d on an unbackable fleet", c.VMCount())
	}
}

func TestReclaimAwarePenaltyOrdersBackends(t *testing.T) {
	m := costmodel.Default()
	bytes := int64(768 * units.MiB)
	sq := UnplugEstimate(m, faas.Squeezy, bytes)
	vm := UnplugEstimate(m, faas.VirtioMem, bytes)
	st := UnplugEstimate(m, faas.Static, bytes)
	if !(sq < vm && vm < st) {
		t.Fatalf("unplug estimates out of order: squeezy=%v virtio-mem=%v static=%v", sq, vm, st)
	}
	if UnplugEstimate(m, faas.Squeezy, 0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
}

func TestReclaimAwarePrefersHostWithHeadroom(t *testing.T) {
	// Host 0 is saturated (placing there means reclaiming first); host
	// 1 has free memory: reclaim-aware must place on host 1.
	c := newTestCluster(2, 8*units.GiB, faas.VirtioMem, "reclaim-aware")
	if !c.Nodes[0].Host.TryCommit(units.BytesToPages(8 * units.GiB)) {
		t.Fatal("setup commit failed")
	}
	fn := workload.ByName("BFS")
	c.Invoke(fn, nil)
	c.Sched.RunFor(15 * sim.Second)
	if c.Nodes[1].VM(fn.Name) == nil {
		t.Fatal("reclaim-aware placed on the saturated host despite an idle one")
	}
}

func TestReclaimAwarePrefersCheaperBackendUnderDeficit(t *testing.T) {
	// Two equally-full hosts whose backends differ: the policy must
	// pick the one whose unplug path frees memory faster (Squeezy).
	mkFull := func(kind faas.BackendKind) *Node {
		c := newTestCluster(1, 4*units.GiB, kind, "reclaim-aware")
		if !c.Nodes[0].Host.TryCommit(units.BytesToPages(4 * units.GiB)) {
			t.Fatal("setup commit failed")
		}
		return c.Nodes[0]
	}
	slow := mkFull(faas.VirtioMem)
	fast := mkFull(faas.Squeezy)
	fast.ID = 1
	p := NewPolicy("reclaim-aware", costmodel.Default())
	if got := p.Pick([]*Node{slow, fast}, workload.ByName("BFS")); got != fast {
		t.Fatalf("picked backend %v, want the Squeezy host", got.Backend)
	}
	// Headroom, by contrast, is indifferent between the two.
	if a, b := slow.HeadroomPages(), fast.HeadroomPages(); a != b {
		t.Fatalf("setup not symmetric: headroom %d vs %d", a, b)
	}
}

// TestFleetDeterminism runs the same small fleet twice and requires
// identical aggregate metrics — the property every cluster experiment
// rests on.
func TestFleetDeterminism(t *testing.T) {
	run := func() Metrics {
		c := newTestCluster(3, 16*units.GiB, faas.Squeezy, "reclaim-aware")
		fleet := workload.Fleet(8)
		traces := trace.GenFleet(42, trace.FleetConfig{
			Funcs: 8, Duration: 40 * sim.Second,
			TotalBaseRPS: 4, TotalBurstRPS: 20,
		})
		for _, inv := range trace.Merge(traces) {
			fn := fleet[inv.Func]
			c.Sched.At(inv.T, func() { c.Invoke(fn, nil) })
		}
		c.StartMemoryTicker(sim.Second, sim.Time(40*sim.Second))
		c.Sched.RunUntil(sim.Time(60 * sim.Second))
		return c.Metrics
	}
	a, b := run(), run()
	if a.Invocations == 0 || a.ColdStarts == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.Invocations != b.Invocations || a.ColdStarts != b.ColdStarts ||
		a.WarmStarts != b.WarmStarts || a.Dropped != b.Dropped ||
		a.ColdLatMs.P99() != b.ColdLatMs.P99() ||
		a.Committed.Integral() != b.Committed.Integral() {
		t.Fatalf("fleet run not deterministic:\n%+v\n%+v", a, b)
	}
}

// Two identically seeded full fleet runs — separate schedulers, hosts,
// brokers, the works — must be indistinguishable: the same number of
// scheduler events fired and byte-identical metric tables. This pins
// down the determinism contract the pooled/bucketed scheduler and the
// interval page state must preserve.
func TestFullRunDeterministicFiredAndTables(t *testing.T) {
	run := func() (uint64, string) {
		sched := sim.NewScheduler()
		cost := costmodel.Default()
		c := New(sched, cost, Config{
			Hosts: 2, HostMemBytes: 24 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
		}, NewPolicy("reclaim-aware", cost))
		fleet := workload.Fleet(6)
		traces := trace.GenFleet(7, trace.FleetConfig{
			Funcs: 6, Duration: 30 * sim.Second,
			TotalBaseRPS: 4, TotalBurstRPS: 24,
		})
		for _, inv := range trace.Merge(traces) {
			fn := fleet[inv.Func]
			sched.At(inv.T, func() { c.Invoke(fn, nil) })
		}
		c.StartMemoryTicker(sim.Second, sim.Time(30*sim.Second))
		sched.RunUntil(sim.Time(300 * sim.Second))
		table := fmt.Sprintf("inv=%d cold=%d warm=%d drop=%d evict=%d p50=%.6f p99=%.6f memwait=%.6f eff=%.6f gibs=%.6f",
			c.Metrics.Invocations, c.Metrics.ColdStarts, c.Metrics.WarmStarts,
			c.Metrics.Dropped+c.Metrics.AdmissionDrops, c.Evictions(),
			c.Metrics.ColdLatMs.P50(), c.Metrics.ColdLatMs.P99(), c.Metrics.MemWaitMs.P99(),
			c.MemoryEfficiency(), c.CommittedGiBs())
		return sched.Fired(), table
	}
	fired1, table1 := run()
	fired2, table2 := run()
	if fired1 != fired2 {
		t.Fatalf("Fired() differs across identical runs: %d vs %d", fired1, fired2)
	}
	if table1 != table2 {
		t.Fatalf("tables differ across identical runs:\n%s\n%s", table1, table2)
	}
	if fired1 == 0 || table1 == "" {
		t.Fatal("degenerate run: nothing fired")
	}
}

// TestResetReplaysIdentically is the reset-vs-fresh guard for the
// fleet: a cluster reset after an unrelated run (different backend,
// host count, and policy) must replay a workload with metrics and
// event counts identical to a freshly constructed cluster's.
func TestResetReplaysIdentically(t *testing.T) {
	type outcome struct {
		fired                  uint64
		cold, warm, vms, evict int
		coldP99                float64
	}
	replay := func(c *Cluster) outcome {
		fleet := workload.Fleet(8)
		traces := trace.GenFleet(3, trace.FleetConfig{
			Funcs: 8, Duration: 30 * sim.Second, TotalBaseRPS: 4, TotalBurstRPS: 24,
		})
		for _, inv := range trace.Merge(traces) {
			fn := fleet[inv.Func]
			c.Sched.At(inv.T, func() { c.Invoke(fn, nil) })
		}
		c.StartMemoryTicker(sim.Second, sim.Time(30*sim.Second))
		c.Sched.RunUntil(sim.Time(300 * sim.Second))
		return outcome{
			fired: c.Sched.Fired(),
			cold:  c.Metrics.ColdStarts, warm: c.Metrics.WarmStarts,
			vms: c.VMCount(), evict: c.Evictions(),
			coldP99: c.Metrics.ColdLatMs.P99(),
		}
	}

	cost := costmodel.Default()
	cfg := Config{Hosts: 3, HostMemBytes: 24 * units.GiB, Backend: faas.Squeezy, N: 4,
		KeepAlive: 30 * sim.Second}

	sched := sim.NewScheduler()
	fresh := New(sched, cost, cfg, NewPolicy("reclaim-aware", cost))
	want := replay(fresh)

	// A reused cluster: run a different fleet shape first, then reset.
	sched2 := sim.NewScheduler()
	reused := New(sched2, cost, Config{
		Hosts: 5, HostMemBytes: 16 * units.GiB, Backend: faas.VirtioMem, N: 8,
	}, NewPolicy("round-robin", cost))
	replay(reused)
	sched2.Reset()
	reused.Reset(cost, cfg, NewPolicy("reclaim-aware", cost))
	got := replay(reused)
	if got != want {
		t.Fatalf("reset cluster replay = %+v, fresh = %+v", got, want)
	}
}

// TestResetHarvestsKernels verifies Reset hands the previous fleet's
// guest-kernel arenas to the recycler so the next run can reuse them.
func TestResetHarvestsKernels(t *testing.T) {
	cost := costmodel.Default()
	sched := sim.NewScheduler()
	cfg := Config{Hosts: 2, Backend: faas.Squeezy, N: 4, KeepAlive: 10 * sim.Second}
	c := New(sched, cost, cfg, NewPolicy("round-robin", cost))
	c.Recycle = guestos.NewRecycler()
	c.Reset(cost, cfg, NewPolicy("round-robin", cost)) // wire runtimes to the recycler
	c.Invoke(workload.ByName("HTML"), nil)
	sched.Run()
	if c.VMCount() == 0 {
		t.Fatal("no VM booted")
	}
	fv := c.Nodes[0].VMs()[0]
	sched.Reset()
	c.Reset(cost, cfg, NewPolicy("round-robin", cost))
	if fv.K.Zones() != nil {
		t.Fatal("Reset did not release the previous fleet's kernels")
	}
	if c.VMCount() != 0 || c.Metrics.Invocations != 0 {
		t.Fatal("Reset left fleet state")
	}
}
