package cluster

import (
	"fmt"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func newTestCluster(hosts int, hostMem int64, kind faas.BackendKind, policy string) *ShardedCluster {
	cost := costmodel.Default()
	return NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: hostMem, Backend: kind, N: 4,
		KeepAlive: 30 * sim.Second,
	}, NewPolicy(policy, cost))
}

// drainFor runs every host d further and parks the dispatcher there.
func drainFor(c *ShardedCluster, d sim.Duration) { c.Drain(c.Now().Add(d)) }

func TestWarmAffinityReusesInstance(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	fn := workload.ByName("HTML")
	c.Invoke(fn, nil)
	drainFor(c, 20*sim.Second)
	if c.Stats().ColdStarts != 1 {
		t.Fatalf("cold starts = %d, want 1", c.Stats().ColdStarts)
	}
	// Round-robin would pick host 1 next, but the idle instance on
	// host 0 must win.
	c.Invoke(fn, nil)
	drainFor(c, 20*sim.Second)
	if c.Stats().WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", c.Stats().WarmStarts)
	}
	if c.VMCount() != 1 {
		t.Fatalf("VM count = %d, want 1 (warm routing must not boot a second VM)", c.VMCount())
	}
}

func TestRoundRobinSpreadsColdPlacements(t *testing.T) {
	c := newTestCluster(3, 0, faas.Squeezy, "round-robin")
	for _, fn := range workload.Fleet(3) {
		c.Invoke(fn, nil)
	}
	drainFor(c, 20*sim.Second)
	for i, n := range c.Nodes {
		if len(n.VMs()) != 1 {
			t.Fatalf("host %d has %d VMs, want 1 each under round-robin", i, len(n.VMs()))
		}
	}
}

func TestLeastLoadedBalancesInstances(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "least-loaded")
	fns := workload.Fleet(4)
	// Sequential cold starts: each placement should land on the host
	// with fewer live instances, alternating hosts.
	for _, fn := range fns {
		c.Invoke(fn, nil)
		drainFor(c, sim.Second)
	}
	drainFor(c, 20*sim.Second)
	a, b := c.Nodes[0].LiveInstances(), c.Nodes[1].LiveInstances()
	if a != b {
		t.Fatalf("instance imbalance %d vs %d under least-loaded", a, b)
	}
}

func TestHeadroomAvoidsFullHost(t *testing.T) {
	c := newTestCluster(2, 8*units.GiB, faas.Squeezy, "headroom")
	// Tie down most of host 0's memory out-of-band: headroom must place
	// every cold start on host 1.
	if !c.Nodes[0].Host.TryCommit(units.BytesToPages(7 * units.GiB)) {
		t.Fatal("setup commit failed")
	}
	for _, fn := range workload.Fleet(3) {
		c.Invoke(fn, nil)
	}
	drainFor(c, 20*sim.Second)
	if got := len(c.Nodes[0].VMs()); got != 0 {
		t.Fatalf("headroom booted %d VMs on the full host", got)
	}
	if got := len(c.Nodes[1].VMs()); got != 3 {
		t.Fatalf("host 1 has %d VMs, want 3", got)
	}
}

func TestAdmissionDropWhenFleetFull(t *testing.T) {
	// 256 MiB hosts cannot back any VM boot footprint.
	c := newTestCluster(2, 256*units.MiB, faas.VirtioMem, "headroom")
	dropped := false
	c.Invoke(workload.ByName("HTML"), func(res faas.Result) { dropped = res.Dropped })
	drainFor(c, sim.Second)
	if !dropped || c.Metrics.AdmissionDrops != 1 {
		t.Fatalf("dropped=%v admissionDrops=%d, want drop", dropped, c.Metrics.AdmissionDrops)
	}
	if c.VMCount() != 0 {
		t.Fatalf("VM count = %d on an unbackable fleet", c.VMCount())
	}
}

func TestReclaimAwarePenaltyOrdersBackends(t *testing.T) {
	m := costmodel.Default()
	bytes := int64(768 * units.MiB)
	sq := UnplugEstimate(m, faas.Squeezy, bytes)
	vm := UnplugEstimate(m, faas.VirtioMem, bytes)
	st := UnplugEstimate(m, faas.Static, bytes)
	if !(sq < vm && vm < st) {
		t.Fatalf("unplug estimates out of order: squeezy=%v virtio-mem=%v static=%v", sq, vm, st)
	}
	if UnplugEstimate(m, faas.Squeezy, 0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
}

func TestReclaimAwarePrefersHostWithHeadroom(t *testing.T) {
	// Host 0 is saturated (placing there means reclaiming first); host
	// 1 has free memory: reclaim-aware must place on host 1.
	c := newTestCluster(2, 8*units.GiB, faas.VirtioMem, "reclaim-aware")
	if !c.Nodes[0].Host.TryCommit(units.BytesToPages(8 * units.GiB)) {
		t.Fatal("setup commit failed")
	}
	fn := workload.ByName("BFS")
	c.Invoke(fn, nil)
	drainFor(c, 15*sim.Second)
	if c.Nodes[1].VM(fn.Name) == nil {
		t.Fatal("reclaim-aware placed on the saturated host despite an idle one")
	}
}

func TestReclaimAwarePrefersCheaperBackendUnderDeficit(t *testing.T) {
	// Two equally-full hosts whose backends differ: the policy must
	// pick the one whose unplug path frees memory faster (Squeezy).
	mkFull := func(kind faas.BackendKind) *Node {
		c := newTestCluster(1, 4*units.GiB, kind, "reclaim-aware")
		if !c.Nodes[0].Host.TryCommit(units.BytesToPages(4 * units.GiB)) {
			t.Fatal("setup commit failed")
		}
		return c.Nodes[0]
	}
	slow := mkFull(faas.VirtioMem)
	fast := mkFull(faas.Squeezy)
	fast.ID = 1
	p := NewPolicy("reclaim-aware", costmodel.Default())
	if got := p.Pick([]*Node{slow, fast}, workload.ByName("BFS")); got != fast {
		t.Fatalf("picked backend %v, want the Squeezy host", got.Backend)
	}
	// Headroom, by contrast, is indifferent between the two.
	if a, b := slow.HeadroomPages(), fast.HeadroomPages(); a != b {
		t.Fatalf("setup not symmetric: headroom %d vs %d", a, b)
	}
}

// fleetInvs synthesizes a Zipf fleet's merged invocation stream.
func fleetInvs(seed uint64, funcs int, duration sim.Duration, baseRPS, burstRPS float64) []Invocation {
	fleet := workload.Fleet(funcs)
	traces := trace.GenFleet(seed, trace.FleetConfig{
		Funcs: funcs, Duration: duration,
		TotalBaseRPS: baseRPS, TotalBurstRPS: burstRPS,
	})
	merged := trace.Merge(traces)
	invs := make([]Invocation, len(merged))
	for i, inv := range merged {
		invs[i] = Invocation{T: inv.T, Fn: fleet[inv.Func]}
	}
	return invs
}

// metricsTable flattens the run's outcome into a comparable string.
func metricsTable(c *ShardedCluster) string {
	m := c.Stats()
	return fmt.Sprintf("inv=%d cold=%d warm=%d drop=%d evict=%d p50=%.6f p99=%.6f memwait=%.6f eff=%.6f gibs=%.6f",
		m.Invocations, m.ColdStarts, m.WarmStarts,
		m.Dropped+m.AdmissionDrops, c.Evictions(),
		m.ColdLatMs.P50(), m.ColdLatMs.P99(), m.MemWaitMs.P99(),
		c.MemoryEfficiency(), c.CommittedGiBs())
}

// TestFleetDeterminism runs the same small fleet twice and requires
// identical aggregate metrics — the property every cluster experiment
// rests on.
func TestFleetDeterminism(t *testing.T) {
	run := func() (*Metrics, string) {
		c := newTestCluster(3, 16*units.GiB, faas.Squeezy, "reclaim-aware")
		c.Play(fleetInvs(42, 8, 40*sim.Second, 4, 20), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(40 * sim.Second),
			DrainUntil: sim.Time(60 * sim.Second),
		})
		return c.Stats(), metricsTable(c)
	}
	a, at := run()
	b, bt := run()
	if a.Invocations == 0 || a.ColdStarts == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	if a.Invocations != b.Invocations || at != bt {
		t.Fatalf("fleet run not deterministic:\n%s\n%s", at, bt)
	}
}

// Two identically seeded full fleet runs — separate schedulers, hosts,
// brokers, the works — must be indistinguishable: the same number of
// scheduler events fired and byte-identical metric tables. This pins
// down the determinism contract the pooled/bucketed scheduler, the
// interval page state, and the epoch engine must preserve.
func TestFullRunDeterministicFiredAndTables(t *testing.T) {
	run := func() (uint64, string) {
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: 2, HostMemBytes: 24 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
		}, NewPolicy("reclaim-aware", cost))
		c.Play(fleetInvs(7, 6, 30*sim.Second, 4, 24), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(30 * sim.Second),
			DrainUntil: sim.Time(300 * sim.Second),
		})
		return c.Fired(), metricsTable(c)
	}
	fired1, table1 := run()
	fired2, table2 := run()
	if fired1 != fired2 {
		t.Fatalf("Fired() differs across identical runs: %d vs %d", fired1, fired2)
	}
	if table1 != table2 {
		t.Fatalf("tables differ across identical runs:\n%s\n%s", table1, table2)
	}
	if fired1 == 0 || table1 == "" {
		t.Fatal("degenerate run: nothing fired")
	}
}

// TestResetReplaysIdentically is the reset-vs-fresh guard for the
// fleet: a cluster reset after an unrelated run (different backend,
// host count, and policy) must replay a workload with metrics and
// event counts identical to a freshly constructed cluster's —
// including the recycled kernels, vmm.VMs, and FuncVM shells the
// per-host recyclers now hand back.
func TestResetReplaysIdentically(t *testing.T) {
	replay := func(c *ShardedCluster) (uint64, string) {
		c.Play(fleetInvs(3, 8, 30*sim.Second, 4, 24), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(30 * sim.Second),
			DrainUntil: sim.Time(300 * sim.Second),
		})
		return c.Fired(), metricsTable(c)
	}

	cost := costmodel.Default()
	cfg := Config{Hosts: 3, HostMemBytes: 24 * units.GiB, Backend: faas.Squeezy, N: 4,
		KeepAlive: 30 * sim.Second}

	fresh := NewSharded(cost, cfg, NewPolicy("reclaim-aware", cost))
	wantFired, wantTable := replay(fresh)

	// A reused cluster: run a different fleet shape first, then reset.
	reused := NewSharded(cost, Config{
		Hosts: 5, HostMemBytes: 16 * units.GiB, Backend: faas.VirtioMem, N: 8,
	}, NewPolicy("round-robin", cost))
	replay(reused)
	reused.Reset(cost, cfg, NewPolicy("reclaim-aware", cost))
	gotFired, gotTable := replay(reused)
	if gotFired != wantFired || gotTable != wantTable {
		t.Fatalf("reset cluster replay = (%d, %s), fresh = (%d, %s)",
			gotFired, gotTable, wantFired, wantTable)
	}
}

// TestResetHarvestsKernels verifies Reset hands the previous fleet's
// guest-kernel arenas to the per-host recyclers so the next run can
// reuse them.
func TestResetHarvestsKernels(t *testing.T) {
	cost := costmodel.Default()
	cfg := Config{Hosts: 2, Backend: faas.Squeezy, N: 4, KeepAlive: 10 * sim.Second}
	c := NewSharded(cost, cfg, NewPolicy("round-robin", cost))
	c.Invoke(workload.ByName("HTML"), nil)
	drainFor(c, sim.Minute)
	if c.VMCount() == 0 {
		t.Fatal("no VM booted")
	}
	fv := c.Nodes[0].VMs()[0]
	c.Reset(cost, cfg, NewPolicy("round-robin", cost))
	if fv.K.Zones() != nil {
		t.Fatal("Reset did not release the previous fleet's kernels")
	}
	if c.VMCount() != 0 || c.Metrics.Invocations != 0 {
		t.Fatal("Reset left fleet state")
	}
}
