package cluster

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Dispatcher resilience: per-attempt timeouts with capped exponential
// backoff and bounded retries, optional hedged dispatch with
// first-wins cancellation, and priority-aware load shedding — all on
// simulated time, all deterministic.
//
// The machinery mirrors the fleet-dynamics split: the serial
// dispatcher owns every decision (launch, timeout, retry, hedge, shed,
// resolution) and acts only at epoch boundaries with the hosts paused;
// hosts own every consequence. An attempt's completion callback fires
// on the serving host's scheduler — possibly while a shard worker
// advances it — so it only moves the attempt to the host's settled
// list; the dispatcher drains those lists at the next boundary in
// host-ID order and resolves each invocation exactly once. The first
// successful attempt wins; losers are withdrawn with
// faas.Ticket.TryCancel, and a loser too far along to cancel runs
// detached, its result ignored. Timed events (timeouts, backoff
// expirations, hedge launches) live in a dispatcher-side queue that
// contributes epoch boundaries, so resilience decisions happen at
// exact simulated times, identical at every shard count.

// ResilienceConfig turns on the dispatcher resilience layer
// (Config.Resilience; nil preserves the plain dispatch path
// bit-for-bit). Zero-valued fields take the costmodel defaults.
type ResilienceConfig struct {
	// Timeout is the per-attempt dispatch deadline: an attempt that has
	// not completed Timeout after launch gets a speculative re-dispatch
	// raced against it (the original keeps running — first success
	// wins). Default costmodel.DispatchTimeout.
	Timeout sim.Duration
	// MaxRetries bounds re-dispatch attempts per invocation after
	// timeouts and failures. 0 means costmodel.DispatchMaxRetries; use
	// -1 to disable retries.
	MaxRetries int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// before retry k: min(BackoffBase << k, BackoffCap). Defaults
	// costmodel.RetryBackoffBase/RetryBackoffCap.
	BackoffBase sim.Duration
	BackoffCap  sim.Duration
	// Hedge launches a backup attempt on a second host HedgeDelay after
	// the primary if it has not completed — tail-cutting for requests
	// stuck behind a degraded host. First completion wins.
	Hedge bool
	// HedgeDelay defaults to costmodel.HedgeDelay (about the fleet's
	// steady-state cold-start P99, so only tail requests hedge).
	HedgeDelay sim.Duration
	// Shed enables admission-time load shedding under demand overload:
	// an invocation whose priority-dependent threshold
	// (costmodel.ShedBase + priority*costmodel.ShedStep) is below the
	// fleet's unmet-memory pressure — broker-queued pages over total
	// capacity — is dropped immediately, lowest priority first.
	// Requires Config.HostMemBytes > 0.
	Shed bool
}

// withDefaults fills the zero-valued fields from the cost-model
// constants.
func (r ResilienceConfig) withDefaults() ResilienceConfig {
	if r.Timeout <= 0 {
		r.Timeout = costmodel.DispatchTimeout
	}
	switch {
	case r.MaxRetries == 0:
		r.MaxRetries = costmodel.DispatchMaxRetries
	case r.MaxRetries < 0:
		r.MaxRetries = 0
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = costmodel.RetryBackoffBase
	}
	if r.BackoffCap <= 0 {
		r.BackoffCap = costmodel.RetryBackoffCap
	}
	if r.HedgeDelay <= 0 {
		r.HedgeDelay = costmodel.HedgeDelay
	}
	return r
}

// rflight is one invocation under the resilience layer: the resilient
// analogue of flight, tracking every attempt launched on its behalf.
// It resolves exactly once — on the first successful attempt, or on
// the final failure once the retry budget and all racers are spent.
type rflight struct {
	fn      *workload.Function
	arrival sim.Time
	onDone  func(faas.Result)

	attempts int  // attempts launched so far (primary, retries, hedge)
	retries  int  // retry budget consumed
	hedged   bool // the one hedge attempt has been launched
	replaced bool // some attempt was re-placed after a host loss
	resolved bool

	// outstanding is the attempts still racing, launch order. Only the
	// serial dispatcher mutates it.
	outstanding []*attempt
}

// attempt is one placement of an rflight on one host. Between launch
// and settlement it is host-owned: the completion callback (running on
// the host's scheduler) sets settled/res and moves it from the node's
// attempts list to its settled list; everything else is dispatcher-
// owned and mutated only at boundaries.
type attempt struct {
	fl     *rflight
	node   *Node
	ticket faas.Ticket
	idx    int // launch index on the flight; 0 is the primary
	hedge  bool

	settled bool // host-written at completion, dispatcher-read at boundaries
	res     faas.Result

	cancelled bool // withdrawn by a timeout or a first-wins cleanup
	dead      bool // its host failed or drained out underneath it
}

// resilEventKind classifies one dispatcher-side timed decision.
type resilEventKind int

const (
	// attemptTimeout fires when an attempt exceeds the dispatch
	// deadline.
	attemptTimeout resilEventKind = iota
	// retryLaunch fires when a retry's backoff expires.
	retryLaunch
	// hedgeLaunch fires HedgeDelay after the primary attempt.
	hedgeLaunch
)

// resilEvent is one scheduled resilience decision on simulated time.
type resilEvent struct {
	T    sim.Time
	kind resilEventKind
	fl   *rflight
	att  *attempt // attemptTimeout only
}

// enqueueResil inserts the event keeping the queue sorted by time,
// FIFO among equal times.
func (c *ShardedCluster) enqueueResil(ev resilEvent) {
	i := len(c.resilQ)
	for i > 0 && c.resilQ[i-1].T > ev.T {
		i--
	}
	c.resilQ = append(c.resilQ, resilEvent{})
	copy(c.resilQ[i+1:], c.resilQ[i:])
	c.resilQ[i] = ev
}

// nextResil reports the earliest pending resilience boundary, pruning
// moot head events (resolved flights, attempts already withdrawn) so
// the epoch loop doesn't advance to boundaries with nothing to do.
// Pruning reads only simulation state settled at the last boundary, so
// it is shard- and worker-invariant.
func (c *ShardedCluster) nextResil() (sim.Time, bool) {
	for len(c.resilQ) > 0 {
		ev := c.resilQ[0]
		if ev.fl.resolved ||
			(ev.kind == attemptTimeout && (ev.att.cancelled || ev.att.dead)) {
			c.resilQ = c.resilQ[1:]
			continue
		}
		return ev.T, true
	}
	return 0, false
}

// fireResilEvents applies every due resilience decision at or before
// t. The fleet must be paused at boundary t, with settled attempts
// already resolved (resolveSettled) so a completion at t' < t beats a
// timeout due at t.
func (c *ShardedCluster) fireResilEvents(t sim.Time) {
	for len(c.resilQ) > 0 && c.resilQ[0].T <= t {
		ev := c.resilQ[0]
		c.resilQ = c.resilQ[1:]
		if ev.fl.resolved {
			continue
		}
		switch ev.kind {
		case attemptTimeout:
			c.timeoutAttempt(ev.fl, ev.att)
		case retryLaunch:
			c.launchAttempt(ev.fl)
		case hedgeLaunch:
			c.hedgeAttempt(ev.fl)
		}
	}
}

// invokeResilient admits one invocation through the resilience layer:
// shed under memory pressure, else launch the primary attempt and arm
// the hedge timer.
func (c *ShardedCluster) invokeResilient(fn *workload.Function, onDone func(faas.Result)) {
	if c.shouldShed(fn) {
		c.shedInvocation(fn, onDone)
		return
	}
	fl := &rflight{fn: fn, arrival: c.now, onDone: onDone}
	c.launchAttempt(fl)
	if c.resil.Hedge && !fl.resolved {
		c.enqueueResil(resilEvent{T: c.now.Add(c.resil.HedgeDelay), kind: hedgeLaunch, fl: fl})
	}
}

// shedConfigured reports whether any admission-shedding mode is on:
// the resilience layer's (ResilienceConfig.Shed) or the
// recovery-storm controller's domain-aware variant (RepaceConfig.Shed).
func (c *ShardedCluster) shedConfigured() bool {
	return (c.resil != nil && c.resil.Shed) || (c.repace != nil && c.repace.Shed)
}

// shouldShed decides admission-time shedding on demand overload: the
// fleet's queued-but-unmet memory (broker waiters plus the paced
// re-placement backlog) as a fraction of the active hosts' real
// capacity, against the invocation's priority-dependent threshold.
// Committed pages are the wrong signal here — an elastic fleet sits
// full of reclaimable keep-alive pools by design, so committed stays
// near capacity even when idle; the broker queues, by contrast, are
// near zero on a healthy fleet and explode exactly when demand
// outruns what reclaim can free. The capacity term shrinks the moment
// a domain dies and the backlog term rises the same instant, so a
// correlated failure tightens admission immediately. Low-priority work
// sheds first; the highest class holds on until the unmet backlog
// itself covers the whole surviving fleet's memory.
func (c *ShardedCluster) shouldShed(fn *workload.Function) bool {
	if !c.shedConfigured() || len(c.active) == 0 {
		return false
	}
	capacity := c.activeCapacityPages()
	if capacity <= 0 {
		return false
	}
	queued := c.repaceBacklogPages()
	for _, n := range c.active {
		queued += n.QueuedPages()
	}
	pressure := float64(queued) / float64(capacity)
	return pressure > costmodel.ShedBase+float64(fn.Priority)*costmodel.ShedStep
}

// shedInvocation drops one invocation at admission, accounting it on
// the dispatcher-side counters. Shared by the resilient and plain
// dispatch paths.
func (c *ShardedCluster) shedInvocation(fn *workload.Function, onDone func(faas.Result)) {
	c.Metrics.Shed++
	if c.fleetObs != nil {
		c.fleetObs.Count("resil/shed", 1)
		c.fleetObs.Instant("shed: "+fn.Name, obs.CatFault,
			obs.I("priority", int64(fn.Priority)))
	}
	if onDone != nil {
		onDone(faas.Result{Fn: fn, Arrival: c.now, Done: c.now, Dropped: true})
	}
}

// exclOf returns the host-exclusion predicate for the flight's next
// attempt — the hosts already racing an attempt of it — or nil when
// nothing is outstanding (no allocation on the common path).
func exclOf(fl *rflight) func(*Node) bool {
	if len(fl.outstanding) == 0 {
		return nil
	}
	return func(n *Node) bool {
		for _, att := range fl.outstanding {
			if att.node == n {
				return true
			}
		}
		return false
	}
}

// launchAttempt places the flight's next attempt through the normal
// dispatcher tiers, preferring hosts not already racing one. If even
// the unexcluded fleet cannot admit it, the attempt fails
// synchronously and the retry machinery takes over.
func (c *ShardedCluster) launchAttempt(fl *rflight) {
	tier, n, fv := c.chooseVM(fl.fn, exclOf(fl))
	if fv == nil && len(fl.outstanding) > 0 {
		// Better a second attempt on a racing host than none at all.
		tier, n, fv = c.chooseVM(fl.fn, nil)
	}
	if fv == nil {
		// A transient placement failure, not yet an admission drop: the
		// retry machinery may still land the flight later. Only a
		// terminal failure with no admitted attempt counts (finalFail).
		if c.fleetObs != nil {
			c.fleetObs.Instant("admission-defer: "+fl.fn.Name, obs.CatInvoke)
		}
		c.attemptFailed(fl, nil,
			faas.Result{Fn: fl.fn, Arrival: fl.arrival, Done: c.now, Dropped: true})
		return
	}
	c.startAttempt(fl, tier, n, fv, false)
}

// hedgeAttempt launches the flight's one backup attempt on a host not
// already racing it — but only when that host can serve it without
// queueing: an idle warm instance (which already owns its memory), or
// an in-place scale-up whose host has enough free-and-unclaimed memory
// to admit the new instance outright. Anything less makes the hedge a
// load amplifier — a queued hedge adds to exactly the congestion it is
// meant to dodge, and a memory-starved spawn feeds demand into a
// reclaim path that may itself be the thing limping. Under a localized
// fault (one straggling host) the rest of the fleet has headroom and
// hedges flow; under fleet-wide degradation every broker has a queue
// and this gate suppresses hedging entirely. The hedge spends no retry
// budget.
func (c *ShardedCluster) hedgeAttempt(fl *rflight) {
	if fl.hedged || len(fl.outstanding) == 0 {
		return
	}
	tier, n, fv := c.chooseVM(fl.fn, exclOf(fl))
	if fv == nil {
		return
	}
	switch tier {
	case "warm":
	case "scale-up", "place":
		if n.Host.CapacityPages() > 0 && n.HeadroomPages() < units.BytesToPages(fl.fn.MemoryLimit) {
			return
		}
	default:
		return // fallback tier = queue behind someone: never hedge into that
	}
	fl.hedged = true
	c.Metrics.Hedges++
	if c.fleetObs != nil {
		c.fleetObs.Count("resil/hedges", 1)
		c.fleetObs.Instant("hedge: "+fl.fn.Name, obs.CatFault,
			obs.I("host", int64(n.ID)))
	}
	c.startAttempt(fl, tier, n, fv, true)
}

// startAttempt submits one attempt to the chosen VM and arms its
// timeout. The completion callback is the only piece of this machinery
// that runs host-side, and it only moves the attempt onto the host's
// settled list — resolution waits for the next boundary.
func (c *ShardedCluster) startAttempt(fl *rflight, tier string, n *Node, fv *faas.FuncVM, hedge bool) {
	att := &attempt{fl: fl, node: n, idx: fl.attempts, hedge: hedge}
	fl.attempts++
	fl.outstanding = append(fl.outstanding, att)
	n.attempts = append(n.attempts, att)
	att.ticket = fv.Submit(fl.fn, func(res faas.Result) {
		att.settled, att.res = true, res
		n.removeAttempt(att)
		n.settled = append(n.settled, att)
	})
	c.enqueueResil(resilEvent{T: c.now.Add(c.resil.Timeout), kind: attemptTimeout, fl: fl, att: att})
	if c.fleetObs != nil {
		c.fleetObs.Count("dispatch/"+tier, 1)
		c.fleetObs.Instant("dispatch/"+tier+": "+fl.fn.Name, obs.CatInvoke,
			obs.I("host", int64(n.ID)), obs.I("attempt", int64(att.idx)))
	}
}

// timeoutAttempt handles an attempt exceeding the dispatch deadline.
// The slow attempt is NOT withdrawn — in a merely-backlogged fleet its
// queue position is the fastest path to completion, and cancelling it
// would convert ordinary congestion into failures. Instead a
// speculative re-dispatch races it from another host: whichever
// completes successfully first wins, and resolveFlight withdraws the
// losers. A stuck attempt (reclaim stall, straggler host) thus gets
// escaped without betting against a healthy queue.
func (c *ShardedCluster) timeoutAttempt(fl *rflight, att *attempt) {
	if att.settled || att.cancelled || att.dead {
		return // settled results resolve via resolveSettled, not here
	}
	if c.horizon || fl.retries >= c.resil.MaxRetries {
		return // budget spent: the racers ride to the horizon
	}
	c.Metrics.TimedOut++
	if c.fleetObs != nil {
		c.fleetObs.Count("resil/timeouts", 1)
		c.fleetObs.Instant("timeout: "+fl.fn.Name, obs.CatFault,
			obs.I("host", int64(att.node.ID)), obs.I("attempt", int64(att.idx)))
	}
	c.scheduleRetry(fl)
}

// attemptFailed handles a settled failure (boot failure, crash, OOM
// drop, or a placement the fleet could not admit; n is nil for the
// latter). With another attempt still racing the flight just waits;
// otherwise a retry is scheduled, or the failure becomes final.
func (c *ShardedCluster) attemptFailed(fl *rflight, n *Node, res faas.Result) {
	if len(fl.outstanding) > 0 {
		return
	}
	if !c.horizon && fl.retries < c.resil.MaxRetries {
		c.scheduleRetry(fl)
		return
	}
	c.finalFail(fl, n, res)
}

// scheduleRetry arms the flight's next attempt after capped
// exponential backoff.
func (c *ShardedCluster) scheduleRetry(fl *rflight) {
	backoff := c.resil.BackoffBase << fl.retries
	if backoff <= 0 || backoff > c.resil.BackoffCap {
		backoff = c.resil.BackoffCap
	}
	fl.retries++
	c.Metrics.Retries++
	if c.fleetObs != nil {
		c.fleetObs.Count("resil/retries", 1)
		c.fleetObs.Instant("retry: "+fl.fn.Name, obs.CatFault,
			obs.I("retry", int64(fl.retries)), obs.I("backoff_ms", int64(backoff.Milliseconds())))
	}
	c.enqueueResil(resilEvent{T: c.now.Add(backoff), kind: retryLaunch, fl: fl})
}

// finalFail resolves the flight with its terminal failure. The result
// is accounted on the host that produced it (n may be nil when the
// fleet never admitted any attempt — then only the dispatcher-side
// admission counters have seen the flight, mirroring the plain path's
// admission drops).
func (c *ShardedCluster) finalFail(fl *rflight, n *Node, res faas.Result) {
	fl.resolved = true
	if n != nil {
		n.account(fl.fn, fl.arrival, fl.replaced, res)
	} else {
		// Never admitted anywhere: the terminal admission drop, counted
		// dispatcher-side exactly like the plain path's.
		c.Metrics.AdmissionDrops++
		if c.fleetObs != nil {
			c.fleetObs.Count("admission_drops", 1)
			c.fleetObs.Instant("admission-drop: "+fl.fn.Name, obs.CatInvoke)
		}
	}
	if fl.onDone != nil {
		fl.onDone(res)
	}
}

// resolveSettled drains every host's settled attempts in host-ID
// order and resolves their flights: the first successful completion in
// canonical order wins, failures feed the retry machinery, and
// results of already-resolved flights are dropped (a hedge loser that
// could not be cancelled). Runs serially at a boundary, before
// fireResilEvents, so completions beat same-instant timeouts.
func (c *ShardedCluster) resolveSettled() {
	if c.resil == nil {
		return
	}
	for _, n := range c.Nodes {
		if len(n.settled) == 0 {
			continue
		}
		for _, att := range n.settled {
			c.settleAttempt(att)
		}
		clear(n.settled)
		n.settled = n.settled[:0]
	}
}

// settleAttempt resolves one completed attempt against its flight.
func (c *ShardedCluster) settleAttempt(att *attempt) {
	fl := att.fl
	fl.removeOutstanding(att)
	if fl.resolved {
		return // a racer already won; this result is ignored
	}
	if !att.res.Failed && !att.res.Dropped {
		c.resolveFlight(fl, att)
		return
	}
	c.attemptFailed(fl, att.node, att.res)
}

// resolveFlight crowns the winning attempt: deliver its result on its
// host's metrics, and withdraw every loser still racing. A loser too
// far along to cancel runs detached; its eventual result is ignored.
func (c *ShardedCluster) resolveFlight(fl *rflight, att *attempt) {
	fl.resolved = true
	if att.hedge {
		c.Metrics.HedgeWins++
		if c.fleetObs != nil {
			c.fleetObs.Count("resil/hedge_wins", 1)
			c.fleetObs.Instant("hedge-win: "+fl.fn.Name, obs.CatFault,
				obs.I("host", int64(att.node.ID)))
		}
	}
	for _, other := range fl.outstanding {
		if other == att || other.settled || other.cancelled || other.dead {
			continue
		}
		if other.ticket.TryCancel() {
			other.cancelled = true
			other.node.removeAttempt(other)
		}
	}
	fl.outstanding = fl.outstanding[:0]
	att.node.account(fl.fn, fl.arrival, fl.replaced, att.res)
	if fl.onDone != nil {
		fl.onDone(att.res)
	}
}

// replaceAttempts re-places a retired host's racing attempts, exactly
// once each — immediately, or through the pacing queue when
// recovery-storm control is on (the resilient mirror of
// replaceFlights). Settled-but-unresolved attempts keep their results;
// they resolve at the next boundary from the dead host's settled list.
func (c *ShardedCluster) replaceAttempts(n *Node) {
	atts := n.attempts
	n.attempts = nil
	for _, att := range atts {
		att.dead = true
		att.fl.removeOutstanding(att)
		if att.fl.resolved {
			continue
		}
		att.fl.replaced = true
		if c.repace != nil {
			c.queueRepace(repaceEntry{rfl: att.fl, from: n.ID})
			continue
		}
		c.Metrics.Replaced++
		if c.fleetObs != nil {
			c.fleetObs.Count("replaced", 1)
			c.fleetObs.Instant("replace: "+att.fl.fn.Name, obs.CatInvoke,
				obs.I("from_host", int64(n.ID)))
		}
		c.launchAttempt(att.fl)
	}
}

// finishResil closes out the resilience layer after the final drain:
// completions from the drain period resolve, and failures that would
// have retried become final — there are no boundaries left to retry
// at. Flights whose attempts never completed by the horizon stay
// unresolved, exactly as the plain path leaves queued work unserved.
func (c *ShardedCluster) finishResil() {
	if c.resil == nil {
		return
	}
	c.horizon = true
	c.resolveSettled()
}

// removeAttempt retires the attempt from the host's racing list,
// preserving order. Called by the completion callback (host-side) or
// by the dispatcher after a successful cancel — never both: a
// cancelled request's completion never fires.
func (n *Node) removeAttempt(att *attempt) {
	for i, a := range n.attempts {
		if a == att {
			n.attempts = append(n.attempts[:i], n.attempts[i+1:]...)
			return
		}
	}
}

// removeOutstanding drops the attempt from the flight's racing list,
// preserving launch order.
func (fl *rflight) removeOutstanding(att *attempt) {
	for i, a := range fl.outstanding {
		if a == att {
			fl.outstanding = append(fl.outstanding[:i], fl.outstanding[i+1:]...)
			return
		}
	}
}
