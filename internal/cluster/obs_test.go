package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The observability determinism suite: attaching a trace recorder must
// not perturb the simulation (tables byte-identical to an untraced
// run), and the recorded trace itself must be byte-identical at every
// shard and worker count — the TestChurnShardInvariance bar applied to
// the instrumentation.

// churnRunObs is churnRun with a trace attached; same fixture, same
// fingerprint, plus the recorded trace.
func churnRunObs(seed uint64, shards int, exec func([]func())) (uint64, string, *obs.Trace) {
	const hosts = 4
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		PhaseBounds: []sim.Time{sim.Time(dur / 2)},
	}, NewPolicy("reclaim-aware", cost))
	c.Exec = exec
	tr := &obs.Trace{Experiment: "churn", Label: fmt.Sprintf("seed%d", seed)}
	c.AttachObs(tr)
	churn := trace.GenChurn(seed, trace.ChurnConfig{
		Duration: dur, Events: 6, Hosts: hosts,
	})
	c.Play(fleetInvs(seed, 6, dur, 6, 30), PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
		Events:     fleetEvents(churn),
	})
	return c.Fired(), churnTable(c), tr
}

// exportBytes renders a trace plus its counter registry to the exact
// bytes squeezyctl would write, the strongest equality we can ask for.
func exportBytes(t *testing.T, tr *obs.Trace) string {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, []*obs.Trace{tr}, nil); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetrics(&buf, []*obs.Trace{tr}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestObsLeavesTablesIdentical is the tentpole guarantee: the same
// churned fleet run with tracing attached produces a byte-identical
// fingerprint to the untraced run, at shard counts {1, 2, hosts} and
// serial/pooled/goroutine executors. Recording observes; it never
// schedules, randomizes, or feeds back.
func TestObsLeavesTablesIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 2; seed++ {
		wantFired, wantTable := churnRun(seed, 1, nil) // tracing off
		for _, shards := range []int{1, 2, 0 /* = hosts */} {
			for _, e := range []struct {
				name string
				exec func([]func())
			}{{"serial", nil}, {"pool-2", poolExec(2)}, {"goroutines", goExec}} {
				gotFired, gotTable, tr := churnRunObs(seed, shards, e.exec)
				if gotFired != wantFired || gotTable != wantTable {
					t.Fatalf("seed %d shards=%d exec=%s: tracing perturbed the run:\n%d %s\n%d %s",
						seed, shards, e.name, gotFired, gotTable, wantFired, wantTable)
				}
				if tr.Empty() {
					t.Fatalf("seed %d: churned run recorded nothing; test is vacuous", seed)
				}
			}
		}
	}
}

// TestObsTraceShardInvariance: the exported trace (events, lanes,
// counters — the full byte stream) is identical at every shard and
// worker count. Host tracks are host-private and the fleet track is
// written only at serial boundaries, so parallelism cannot reorder
// anything; run under -race this also guards the merge.
func TestObsTraceShardInvariance(t *testing.T) {
	_, _, base := churnRunObs(1, 1, nil)
	want := exportBytes(t, base)
	for _, shards := range []int{2, 0} {
		for _, e := range []struct {
			name string
			exec func([]func())
		}{{"serial", nil}, {"pool-2", poolExec(2)}, {"pool-8", poolExec(8)}, {"goroutines", goExec}} {
			_, _, tr := churnRunObs(1, shards, e.exec)
			if got := exportBytes(t, tr); got != want {
				t.Fatalf("shards=%d exec=%s: exported trace diverges from serial export (%d vs %d bytes)",
					shards, e.name, len(got), len(want))
			}
		}
	}
}

// TestObsAutoscaleCounters: the pressure-driven autoscaler records its
// decisions — tables stay identical to the untraced run, and the
// counter registry reports the same scale-ups the metrics struct does.
func TestObsAutoscaleCounters(t *testing.T) {
	run := func(attach bool) (uint64, string, *obs.Trace, *ShardedCluster, int) {
		dur := 25 * sim.Second
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: 2, HostMemBytes: 12 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
		}, NewPolicy("reclaim-aware", cost))
		var tr *obs.Trace
		if attach {
			tr = &obs.Trace{Experiment: "autoscale"}
			c.AttachObs(tr)
		}
		invs := fleetInvs(9, 6, dur, 6, 30)
		c.Play(invs, PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(dur),
			DrainUntil: sim.Time(10 * dur),
			Autoscale: &AutoscaleConfig{
				High: 0.6, Low: 0.3, MinHosts: 1, MaxHosts: 6,
				Cooldown: 5 * sim.Second, JoinDelay: 2 * sim.Second,
			},
		})
		return c.Fired(), churnTable(c), tr, c, len(invs)
	}
	wantFired, wantTable, _, _, _ := run(false)
	gotFired, gotTable, tr, c, invoked := run(true)
	if gotFired != wantFired || gotTable != wantTable {
		t.Fatalf("tracing perturbed the autoscaled run:\n%d %s\n%d %s",
			gotFired, gotTable, wantFired, wantTable)
	}
	counters := tr.Counters()
	if got, want := counters["autoscale/up"], int64(c.Metrics.HostJoins); got != want || want == 0 {
		t.Fatalf("autoscale/up counter = %d, metrics joins = %d (want equal, nonzero)", got, want)
	}
	if got, want := counters["invocations"], int64(invoked); got != want {
		t.Fatalf("invocations counter = %d, submitted = %d", got, want)
	}
}

// TestObsDetach: AttachObs(nil) restores the disabled path — node and
// runtime recorders cleared — so a pooled fleet reused by an untraced
// cell records nothing into a stale trace.
func TestObsDetach(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	tr := &obs.Trace{Experiment: "x"}
	c.AttachObs(tr)
	c.AttachObs(nil)
	for _, n := range c.Nodes {
		if n.Obs != nil || n.RT.Obs != nil {
			t.Fatal("detach left a live recorder on a node")
		}
	}
	c.Invoke(workload.ByName("HTML"), nil)
	drainFor(c, 20*sim.Second)
	if !tr.Empty() {
		t.Fatal("detached trace still recorded events")
	}
}
