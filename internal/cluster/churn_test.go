package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// The churn determinism suite: PR 5's byte-identity guarantee — tables
// invariant to shard count and worker count — tested against dynamic
// fleets. Hosts join, fail, and drain mid-trace from fuzzed schedules,
// and every run must still be a pure function of (seed, config).

// fleetEvents adapts a generated churn schedule to the cluster's event
// stream (kept local so cluster does not import trace's generator
// types beyond tests).
func fleetEvents(churn []trace.ChurnEvent) []FleetEvent {
	events := make([]FleetEvent, len(churn))
	for i, ev := range churn {
		kind := HostJoin
		switch ev.Kind {
		case trace.ChurnFail:
			kind = HostFail
		case trace.ChurnDrain:
			kind = HostDrain
		}
		events[i] = FleetEvent{T: ev.T, Kind: kind, Host: ev.Host}
	}
	return events
}

// churnTable extends the metrics fingerprint with the fleet-dynamics
// outcome: churn counters, final fleet shape, and the phase-split
// latency numbers.
func churnTable(c *ShardedCluster) string {
	base := metricsTable(c)
	m := &c.Metrics
	s := fmt.Sprintf("%s joins=%d fails=%d drains=%d repl=%d warmlost=%d nodes=%d active=%d live=%d",
		base, m.HostJoins, m.HostFails, m.HostDrains, m.Replaced, m.WarmLost,
		len(c.Nodes), c.ActiveHosts(), c.LiveHosts())
	if m.ColdPhase != nil {
		for i := 0; i < m.ColdPhase.Phases(); i++ {
			s += fmt.Sprintf(" cold[%d]=%d/%.6f lat[%d]=%d/%.6f",
				i, m.ColdPhase.Phase(i).N(), m.ColdPhase.Phase(i).P99(),
				i, m.LatPhase.Phase(i).N(), m.LatPhase.Phase(i).P99())
		}
	}
	return s
}

// poolExec runs shard tasks on a bounded worker pool — the executor
// shape the experiments runner uses at -parallel N.
func poolExec(workers int) func([]func()) {
	return func(tasks []func()) {
		var wg sync.WaitGroup
		ch := make(chan func())
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for f := range ch {
					f()
				}
			}()
		}
		for _, f := range tasks {
			ch <- f
		}
		close(ch)
		wg.Wait()
	}
}

// churnRun plays one pressured fleet under a fuzzed churn schedule
// with the given shard count and Exec hook, and returns the full
// fingerprint.
func churnRun(seed uint64, shards int, exec func([]func())) (uint64, string) {
	const hosts = 4
	dur := 25 * sim.Second
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: hosts, HostMemBytes: 18 * units.GiB, Backend: faas.Squeezy,
		N: 4, KeepAlive: 20 * sim.Second,
		PhaseBounds: []sim.Time{sim.Time(dur / 2)},
	}, NewPolicy("reclaim-aware", cost))
	c.Exec = exec
	churn := trace.GenChurn(seed, trace.ChurnConfig{
		Duration: dur, Events: 6, Hosts: hosts,
	})
	c.Play(fleetInvs(seed, 6, dur, 6, 30), PlayConfig{
		Shards:    shards,
		TickEvery: sim.Second, TickUntil: sim.Time(dur),
		DrainUntil: sim.Time(10 * dur),
		Events:     fleetEvents(churn),
	})
	return c.Fired(), churnTable(c)
}

// TestChurnShardInvariance is the headline property: for fuzzed churn
// schedules — random join/fail/drain times, targets, and order across
// seeds — the run's fingerprint is byte-identical at shard counts
// {1, 2, hosts} and worker counts {1, 2, 8}, serial and parallel.
func TestChurnShardInvariance(t *testing.T) {
	execs := []struct {
		name string
		exec func([]func())
	}{
		{"serial", nil},
		{"pool-1", poolExec(1)},
		{"pool-2", poolExec(2)},
		{"pool-8", poolExec(8)},
		{"goroutines", goExec},
	}
	for seed := uint64(1); seed <= 3; seed++ {
		wantFired, wantTable := churnRun(seed, 1, nil)
		if wantFired == 0 {
			t.Fatalf("seed %d: degenerate run", seed)
		}
		for _, shards := range []int{1, 2, 0 /* = hosts */} {
			for _, e := range execs {
				gotFired, gotTable := churnRun(seed, shards, e.exec)
				if gotFired != wantFired || gotTable != wantTable {
					t.Fatalf("seed %d shards=%d exec=%s diverges from serial:\n%d %s\n%d %s",
						seed, shards, e.name, gotFired, gotTable, wantFired, wantTable)
				}
			}
		}
	}
}

// TestAutoscaleShardInvariance runs the pressure-driven autoscaler —
// joins and drains decided by the run itself, not a schedule — across
// shard and worker counts and requires byte-identity, plus at least
// one scale-up so the test cannot pass vacuously.
func TestAutoscaleShardInvariance(t *testing.T) {
	run := func(shards int, exec func([]func())) (uint64, string, int) {
		dur := 25 * sim.Second
		cost := costmodel.Default()
		c := NewSharded(cost, Config{
			Hosts: 2, HostMemBytes: 12 * units.GiB, Backend: faas.Squeezy,
			N: 4, KeepAlive: 20 * sim.Second,
		}, NewPolicy("reclaim-aware", cost))
		c.Exec = exec
		c.Play(fleetInvs(9, 6, dur, 6, 30), PlayConfig{
			Shards:    shards,
			TickEvery: sim.Second, TickUntil: sim.Time(dur),
			DrainUntil: sim.Time(10 * dur),
			Autoscale: &AutoscaleConfig{
				High: 0.6, Low: 0.3, MinHosts: 1, MaxHosts: 6,
				Cooldown: 5 * sim.Second, JoinDelay: 2 * sim.Second,
			},
		})
		return c.Fired(), churnTable(c), c.Metrics.HostJoins
	}
	wantFired, wantTable, joins := run(1, nil)
	if joins == 0 {
		t.Fatal("autoscaler never scaled up; test setup is vacuous")
	}
	for _, shards := range []int{2, 0} {
		for _, exec := range []func([]func()){nil, poolExec(2), goExec} {
			gotFired, gotTable, _ := run(shards, exec)
			if gotFired != wantFired || gotTable != wantTable {
				t.Fatalf("autoscale shards=%d diverges:\n%d %s\n%d %s",
					shards, gotFired, gotTable, wantFired, wantTable)
			}
		}
	}
}

// TestFailFreezesPendingEpochWork covers a host dying "during" its own
// epoch: a long-running invocation is mid-execution on the host — its
// completion event pending between boundaries — when the host fails.
// The frozen completion must never fire; the re-placed invocation
// completes exactly once, cold, on the surviving host, paying for the
// lost work. Hand-computed reference: 1 cold completion, latency >
// the function's own cold path (arrival-to-done spans the failure).
func TestFailFreezesPendingEpochWork(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	long := workload.LongHaul()
	completions, dropped := 0, 0
	var doneAt sim.Time
	c.Invoke(long, func(res faas.Result) {
		completions++
		if res.Dropped {
			dropped++
		}
		doneAt = res.Done
	})
	failAt := 2 * sim.Second
	c.AdvanceTo(sim.Time(failAt)) // host 0 is mid-cold-start
	if got := len(c.Nodes[0].inflight); got != 1 {
		t.Fatalf("inflight on host 0 = %d, want 1", got)
	}
	c.failHost(c.Nodes[0])
	if c.Metrics.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1", c.Metrics.Replaced)
	}
	drainFor(c, 120*sim.Second)
	if completions != 1 || dropped != 0 {
		t.Fatalf("completions=%d dropped=%d, want exactly one clean completion", completions, dropped)
	}
	m := c.Stats()
	if m.ColdStarts != 1 || m.WarmStarts != 0 {
		t.Fatalf("cold=%d warm=%d, want the re-placed run to cold-start once", m.ColdStarts, m.WarmStarts)
	}
	// The run restarted from scratch at the failure: completion lands
	// after failAt plus a full cold path, and the recorded latency —
	// spanning the arrival at t=0 — pays for the lost work.
	if doneAt < sim.Time(failAt+long.ExecCPU) {
		t.Fatalf("completed at %v, before a post-failure restart could finish (failed at %v, exec alone %v)",
			doneAt, failAt, long.ExecCPU)
	}
	if got := m.ColdLatMs.Max(); got < (failAt + long.ExecCPU).Milliseconds() {
		t.Fatalf("recorded latency %.0f ms hides the lost pre-failure work", got)
	}
	if c.Nodes[1].VM(long.Name) == nil {
		t.Fatal("re-placed invocation did not land on the surviving host")
	}
}

// TestFailDuringStartedDrain: the host is already draining — placement
// ineligible, deadline armed — when it fails outright. The failure
// re-places the in-flight work immediately (not at the drain
// deadline), and the deadline later finds a dead host and must be a
// no-op: one completion, one re-placement, no double.
func TestFailDuringStartedDrain(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	long := workload.LongHaul()
	completions := 0
	c.Invoke(long, func(res faas.Result) { completions++ })
	c.AdvanceTo(sim.Time(1 * sim.Second))
	c.startDrain(c.Nodes[0])
	if got := c.ActiveHosts(); got != 1 {
		t.Fatalf("active hosts after drain start = %d, want 1", got)
	}
	c.AdvanceTo(sim.Time(2 * sim.Second))
	c.failHost(c.Nodes[0]) // dies mid-drain, before the deadline
	if c.Metrics.Replaced != 1 {
		t.Fatalf("Replaced = %d, want 1 (re-place at failure, not at deadline)", c.Metrics.Replaced)
	}
	// The armed drain deadline (t=6s) must find a dead host: no second
	// re-placement, no panic.
	c.AdvanceTo(sim.Time(10 * sim.Second))
	c.fireFleetEvents(sim.Time(10 * sim.Second))
	if c.Metrics.Replaced != 1 {
		t.Fatalf("drain deadline re-placed again: Replaced = %d", c.Metrics.Replaced)
	}
	drainFor(c, 120*sim.Second)
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	if c.Metrics.HostDrains != 1 || c.Metrics.HostFails != 1 {
		t.Fatalf("drains=%d fails=%d, want 1 each", c.Metrics.HostDrains, c.Metrics.HostFails)
	}
}

// TestFailWithQueuedScaleUpGrant is the PR 2 double-completion class
// under failure: a scale-up's memory grant is queued behind the
// broker when an instance idles and serves the request warm — the
// request detaches, the provision keeps queueing. The host then dies
// with the grant still queued. Both requests completed before the
// failure, so nothing re-places, and the frozen grant must not
// resurrect anything: exactly one completion per request.
func TestFailWithQueuedScaleUpGrant(t *testing.T) {
	// Host memory fits one BFS instance but not two, so the second
	// request's scale-up queues on the broker.
	c := newTestCluster(2, 1280*units.MiB, faas.VirtioMem, "round-robin")
	fn := workload.ByName("BFS")
	var done [2]int
	c.Invoke(fn, func(res faas.Result) { done[0]++ })
	c.Invoke(fn, func(res faas.Result) { done[1]++ })
	// Let request 1 finish: its instance idles, request 2 is served
	// warm (detaching from its queued provision).
	c.AdvanceTo(sim.Time(20 * sim.Second))
	if done[0] != 1 || done[1] != 1 {
		t.Fatalf("completions before failure = %v, want both served", done)
	}
	if got := c.Nodes[0].QueuedPages(); got == 0 {
		t.Fatal("setup: no grant queued at failure time; shrink host memory")
	}
	if got := len(c.Nodes[0].inflight); got != 0 {
		t.Fatalf("inflight = %d, want 0 (both requests completed)", got)
	}
	c.failHost(c.Nodes[0])
	if c.Metrics.Replaced != 0 {
		t.Fatalf("Replaced = %d, want 0 (nothing was in flight)", c.Metrics.Replaced)
	}
	drainFor(c, 120*sim.Second)
	if done[0] != 1 || done[1] != 1 {
		t.Fatalf("completions after failure = %v, want exactly one each (no double-complete)", done)
	}
}

// TestFailLastWarmHost: the failed host held the function's only warm
// instance. The warm pool is counted lost, the frozen keep-alive never
// fires as an eviction, and the next invocation cold-starts on the
// surviving host. Hand-computed: 2 cold starts, 0 warm, 1 warm-lost,
// 0 evictions.
func TestFailLastWarmHost(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin") // 30s keep-alive
	fn := workload.ByName("HTML")
	c.Invoke(fn, nil)
	drainFor(c, 10*sim.Second) // completed, instance idle on host 0
	if got := c.Nodes[0].RT.IdleInstances(); got != 1 {
		t.Fatalf("idle instances on host 0 = %d, want 1", got)
	}
	c.failHost(c.Nodes[0])
	if c.Metrics.WarmLost != 1 {
		t.Fatalf("WarmLost = %d, want 1", c.Metrics.WarmLost)
	}
	c.Invoke(fn, nil)
	// Drain far past the keep-alive: the dead host's eviction timer is
	// frozen and must never count (the survivor's own keep-alive still
	// runs its course).
	drainFor(c, 120*sim.Second)
	m := c.Stats()
	if m.ColdStarts != 2 || m.WarmStarts != 0 {
		t.Fatalf("cold=%d warm=%d, want 2 cold (no warm pool survives the failure)",
			m.ColdStarts, m.WarmStarts)
	}
	if got := c.Nodes[0].VMs()[0].Evictions; got != 0 {
		t.Fatalf("dead host evicted %d instances after death", got)
	}
	if c.Nodes[1].VM(fn.Name) == nil {
		t.Fatal("post-failure invocation did not cold-start on the survivor")
	}
}

// TestDrainDeadlineReplacesExactlyOnce is the regression for
// costmodel.ReclaimDrainTimeout expiry during a graceful drain:
// still-running invocations re-place exactly once — no drop, no
// double-complete — raced on real goroutines so `-race` guards the
// boundary. LongHaul outlives the 5 s grace period by construction.
func TestDrainDeadlineReplacesExactlyOnce(t *testing.T) {
	cost := costmodel.Default()
	c := NewSharded(cost, Config{
		Hosts: 2, Backend: faas.Squeezy, N: 2, KeepAlive: 30 * sim.Second,
	}, NewPolicy("round-robin", cost))
	c.Exec = goExec
	long := workload.LongHaul()
	var counts [2]int32 // callbacks fire on shard workers: count atomically
	for i := range counts {
		i := i
		c.Invoke(long, func(res faas.Result) {
			if !res.Dropped {
				atomic.AddInt32(&counts[i], 1)
			}
		})
	}
	if got := len(c.Nodes[0].inflight); got != 2 {
		t.Fatalf("inflight on host 0 = %d, want both placements (N=2 slack)", got)
	}
	c.AdvanceTo(sim.Time(1 * sim.Second))
	c.startDrain(c.Nodes[0])
	deadline := sim.Time(1*sim.Second + costmodel.ReclaimDrainTimeout)
	c.AdvanceTo(deadline)
	c.settleDrains() // both still running: the drain cannot settle early
	if c.LiveHosts() != 2 {
		t.Fatal("drain settled with work in flight")
	}
	c.fireFleetEvents(deadline)
	if c.Metrics.Replaced != 2 {
		t.Fatalf("Replaced = %d, want 2 at the drain deadline", c.Metrics.Replaced)
	}
	if c.LiveHosts() != 1 {
		t.Fatalf("live hosts = %d, want 1 after the deadline retires the host", c.LiveHosts())
	}
	drainFor(c, 120*sim.Second)
	for i := range counts {
		if got := atomic.LoadInt32(&counts[i]); got != 1 {
			t.Fatalf("request %d completed %d times, want exactly once", i, got)
		}
	}
	m := c.Stats()
	if m.Dropped != 0 || m.AdmissionDrops != 0 {
		t.Fatalf("drops = %d/%d, want none", m.Dropped, m.AdmissionDrops)
	}
}

// TestDrainSettlesWhenWorkFinishes: a drain whose work completes
// before the deadline retires at the next boundary without any
// re-placement, and the warm pool is not counted lost.
func TestDrainSettlesWhenWorkFinishes(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	fn := workload.ByName("HTML") // finishes in well under the 5 s grace
	completions := 0
	c.Invoke(fn, func(res faas.Result) { completions++ })
	c.AdvanceTo(sim.Time(500 * sim.Millisecond)) // still running
	c.startDrain(c.Nodes[0])
	c.AdvanceTo(sim.Time(4 * sim.Second)) // finished inside the grace period
	c.settleDrains()
	if c.LiveHosts() != 1 || c.ActiveHosts() != 1 {
		t.Fatalf("live=%d active=%d, want the drained host retired", c.LiveHosts(), c.ActiveHosts())
	}
	if completions != 1 || c.Metrics.Replaced != 0 || c.Metrics.WarmLost != 0 {
		t.Fatalf("completions=%d replaced=%d warmlost=%d, want graceful 1/0/0",
			completions, c.Metrics.Replaced, c.Metrics.WarmLost)
	}
}

// TestJoinedHostTakesPlacements: a join lands on the fleet clock with
// a fresh deterministic identity (next monotonic ID) and immediately
// competes for placements.
func TestJoinedHostTakesPlacements(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	c.AdvanceTo(sim.Time(5 * sim.Second))
	n := c.joinHost()
	if n.ID != 2 || c.ActiveHosts() != 3 || len(c.Nodes) != 3 {
		t.Fatalf("join shape: id=%d active=%d nodes=%d", n.ID, c.ActiveHosts(), len(c.Nodes))
	}
	if n.Sched.Now() != c.Now() {
		t.Fatalf("joined host clock %v, want fleet clock %v", n.Sched.Now(), c.Now())
	}
	// Three cold placements round-robin across all three hosts.
	for _, fn := range workload.Fleet(3) {
		c.Invoke(fn, nil)
	}
	drainFor(c, 20*sim.Second)
	if got := len(n.VMs()); got != 1 {
		t.Fatalf("joined host has %d VMs, want 1 of 3 placements", got)
	}
}

// TestFleetEventNoOps: dangling targets, dead targets, and
// last-active-host removals must all be safe no-ops — fuzzed churn
// schedules produce all of them.
func TestFleetEventNoOps(t *testing.T) {
	c := newTestCluster(2, 0, faas.Squeezy, "round-robin")
	c.ScheduleFleetEvents([]FleetEvent{
		{T: 0, Kind: HostFail, Host: 99}, // never existed
		{T: 0, Kind: HostDrain, Host: 0}, // fine: drains host 0
		{T: 0, Kind: HostDrain, Host: 0}, // already draining
		{T: 0, Kind: HostFail, Host: 1},  // would remove the last active host
		{T: 0, Kind: HostDrain, Host: 1}, // likewise
	})
	c.fireFleetEvents(0)
	if c.Metrics.HostDrains != 1 || c.Metrics.HostFails != 0 {
		t.Fatalf("drains=%d fails=%d, want exactly one drain", c.Metrics.HostDrains, c.Metrics.HostFails)
	}
	if c.ActiveHosts() != 1 {
		t.Fatalf("active hosts = %d, want 1", c.ActiveHosts())
	}
}

// TestResetClearsChurnState: a churned cluster reset to a static
// config must replay identically to a fresh one — joined hosts
// trimmed, dead hosts revived, queues cleared.
func TestResetClearsChurnState(t *testing.T) {
	cost := costmodel.Default()
	cfg := Config{Hosts: 3, HostMemBytes: 24 * units.GiB, Backend: faas.Squeezy, N: 4,
		KeepAlive: 30 * sim.Second}
	replay := func(c *ShardedCluster) (uint64, string) {
		c.Play(fleetInvs(3, 8, 30*sim.Second, 4, 24), PlayConfig{
			TickEvery: sim.Second, TickUntil: sim.Time(30 * sim.Second),
			DrainUntil: sim.Time(300 * sim.Second),
		})
		return c.Fired(), churnTable(c)
	}
	fresh := NewSharded(cost, cfg, NewPolicy("reclaim-aware", cost))
	wantFired, wantTable := replay(fresh)

	churned := NewSharded(cost, cfg, NewPolicy("reclaim-aware", cost))
	churned.Play(fleetInvs(5, 8, 20*sim.Second, 4, 24), PlayConfig{
		TickEvery: sim.Second, TickUntil: sim.Time(20 * sim.Second),
		DrainUntil: sim.Time(100 * sim.Second),
		Events: []FleetEvent{
			{T: sim.Time(5 * sim.Second), Kind: HostJoin},
			{T: sim.Time(8 * sim.Second), Kind: HostFail, Host: -1},
			{T: sim.Time(12 * sim.Second), Kind: HostDrain, Host: -1},
		},
	})
	churned.Reset(cost, cfg, NewPolicy("reclaim-aware", cost))
	gotFired, gotTable := replay(churned)
	if gotFired != wantFired || gotTable != wantTable {
		t.Fatalf("reset-after-churn replay diverges:\n%d %s\n%d %s",
			gotFired, gotTable, wantFired, wantTable)
	}
}
