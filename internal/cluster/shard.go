package cluster

import (
	"time"

	"squeezy/internal/fault"
	"squeezy/internal/sim"
	"squeezy/internal/workload"
)

// The epoch engine: a fleet run is executed as per-host
// sub-simulations that rendezvous at every dispatcher boundary.
//
// Hosts in a fleet interact only through the dispatcher — warm
// routing, scale-up placement, admission — and the dispatcher only
// acts at known times: the invocation timestamps of the trace and the
// fleet-wide memory-sample ticks. Those times are the epochs. The
// engine repeats three steps:
//
//  1. advance: every host's scheduler runs to the next boundary T with
//     sim.Scheduler.RunUntilEpoch — all host events strictly before T
//     fire, host clocks land exactly on T. Hosts are partitioned
//     across shards; each shard advances its hosts in host-ID order,
//     and shards run concurrently when an Exec hook is installed
//     (disjoint hosts, so any interleaving is equivalent).
//  2. merge: with every host paused at T, the dispatcher fires the
//     boundary events at T in canonical order — invocations in trace
//     order first, then the memory sample. Routing reads host state
//     settled through T-1 plus the synchronous effects of earlier
//     boundary events at T, identically at every shard count.
//  3. repeat, until the trace and ticks are exhausted; then every host
//     drains independently to the horizon.
//
// Determinism argument: a host's event stream between boundaries is a
// pure function of its state at the last boundary (host-local events
// only, host-local seeds only); the dispatcher step is serial and
// iterates hosts in ID order; completion metrics accumulate host-
// locally and merge in host-ID order. Nothing anywhere depends on the
// shard partition or on which worker advanced which host — so tables
// are byte-identical at every shard count, and the parallel wall-clock
// floor of a fleet cell drops from the whole fleet to its slowest
// host-shard.

// Invocation is one dispatcher boundary event: fn arrives at T.
type Invocation struct {
	T  sim.Time
	Fn *workload.Function
}

// PlayConfig shapes one epoch-driven fleet run.
type PlayConfig struct {
	// Shards is the number of host partitions advanced as independent
	// tasks; 0 or anything >= the live host count means one shard per
	// host, 1 means the serial unsharded path. The shard count never
	// changes results, only how much of the fleet a single task
	// advances. Membership changes re-partition the live hosts under
	// the same requested count.
	Shards int
	// TickEvery is the fleet memory-sampling cadence (0 disables);
	// samples are taken at 0, TickEvery, ... through TickUntil.
	TickEvery sim.Duration
	TickUntil sim.Time
	// DrainUntil is the horizon every host runs to after the last
	// boundary, so slow requests finish and their latencies count.
	DrainUntil sim.Time
	// Events is the churn schedule: fleet-shape changes fired at epoch
	// boundaries on simulated time (fleetdyn.go). Events need not be
	// sorted; same-time events fire in the given order. Events past
	// DrainUntil never fire.
	Events []FleetEvent
	// Autoscale, when non-nil, drives host count from aggregate memory
	// pressure, evaluated after each memory sample — so autoscaling
	// requires TickEvery > 0.
	Autoscale *AutoscaleConfig
	// Faults is the fault plan: injection windows opened and closed at
	// epoch boundaries (faults.go). FaultSeed seeds every host's
	// probabilistic decision stream; with an empty plan the run is
	// byte-identical to a fault-free one.
	Faults    []fault.Event
	FaultSeed uint64
}

// Play replays a time-sorted invocation slice through the dispatcher
// under the epoch protocol described above. It leaves every host at
// DrainUntil and the merged fleet metrics ready in Stats(). Play is a
// thin wrapper over PlayStream (stream.go), which accepts a streaming
// source and bounds memory independently of invocation count.
func (c *ShardedCluster) Play(invs []Invocation, pc PlayConfig) {
	c.PlayStream(SliceStream(invs), pc)
}

// prepareShards records the requested shard count, partitions the live
// hosts into contiguous shard groups, and builds the per-shard advance
// and drain tasks; the epoch loop re-runs the same closures against a
// shared target time, so a run allocates per shard, not per epoch.
func (c *ShardedCluster) prepareShards(shards int) {
	c.shardsWanted = shards
	c.partitionShards(false)
}

// reshard rebuilds the partition over the surviving live hosts after a
// membership change, under the same requested shard count, keeping the
// accumulated per-shard walls. Before any partition exists (churn
// scheduled against a cluster that has not started playing) it is a
// no-op; the first AdvanceTo partitions lazily.
func (c *ShardedCluster) reshard() {
	if c.shardTasks == nil {
		return
	}
	c.partitionShards(true)
}

func (c *ShardedCluster) partitionShards(keepWalls bool) {
	shards := c.shardsWanted
	if shards <= 0 || shards > len(c.live) {
		shards = len(c.live)
	}
	// Shard groups copy the membership slice: fleet-dynamics removals
	// rewrite c.live's backing array in place, and a stale alias would
	// advance the wrong hosts.
	c.shardNodes = c.shardNodes[:0]
	for s := 0; s < shards; s++ {
		lo, hi := s*len(c.live)/shards, (s+1)*len(c.live)/shards
		c.shardNodes = append(c.shardNodes, append([]*Node(nil), c.live[lo:hi]...))
	}
	c.shardTasks = make([]func(), shards)
	c.drainTasks = make([]func(), shards)
	if !keepWalls {
		c.shardWalls = make([]time.Duration, shards)
	} else if len(c.shardWalls) < shards {
		c.shardWalls = append(c.shardWalls, make([]time.Duration, shards-len(c.shardWalls))...)
	}
	for s := 0; s < shards; s++ {
		s := s
		grp := c.shardNodes[s]
		c.shardTasks[s] = func() {
			start := time.Now()
			for _, n := range grp {
				n.Sched.RunUntilEpoch(c.epochT)
			}
			c.shardWalls[s] += time.Since(start)
		}
		c.drainTasks[s] = func() {
			start := time.Now()
			for _, n := range grp {
				n.Sched.RunUntil(c.epochT)
			}
			c.shardWalls[s] += time.Since(start)
		}
	}
}

// runTasks executes one barrier round of shard tasks: through the Exec
// hook when installed, else serially in shard order. Exec must have
// run every task to completion before returning.
func (c *ShardedCluster) runTasks(tasks []func()) {
	if c.Exec != nil && len(tasks) > 1 {
		c.Exec(tasks)
		return
	}
	for _, t := range tasks {
		t()
	}
}

// AdvanceTo advances every host to the epoch boundary t: all host
// events strictly before t fire, every host clock — and the dispatcher
// clock — lands exactly on t. The dispatcher may then route
// invocations or sample memory against the paused fleet.
func (c *ShardedCluster) AdvanceTo(t sim.Time) {
	if c.shardTasks == nil {
		c.prepareShards(0)
	}
	c.epochT = t
	c.runTasks(c.shardTasks)
	c.now = t
}

// Drain runs every host through t inclusive — unlike AdvanceTo, events
// at exactly t fire too — and sets the dispatcher clock to t. The
// final drain of a run is one giant epoch: hosts no longer interact,
// so each shard runs to the horizon independently.
func (c *ShardedCluster) Drain(t sim.Time) {
	if c.shardTasks == nil {
		c.prepareShards(0)
	}
	if t < c.now {
		t = c.now
	}
	c.epochT = t
	c.runTasks(c.drainTasks)
	c.now = t
}

// ShardWalls returns the wall-clock time each shard's advance tasks
// consumed during the runs since the last prepare — the numbers behind
// `squeezyctl -cellstats`'s per-shard breakdown. With shards advanced
// in parallel, the slowest entry bounds the cell's critical path.
func (c *ShardedCluster) ShardWalls() []time.Duration { return c.shardWalls }
