package cluster

import (
	"squeezy/internal/costmodel"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
)

// Fleet dynamics: hosts join, fail, and drain while a trace plays.
//
// Every fleet-shape change happens at a dispatcher epoch boundary,
// with all hosts paused — the same serialization point that makes
// routing deterministic makes churn deterministic. The canonical
// boundary order is: retire finished drains, fire due fleet events in
// queue order, route invocations in trace order, sample memory,
// evaluate the autoscaler. Nothing about a shape change depends on the
// shard partition or the worker pool:
//
//   - Failure: the host's warm pool is lost, its runtime is released
//     into its recycler (kernels, vmm.VMs, shells harvested), and its
//     in-flight invocations re-place through the normal dispatcher
//     tiers in routing order. The dead host's scheduler never advances
//     again, so the doomed first placements' completions never fire —
//     each invocation completes exactly once, on its final host.
//   - Drain: the host stops taking placements but keeps advancing
//     until its in-flight work completes or the drain deadline
//     (costmodel.ReclaimDrainTimeout) expires, at which point the
//     stragglers re-place exactly once and the host retires.
//   - Join: the new host gets the next monotonic host ID — IDs are
//     never reused — and its private scheduler jumps to the fleet
//     clock. Host identity (VM names, per-VM RNG streams) derives only
//     from the ID and join order, so a joined host's sub-simulation is
//     reproducible at any shard count.
//
// After every membership change the shard partition is rebuilt over
// the live hosts; partitioning never affects results, only which
// worker advances which host.

// FleetEventKind classifies one fleet-shape change.
type FleetEventKind int

const (
	// HostJoin adds a fresh host to the fleet (Host is ignored).
	HostJoin FleetEventKind = iota
	// HostFail kills a host abruptly: its warm pool is destroyed and
	// its in-flight invocations re-place immediately.
	HostFail
	// HostDrain removes a host gracefully: no new placements; running
	// work finishes, or re-places when the drain deadline expires.
	HostDrain
	// drainDeadline is the internal expiry of a started drain.
	drainDeadline
)

// FleetEvent is one scheduled fleet-shape change on simulated time.
type FleetEvent struct {
	T    sim.Time
	Kind FleetEventKind
	// Host targets a host ID for HostFail/HostDrain; -1 picks the
	// busiest active host at event time (the worst-case victim).
	// Targeting a host that is already gone — or never existed — is a
	// no-op, as is removing the last active host.
	Host int
}

// AutoscaleConfig drives host count from aggregate memory pressure
// (committed / capacity over the active hosts), evaluated at every
// memory-sample tick — so autoscaling requires PlayConfig.TickEvery.
type AutoscaleConfig struct {
	// High and Low are the scale-up and scale-down pressure thresholds.
	High, Low float64
	// MinHosts and MaxHosts bound the active host count (defaults: 1
	// and unbounded).
	MinHosts, MaxHosts int
	// Cooldown is the minimum time between autoscaler actions.
	Cooldown sim.Duration
	// JoinDelay models host provisioning: a scale-up decided at T adds
	// the host at T+JoinDelay.
	JoinDelay sim.Duration
}

// ScheduleFleetEvents queues churn events for the next Play. Events
// need not be sorted; same-time events fire in the given order.
func (c *ShardedCluster) ScheduleFleetEvents(events []FleetEvent) {
	for _, ev := range events {
		c.enqueueFleet(ev)
	}
}

// ActiveHosts returns the number of placement-eligible hosts.
func (c *ShardedCluster) ActiveHosts() int { return len(c.active) }

// LiveHosts returns the number of hosts still advancing (active +
// draining).
func (c *ShardedCluster) LiveHosts() int { return len(c.live) }

// enqueueFleet inserts the event keeping the queue sorted by time,
// FIFO among equal times.
func (c *ShardedCluster) enqueueFleet(ev FleetEvent) {
	i := len(c.fleetQ)
	for i > 0 && c.fleetQ[i-1].T > ev.T {
		i--
	}
	c.fleetQ = append(c.fleetQ, FleetEvent{})
	copy(c.fleetQ[i+1:], c.fleetQ[i:])
	c.fleetQ[i] = ev
}

// fireFleetEvents applies every queued event due at or before t. The
// fleet must be paused at boundary t.
func (c *ShardedCluster) fireFleetEvents(t sim.Time) {
	for len(c.fleetQ) > 0 && c.fleetQ[0].T <= t {
		ev := c.fleetQ[0]
		c.fleetQ = c.fleetQ[1:]
		c.applyFleetEvent(ev)
	}
}

func (c *ShardedCluster) applyFleetEvent(ev FleetEvent) {
	switch ev.Kind {
	case HostJoin:
		c.joinHost()
	case HostFail:
		if n := c.victim(ev.Host, true); n != nil {
			c.failHost(n)
		}
	case HostDrain:
		if n := c.victim(ev.Host, false); n != nil {
			c.startDrain(n)
		}
	case drainDeadline:
		n := c.Nodes[ev.Host]
		if n.state == nodeDraining {
			c.expireDrain(n)
		}
	}
}

// victim resolves an event's target host. -1 picks the busiest active
// host (most live instances, tie to the lowest ID). A dangling ID, a
// host already dead (or already draining, for a drain), or a removal
// that would leave no active host all resolve to nil — churn schedules
// are fuzzed, so impossible events must be safe no-ops.
func (c *ShardedCluster) victim(id int, allowDraining bool) *Node {
	var n *Node
	switch {
	case id == -1:
		best := -1
		for _, cand := range c.active {
			if live := cand.LiveInstances(); live > best {
				n, best = cand, live
			}
		}
	case id >= 0 && id < len(c.Nodes):
		n = c.Nodes[id]
	}
	if n == nil || n.state == nodeDead {
		return nil
	}
	if n.state == nodeDraining && !allowDraining {
		return nil
	}
	if !c.canRemove(n) {
		return nil
	}
	return n
}

// canRemove reports whether removing n leaves the fleet serviceable:
// never remove the last placement-eligible host, and never the last
// live one (a partitioned host is live but not placement-eligible, so
// both guards are needed once partitions exist). Shared by victim and
// the rack-level expansion (faults.go), so a rack holding the whole
// fleet degrades to a partial loss instead of an empty fleet.
func (c *ShardedCluster) canRemove(n *Node) bool {
	if n.state == nodeActive && n.partitioned == 0 && len(c.active) <= 1 {
		return false
	}
	return len(c.live) > 1
}

// joinHost adds a fresh host at the fleet clock. The host ID is the
// next monotonic index — dead hosts keep their IDs — and the host's
// private scheduler jumps to now, so its first event lands on the
// fleet timeline.
func (c *ShardedCluster) joinHost() *Node {
	n := c.newNode(len(c.Nodes))
	n.Sched.Jump(c.now)
	c.Nodes = append(c.Nodes, n)
	c.active = append(c.active, n)
	c.live = append(c.live, n)
	c.Metrics.HostJoins++
	c.attachNodeObs(n)
	if c.faultsOn {
		c.armInjector(n) // before the host can boot a VM
	}
	if c.fleetObs != nil {
		c.fleetObs.Count("fleet/joins", 1)
		c.fleetObs.Instant("host-join", obs.CatFleet,
			obs.I("host", int64(n.ID)), obs.I("rack", int64(n.Rack)),
			obs.I("active", int64(len(c.active))))
	}
	c.reshard()
	return n
}

// failHost kills the host abruptly: warm pool destroyed, runtime
// released into the host's recycler, in-flight invocations re-placed
// through the dispatcher in routing order, exactly once each.
func (c *ShardedCluster) failHost(n *Node) {
	c.Metrics.HostFails++
	warmLost := n.RT.IdleInstances()
	c.Metrics.WarmLost += warmLost
	if c.fleetObs != nil {
		c.fleetObs.Count("fleet/fails", 1)
		c.fleetObs.Count("warm_lost", int64(warmLost))
		c.fleetObs.Instant("host-fail", obs.CatFleet,
			obs.I("host", int64(n.ID)), obs.I("rack", int64(n.Rack)),
			obs.I("warm_lost", int64(warmLost)),
			obs.I("inflight", int64(len(n.inflight)+len(n.attempts))))
	}
	c.retire(n)
	c.replaceFlights(n)
	c.replaceAttempts(n)
}

// startDrain stops placements on the host and arms the drain deadline.
// The host keeps advancing with the fleet until its in-flight work
// completes (settleDrains) or the deadline fires (expireDrain).
func (c *ShardedCluster) startDrain(n *Node) {
	c.Metrics.HostDrains++
	if c.fleetObs != nil {
		c.fleetObs.Count("fleet/drains", 1)
		c.fleetObs.Instant("host-drain", obs.CatFleet,
			obs.I("host", int64(n.ID)), obs.I("inflight", int64(len(n.inflight))))
	}
	n.state = nodeDraining
	c.active = removeNode(c.active, n)
	c.enqueueFleet(FleetEvent{
		T: c.now.Add(costmodel.ReclaimDrainTimeout), Kind: drainDeadline, Host: n.ID,
	})
}

// expireDrain fires when a draining host's grace period ends with work
// still in flight: the stragglers re-place exactly once — their doomed
// completions can never fire, the retired host's scheduler is frozen —
// and the host retires.
func (c *ShardedCluster) expireDrain(n *Node) {
	if c.fleetObs != nil {
		c.fleetObs.Instant("drain-deadline", obs.CatFleet,
			obs.I("host", int64(n.ID)), obs.I("stragglers", int64(len(n.inflight)+len(n.attempts))))
	}
	c.retire(n)
	c.replaceFlights(n)
	c.replaceAttempts(n)
}

// settleDrains retires draining hosts whose in-flight work has
// completed. Called at every epoch boundary, before fleet events and
// routing, so a finished drain frees its shard slot promptly.
func (c *ShardedCluster) settleDrains() {
	var done []*Node // collected first: retire edits c.live in place
	for _, n := range c.live {
		if n.state == nodeDraining && len(n.inflight) == 0 && len(n.attempts) == 0 {
			done = append(done, n)
		}
	}
	for _, n := range done {
		c.retire(n)
	}
}

// retire removes the host from the fleet for good: its runtime
// releases every VM into the host's recycler (guest kernels, vmm.VMs,
// agent shells — the same harvest a finished run performs), and its
// scheduler never advances again, freezing any event still pending on
// it. The shard partition is rebuilt over the surviving hosts.
func (c *ShardedCluster) retire(n *Node) {
	n.state = nodeDead
	c.active = removeNode(c.active, n)
	c.live = removeNode(c.live, n)
	n.RT.Release()
	c.reshard()
}

// replaceFlights re-places a retired host's in-flight invocations in
// their original routing order — immediately, or through the pacing
// queue when recovery-storm control is on (repace.go). Each flight
// keeps its arrival time, so its eventual latency pays for the lost
// work. Re-placement runs after retirement: the dispatcher no longer
// sees the dead host.
func (c *ShardedCluster) replaceFlights(n *Node) {
	flights := n.inflight
	n.inflight = nil // ownership moves; the dead host drops its list
	for _, fl := range flights {
		fl.replaced = true
		if c.repace != nil {
			c.queueRepace(repaceEntry{fl: fl, from: n.ID})
			continue
		}
		c.Metrics.Replaced++
		if c.fleetObs != nil {
			c.fleetObs.Count("replaced", 1)
			c.fleetObs.Instant("replace: "+fl.fn.Name, obs.CatInvoke,
				obs.I("from_host", int64(n.ID)))
		}
		c.route(fl)
	}
}

// autoscaleTick evaluates the autoscaler against aggregate memory
// pressure at a sample tick. Scale-ups are provisioning-delayed joins;
// scale-downs drain the idlest active host (fewest live instances, tie
// to the highest ID — the newest host retires first).
func (c *ShardedCluster) autoscaleTick() {
	as := c.autoscale
	if as == nil {
		return
	}
	if c.scaled && c.now.Sub(c.lastScale) < as.Cooldown {
		return
	}
	capacity := c.activeCapacityPages()
	if capacity <= 0 {
		return // unlimited or empty fleet: pressure is undefined
	}
	var committed int64
	for _, n := range c.active {
		committed += n.Host.CommittedPages()
	}
	pressure := float64(committed) / float64(capacity)
	if c.fleetObs != nil {
		c.fleetObs.Gauge("autoscale/pressure", obs.CatFleet, pressure)
	}

	minHosts, maxHosts := as.MinHosts, as.MaxHosts
	if minHosts < 1 {
		minHosts = 1
	}
	if maxHosts <= 0 {
		maxHosts = int(^uint(0) >> 1)
	}
	switch {
	case pressure >= as.High && len(c.active)+c.queuedJoins() < maxHosts:
		c.enqueueFleet(FleetEvent{T: c.now.Add(as.JoinDelay), Kind: HostJoin, Host: -1})
		c.lastScale, c.scaled = c.now, true
		if c.fleetObs != nil {
			c.fleetObs.Count("autoscale/up", 1)
			c.fleetObs.Instant("autoscale/up", obs.CatFleet,
				obs.F("pressure", pressure), obs.I("active", int64(len(c.active))))
		}
	case pressure <= as.Low && len(c.active) > minHosts:
		if n := c.idlestActive(); n != nil {
			c.startDrain(n)
			c.lastScale, c.scaled = c.now, true
			if c.fleetObs != nil {
				c.fleetObs.Count("autoscale/down", 1)
				c.fleetObs.Instant("autoscale/down", obs.CatFleet,
					obs.F("pressure", pressure), obs.I("host", int64(n.ID)))
			}
		}
	}
}

// queuedJoins counts joins already in flight, so a sustained pressure
// spike doesn't over-provision while provisioning delay runs.
func (c *ShardedCluster) queuedJoins() int {
	joins := 0
	for _, ev := range c.fleetQ {
		if ev.Kind == HostJoin {
			joins++
		}
	}
	return joins
}

// idlestActive returns the scale-down victim: fewest live instances,
// tie to the highest ID.
func (c *ShardedCluster) idlestActive() *Node {
	var best *Node
	bestLive := 0
	for _, n := range c.active {
		if live := n.LiveInstances(); best == nil || live <= bestLive {
			best, bestLive = n, live
		}
	}
	return best
}

// removeNode deletes n from the slice preserving order. The backing
// array is rewritten in place — shard partitions copy the membership
// slices, so no stale alias observes the shift.
func removeNode(nodes []*Node, n *Node) []*Node {
	for i, x := range nodes {
		if x == n {
			return append(nodes[:i], nodes[i+1:]...)
		}
	}
	return nodes
}

type nodeState uint8

const (
	nodeActive nodeState = iota
	nodeDraining
	nodeDead
)
