// Package cluster scales the single-host simulation out to a fleet: N
// simulated hosts — each with its own hostmem.Host, faas.Runtime,
// reclamation backend, and memory broker — advance under one
// sim.Scheduler, fronted by a dispatcher that routes invocations and
// places cold scale-ups through a pluggable Policy.
//
// The split mirrors real FaaS-on-hypervisor stacks (a cluster-facing
// gateway over per-host runtimes): host-local mechanisms decide *how*
// memory is reclaimed, the cluster policy decides *which* host pays
// plug latency — and, under memory pressure, whose backend pays the
// unplug latency the paper measures. That interaction is exactly what
// the cluster-* experiments sweep.
//
// Determinism: the dispatcher holds no RNG, iterates hosts in slice
// order, and breaks every tie by host ID, so a fleet run is a pure
// function of its traces and seed like every other layer.
package cluster

import (
	"fmt"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Config sizes a fleet. The zero value of optional fields selects
// sensible defaults (see New).
type Config struct {
	// Hosts is the number of simulated hosts.
	Hosts int
	// HostMemBytes is each host's memory capacity; 0 means unlimited
	// (no placement decision ever matters — useful as a baseline).
	HostMemBytes int64
	// Backend is the reclamation mechanism of every VM in the fleet.
	Backend faas.BackendKind
	// N is the per-VM concurrency factor (default 8).
	N int
	// KeepAlive is the idle window before instance eviction (default
	// 60 s; shorter than the paper's 2 min so fleet runs churn).
	KeepAlive sim.Duration
	// ProactiveFactor is the runtime's pressure over-eviction factor
	// (default 1.0; the Harvest backend conventionally uses 1.5).
	ProactiveFactor float64
	// HarvestBufferInstances caps each Harvest VM's slack buffer in
	// instance sizes (default 2).
	HarvestBufferInstances int
}

// Node is one simulated host: a private memory pool and runtime, plus
// the per-function VMs the dispatcher has placed on it.
type Node struct {
	ID      int
	Backend faas.BackendKind
	Host    *hostmem.Host
	RT      *faas.Runtime

	vms     map[string]*faas.FuncVM
	vmOrder []*faas.FuncVM // creation order, for deterministic iteration
}

// LiveInstances returns live (starting, busy, idle) instances on the
// host.
func (n *Node) LiveInstances() int { return n.RT.LiveInstances() }

// FreePages returns pages available for new grants on the host.
func (n *Node) FreePages() int64 { return n.RT.Broker.FreePages() }

// QueuedPages returns pages queued behind the host's broker.
func (n *Node) QueuedPages() int64 { return n.RT.Broker.QueuedPages() }

// HeadroomPages returns free pages net of the queue already waiting for
// them — the memory a new placement could actually claim.
func (n *Node) HeadroomPages() int64 { return n.FreePages() - n.QueuedPages() }

// VM returns the host's VM for the named function, or nil.
func (n *Node) VM(fnName string) *faas.FuncVM { return n.vms[fnName] }

// VMs returns the host's VMs in creation order.
func (n *Node) VMs() []*faas.FuncVM { return n.vmOrder }

// Metrics aggregates fleet-wide outcomes. Latency samples are in
// milliseconds.
type Metrics struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	// Dropped counts requests that entered a VM and failed (OOM-retry
	// budget exhausted); AdmissionDrops counts requests no host could
	// even accept a VM for.
	Dropped        int
	AdmissionDrops int

	ColdLatMs *stats.Sample
	WarmLatMs *stats.Sample
	// MemWaitMs samples the memory-queueing phase of every cold start —
	// the fleet's reclamation stall time.
	MemWaitMs *stats.Sample

	// Committed and Populated are fleet-wide memory time series in GiB,
	// fed by SampleMemory.
	Committed stats.TimeSeries
	Populated stats.TimeSeries
}

// Cluster is a fleet of hosts behind one dispatcher.
type Cluster struct {
	Sched  *sim.Scheduler
	Cost   *costmodel.Model
	Cfg    Config
	Policy Policy
	Nodes  []*Node

	// Recycle, when non-nil, backs every host runtime's guest kernels
	// with a shared arena cache; Reset harvests the previous fleet's
	// kernels into it before rebuilding, so consecutive sweeps reuse
	// one set of buddy ord spans and bitmaps.
	Recycle *guestos.Recycler

	Metrics Metrics
}

// withDefaults fills the zero-valued optional fields.
func (cfg Config) withDefaults() Config {
	if cfg.Hosts <= 0 {
		panic("cluster: need at least one host")
	}
	if cfg.N <= 0 {
		cfg.N = 8
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 60 * sim.Second
	}
	if cfg.ProactiveFactor <= 0 {
		cfg.ProactiveFactor = 1.0
		if cfg.Backend == faas.Harvest {
			cfg.ProactiveFactor = 1.5
		}
	}
	if cfg.HarvestBufferInstances <= 0 {
		cfg.HarvestBufferInstances = 2
	}
	return cfg
}

// New builds a fleet of cfg.Hosts identical hosts under sched, with
// placement delegated to policy.
func New(sched *sim.Scheduler, cost *costmodel.Model, cfg Config, policy Policy) *Cluster {
	c := &Cluster{
		Sched: sched, Cost: cost, Cfg: cfg.withDefaults(), Policy: policy,
		Metrics: Metrics{
			ColdLatMs: &stats.Sample{}, WarmLatMs: &stats.Sample{}, MemWaitMs: &stats.Sample{},
		},
	}
	for i := 0; i < c.Cfg.Hosts; i++ {
		c.Nodes = append(c.Nodes, c.newNode(i))
	}
	return c
}

// newNode builds one host under the cluster's current config.
func (c *Cluster) newNode(id int) *Node {
	host := hostmem.New(c.Cfg.HostMemBytes)
	rt := faas.NewRuntime(c.Sched, host, c.Cost)
	rt.ProactiveFactor = c.Cfg.ProactiveFactor
	rt.Recycle = c.Recycle
	return &Node{
		ID: id, Backend: c.Cfg.Backend, Host: host, RT: rt,
		vms: make(map[string]*faas.FuncVM),
	}
}

// Reset rebuilds the cluster for a new run under a (possibly
// different) config and policy, reusing the fleet's storage: node
// structs and their VM maps stay, each host pool is reset in place,
// the previous run's guest kernels are harvested into the recycler,
// and the metrics buffers are emptied rather than reallocated. The
// scheduler must already be reset to the time the new run starts from.
// A reset cluster replays a run identically to a freshly constructed
// one.
func (c *Cluster) Reset(cost *costmodel.Model, cfg Config, policy Policy) {
	c.Release()
	c.Cost = cost
	c.Cfg = cfg.withDefaults()
	c.Policy = policy
	if len(c.Nodes) > c.Cfg.Hosts {
		clear(c.Nodes[c.Cfg.Hosts:])
		c.Nodes = c.Nodes[:c.Cfg.Hosts]
	}
	for i, n := range c.Nodes {
		n.ID = i
		n.Backend = c.Cfg.Backend
		n.Host.Reset(c.Cfg.HostMemBytes)
		rt := faas.NewRuntime(c.Sched, n.Host, cost)
		rt.ProactiveFactor = c.Cfg.ProactiveFactor
		rt.Recycle = c.Recycle
		n.RT = rt
		clear(n.vms)
		clear(n.vmOrder) // drop stale *FuncVM pointers
		n.vmOrder = n.vmOrder[:0]
	}
	for len(c.Nodes) < c.Cfg.Hosts {
		c.Nodes = append(c.Nodes, c.newNode(len(c.Nodes)))
	}
	m := &c.Metrics
	m.Invocations, m.ColdStarts, m.WarmStarts, m.Dropped, m.AdmissionDrops = 0, 0, 0, 0, 0
	m.ColdLatMs.Reset()
	m.WarmLatMs.Reset()
	m.MemWaitMs.Reset()
	m.Committed.Reset()
	m.Populated.Reset()
}

// Release harvests every node's guest kernels into the recycler
// (no-op without one). The fleet's VMs must not be used afterwards;
// Reset calls it before rebuilding.
func (c *Cluster) Release() {
	if c.Recycle == nil {
		return
	}
	for _, n := range c.Nodes {
		n.RT.Release()
	}
}

// Invoke routes one invocation of fn through the dispatcher, in three
// tiers: (1) a host with a warm idle instance serves it immediately;
// (2) otherwise the policy picks among hosts whose existing VM for fn
// still has concurrency slots (scale up in place — booting a second VM
// for a function whose VM has room just burns boot memory); (3) only
// when every existing VM is saturated does the policy pick across the
// whole fleet, booting a new VM if needed. onDone may be nil.
func (c *Cluster) Invoke(fn *workload.Function, onDone func(faas.Result)) {
	c.Metrics.Invocations++
	target := c.warmNode(fn)
	if target == nil {
		if cands := c.nodesWithSlack(fn); len(cands) > 0 {
			target = c.Policy.Pick(cands, fn)
		} else {
			target = c.Policy.Pick(c.Nodes, fn)
		}
	}
	fv := c.vmOn(target, fn)
	if fv == nil {
		fv = c.fallbackVM(fn)
	}
	if fv == nil {
		// No host can even boot a VM for fn: admission-drop rather than
		// panic the host model with an unbackable boot.
		c.Metrics.AdmissionDrops++
		if onDone != nil {
			now := c.Sched.Now()
			onDone(faas.Result{Fn: fn, Arrival: now, Done: now, Dropped: true})
		}
		return
	}
	fv.Invoke(fn, c.record(onDone))
}

// warmNode returns the host that should serve fn warm — the one with
// the most idle instances of fn (draining the largest warm pool first),
// ties to the lowest ID — or nil when no host has one. Warm routing is
// policy-independent on purpose: policies compete on cold placement,
// not on rediscovering instance affinity.
func (c *Cluster) warmNode(fn *workload.Function) *Node {
	var best *Node
	bestIdle := 0
	for _, n := range c.Nodes {
		fv := n.vms[fn.Name]
		if fv == nil {
			continue
		}
		if idle := fv.IdleInstances(); idle > bestIdle {
			best, bestIdle = n, idle
		}
	}
	return best
}

// nodesWithSlack returns hosts whose existing VM for fn has spare
// concurrency, in host order.
func (c *Cluster) nodesWithSlack(fn *workload.Function) []*Node {
	var out []*Node
	for _, n := range c.Nodes {
		if fv := n.vms[fn.Name]; fv != nil && fv.LiveInstances() < c.Cfg.N {
			out = append(out, n)
		}
	}
	return out
}

// vmOn returns the host's VM for fn, booting one if the host can back
// its boot footprint. It returns nil when the host is too full to boot.
func (c *Cluster) vmOn(n *Node, fn *workload.Function) *faas.FuncVM {
	if fv := n.vms[fn.Name]; fv != nil {
		return fv
	}
	cfg := faas.VMConfig{
		Name:      fmt.Sprintf("%s@h%02d", fn.Name, n.ID),
		Kind:      c.Cfg.Backend,
		Fn:        fn,
		N:         c.Cfg.N,
		KeepAlive: c.Cfg.KeepAlive,
	}
	if c.Cfg.Backend == faas.Harvest {
		cfg.HarvestBufferBytes = int64(c.Cfg.HarvestBufferInstances) *
			units.AlignUp(fn.MemoryLimit, units.BlockSize)
	}
	if units.BytesToPages(cfg.BootFootprintBytes()) > n.FreePages() {
		return nil
	}
	fv := n.RT.AddVM(cfg)
	n.vms[fn.Name] = fv
	n.vmOrder = append(n.vmOrder, fv)
	return fv
}

// fallbackVM handles a policy pick that cannot boot fn's VM: queue on
// the least-backlogged host that already runs fn, else boot on the host
// with the most free memory that can. Returns nil when the whole fleet
// is too full.
func (c *Cluster) fallbackVM(fn *workload.Function) *faas.FuncVM {
	var existing *faas.FuncVM
	bestQueue := 0
	for _, n := range c.Nodes {
		if fv := n.vms[fn.Name]; fv != nil {
			if existing == nil || fv.QueueLen() < bestQueue {
				existing, bestQueue = fv, fv.QueueLen()
			}
		}
	}
	if existing != nil {
		return existing
	}
	var roomiest *Node
	for _, n := range c.Nodes {
		if roomiest == nil || n.FreePages() > roomiest.FreePages() {
			roomiest = n
		}
	}
	return c.vmOn(roomiest, fn)
}

// record wraps a caller's completion callback with metrics accounting.
func (c *Cluster) record(onDone func(faas.Result)) func(faas.Result) {
	return func(res faas.Result) {
		switch {
		case res.Dropped:
			c.Metrics.Dropped++
		case res.Cold:
			c.Metrics.ColdStarts++
			c.Metrics.ColdLatMs.Add(res.Latency.Milliseconds())
			c.Metrics.MemWaitMs.Add(res.Phases.MemWait.Milliseconds())
		default:
			c.Metrics.WarmStarts++
			c.Metrics.WarmLatMs.Add(res.Latency.Milliseconds())
		}
		if onDone != nil {
			onDone(res)
		}
	}
}

// SampleMemory appends one fleet-wide committed/populated point (GiB)
// at the current virtual time.
func (c *Cluster) SampleMemory() {
	var committed, populated int64
	for _, n := range c.Nodes {
		committed += n.Host.CommittedPages()
		populated += n.Host.PopulatedPages()
	}
	t := c.Sched.Now().Seconds()
	c.Metrics.Committed.Append(t, float64(units.PagesToBytes(committed))/float64(units.GiB))
	c.Metrics.Populated.Append(t, float64(units.PagesToBytes(populated))/float64(units.GiB))
}

// StartMemoryTicker samples fleet memory every interval until the given
// virtual time. The series buffers are pre-sized for the full window.
func (c *Cluster) StartMemoryTicker(every sim.Duration, until sim.Time) {
	if every > 0 {
		points := int(until.Sub(c.Sched.Now())/every) + 2
		c.Metrics.Committed.Reserve(points)
		c.Metrics.Populated.Reserve(points)
	}
	var tick func()
	tick = func() {
		c.SampleMemory()
		if c.Sched.Now() < until {
			c.Sched.After(every, tick)
		}
	}
	c.Sched.At(c.Sched.Now(), tick)
}

// MemoryEfficiency returns the time-averaged fraction of committed host
// memory the guests actually use (populated/committed over the sampled
// window) — the fleet-scale version of Figure 1's idle-memory gap.
func (c *Cluster) MemoryEfficiency() float64 {
	ci := c.Metrics.Committed.Integral()
	if ci <= 0 {
		return 0
	}
	return c.Metrics.Populated.Integral() / ci
}

// CommittedGiBs returns the fleet's committed-memory time integral
// (GiB·s), the cost metric of Figure 10 at fleet scale.
func (c *Cluster) CommittedGiBs() float64 { return c.Metrics.Committed.Integral() }

// Evictions sums instance evictions across the fleet.
func (c *Cluster) Evictions() int {
	total := 0
	for _, n := range c.Nodes {
		for _, fv := range n.vmOrder {
			total += fv.Evictions
		}
	}
	return total
}

// VMCount returns the number of VMs booted across the fleet.
func (c *Cluster) VMCount() int {
	total := 0
	for _, n := range c.Nodes {
		total += len(n.vmOrder)
	}
	return total
}
