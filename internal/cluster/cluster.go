package cluster

import (
	"fmt"
	"time"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/fault"
	"squeezy/internal/hostmem"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

// Config sizes a fleet. The zero value of optional fields selects
// sensible defaults (see NewSharded).
type Config struct {
	// Hosts is the number of simulated hosts.
	Hosts int
	// HostMemBytes is each host's memory capacity; 0 means unlimited
	// (no placement decision ever matters — useful as a baseline).
	HostMemBytes int64
	// Backend is the reclamation mechanism of every VM in the fleet.
	Backend faas.BackendKind
	// N is the per-VM concurrency factor (default 8).
	N int
	// KeepAlive is the idle window before instance eviction (default
	// 60 s; shorter than the paper's 2 min so fleet runs churn).
	KeepAlive sim.Duration
	// ProactiveFactor is the runtime's pressure over-eviction factor
	// (default 1.0; the Harvest backend conventionally uses 1.5).
	ProactiveFactor float64
	// HarvestBufferInstances caps each Harvest VM's slack buffer in
	// instance sizes (default 2).
	HarvestBufferInstances int
	// PhaseBounds, when non-empty, splits latency metrics into phases at
	// the given simulated times (strictly ascending): phase i covers
	// [bounds[i-1], bounds[i]). Churn experiments bound phases at the
	// failure/drain instant to isolate the post-event cold-start storm.
	PhaseBounds []sim.Time
	// Resilience, when non-nil, turns on the dispatcher resilience
	// layer — per-attempt timeouts with capped-backoff retries, hedged
	// dispatch, load shedding (resilience.go). nil preserves the plain
	// dispatch path bit-for-bit.
	Resilience *ResilienceConfig
	// Topology, when non-nil, places hosts into failure domains
	// (topology.go) and optionally gives them heterogeneous memory.
	// nil is a flat fleet: domain fault events are no-ops and the
	// domain-aware policies degrade to headroom scoring.
	Topology *Topology
	// Repace, when non-nil, turns on recovery-storm control
	// (repace.go): displaced in-flight work re-dispatches through a
	// paced, priority-ordered queue instead of slamming the survivors
	// in one boundary. nil preserves immediate re-placement bit-for-bit.
	Repace *RepaceConfig
	// Sketch, when non-nil, switches every latency sample — per host
	// and fleet-merged, phased and unphased — to bounded-memory
	// reservoir mode (stats.SketchConfig): O(K) memory per sample at
	// any invocation count, percentiles within stats.RankErrorBound(K)
	// of exact. Each sample's priority stream is derived from the host
	// ID and metric index, so sketched runs stay shard-, worker-, and
	// merge-order invariant. nil (the default) retains every
	// observation exactly, preserving the recorded tables bit-for-bit.
	Sketch *stats.SketchConfig
}

// Node is one simulated host: a private scheduler, memory pool, and
// runtime, plus the per-function VMs the dispatcher has placed on it.
// Between dispatcher epochs a node's simulation is fully independent
// of every other node's, which is what lets shard workers advance
// disjoint node sets in parallel.
type Node struct {
	ID      int
	Backend faas.BackendKind
	// Rack and Zone are the host's failure domains (both 0 on a flat
	// fleet), fixed at construction from Config.Topology.
	Rack int
	Zone int
	// Sched is the host's private event scheduler. All of the host's
	// simulation state (runtime, broker, VMs, kernels) lives on it;
	// the dispatcher only touches it at epoch boundaries, when the
	// host is paused at the boundary time.
	Sched *sim.Scheduler
	Host  *hostmem.Host
	RT    *faas.Runtime
	// Rec is the host's private recycler: kernels, vmm.VMs, and FuncVM
	// shells released by a finished run back this host's next run.
	// Per-host arenas keep shard workers from ever sharing pool state.
	Rec *faas.Recycler
	// M accumulates the host's completion-side metrics. Completion
	// callbacks run while shard workers advance the host, so they must
	// write host-local state only; the fleet view is merged from the
	// per-host metrics in host-ID order (Stats).
	M NodeMetrics
	// Obs is the host's trace recorder (nil when tracing is off). Like M
	// it is host-private: written only by whichever worker advances this
	// host, merged in host-ID order at export.
	Obs *obs.Recorder

	vms     map[string]*faas.FuncVM
	vmOrder []*faas.FuncVM // creation order, for deterministic iteration

	// state tracks fleet membership (fleetdyn.go): active hosts take new
	// placements, draining hosts only finish what they have, dead hosts
	// never advance again.
	state nodeState
	// partitioned counts the open RackPartition windows covering this
	// host (faults.go). While > 0 an active host leaves the placement
	// set but keeps advancing; a counter rather than a flag so
	// overlapping windows stack and unwind correctly.
	partitioned int
	// inflight is the host's dispatcher-routed invocations that have not
	// completed, in routing order. The dispatcher appends at route time
	// (host paused at a boundary); the completion wrapper removes
	// host-locally. On failure or drain expiry the survivors re-place in
	// this order, exactly once each.
	inflight []*flight

	// Resilience-layer state (resilience.go): attempts is the host's
	// racing attempts (the resilient inflight); settled is the completed
	// attempts parked host-locally until the dispatcher resolves them at
	// the next boundary. Both empty when resilience is off.
	attempts []*attempt
	settled  []*attempt
	// inj is the host's fault injector (faults.go); nil when the run has
	// no fault plan.
	inj *fault.Injector
}

// flight is one dispatcher-routed invocation from arrival to
// completion. It survives host failure: re-placement routes the same
// flight to a new host, and the recorded latency spans the original
// arrival — lost work is paid, not hidden.
type flight struct {
	fn       *workload.Function
	arrival  sim.Time
	onDone   func(faas.Result)
	replaced bool // re-placed after a host failure or drain expiry
}

// LiveInstances returns live (starting, busy, idle) instances on the
// host.
func (n *Node) LiveInstances() int { return n.RT.LiveInstances() }

// FreePages returns pages available for new grants on the host.
func (n *Node) FreePages() int64 { return n.RT.Broker.FreePages() }

// QueuedPages returns pages queued behind the host's broker.
func (n *Node) QueuedPages() int64 { return n.RT.Broker.QueuedPages() }

// HeadroomPages returns free pages net of the queue already waiting for
// them — the memory a new placement could actually claim.
func (n *Node) HeadroomPages() int64 { return n.FreePages() - n.QueuedPages() }

// VM returns the host's VM for the named function, or nil.
func (n *Node) VM(fnName string) *faas.FuncVM { return n.vms[fnName] }

// VMs returns the host's VMs in creation order.
func (n *Node) VMs() []*faas.FuncVM { return n.vmOrder }

// NodeMetrics is one host's completion-side accounting. Latency
// samples are in milliseconds.
type NodeMetrics struct {
	ColdStarts int
	WarmStarts int
	Dropped    int
	// Failed counts completions whose work broke — injected boot
	// failures and crashes, or a resilient flight's exhausted retry
	// budget — as opposed to Dropped (resources exhausted).
	Failed int

	ColdLatMs *stats.Sample
	WarmLatMs *stats.Sample
	MemWaitMs *stats.Sample

	// ColdPhase and LatPhase split cold and all completed latencies by
	// completion time into the phases of Config.PhaseBounds; nil when no
	// bounds are configured.
	ColdPhase *stats.PhasedSample
	LatPhase  *stats.PhasedSample
}

func newNodeMetrics() NodeMetrics {
	return NodeMetrics{
		ColdLatMs: &stats.Sample{}, WarmLatMs: &stats.Sample{}, MemWaitMs: &stats.Sample{},
	}
}

func (m *NodeMetrics) reset() {
	m.ColdStarts, m.WarmStarts, m.Dropped, m.Failed = 0, 0, 0, 0
	m.ColdLatMs.Reset()
	m.WarmLatMs.Reset()
	m.MemWaitMs.Reset()
}

// fleetSketchHost is the pseudo host ID behind the fleet-merged
// samples' sketch streams, far above any real host the autoscaler
// could ever join.
const fleetSketchHost = 1 << 20

// applySketch moves the metrics' samples into (or out of) reservoir
// mode for a new run. Each sample gets a distinct priority stream
// derived from (host ID, metric index) — a pure function of the
// host's identity, so sketched runs are as shard- and worker-count
// invariant as exact ones. Call with every sample empty: after
// newNodeMetrics/reset, and after initPhases (which rebuilds the
// phased samples in exact mode).
func (m *NodeMetrics) applySketch(cfg *stats.SketchConfig, host int) {
	apply := func(s *stats.Sample, idx uint64) {
		if cfg == nil {
			if s.Sketched() {
				s.DisableSketch()
			}
			return
		}
		c := *cfg
		c.Stream += uint64(host+1)*16 + idx
		s.EnableSketch(c)
	}
	apply(m.ColdLatMs, 0)
	apply(m.WarmLatMs, 1)
	apply(m.MemWaitMs, 2)
	if cfg != nil && m.ColdPhase != nil {
		c := *cfg
		c.Stream += uint64(host+1)*16 + 3
		m.ColdPhase.EnableSketch(c)
		c.Stream++
		m.LatPhase.EnableSketch(c)
	}
}

// initPhases (re)builds the phase-split samples for the given bounds,
// or clears them when bounds are empty.
func (m *NodeMetrics) initPhases(bounds []sim.Time) {
	if len(bounds) == 0 {
		m.ColdPhase, m.LatPhase = nil, nil
		return
	}
	secs := make([]float64, len(bounds))
	for i, b := range bounds {
		secs[i] = b.Seconds()
	}
	m.ColdPhase = stats.NewPhased(secs...)
	m.LatPhase = stats.NewPhased(secs...)
}

// Metrics aggregates fleet-wide outcomes. Latency samples are in
// milliseconds. The dispatcher-side counters (Invocations,
// AdmissionDrops) and the memory series are written directly by the
// serial dispatcher; the completion-side fields are merged from the
// per-host NodeMetrics by Stats, in host-ID order, so the aggregate is
// identical at every shard count.
type Metrics struct {
	Invocations int
	ColdStarts  int
	WarmStarts  int
	// Dropped counts requests that entered a VM and failed (OOM-retry
	// budget exhausted); AdmissionDrops counts requests no host could
	// even accept a VM for.
	Dropped        int
	AdmissionDrops int
	// Failed counts completions whose work broke (injected boot
	// failures, crashes, exhausted retries), merged from the per-host
	// metrics by Stats.
	Failed int

	ColdLatMs *stats.Sample
	WarmLatMs *stats.Sample
	// MemWaitMs samples the memory-queueing phase of every cold start —
	// the fleet's reclamation stall time.
	MemWaitMs *stats.Sample

	// ColdPhase and LatPhase are the fleet-wide phase-split latency
	// views (Config.PhaseBounds), merged from the per-host samples by
	// Stats; nil when no bounds are configured.
	ColdPhase *stats.PhasedSample
	LatPhase  *stats.PhasedSample

	// Fleet-dynamics counters (fleetdyn.go), written by the serial
	// dispatcher only.
	HostJoins  int
	HostFails  int
	HostDrains int
	// Replaced counts re-placement attempts of in-flight invocations
	// after a host failure or drain-deadline expiry (a re-place the full
	// fleet cannot admit still counts here and in AdmissionDrops).
	Replaced int
	// WarmLost counts warm idle instances destroyed by host failures.
	WarmLost int
	// RackEvents counts domain fault events that actually expanded onto
	// at least one live host (dangling racks and flat fleets don't
	// count — they are no-ops).
	RackEvents int
	// Paced counts displaced invocations that went through the paced
	// re-placement queue instead of re-dispatching immediately
	// (repace.go); each also counts in Replaced once dispatched.
	Paced int

	// Resilience counters (resilience.go), written by the serial
	// dispatcher only: invocations shed at admission under memory
	// pressure, retry attempts launched, hedge attempts launched, hedges
	// that won their race, and attempts that exceeded the dispatch
	// deadline.
	Shed      int
	Retries   int
	Hedges    int
	HedgeWins int
	TimedOut  int

	// Committed and Populated are fleet-wide memory time series in GiB,
	// fed by SampleMemory at dispatcher epochs.
	Committed stats.TimeSeries
	Populated stats.TimeSeries
}

// ShardedCluster is a fleet of hosts behind one dispatcher, executed
// as per-host sub-simulations: every host runs on its own scheduler,
// and the epoch engine (shard.go) advances all hosts in lockstep to
// each dispatcher boundary — an invocation to route or a fleet-wide
// memory sample — merging the hosts back into one deterministic
// timeline at every boundary.
//
// Hosts interact only through the dispatcher: warm routing, scale-up
// placement, and admission decisions all read host state while every
// host is paused at the boundary time, and all host-side consequences
// (grants, boots, reclaim pressure) play out host-locally between
// boundaries. The dispatcher holds no RNG, iterates hosts in slice
// order, and breaks every tie by host ID, so a fleet run is a pure
// function of its traces and seed — at any shard count, on any worker
// pool, byte-identical to the serial single-shard run.
type ShardedCluster struct {
	Cost   *costmodel.Model
	Cfg    Config
	Policy Policy
	// Nodes holds every host that ever existed this run, in host-ID
	// order — dead hosts included, so their metrics still merge. The
	// fleet-dynamics views below narrow it.
	Nodes []*Node

	// Exec, when non-nil, runs a batch of shard-advance tasks —
	// possibly in parallel — and returns when all have completed. The
	// tasks touch disjoint hosts, so any execution order (or true
	// concurrency) yields identical results. nil runs them serially.
	Exec func(tasks []func())

	Metrics Metrics

	now sim.Time // dispatcher clock: the current epoch boundary

	// Fleet-dynamics state (fleetdyn.go). active is the placement-
	// eligible subset of Nodes; live additionally includes draining
	// hosts — everything that still advances. Both stay in host-ID
	// order; with no churn, active == live == Nodes.
	active    []*Node
	live      []*Node
	fleetQ    []FleetEvent // pending fleet events, sorted by T, FIFO at ties
	autoscale *AutoscaleConfig
	lastScale sim.Time // autoscaler cooldown anchor
	scaled    bool     // an autoscaler action has happened this run

	// Resilience state (resilience.go): resil is the normalized config
	// (nil = plain dispatch), resilQ the pending timed decisions sorted
	// by T, FIFO at ties; horizon flips after the final drain so
	// late-settling failures stop scheduling retries.
	resil   *ResilienceConfig
	resilQ  []resilEvent
	horizon bool

	// Fault-injection state (faults.go): the pending plan sorted by T,
	// the open windows sorted by expiry, and the plan seed every host
	// injector derives its decision stream from.
	faultQ    []fault.Event
	faultOpen []openFault
	faultSeed uint64
	faultsOn  bool

	// Recovery-storm control (repace.go): repace is the normalized
	// pacing config (nil = immediate re-placement), repaceQ the
	// priority-ordered queue of displaced work, repaceAt the next
	// pacing boundary (0 = unarmed).
	repace   *RepaceConfig
	repaceQ  []repaceEntry
	repaceAt sim.Time

	// Observability (internal/obs): obsT is the run's trace, fleetObs its
	// fleet-level recorder written only by the serial dispatcher. Both are
	// nil when tracing is off — the common case, which every call site
	// guards so the disabled path costs one nil check.
	obsT     *obs.Trace
	fleetObs *obs.Recorder

	// Epoch-engine state (shard.go).
	shardsWanted int // requested shard count, reapplied on membership change
	shardNodes   [][]*Node
	shardTasks   []func()
	drainTasks   []func()
	shardWalls   []time.Duration // wall-clock per shard since prepare
	epochT       sim.Time        // advance target shared by the shard tasks
}

// withDefaults fills the zero-valued optional fields.
func (cfg Config) withDefaults() Config {
	if cfg.Hosts <= 0 {
		panic("cluster: need at least one host")
	}
	if cfg.N <= 0 {
		cfg.N = 8
	}
	if cfg.KeepAlive <= 0 {
		cfg.KeepAlive = 60 * sim.Second
	}
	if cfg.ProactiveFactor <= 0 {
		cfg.ProactiveFactor = 1.0
		if cfg.Backend == faas.Harvest {
			cfg.ProactiveFactor = 1.5
		}
	}
	if cfg.HarvestBufferInstances <= 0 {
		cfg.HarvestBufferInstances = 2
	}
	if cfg.Resilience != nil {
		r := cfg.Resilience.withDefaults()
		cfg.Resilience = &r
	}
	if cfg.Repace != nil {
		r := cfg.Repace.withDefaults()
		cfg.Repace = &r
	}
	return cfg
}

// NewSharded builds a fleet of cfg.Hosts identical hosts, each on its
// own scheduler with its own recycler, with placement delegated to
// policy.
func NewSharded(cost *costmodel.Model, cfg Config, policy Policy) *ShardedCluster {
	c := &ShardedCluster{
		Cost: cost, Cfg: cfg.withDefaults(), Policy: policy,
		Metrics: Metrics{
			ColdLatMs: &stats.Sample{}, WarmLatMs: &stats.Sample{}, MemWaitMs: &stats.Sample{},
		},
	}
	for i := 0; i < c.Cfg.Hosts; i++ {
		c.Nodes = append(c.Nodes, c.newNode(i))
	}
	c.Metrics.ColdPhase, c.Metrics.LatPhase = fleetPhases(c.Cfg.PhaseBounds)
	c.Metrics.applySketch(c.Cfg.Sketch)
	c.active = append(c.active, c.Nodes...)
	c.live = append(c.live, c.Nodes...)
	c.resil = c.Cfg.Resilience
	c.repace = c.Cfg.Repace
	bindPolicy(policy, c)
	return c
}

// fleetPhases builds the fleet-level phase-split samples for bounds,
// or nils when unconfigured.
func fleetPhases(bounds []sim.Time) (cold, all *stats.PhasedSample) {
	var m NodeMetrics
	m.initPhases(bounds)
	return m.ColdPhase, m.LatPhase
}

// applySketch mirrors NodeMetrics.applySketch for the fleet-merged
// samples, under the reserved fleetSketchHost stream so the merge
// destination never collides with a real host's priorities.
func (m *Metrics) applySketch(cfg *stats.SketchConfig) {
	v := NodeMetrics{
		ColdLatMs: m.ColdLatMs, WarmLatMs: m.WarmLatMs, MemWaitMs: m.MemWaitMs,
		ColdPhase: m.ColdPhase, LatPhase: m.LatPhase,
	}
	v.applySketch(cfg, fleetSketchHost)
}

// newNode builds one host under the cluster's current config.
func (c *ShardedCluster) newNode(id int) *Node {
	topo := c.Cfg.Topology
	sched := sim.NewScheduler()
	host := hostmem.New(topo.HostMem(id, c.Cfg.HostMemBytes))
	rec := faas.NewRecycler()
	rt := faas.NewRuntime(sched, host, c.Cost)
	rt.ProactiveFactor = c.Cfg.ProactiveFactor
	rt.Recycle = rec
	rack := topo.RackOf(id)
	n := &Node{
		ID: id, Backend: c.Cfg.Backend, Rack: rack, Zone: topo.ZoneOfRack(rack),
		Sched: sched, Host: host, RT: rt, Rec: rec,
		M:   newNodeMetrics(),
		vms: make(map[string]*faas.FuncVM),
	}
	n.M.initPhases(c.Cfg.PhaseBounds)
	n.M.applySketch(c.Cfg.Sketch, id)
	return n
}

// Reset rebuilds the cluster for a new run under a (possibly
// different) config and policy, reusing the fleet's storage: node
// structs with their schedulers, recyclers, VM maps, and metric
// buffers stay, each host pool is reset in place, and the previous
// run's guest kernels, vmm.VMs, and agent shells are harvested into
// the per-host recyclers. A reset cluster replays a run identically
// to a freshly constructed one.
func (c *ShardedCluster) Reset(cost *costmodel.Model, cfg Config, policy Policy) {
	c.Release()
	c.Cost = cost
	c.Cfg = cfg.withDefaults()
	c.Policy = policy
	c.now = 0
	if len(c.Nodes) > c.Cfg.Hosts {
		clear(c.Nodes[c.Cfg.Hosts:])
		c.Nodes = c.Nodes[:c.Cfg.Hosts]
	}
	for i, n := range c.Nodes {
		n.ID = i
		n.Backend = c.Cfg.Backend
		n.Rack = c.Cfg.Topology.RackOf(i)
		n.Zone = c.Cfg.Topology.ZoneOfRack(n.Rack)
		n.Sched.Reset()
		n.Host.Reset(c.Cfg.Topology.HostMem(i, c.Cfg.HostMemBytes))
		rt := faas.NewRuntime(n.Sched, n.Host, cost)
		rt.ProactiveFactor = c.Cfg.ProactiveFactor
		rt.Recycle = n.Rec
		n.RT = rt
		n.M.reset()
		n.M.initPhases(c.Cfg.PhaseBounds)
		n.M.applySketch(c.Cfg.Sketch, i)
		n.state = nodeActive
		n.partitioned = 0
		n.Obs = nil
		clear(n.inflight) // drop stale *flight pointers
		n.inflight = n.inflight[:0]
		clear(n.attempts) // drop stale *attempt pointers
		n.attempts = n.attempts[:0]
		clear(n.settled)
		n.settled = n.settled[:0]
		n.inj = nil
		clear(n.vms)
		clear(n.vmOrder) // drop stale *FuncVM pointers
		n.vmOrder = n.vmOrder[:0]
	}
	for len(c.Nodes) < c.Cfg.Hosts {
		c.Nodes = append(c.Nodes, c.newNode(len(c.Nodes)))
	}
	c.active = append(c.active[:0], c.Nodes...)
	c.live = append(c.live[:0], c.Nodes...)
	c.fleetQ = c.fleetQ[:0]
	c.resil = c.Cfg.Resilience
	clear(c.resilQ) // drop stale *rflight pointers
	c.resilQ = c.resilQ[:0]
	c.horizon = false
	clear(c.faultOpen)
	c.faultQ, c.faultOpen = c.faultQ[:0], c.faultOpen[:0]
	c.faultSeed, c.faultsOn = 0, false
	c.repace = c.Cfg.Repace
	clear(c.repaceQ) // drop stale *flight/*rflight pointers
	c.repaceQ = c.repaceQ[:0]
	c.repaceAt = 0
	c.obsT, c.fleetObs = nil, nil
	c.autoscale = nil
	c.lastScale, c.scaled = 0, false
	c.shardsWanted = 0
	c.shardNodes, c.shardTasks, c.drainTasks = nil, nil, nil
	bindPolicy(policy, c)
	m := &c.Metrics
	m.Invocations, m.ColdStarts, m.WarmStarts, m.Dropped, m.AdmissionDrops = 0, 0, 0, 0, 0
	m.Failed = 0
	m.HostJoins, m.HostFails, m.HostDrains, m.Replaced, m.WarmLost = 0, 0, 0, 0, 0
	m.RackEvents, m.Paced = 0, 0
	m.Shed, m.Retries, m.Hedges, m.HedgeWins, m.TimedOut = 0, 0, 0, 0, 0
	m.ColdLatMs.Reset()
	m.WarmLatMs.Reset()
	m.MemWaitMs.Reset()
	m.ColdPhase, m.LatPhase = fleetPhases(c.Cfg.PhaseBounds)
	m.applySketch(c.Cfg.Sketch)
	m.Committed.Reset()
	m.Populated.Reset()
}

// Release harvests every node's guest kernels, vmm.VMs, and FuncVM
// shells into its per-host recycler. The fleet's VMs must not be used
// afterwards; Reset calls it before rebuilding.
func (c *ShardedCluster) Release() {
	for _, n := range c.Nodes {
		n.RT.Release()
	}
}

// Now returns the dispatcher clock: the epoch boundary the fleet last
// advanced to.
func (c *ShardedCluster) Now() sim.Time { return c.now }

// AttachObs enables tracing into t: the fleet track records dispatcher
// decisions on the dispatcher clock, and every host (including ones
// that join later) gets a host track on its private scheduler. Call
// right after NewSharded/Reset, before the run; nil detaches. The
// recorders only observe — no call site reads them back — so an
// attached trace provably never perturbs the simulation.
func (c *ShardedCluster) AttachObs(t *obs.Trace) {
	c.obsT = t
	if t == nil {
		c.fleetObs = nil
		for _, n := range c.Nodes {
			n.Obs = nil
			n.RT.Obs = nil
		}
		return
	}
	c.fleetObs = t.FleetTrack(c)
	for _, n := range c.Nodes {
		c.attachNodeObs(n)
	}
}

// attachNodeObs binds host n to its track in the attached trace (no-op
// when tracing is off). Runs serially: at attach time or at a join
// boundary.
func (c *ShardedCluster) attachNodeObs(n *Node) {
	if c.obsT == nil {
		return
	}
	n.Obs = c.obsT.HostTrack(n.ID, n.Sched)
	n.RT.Obs = n.Obs
}

// Invoke routes one invocation of fn through the dispatcher, in three
// tiers: (1) a host with a warm idle instance serves it immediately;
// (2) otherwise the policy picks among hosts whose existing VM for fn
// still has concurrency slots (scale up in place — booting a second VM
// for a function whose VM has room just burns boot memory); (3) only
// when every existing VM is saturated does the policy pick across the
// whole fleet, booting a new VM if needed. onDone may be nil.
//
// Invoke must be called at an epoch boundary: every host paused at the
// dispatcher clock (AdvanceTo/Drain establish this). The routing
// decision reads fleet-wide state; the routed request's consequences
// are host-local events that play out when the hosts advance again.
func (c *ShardedCluster) Invoke(fn *workload.Function, onDone func(faas.Result)) {
	c.Metrics.Invocations++
	if c.fleetObs != nil {
		c.fleetObs.Count("invocations", 1)
	}
	if c.resil != nil {
		c.invokeResilient(fn, onDone)
		return
	}
	if c.repace != nil && c.repace.Shed && c.shouldShed(fn) {
		c.shedInvocation(fn, onDone)
		return
	}
	c.route(&flight{fn: fn, arrival: c.now, onDone: onDone})
}

// route places one flight — fresh from Invoke or re-placed after a
// host failure — through the dispatcher tiers, over the active hosts
// only. It runs serially at an epoch boundary.
func (c *ShardedCluster) route(fl *flight) {
	tier, serving, fv := c.chooseVM(fl.fn, nil)
	if fv == nil {
		// No host can even boot a VM for fn: admission-drop rather than
		// panic the host model with an unbackable boot.
		c.Metrics.AdmissionDrops++
		if c.fleetObs != nil {
			c.fleetObs.Count("admission_drops", 1)
			c.fleetObs.Instant("admission-drop: "+fl.fn.Name, obs.CatInvoke)
		}
		if fl.onDone != nil {
			fl.onDone(faas.Result{Fn: fl.fn, Arrival: fl.arrival, Done: c.now, Dropped: true})
		}
		return
	}
	if c.fleetObs != nil {
		c.fleetObs.Count("dispatch/"+tier, 1)
		c.fleetObs.Instant("dispatch/"+tier+": "+fl.fn.Name, obs.CatInvoke,
			obs.I("host", int64(serving.ID)))
	}
	serving.inflight = append(serving.inflight, fl)
	fv.Invoke(fl.fn, serving.complete(fl))
}

// chooseVM resolves one placement through the dispatcher tiers and
// returns the tier label, the serving host, and its VM (nils when the
// fleet cannot admit the function at all). excl, when non-nil, vetoes
// hosts — the resilience layer excludes hosts already racing an
// attempt of the same invocation; a nil excl reproduces the plain
// routing decision exactly.
func (c *ShardedCluster) chooseVM(fn *workload.Function, excl func(*Node) bool) (string, *Node, *faas.FuncVM) {
	tier := "warm"
	target := c.warmNode(fn, excl)
	if target == nil {
		if cands := c.nodesWithSlack(fn, excl); len(cands) > 0 {
			tier = "scale-up"
			target = c.Policy.Pick(cands, fn)
		} else if el := c.eligible(excl); len(el) > 0 {
			tier = "place"
			target = c.Policy.Pick(el, fn)
		}
	}
	var serving *Node
	var fv *faas.FuncVM
	if target != nil {
		serving, fv = target, c.vmOn(target, fn)
	}
	if fv == nil {
		tier = "fallback"
		serving, fv = c.fallbackVM(fn, excl)
	}
	return tier, serving, fv
}

// eligible returns the placement-eligible hosts under the exclusion
// predicate; with none it is the active list itself (no allocation).
func (c *ShardedCluster) eligible(excl func(*Node) bool) []*Node {
	if excl == nil {
		return c.active
	}
	var out []*Node
	for _, n := range c.active {
		if !excl(n) {
			out = append(out, n)
		}
	}
	return out
}

// warmNode returns the host that should serve fn warm — the one with
// the most idle instances of fn (draining the largest warm pool first),
// ties to the lowest ID — or nil when no host has one. Warm routing is
// policy-independent on purpose: policies compete on cold placement,
// not on rediscovering instance affinity.
func (c *ShardedCluster) warmNode(fn *workload.Function, excl func(*Node) bool) *Node {
	var best *Node
	bestIdle := 0
	for _, n := range c.active {
		if excl != nil && excl(n) {
			continue
		}
		fv := n.vms[fn.Name]
		if fv == nil {
			continue
		}
		if idle := fv.IdleInstances(); idle > bestIdle {
			best, bestIdle = n, idle
		}
	}
	return best
}

// nodesWithSlack returns hosts whose existing VM for fn has spare
// concurrency, in host order.
func (c *ShardedCluster) nodesWithSlack(fn *workload.Function, excl func(*Node) bool) []*Node {
	var out []*Node
	for _, n := range c.active {
		if excl != nil && excl(n) {
			continue
		}
		if fv := n.vms[fn.Name]; fv != nil && fv.LiveInstances() < c.Cfg.N {
			out = append(out, n)
		}
	}
	return out
}

// vmOn returns the host's VM for fn, booting one if the host can back
// its boot footprint. It returns nil when the host is too full to boot.
func (c *ShardedCluster) vmOn(n *Node, fn *workload.Function) *faas.FuncVM {
	if fv := n.vms[fn.Name]; fv != nil {
		return fv
	}
	cfg := faas.VMConfig{
		Name:      fmt.Sprintf("%s@h%02d", fn.Name, n.ID),
		Kind:      c.Cfg.Backend,
		Fn:        fn,
		N:         c.Cfg.N,
		KeepAlive: c.Cfg.KeepAlive,
		// Sketch mode is the bounded-memory contract: nothing per-VM
		// may grow with invocation count either, so the per-request
		// completion log and per-function exact samples are skipped.
		LeanMetrics: c.Cfg.Sketch != nil,
	}
	if c.Cfg.Backend == faas.Harvest {
		cfg.HarvestBufferBytes = int64(c.Cfg.HarvestBufferInstances) *
			units.AlignUp(fn.MemoryLimit, units.BlockSize)
	}
	if units.BytesToPages(cfg.BootFootprintBytes()) > n.FreePages() {
		return nil
	}
	fv := n.RT.AddVM(cfg)
	n.vms[fn.Name] = fv
	n.vmOrder = append(n.vmOrder, fv)
	return fv
}

// fallbackVM handles a policy pick that cannot boot fn's VM: queue on
// the least-backlogged host that already runs fn, else boot on the host
// with the most free memory that can. Returns nils when the whole fleet
// is too full.
func (c *ShardedCluster) fallbackVM(fn *workload.Function, excl func(*Node) bool) (*Node, *faas.FuncVM) {
	var existing *faas.FuncVM
	var existingNode *Node
	bestQueue := 0
	for _, n := range c.active {
		if excl != nil && excl(n) {
			continue
		}
		if fv := n.vms[fn.Name]; fv != nil {
			if existing == nil || fv.QueueLen() < bestQueue {
				existing, existingNode, bestQueue = fv, n, fv.QueueLen()
			}
		}
	}
	if existing != nil {
		return existingNode, existing
	}
	var roomiest *Node
	for _, n := range c.active {
		if excl != nil && excl(n) {
			continue
		}
		if roomiest == nil || n.FreePages() > roomiest.FreePages() {
			roomiest = n
		}
	}
	if roomiest == nil {
		return nil, nil
	}
	return roomiest, c.vmOn(roomiest, fn)
}

// complete wraps a flight's completion with host-local metrics
// accounting and in-flight retirement. The callback fires on the
// serving host's scheduler — possibly while a shard worker advances
// that host — so it must only touch that host's state (NodeMetrics,
// inflight), never fleet-wide state. The recorded latency spans the
// flight's original arrival, so a re-placed invocation pays for the
// work its failed host lost (identical to res.Latency when the flight
// was never re-placed).
func (n *Node) complete(fl *flight) func(faas.Result) {
	return func(res faas.Result) {
		n.removeFlight(fl)
		n.account(fl.fn, fl.arrival, fl.replaced, res)
		if fl.onDone != nil {
			fl.onDone(res)
		}
	}
}

// account records one completed result in the host's metrics. Shared
// by the plain completion wrapper (host-side, host-local by the
// inflight contract) and the resilience layer's boundary-time delivery
// (serial, hosts parked). The recorded latency spans the original
// arrival, so a re-placed or retried invocation pays for the work its
// failed attempts lost.
func (n *Node) account(fn *workload.Function, arrival sim.Time, replaced bool, res faas.Result) {
	m := &n.M
	lat := res.Done.Sub(arrival)
	switch {
	case res.Failed:
		m.Failed++
		if n.Obs != nil {
			n.Obs.Count("failed", 1)
			n.Obs.Instant("done-failed: "+fn.Name, obs.CatFault,
				obs.F("latency_ms", lat.Milliseconds()))
		}
	case res.Dropped:
		m.Dropped++
		if n.Obs != nil {
			n.Obs.Count("dropped", 1)
			n.Obs.Instant("drop: "+fn.Name, obs.CatInvoke)
		}
	case res.Cold:
		m.ColdStarts++
		m.ColdLatMs.Add(lat.Milliseconds())
		m.MemWaitMs.Add(res.Phases.MemWait.Milliseconds())
		if m.ColdPhase != nil {
			m.ColdPhase.Add(res.Done.Seconds(), lat.Milliseconds())
		}
		if n.Obs != nil {
			n.Obs.Count("cold_starts", 1)
			repl := int64(0)
			if replaced {
				repl = 1
			}
			n.Obs.Instant("done-cold: "+fn.Name, obs.CatInvoke,
				obs.F("latency_ms", lat.Milliseconds()),
				obs.F("mem_wait_ms", res.Phases.MemWait.Milliseconds()),
				obs.I("replaced", repl))
		}
	default:
		m.WarmStarts++
		m.WarmLatMs.Add(lat.Milliseconds())
		if n.Obs != nil {
			n.Obs.Count("warm_starts", 1)
			n.Obs.Instant("done-warm: "+fn.Name, obs.CatInvoke,
				obs.F("latency_ms", lat.Milliseconds()))
		}
	}
	if !res.Dropped && !res.Failed && m.LatPhase != nil {
		m.LatPhase.Add(res.Done.Seconds(), lat.Milliseconds())
	}
}

// removeFlight retires the flight from the host's in-flight list,
// preserving order (re-placement order is part of the deterministic
// contract). A flight already snatched away by a failure re-place is
// simply absent — the completion of its doomed first placement never
// fires, because a dead host's scheduler never advances again.
func (n *Node) removeFlight(fl *flight) {
	for i, f := range n.inflight {
		if f == fl {
			n.inflight = append(n.inflight[:i], n.inflight[i+1:]...)
			return
		}
	}
}

// Stats merges the per-host metrics into the fleet-wide Metrics view
// and returns it. Completion counters and latency samples are merged
// in host-ID order; percentiles depend only on the combined multiset,
// so the merged view is identical at every shard count. Call it after
// the run (or after any Drain) — merging while hosts are advancing
// would race the completion callbacks.
func (c *ShardedCluster) Stats() *Metrics {
	m := &c.Metrics
	m.ColdStarts, m.WarmStarts, m.Dropped, m.Failed = 0, 0, 0, 0
	m.ColdLatMs.Reset()
	m.WarmLatMs.Reset()
	m.MemWaitMs.Reset()
	if m.ColdPhase != nil {
		m.ColdPhase.Reset()
		m.LatPhase.Reset()
	}
	for _, n := range c.Nodes {
		m.ColdStarts += n.M.ColdStarts
		m.WarmStarts += n.M.WarmStarts
		m.Dropped += n.M.Dropped
		m.Failed += n.M.Failed
		m.ColdLatMs.Merge(n.M.ColdLatMs)
		m.WarmLatMs.Merge(n.M.WarmLatMs)
		m.MemWaitMs.Merge(n.M.MemWaitMs)
		if m.ColdPhase != nil && n.M.ColdPhase != nil {
			m.ColdPhase.Merge(n.M.ColdPhase)
			m.LatPhase.Merge(n.M.LatPhase)
		}
	}
	return m
}

// SampleMemory appends one fleet-wide committed/populated point (GiB)
// at the dispatcher clock, over the live hosts (a dead host's memory
// no longer exists). Call at an epoch boundary only.
func (c *ShardedCluster) SampleMemory() {
	var committed, populated int64
	for _, n := range c.live {
		committed += n.Host.CommittedPages()
		populated += n.Host.PopulatedPages()
	}
	t := c.now.Seconds()
	committedGiB := float64(units.PagesToBytes(committed)) / float64(units.GiB)
	populatedGiB := float64(units.PagesToBytes(populated)) / float64(units.GiB)
	c.Metrics.Committed.Append(t, committedGiB)
	c.Metrics.Populated.Append(t, populatedGiB)
	if c.fleetObs != nil {
		c.fleetObs.Gauge("mem/committed_gib", obs.CatMemory, committedGiB)
		c.fleetObs.Gauge("mem/populated_gib", obs.CatMemory, populatedGiB)
		if topo := c.Cfg.Topology; topo != nil && topo.Racks > 1 {
			for rack := 0; rack < topo.Racks; rack++ {
				var rc int64
				for _, n := range c.live {
					if n.Rack == rack {
						rc += n.Host.CommittedPages()
					}
				}
				c.fleetObs.Gauge(fmt.Sprintf("mem/rack%d/committed_gib", rack), obs.CatMemory,
					float64(units.PagesToBytes(rc))/float64(units.GiB))
			}
		}
	}
}

// activeCapacityPages sums the placement-eligible hosts' real memory
// capacities. On a uniform fleet this equals len(active) * the per-host
// capacity, but heterogeneous topologies make that product wrong — the
// autoscaler, the shed signal, and the hedge gate all divide by this
// sum. Zero means unlimited (some host has no capacity bound).
func (c *ShardedCluster) activeCapacityPages() int64 {
	var total int64
	for _, n := range c.active {
		cp := n.Host.CapacityPages()
		if cp == 0 {
			return 0
		}
		total += cp
	}
	return total
}

// MemoryEfficiency returns the time-averaged fraction of committed host
// memory the guests actually use (populated/committed over the sampled
// window) — the fleet-scale version of Figure 1's idle-memory gap.
func (c *ShardedCluster) MemoryEfficiency() float64 {
	ci := c.Metrics.Committed.Integral()
	if ci <= 0 {
		return 0
	}
	return c.Metrics.Populated.Integral() / ci
}

// CommittedGiBs returns the fleet's committed-memory time integral
// (GiB·s), the cost metric of Figure 10 at fleet scale.
func (c *ShardedCluster) CommittedGiBs() float64 { return c.Metrics.Committed.Integral() }

// Evictions sums instance evictions across the fleet.
func (c *ShardedCluster) Evictions() int {
	total := 0
	for _, n := range c.Nodes {
		for _, fv := range n.vmOrder {
			total += fv.Evictions
		}
	}
	return total
}

// Fired sums fired events across every host scheduler — the per-host
// analogue of a shared scheduler's Fired count, used by determinism
// tests to pin down the exact event schedule.
func (c *ShardedCluster) Fired() uint64 {
	var total uint64
	for _, n := range c.Nodes {
		total += n.Sched.Fired()
	}
	return total
}

// VMCount returns the number of VMs booted across the fleet.
func (c *ShardedCluster) VMCount() int {
	total := 0
	for _, n := range c.Nodes {
		total += len(n.vmOrder)
	}
	return total
}
