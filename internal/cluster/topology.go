package cluster

// Topology places hosts into failure domains. Hosts map to racks
// round-robin by ID (rack = id % Racks), so the assignment is balanced,
// independent of fleet size, and stable under joins: host IDs are
// monotonic, and a host that joins mid-run lands in a definite rack no
// matter which shard or worker observes it. Racks group contiguously
// into zones (zone = rack * Zones / Racks).
//
// A nil *Topology means a flat fleet: every host is rack 0 / zone 0,
// every domain-kind fault event is a deterministic no-op, and the
// domain-aware policies degrade to plain headroom scoring — so turning
// the topology off never changes single-host behavior.
type Topology struct {
	// Racks is the number of failure domains; <= 1 behaves as flat.
	Racks int
	// Zones optionally groups racks; 0 or 1 means one zone.
	Zones int
	// MemBytes, when non-empty, gives per-host memory capacities,
	// cycled by host ID (host i gets MemBytes[i % len]). Empty means
	// every host uses Config.HostMemBytes. Cycling keeps heterogeneous
	// fleets balanced across racks: with len(MemBytes) == Racks each
	// rack is internally uniform but racks differ.
	MemBytes []int64
}

// RackOf returns the host's rack index (0 on a flat fleet).
func (t *Topology) RackOf(id int) int {
	if t == nil || t.Racks <= 1 {
		return 0
	}
	return id % t.Racks
}

// ZoneOfRack returns the rack's zone index (0 on a flat fleet).
func (t *Topology) ZoneOfRack(rack int) int {
	if t == nil || t.Zones <= 1 || t.Racks <= 1 {
		return 0
	}
	return rack * t.Zones / t.Racks
}

// HostMem returns host id's memory capacity in bytes, falling back to
// def when the topology carries no per-host sizes.
func (t *Topology) HostMem(id int, def int64) int64 {
	if t == nil || len(t.MemBytes) == 0 {
		return def
	}
	return t.MemBytes[id%len(t.MemBytes)]
}

// ValidRack reports whether rack names an existing domain — the guard
// that makes dangling rack targets in fuzzed fault plans safe no-ops.
func (t *Topology) ValidRack(rack int) bool {
	return t != nil && rack >= 0 && rack < t.Racks
}
