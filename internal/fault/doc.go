// Package fault injects deterministic gray failures into the fleet
// simulation: stalled and partial reclaim commands, cold-start boot
// failures, mid-execution crashes, and straggler hosts whose cost
// model is scaled for a window.
//
// A fault plan is a sorted list of Events, each opening a window
// [T, T+Dur) of one Kind on one host (or every host). The serial
// dispatcher applies window opens/closes at epoch boundaries; between
// boundaries each host consults its own Injector — host-local state
// plus a counter-mode decision stream seeded by (plan seed, host ID) —
// so every probabilistic draw depends only on the host's own event
// order. That makes plans shard- and worker-invariant by the same
// argument as the epoch engine itself: the fleet's tables and
// schedulers fingerprint byte-identically at every shard and worker
// count (TestFaultShardInvariance in internal/cluster).
//
// GenFaults fuzzes plans from a seed (the mirror of trace.GenChurn);
// Scenario builds the named profiles the cluster-resilience experiment
// and squeezyctl's -faults flag share.
package fault
