package fault

import (
	"math/rand/v2"
	"sort"

	"squeezy/internal/sim"
)

// Kind classifies one injected failure mode.
type Kind int

// Fault kinds. Magnitudes (Event.Mag) are kind-specific; see Event.
const (
	// ReclaimStall delays the completion of every reclaim-backend
	// command (plug, unplug, inflate) on the target host by Mag seconds:
	// the command occupies the device queue the whole time, so the
	// runtime's ReclaimDrainTimeout write-off fires and pressure is
	// re-raised against a device that has gone quiet.
	ReclaimStall Kind = iota
	// ReclaimPartial caps every unplug/inflate at fraction Mag of the
	// requested amount — the "completed but freed too little" half of
	// §6.2.2's failure space.
	ReclaimPartial
	// ColdFail makes a cold dispatch fail with probability Mag: the
	// boot burns MicroVMBoot and then returns an error Result instead
	// of an instance.
	ColdFail
	// ExecCrash kills a running instance mid-execution with probability
	// Mag: half the exec burst runs, then the instance dies, its memory
	// is released, and the caller gets an error Result.
	ExecCrash
	// Straggler scales the target host's entire cost model by Mag for
	// the window — same protocol, uniformly slower hardware.
	Straggler

	// RackFail kills, at T, every live host of the rack named by Host
	// (a rack index, not a host ID). With Mag < 1 each member fails
	// independently with probability Mag, decided by a counter-mode
	// DomainDraw. Instantaneous: Dur is ignored.
	RackFail
	// RackDegrade browns out the whole rack for the window: it expands
	// to a per-host Straggler of scale Mag on every live member.
	RackDegrade
	// RackPartition isolates the rack from the dispatcher for the
	// window: members keep advancing and finish in-flight work, but
	// take no new placements until the window closes.
	RackPartition

	numKinds
)

// numHostKinds marks where the single-host kinds end and the domain
// (rack-level) kinds begin: fuzzed plans draw from [0, numHostKinds)
// unless the plan is told the fleet has racks.
const numHostKinds = RackFail

var kindNames = [...]string{
	"reclaim-stall", "reclaim-partial", "cold-fail", "exec-crash", "straggler",
	"rack-fail", "rack-degrade", "rack-partition",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "fault(?)"
	}
	return kindNames[k]
}

// Domain reports whether the kind targets a failure domain (Host is a
// rack index) rather than a single host.
func (k Kind) Domain() bool { return k >= numHostKinds && k < numKinds }

// Event opens one fault window [T, T+Dur) of one Kind.
type Event struct {
	T    sim.Time
	Dur  sim.Duration
	Kind Kind
	// Host targets a specific host ID; -1 targets every host live at
	// window open. IDs that don't exist at open time are no-ops, and a
	// host that joins mid-window is unaffected by it. For domain kinds
	// (Kind.Domain) Host is a rack index instead; dangling racks — and
	// any rack on a fleet with no topology — are no-ops too.
	Host int
	// Mag is the kind-specific magnitude: stall seconds (ReclaimStall),
	// completed fraction in (0,1) (ReclaimPartial), failure probability
	// (ColdFail, ExecCrash, RackFail — per member), or cost scale >= 1
	// (Straggler, RackDegrade).
	Mag float64
}

// Config parameterizes the fuzzed fault-plan generator.
type Config struct {
	// Duration bounds window starts: they land in (0, Duration), with
	// window lengths up to Duration/4.
	Duration sim.Duration
	// Events is the number of fault windows to generate.
	Events int
	// Hosts is the fleet's initial host count; targeted events pick IDs
	// in [0, 2*Hosts) so some deliberately name hosts that are already
	// gone or never existed (the fleet must treat those as no-ops).
	Hosts int
	// Racks, when > 0, widens the kind space to the domain kinds
	// (RackFail/RackDegrade/RackPartition) with rack targets drawn in
	// [0, 2*Racks) — half deliberately dangling, which the fleet must
	// treat as no-ops. Zero keeps plans byte-identical to the flat
	// generator.
	Racks int
}

// GenFaults synthesizes a random fault plan — overlapping windows of
// every kind at uniform times, half targeting all hosts (-1) and half
// targeting explicit (possibly dangling) IDs, with kind-appropriate
// magnitudes. The same seed always yields the same plan; the
// determinism property tests fuzz fleet runs with these plans across
// seeds (the mirror of trace.GenChurn).
func GenFaults(seed uint64, cfg Config) []Event {
	rng := rand.New(rand.NewPCG(seed, 0xfa017))
	kinds := int(numHostKinds)
	if cfg.Racks > 0 {
		kinds = int(numKinds)
	}
	events := make([]Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := Event{
			T:    sim.Time(1 + rng.Int64N(int64(cfg.Duration)-1)),
			Dur:  sim.Duration(1 + rng.Int64N(int64(cfg.Duration)/4)),
			Kind: Kind(rng.IntN(kinds)),
			Host: -1,
		}
		if ev.Kind.Domain() {
			ev.Host = rng.IntN(2 * cfg.Racks)
		} else if rng.IntN(2) == 0 && cfg.Hosts > 0 {
			ev.Host = rng.IntN(2 * cfg.Hosts)
		}
		switch ev.Kind {
		case ReclaimStall:
			ev.Mag = 6 + 10*rng.Float64() // 6-16 s, past ReclaimDrainTimeout and DispatchTimeout
		case ReclaimPartial:
			ev.Mag = 0.1 + 0.8*rng.Float64()
		case ColdFail:
			ev.Mag = 0.1 + 0.5*rng.Float64()
		case ExecCrash:
			ev.Mag = 0.05 + 0.35*rng.Float64()
		case Straggler, RackDegrade:
			ev.Mag = 2 + 6*rng.Float64()
		case RackFail:
			ev.Mag = 0.5 + 0.5*rng.Float64()
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}

// ScenarioNames lists the named single-host fault scenarios, in
// presentation order. "none" is the empty plan. The domain scenarios
// are listed separately (DomainScenarioNames) so the PR 8 sweeps keep
// their exact row sets.
func ScenarioNames() []string {
	return []string{"none", "reclaim-degrade", "cold-crash", "straggler"}
}

// DomainScenarioNames lists the rack/zone-correlated scenarios. They
// only bite on a fleet with a topology (squeezyctl -topology); on a
// flat fleet their events are deterministic no-ops.
func DomainScenarioNames() []string {
	return []string{"rack-fail", "zone-degrade", "rack-partition"}
}

// Scenario builds a named fault profile sized to a run: one window
// covering the third quarter of the trace ([duration/2, 3*duration/4)),
// so phase-split metrics can bound tails at the window start.
//
//	reclaim-degrade  every host's reclaim commands stall 10 s and
//	                 complete at half strength
//	cold-crash       every host fails 35% of cold boots and crashes
//	                 25% of executions
//	straggler        host 0 browns out to 30x slower — far enough
//	                 past HedgeDelay that its victims are hedgeable
//	rack-fail        rack 1 dies outright at duration/2
//	zone-degrade     racks 0 and 1 (zone 0 of the reference 4x2
//	                 topology) brown out to 6x slower
//	rack-partition   rack 1 is isolated from the dispatcher for the
//	                 window
//
// The second return is false for an unknown name; "none" is known and
// returns an empty plan.
func Scenario(name string, hosts int, duration sim.Duration) ([]Event, bool) {
	at := sim.Time(duration / 2)
	dur := duration / 4
	switch name {
	case "none":
		return nil, true
	case "reclaim-degrade":
		return []Event{
			{T: at, Dur: dur, Kind: ReclaimStall, Host: -1, Mag: 10},
			{T: at, Dur: dur, Kind: ReclaimPartial, Host: -1, Mag: 0.5},
		}, true
	case "cold-crash":
		return []Event{
			{T: at, Dur: dur, Kind: ColdFail, Host: -1, Mag: 0.35},
			{T: at, Dur: dur, Kind: ExecCrash, Host: -1, Mag: 0.25},
		}, true
	case "straggler":
		return []Event{
			{T: at, Dur: dur, Kind: Straggler, Host: 0, Mag: 30},
		}, true
	case "rack-fail":
		return []Event{
			{T: at, Kind: RackFail, Host: 1, Mag: 1},
		}, true
	case "zone-degrade":
		return []Event{
			{T: at, Dur: dur, Kind: RackDegrade, Host: 0, Mag: 6},
			{T: at, Dur: dur, Kind: RackDegrade, Host: 1, Mag: 6},
		}, true
	case "rack-partition":
		return []Event{
			{T: at, Dur: dur, Kind: RackPartition, Host: 1},
		}, true
	}
	return nil, false
}

// SubSeed derives host i's decision-stream seed from the plan seed via
// the splitmix64 finalizer — the same construction as the experiment
// runner's per-trial seeds, so streams stay well separated across
// hosts and across adjacent plan seeds.
func SubSeed(seed uint64, i int) uint64 {
	x := seed + (uint64(i)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// DomainDraw returns the uniform [0,1) variate deciding whether host
// participates in domain event ev (e.g. a partial RackFail). It is a
// pure function of (plan seed, event time, kind, host ID) — the same
// counter-mode construction as the per-host injector streams, but on a
// separate channel, so expanding a domain event never advances any
// host's own decision counter. That makes the expansion shard- and
// worker-invariant by construction.
func DomainDraw(seed uint64, ev Event, host int) float64 {
	x := SubSeed(seed^(uint64(ev.T)*0x9E3779B97F4A7C15+uint64(ev.Kind)), host)
	return float64(x>>11) / (1 << 53)
}

// Injector is one host's view of the active fault windows plus its
// probabilistic decision stream. The serial dispatcher Opens and
// Closes windows at epoch boundaries (hosts parked); between
// boundaries only the owning host's worker consults it, so there is
// never concurrent access. Decisions are drawn counter-mode from the
// host's SubSeed — the i-th draw on a host is a pure function of
// (plan seed, host ID, i), and because each host's event order is
// deterministic regardless of sharding, so is every decision.
type Injector struct {
	host int
	seed uint64
	ctr  uint64

	// Effective state, recomputed from the open windows on every
	// Open/Close. Overlapping windows of one kind combine to the most
	// severe magnitude.
	stall     sim.Duration
	frac      float64 // 0 = no cap
	coldFailP float64
	crashP    float64
	scale     float64 // 0 = no scaling

	active []Event
}

// NewInjector builds host's injector for the plan seeded by seed.
func NewInjector(host int, seed uint64) *Injector {
	return &Injector{host: host, seed: SubSeed(seed, host)}
}

// Open activates one fault window on this host.
func (in *Injector) Open(ev Event) {
	in.active = append(in.active, ev)
	in.recompute()
}

// Close deactivates one previously opened window (matched by value;
// closing a window that was never opened here is a no-op).
func (in *Injector) Close(ev Event) {
	for i, a := range in.active {
		if a == ev {
			in.active = append(in.active[:i], in.active[i+1:]...)
			in.recompute()
			return
		}
	}
}

func (in *Injector) recompute() {
	in.stall, in.frac, in.coldFailP, in.crashP, in.scale = 0, 0, 0, 0, 0
	for _, ev := range in.active {
		switch ev.Kind {
		case ReclaimStall:
			if d := sim.Duration(ev.Mag * float64(sim.Second)); d > in.stall {
				in.stall = d
			}
		case ReclaimPartial:
			if in.frac == 0 || ev.Mag < in.frac {
				in.frac = ev.Mag
			}
		case ColdFail:
			if ev.Mag > in.coldFailP {
				in.coldFailP = ev.Mag
			}
		case ExecCrash:
			if ev.Mag > in.crashP {
				in.crashP = ev.Mag
			}
		case Straggler:
			if ev.Mag > in.scale {
				in.scale = ev.Mag
			}
		}
	}
}

// draw returns the next uniform [0,1) decision variate. Draws advance
// the counter only when a window actually needs one, so a host outside
// every window consumes nothing.
func (in *Injector) draw() float64 {
	in.ctr++
	x := SubSeed(in.seed, int(in.ctr))
	return float64(x>>11) / (1 << 53)
}

// ReclaimStall reports the extra delay to impose on the completion of
// the reclaim command finishing now (0 = none).
func (in *Injector) ReclaimStall() sim.Duration { return in.stall }

// ReclaimFraction reports the fraction of a reclaim request that may
// complete (1 = all of it).
func (in *Injector) ReclaimFraction() float64 {
	if in.frac <= 0 || in.frac > 1 {
		return 1
	}
	return in.frac
}

// FailCold decides whether the cold dispatch starting now fails.
func (in *Injector) FailCold() bool {
	return in.coldFailP > 0 && in.draw() < in.coldFailP
}

// CrashExec decides whether the execution starting now crashes.
func (in *Injector) CrashExec() bool {
	return in.crashP > 0 && in.draw() < in.crashP
}

// StragglerScale reports the host's current cost-model scale (1 = at
// full speed).
func (in *Injector) StragglerScale() float64 {
	if in.scale < 1 {
		return 1
	}
	return in.scale
}
