package fault

import (
	"reflect"
	"sort"
	"testing"

	"squeezy/internal/sim"
)

// TestGenFaultsDeterministic: the fuzzed plan is a pure function of
// (seed, config) — same seed reproduces the plan exactly, adjacent
// seeds diverge.
func TestGenFaultsDeterministic(t *testing.T) {
	cfg := Config{Duration: 60 * sim.Second, Events: 12, Hosts: 4}
	a := GenFaults(7, cfg)
	b := GenFaults(7, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	if len(a) != cfg.Events {
		t.Fatalf("plan has %d events, want %d", len(a), cfg.Events)
	}
	c := GenFaults(8, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("adjacent seeds produced identical plans")
	}
}

// TestGenFaultsShape: windows start inside the trace, are sorted, and
// carry kind-appropriate magnitudes; targets mix fleet-wide (-1) with
// explicit (possibly dangling) host IDs.
func TestGenFaultsShape(t *testing.T) {
	cfg := Config{Duration: 120 * sim.Second, Events: 64, Hosts: 4}
	events := GenFaults(3, cfg)
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].T < events[j].T }) {
		t.Fatal("plan is not time-sorted")
	}
	sawAll, sawTargeted := false, false
	for _, ev := range events {
		if ev.T <= 0 || ev.T >= sim.Time(cfg.Duration) {
			t.Fatalf("window start %v outside (0, %v)", ev.T, cfg.Duration)
		}
		if ev.Dur <= 0 || ev.Dur > cfg.Duration/4 {
			t.Fatalf("window length %v outside (0, %v]", ev.Dur, cfg.Duration/4)
		}
		switch {
		case ev.Host == -1:
			sawAll = true
		case ev.Host >= 0 && ev.Host < 2*cfg.Hosts:
			sawTargeted = true
		default:
			t.Fatalf("host target %d outside -1 or [0, %d)", ev.Host, 2*cfg.Hosts)
		}
		switch ev.Kind {
		case ReclaimStall:
			if ev.Mag < 6 || ev.Mag > 16 {
				t.Fatalf("stall magnitude %v outside [6, 16] s", ev.Mag)
			}
		case ReclaimPartial, ColdFail, ExecCrash:
			if ev.Mag <= 0 || ev.Mag >= 1 {
				t.Fatalf("%v magnitude %v outside (0, 1)", ev.Kind, ev.Mag)
			}
		case Straggler:
			if ev.Mag < 2 {
				t.Fatalf("straggler scale %v below 2", ev.Mag)
			}
		default:
			t.Fatalf("unknown kind %v", ev.Kind)
		}
	}
	if !sawAll || !sawTargeted {
		t.Fatalf("plan lacks target variety: all=%v targeted=%v", sawAll, sawTargeted)
	}
}

// TestScenarios: every advertised name resolves, unknown names do not,
// and "none" is the empty plan.
func TestScenarios(t *testing.T) {
	for _, name := range ScenarioNames() {
		evs, ok := Scenario(name, 4, 180*sim.Second)
		if !ok {
			t.Fatalf("advertised scenario %q did not resolve", name)
		}
		if name == "none" && len(evs) != 0 {
			t.Fatalf("scenario none has %d events, want empty", len(evs))
		}
		if name != "none" && len(evs) == 0 {
			t.Fatalf("scenario %q is empty", name)
		}
	}
	if _, ok := Scenario("nope", 4, 180*sim.Second); ok {
		t.Fatal("unknown scenario resolved")
	}
}

// TestSubSeedStreams: per-host decision streams are distinct across
// hosts and across adjacent plan seeds.
func TestSubSeedStreams(t *testing.T) {
	seen := map[uint64]string{}
	for seed := uint64(1); seed <= 4; seed++ {
		for host := 0; host < 8; host++ {
			s := SubSeed(seed, host)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SubSeed collision: seed=%d host=%d vs %s", seed, host, prev)
			}
			seen[s] = "earlier stream"
		}
	}
}

// TestInjectorRecompute: overlapping windows combine to the most
// severe magnitude per kind, and closing restores the milder one.
func TestInjectorRecompute(t *testing.T) {
	in := NewInjector(0, 1)
	mild := Event{Kind: ReclaimStall, Mag: 2}
	severe := Event{Kind: ReclaimStall, Mag: 10}
	in.Open(mild)
	in.Open(severe)
	if got := in.ReclaimStall(); got != 10*sim.Second {
		t.Fatalf("combined stall %v, want the severe 10s", got)
	}
	in.Close(severe)
	if got := in.ReclaimStall(); got != 2*sim.Second {
		t.Fatalf("stall after closing severe window %v, want 2s", got)
	}
	in.Close(mild)
	if got := in.ReclaimStall(); got != 0 {
		t.Fatalf("stall with no windows %v, want 0", got)
	}
	// Partial caps combine to the smallest completed fraction.
	in.Open(Event{Kind: ReclaimPartial, Mag: 0.8})
	in.Open(Event{Kind: ReclaimPartial, Mag: 0.3})
	if got := in.ReclaimFraction(); got != 0.3 {
		t.Fatalf("combined fraction %v, want 0.3", got)
	}
	// Closing a window never opened here is a no-op.
	in.Close(Event{Kind: Straggler, Mag: 4})
	if got := in.ReclaimFraction(); got != 0.3 {
		t.Fatalf("no-op close changed fraction to %v", got)
	}
}

// TestInjectorIdleDefaults: outside every window the injector answers
// the identity for each probe and consumes no decision variates.
func TestInjectorIdleDefaults(t *testing.T) {
	in := NewInjector(3, 9)
	for i := 0; i < 100; i++ {
		if in.FailCold() || in.CrashExec() {
			t.Fatal("idle injector injected a failure")
		}
	}
	if in.ReclaimStall() != 0 || in.ReclaimFraction() != 1 || in.StragglerScale() != 1 {
		t.Fatal("idle injector reports non-identity effects")
	}
	if in.ctr != 0 {
		t.Fatalf("idle probes consumed %d decision variates, want 0", in.ctr)
	}
}

// TestInjectorDecisionStreamDeterministic: the i-th decision on a host
// is a pure function of (plan seed, host, i) — a fresh injector with
// the same identity replays the exact decision sequence, and a
// different host diverges.
func TestInjectorDecisionStreamDeterministic(t *testing.T) {
	draw := func(host int, n int) []bool {
		in := NewInjector(host, 42)
		in.Open(Event{Kind: ColdFail, Mag: 0.5})
		out := make([]bool, n)
		for i := range out {
			out[i] = in.FailCold()
		}
		return out
	}
	a, b := draw(1, 200), draw(1, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, host) replayed a different decision stream")
	}
	if reflect.DeepEqual(a, draw(2, 200)) {
		t.Fatal("different hosts drew identical decision streams")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	// Mag 0.5 over 200 draws: a stream stuck at one outcome means the
	// variate construction is broken.
	if fails == 0 || fails == 200 {
		t.Fatalf("degenerate decision stream: %d/200 failures at p=0.5", fails)
	}
}

// TestDomainKinds: the Domain predicate separates rack-level kinds
// from host-level ones exactly.
func TestDomainKinds(t *testing.T) {
	host := []Kind{ReclaimStall, ReclaimPartial, ColdFail, ExecCrash, Straggler}
	domain := []Kind{RackFail, RackDegrade, RackPartition}
	for _, k := range host {
		if k.Domain() {
			t.Fatalf("%v classified as a domain kind", k)
		}
	}
	for _, k := range domain {
		if !k.Domain() {
			t.Fatalf("%v not classified as a domain kind", k)
		}
	}
}

// TestGenFaultsRackGating: plans stay host-only with Racks unset —
// byte-identical draws to a build without the domain kinds — and mix
// in rack-level events, with rack-index targets (possibly dangling),
// once a topology is declared.
func TestGenFaultsRackGating(t *testing.T) {
	flat := GenFaults(3, Config{Duration: 120 * sim.Second, Events: 64, Hosts: 4})
	for _, ev := range flat {
		if ev.Kind.Domain() {
			t.Fatalf("flat plan drew domain kind %v", ev.Kind)
		}
	}
	racked := GenFaults(3, Config{Duration: 120 * sim.Second, Events: 64, Hosts: 4, Racks: 2})
	sawDomain := false
	for _, ev := range racked {
		if !ev.Kind.Domain() {
			continue
		}
		sawDomain = true
		if ev.Host < 0 || ev.Host >= 4 {
			t.Fatalf("%v targets rack %d outside [0, %d)", ev.Kind, ev.Host, 4)
		}
		switch ev.Kind {
		case RackFail:
			if ev.Mag < 0.5 || ev.Mag > 1 {
				t.Fatalf("rack-fail magnitude %v outside [0.5, 1]", ev.Mag)
			}
		case RackDegrade:
			if ev.Mag < 2 {
				t.Fatalf("rack-degrade scale %v below 2", ev.Mag)
			}
		}
	}
	if !sawDomain {
		t.Fatal("racked plan drew no domain kinds in 64 events")
	}
}

// TestDomainScenarios: every advertised rack-level scenario resolves
// to domain-kind events, disjoint from the host-level names.
func TestDomainScenarios(t *testing.T) {
	for _, name := range DomainScenarioNames() {
		evs, ok := Scenario(name, 8, 180*sim.Second)
		if !ok {
			t.Fatalf("advertised domain scenario %q did not resolve", name)
		}
		if len(evs) == 0 {
			t.Fatalf("domain scenario %q is empty", name)
		}
		for _, ev := range evs {
			if !ev.Kind.Domain() {
				t.Fatalf("scenario %q contains host-level kind %v", name, ev.Kind)
			}
		}
		for _, host := range ScenarioNames() {
			if name == host {
				t.Fatalf("domain scenario %q shadows a host-level name", name)
			}
		}
	}
}

// TestDomainDraw: the rack-expansion stream is deterministic, in
// [0, 1), and independent across hosts and events — and entirely
// separate from the injector decision streams, so expanding a rack
// never perturbs a host's own draws.
func TestDomainDraw(t *testing.T) {
	ev := Event{T: sim.Time(7 * sim.Second), Kind: RackFail, Host: 1, Mag: 0.7}
	seen := map[float64]bool{}
	for host := 0; host < 16; host++ {
		a := DomainDraw(5, ev, host)
		b := DomainDraw(5, ev, host)
		if a != b {
			t.Fatalf("host %d draw not deterministic: %v vs %v", host, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("host %d draw %v outside [0, 1)", host, a)
		}
		seen[a] = true
	}
	if len(seen) < 12 {
		t.Fatalf("only %d distinct draws over 16 hosts", len(seen))
	}
	other := ev
	other.T = sim.Time(8 * sim.Second)
	if DomainDraw(5, ev, 3) == DomainDraw(5, other, 3) {
		t.Fatal("different events produced identical draws")
	}
	if DomainDraw(5, ev, 3) == DomainDraw(6, ev, 3) {
		t.Fatal("different seeds produced identical draws")
	}
}
