// Package vmm models the virtual machine monitor side of a VM: its vCPU
// pool, the host-side device threads, VM-exit accounting, and the
// population state of guest memory in the host (EPT).
//
// It also provides the Chain helper that reclamation interfaces use to
// express a hot(un)plug operation as a sequence of CPU-work steps
// spread across guest and host thread pools — the measured wall-clock
// time of each step yields the zeroing/migration/VM-exit/rest latency
// breakdown of Figure 5 for free, including any inflation caused by CPU
// contention (Figure 9).
package vmm
