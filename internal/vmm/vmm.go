package vmm

import (
	"fmt"

	"squeezy/internal/costmodel"
	"squeezy/internal/cpu"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
)

// Breakdown labels shared by all reclamation interfaces (Figure 5).
const (
	StepZeroing   = "zeroing"
	StepMigration = "migration"
	StepVMExits   = "vmexits"
	StepRest      = "rest"
)

// BreakdownLabels returns the canonical label set, in stacking order.
func BreakdownLabels() []string {
	return []string{StepZeroing, StepMigration, StepVMExits, StepRest}
}

// Step is one serial stage of a hot(un)plug operation.
type Step struct {
	// Pool is the CPU pool the work runs on (guest vCPUs or host
	// threads). Steps with zero Work are skipped.
	Pool *cpu.Pool
	// Work is the CPU time the step consumes.
	Work sim.Duration
	// Class is the CPU accounting class ("virtio-mem", "balloon", ...).
	Class string
	// Label is the Figure 5 breakdown bucket the step's wall time
	// accrues to.
	Label string
	// Weight is the processor-sharing weight; zero defaults to
	// KthreadWeight for guest reclaim steps set by the drivers, or 1.
	Weight float64
}

// KthreadWeight is the scheduling weight drivers give guest reclaim
// kernel threads: a kthread effectively claims a whole vCPU instead of
// fair-sharing with containers, which is what makes vanilla unplug
// visible to co-located instances (Figure 9).
const KthreadWeight = 64.0

// VM couples the guest-visible resources of one virtual machine with
// their host-side accounting.
type VM struct {
	Name  string
	Sched *sim.Scheduler
	Cost  *costmodel.Model
	Host  *hostmem.Host

	// VCPUs runs guest work: function instances and guest kernel
	// threads.
	VCPUs *cpu.Pool
	// HostThreads runs VMM work: VM-exit servicing, device emulation.
	HostThreads *cpu.Pool
	// ReclaimPool, when non-nil, is a dedicated vCPU for guest reclaim
	// kernel threads (the pinned setup of §6.1.2). When nil, reclaim
	// threads share VCPUs with function instances and interfere with
	// them (§6.2.1, Figure 9).
	ReclaimPool *cpu.Pool

	exits          map[string]int64
	populatedPages int64
	committedPages int64
}

// New creates a VM with the given number of vCPUs. Host-side device
// threads get a single dedicated core, as in the paper's pinned setup
// (§6.1.2).
func New(name string, sched *sim.Scheduler, cost *costmodel.Model, host *hostmem.Host, vcpus float64) *VM {
	return &VM{
		Name:        name,
		Sched:       sched,
		Cost:        cost,
		Host:        host,
		VCPUs:       cpu.NewPool(sched, vcpus),
		HostThreads: cpu.NewPool(sched, 1),
		exits:       make(map[string]int64),
	}
}

// Reset re-boots the VM struct in place for a new simulation run on
// the same scheduler: the vCPU and host-thread pools are reset (their
// job slices, scratch buffers, and usage maps kept), exit counters
// and population accounting cleared, and any pinned reclaim pool
// dropped (call PinReclaimThreads again if the new run pins). The
// scheduler must already be reset to the new run's start time. A
// reset VM behaves identically to one built by New.
func (vm *VM) Reset(name string, cost *costmodel.Model, host *hostmem.Host, vcpus float64) {
	vm.Name = name
	vm.Cost = cost
	vm.Host = host
	vm.VCPUs.Reset(vcpus)
	vm.HostThreads.Reset(1)
	vm.ReclaimPool = nil
	clear(vm.exits)
	vm.populatedPages = 0
	vm.committedPages = 0
}

// GuestReclaimPool returns the pool guest reclaim kernel threads run
// on: the dedicated ReclaimPool if pinned, otherwise the shared vCPUs.
func (vm *VM) GuestReclaimPool() *cpu.Pool {
	if vm.ReclaimPool != nil {
		return vm.ReclaimPool
	}
	return vm.VCPUs
}

// PinReclaimThreads gives reclaim kernel threads a dedicated vCPU.
func (vm *VM) PinReclaimThreads() {
	vm.ReclaimPool = cpu.NewPool(vm.Sched, 1)
}

// CountExit records n VM exits of the given kind.
func (vm *VM) CountExit(kind string, n int64) { vm.exits[kind] += n }

// Exits returns the number of recorded VM exits of the given kind.
func (vm *VM) Exits(kind string) int64 { return vm.exits[kind] }

// Commit reserves host memory for plugged guest memory; false means the
// host is out of budget.
func (vm *VM) Commit(pages int64) bool {
	if !vm.Host.TryCommit(pages) {
		return false
	}
	vm.committedPages += pages
	return true
}

// Uncommit returns plugged-memory budget to the host.
func (vm *VM) Uncommit(pages int64) {
	if pages > vm.committedPages {
		panic(fmt.Sprintf("vmm: %s uncommitting %d > committed %d", vm.Name, pages, vm.committedPages))
	}
	vm.committedPages -= pages
	vm.Host.Uncommit(pages)
}

// CommittedPages returns guest memory currently plugged into this VM.
func (vm *VM) CommittedPages() int64 { return vm.committedPages }

// CommittedBytes returns committed memory in bytes.
func (vm *VM) CommittedBytes() int64 { return units.PagesToBytes(vm.committedPages) }

// PopulatePages accounts for fresh guest pages being backed by host
// frames (nested page faults on first touch) and returns the guest-
// visible latency of those faults.
func (vm *VM) PopulatePages(pages int64) sim.Duration {
	if pages <= 0 {
		return 0
	}
	vm.populatedPages += pages
	if vm.populatedPages > vm.committedPages {
		panic(fmt.Sprintf("vmm: %s populated %d > committed %d", vm.Name, vm.populatedPages, vm.committedPages))
	}
	vm.Host.Populate(pages)
	vm.CountExit("ept", pages)
	return sim.Duration(pages) * vm.Cost.NestedFaultPerPage
}

// ReleasePages releases host frames after an unplug
// (madvise(MADV_DONTNEED)). Releasing more than is populated is
// tolerated down to zero because unplugged blocks may be only partially
// populated.
func (vm *VM) ReleasePages(pages int64) {
	if pages > vm.populatedPages {
		pages = vm.populatedPages
	}
	vm.populatedPages -= pages
	vm.Host.Release(pages)
}

// PopulatedPages returns the host frames currently backing this VM.
func (vm *VM) PopulatedPages() int64 { return vm.populatedPages }

// RunChain executes steps serially, each as a CPU job on its pool, and
// calls done with the per-label wall-time breakdown and total elapsed
// time. Wall time per step can exceed Step.Work under CPU contention —
// that is the interference Figure 9 measures.
func RunChain(sched *sim.Scheduler, steps []Step, done func(*stats.Breakdown, sim.Duration)) {
	bd := stats.NewBreakdown(BreakdownLabels()...)
	start := sched.Now()
	var next func(i int)
	next = func(i int) {
		for i < len(steps) && steps[i].Work <= 0 {
			i++
		}
		if i >= len(steps) {
			done(bd, sched.Now().Sub(start))
			return
		}
		st := steps[i]
		stepStart := sched.Now()
		st.Pool.Submit(st.Work, cpu.Config{
			Name:   st.Label,
			Class:  st.Class,
			Weight: st.Weight,
			OnDone: func() {
				bd.Add(st.Label, sched.Now().Sub(stepStart).Milliseconds())
				next(i + 1)
			},
		})
	}
	next(0)
}
