package vmm

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/cpu"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
)

func newVM(t *testing.T) (*VM, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler()
	h := hostmem.New(0)
	return New("vm0", s, costmodel.Default(), h, 4), s
}

func TestCommitUncommit(t *testing.T) {
	vm, _ := newVM(t)
	if !vm.Commit(1000) {
		t.Fatal("commit failed on unlimited host")
	}
	if vm.CommittedPages() != 1000 {
		t.Fatalf("committed = %d", vm.CommittedPages())
	}
	if vm.CommittedBytes() != 1000*units.PageSize {
		t.Fatalf("committed bytes = %d", vm.CommittedBytes())
	}
	vm.Uncommit(400)
	if vm.CommittedPages() != 600 {
		t.Fatalf("committed = %d", vm.CommittedPages())
	}
}

func TestCommitRespectsHostBudget(t *testing.T) {
	s := sim.NewScheduler()
	h := hostmem.New(1 * units.MiB) // 256 pages
	vm := New("vm0", s, costmodel.Default(), h, 1)
	if !vm.Commit(256) {
		t.Fatal("commit within budget failed")
	}
	if vm.Commit(1) {
		t.Fatal("commit beyond budget succeeded")
	}
}

func TestPopulateChargesNestedFaults(t *testing.T) {
	vm, _ := newVM(t)
	vm.Commit(1000)
	d := vm.PopulatePages(100)
	if want := 100 * vm.Cost.NestedFaultPerPage; d != want {
		t.Fatalf("latency = %v, want %v", d, want)
	}
	if vm.PopulatedPages() != 100 {
		t.Fatalf("populated = %d", vm.PopulatedPages())
	}
	if vm.Exits("ept") != 100 {
		t.Fatalf("ept exits = %d", vm.Exits("ept"))
	}
	if vm.Host.PopulatedPages() != 100 {
		t.Fatalf("host populated = %d", vm.Host.PopulatedPages())
	}
}

func TestPopulateBeyondCommitPanics(t *testing.T) {
	vm, _ := newVM(t)
	vm.Commit(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	vm.PopulatePages(11)
}

func TestReleaseClampsToPopulated(t *testing.T) {
	vm, _ := newVM(t)
	vm.Commit(100)
	vm.PopulatePages(50)
	vm.ReleasePages(80) // partially populated block being unplugged
	if vm.PopulatedPages() != 0 {
		t.Fatalf("populated = %d", vm.PopulatedPages())
	}
}

func TestRunChainSerializesAndMeasures(t *testing.T) {
	vm, s := newVM(t)
	gotTotal := sim.Duration(-1)
	var gotBD *stats.Breakdown
	steps := []Step{
		{Pool: vm.VCPUs, Work: 10 * sim.Millisecond, Class: "virtio-mem", Label: StepMigration},
		{Pool: vm.VCPUs, Work: 0, Class: "virtio-mem", Label: StepZeroing}, // skipped
		{Pool: vm.HostThreads, Work: 3 * sim.Millisecond, Class: "vmm", Label: StepVMExits},
	}
	RunChain(s, steps, func(bd *stats.Breakdown, total sim.Duration) {
		gotBD, gotTotal = bd, total
	})
	s.Run()
	if gotTotal != 13*sim.Millisecond {
		t.Fatalf("total = %v, want 13ms", gotTotal)
	}
	if gotBD.Get(StepMigration) != 10 || gotBD.Get(StepVMExits) != 3 {
		t.Fatalf("breakdown = %v", gotBD)
	}
	if gotBD.Get(StepZeroing) != 0 {
		t.Fatalf("zero-work step accrued time: %v", gotBD)
	}
}

func TestRunChainContentionInflatesWallTime(t *testing.T) {
	vm, s := newVM(t)
	// Saturate the single host thread with a competing job.
	vm.HostThreads.Submit(20*sim.Millisecond, cpu.Config{Class: "other"})
	var gotTotal sim.Duration
	RunChain(s, []Step{
		{Pool: vm.HostThreads, Work: 20 * sim.Millisecond, Class: "vmm", Label: StepVMExits},
	}, func(_ *stats.Breakdown, total sim.Duration) { gotTotal = total })
	s.Run()
	// Two equal jobs sharing one core: wall time doubles.
	if gotTotal != 40*sim.Millisecond {
		t.Fatalf("total = %v, want 40ms under contention", gotTotal)
	}
}

func TestRunChainEmpty(t *testing.T) {
	_, s := newVM(t)
	called := false
	RunChain(s, nil, func(bd *stats.Breakdown, total sim.Duration) {
		called = true
		if total != 0 {
			t.Errorf("total = %v", total)
		}
	})
	s.Run()
	if !called {
		t.Fatal("done not called for empty chain")
	}
}

// TestVMResetEquivalence replays the same populate/release/exit
// program on a fresh VM and on a reset one (after unrelated prior
// work, including a pinned reclaim pool) and requires identical
// accounting and latencies.
func TestVMResetEquivalence(t *testing.T) {
	program := func(s *sim.Scheduler, vm *VM) (lat sim.Duration, pop, com int64, exits int64, busy sim.Duration) {
		if !vm.Commit(1000) {
			t.Fatal("commit failed")
		}
		lat = vm.PopulatePages(600)
		vm.ReleasePages(200)
		vm.VCPUs.Submit(5*sim.Millisecond, cpu.Config{Class: "f"})
		s.Run()
		return lat, vm.PopulatedPages(), vm.CommittedPages(), vm.Exits("ept"), vm.VCPUs.TotalBusy()
	}
	sf := sim.NewScheduler()
	fresh := New("vm", sf, costmodel.Default(), hostmem.New(0), 4)
	wl, wp, wc, we, wb := program(sf, fresh)

	sr := sim.NewScheduler()
	reused := New("other", sr, costmodel.Default(), hostmem.New(0), 9)
	reused.PinReclaimThreads()
	reused.Commit(50)
	reused.PopulatePages(50)
	reused.CountExit("ept", 7)
	reused.VCPUs.Submit(sim.Millisecond, cpu.Config{Class: "old"})
	sr.Run()
	sr.Reset()
	reused.Reset("vm", costmodel.Default(), hostmem.New(0), 4)
	if reused.ReclaimPool != nil {
		t.Fatal("Reset kept the pinned reclaim pool")
	}
	gl, gp, gc, ge, gb := program(sr, reused)
	if gl != wl || gp != wp || gc != wc || ge != we || gb != wb {
		t.Fatalf("reset VM: lat=%v pop=%d com=%d exits=%d busy=%v; fresh: %v %d %d %d %v",
			gl, gp, gc, ge, gb, wl, wp, wc, we, wb)
	}
}
