package workload

import (
	"fmt"

	"squeezy/internal/guestos"
	"squeezy/internal/sim"
	"squeezy/internal/units"
)

// Function describes one FaaS function (Table 1 plus derived profile).
type Function struct {
	Name string
	// CPUShares is the vCPU limit per instance (Table 1).
	CPUShares float64
	// MemoryLimit is the user-set memory resource limit per instance
	// (Table 1) — Squeezy's partition rated size.
	MemoryLimit int64

	// AnonBytes is the anonymous memory an instance touches across
	// init and execution.
	AnonBytes int64
	// FileSharedBytes is the file-backed footprint shareable across
	// instances (container rootfs, runtime and language deps).
	FileSharedBytes int64
	// FilePrivateBytes is the per-instance writable layer that cannot
	// be shared.
	FilePrivateBytes int64

	// ContainerInitCPU, FuncInitCPU and ExecCPU are the pure-CPU parts
	// of sandbox creation, runtime/model initialization, and the first
	// (cold) request execution. Memory-touch costs come on top, from
	// the cost model.
	ContainerInitCPU sim.Duration
	FuncInitCPU      sim.Duration
	ExecCPU          sim.Duration
	// WarmExecCPU is the steady-state request execution cost on an
	// already-initialized instance (no model loading, warm caches).
	WarmExecCPU sim.Duration

	// GuestOSBytes is the guest kernel + agent footprint a dedicated
	// 1:1 microVM replicates per instance (§6.3).
	GuestOSBytes int64

	// Priority is the invocation's shedding class: under memory
	// pressure the dispatcher sheds priority 0 first, and higher
	// priorities survive until the fleet is essentially full
	// (costmodel.ShedBase/ShedStep). Zero-value functions are lowest
	// priority, which keeps single-VM experiments unaffected.
	Priority int
}

// InitAnonBytes returns the portion of AnonBytes touched during
// function initialization (heap, model weights); the rest is touched
// during execution.
func (f *Function) InitAnonBytes() int64 { return f.AnonBytes * 2 / 3 }

// ExecAnonBytes returns the anonymous bytes touched at execution time.
func (f *Function) ExecAnonBytes() int64 { return f.AnonBytes - f.InitAnonBytes() }

// Functions returns the Table 1 workloads.
func Functions() []*Function {
	return []*Function{
		// JPEG classification (FunctionBench).
		{
			Name: "Cnn", CPUShares: 1.0, MemoryLimit: 768 * units.MiB,
			AnonBytes: 330 * units.MiB, FileSharedBytes: 330 * units.MiB, FilePrivateBytes: 50 * units.MiB,
			ContainerInitCPU: 450 * sim.Millisecond, FuncInitCPU: 800 * sim.Millisecond, ExecCPU: 1800 * sim.Millisecond,
			WarmExecCPU:  150 * sim.Millisecond,
			GuestOSBytes: 180 * units.MiB,
		},
		// ML inference (FaaSMem).
		{
			Name: "Bert", CPUShares: 1.0, MemoryLimit: 1536 * units.MiB,
			AnonBytes: 560 * units.MiB, FileSharedBytes: 760 * units.MiB, FilePrivateBytes: 90 * units.MiB,
			ContainerInitCPU: 480 * sim.Millisecond, FuncInitCPU: 1500 * sim.Millisecond, ExecCPU: 2500 * sim.Millisecond,
			WarmExecCPU:  300 * sim.Millisecond,
			GuestOSBytes: 180 * units.MiB,
		},
		// Breadth-first search (FaaSMem); dominated by anonymous memory.
		{
			Name: "BFS", CPUShares: 1.0, MemoryLimit: 768 * units.MiB,
			AnonBytes: 460 * units.MiB, FileSharedBytes: 180 * units.MiB, FilePrivateBytes: 40 * units.MiB,
			ContainerInitCPU: 420 * sim.Millisecond, FuncInitCPU: 300 * sim.Millisecond, ExecCPU: 900 * sim.Millisecond,
			WarmExecCPU:  250 * sim.Millisecond,
			GuestOSBytes: 180 * units.MiB,
		},
		// Web service (FaaSMem); light CPU, page-cache heavy.
		{
			Name: "HTML", CPUShares: 0.25, MemoryLimit: 768 * units.MiB,
			AnonBytes: 110 * units.MiB, FileSharedBytes: 230 * units.MiB, FilePrivateBytes: 40 * units.MiB,
			ContainerInitCPU: 400 * sim.Millisecond, FuncInitCPU: 200 * sim.Millisecond, ExecCPU: 80 * sim.Millisecond,
			WarmExecCPU:  40 * sim.Millisecond,
			GuestOSBytes: 180 * units.MiB,
		},
	}
}

// fleetMember builds the rank-i fleet function from the base profiles:
// cycle the four Table-1 profiles under distinct names ("f003-Bert")
// and spread shedding classes across ranks so every priority mixes hot
// and cold functions.
func fleetMember(base []*Function, i int) *Function {
	f := *base[i%len(base)]
	f.Name = fmt.Sprintf("f%03d-%s", i, f.Name)
	f.Priority = i % 3
	return &f
}

// Fleet synthesizes n functions for fleet-scale experiments by cycling
// the four Table-1 profiles under distinct names ("f003-Bert"). Ranks
// are meant to be paired with trace.GenFleet, whose Zipf split makes
// low-numbered functions hot and the tail cold; the profiles themselves
// are unchanged so per-function behavior stays calibrated.
func Fleet(n int) []*Function {
	base := Functions()
	fleet := make([]*Function, n)
	for i := range fleet {
		fleet[i] = fleetMember(base, i)
	}
	return fleet
}

// FleetPool hands out fleet members by rank, building each lazily on
// first use and memoizing it so every lookup of rank i returns the
// same *Function — the identity the dispatcher keys warm instances on.
// Streaming replays (trace cursors, CSV traces) use it when the
// function universe isn't known up front: memory stays O(distinct
// ranks seen), and Get(i) is always identical in value to Fleet(n)[i].
type FleetPool struct {
	base []*Function
	fns  []*Function
}

// Get returns the rank-i fleet member, building it if needed.
func (p *FleetPool) Get(i int) *Function {
	if p.base == nil {
		p.base = Functions()
	}
	for len(p.fns) <= i {
		p.fns = append(p.fns, fleetMember(p.base, len(p.fns)))
	}
	return p.fns[i]
}

// LongHaul returns a synthetic long-running function whose warm
// execution outlasts costmodel.ReclaimDrainTimeout. Drain-deadline
// tests need an invocation that is still running when a draining
// host's grace period expires, and every Table-1 profile finishes in
// well under a second warm.
func LongHaul() *Function {
	return &Function{
		Name: "LongHaul", CPUShares: 1.0, MemoryLimit: 768 * units.MiB,
		AnonBytes: 330 * units.MiB, FileSharedBytes: 330 * units.MiB, FilePrivateBytes: 50 * units.MiB,
		ContainerInitCPU: 450 * sim.Millisecond, FuncInitCPU: 800 * sim.Millisecond, ExecCPU: 12 * sim.Second,
		WarmExecCPU:  8 * sim.Second,
		GuestOSBytes: 180 * units.MiB,
	}
}

// ByName returns the Table 1 function with the given name.
func ByName(name string) *Function {
	for _, f := range Functions() {
		if f.Name == name {
			return f
		}
	}
	panic("workload: unknown function " + name)
}

// Memhog mimics memhog(8): it repeatedly allocates and frees chunks of
// anonymous memory of a fixed size while burning CPU, stressing both
// the allocator and the vCPUs (§6.1). Drive it by calling Step
// periodically or via Start.
type Memhog struct {
	K *guestos.Kernel
	// Size is the resident footprint the instance maintains.
	Size int64
	// ChurnFraction is the share of the footprint freed and re-touched
	// on every step.
	ChurnFraction float64

	Proc *guestos.Process
}

// NewMemhog spawns a memhog process with the given steady-state
// footprint.
func NewMemhog(k *guestos.Kernel, name string, size int64) *Memhog {
	return &Memhog{K: k, Size: size, ChurnFraction: 0.25, Proc: k.Spawn(name)}
}

// Warmup touches the full footprint. It reports whether the allocation
// fit (false means the zone is exhausted — the OOM case).
func (m *Memhog) Warmup() bool {
	need := m.Size - units.PagesToBytes(m.Proc.AnonPages())
	if need <= 0 {
		return true
	}
	_, ok := m.K.TouchAnon(m.Proc, need, guestos.HugeOrder)
	return ok
}

// ReleaseChurn frees the churn fraction of the footprint (the free half
// of memhog's loop). Interleaving ReleaseChurn/TouchChurn across
// concurrent instances scatters their footprints over shared memory
// blocks, as concurrent memhogs do on a real guest (Figure 3).
func (m *Memhog) ReleaseChurn() {
	churn := int64(float64(m.Size) * m.ChurnFraction)
	if churn > 0 {
		m.K.FreeAnon(m.Proc, churn)
	}
}

// TouchChurn re-touches the churned fraction, reporting whether it fit.
func (m *Memhog) TouchChurn() bool {
	churn := int64(float64(m.Size) * m.ChurnFraction)
	if churn <= 0 {
		return true
	}
	_, ok := m.K.TouchAnon(m.Proc, churn, guestos.HugeOrder)
	return ok
}

// Step performs one full churn iteration: free a fraction of the
// footprint and touch it back, as memhog's (de)allocation loop does. It
// reports whether the re-allocation fit.
func (m *Memhog) Step() bool {
	m.ReleaseChurn()
	return m.TouchChurn()
}

// Kill terminates the memhog instance, releasing its memory.
func (m *Memhog) Kill() int64 {
	return m.K.Exit(m.Proc)
}
