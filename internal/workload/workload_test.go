package workload

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func TestTable1(t *testing.T) {
	fns := Functions()
	if len(fns) != 4 {
		t.Fatalf("functions = %d", len(fns))
	}
	limits := map[string]int64{
		"Cnn": 768 * units.MiB, "Bert": 1536 * units.MiB,
		"BFS": 768 * units.MiB, "HTML": 768 * units.MiB,
	}
	shares := map[string]float64{"Cnn": 1, "Bert": 1, "BFS": 1, "HTML": 0.25}
	for _, f := range fns {
		if f.MemoryLimit != limits[f.Name] {
			t.Errorf("%s memory limit = %d", f.Name, f.MemoryLimit)
		}
		if f.CPUShares != shares[f.Name] {
			t.Errorf("%s shares = %v", f.Name, f.CPUShares)
		}
		// Footprint must fit in the limit (otherwise instances OOM).
		if f.AnonBytes+f.FilePrivateBytes >= f.MemoryLimit {
			t.Errorf("%s footprint exceeds its limit", f.Name)
		}
		if f.InitAnonBytes()+f.ExecAnonBytes() != f.AnonBytes {
			t.Errorf("%s anon split inconsistent", f.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("Bert").Name != "Bert" {
		t.Fatal("ByName failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown name")
		}
	}()
	ByName("nope")
}

func newKernel(t *testing.T, blocks int) *guestos.Kernel {
	t.Helper()
	s := sim.NewScheduler()
	vm := vmm.New("vm", s, costmodel.Default(), hostmem.New(0), 4)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes:           units.BlockSize,
		MovableBytes:        int64(blocks) * units.BlockSize,
		KernelResidentBytes: 8 * units.MiB,
	})
	k.OnlineAllMovable()
	return k
}

func TestMemhogLifecycle(t *testing.T) {
	k := newKernel(t, 8)
	m := NewMemhog(k, "memhog0", 512*units.MiB)
	if !m.Warmup() {
		t.Fatal("warmup failed")
	}
	if m.Proc.AnonPages() != units.BytesToPages(512*units.MiB) {
		t.Fatalf("resident = %d pages", m.Proc.AnonPages())
	}
	for i := 0; i < 5; i++ {
		if !m.Step() {
			t.Fatalf("churn step %d failed", i)
		}
		if m.Proc.AnonPages() != units.BytesToPages(512*units.MiB) {
			t.Fatalf("footprint drifted to %d pages after step %d", m.Proc.AnonPages(), i)
		}
	}
	freed := m.Kill()
	if freed != units.BytesToPages(512*units.MiB) {
		t.Fatalf("kill freed %d pages", freed)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMemhogChurnScattersFootprint(t *testing.T) {
	// Concurrently churning memhogs interleave their chunks across
	// blocks — the fragmentation that penalizes vanilla unplug (§2.2).
	// Asymmetric churn fractions prevent the pathological two-process
	// oscillation where footprints swap wholesale every iteration.
	k := newKernel(t, 12)
	hogs := []*Memhog{
		NewMemhog(k, "a", 256*units.MiB),
		NewMemhog(k, "b", 256*units.MiB),
		NewMemhog(k, "c", 256*units.MiB),
	}
	hogs[0].ChurnFraction = 0.25
	hogs[1].ChurnFraction = 0.35
	hogs[2].ChurnFraction = 0.15
	for _, h := range hogs {
		if !h.Warmup() {
			t.Fatal("warmup failed")
		}
	}
	for i := 0; i < 9; i++ {
		// Concurrent churn: all release, then all re-touch, so each
		// re-allocation draws from the mixed free pool.
		for _, h := range hogs {
			h.ReleaseChurn()
		}
		for _, h := range hogs {
			if !h.TouchChurn() {
				t.Fatal("churn failed")
			}
		}
	}
	// Count blocks containing pages from more than one process.
	mixed := 0
	for i := 0; i < k.Movable.Blocks(); i++ {
		start, count := k.Movable.BlockRange(i)
		procs := map[*guestos.Process]bool{}
		for _, c := range k.ChunksInRange(start, count) {
			if c.Proc != nil {
				procs[c.Proc] = true
			}
		}
		if len(procs) > 1 {
			mixed++
		}
	}
	if mixed == 0 {
		t.Fatal("no interleaved blocks after churn; fragmentation model broken")
	}
}

func TestMemhogOversubscription(t *testing.T) {
	k := newKernel(t, 2)
	m := NewMemhog(k, "big", 512*units.MiB)
	if m.Warmup() {
		t.Fatal("warmup should fail in a 256 MiB zone")
	}
}

// TestLongHaulOutlivesDrainTimeout pins the contract the drain-deadline
// tests rely on: a warm LongHaul invocation is still running when a
// draining host's grace period (costmodel.ReclaimDrainTimeout) expires,
// while every Table-1 profile finishes well inside it.
func TestLongHaulOutlivesDrainTimeout(t *testing.T) {
	lh := LongHaul()
	if lh.WarmExecCPU <= sim.Duration(costmodel.ReclaimDrainTimeout) {
		t.Fatalf("WarmExecCPU %v must exceed drain timeout %v", lh.WarmExecCPU, costmodel.ReclaimDrainTimeout)
	}
	if lh.ExecCPU <= lh.WarmExecCPU {
		t.Fatalf("cold ExecCPU %v must exceed warm %v", lh.ExecCPU, lh.WarmExecCPU)
	}
	if lh.MemoryLimit <= 0 || lh.AnonBytes+lh.FileSharedBytes+lh.FilePrivateBytes > lh.MemoryLimit {
		t.Fatalf("footprint exceeds MemoryLimit %d", lh.MemoryLimit)
	}
	for _, f := range Functions() {
		if f.WarmExecCPU >= sim.Duration(costmodel.ReclaimDrainTimeout) {
			t.Fatalf("Table-1 profile %s warm exec %v breaks the drain-settles tests", f.Name, f.WarmExecCPU)
		}
	}
}
