// Package workload defines the workloads of the paper's evaluation
// (§5.1): the memhog microbenchmark used for the reclamation
// experiments, and the four FaaS functions of Table 1 with their
// resource limits and execution profiles.
//
// Per-function execution profiles (CPU phases, anonymous vs file-backed
// footprint split) are not published in the paper; they are chosen so
// the derived quantities land where the paper reports them: cold starts
// of 1-7 s (Figure 11a), per-instance footprints where the 1:1 model
// costs ≈2.53x more memory (Figure 11b), and container/function init
// speedups of ≈1.33x/1.25x in the N:1 model (§6.3).
package workload
