package costmodel

import "squeezy/internal/sim"

// ReclaimDrainTimeout is the conservative upper bound the runtime
// places on one round of pressure-driven reclamation: after this long,
// the memory either arrived (and the broker granted its waiters) or the
// unplug stalled and pressure must be raised again. It backstops the
// broker's partial-pump re-raise; neither mechanism alone covers both
// the "unplug never completes" and the "unplug completed but freed too
// little" cases (§6.2.2).
const ReclaimDrainTimeout = 5 * sim.Second

// Dispatcher-resilience constants (internal/cluster). They are fleet
// policy, not host mechanics, but live here with the other calibrated
// time constants so experiments ablate them in one place.
const (
	// DispatchTimeout is the per-attempt deadline of a routed
	// invocation: past it the dispatcher races a fresh attempt on
	// another host (the original keeps running and may still win). It is
	// a gray-failure detector, not a congestion manager, so it sits
	// above the pressured fleet's worst *healthy* tail — the post-burst
	// backlog reaches ~40 s (EXPERIMENTS.md) — and well below the
	// injected-degradation tails (hundreds of seconds). A timeout below
	// the healthy tail triggers speculative re-dispatch of merely-queued
	// work, and the extra load feeds back into more timeouts: a classic
	// retry storm.
	DispatchTimeout = 60 * sim.Second
	// RetryBackoffBase and RetryBackoffCap bound the capped exponential
	// backoff between dispatch retries: retry k waits
	// min(Base << k, Cap) after the failure that triggered it.
	RetryBackoffBase = 250 * sim.Millisecond
	RetryBackoffCap  = 4 * sim.Second
	// DispatchMaxRetries bounds re-dispatch attempts per invocation
	// (the primary attempt is not a retry).
	DispatchMaxRetries = 3
	// HedgeDelay is how long the dispatcher waits on the primary
	// attempt before hedging a second host (when hedging is enabled) —
	// just above the fleet's steady-state cold P99 (~5-7.6 s), so only
	// genuine tail requests hedge, and early enough that a hedge still
	// beats a brown-out host's ~30x-slowed boot. Hedges are further gated
	// on the target serving without queueing (a warm instance, or
	// memory headroom covering the new instance): a hedge into a
	// backlog or a memory-starved spawn would amplify exactly the
	// congestion it is meant to dodge.
	HedgeDelay = 8 * sim.Second
)

// Load-shedding thresholds (internal/cluster): an invocation of
// priority p is shed when the fleet's demand overload — broker-queued
// (demanded-but-unmet) pages as a fraction of total memory — exceeds
// ShedBase + p*ShedStep. The signal is deliberately not
// committed/capacity: an elastic fleet sits full of reclaimable
// keep-alive pools by design, so committed memory reads ~1.0 even
// idle, while the unmet queue is ~0 healthy (mean ~0.35 through
// bursts at the experiments' scale) and >1.0 when reclaim degrades.
// The lowest priority sheds once a burst outruns reclaim; the highest
// holds until the backlog alone covers the whole fleet's memory.
const (
	ShedBase = 0.5
	ShedStep = 0.25
)

// Recovery-storm pacing defaults (internal/cluster/repace.go): after a
// correlated failure, displaced in-flight work re-dispatches at most
// RepacePerTick invocations per pacing tick, one tick every
// RepaceEvery. The product (16 re-dispatches/s) sits just above the
// full-scale experiments' steady arrival rate per surviving host, so a
// rack's worth of displaced work spreads over a few seconds of
// boundaries instead of landing on the survivors in one instant.
const (
	RepacePerTick = 4
	RepaceEvery   = 250 * sim.Millisecond
)

// Model holds every tunable cost constant. Experiments copy and tweak a
// Model for ablations; the zero value is unusable — start from Default.
type Model struct {
	// --- Guest page-level costs ---

	// GuestFaultPerPage is the guest-side cost of handling one minor
	// page fault (allocate + map one 4 KiB page), excluding zeroing.
	GuestFaultPerPage sim.Duration
	// ZeroPerPage is the cost of zeroing one 4 KiB page
	// (CONFIG_INIT_ON_ALLOC_DEFAULT_ON hardening).
	ZeroPerPage sim.Duration
	// MigratePerPage is the cost of migrating one occupied 4 KiB page
	// during offlining: target allocation, copy, rmap and PTE rewrite,
	// TLB shootdown.
	MigratePerPage sim.Duration

	// --- Guest block-level hot(un)plug costs ---

	// OnlineMetaPerBlock is the guest cost of hot-adding and onlining
	// one 128 MiB block (memmap init, zone/freelist insertion).
	OnlineMetaPerBlock sim.Duration
	// OfflineMetaPerBlockVanilla is the guest metadata cost of
	// offlining and hot-removing one block on the vanilla path
	// (per-page isolation scans, memmap teardown).
	OfflineMetaPerBlockVanilla sim.Duration
	// OfflineMetaPerBlockSqueezy is the same cost on the Squeezy path,
	// where the partition is known empty and per-page scans vanish.
	OfflineMetaPerBlockSqueezy sim.Duration

	// --- Host / VMM costs ---

	// VMExitPerBlock is the host-side cost of servicing one virtio-mem
	// (un)plug response for a 128 MiB block, including the
	// madvise(MADV_DONTNEED) release.
	VMExitPerBlock sim.Duration
	// VMExitPerPage is the host-side cost of one balloon-inflation VM
	// exit (ballooning reports reclaimed memory a page at a time).
	VMExitPerPage sim.Duration
	// BalloonGuestPerPage is the guest balloon driver's cost to reserve
	// and report one page.
	BalloonGuestPerPage sim.Duration
	// PlugHostFixed is the fixed host-side cost of one plug request
	// (device negotiation, VMM bookkeeping).
	PlugHostFixed sim.Duration
	// NestedFaultPerPage is the cost of the first guest touch of a
	// freshly plugged (host-unbacked) 4 KiB page: EPT violation exit,
	// host allocation, EPT map.
	NestedFaultPerPage sim.Duration

	// --- VM lifecycle ---

	// MicroVMBoot is the 1:1-model cost of booting a fresh microVM
	// (VMM setup, guest kernel boot, in-guest agent start).
	MicroVMBoot sim.Duration

	// --- Policy knobs (ablations) ---

	// ZeroOnUnplug controls whether the vanilla offline path zeroes the
	// pages it isolates and the migration targets it allocates, as a
	// hardened kernel does. Squeezy's allocator is hot(un)plug-aware
	// and always skips this. Figure 6 disables it for vanilla too.
	ZeroOnUnplug bool
	// BatchUnplugExits merges the per-block VM exits of one unplug
	// request into a single exit (the batching optimization §8 leaves
	// as future work; implemented here as an ablation).
	BatchUnplugExits bool
}

// Default returns the calibrated model.
func Default() *Model {
	return &Model{
		GuestFaultPerPage: 600 * sim.Nanosecond,
		ZeroPerPage:       1100 * sim.Nanosecond,
		MigratePerPage:    4 * sim.Microsecond,

		OnlineMetaPerBlock:         1700 * sim.Microsecond,
		OfflineMetaPerBlockVanilla: 19 * sim.Millisecond,
		OfflineMetaPerBlockSqueezy: 4900 * sim.Microsecond,

		VMExitPerBlock:      3 * sim.Millisecond,
		VMExitPerPage:       8900 * sim.Nanosecond,
		BalloonGuestPerPage: 2100 * sim.Nanosecond,
		PlugHostFixed:       25 * sim.Millisecond,
		NestedFaultPerPage:  1500 * sim.Nanosecond,

		MicroVMBoot: 700 * sim.Millisecond,

		ZeroOnUnplug:     true,
		BatchUnplugExits: false,
	}
}

// Clone returns a copy of the model for experiment-local tweaking.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}

// Scaled returns a copy of the model with every duration multiplied by
// f (policy booleans unchanged). The fault injector uses it to turn a
// host into a straggler for a window: the same protocol, uniformly
// slower hardware.
func (m *Model) Scaled(f float64) *Model {
	s := func(d sim.Duration) sim.Duration { return sim.Duration(float64(d) * f) }
	c := *m
	c.GuestFaultPerPage = s(m.GuestFaultPerPage)
	c.ZeroPerPage = s(m.ZeroPerPage)
	c.MigratePerPage = s(m.MigratePerPage)
	c.OnlineMetaPerBlock = s(m.OnlineMetaPerBlock)
	c.OfflineMetaPerBlockVanilla = s(m.OfflineMetaPerBlockVanilla)
	c.OfflineMetaPerBlockSqueezy = s(m.OfflineMetaPerBlockSqueezy)
	c.VMExitPerBlock = s(m.VMExitPerBlock)
	c.VMExitPerPage = s(m.VMExitPerPage)
	c.BalloonGuestPerPage = s(m.BalloonGuestPerPage)
	c.PlugHostFixed = s(m.PlugHostFixed)
	c.NestedFaultPerPage = s(m.NestedFaultPerPage)
	c.MicroVMBoot = s(m.MicroVMBoot)
	return &c
}
