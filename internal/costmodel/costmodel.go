package costmodel

import "squeezy/internal/sim"

// ReclaimDrainTimeout is the conservative upper bound the runtime
// places on one round of pressure-driven reclamation: after this long,
// the memory either arrived (and the broker granted its waiters) or the
// unplug stalled and pressure must be raised again. It backstops the
// broker's partial-pump re-raise; neither mechanism alone covers both
// the "unplug never completes" and the "unplug completed but freed too
// little" cases (§6.2.2).
const ReclaimDrainTimeout = 5 * sim.Second

// Model holds every tunable cost constant. Experiments copy and tweak a
// Model for ablations; the zero value is unusable — start from Default.
type Model struct {
	// --- Guest page-level costs ---

	// GuestFaultPerPage is the guest-side cost of handling one minor
	// page fault (allocate + map one 4 KiB page), excluding zeroing.
	GuestFaultPerPage sim.Duration
	// ZeroPerPage is the cost of zeroing one 4 KiB page
	// (CONFIG_INIT_ON_ALLOC_DEFAULT_ON hardening).
	ZeroPerPage sim.Duration
	// MigratePerPage is the cost of migrating one occupied 4 KiB page
	// during offlining: target allocation, copy, rmap and PTE rewrite,
	// TLB shootdown.
	MigratePerPage sim.Duration

	// --- Guest block-level hot(un)plug costs ---

	// OnlineMetaPerBlock is the guest cost of hot-adding and onlining
	// one 128 MiB block (memmap init, zone/freelist insertion).
	OnlineMetaPerBlock sim.Duration
	// OfflineMetaPerBlockVanilla is the guest metadata cost of
	// offlining and hot-removing one block on the vanilla path
	// (per-page isolation scans, memmap teardown).
	OfflineMetaPerBlockVanilla sim.Duration
	// OfflineMetaPerBlockSqueezy is the same cost on the Squeezy path,
	// where the partition is known empty and per-page scans vanish.
	OfflineMetaPerBlockSqueezy sim.Duration

	// --- Host / VMM costs ---

	// VMExitPerBlock is the host-side cost of servicing one virtio-mem
	// (un)plug response for a 128 MiB block, including the
	// madvise(MADV_DONTNEED) release.
	VMExitPerBlock sim.Duration
	// VMExitPerPage is the host-side cost of one balloon-inflation VM
	// exit (ballooning reports reclaimed memory a page at a time).
	VMExitPerPage sim.Duration
	// BalloonGuestPerPage is the guest balloon driver's cost to reserve
	// and report one page.
	BalloonGuestPerPage sim.Duration
	// PlugHostFixed is the fixed host-side cost of one plug request
	// (device negotiation, VMM bookkeeping).
	PlugHostFixed sim.Duration
	// NestedFaultPerPage is the cost of the first guest touch of a
	// freshly plugged (host-unbacked) 4 KiB page: EPT violation exit,
	// host allocation, EPT map.
	NestedFaultPerPage sim.Duration

	// --- VM lifecycle ---

	// MicroVMBoot is the 1:1-model cost of booting a fresh microVM
	// (VMM setup, guest kernel boot, in-guest agent start).
	MicroVMBoot sim.Duration

	// --- Policy knobs (ablations) ---

	// ZeroOnUnplug controls whether the vanilla offline path zeroes the
	// pages it isolates and the migration targets it allocates, as a
	// hardened kernel does. Squeezy's allocator is hot(un)plug-aware
	// and always skips this. Figure 6 disables it for vanilla too.
	ZeroOnUnplug bool
	// BatchUnplugExits merges the per-block VM exits of one unplug
	// request into a single exit (the batching optimization §8 leaves
	// as future work; implemented here as an ablation).
	BatchUnplugExits bool
}

// Default returns the calibrated model.
func Default() *Model {
	return &Model{
		GuestFaultPerPage: 600 * sim.Nanosecond,
		ZeroPerPage:       1100 * sim.Nanosecond,
		MigratePerPage:    4 * sim.Microsecond,

		OnlineMetaPerBlock:         1700 * sim.Microsecond,
		OfflineMetaPerBlockVanilla: 19 * sim.Millisecond,
		OfflineMetaPerBlockSqueezy: 4900 * sim.Microsecond,

		VMExitPerBlock:      3 * sim.Millisecond,
		VMExitPerPage:       8900 * sim.Nanosecond,
		BalloonGuestPerPage: 2100 * sim.Nanosecond,
		PlugHostFixed:       25 * sim.Millisecond,
		NestedFaultPerPage:  1500 * sim.Nanosecond,

		MicroVMBoot: 700 * sim.Millisecond,

		ZeroOnUnplug:     true,
		BatchUnplugExits: false,
	}
}

// Clone returns a copy of the model for experiment-local tweaking.
func (m *Model) Clone() *Model {
	c := *m
	return &c
}
