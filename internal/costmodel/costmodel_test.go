package costmodel

import (
	"testing"

	"squeezy/internal/sim"
)

func TestDefaultAnchors(t *testing.T) {
	m := Default()
	// Balloon per-page total ≈ 11 µs, exits ≈ 81% of it (§6.1.1).
	perPage := m.VMExitPerPage + m.BalloonGuestPerPage
	if perPage < 9*sim.Microsecond || perPage > 13*sim.Microsecond {
		t.Fatalf("balloon per-page = %v", perPage)
	}
	frac := float64(m.VMExitPerPage) / float64(perPage)
	if frac < 0.75 || frac > 0.87 {
		t.Fatalf("balloon exit fraction = %.2f, want ~0.81", frac)
	}
	// Squeezy per-block ≈ 7.9 ms -> 2 GiB (16 blocks) ≈ 127 ms.
	perBlock := m.VMExitPerBlock + m.OfflineMetaPerBlockSqueezy
	total2GiB := 16 * perBlock
	if total2GiB < 110*sim.Millisecond || total2GiB > 145*sim.Millisecond {
		t.Fatalf("squeezy 2GiB = %v, want ~127ms", total2GiB)
	}
	// §8: VM exit per 128 MiB chunk ≈ 3 ms.
	if m.VMExitPerBlock != 3*sim.Millisecond {
		t.Fatalf("VMExitPerBlock = %v", m.VMExitPerBlock)
	}
	if !m.ZeroOnUnplug {
		t.Fatal("hardened kernels zero on alloc by default")
	}
	if m.BatchUnplugExits {
		t.Fatal("batching is a future-work ablation, off by default")
	}
}

func TestClone(t *testing.T) {
	m := Default()
	c := m.Clone()
	c.ZeroOnUnplug = false
	c.MigratePerPage = 1
	if !m.ZeroOnUnplug || m.MigratePerPage == 1 {
		t.Fatal("Clone aliases the original")
	}
}
