// Package costmodel centralizes every latency constant of the
// simulation, calibrated against the measurements the paper reports on
// its dual-socket Xeon E5-2630 testbed (§5, §6).
//
// Calibration anchors (see EXPERIMENTS.md for the paper-vs-measured
// table):
//
//   - vanilla virtio-mem needs ≈617 ms to reclaim 512 MiB and ≈2.5 s for
//     2 GiB from a loaded guest; migrations are ≈61.5% of that and
//     zeroing ≈24% (§6.1.1, Figure 5),
//   - ballooning is ≈2.34x slower than virtio-mem and ≈81% of its time
//     is VM-exit handling (Figure 5),
//   - Squeezy reclaims 2 GiB in ≈127 ms, ≈3 ms of VM-exit cost per
//     128 MiB chunk (§6.1.1, §8),
//   - plugging memory for one instance costs 35–45 ms (§6.2.1),
//   - cold starts on a dynamically resized VM are 3–35% slower than on a
//     static VM because freshly plugged memory must be nested-faulted in
//     (§6.2.1),
//   - booting a 1:1 microVM adds ≈20% to cold-start latency (§6.3).
package costmodel
