// Package balloon models the virtio-balloon driver, the state-of-
// practice VM memory reclamation interface (Waldspurger, OSDI'02;
// Schopp et al., OLS'06).
//
// Inflation reserves free guest pages and reports them to the
// hypervisor one page at a time; every report is a VM exit, which is
// why ballooning's reclamation cost explodes with size (≈81% of its
// latency is exit handling, Figure 5) and why it is ≈2.34x slower than
// virtio-mem. The guest keeps the reserved pages allocated (they are
// simply unusable), so ballooning does not shrink the guest's memory
// map — deflation just frees them back.
package balloon
