package balloon

import (
	"squeezy/internal/guestos"
	"squeezy/internal/obs"
	"squeezy/internal/sim"
	"squeezy/internal/stats"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

// CPU accounting classes.
const (
	GuestClass = "balloon"
	HostClass  = "balloon-vmm"
)

// InflateResult reports one inflation request.
type InflateResult struct {
	RequestedBytes int64
	ReclaimedBytes int64 // guest pages reserved and reported
	ReleasedPages  int64 // host frames actually freed (populated ones)
	Breakdown      *stats.Breakdown
	Latency        sim.Duration
}

// FaultHooks degrades the balloon for fault-injection windows: a
// non-zero ReclaimStall turns inflation slow (the completion is
// delayed while the device stays busy), and a ReclaimFraction below 1
// caps how much of a request is attempted.
type FaultHooks interface {
	ReclaimStall() sim.Duration
	ReclaimFraction() float64
}

// Driver is the guest balloon driver of one VM.
type Driver struct {
	K *guestos.Kernel

	// Obs, when non-nil, records a span per inflation and an instant per
	// deflation; recording never alters the operation.
	Obs *obs.Recorder

	// Faults, when non-nil, injects slow and partial inflations.
	Faults FaultHooks

	proc    *guestos.Process // owns the reserved pages
	busy    bool
	pending []func()
}

// New creates a balloon driver for the kernel.
func New(k *guestos.Kernel) *Driver {
	return &Driver{K: k, proc: k.Spawn("balloon")}
}

// HeldPages returns the pages currently held by the balloon.
func (d *Driver) HeldPages() int64 { return d.proc.AnonPages() }

func (d *Driver) enqueue(fn func()) {
	if d.busy {
		d.pending = append(d.pending, fn)
		return
	}
	d.busy = true
	fn()
}

func (d *Driver) finish() {
	if len(d.pending) > 0 {
		next := d.pending[0]
		d.pending = d.pending[1:]
		next()
		return
	}
	d.busy = false
}

// Inflate reserves bytes of free guest memory and releases the backing
// host frames. When free guest memory runs short the balloon reclaims
// less than asked (it cannot migrate). onDone fires when the last page
// has been reported and released.
func (d *Driver) Inflate(bytes int64, onDone func(InflateResult)) {
	d.enqueue(func() {
		vm := d.K.VM
		want := units.BytesToPages(bytes)
		if d.Faults != nil {
			if f := d.Faults.ReclaimFraction(); f < 1 {
				want = int64(float64(want) * f)
			}
		}
		chunks, got := d.K.AllocReserved(d.proc, want)

		// The host releases whichever of the reserved pages were
		// populated (madvise(MADV_DONTNEED) per reported page).
		var released int64
		for _, c := range chunks {
			released += d.K.ReleaseChunkFrames(c)
		}

		steps := []vmm.Step{
			{Pool: vm.GuestReclaimPool(), Work: sim.Duration(got) * vm.Cost.BalloonGuestPerPage, Class: GuestClass, Label: vmm.StepRest, Weight: vmm.KthreadWeight},
			{Pool: vm.HostThreads, Work: sim.Duration(got) * vm.Cost.VMExitPerPage, Class: HostClass, Label: vmm.StepVMExits},
		}
		vm.CountExit("balloon-inflate", got)
		start := vm.Sched.Now()
		vmm.RunChain(vm.Sched, steps, func(bd *stats.Breakdown, total sim.Duration) {
			deliver := func() {
				res := InflateResult{
					RequestedBytes: bytes,
					ReclaimedBytes: units.PagesToBytes(got),
					ReleasedPages:  released,
					Breakdown:      bd,
					Latency:        total,
				}
				if d.Obs != nil {
					d.Obs.Span("balloon/inflate", obs.CatMemory, start,
						obs.I("requested_bytes", res.RequestedBytes),
						obs.I("reclaimed_bytes", res.ReclaimedBytes),
						obs.I("released_pages", res.ReleasedPages))
				}
				d.finish()
				onDone(res)
			}
			if d.Faults != nil {
				// Slow inflation: the completion stalls while the device
				// stays busy, so queued commands wait behind it.
				if stall := d.Faults.ReclaimStall(); stall > 0 {
					vm.Sched.After(stall, deliver)
					return
				}
			}
			deliver()
		})
	})
}

// Deflate returns bytes of ballooned memory to the guest. The freed
// pages are unbacked in the host until next touch.
func (d *Driver) Deflate(bytes int64) int64 {
	freed := d.K.FreeAnon(d.proc, bytes)
	if d.Obs != nil {
		d.Obs.Instant("balloon/deflate", obs.CatMemory, obs.I("freed_bytes", freed))
	}
	return freed
}
