package balloon

import (
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func newRig(t *testing.T, movableBlocks int) (*Driver, *guestos.Kernel, *sim.Scheduler) {
	t.Helper()
	s := sim.NewScheduler()
	vm := vmm.New("vm0", s, costmodel.Default(), hostmem.New(0), 4)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes:           units.BlockSize,
		MovableBytes:        int64(movableBlocks) * units.BlockSize,
		KernelResidentBytes: 8 * units.MiB,
	})
	k.OnlineAllMovable()
	return New(k), k, s
}

func TestInflateReservesAndReleases(t *testing.T) {
	d, k, s := newRig(t, 4)
	p := k.Spawn("f")
	k.TouchAnon(p, 128*units.MiB, guestos.HugeOrder)
	k.Exit(p) // 128 MiB guest-free but host-populated
	popBefore := k.VM.PopulatedPages()
	var res InflateResult
	d.Inflate(128*units.MiB, func(r InflateResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 128*units.MiB {
		t.Fatalf("reclaimed = %s", units.HumanBytes(res.ReclaimedBytes))
	}
	if d.HeldPages() != units.BytesToPages(128*units.MiB) {
		t.Fatalf("held = %d", d.HeldPages())
	}
	// Host frames of the previously touched pages are released.
	if k.VM.PopulatedPages() >= popBefore {
		t.Fatal("no host frames released")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInflateLatencyIsExitDominated(t *testing.T) {
	d, _, s := newRig(t, 8)
	var res InflateResult
	d.Inflate(512*units.MiB, func(r InflateResult) { res = r })
	s.Run()
	// §6.1.1: 81% of ballooning latency is VM-exit handling.
	if f := res.Breakdown.Fraction(vmm.StepVMExits); f < 0.7 {
		t.Fatalf("vmexit fraction = %.2f, want >= 0.7", f)
	}
	// Calibration anchor: 512 MiB ≈ 1.4s (2.34x slower than the
	// virtio-mem 617ms anchor).
	ms := res.Latency.Milliseconds()
	if ms < 900 || ms > 2200 {
		t.Fatalf("inflate latency %.0fms outside calibration band", ms)
	}
}

func TestInflatePartialWhenNoFreeMemory(t *testing.T) {
	d, k, s := newRig(t, 2)
	hog := k.Spawn("hog")
	if _, ok := k.TouchAnon(hog, 2*128*units.MiB, guestos.HugeOrder); !ok {
		t.Fatal("fill failed")
	}
	var res InflateResult
	d.Inflate(128*units.MiB, func(r InflateResult) { res = r })
	s.Run()
	if res.ReclaimedBytes != 0 {
		t.Fatalf("balloon reclaimed %d from a full guest", res.ReclaimedBytes)
	}
}

func TestDeflateReturnsMemory(t *testing.T) {
	d, k, s := newRig(t, 4)
	d.Inflate(256*units.MiB, func(InflateResult) {})
	s.Run()
	freed := d.Deflate(256 * units.MiB)
	if freed != units.BytesToPages(256*units.MiB) {
		t.Fatalf("deflated %d pages", freed)
	}
	if d.HeldPages() != 0 {
		t.Fatalf("held = %d after deflate", d.HeldPages())
	}
	// The guest can use the memory again.
	p := k.Spawn("f")
	if _, ok := k.TouchAnon(p, 256*units.MiB, guestos.HugeOrder); !ok {
		t.Fatal("allocation after deflate failed")
	}
}

func TestInflateCountsExitsPerPage(t *testing.T) {
	d, k, s := newRig(t, 2)
	d.Inflate(16*units.MiB, func(InflateResult) {})
	s.Run()
	if got := k.VM.Exits("balloon-inflate"); got != units.BytesToPages(16*units.MiB) {
		t.Fatalf("exits = %d, want one per page", got)
	}
}

func TestSerializedInflations(t *testing.T) {
	d, _, s := newRig(t, 4)
	var done []int
	d.Inflate(64*units.MiB, func(InflateResult) { done = append(done, 1) })
	d.Inflate(64*units.MiB, func(InflateResult) { done = append(done, 2) })
	s.Run()
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("order = %v", done)
	}
}
