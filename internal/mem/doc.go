// Package mem models guest physical memory the way the Linux memory
// hotplug core sees it: a span of page frames divided into 128 MiB
// memory blocks, grouped into zones, each zone fronted by a buddy
// allocator.
//
// A Zone is the unit Squeezy builds on: vanilla Linux has ZONE_NORMAL
// (kernel, non-movable) and ZONE_MOVABLE (user pages, hot-unpluggable);
// Squeezy adds one zone per partition. Blocks within a zone are onlined
// (their pages released to the buddy allocator) and offlined (isolated
// and withdrawn) independently, exactly like memory_hotplug.c.
//
// Zones reset in place and recycle through a Pool keyed by geometry,
// so pooled simulation worlds reuse one arena set — including the
// buddy ord spans, whose sparse targeted zeroing makes resetting a
// 64 GiB span cheap — across consecutive runs.
package mem
