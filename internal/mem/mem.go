package mem

import (
	"fmt"

	"squeezy/internal/buddy"
	"squeezy/internal/units"
)

// PFN is a guest page frame number (index of a 4 KiB page in guest
// physical address space).
type PFN = int64

// ZoneKind classifies a zone's role in the memory manager.
type ZoneKind int

// Zone kinds.
const (
	// ZoneNormal holds kernel and other non-movable allocations; its
	// blocks can never be offlined.
	ZoneNormal ZoneKind = iota
	// ZoneMovable holds migratable allocations (user anonymous memory,
	// page cache); hotplugged memory lands here on vanilla Linux.
	ZoneMovable
	// ZoneSqueezyPrivate is a Squeezy partition backing the anonymous
	// memory of exactly one function instance.
	ZoneSqueezyPrivate
	// ZoneSqueezyShared is the per-VM shared Squeezy partition backing
	// file mappings (runtime and language dependencies).
	ZoneSqueezyShared
)

// String returns the kernel-flavoured zone name.
func (k ZoneKind) String() string {
	switch k {
	case ZoneNormal:
		return "Normal"
	case ZoneMovable:
		return "Movable"
	case ZoneSqueezyPrivate:
		return "SqueezyPrivate"
	case ZoneSqueezyShared:
		return "SqueezyShared"
	default:
		return fmt.Sprintf("ZoneKind(%d)", int(k))
	}
}

// Zone is a contiguous span of guest physical memory managed as a unit.
// The span is fixed at creation (the zone struct exists even when the
// partition is empty, as in Squeezy's boot-time zone creation); memory
// becomes usable block by block via OnlineBlock.
type Zone struct {
	Name string
	Kind ZoneKind

	start  PFN
	npages int64

	alloc       *buddy.Allocator
	blockOnline []bool
	onlinePages int64
}

// NewZone creates a zone spanning npages pages at start. Both must be
// memory-block aligned (128 MiB) — the hotplug core refuses anything
// else, and so do we. All blocks start offline.
func NewZone(name string, kind ZoneKind, start PFN, npages int64) *Zone {
	if npages <= 0 {
		panic(fmt.Sprintf("mem: zone %q has non-positive span %d", name, npages))
	}
	if start%units.PagesPerBlock != 0 || npages%units.PagesPerBlock != 0 {
		panic(fmt.Sprintf("mem: zone %q span [%d,+%d) not block-aligned", name, start, npages))
	}
	alloc := buddy.New(start, npages)
	// Per-block free counters make the occupancy questions the offline
	// paths ask (FreeInBlock, OccupiedInBlock, FinishOffline's emptiness
	// check) O(1) instead of O(block span).
	alloc.TrackRegions(units.PagesPerBlock)
	return &Zone{
		Name:        name,
		Kind:        kind,
		start:       start,
		npages:      npages,
		alloc:       alloc,
		blockOnline: make([]bool, npages/units.PagesPerBlock),
	}
}

// Reset re-dimensions the zone in place: a new identity and span over
// the same backing storage (buddy ord span, region counters, block
// flags), growing only when the new span is larger. All blocks start
// offline again, exactly as after NewZone — the reset invariant the
// world-pooling layer depends on.
func (z *Zone) Reset(name string, kind ZoneKind, start PFN, npages int64) {
	if npages <= 0 {
		panic(fmt.Sprintf("mem: zone %q has non-positive span %d", name, npages))
	}
	if start%units.PagesPerBlock != 0 || npages%units.PagesPerBlock != 0 {
		panic(fmt.Sprintf("mem: zone %q span [%d,+%d) not block-aligned", name, start, npages))
	}
	z.Name = name
	z.Kind = kind
	z.start = start
	z.npages = npages
	z.alloc.Reset(start, npages)
	blocks := int(npages / units.PagesPerBlock)
	if cap(z.blockOnline) >= blocks {
		z.blockOnline = z.blockOnline[:blocks]
		clear(z.blockOnline)
	} else {
		z.blockOnline = make([]bool, blocks)
	}
	z.onlinePages = 0
}

// Pool recycles Zone objects — and through them the buddy allocator's
// ord spans and region counters, the dominant allocations of a large
// guest kernel — across simulation runs. Retired zones are handed back
// by Zone(), Reset to the requested identity. A nil *Pool is valid and
// always constructs fresh zones, so pooling stays opt-in.
//
// Pool is not safe for concurrent use: each worker owns one.
type Pool struct {
	zones []*Zone
}

// NewPool returns an empty zone pool.
func NewPool() *Pool { return &Pool{} }

// Zone returns a zone with the given identity: a retired zone reset in
// place when one is available, else a fresh one.
func (p *Pool) Zone(name string, kind ZoneKind, start PFN, npages int64) *Zone {
	if p == nil || len(p.zones) == 0 {
		return NewZone(name, kind, start, npages)
	}
	z := p.zones[len(p.zones)-1]
	p.zones = p.zones[:len(p.zones)-1]
	z.Reset(name, kind, start, npages)
	return z
}

// Retire hands a dead zone's storage back to the pool. The caller must
// not use the zone afterwards.
func (p *Pool) Retire(z *Zone) {
	if p == nil || z == nil {
		return
	}
	p.zones = append(p.zones, z)
}

// Start returns the zone's first page frame number.
func (z *Zone) Start() PFN { return z.start }

// Pages returns the zone's span in pages.
func (z *Zone) Pages() int64 { return z.npages }

// Bytes returns the zone's span in bytes.
func (z *Zone) Bytes() int64 { return units.PagesToBytes(z.npages) }

// Blocks returns the number of memory blocks the zone spans.
func (z *Zone) Blocks() int { return len(z.blockOnline) }

// Contains reports whether pfn lies inside the zone's span.
func (z *Zone) Contains(pfn PFN) bool { return pfn >= z.start && pfn < z.start+z.npages }

// BlockRange returns the page range [start, start+count) of block i.
func (z *Zone) BlockRange(i int) (start PFN, count int64) {
	if i < 0 || i >= len(z.blockOnline) {
		panic(fmt.Sprintf("mem: zone %q has no block %d", z.Name, i))
	}
	return z.start + int64(i)*units.PagesPerBlock, units.PagesPerBlock
}

// BlockOf returns the index of the block containing pfn.
func (z *Zone) BlockOf(pfn PFN) int {
	if !z.Contains(pfn) {
		panic(fmt.Sprintf("mem: pfn %d outside zone %q", pfn, z.Name))
	}
	return int((pfn - z.start) / units.PagesPerBlock)
}

// BlockIsOnline reports whether block i is online.
func (z *Zone) BlockIsOnline(i int) bool { return z.blockOnline[i] }

// OnlineBlock adds block i's pages to the allocator (the "online" step
// of hot-add). Onlining an online block panics.
func (z *Zone) OnlineBlock(i int) {
	if z.blockOnline[i] {
		panic(fmt.Sprintf("mem: zone %q block %d already online", z.Name, i))
	}
	start, count := z.BlockRange(i)
	z.alloc.FreeRange(start, count)
	z.blockOnline[i] = true
	z.onlinePages += count
}

// IsolateBlock withdraws block i's free pages from the allocator (the
// MIGRATE_ISOLATE phase of offlining) and returns how many pages remain
// occupied in the block. The caller must migrate those before calling
// FinishOffline, or return the isolated pages with UndoIsolate.
func (z *Zone) IsolateBlock(i int) (occupied int64) {
	if !z.blockOnline[i] {
		panic(fmt.Sprintf("mem: zone %q block %d not online", z.Name, i))
	}
	start, count := z.BlockRange(i)
	isolated := z.alloc.IsolateRange(start, count)
	return count - isolated
}

// UndoIsolate aborts an offline attempt on block i, returning its
// isolated free pages to the allocator. occupiedThen must be the value
// IsolateBlock returned.
func (z *Zone) UndoIsolate(i int, occupiedThen int64) {
	start, count := z.BlockRange(i)
	// Free pages were isolated; occupied pages never left. Re-online
	// only the isolated portion. We don't know which sub-ranges were
	// free, so this helper is only valid when the whole block was free.
	if occupiedThen != 0 {
		panic("mem: UndoIsolate on partially occupied block is not supported; migrate instead")
	}
	z.alloc.FreeRange(start, count)
}

// FinishOffline marks block i offline after all its pages have been
// isolated/migrated away. The block must hold no allocated pages; the
// caller asserts that via migration.
func (z *Zone) FinishOffline(i int) {
	if !z.blockOnline[i] {
		panic(fmt.Sprintf("mem: zone %q block %d not online", z.Name, i))
	}
	start, count := z.BlockRange(i)
	if got := z.alloc.FreeInRange(start, count); got != 0 {
		panic(fmt.Sprintf("mem: offlining zone %q block %d with %d pages still in allocator", z.Name, i, got))
	}
	z.blockOnline[i] = false
	z.onlinePages -= count
}

// AllocPage allocates a 2^order-page chunk from the zone's online
// memory.
func (z *Zone) AllocPage(order int) (PFN, bool) { return z.alloc.Alloc(order) }

// FreePage returns a chunk previously handed out by AllocPage.
func (z *Zone) FreePage(pfn PFN, order int) { z.alloc.Free(pfn, order) }

// FreePageRange returns an arbitrary page range to the allocator,
// decomposed into aligned chunks (used when aborting an offline).
func (z *Zone) FreePageRange(pfn PFN, count int64) { z.alloc.FreeRange(pfn, count) }

// NrOnline returns the number of online pages.
func (z *Zone) NrOnline() int64 { return z.onlinePages }

// NrFree returns the number of free pages.
func (z *Zone) NrFree() int64 { return z.alloc.NrFree() }

// NrAllocated returns the number of allocated (online, not free) pages.
func (z *Zone) NrAllocated() int64 { return z.onlinePages - z.alloc.NrFree() }

// FreeInBlock returns the number of free pages in block i.
func (z *Zone) FreeInBlock(i int) int64 {
	start, count := z.BlockRange(i)
	return z.alloc.FreeInRange(start, count)
}

// OccupiedInBlock returns the number of allocated pages in block i (0
// for offline blocks).
func (z *Zone) OccupiedInBlock(i int) int64 {
	if !z.blockOnline[i] {
		return 0
	}
	_, count := z.BlockRange(i)
	return count - z.FreeInBlock(i)
}

// OnlineBlocks returns the indexes of online blocks, ascending.
func (z *Zone) OnlineBlocks() []int {
	var out []int
	for i, on := range z.blockOnline {
		if on {
			out = append(out, i)
		}
	}
	return out
}

// FreeChunkAt reports whether pfn heads a free chunk, and its order.
func (z *Zone) FreeChunkAt(pfn PFN) (order int, ok bool) { return z.alloc.FreeChunkAt(pfn) }

// CheckInvariants validates zone-level accounting; O(span), for tests.
func (z *Zone) CheckInvariants() error {
	if err := z.alloc.CheckInvariants(); err != nil {
		return fmt.Errorf("zone %q: %w", z.Name, err)
	}
	var online int64
	for i, on := range z.blockOnline {
		if !on {
			start, count := z.BlockRange(i)
			if got := z.alloc.FreeInRange(start, count); got != 0 {
				return fmt.Errorf("zone %q: offline block %d has %d free pages", z.Name, i, got)
			}
			continue
		}
		online += units.PagesPerBlock
	}
	if online != z.onlinePages {
		return fmt.Errorf("zone %q: online count %d != %d", z.Name, z.onlinePages, online)
	}
	if z.alloc.NrFree() > z.onlinePages {
		return fmt.Errorf("zone %q: free %d exceeds online %d", z.Name, z.alloc.NrFree(), z.onlinePages)
	}
	return nil
}
