package mem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"squeezy/internal/units"
)

func newOnlineZone(t *testing.T, blocks int) *Zone {
	t.Helper()
	z := NewZone("test", ZoneMovable, 0, int64(blocks)*units.PagesPerBlock)
	for i := 0; i < blocks; i++ {
		z.OnlineBlock(i)
	}
	return z
}

func TestZoneGeometry(t *testing.T) {
	z := NewZone("movable", ZoneMovable, units.PagesPerBlock, 4*units.PagesPerBlock)
	if z.Blocks() != 4 {
		t.Fatalf("Blocks = %d", z.Blocks())
	}
	if z.Bytes() != 4*units.BlockSize {
		t.Fatalf("Bytes = %d", z.Bytes())
	}
	start, count := z.BlockRange(2)
	if start != 3*units.PagesPerBlock || count != units.PagesPerBlock {
		t.Fatalf("BlockRange(2) = %d,%d", start, count)
	}
	if z.BlockOf(start) != 2 {
		t.Fatalf("BlockOf = %d", z.BlockOf(start))
	}
	if !z.Contains(start) || z.Contains(0) {
		t.Fatal("Contains misbehaves")
	}
}

func TestUnalignedZonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZone("bad", ZoneMovable, 1, units.PagesPerBlock)
}

func TestOnlineOfflineAccounting(t *testing.T) {
	z := NewZone("m", ZoneMovable, 0, 2*units.PagesPerBlock)
	if z.NrOnline() != 0 || z.NrFree() != 0 {
		t.Fatal("fresh zone should be empty")
	}
	z.OnlineBlock(0)
	if z.NrOnline() != units.PagesPerBlock || z.NrFree() != units.PagesPerBlock {
		t.Fatalf("after online: online=%d free=%d", z.NrOnline(), z.NrFree())
	}
	if _, ok := z.AllocPage(0); !ok {
		t.Fatal("alloc from online block failed")
	}
	if z.NrAllocated() != 1 {
		t.Fatalf("NrAllocated = %d", z.NrAllocated())
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineEmptyBlock(t *testing.T) {
	z := newOnlineZone(t, 2)
	occupied := z.IsolateBlock(1)
	if occupied != 0 {
		t.Fatalf("occupied = %d in empty block", occupied)
	}
	z.FinishOffline(1)
	if z.BlockIsOnline(1) {
		t.Fatal("block still online")
	}
	if z.NrOnline() != units.PagesPerBlock {
		t.Fatalf("NrOnline = %d", z.NrOnline())
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIsolateReportsOccupied(t *testing.T) {
	z := newOnlineZone(t, 1)
	// Allocate 10 pages: they land in block 0.
	for i := 0; i < 10; i++ {
		if _, ok := z.AllocPage(0); !ok {
			t.Fatal("alloc failed")
		}
	}
	occupied := z.IsolateBlock(0)
	if occupied != 10 {
		t.Fatalf("occupied = %d, want 10", occupied)
	}
}

func TestFinishOfflineWithFreePagesPanics(t *testing.T) {
	z := newOnlineZone(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: block has free pages in allocator")
		}
	}()
	z.FinishOffline(0)
}

func TestUndoIsolate(t *testing.T) {
	z := newOnlineZone(t, 1)
	occ := z.IsolateBlock(0)
	if occ != 0 {
		t.Fatalf("occ = %d", occ)
	}
	if z.NrFree() != 0 {
		t.Fatalf("NrFree after isolate = %d", z.NrFree())
	}
	z.UndoIsolate(0, 0)
	if z.NrFree() != units.PagesPerBlock {
		t.Fatalf("NrFree after undo = %d", z.NrFree())
	}
	if err := z.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleOnlinePanics(t *testing.T) {
	z := newOnlineZone(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	z.OnlineBlock(0)
}

func TestAllocNeverReturnsOfflinePages(t *testing.T) {
	z := NewZone("m", ZoneMovable, 0, 4*units.PagesPerBlock)
	z.OnlineBlock(2) // only block 2 online
	start, count := z.BlockRange(2)
	for i := 0; i < 100; i++ {
		pfn, ok := z.AllocPage(0)
		if !ok {
			t.Fatal("alloc failed")
		}
		if pfn < start || pfn >= start+count {
			t.Fatalf("alloc returned pfn %d outside online block", pfn)
		}
	}
}

func TestOccupiedInBlock(t *testing.T) {
	z := newOnlineZone(t, 2)
	var pfns []PFN
	for i := 0; i < 7; i++ {
		p, _ := z.AllocPage(0)
		pfns = append(pfns, p)
	}
	total := z.OccupiedInBlock(0) + z.OccupiedInBlock(1)
	if total != 7 {
		t.Fatalf("occupied total = %d", total)
	}
	for _, p := range pfns {
		z.FreePage(p, 0)
	}
	if z.OccupiedInBlock(0)+z.OccupiedInBlock(1) != 0 {
		t.Fatal("occupancy not zero after frees")
	}
}

func TestOnlineBlocksList(t *testing.T) {
	z := NewZone("m", ZoneMovable, 0, 4*units.PagesPerBlock)
	z.OnlineBlock(3)
	z.OnlineBlock(1)
	got := z.OnlineBlocks()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("OnlineBlocks = %v", got)
	}
}

func TestZoneKindString(t *testing.T) {
	for k, want := range map[ZoneKind]string{
		ZoneNormal: "Normal", ZoneMovable: "Movable",
		ZoneSqueezyPrivate: "SqueezyPrivate", ZoneSqueezyShared: "SqueezyShared",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

// Property: random alloc/free churn keeps zone accounting exact and a
// full drain allows offlining every block.
func TestZoneChurnProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		z := NewZone("m", ZoneMovable, 0, 2*units.PagesPerBlock)
		z.OnlineBlock(0)
		z.OnlineBlock(1)
		type alloc struct {
			pfn   PFN
			order int
		}
		var live []alloc
		for step := 0; step < 800; step++ {
			if len(live) > 0 && rng.IntN(5) < 2 {
				k := rng.IntN(len(live))
				z.FreePage(live[k].pfn, live[k].order)
				live = append(live[:k], live[k+1:]...)
			} else {
				order := rng.IntN(10)
				if pfn, ok := z.AllocPage(order); ok {
					live = append(live, alloc{pfn, order})
				}
			}
			var liveTotal int64
			for _, l := range live {
				liveTotal += 1 << l.order
			}
			if z.NrAllocated() != liveTotal {
				return false
			}
		}
		for _, l := range live {
			z.FreePage(l.pfn, l.order)
		}
		for i := 0; i < z.Blocks(); i++ {
			if occ := z.IsolateBlock(i); occ != 0 {
				return false
			}
			z.FinishOffline(i)
		}
		return z.NrOnline() == 0 && z.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestZoneResetEquivalence runs the same allocation program on a fresh
// zone and on a pooled zone reset from a different identity, and
// requires identical chunk placement.
func TestZoneResetEquivalence(t *testing.T) {
	program := func(z *Zone) []PFN {
		for i := 0; i < z.Blocks(); i++ {
			z.OnlineBlock(i)
		}
		var log []PFN
		rng := rand.New(rand.NewPCG(3, 9))
		for i := 0; i < 500; i++ {
			if pfn, ok := z.AllocPage(rng.IntN(10)); ok {
				log = append(log, pfn)
			} else {
				log = append(log, -1)
			}
		}
		return log
	}
	fresh := NewZone("a", ZoneMovable, units.PagesPerBlock, 4*units.PagesPerBlock)
	want := program(fresh)

	pool := NewPool()
	dirty := pool.Zone("b", ZoneSqueezyPrivate, 0, 8*units.PagesPerBlock)
	for i := 0; i < dirty.Blocks(); i++ {
		dirty.OnlineBlock(i)
	}
	for i := 0; i < 100; i++ {
		dirty.AllocPage(i % 9)
	}
	pool.Retire(dirty)
	reused := pool.Zone("a", ZoneMovable, units.PagesPerBlock, 4*units.PagesPerBlock)
	if reused != dirty {
		t.Fatal("pool did not hand back the retired zone")
	}
	got := program(reused)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocation %d: reset zone %d, fresh %d", i, got[i], want[i])
		}
	}
	if err := reused.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestNilPoolConstructsFresh checks the opt-out path.
func TestNilPoolConstructsFresh(t *testing.T) {
	var p *Pool
	z := p.Zone("x", ZoneNormal, 0, units.PagesPerBlock)
	if z == nil || z.Pages() != units.PagesPerBlock {
		t.Fatal("nil pool did not construct a fresh zone")
	}
	p.Retire(z) // must not panic
}
