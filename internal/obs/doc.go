// Package obs is the simulator's zero-cost-when-disabled observability
// layer: typed spans, instant events, gauges, and a counter registry,
// all keyed on simulated time.
//
// The design mirrors the determinism contract of the epoch engine
// (internal/cluster): recording only ever observes — a Recorder reads
// a clock and appends to recorder-local storage; it never schedules
// events, never draws randomness, and never feeds back into any
// decision. A Trace holds one recorder per host (host-private, written
// only by whichever shard worker owns that host between epoch
// boundaries, exactly like cluster.NodeMetrics) plus one fleet-level
// recorder written only by the serial dispatcher at boundaries.
// Export concatenates the fleet track and then the host tracks in
// host-ID order, so the trace is byte-identical at every shard and
// worker count — the same merge discipline as stats.Sample.
//
// Every recording method is safe on a nil receiver, and a nil Trace
// hands out nil Recorders, so instrumentation call sites stay
// unconditional at the API level; hot paths additionally guard with a
// nil check to skip variadic-argument construction entirely, which is
// what keeps the disabled path free.
//
// perfetto.go renders traces in the Chrome trace-event JSON format
// (load at https://ui.perfetto.dev): one process per cell, one track
// per host plus a fleet/dispatcher track, and an optional wall-clock
// process carrying the experiment runner's own cell/shard spans.
package obs
