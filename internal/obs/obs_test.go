package obs

import (
	"reflect"
	"sync"
	"testing"

	"squeezy/internal/sim"
)

// fakeClock is a settable Clock for recorder tests.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

// TestNilSafety exercises every method on nil receivers: the disabled
// path must be a silent no-op so instrumented layers can wire recorders
// unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports Enabled")
	}
	r.Span("s", CatInvoke, 0)
	r.SpanAt("s", CatInvoke, 0, sim.Millisecond)
	r.Instant("i", CatMemory, I("k", 1))
	r.Gauge("g", CatFleet, 1.5)
	r.Count("c", 2)
	if r.Events() != nil || r.Counters() != nil {
		t.Error("nil recorder returned non-nil events or counters")
	}

	var tr *Trace
	if tr.FleetTrack(nil) != nil || tr.HostTrack(3, nil) != nil {
		t.Error("nil trace returned a live recorder")
	}
	if tr.Fleet() != nil || tr.Hosts() != nil {
		t.Error("nil trace returned tracks")
	}
	if !tr.Empty() {
		t.Error("nil trace not Empty")
	}
	if tr.Counters() != nil {
		t.Error("nil trace returned counters")
	}

	var s *Sink
	s.Add(&Trace{})
	s.Add(nil)
	if s.Traces() != nil {
		t.Error("nil sink returned traces")
	}
}

func TestRecorderEvents(t *testing.T) {
	clk := &fakeClock{}
	r := NewRecorder(clk)
	if !r.Enabled() {
		t.Fatal("live recorder not Enabled")
	}

	start := sim.Time(2 * sim.Millisecond)
	clk.t = sim.Time(5 * sim.Millisecond)
	r.Span("work", CatInvoke, start, S("fn", "f0"))
	r.Instant("done", CatInvoke, I("host", 3))
	r.Gauge("pressure", CatFleet, 0.25)
	r.SpanAt("recon", CatMemory, 0, 7*sim.Millisecond)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Ph != PhSpan || evs[0].Start != start || evs[0].Dur != 3*sim.Millisecond {
		t.Errorf("span = %+v, want start 2ms dur 3ms", evs[0])
	}
	if evs[1].Ph != PhInstant || evs[1].Start != clk.t {
		t.Errorf("instant = %+v, want at clock time", evs[1])
	}
	if evs[2].Ph != PhGauge || evs[2].Args[0].Value() != 0.25 {
		t.Errorf("gauge = %+v, want value 0.25", evs[2])
	}
	if evs[3].Dur != 7*sim.Millisecond {
		t.Errorf("SpanAt dur = %v, want 7ms", evs[3].Dur)
	}
}

func TestArgValues(t *testing.T) {
	if v := I("k", 42).Value(); v != float64(42) {
		t.Errorf("I.Value = %v (%T), want 42.0", v, v)
	}
	if v := F("k", 1.5).Value(); v != 1.5 {
		t.Errorf("F.Value = %v, want 1.5", v)
	}
	if v := S("k", "x").Value(); v != "x" {
		t.Errorf("S.Value = %v, want x", v)
	}
}

// TestTraceCounterMerge checks the registry merge is additive over
// fleet-then-hosts, so it cannot depend on which shard recorded what.
func TestTraceCounterMerge(t *testing.T) {
	clk := &fakeClock{}
	tr := &Trace{Experiment: "e"}
	tr.FleetTrack(clk).Count("invocations", 10)
	tr.HostTrack(0, clk).Count("cold_starts", 2)
	tr.HostTrack(2, clk).Count("cold_starts", 3)
	tr.HostTrack(2, clk).Count("warm_starts", 5)

	want := map[string]int64{"invocations": 10, "cold_starts": 5, "warm_starts": 5}
	if got := tr.Counters(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged counters = %v, want %v", got, want)
	}
	if hosts := tr.Hosts(); len(hosts) != 3 || hosts[1] != nil {
		t.Errorf("hosts = %v, want 3 entries with a nil gap at 1", hosts)
	}
	if tr.Empty() {
		t.Error("trace with counters reports Empty")
	}
	if !(&Trace{}).Empty() {
		t.Error("fresh trace not Empty")
	}
}

// TestTrackReuse: reattaching a track (a pooled world's next cell, or a
// rejoined host) swaps the clock but keeps the recorder identity.
func TestTrackReuse(t *testing.T) {
	tr := &Trace{}
	c1, c2 := &fakeClock{}, &fakeClock{t: 9}
	r := tr.FleetTrack(c1)
	if tr.FleetTrack(c2) != r {
		t.Error("FleetTrack changed identity on reattach")
	}
	r.Instant("x", CatFleet)
	if r.Events()[0].Start != 9 {
		t.Error("reattached clock not used")
	}
	h := tr.HostTrack(1, c1)
	if tr.HostTrack(1, c2) != h {
		t.Error("HostTrack changed identity on reattach")
	}
}

// TestSinkOrder: concurrent adds in scrambled order still export
// sorted by (Experiment, Trial, Label) — worker count cannot reorder
// the file.
func TestSinkOrder(t *testing.T) {
	in := []*Trace{
		{Experiment: "b", Trial: 1},
		{Experiment: "a", Trial: 1, Label: "z"},
		{Experiment: "a", Trial: 1, Label: "m"},
		{Experiment: "a", Trial: 0, Label: "z"},
		{Experiment: "b", Trial: 0},
	}
	s := &Sink{}
	var wg sync.WaitGroup
	for _, tr := range in {
		wg.Add(1)
		go func(tr *Trace) {
			defer wg.Done()
			s.Add(tr)
		}(tr)
	}
	wg.Wait()

	got := s.Traces()
	var keys []string
	for _, tr := range got {
		keys = append(keys, tr.Experiment+string(rune('0'+tr.Trial))+tr.Label)
	}
	want := []string{"a0z", "a1m", "a1z", "b0", "b1"}
	if !reflect.DeepEqual(keys, want) {
		t.Errorf("sink order = %v, want %v", keys, want)
	}
}
