package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"squeezy/internal/sim"
)

// Chrome trace-event JSON export (the format https://ui.perfetto.dev
// and chrome://tracing load directly).
//
// Layout: each Trace becomes one process (pid 1..N, in the caller's
// order — Sink.Traces hands them over sorted). Within a process, tid
// group 0 is the fleet/dispatcher track and tid group id+1 is host
// id's track, so events appear in fleet-then-host-ID order — the
// deterministic merge order of the rest of the system. The simulator's
// spans are flat (a cold start is consecutive memwait → plug →
// container → init → exec segments, and concurrent instances overlap
// arbitrarily), but the JSON importer requires the slices of one
// thread to nest properly — so each track greedily partitions its
// spans into non-overlapping lanes (tid = group*laneStride + lane):
// one cold start reads as one row, concurrent work stacks into
// parallel rows. Runner self-observability (wall clock, not simulated
// time) lands in one extra process after the simulation processes,
// one thread per pool worker.
//
// Everything emitted is a pure function of the recorded events:
// map-valued fields are marshaled by encoding/json, which sorts keys,
// so the byte stream is deterministic and golden-file testable.

// laneStride separates the tid ranges of adjacent track groups; spans
// needing more concurrent lanes than this share the last lane (the
// viewer may truncate them, the data stays intact).
const laneStride = 100

// RunnerSpan is one wall-clock executor span: a cell as scheduled by
// the experiments runner, with its queue wait. Times are offsets from
// the run's start, not absolute timestamps, so exports are comparable
// across runs.
type RunnerSpan struct {
	Worker     int             // pool worker that ran the cell
	Name       string          // experiment/trial/cell label
	Start      time.Duration   // run start -> cell start
	Wait       time.Duration   // time spent queued before Start
	Dur        time.Duration   // cell wall clock
	ShardWalls []time.Duration // per-shard advance walls, if sharded
}

// WriteTrace renders traces (simulated time) and runner spans (wall
// clock) as one Chrome trace-event JSON document.
func WriteTrace(w io.Writer, traces []*Trace, runner []RunnerSpan) error {
	var events []map[string]any
	meta := func(pid, tid int, kind, name string) {
		events = append(events, map[string]any{
			"name": kind, "ph": "M", "pid": pid, "tid": tid,
			"args": map[string]any{"name": name},
		})
	}
	for i, t := range traces {
		pid := i + 1
		name := t.Experiment
		if t.Trial != 0 {
			name = fmt.Sprintf("%s trial %d", name, t.Trial)
		}
		if t.Label != "" {
			name += " · " + t.Label
		}
		meta(pid, 0, "process_name", name+" (sim time)")
		appendTrack(&events, meta, pid, 0, "fleet/dispatcher", t.Fleet().Events())
		for id, h := range t.Hosts() {
			appendTrack(&events, meta, pid, id+1, fmt.Sprintf("host %02d", id), h.Events())
		}
	}
	if len(runner) > 0 {
		appendRunner(&events, meta, len(traces)+1, runner)
	}
	doc := struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}{TraceEvents: events}
	return json.NewEncoder(w).Encode(doc)
}

// appendTrack converts one recorder's events onto the track group
// (pid, base), partitioning spans into non-overlapping lanes.
func appendTrack(events *[]map[string]any, meta func(int, int, string, string), pid, group int, trackName string, evs []Event) {
	if len(evs) == 0 {
		return
	}
	// Spans sorted by start (stable; instants and gauges stay where the
	// sort puts them, on lane 0) so lane assignment is greedy interval
	// partitioning: first lane whose previous span ended by our start.
	order := make([]int, len(evs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return evs[order[a]].Start < evs[order[b]].Start
	})
	var laneEnd []sim.Time
	lane := func(e Event) int {
		if e.Ph != PhSpan {
			return 0
		}
		end := e.Start.Add(e.Dur)
		for l, le := range laneEnd {
			if le <= e.Start {
				laneEnd[l] = end
				return l
			}
		}
		if len(laneEnd) >= laneStride-1 {
			return laneStride - 1 // out of lanes; share the last one
		}
		laneEnd = append(laneEnd, end)
		return len(laneEnd) - 1
	}
	base := group * laneStride
	lanes := 1
	for _, i := range order {
		e := evs[i]
		l := lane(e)
		if l+1 > lanes {
			lanes = l + 1
		}
		m := map[string]any{
			"name": e.Name, "ph": string(e.Ph),
			"ts": simMicros(e.Start), "pid": pid, "tid": base + l,
		}
		if e.Cat != "" {
			m["cat"] = string(e.Cat)
		}
		switch e.Ph {
		case PhSpan:
			m["dur"] = float64(e.Dur) / 1e3
		case PhInstant:
			m["s"] = "t" // thread-scoped instant
		}
		if len(e.Args) > 0 {
			args := make(map[string]any, len(e.Args))
			for _, a := range e.Args {
				args[a.Key] = a.Value()
			}
			m["args"] = args
		}
		*events = append(*events, m)
	}
	for l := 0; l < lanes; l++ {
		name := trackName
		if l > 0 {
			name = fmt.Sprintf("%s ·%d", trackName, l)
		}
		meta(pid, base+l, "thread_name", name)
	}
}

// appendRunner emits the wall-clock runner process: per-worker
// threads, a queue-wait span and a run span per cell.
func appendRunner(events *[]map[string]any, meta func(int, int, string, string), pid int, runner []RunnerSpan) {
	meta(pid, 0, "process_name", "runner (wall clock)")
	for _, rs := range runner {
		tid := rs.Worker + 1
		if rs.Wait > 0 {
			*events = append(*events, map[string]any{
				"name": rs.Name, "cat": "queue", "ph": "X",
				"ts": wallMicros(rs.Start - rs.Wait), "dur": wallMicros(rs.Wait),
				"pid": pid, "tid": tid,
				"args": map[string]any{"state": "queued"},
			})
		}
		args := map[string]any{"wall_ms": float64(rs.Dur) / float64(time.Millisecond)}
		for i, sw := range rs.ShardWalls {
			args[fmt.Sprintf("shard%02d_ms", i)] = float64(sw) / float64(time.Millisecond)
		}
		*events = append(*events, map[string]any{
			"name": rs.Name, "cat": "run", "ph": "X",
			"ts": wallMicros(rs.Start), "dur": wallMicros(rs.Dur),
			"pid": pid, "tid": tid, "args": args,
		})
	}
	seen := map[int]bool{}
	var workers []int
	for _, rs := range runner {
		if !seen[rs.Worker] {
			seen[rs.Worker] = true
			workers = append(workers, rs.Worker)
		}
	}
	sort.Ints(workers)
	for _, wk := range workers {
		meta(pid, wk+1, "thread_name", fmt.Sprintf("worker %d", wk))
	}
}

// simMicros converts simulated nanoseconds to the trace format's
// microsecond timestamps.
func simMicros(t sim.Time) float64 { return float64(t) / 1e3 }

// wallMicros converts a wall-clock duration to microseconds.
func wallMicros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// MetricsEntry is one cell's counter registry in the -metrics dump.
type MetricsEntry struct {
	Experiment string           `json:"experiment"`
	Trial      int              `json:"trial"`
	Cell       string           `json:"cell,omitempty"`
	Counters   map[string]int64 `json:"counters"`
}

// WriteMetrics dumps each trace's merged counter registry as an
// indented JSON array, in trace order. Map keys are sorted by
// encoding/json, so the output is deterministic.
func WriteMetrics(w io.Writer, traces []*Trace) error {
	entries := make([]MetricsEntry, 0, len(traces))
	for _, t := range traces {
		entries = append(entries, MetricsEntry{
			Experiment: t.Experiment, Trial: t.Trial, Cell: t.Label,
			Counters: t.Counters(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(entries)
}
