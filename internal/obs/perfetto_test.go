package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"squeezy/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testTrace builds a small fixed trace exercising every event shape:
// fleet instants and gauges, host spans that overlap (forcing a second
// lane), chained cold-start phases, and a counter registry.
func testTrace() *Trace {
	clk := &fakeClock{}
	tr := &Trace{Experiment: "demo", Trial: 1, Label: "cellA"}

	fl := tr.FleetTrack(clk)
	clk.t = sim.Time(1 * sim.Millisecond)
	fl.Instant("dispatch/warm: f0", CatInvoke, I("host", 0))
	fl.Gauge("autoscale/pressure", CatFleet, 0.4)
	fl.Count("invocations", 2)
	clk.t = sim.Time(2 * sim.Millisecond)
	fl.Instant("fault-open: cold-fail", CatFault, I("host", -1), F("mag", 0.5))
	fl.Instant("retry: f1", CatFault, I("retry", 1), I("backoff_ms", 250))
	fl.Count("resil/retries", 1)
	fl.Instant("fault-open: rack-fail", CatFault,
		I("rack", 1), I("zone", 0), F("mag", 1), I("targets", 2))
	fl.Gauge("mem/rack1/committed_gib", CatFleet, 3.5)
	fl.Count("faults/rack_events", 1)

	h := tr.HostTrack(0, clk)
	// Two overlapping spans -> two lanes; a third after both -> lane 0.
	h.SpanAt("cold/container: f0", CatInvoke, sim.Time(1*sim.Millisecond), 4*sim.Millisecond)
	h.SpanAt("cold/container: f1", CatInvoke, sim.Time(2*sim.Millisecond), 2*sim.Millisecond)
	h.SpanAt("cold/init: f0", CatInvoke, sim.Time(5*sim.Millisecond), 1*sim.Millisecond)
	clk.t = sim.Time(6 * sim.Millisecond)
	h.Instant("done-cold: f0", CatInvoke, F("latency_ms", 5))
	h.Count("cold_starts", 2)
	return tr
}

func testRunner() []RunnerSpan {
	return []RunnerSpan{
		{Worker: 0, Name: "demo/1/cellA", Start: 2 * time.Millisecond,
			Wait: 2 * time.Millisecond, Dur: 10 * time.Millisecond,
			ShardWalls: []time.Duration{4 * time.Millisecond, 3 * time.Millisecond}},
		{Worker: 1, Name: "demo/1/cellB", Dur: 5 * time.Millisecond},
	}
}

// TestWriteTraceGolden pins the exported byte stream. Regenerate with
//
//	go test ./internal/obs -run Golden -update
//
// after an intentional format change, and eyeball the diff.
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Trace{testTrace()}, testRunner()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file; rerun with -update and review:\n%s", buf.String())
	}
}

func TestWriteMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, []*Trace{testTrace()}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics JSON drifted from golden file; rerun with -update and review:\n%s", buf.String())
	}
}

// TestWriteTraceDeterministic: two exports of the same data are
// byte-identical (map args round-trip through encoding/json's sorted
// keys).
func TestWriteTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	traces := []*Trace{testTrace()}
	runner := testRunner()
	if err := WriteTrace(&a, traces, runner); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, traces, runner); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same trace differ")
	}
}

// traceEvent is the subset of fields the lane test inspects.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

func decodeEvents(t *testing.T, data []byte) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return doc.TraceEvents
}

// TestLanePartitioning: overlapping spans land on distinct lanes of
// the same track group; within a lane, spans never overlap — the
// invariant the Chrome trace importer needs to render flat spans.
func TestLanePartitioning(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Trace{testTrace()}, nil); err != nil {
		t.Fatal(err)
	}
	type lane struct{ pid, tid int }
	ends := map[lane]float64{}
	groups := map[int]bool{}
	for _, e := range decodeEvents(t, buf.Bytes()) {
		if e.Ph != "X" {
			continue
		}
		l := lane{e.Pid, e.Tid}
		if e.Ts < ends[l] {
			t.Errorf("span %q at ts=%v overlaps previous span on tid %d (ends %v)", e.Name, e.Ts, e.Tid, ends[l])
		}
		ends[l] = e.Ts + e.Dur
		groups[e.Tid/laneStride] = true
	}
	// The two overlapping container spans need two lanes on host 0
	// (group 1): tids 100 and 101.
	if _, ok := ends[lane{1, laneStride}]; !ok {
		t.Error("no span on host lane 0")
	}
	if _, ok := ends[lane{1, laneStride + 1}]; !ok {
		t.Error("overlapping spans were not split onto a second lane")
	}
}

// TestLaneOverflow: more concurrent spans than laneStride allows all
// export (sharing the last lane) rather than being dropped.
func TestLaneOverflow(t *testing.T) {
	clk := &fakeClock{}
	tr := &Trace{Experiment: "over"}
	h := tr.HostTrack(0, clk)
	const n = laneStride + 20
	for i := 0; i < n; i++ {
		h.SpanAt("s", CatInvoke, 0, sim.Duration(i+1)*sim.Millisecond)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Trace{tr}, nil); err != nil {
		t.Fatal(err)
	}
	spans := 0
	for _, e := range decodeEvents(t, buf.Bytes()) {
		if e.Ph == "X" {
			spans++
			if e.Tid < laneStride || e.Tid >= 2*laneStride {
				t.Errorf("span escaped host 0's tid range: %d", e.Tid)
			}
		}
	}
	if spans != n {
		t.Errorf("exported %d spans, want %d (overflow must not drop data)", spans, n)
	}
}
