package obs

import (
	"sort"
	"sync"

	"squeezy/internal/sim"
)

// Clock supplies the simulated time a Recorder stamps events with.
// sim.Scheduler and cluster.ShardedCluster both satisfy it.
type Clock interface {
	Now() sim.Time
}

// Cat classifies an event for trace viewers (the Chrome "cat" field).
type Cat string

// Event categories.
const (
	// CatInvoke covers the invocation lifecycle: arrive, dispatch tier,
	// placement, cold-start phases, execute, complete, re-place.
	CatInvoke Cat = "invoke"
	// CatMemory covers memory mechanics: balloon inflate/deflate,
	// virtio-mem and squeezy plug/unplug, buddy isolate/migrate detail,
	// keep-alive expiry, pressure evictions.
	CatMemory Cat = "memory"
	// CatFleet covers fleet-shape changes: join/fail/drain/autoscale
	// decisions with the pressure numbers that drove them.
	CatFleet Cat = "fleet"
	// CatFault covers injected faults and the dispatcher's recovery
	// behavior: fault windows opening/closing, boot failures and
	// crashes, attempt timeouts, retries, hedges, and load sheds.
	CatFault Cat = "fault"
)

// Event phase codes (Chrome trace-event "ph").
const (
	PhSpan    = byte('X') // complete event: Start + Dur
	PhInstant = byte('i') // instant event at Start
	PhGauge   = byte('C') // counter sample at Start
)

// Arg is one key/value annotation on an event. Construct with I, F, or
// S; the kind tag keeps the struct allocation-free for numeric args.
type Arg struct {
	Key  string
	Str  string
	Num  float64
	kind uint8
}

const (
	argNum uint8 = iota
	argStr
)

// I annotates an event with an integer value.
func I(key string, v int64) Arg { return Arg{Key: key, Num: float64(v), kind: argNum} }

// F annotates an event with a float value.
func F(key string, v float64) Arg { return Arg{Key: key, Num: v, kind: argNum} }

// S annotates an event with a string value.
func S(key, v string) Arg { return Arg{Key: key, Str: v, kind: argStr} }

// Value returns the arg's value as a JSON-encodable any.
func (a Arg) Value() any {
	if a.kind == argStr {
		return a.Str
	}
	return a.Num
}

// Event is one recorded trace event on simulated time.
type Event struct {
	Name  string
	Cat   Cat
	Ph    byte
	Start sim.Time
	Dur   sim.Duration // PhSpan only
	Args  []Arg
}

// Recorder accumulates events and counters for one track. A Recorder
// is single-owner: host recorders are written only by the goroutine
// advancing that host, the fleet recorder only by the serial
// dispatcher. Every method is a no-op on a nil receiver, so wiring can
// stay unconditional; hot paths should still guard with Enabled (or a
// plain nil check) to avoid building variadic args for nothing.
type Recorder struct {
	clock    Clock
	events   []Event
	counters map[string]int64
}

// NewRecorder returns a recorder stamping events from clock.
func NewRecorder(clock Clock) *Recorder { return &Recorder{clock: clock} }

// Enabled reports whether recording is live (non-nil receiver).
func (r *Recorder) Enabled() bool { return r != nil }

// Span records a completed span from start to the clock's current
// time.
func (r *Recorder) Span(name string, cat Cat, start sim.Time, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Name: name, Cat: cat, Ph: PhSpan,
		Start: start, Dur: r.clock.Now().Sub(start), Args: args,
	})
}

// SpanAt records a completed span with an explicit duration (for spans
// reconstructed after the fact, e.g. a request's arrival-to-done).
func (r *Recorder) SpanAt(name string, cat Cat, start sim.Time, dur sim.Duration, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Name: name, Cat: cat, Ph: PhSpan, Start: start, Dur: dur, Args: args,
	})
}

// Instant records a point event at the clock's current time.
func (r *Recorder) Instant(name string, cat Cat, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Name: name, Cat: cat, Ph: PhInstant, Start: r.clock.Now(), Args: args,
	})
}

// Gauge samples a named value at the clock's current time (a Perfetto
// counter track).
func (r *Recorder) Gauge(name string, cat Cat, v float64) {
	if r == nil {
		return
	}
	r.events = append(r.events, Event{
		Name: name, Cat: cat, Ph: PhGauge, Start: r.clock.Now(),
		Args: []Arg{F("value", v)},
	})
}

// Count adds delta to the named registry counter. Counters are plain
// sums; Trace.Counters merges them across tracks in host-ID order.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
}

// Events returns the recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Counters returns the recorder's counter registry (nil when empty).
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	return r.counters
}

// Trace is the recorded observability of one simulation run (one cell
// of one experiment trial): a fleet-level track written serially at
// epoch boundaries, plus one track per host, written host-locally.
// All methods tolerate a nil receiver by returning nil recorders, so a
// disabled run threads nil through every layer for free.
type Trace struct {
	// Identity, used to label the exported process and metrics entry.
	Experiment string
	Trial      int
	Label      string

	fleet *Recorder
	hosts []*Recorder // indexed by host ID; entries may be nil
}

// FleetTrack returns the fleet-level recorder, creating it on first
// use with the given clock (the dispatcher). Nil-safe: a nil Trace
// returns a nil Recorder.
func (t *Trace) FleetTrack(clock Clock) *Recorder {
	if t == nil {
		return nil
	}
	if t.fleet == nil {
		t.fleet = NewRecorder(clock)
	} else {
		t.fleet.clock = clock
	}
	return t.fleet
}

// HostTrack returns the recorder for host id, creating it on first use
// with the given clock (the host's private scheduler). Host tracks are
// created serially — at attach time or at a join boundary — and then
// written only by the host's owner. Nil-safe.
func (t *Trace) HostTrack(id int, clock Clock) *Recorder {
	if t == nil {
		return nil
	}
	for len(t.hosts) <= id {
		t.hosts = append(t.hosts, nil)
	}
	if t.hosts[id] == nil {
		t.hosts[id] = NewRecorder(clock)
	} else {
		t.hosts[id].clock = clock
	}
	return t.hosts[id]
}

// Fleet returns the fleet-level recorder, or nil.
func (t *Trace) Fleet() *Recorder {
	if t == nil {
		return nil
	}
	return t.fleet
}

// Hosts returns the host recorders in host-ID order; entries may be
// nil for hosts that never recorded.
func (t *Trace) Hosts() []*Recorder {
	if t == nil {
		return nil
	}
	return t.hosts
}

// Empty reports whether the trace recorded nothing at all.
func (t *Trace) Empty() bool {
	if t == nil {
		return true
	}
	if len(t.fleet.Events()) > 0 || len(t.fleet.Counters()) > 0 {
		return false
	}
	for _, h := range t.hosts {
		if len(h.Events()) > 0 || len(h.Counters()) > 0 {
			return false
		}
	}
	return true
}

// Counters merges the counter registries of every track — fleet first,
// then hosts in host-ID order — into one map. Counters are additive,
// so the merged registry is identical at every shard count.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64)
	add := func(m map[string]int64) {
		for k, v := range m {
			out[k] += v
		}
	}
	add(t.fleet.Counters())
	for _, h := range t.hosts {
		add(h.Counters())
	}
	return out
}

// Sink collects the traces of a multi-cell run. Cells complete on
// arbitrary workers in arbitrary order; Add is the only synchronized
// point, and Traces re-sorts by (Experiment, Trial, Label) so the
// exported file is independent of scheduling.
type Sink struct {
	mu     sync.Mutex
	traces []*Trace
}

// Add appends a completed trace. Safe for concurrent use; a nil sink
// or nil trace is a no-op.
func (s *Sink) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.traces = append(s.traces, t)
	s.mu.Unlock()
}

// Traces returns the collected traces sorted by (Experiment, Trial,
// Label) — a deterministic order at any worker count.
func (s *Sink) Traces() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Trace(nil), s.traces...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		if out[i].Trial != out[j].Trial {
			return out[i].Trial < out[j].Trial
		}
		return out[i].Label < out[j].Label
	})
	return out
}
