package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"squeezy/internal/sim"
)

// CSV trace formats. Two layouts round-trip through this file, both
// shared with cmd/tracegen:
//
//   - events: header "func,t_ns", one row per invocation with its
//     absolute nanosecond timestamp, sorted by (time, func). This is
//     the exact-replay format (tracegen -events) and streams row by
//     row in O(1) memory.
//   - counts: the original tracegen -csv fleet format, header
//     "func,minute,invocations" (or "minute,invocations" for a single
//     trace). Counts compress an arbitrarily long trace into
//     funcs x minutes integers; the reader re-expands each minute's
//     count into evenly spaced invocations and merges functions on the
//     fly, so memory is bounded by the count matrix, never the
//     invocation count.

// CSVStream streams invocations parsed from a CSV trace. In events
// mode rows are decoded on demand; in counts mode the (small) count
// matrix is loaded up front and expanded lazily. Next returns false at
// the end of the stream or on a malformed row — callers distinguish
// the two via Err.
type CSVStream struct {
	cr   *csv.Reader // events mode; nil in counts mode
	src  Stream      // counts mode: merged count-expansion cursors
	last TaggedInvocation
	any  bool
	err  error
}

// OpenCSV wraps a CSV trace (events or counts layout, detected from
// the header) as an invocation stream.
func OpenCSV(r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	switch {
	case len(header) == 2 && header[0] == "func" && header[1] == "t_ns":
		return &CSVStream{cr: cr}, nil
	case len(header) == 3 && header[0] == "func" && header[1] == "minute" && header[2] == "invocations":
		return openCounts(cr, true)
	case len(header) == 2 && header[0] == "minute" && header[1] == "invocations":
		return openCounts(cr, false)
	default:
		return nil, fmt.Errorf("trace: unrecognized CSV header %q", header)
	}
}

// Next returns the next invocation. After a false return, Err reports
// whether the stream ended cleanly or on a malformed row.
func (c *CSVStream) Next() (TaggedInvocation, bool) {
	if c.err != nil {
		return TaggedInvocation{}, false
	}
	if c.src != nil {
		return c.src.Next()
	}
	rec, err := c.cr.Read()
	if err == io.EOF {
		return TaggedInvocation{}, false
	}
	if err != nil {
		c.err = err
		return TaggedInvocation{}, false
	}
	fn, err1 := strconv.Atoi(rec[0])
	ns, err2 := strconv.ParseInt(rec[1], 10, 64)
	if err1 != nil || err2 != nil || fn < 0 || ns < 0 {
		c.err = fmt.Errorf("trace: malformed event row %q", rec)
		return TaggedInvocation{}, false
	}
	inv := TaggedInvocation{T: sim.Time(ns), Func: fn}
	if c.any && (inv.T < c.last.T || (inv.T == c.last.T && inv.Func < c.last.Func)) {
		c.err = fmt.Errorf("trace: event rows not sorted by (t_ns, func): %v after %v", inv, c.last)
		return TaggedInvocation{}, false
	}
	c.last, c.any = inv, true
	return inv, true
}

// Err returns the first decode error, or nil if the stream is clean so
// far (or ended cleanly).
func (c *CSVStream) Err() error { return c.err }

// countRow is one per-minute count for one function.
type countRow struct {
	minute, count int
}

// countCursor expands one function's per-minute counts into evenly
// spaced invocation times: minute m with count c yields times
// m*minute + k*minute/(c+1) for k in 1..c, deterministically.
type countCursor struct {
	fn   int
	rows []countRow
	ri   int
	k    int
}

func (cc *countCursor) Next() (TaggedInvocation, bool) {
	for cc.ri < len(cc.rows) {
		r := cc.rows[cc.ri]
		if cc.k < r.count {
			step := sim.Duration(sim.Minute) / sim.Duration(r.count+1)
			t := sim.Time(r.minute)*sim.Time(sim.Minute) + sim.Time(step)*sim.Time(cc.k+1)
			cc.k++
			return TaggedInvocation{T: t, Func: cc.fn}, true
		}
		cc.ri++
		cc.k = 0
	}
	return TaggedInvocation{}, false
}

func openCounts(cr *csv.Reader, hasFunc bool) (*CSVStream, error) {
	perFunc := map[int][]countRow{}
	maxFn := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		fn := 0
		idx := 0
		if hasFunc {
			fn, err = strconv.Atoi(rec[0])
			if err != nil || fn < 0 {
				return nil, fmt.Errorf("trace: malformed count row %q", rec)
			}
			idx = 1
		}
		minute, err1 := strconv.Atoi(rec[idx])
		count, err2 := strconv.Atoi(rec[idx+1])
		if err1 != nil || err2 != nil || minute < 0 || count < 0 {
			return nil, fmt.Errorf("trace: malformed count row %q", rec)
		}
		if n := len(perFunc[fn]); n > 0 && perFunc[fn][n-1].minute >= minute {
			return nil, fmt.Errorf("trace: count rows for func %d not sorted by minute", fn)
		}
		perFunc[fn] = append(perFunc[fn], countRow{minute, count})
		if fn > maxFn {
			maxFn = fn
		}
	}
	srcs := make([]Stream, maxFn+1)
	for fn := 0; fn <= maxFn; fn++ {
		srcs[fn] = &countCursor{fn: fn, rows: perFunc[fn]}
	}
	return &CSVStream{src: NewMerged(srcs)}, nil
}

// WriteCSV drains a stream into the events CSV layout
// ("func,t_ns", one row per invocation) and returns the number of
// invocations written. Combined with OpenCSV this is an exact
// round-trip: replaying the file reproduces the stream bit for bit.
func WriteCSV(w io.Writer, s Stream) (int, error) {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"func", "t_ns"}); err != nil {
		return 0, err
	}
	n := 0
	rec := make([]string, 2)
	for {
		inv, ok := s.Next()
		if !ok {
			break
		}
		rec[0] = strconv.Itoa(inv.Func)
		rec[1] = strconv.FormatInt(int64(inv.T), 10)
		if err := cw.Write(rec); err != nil {
			return n, err
		}
		n++
	}
	cw.Flush()
	return n, cw.Error()
}
