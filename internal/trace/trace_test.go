package trace

import (
	"testing"

	"squeezy/internal/sim"
)

func TestGenBurstyDeterministic(t *testing.T) {
	cfg := BurstyConfig{
		Duration: 5 * sim.Minute, BaseRPS: 0.5, BurstRPS: 20,
		BurstLen: 10 * sim.Second, BurstGap: 30 * sim.Second,
	}
	a := GenBursty(42, cfg)
	b := GenBursty(42, cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	c := GenBursty(43, cfg)
	if c.Len() == a.Len() {
		same := true
		for i := range a.Times {
			if a.Times[i] != c.Times[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds yield identical traces")
		}
	}
}

func TestGenBurstySortedAndBounded(t *testing.T) {
	tr := GenBursty(7, BurstyConfig{
		Duration: 10 * sim.Minute, BaseRPS: 1, BurstRPS: 50,
		BurstLen: 20 * sim.Second, BurstGap: 60 * sim.Second,
	})
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	end := sim.Time(10 * sim.Minute)
	for i, ts := range tr.Times {
		if ts < 0 || ts >= end {
			t.Fatalf("invocation %d at %v outside [0,%v)", i, ts, end)
		}
		if i > 0 && ts < tr.Times[i-1] {
			t.Fatalf("trace not sorted at %d", i)
		}
	}
}

func TestBurstinessShape(t *testing.T) {
	// Bursty traces must have per-10s rate spikes well above the base.
	tr := GenBursty(11, BurstyConfig{
		Duration: 20 * sim.Minute, BaseRPS: 0.2, BurstRPS: 30,
		BurstLen: 15 * sim.Second, BurstGap: 60 * sim.Second,
	})
	buckets := make([]int, 20*6)
	for _, ts := range tr.Times {
		buckets[int(sim.Duration(ts)/(10*sim.Second))]++
	}
	maxB, quiet := 0, 0
	for _, b := range buckets {
		if b > maxB {
			maxB = b
		}
		if b <= 4 {
			quiet++
		}
	}
	if maxB < 50 {
		t.Fatalf("no burst found: max 10s bucket = %d", maxB)
	}
	if quiet < len(buckets)/4 {
		t.Fatalf("no quiet periods: %d of %d buckets quiet", quiet, len(buckets))
	}
}

func TestMerge(t *testing.T) {
	a := &Trace{Times: []sim.Time{10, 30}}
	b := &Trace{Times: []sim.Time{20}}
	m := Merge([]*Trace{a, b})
	if len(m) != 3 {
		t.Fatalf("len = %d", len(m))
	}
	if m[0].T != 10 || m[0].Func != 0 || m[1].T != 20 || m[1].Func != 1 || m[2].T != 30 {
		t.Fatalf("merge wrong: %+v", m)
	}
}

func TestInstanceChurnReuse(t *testing.T) {
	// Two invocations 1s apart with 100ms exec: the second reuses the
	// idle instance.
	tr := &Trace{Times: []sim.Time{0, sim.Time(sim.Second)}}
	pts := InstanceChurn(tr, 100*sim.Millisecond, 5*sim.Minute, sim.Duration(sim.Minute))
	creations := 0
	for _, p := range pts {
		creations += p.Creations
	}
	if creations != 1 {
		t.Fatalf("creations = %d, want 1 (reuse)", creations)
	}
}

func TestInstanceChurnConcurrent(t *testing.T) {
	// Two simultaneous invocations need two instances.
	tr := &Trace{Times: []sim.Time{0, 0}}
	pts := InstanceChurn(tr, sim.Second, 5*sim.Minute, sim.Duration(sim.Minute))
	if pts[0].Creations != 2 {
		t.Fatalf("creations = %d, want 2", pts[0].Creations)
	}
}

func TestInstanceChurnEviction(t *testing.T) {
	tr := &Trace{Times: []sim.Time{0}}
	pts := InstanceChurn(tr, sim.Second, sim.Duration(2*sim.Minute), sim.Duration(10*sim.Minute))
	evictions, evMinute := 0, -1
	for _, p := range pts {
		if p.Evictions > 0 {
			evictions += p.Evictions
			evMinute = p.Minute
		}
	}
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
	// Idle from t=1s, keep-alive 2min: eviction lands in minute 2.
	if evMinute != 2 {
		t.Fatalf("eviction minute = %d, want 2", evMinute)
	}
}

func TestCreationsAndEvictionsBalance(t *testing.T) {
	tr := GenBursty(3, BurstyConfig{
		Duration: 10 * sim.Minute, BaseRPS: 0.5, BurstRPS: 25,
		BurstLen: 10 * sim.Second, BurstGap: 45 * sim.Second,
	})
	pts := InstanceChurn(tr, 500*sim.Millisecond, sim.Duration(2*sim.Minute), sim.Duration(10*sim.Minute))
	var created, evicted int
	for _, p := range pts {
		created += p.Creations
		evicted += p.Evictions
	}
	if created == 0 {
		t.Fatal("no creations")
	}
	// Evictions within the window never exceed creations, and the
	// early-burst instances (idle > keep-alive before the window ends)
	// must show up as evictions.
	if evicted == 0 || evicted > created {
		t.Fatalf("created %d, evicted %d", created, evicted)
	}
}

func TestGenTopTenScale(t *testing.T) {
	traces := GenTopTen(1, sim.Duration(2*sim.Minute))
	if len(traces) != 10 {
		t.Fatalf("traces = %d", len(traces))
	}
	// Rank 1 must be busier than rank 10.
	if traces[0].Len() <= traces[9].Len() {
		t.Fatalf("popularity not decaying: rank1=%d rank10=%d", traces[0].Len(), traces[9].Len())
	}
}

func TestPeakConcurrency(t *testing.T) {
	tr := &Trace{Times: []sim.Time{0, 10, 20, 1000}}
	// exec 100ns: first three overlap.
	if got := PeakConcurrency(tr, 100); got != 3 {
		t.Fatalf("peak = %d, want 3", got)
	}
	if got := PeakConcurrency(tr, 5); got != 1 {
		t.Fatalf("peak = %d, want 1", got)
	}
}

func TestGenFleetZipfShape(t *testing.T) {
	cfg := FleetConfig{
		Funcs: 50, Duration: 5 * sim.Minute,
		TotalBaseRPS: 10, TotalBurstRPS: 60,
	}
	traces := GenFleet(3, cfg)
	if len(traces) != 50 {
		t.Fatalf("fleet size = %d", len(traces))
	}
	// Popularity must decay: the head rank dominates the mid-tail.
	if traces[0].Len() <= traces[25].Len() {
		t.Fatalf("rank 0 (%d) not hotter than rank 25 (%d)", traces[0].Len(), traces[25].Len())
	}
	// The tail still gets some traffic over 5 minutes.
	total := 0
	for _, tr := range traces {
		total += tr.Len()
	}
	if total == 0 {
		t.Fatal("empty fleet trace")
	}
	// Determinism: same seed, same fleet.
	again := GenFleet(3, cfg)
	for i := range traces {
		if len(traces[i].Times) != len(again[i].Times) {
			t.Fatalf("func %d not deterministic", i)
		}
	}
	// Seed sensitivity.
	other := GenFleet(4, cfg)
	same := true
	for i := range traces {
		if len(traces[i].Times) != len(other[i].Times) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fleets")
	}
}

func TestGenFleetEmptyAndDefaults(t *testing.T) {
	if GenFleet(1, FleetConfig{}) != nil {
		t.Fatal("zero functions must yield nil")
	}
	// Defaults (ZipfS, burst shape) must not panic and must honor the
	// aggregate rate roughly.
	traces := GenFleet(1, FleetConfig{Funcs: 4, Duration: sim.Minute, TotalBaseRPS: 12, TotalBurstRPS: 12})
	total := 0
	for _, tr := range traces {
		total += tr.Len()
	}
	// ~12 rps for 60 s = ~720 invocations; allow wide tolerance.
	if total < 360 || total > 1440 {
		t.Fatalf("aggregate invocations = %d, want ~720", total)
	}
}

// TestGenChurn pins the properties the churn fuzzer relies on: the
// schedule is a pure function of its seed, sorted by time, strictly
// inside the trace window, and mixes targeted hosts (including
// deliberately dangling IDs) with "busiest" (-1) wildcards.
func TestGenChurn(t *testing.T) {
	cfg := ChurnConfig{Duration: 30 * sim.Second, Events: 40, Hosts: 4}
	a := GenChurn(7, cfg)
	b := GenChurn(7, cfg)
	if len(a) != cfg.Events || len(b) != cfg.Events {
		t.Fatalf("lengths %d/%d, want %d", len(a), len(b), cfg.Events)
	}
	targeted, wildcard := 0, 0
	for i, ev := range a {
		if ev != b[i] {
			t.Fatalf("event %d differs across same-seed runs: %+v vs %+v", i, ev, b[i])
		}
		if i > 0 && ev.T < a[i-1].T {
			t.Fatalf("events not sorted: %d then %d", a[i-1].T, ev.T)
		}
		if ev.T <= 0 || ev.T >= sim.Time(cfg.Duration) {
			t.Fatalf("event %d at %d outside (0, %d)", i, ev.T, cfg.Duration)
		}
		if ev.Kind != ChurnJoin && ev.Kind != ChurnFail && ev.Kind != ChurnDrain {
			t.Fatalf("event %d has kind %d", i, ev.Kind)
		}
		if ev.Host == -1 {
			wildcard++
		} else if ev.Host >= 0 && ev.Host < 2*cfg.Hosts {
			targeted++
		} else {
			t.Fatalf("event %d targets host %d outside [0, %d)", i, ev.Host, 2*cfg.Hosts)
		}
	}
	if targeted == 0 || wildcard == 0 {
		t.Fatalf("no mix: %d targeted, %d wildcard", targeted, wildcard)
	}
	if c := GenChurn(8, cfg); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical churn schedules")
		}
	}
}

// TestGenChurnRacks: with Racks unset the schedule is byte-identical
// to a build without the rack kind (host kinds only, same draws); with
// racks declared, rack failures appear with rack-index targets
// (possibly dangling, for no-op coverage).
func TestGenChurnRacks(t *testing.T) {
	cfg := ChurnConfig{Duration: 30 * sim.Second, Events: 40, Hosts: 4}
	for _, ev := range GenChurn(7, cfg) {
		if ev.Kind == ChurnRackFail {
			t.Fatal("flat schedule drew a rack failure")
		}
	}
	cfg.Racks = 2
	rackFails := 0
	for _, ev := range GenChurn(7, cfg) {
		if ev.Kind != ChurnRackFail {
			continue
		}
		rackFails++
		if ev.Host < 0 || ev.Host >= 2*cfg.Racks {
			t.Fatalf("rack failure targets %d outside [0, %d)", ev.Host, 2*cfg.Racks)
		}
	}
	if rackFails == 0 {
		t.Fatal("racked schedule drew no rack failures in 40 events")
	}
}
