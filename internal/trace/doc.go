// Package trace synthesizes FaaS invocation traces with the bursty,
// heavy-tailed shape of the Azure Functions production traces the paper
// replays (§6.2.1, [66, 83]), and provides the instance-churn analysis
// behind Figure 2.
//
// The real traces are proprietary; the generator reproduces the
// properties the experiments depend on: long quiet stretches at a low
// base rate punctuated by bursts that force the runtime to scale
// instance counts up and down by tens per minute. GenFleet layers Zipf
// function popularity over the bursty generator to shape whole-fleet
// workloads, and Merge flattens per-function traces into the single
// time-ordered stream the cluster dispatcher replays — the boundary
// events of the sharded fleet's epoch protocol.
//
// Every generator is a pure function of its seed; sub-streams for
// adjacent functions or cells should derive through well-separated
// seeds (the experiments package's SubSeed), never base+index
// arithmetic.
package trace
