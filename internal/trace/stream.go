package trace

import (
	"math"
	"math/rand/v2"

	"squeezy/internal/sim"
)

// Stream is a pull-based iterator over a time-ordered invocation
// sequence. Next returns the next invocation and true, or a zero value
// and false when the stream is exhausted. Streams generate invocations
// on demand from O(1) cursor state (plus O(funcs) for merged fleets),
// so a multi-day, million-invocation trace never exists in memory at
// once: collecting a stream yields exactly the slice the materialized
// generators used to build up front, and the cluster layer replays
// streams directly via its invocation peek loop.
type Stream interface {
	Next() (TaggedInvocation, bool)
}

// DiurnalConfig is one sinusoidal rate-modulation layer: the
// instantaneous request rate is multiplied by
//
//	1 + Amplitude*sin(2*pi*t/Period + Phase)
//
// at every gap draw. Layering a 24 h period over a 7-day period gives
// the daily-peak-with-weekend-trough shape of production FaaS traffic.
// Multiple layers multiply; the combined factor is clamped below at
// 0.01 so a deep trough slows the trace instead of stalling it.
type DiurnalConfig struct {
	// Period is the cycle length, e.g. 24*sim.Hour (diurnal) or
	// 7*24*sim.Hour (weekly). Non-positive periods are ignored.
	Period sim.Duration
	// Amplitude is the peak fractional rate swing, normally in [0, 1).
	Amplitude float64
	// Phase offsets the cycle, in radians. Zero starts at the mean
	// rate heading into the peak.
	Phase float64
}

// modFactor evaluates the combined modulation factor at time t. An
// empty layer list returns exactly 1 without touching floating point,
// so unmodulated configs stay byte-identical to the pre-modulation
// generator.
func modFactor(mods []DiurnalConfig, t sim.Time) float64 {
	f := 1.0
	for _, m := range mods {
		if m.Period <= 0 || m.Amplitude == 0 {
			continue
		}
		f *= 1 + m.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(m.Period)+m.Phase)
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// Bursty is the cursor behind GenBursty: a streaming generator of one
// function's bursty Poisson-modulated trace. NewBursty(seed, cfg)
// followed by draining Next yields exactly the times
// GenBursty(seed, cfg) materializes — GenBursty is now a collector
// over this cursor — while holding only the RNG and phase state.
type Bursty struct {
	// Func tags every emitted invocation with a function index; the
	// fleet merger sets it to the function's rank.
	Func int

	rng      *rand.Rand
	cfg      BurstyConfig
	now      sim.Time
	end      sim.Time
	inBurst  bool
	phaseEnd sim.Time
}

// NewBursty creates a streaming bursty-trace cursor. The same seed
// always yields the same stream.
func NewBursty(seed uint64, cfg BurstyConfig) *Bursty {
	rng := rand.New(rand.NewPCG(seed, 0x5eed))
	b := &Bursty{rng: rng, cfg: cfg, end: sim.Time(cfg.Duration)}
	b.phaseEnd = b.now.Add(expDur(rng, cfg.BurstGap))
	return b
}

// Next returns the next invocation, advancing the cursor. The emitted
// times are strictly increasing (gap draws are floored at 1 µs) and
// lie in [0, cfg.Duration).
func (b *Bursty) Next() (TaggedInvocation, bool) {
	for b.now < b.end {
		rate := b.cfg.BaseRPS
		if b.inBurst {
			rate = b.cfg.BurstRPS
		}
		if len(b.cfg.Modulation) > 0 {
			rate *= modFactor(b.cfg.Modulation, b.now)
		}
		var next sim.Time
		if rate <= 0 {
			next = b.end
		} else {
			gap := sim.Duration(b.rng.ExpFloat64() / rate * float64(sim.Second))
			if gap < sim.Microsecond {
				gap = sim.Microsecond
			}
			next = b.now.Add(gap)
		}
		if next >= b.phaseEnd {
			b.now = b.phaseEnd
			b.inBurst = !b.inBurst
			if b.inBurst {
				b.phaseEnd = b.now.Add(expDur(b.rng, b.cfg.BurstLen))
			} else {
				b.phaseEnd = b.now.Add(expDur(b.rng, b.cfg.BurstGap))
			}
			continue
		}
		b.now = next
		if b.now < b.end {
			return TaggedInvocation{T: b.now, Func: b.Func}, true
		}
	}
	return TaggedInvocation{}, false
}

// Collect drains a stream into a materialized single-function Trace,
// discarding function tags. Collect(NewBursty(seed, cfg)) is
// byte-identical to the pre-streaming GenBursty(seed, cfg).
func Collect(s Stream) *Trace {
	var times []sim.Time
	for {
		inv, ok := s.Next()
		if !ok {
			break
		}
		times = append(times, inv.T)
	}
	return &Trace{Times: times}
}

// FleetStream merges per-function cursors into one stream ordered by
// (time, function index) — exactly the total order Merge(GenFleet(...))
// produces, proven by the streaming property tests — while holding
// O(funcs) state: one cursor and one buffered head per function,
// independent of trace length. It is the replay source for multi-day
// million-invocation fleet cells.
type FleetStream struct {
	srcs   []Stream
	heap   []TaggedInvocation
	srcIdx []int // srcIdx[i] is the source behind heap[i]
}

// NewFleetStream creates a streaming equivalent of
// Merge(GenFleet(seed, cfg)): the same Zipf share split, per-function
// seeds, and burst shapes, merged on the fly.
func NewFleetStream(seed uint64, cfg FleetConfig) *FleetStream {
	cursors := FleetCursors(seed, cfg)
	srcs := make([]Stream, len(cursors))
	for i, c := range cursors {
		srcs[i] = c
	}
	return NewMerged(srcs)
}

// FleetCursors builds the per-function bursty cursors behind
// GenFleet: cursor i generates function i's trace and tags its
// invocations with Func=i. GenFleet collects them; NewFleetStream
// merges them.
func FleetCursors(seed uint64, cfg FleetConfig) []*Bursty {
	if cfg.Funcs <= 0 {
		return nil
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1.1
	}
	burstLen, burstGap := cfg.BurstLen, cfg.BurstGap
	if burstLen <= 0 {
		burstLen = 20 * sim.Second
	}
	if burstGap <= 0 {
		burstGap = 45 * sim.Second
	}
	weights := make([]float64, cfg.Funcs)
	var total float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -s)
		total += weights[i]
	}
	cursors := make([]*Bursty, cfg.Funcs)
	for i := range cursors {
		share := weights[i] / total
		cursors[i] = NewBursty(fleetSeed(seed, uint64(i)), BurstyConfig{
			Duration:   cfg.Duration,
			BaseRPS:    cfg.TotalBaseRPS * share,
			BurstRPS:   cfg.TotalBurstRPS * share,
			BurstLen:   burstLen,
			BurstGap:   burstGap,
			Modulation: cfg.Modulation,
		})
		cursors[i].Func = i
	}
	return cursors
}

// NewMerged merges time-ordered source streams into one stream ordered
// by (T, Func). Each source must emit non-decreasing times; sources
// normally carry distinct Func tags (ties on both T and Func break by
// source index, deterministically). The merger holds one buffered head
// per live source.
func NewMerged(srcs []Stream) *FleetStream {
	m := &FleetStream{srcs: srcs, heap: make([]TaggedInvocation, 0, len(srcs))}
	for i, s := range srcs {
		if inv, ok := s.Next(); ok {
			m.push(inv, i)
		}
	}
	return m
}

func (m *FleetStream) push(inv TaggedInvocation, src int) {
	m.heap = append(m.heap, inv)
	m.srcIdx = append(m.srcIdx, src)
	i := len(m.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !m.less(i, parent) {
			break
		}
		m.swap(i, parent)
		i = parent
	}
}

func (m *FleetStream) less(i, j int) bool {
	a, b := m.heap[i], m.heap[j]
	if a.T != b.T {
		return a.T < b.T
	}
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	return m.srcIdx[i] < m.srcIdx[j]
}

func (m *FleetStream) swap(i, j int) {
	m.heap[i], m.heap[j] = m.heap[j], m.heap[i]
	m.srcIdx[i], m.srcIdx[j] = m.srcIdx[j], m.srcIdx[i]
}

func (m *FleetStream) siftDown(i int) {
	n := len(m.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && m.less(l, small) {
			small = l
		}
		if r < n && m.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		m.swap(i, small)
		i = small
	}
}

// Next pops the globally-next invocation and refills from its source.
func (m *FleetStream) Next() (TaggedInvocation, bool) {
	if len(m.heap) == 0 {
		return TaggedInvocation{}, false
	}
	top := m.heap[0]
	src := m.srcIdx[0]
	if inv, ok := m.srcs[src].Next(); ok {
		m.heap[0] = inv
		m.siftDown(0)
	} else {
		n := len(m.heap) - 1
		m.heap[0] = m.heap[n]
		m.srcIdx[0] = m.srcIdx[n]
		m.heap = m.heap[:n]
		m.srcIdx = m.srcIdx[:n]
		if n > 0 {
			m.siftDown(0)
		}
	}
	return top, true
}

// Funcs returns the number of source streams the merger was built
// over (live or exhausted).
func (m *FleetStream) Funcs() int { return len(m.srcs) }

// TopTenStream is the cursor behind TopTenTrace: the rank-i top-ten
// function's trace as a stream, tagged Func=i.
func TopTenStream(seed uint64, duration sim.Duration, i int) *Bursty {
	rank := float64(i + 1)
	b := NewBursty(seed+uint64(i)*101, BurstyConfig{
		Duration: duration,
		BaseRPS:  12 / rank,
		BurstRPS: 220 / rank,
		BurstLen: 25 * sim.Second,
		BurstGap: 70 * sim.Second,
	})
	b.Func = i
	return b
}

// NewTopTenStream merges the ten top-ten cursors into one
// (T, Func)-ordered stream, the streaming form of
// Merge(GenTopTen(seed, duration)).
func NewTopTenStream(seed uint64, duration sim.Duration) *FleetStream {
	srcs := make([]Stream, 10)
	for i := range srcs {
		srcs[i] = TopTenStream(seed, duration, i)
	}
	return NewMerged(srcs)
}
