package trace

import (
	"math/rand/v2"
	"sort"

	"squeezy/internal/sim"
)

// Trace is a sorted sequence of invocation times for one function.
type Trace struct {
	Times []sim.Time
}

// Len returns the number of invocations.
func (t *Trace) Len() int { return len(t.Times) }

// BurstyConfig parameterizes the synthetic bursty generator.
type BurstyConfig struct {
	// Duration is the trace length.
	Duration sim.Duration
	// BaseRPS is the quiet-period request rate (requests/second).
	BaseRPS float64
	// BurstRPS is the in-burst request rate.
	BurstRPS float64
	// BurstLen is the mean burst duration.
	BurstLen sim.Duration
	// BurstGap is the mean quiet gap between bursts.
	BurstGap sim.Duration
	// Modulation layers sinusoidal rate modulation (diurnal, weekly)
	// onto both the base and burst rates. Empty modulation is
	// byte-identical to the unmodulated generator: the factor is not
	// even computed.
	Modulation []DiurnalConfig
}

// GenBursty synthesizes a bursty Poisson-modulated trace by collecting
// the streaming cursor (NewBursty). The same seed always yields the
// same trace.
func GenBursty(seed uint64, cfg BurstyConfig) *Trace {
	return Collect(NewBursty(seed, cfg))
}

func expDur(rng *rand.Rand, mean sim.Duration) sim.Duration {
	if mean <= 0 {
		return 0
	}
	d := sim.Duration(rng.ExpFloat64() * float64(mean))
	if d < sim.Millisecond {
		d = sim.Millisecond
	}
	return d
}

// GenTopTen synthesizes invocation traces shaped like the 10 most
// popular functions of the Azure production traces over the given
// duration: very high aggregate rates with per-function bursts, driving
// the thousands of instance creations and evictions per minute that
// Figure 2 reports.
func GenTopTen(seed uint64, duration sim.Duration) []*Trace {
	traces := make([]*Trace, 10)
	for i := range traces {
		traces[i] = TopTenTrace(seed, duration, i)
	}
	return traces
}

// TopTenTrace synthesizes the trace of the function at rank i (0-based)
// of the top-10 set alone — identical to GenTopTen(seed, duration)[i],
// without generating the other nine. Sweeps that process the top-10
// functions as independent cells use it to keep each cell's cost
// proportional to its own trace.
func TopTenTrace(seed uint64, duration sim.Duration, i int) *Trace {
	// Popularity decays across the top-10 ranks; the busiest
	// functions see hundreds of requests per second in bursts.
	return Collect(TopTenStream(seed, duration, i))
}

// FleetConfig parameterizes the fleet generator: many functions whose
// popularity follows a Zipf law, each driven by the bursty generator.
type FleetConfig struct {
	// Funcs is the number of functions in the fleet.
	Funcs int
	// Duration is the trace length.
	Duration sim.Duration
	// ZipfS is the popularity exponent: function of rank r carries
	// weight 1/r^s of the aggregate rate. 0 selects 1.1, close to the
	// skew of the Azure production traces [66].
	ZipfS float64
	// TotalBaseRPS is the fleet-aggregate quiet-period rate; each
	// function receives its Zipf share.
	TotalBaseRPS float64
	// TotalBurstRPS is the fleet-aggregate in-burst rate.
	TotalBurstRPS float64
	// BurstLen and BurstGap shape each function's bursts (defaults
	// 20 s / 45 s). Burst phases are independent across functions, so
	// fleet load is bursty but rarely synchronized.
	BurstLen sim.Duration
	BurstGap sim.Duration
	// Modulation layers sinusoidal rate modulation (diurnal, weekly)
	// onto every function's rates — the fleet-aggregate rate swings by
	// the same factor. Empty modulation is byte-identical to the
	// unmodulated generator.
	Modulation []DiurnalConfig
}

// GenFleet synthesizes one bursty trace per function, with aggregate
// rates split across functions by Zipf popularity: a handful of hot
// functions dominate, followed by a long tail of rarely-invoked ones —
// the shape that makes fleet placement interesting (hot functions need
// instances everywhere; the tail pays a cold start almost every time).
// The same seed always yields the same traces.
//
// GenFleet materializes; NewFleetStream replays the identical fleet as
// a merged stream in O(funcs) memory.
func GenFleet(seed uint64, cfg FleetConfig) []*Trace {
	cursors := FleetCursors(seed, cfg)
	if cursors == nil {
		return nil
	}
	traces := make([]*Trace, len(cursors))
	for i, c := range cursors {
		traces[i] = Collect(c)
	}
	return traces
}

// fleetSeed derives function i's seed by mixing (seed, i) through the
// splitmix64 finalizer, so per-function streams stay well separated
// even across adjacent base seeds (the same construction as the
// experiment runner's per-trial seeds).
func fleetSeed(seed, i uint64) uint64 {
	x := seed + (i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ChurnKind classifies one fleet-shape change in a churn profile.
type ChurnKind int

// Churn event kinds, mirrored by the cluster layer's FleetEvent kinds.
const (
	// ChurnJoin adds a host to the fleet.
	ChurnJoin ChurnKind = iota
	// ChurnFail kills a host abruptly: warm pool lost, in-flight
	// invocations re-placed.
	ChurnFail
	// ChurnDrain removes a host gracefully: no new placements, running
	// work finishes (or is re-placed at the drain deadline).
	ChurnDrain
	// ChurnRackFail kills every host of a rack at once (Host is the
	// rack index; dangling racks are no-ops). Generated only when
	// ChurnConfig.Racks > 0; the cluster layer plays it as a rack-fail
	// fault event.
	ChurnRackFail
)

// ChurnEvent is one scheduled fleet-shape change.
type ChurnEvent struct {
	T    sim.Time
	Kind ChurnKind
	// Host targets a specific host ID; -1 lets the fleet pick the
	// busiest live host at event time (the worst-case victim). For
	// ChurnRackFail it is a rack index instead.
	Host int
}

// ChurnConfig parameterizes the fuzzed churn-profile generator.
type ChurnConfig struct {
	// Duration bounds event times: events land in (0, Duration).
	Duration sim.Duration
	// Events is the number of churn events to generate.
	Events int
	// Hosts is the fleet's initial host count; targeted events pick IDs
	// in [0, 2*Hosts) so some deliberately name hosts that are already
	// gone or never existed (the fleet must treat those as no-ops).
	Hosts int
	// Racks, when > 0, adds rack-level targets to the mix: some events
	// become ChurnRackFail with rack indices in [0, 2*Racks), half
	// deliberately dangling. Zero keeps schedules byte-identical to
	// the flat generator.
	Racks int
}

// GenChurn synthesizes a random churn schedule — join, fail, and drain
// events (plus rack failures when the config has racks) at uniform
// times, half targeting the busiest host (-1) and half targeting
// explicit (possibly dangling) IDs. The same seed always yields the
// same schedule; the determinism property tests fuzz fleet runs with
// these schedules across seeds.
func GenChurn(seed uint64, cfg ChurnConfig) []ChurnEvent {
	rng := rand.New(rand.NewPCG(seed, 0xc4123))
	kinds := 3
	if cfg.Racks > 0 {
		kinds = 4
	}
	events := make([]ChurnEvent, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := ChurnEvent{
			T:    sim.Time(1 + rng.Int64N(int64(cfg.Duration)-1)),
			Kind: ChurnKind(rng.IntN(kinds)),
			Host: -1,
		}
		if ev.Kind == ChurnRackFail {
			ev.Host = rng.IntN(2 * cfg.Racks)
		} else if rng.IntN(2) == 0 && cfg.Hosts > 0 {
			ev.Host = rng.IntN(2 * cfg.Hosts)
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}

// Merge combines traces into one sorted stream, tagging each invocation
// with its source index.
type TaggedInvocation struct {
	T    sim.Time
	Func int
}

// Merge flattens traces into a single time-ordered invocation stream.
func Merge(traces []*Trace) []TaggedInvocation {
	var out []TaggedInvocation
	for fi, tr := range traces {
		for _, t := range tr.Times {
			out = append(out, TaggedInvocation{T: t, Func: fi})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// ChurnPoint is one minute of Figure 2: instances created and evicted.
type ChurnPoint struct {
	Minute    int
	Creations int
	Evictions int
}

// InstanceChurn replays a trace against a simple instance pool — reuse
// an idle instance when one exists, create one otherwise, evict after
// keepAlive of idleness — and reports per-minute creations and
// evictions, the analysis behind Figure 2.
func InstanceChurn(tr *Trace, execTime, keepAlive sim.Duration, duration sim.Duration) []ChurnPoint {
	minutes := int((duration + sim.Minute - 1) / sim.Minute)
	points := make([]ChurnPoint, minutes)
	for i := range points {
		points[i].Minute = i
	}
	// The pool stays sorted by freeAt without ever sorting: invocation
	// times are non-decreasing and execTime is constant, so each new
	// instance's freeAt is >= every existing one, and expiries (freeAt +
	// keepAlive) leave from the front. head is the eviction cursor into
	// the sorted slice.
	type inst struct{ freeAt sim.Time }
	var idle []inst // idle[head:] is the live pool, sorted by freeAt
	head := 0

	evictBefore := func(now sim.Time) {
		for head < len(idle) {
			expiry := idle[head].freeAt.Add(keepAlive)
			if expiry > now {
				break
			}
			m := int(sim.Duration(expiry) / sim.Minute)
			if m >= 0 && m < minutes {
				points[m].Evictions++
			}
			head++
		}
		if head > len(idle)/2 {
			idle = append(idle[:0], idle[head:]...)
			head = 0
		}
	}

	for _, t := range tr.Times {
		evictBefore(t)
		m := int(sim.Duration(t) / sim.Minute)
		if m >= minutes {
			break
		}
		// Reuse the most-recently-freed idle instance that is actually
		// free (LIFO keeps the warm pool small, like keep-alive reuse):
		// the last entry with freeAt <= t, found by binary search.
		lo, hi := head, len(idle)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if idle[mid].freeAt <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo > head {
			idle = append(idle[:lo-1], idle[lo:]...)
		} else {
			points[m].Creations++
		}
		idle = append(idle, inst{freeAt: t.Add(execTime)})
	}
	evictBefore(sim.Time(duration + sim.Duration(keepAlive)))
	return points
}

// PeakConcurrency returns the maximum number of simultaneously busy
// instances a trace needs given the execution time — used to calibrate
// the concurrency factor N per VM (§6.2).
func PeakConcurrency(tr *Trace, execTime sim.Duration) int {
	type ev struct {
		t     sim.Time
		delta int
	}
	evs := make([]ev, 0, 2*len(tr.Times))
	for _, t := range tr.Times {
		evs = append(evs, ev{t, +1}, ev{t.Add(execTime), -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
