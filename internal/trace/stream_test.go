package trace

import (
	"hash/fnv"
	"math/rand/v2"
	"testing"

	"squeezy/internal/sim"
)

// fpTimes folds times into an FNV-1a fingerprint (little-endian int64s).
func fpTimes(h interface{ Write([]byte) (int, error) }, ts []sim.Time) {
	var buf [8]byte
	for _, t := range ts {
		v := uint64(t)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
}

func fpTrace(tr *Trace) uint64 {
	h := fnv.New64a()
	fpTimes(h, tr.Times)
	return h.Sum64()
}

func fpTraces(trs []*Trace) uint64 {
	h := fnv.New64a()
	for _, tr := range trs {
		fpTimes(h, tr.Times)
		h.Write([]byte{0xff})
	}
	return h.Sum64()
}

func fpTagged(m []TaggedInvocation) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, ti := range m {
		for _, v := range []uint64{uint64(ti.T), uint64(ti.Func)} {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func drain(s Stream) []TaggedInvocation {
	var out []TaggedInvocation
	for {
		inv, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, inv)
	}
}

// Golden fingerprints computed from the PRE-streaming generators (the
// materialize-everything code this PR replaced), for a fixed grid of
// seeds x configs. The streaming collectors must reproduce them bit for
// bit: these constants are the proof that the cursor refactor changed
// nothing.
var goldenBursty = map[[2]uint64]uint64{
	{0, 1}: 0xc78b7ec6b305fb93, {0, 2}: 0x9b6e634ee59cc523, {0, 3}: 0x02ef9fa270493508, {0, 42}: 0x8adad739e35d684d,
	{1, 1}: 0x1b18d5a22e03b50e, {1, 2}: 0x93670ac683ae3292, {1, 3}: 0x2b4a97ebe350c2be, {1, 42}: 0x3f80c5d93fa411e9,
	{2, 1}: 0xef158c54b6b20a2d, {2, 2}: 0xa061b2ea8fe76146, {2, 3}: 0x6f391e13a5f7e09b, {2, 42}: 0xc5318279621577f4,
	{3, 1}: 0x482f4b607afc5045, {3, 2}: 0xd6ada710da3854ff, {3, 3}: 0x81a5d45d6e149cf7, {3, 42}: 0x1fb91d56f50900ba,
}

var goldenFleet = map[[2]uint64]uint64{
	{0, 1}: 0x15dc490be6ec2de7, {0, 7}: 0xd2a9ab4e92a13a32,
	{1, 1}: 0xc5c6780e17c486fc, {1, 7}: 0x63add4a8045e1b86,
	{2, 1}: 0x51ab305151ae5b8c, {2, 7}: 0x6eb493615f399bee,
}

var goldenTopTen = map[[2]uint64]uint64{
	{1, 2}: 0x048529822e8fb0a0, {1, 5}: 0xe63d147c9c57ed63,
	{5, 2}: 0x3c24c3a3a01b6bed, {5, 5}: 0x2f4d82772fc5b27d,
}

const goldenMergedFleet0Seed3 uint64 = 0xa5c6954e4a5de119

func goldenBurstyConfigs() []BurstyConfig {
	return []BurstyConfig{
		{Duration: 5 * sim.Minute, BaseRPS: 0.5, BurstRPS: 20, BurstLen: 10 * sim.Second, BurstGap: 30 * sim.Second},
		{Duration: 10 * sim.Minute, BaseRPS: 1, BurstRPS: 50, BurstLen: 20 * sim.Second, BurstGap: 60 * sim.Second},
		{Duration: 2 * sim.Minute, BaseRPS: 0, BurstRPS: 40, BurstLen: 5 * sim.Second, BurstGap: 15 * sim.Second},
		{Duration: sim.Minute, BaseRPS: 3, BurstRPS: 3, BurstLen: 10 * sim.Second, BurstGap: 10 * sim.Second},
	}
}

func goldenFleetConfigs() []FleetConfig {
	return []FleetConfig{
		{Funcs: 50, Duration: 5 * sim.Minute, TotalBaseRPS: 10, TotalBurstRPS: 60},
		{Funcs: 4, Duration: sim.Minute, TotalBaseRPS: 12, TotalBurstRPS: 12},
		{Funcs: 12, Duration: 3 * sim.Minute, TotalBaseRPS: 6, TotalBurstRPS: 30, ZipfS: 1.4, BurstLen: 10 * sim.Second, BurstGap: 20 * sim.Second},
	}
}

// TestGoldenFingerprints pins the streaming generators to the exact
// output of the pre-refactor materialized generators.
func TestGoldenFingerprints(t *testing.T) {
	for ci, cfg := range goldenBurstyConfigs() {
		for _, seed := range []uint64{1, 2, 3, 42} {
			if got, want := fpTrace(GenBursty(seed, cfg)), goldenBursty[[2]uint64{uint64(ci), seed}]; got != want {
				t.Errorf("GenBursty cfg=%d seed=%d fingerprint %#016x, golden %#016x", ci, seed, got, want)
			}
		}
	}
	for ci, cfg := range goldenFleetConfigs() {
		for _, seed := range []uint64{1, 7} {
			if got, want := fpTraces(GenFleet(seed, cfg)), goldenFleet[[2]uint64{uint64(ci), seed}]; got != want {
				t.Errorf("GenFleet cfg=%d seed=%d fingerprint %#016x, golden %#016x", ci, seed, got, want)
			}
		}
	}
	for _, seed := range []uint64{1, 5} {
		for _, mins := range []uint64{2, 5} {
			got := fpTraces(GenTopTen(seed, sim.Duration(mins)*sim.Minute))
			if want := goldenTopTen[[2]uint64{seed, mins}]; got != want {
				t.Errorf("GenTopTen seed=%d dur=%dm fingerprint %#016x, golden %#016x", seed, mins, got, want)
			}
		}
	}
	m := Merge(GenFleet(3, goldenFleetConfigs()[0]))
	if got := fpTagged(m); got != goldenMergedFleet0Seed3 {
		t.Errorf("Merge(GenFleet) fingerprint %#016x, golden %#016x", got, goldenMergedFleet0Seed3)
	}
}

// TestStreamMatchesMaterialized fuzzes seeds x configs and checks that
// draining the cursor yields exactly the collected trace, and that the
// merged fleet stream yields exactly Merge(GenFleet(...)) — same times,
// same function tags, same order.
func TestStreamMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 0xf022))
	for round := 0; round < 30; round++ {
		seed := rng.Uint64()
		bc := BurstyConfig{
			Duration: sim.Duration(1+rng.IntN(10)) * sim.Minute,
			BaseRPS:  rng.Float64() * 5,
			BurstRPS: rng.Float64() * 80,
			BurstLen: sim.Duration(1+rng.IntN(30)) * sim.Second,
			BurstGap: sim.Duration(1+rng.IntN(90)) * sim.Second,
		}
		if round%5 == 0 {
			bc.Modulation = []DiurnalConfig{
				{Period: sim.Duration(1+rng.IntN(5)) * sim.Minute, Amplitude: rng.Float64() * 0.9, Phase: rng.Float64() * 6.28},
			}
		}
		tr := GenBursty(seed, bc)
		streamed := drain(NewBursty(seed, bc))
		if len(streamed) != tr.Len() {
			t.Fatalf("round %d: stream yields %d, materialized %d", round, len(streamed), tr.Len())
		}
		for i, inv := range streamed {
			if inv.T != tr.Times[i] {
				t.Fatalf("round %d: stream diverges at %d: %d vs %d", round, i, inv.T, tr.Times[i])
			}
		}

		fc := FleetConfig{
			Funcs:         1 + rng.IntN(24),
			Duration:      sim.Duration(1+rng.IntN(5)) * sim.Minute,
			ZipfS:         0.8 + rng.Float64(),
			TotalBaseRPS:  rng.Float64() * 10,
			TotalBurstRPS: rng.Float64() * 50,
			Modulation:    bc.Modulation,
		}
		merged := Merge(GenFleet(seed, fc))
		streamedFleet := drain(NewFleetStream(seed, fc))
		if len(streamedFleet) != len(merged) {
			t.Fatalf("round %d: fleet stream yields %d, merged %d", round, len(streamedFleet), len(merged))
		}
		for i := range merged {
			if streamedFleet[i] != merged[i] {
				t.Fatalf("round %d: fleet stream diverges at %d: %+v vs %+v", round, i, streamedFleet[i], merged[i])
			}
		}
	}
}

// TestTopTenStreamMatches checks the merged top-ten stream against the
// materialized Merge(GenTopTen(...)).
func TestTopTenStreamMatches(t *testing.T) {
	for _, seed := range []uint64{1, 9} {
		merged := Merge(GenTopTen(seed, 2*sim.Minute))
		streamed := drain(NewTopTenStream(seed, 2*sim.Minute))
		if len(streamed) != len(merged) {
			t.Fatalf("seed %d: %d streamed vs %d merged", seed, len(streamed), len(merged))
		}
		for i := range merged {
			if streamed[i] != merged[i] {
				t.Fatalf("seed %d: diverges at %d", seed, i)
			}
		}
	}
}

// TestDiurnalModulationShape checks that a 24h-period modulation layer
// actually moves load between peak and trough halves of the cycle, that
// an explicit zero-amplitude layer is byte-identical to no modulation,
// and that weekly layering composes.
func TestDiurnalModulationShape(t *testing.T) {
	day := 24 * sim.Hour
	base := BurstyConfig{
		Duration: 2 * sim.Duration(day), BaseRPS: 0.2, BurstRPS: 0.2,
		BurstLen: 20 * sim.Second, BurstGap: 45 * sim.Second,
	}
	mod := base
	// sin peaks in the first half-day and troughs in the second.
	mod.Modulation = []DiurnalConfig{{Period: day, Amplitude: 0.8}}
	tr := GenBursty(5, mod)
	var peak, trough int
	for _, ts := range tr.Times {
		phase := sim.Duration(ts) % day
		if phase < day/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak < 2*trough {
		t.Fatalf("diurnal peak not dominant: peak=%d trough=%d", peak, trough)
	}

	zero := base
	zero.Modulation = []DiurnalConfig{{Period: day, Amplitude: 0}}
	plain, flat := GenBursty(5, base), GenBursty(5, zero)
	if plain.Len() != flat.Len() {
		t.Fatalf("zero-amplitude modulation changed the trace: %d vs %d", plain.Len(), flat.Len())
	}
	for i := range plain.Times {
		if plain.Times[i] != flat.Times[i] {
			t.Fatalf("zero-amplitude modulation diverges at %d", i)
		}
	}

	weekly := mod
	weekly.Modulation = append(append([]DiurnalConfig(nil), mod.Modulation...),
		DiurnalConfig{Period: 7 * sim.Duration(day), Amplitude: 0.3})
	wtr := GenBursty(5, weekly)
	if wtr.Len() == 0 || wtr.Len() == tr.Len() {
		t.Fatalf("weekly layer had no effect: %d vs %d", wtr.Len(), tr.Len())
	}
}

// TestModulationBoundedBelow: a deep trough (amplitude ~1) must slow
// the generator, not stall it — times keep strictly increasing and the
// stream terminates.
func TestModulationBoundedBelow(t *testing.T) {
	tr := GenBursty(3, BurstyConfig{
		Duration: 30 * sim.Minute, BaseRPS: 1, BurstRPS: 10,
		BurstLen: 20 * sim.Second, BurstGap: 45 * sim.Second,
		Modulation: []DiurnalConfig{{Period: sim.Hour, Amplitude: 0.999}},
	})
	for i := 1; i < len(tr.Times); i++ {
		if tr.Times[i] <= tr.Times[i-1] {
			t.Fatalf("times not strictly increasing at %d", i)
		}
	}
}

// TestFleetStreamFuncs: the merger exposes its source count.
func TestFleetStreamFuncs(t *testing.T) {
	fs := NewFleetStream(1, FleetConfig{Funcs: 7, Duration: sim.Minute, TotalBaseRPS: 1, TotalBurstRPS: 5})
	if fs.Funcs() != 7 {
		t.Fatalf("Funcs() = %d, want 7", fs.Funcs())
	}
	if got := drain(NewFleetStream(1, FleetConfig{})); len(got) != 0 {
		t.Fatalf("empty fleet stream yields %d invocations", len(got))
	}
}
