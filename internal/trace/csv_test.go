package trace

import (
	"bytes"
	"strings"
	"testing"

	"squeezy/internal/sim"
)

// TestCSVEventsRoundTrip: writing a fleet stream to the events layout
// and reading it back reproduces the stream bit for bit.
func TestCSVEventsRoundTrip(t *testing.T) {
	cfg := FleetConfig{Funcs: 8, Duration: 2 * sim.Minute, TotalBaseRPS: 4, TotalBurstRPS: 20}
	var buf bytes.Buffer
	n, err := WriteCSV(&buf, NewFleetStream(11, cfg))
	if err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := Merge(GenFleet(11, cfg))
	if n != len(want) {
		t.Fatalf("wrote %d rows, want %d", n, len(want))
	}
	cs, err := OpenCSV(&buf)
	if err != nil {
		t.Fatalf("OpenCSV: %v", err)
	}
	got := drain(cs)
	if cs.Err() != nil {
		t.Fatalf("stream error: %v", cs.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("read %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestCSVCountsExpansion: the tracegen -csv per-minute count layout
// re-expands into evenly spaced invocations, merged across functions
// in (time, func) order, with per-minute counts preserved.
func TestCSVCountsExpansion(t *testing.T) {
	in := "func,minute,invocations\n0,0,3\n0,2,1\n1,0,2\n1,1,4\n"
	cs, err := OpenCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("OpenCSV: %v", err)
	}
	got := drain(cs)
	if cs.Err() != nil {
		t.Fatalf("stream error: %v", cs.Err())
	}
	if len(got) != 10 {
		t.Fatalf("expanded %d invocations, want 10", len(got))
	}
	counts := map[[2]int]int{}
	for i, inv := range got {
		if i > 0 && (inv.T < got[i-1].T || (inv.T == got[i-1].T && inv.Func < got[i-1].Func)) {
			t.Fatalf("expansion not sorted at %d", i)
		}
		m := int(sim.Duration(inv.T) / sim.Minute)
		counts[[2]int{inv.Func, m}]++
	}
	want := map[[2]int]int{{0, 0}: 3, {0, 2}: 1, {1, 0}: 2, {1, 1}: 4}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("func %d minute %d: %d invocations, want %d", k[0], k[1], counts[k], v)
		}
	}

	// Single-trace layout: no func column, everything lands on func 0.
	single, err := OpenCSV(strings.NewReader("minute,invocations\n0,2\n1,1\n"))
	if err != nil {
		t.Fatalf("OpenCSV single: %v", err)
	}
	sgot := drain(single)
	if len(sgot) != 3 || sgot[0].Func != 0 {
		t.Fatalf("single-trace expansion wrong: %+v", sgot)
	}
}

// TestCSVErrors: malformed headers fail OpenCSV; malformed or unsorted
// event rows surface through Err after Next returns false.
func TestCSVErrors(t *testing.T) {
	if _, err := OpenCSV(strings.NewReader("a,b,c,d\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	cs, err := OpenCSV(strings.NewReader("func,t_ns\n0,100\nx,200\n"))
	if err != nil {
		t.Fatalf("OpenCSV: %v", err)
	}
	drain(cs)
	if cs.Err() == nil {
		t.Fatal("malformed event row not reported")
	}
	cs, err = OpenCSV(strings.NewReader("func,t_ns\n0,200\n0,100\n"))
	if err != nil {
		t.Fatalf("OpenCSV: %v", err)
	}
	if got := drain(cs); len(got) != 1 || cs.Err() == nil {
		t.Fatalf("unsorted event rows not reported (got %d rows, err %v)", len(got), cs.Err())
	}
	if _, err := OpenCSV(strings.NewReader("func,minute,invocations\n0,1,2\n0,1,3\n")); err == nil {
		t.Fatal("duplicate count minute accepted")
	}
}
