package hostmem

import (
	"fmt"

	"squeezy/internal/units"
)

// Host is the host memory pool. A zero capacity means unlimited.
type Host struct {
	capacityPages  int64
	committedPages int64
	populatedPages int64
}

// New creates a host pool with the given capacity in bytes; 0 means
// unlimited (the "Abundant Memory" scenario).
func New(capacityBytes int64) *Host {
	return &Host{capacityPages: units.BytesToPages(capacityBytes)}
}

// Reset empties the pool and re-dimensions it to a new capacity in
// bytes (0 = unlimited), as if freshly constructed by New.
func (h *Host) Reset(capacityBytes int64) {
	h.capacityPages = units.BytesToPages(capacityBytes)
	h.committedPages = 0
	h.populatedPages = 0
}

// CapacityPages returns the capacity in pages (0 = unlimited).
func (h *Host) CapacityPages() int64 { return h.capacityPages }

// CommittedPages returns the pages currently committed to VMs.
func (h *Host) CommittedPages() int64 { return h.committedPages }

// PopulatedPages returns the host frames currently backing guest pages.
func (h *Host) PopulatedPages() int64 { return h.populatedPages }

// FreeCommitPages returns how many more pages can be committed; it
// returns a very large value for an unlimited host.
func (h *Host) FreeCommitPages() int64 {
	if h.capacityPages == 0 {
		return 1 << 62
	}
	return h.capacityPages - h.committedPages
}

// TryCommit reserves pages of host memory for a plug operation. It
// fails (without side effects) when the reservation would exceed
// capacity.
func (h *Host) TryCommit(pages int64) bool {
	if pages < 0 {
		panic("hostmem: negative commit")
	}
	if h.capacityPages != 0 && h.committedPages+pages > h.capacityPages {
		return false
	}
	h.committedPages += pages
	return true
}

// Uncommit returns committed pages after an unplug. Populated frames
// must have been released first.
func (h *Host) Uncommit(pages int64) {
	if pages < 0 || pages > h.committedPages {
		panic(fmt.Sprintf("hostmem: bad uncommit %d (committed %d)", pages, h.committedPages))
	}
	h.committedPages -= pages
}

// Populate accounts for host frames faulted in by guest touches.
func (h *Host) Populate(pages int64) {
	if pages < 0 {
		panic("hostmem: negative populate")
	}
	h.populatedPages += pages
	if h.populatedPages > h.committedPages {
		panic(fmt.Sprintf("hostmem: populated %d exceeds committed %d", h.populatedPages, h.committedPages))
	}
}

// Release accounts for host frames released via madvise(MADV_DONTNEED).
func (h *Host) Release(pages int64) {
	if pages < 0 || pages > h.populatedPages {
		panic(fmt.Sprintf("hostmem: bad release %d (populated %d)", pages, h.populatedPages))
	}
	h.populatedPages -= pages
}
