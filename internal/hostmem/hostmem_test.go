package hostmem

import (
	"testing"

	"squeezy/internal/units"
)

func TestUnlimitedHost(t *testing.T) {
	h := New(0)
	if !h.TryCommit(1 << 40) {
		t.Fatal("unlimited host refused commit")
	}
	if h.FreeCommitPages() <= 0 {
		t.Fatal("unlimited host reports no free pages")
	}
}

func TestCommitBudget(t *testing.T) {
	h := New(1 * units.GiB)
	pages := units.BytesToPages(1 * units.GiB)
	if !h.TryCommit(pages) {
		t.Fatal("commit within capacity failed")
	}
	if h.TryCommit(1) {
		t.Fatal("commit beyond capacity succeeded")
	}
	if h.FreeCommitPages() != 0 {
		t.Fatalf("FreeCommitPages = %d", h.FreeCommitPages())
	}
	h.Uncommit(pages / 2)
	if !h.TryCommit(pages / 4) {
		t.Fatal("commit after uncommit failed")
	}
}

func TestPopulateRelease(t *testing.T) {
	h := New(1 * units.GiB)
	h.TryCommit(1000)
	h.Populate(600)
	if h.PopulatedPages() != 600 {
		t.Fatalf("PopulatedPages = %d", h.PopulatedPages())
	}
	h.Release(200)
	if h.PopulatedPages() != 400 {
		t.Fatalf("PopulatedPages = %d", h.PopulatedPages())
	}
}

func TestPopulateBeyondCommitPanics(t *testing.T) {
	h := New(1 * units.GiB)
	h.TryCommit(100)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Populate(101)
}

func TestReleaseBeyondPopulatedPanics(t *testing.T) {
	h := New(0)
	h.TryCommit(10)
	h.Populate(5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Release(6)
}

func TestUncommitTooMuchPanics(t *testing.T) {
	h := New(0)
	h.TryCommit(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Uncommit(11)
}
