// Package hostmem models the host's physical memory pool as the FaaS
// runtime and the VMMs see it.
//
// Two quantities matter to the paper's experiments:
//
//   - committed memory: guest physical memory currently plugged into
//     VMs. The runtime's memory broker admits scale-ups against this
//     budget (Figure 10 restricts it to ~70% of peak).
//   - populated memory: host frames actually backing touched guest
//     pages. Plugging commits memory without populating it; the first
//     guest touch populates a frame (nested page fault); unplugging
//     releases frames via madvise(MADV_DONTNEED). Figure 1's "idle host
//     memory" is populated memory that the guest no longer uses.
package hostmem
