// Package guestos models the guest Linux kernel's memory management as
// the paper depends on it: processes with lazily-faulted anonymous
// memory, a shared page cache for file mappings, fork/exit lifecycles,
// a reverse map from physical chunks to their owners, and the
// migration machinery the hot-unplug path leans on.
//
// The model is structural, not statistical: pages live in real zones
// managed by a real buddy allocator, so footprint interleaving across
// memory blocks — the phenomenon of Figure 3 that makes vanilla
// unplugging slow — emerges from the allocation history exactly as it
// does on Linux.
//
// Page state is maintained in bulk, never page-at-a-time: the EPT
// population bitmap works in word-masked ranges, the chunk reverse map
// is keyed by 128 MiB hotplug block, and zone occupancy questions
// resolve through the buddy allocator's per-region free counters. A
// Recycler caches the flat storage a kernel allocates (zone structs
// with their buddy ord spans, bitmap words, reverse-map buckets) so
// pooled simulation worlds rebuild kernels without reallocating; a
// kernel built from recycled arenas behaves identically to one built
// fresh.
package guestos
