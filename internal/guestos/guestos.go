package guestos

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sort"

	"squeezy/internal/costmodel"
	"squeezy/internal/mem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

// HugeOrder is the allocation order of a 2 MiB THP chunk.
const HugeOrder = 9

// Chunk is one allocated physical extent (2^Order pages) and its owner:
// either a process's anonymous memory or a cached file's pages. The
// per-block reverse map (Kernel.chunksIn) indexes chunks by hotplug
// block so the offline path can find and migrate them.
type Chunk struct {
	PFN   mem.PFN
	Order int
	Zone  *mem.Zone
	Proc  *Process    // nil for page-cache chunks
	File  *CachedFile // nil for anonymous chunks
}

// Pages returns the chunk size in pages.
func (c *Chunk) Pages() int64 { return 1 << c.Order }

// Process is a guest process (a function instance's container, or the
// in-guest agent).
type Process struct {
	PID  int
	Name string

	// AssignedZone, when non-nil, confines the process's anonymous
	// allocations to one zone — Squeezy's partition assignment. Nil
	// processes allocate from ZONE_MOVABLE like vanilla Linux.
	AssignedZone *mem.Zone

	anonChunks []*Chunk
	anonPages  int64
	mappedFile map[*CachedFile]int64 // pages of each file this process mapped
	exited     bool
}

// AnonPages returns the process's resident anonymous pages.
func (p *Process) AnonPages() int64 { return p.anonPages }

// Exited reports whether the process has exited.
func (p *Process) Exited() bool { return p.exited }

// CachedFile is a file resident in the guest page cache, shared across
// every process that maps it (container rootfs, runtime libraries).
type CachedFile struct {
	Name string
	Zone *mem.Zone // where its pages live

	chunks        []*Chunk
	residentPages int64
	mapCount      int
}

// ResidentPages returns the file's pages currently in the page cache.
func (f *CachedFile) ResidentPages() int64 { return f.residentPages }

// MapCount returns how many processes currently map the file.
func (f *CachedFile) MapCount() int { return f.mapCount }

// Kernel is the guest OS memory manager of one VM.
type Kernel struct {
	Sched *sim.Scheduler
	Cost  *costmodel.Model
	VM    *vmm.VM

	// Normal is the boot memory zone (kernel text/data, the agent);
	// never hot-unpluggable.
	Normal *mem.Zone
	// Movable is ZONE_MOVABLE: user pages and page cache on the
	// vanilla path; hotplugged memory lands here.
	Movable *mem.Zone
	// SharedZone, when non-nil, receives file-backed pages instead of
	// Movable — Squeezy's shared partition.
	SharedZone *mem.Zone

	// OnProcExit and OnProcFork let the Squeezy manager observe
	// process lifecycle (partition refcounting) without a dependency
	// cycle.
	OnProcExit func(*Process)
	OnProcFork func(parent, child *Process)

	zones   []*mem.Zone
	nextPFN mem.PFN

	nextPID int
	procs   map[int]*Process
	// chunksIn is the reverse map: allocated chunks indexed by hotplug
	// block (PFN / PagesPerBlock), so the offline path's range queries
	// walk the handful of chunks in a block instead of probing a map
	// once per page frame. Chunks are naturally aligned and at most
	// 2^MaxOrder pages, so no chunk straddles a block boundary.
	chunksIn []map[*Chunk]struct{}
	files    map[string]*CachedFile

	populated bitset // per-PFN: guest page backed by a host frame

	recycle *Recycler // nil unless the kernel was built through one
}

// Recycler caches the flat storage a guest kernel allocates — zone
// structs with their buddy ord spans and region counters, the
// populated bitmap's word array, and the per-block reverse-map buckets
// — so a worker simulating many worlds in sequence reuses one arena
// set instead of reconstructing it per run. Pass it via Config.Recycle
// and hand a dead kernel's storage back with Kernel.Release.
//
// Reused storage is always reset to its freshly-constructed state
// before it is handed out, so a kernel built from recycled arenas
// behaves identically to one built from fresh ones. A Recycler is not
// safe for concurrent use: each worker owns its own.
type Recycler struct {
	zones *mem.Pool
	words [][]uint64
	rmaps []map[*Chunk]struct{}
}

// NewRecycler returns an empty recycler.
func NewRecycler() *Recycler { return &Recycler{zones: mem.NewPool()} }

// zone hands out a pooled (or fresh) zone. A nil recycler constructs
// fresh zones.
func (r *Recycler) zone(name string, kind mem.ZoneKind, start mem.PFN, npages int64) *mem.Zone {
	if r == nil {
		return mem.NewZone(name, kind, start, npages)
	}
	return r.zones.Zone(name, kind, start, npages)
}

// takeWords hands out a recycled bitmap backing (length zero — the
// bitset appends explicit zero words, so stale content is harmless).
func (r *Recycler) takeWords() []uint64 {
	if r == nil || len(r.words) == 0 {
		return nil
	}
	w := r.words[len(r.words)-1]
	r.words = r.words[:len(r.words)-1]
	return w[:0]
}

// takeRmap hands out a cleared reverse-map bucket. Retired buckets are
// cleared here, on reuse, not at Release time: a released kernel whose
// buckets are never needed again (the last cell of a worker's run)
// then pays nothing for them.
func (r *Recycler) takeRmap() map[*Chunk]struct{} {
	if r == nil || len(r.rmaps) == 0 {
		return make(map[*Chunk]struct{})
	}
	m := r.rmaps[len(r.rmaps)-1]
	r.rmaps = r.rmaps[:len(r.rmaps)-1]
	clear(m)
	return m
}

// Release retires the kernel's arena storage into the recycler it was
// built with (a no-op for kernels built without one). The kernel must
// not be used afterwards: its zones, bitmap, and reverse map now
// belong to the recycler and will back future kernels.
func (k *Kernel) Release() {
	r := k.recycle
	if r == nil {
		return
	}
	for _, z := range k.zones {
		r.zones.Retire(z)
	}
	k.zones = nil
	k.Normal, k.Movable, k.SharedZone = nil, nil, nil
	if k.populated.words != nil {
		r.words = append(r.words, k.populated.words)
		k.populated.words = nil
	}
	for i, m := range k.chunksIn {
		if m != nil {
			r.rmaps = append(r.rmaps, m) // cleared lazily by takeRmap
			k.chunksIn[i] = nil
		}
	}
	k.chunksIn = nil
	k.recycle = nil
}

// Config sizes a guest kernel.
type Config struct {
	// BootBytes is the Normal-zone span (block-aligned, fully online at
	// boot).
	BootBytes int64
	// MovableBytes is the ZONE_MOVABLE span. Blocks start offline; a
	// hotplug driver onlines them, or OnlineAllMovable does for
	// statically sized VMs.
	MovableBytes int64
	// KernelResidentBytes is the boot footprint of the guest kernel and
	// agent, allocated from Normal and populated in the host.
	KernelResidentBytes int64
	// Recycle, when non-nil, supplies recycled arena storage (zone
	// structs, buddy ord spans, bitmap words, reverse-map buckets)
	// harvested from kernels a previous simulation released.
	Recycle *Recycler
}

// NewKernel boots a guest kernel inside vm. The VM must have enough
// host commit budget for the boot memory (BootBytes is committed here;
// movable memory is committed as it is plugged).
func NewKernel(vm *vmm.VM, cfg Config) *Kernel {
	if cfg.BootBytes <= 0 {
		panic("guestos: BootBytes must be positive")
	}
	bootBytes := units.AlignUp(cfg.BootBytes, units.BlockSize)
	movBytes := units.AlignUp(cfg.MovableBytes, units.BlockSize)
	k := &Kernel{
		Sched:   vm.Sched,
		Cost:    vm.Cost,
		VM:      vm,
		procs:   make(map[int]*Process),
		files:   make(map[string]*CachedFile),
		nextPID: 1,
		recycle: cfg.Recycle,
	}
	k.populated.words = cfg.Recycle.takeWords()
	k.Normal = k.addZone("Normal", mem.ZoneNormal, bootBytes)
	for i := 0; i < k.Normal.Blocks(); i++ {
		k.Normal.OnlineBlock(i)
	}
	if !vm.Commit(units.BytesToPages(bootBytes)) {
		panic(fmt.Sprintf("guestos: host cannot back boot memory of %s", vm.Name))
	}
	if movBytes > 0 {
		k.Movable = k.addZone("Movable", mem.ZoneMovable, movBytes)
	}
	if cfg.KernelResidentBytes > 0 {
		kp := k.Spawn("kernel")
		kp.AssignedZone = k.Normal // kernel allocations are non-movable
		if _, ok := k.TouchAnon(kp, cfg.KernelResidentBytes, HugeOrder); !ok {
			panic("guestos: boot memory too small for kernel footprint")
		}
	}
	return k
}

// addZone appends a zone of the given byte span to the guest physical
// address space.
func (k *Kernel) addZone(name string, kind mem.ZoneKind, bytes int64) *mem.Zone {
	pages := units.BytesToPages(units.AlignUp(bytes, units.BlockSize))
	z := k.recycle.zone(name, kind, k.nextPFN, pages)
	k.nextPFN += pages
	k.zones = append(k.zones, z)
	k.populated.grow(k.nextPFN)
	for int64(len(k.chunksIn)) < k.nextPFN/units.PagesPerBlock {
		k.chunksIn = append(k.chunksIn, nil)
	}
	return z
}

// addOwner registers a chunk in the per-block reverse map.
func (k *Kernel) addOwner(c *Chunk) {
	b := c.PFN / units.PagesPerBlock
	m := k.chunksIn[b]
	if m == nil {
		m = k.recycle.takeRmap()
		k.chunksIn[b] = m
	}
	m[c] = struct{}{}
}

// delOwner removes a chunk from the per-block reverse map.
func (k *Kernel) delOwner(c *Chunk) {
	delete(k.chunksIn[c.PFN/units.PagesPerBlock], c)
}

// AddZone registers an extra zone (a Squeezy partition) spanning bytes.
// Its blocks start offline.
func (k *Kernel) AddZone(name string, kind mem.ZoneKind, bytes int64) *mem.Zone {
	return k.addZone(name, kind, bytes)
}

// Zones returns all registered zones in address order.
func (k *Kernel) Zones() []*mem.Zone { return k.zones }

// OnlineAllMovable onlines every movable block, modelling a statically
// sized (non-hotplug) VM. The host commit for the whole span must
// succeed.
func (k *Kernel) OnlineAllMovable() {
	if k.Movable == nil {
		return
	}
	for i := 0; i < k.Movable.Blocks(); i++ {
		if !k.Movable.BlockIsOnline(i) {
			if !k.VM.Commit(units.PagesPerBlock) {
				panic("guestos: host cannot back static movable memory")
			}
			k.Movable.OnlineBlock(i)
		}
	}
}

// --- process lifecycle ---

// Spawn creates a process.
func (k *Kernel) Spawn(name string) *Process {
	p := &Process{
		PID:        k.nextPID,
		Name:       name,
		mappedFile: make(map[*CachedFile]int64),
	}
	k.nextPID++
	k.procs[p.PID] = p
	return p
}

// Fork creates a child process inheriting the parent's zone assignment
// (Squeezy co-locates a fork's memory in the parent's partition).
func (k *Kernel) Fork(parent *Process, name string) *Process {
	if parent.exited {
		panic("guestos: fork from exited process")
	}
	child := k.Spawn(name)
	child.AssignedZone = parent.AssignedZone
	if k.OnProcFork != nil {
		k.OnProcFork(parent, child)
	}
	return child
}

// Exit terminates a process: all anonymous chunks return to their
// zones, file map counts drop (pages stay cached), and the exit hook
// fires. It returns the number of anonymous pages freed.
func (k *Kernel) Exit(p *Process) int64 {
	if p.exited {
		panic(fmt.Sprintf("guestos: double exit of pid %d", p.PID))
	}
	freed := p.anonPages
	for _, c := range p.anonChunks {
		k.delOwner(c)
		c.Zone.FreePage(c.PFN, c.Order)
	}
	p.anonChunks = nil
	p.anonPages = 0
	for f, pages := range p.mappedFile {
		f.mapCount--
		_ = pages
	}
	p.mappedFile = make(map[*CachedFile]int64)
	p.exited = true
	delete(k.procs, p.PID)
	if k.OnProcExit != nil {
		k.OnProcExit(p)
	}
	return freed
}

// NumProcs returns the number of live processes.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// --- memory touch paths ---

// anonZone returns the zone backing p's anonymous faults.
func (k *Kernel) anonZone(p *Process) *mem.Zone {
	if p.AssignedZone != nil {
		return p.AssignedZone
	}
	if k.Movable == nil {
		return k.Normal
	}
	return k.Movable
}

// fileZone returns the zone backing page-cache pages.
func (k *Kernel) fileZone() *mem.Zone {
	if k.SharedZone != nil {
		return k.SharedZone
	}
	if k.Movable == nil {
		return k.Normal
	}
	return k.Movable
}

// TouchAnon lazily faults bytes of fresh anonymous memory into p at the
// given allocation order (HugeOrder for THP-backed workloads, 0 for 4
// KiB). It returns the guest CPU work consumed by fault handling,
// zeroing, and nested EPT faults. ok is false when the backing zone ran
// out of memory — the caller decides between OOM-killing (Squeezy
// partition overflow) and failing the allocation; any partially
// allocated chunks remain with the process and are released on Exit.
func (k *Kernel) TouchAnon(p *Process, bytes int64, order int) (work sim.Duration, ok bool) {
	if p.exited {
		panic(fmt.Sprintf("guestos: touch on exited pid %d", p.PID))
	}
	zone := k.anonZone(p)
	npages := units.BytesToPages(bytes)
	var allocated, fresh int64
	for allocated < npages {
		o := order
		pfn, got := zone.AllocPage(o)
		for !got && o > 0 {
			// Fall back to smaller orders under fragmentation, as the
			// THP fault path does.
			o--
			pfn, got = zone.AllocPage(o)
		}
		if !got {
			work += k.anonWork(allocated, fresh)
			return work, false
		}
		c := &Chunk{PFN: pfn, Order: o, Zone: zone, Proc: p}
		k.addOwner(c)
		p.anonChunks = append(p.anonChunks, c)
		p.anonPages += c.Pages()
		allocated += c.Pages()
		fresh += k.markPopulated(pfn, c.Pages())
	}
	return k.anonWork(allocated, fresh), true
}

func (k *Kernel) anonWork(pages, fresh int64) sim.Duration {
	w := sim.Duration(pages) * (k.Cost.GuestFaultPerPage + k.Cost.ZeroPerPage)
	if fresh > 0 {
		w += k.VM.PopulatePages(fresh)
	}
	return w
}

// FreeAnon releases bytes of p's anonymous memory, newest allocations
// first (memhog-style churn). It returns the pages actually freed
// (bounded by the process's resident set).
func (k *Kernel) FreeAnon(p *Process, bytes int64) int64 {
	target := units.BytesToPages(bytes)
	var freed int64
	for freed < target && len(p.anonChunks) > 0 {
		c := p.anonChunks[len(p.anonChunks)-1]
		p.anonChunks = p.anonChunks[:len(p.anonChunks)-1]
		k.delOwner(c)
		c.Zone.FreePage(c.PFN, c.Order)
		p.anonPages -= c.Pages()
		freed += c.Pages()
	}
	return freed
}

// FreeAnonRandom releases bytes of p's anonymous memory, choosing
// victim chunks uniformly at random. Freeing in random order leaves the
// buddy freelists in the history-dependent, scattered state a
// long-running guest has — later allocations then spread across all
// memory blocks instead of packing the most recently onlined ones.
func (k *Kernel) FreeAnonRandom(p *Process, bytes int64, rng *rand.Rand) int64 {
	target := units.BytesToPages(bytes)
	var freed int64
	for freed < target && len(p.anonChunks) > 0 {
		i := rng.IntN(len(p.anonChunks))
		c := p.anonChunks[i]
		last := len(p.anonChunks) - 1
		p.anonChunks[i] = p.anonChunks[last]
		p.anonChunks = p.anonChunks[:last]
		k.delOwner(c)
		c.Zone.FreePage(c.PFN, c.Order)
		p.anonPages -= c.Pages()
		freed += c.Pages()
	}
	return freed
}

// ScrambleFreeLists gives a zone the allocator state of a long-running
// guest: it allocates every free page and releases them in random
// order, so the free lists no longer reflect onlining order. Only the
// zone's current free memory is touched; allocated pages are
// unaffected, and no host population happens (the pages are never
// "touched" by a user).
func (k *Kernel) ScrambleFreeLists(z *mem.Zone, rng *rand.Rand) {
	p := k.Spawn("scrambler")
	p.AssignedZone = z
	k.AllocReserved(p, z.NrFree())
	k.FreeAnonRandom(p, units.PagesToBytes(p.anonPages), rng)
	k.Exit(p)
}

// File returns (creating if needed) the named file of the given size.
func (k *Kernel) File(name string, sizeBytes int64) *CachedFile {
	if f, ok := k.files[name]; ok {
		return f
	}
	f := &CachedFile{Name: name, Zone: k.fileZone()}
	k.files[name] = f
	_ = sizeBytes
	return f
}

// TouchFile maps bytes of file f into p, faulting pages into the page
// cache on first access and reusing cached pages afterwards — the
// sharing that gives the N:1 model its memory savings (§6.3). The
// returned work covers major faults (allocate+zero+populate) for
// uncached pages and minor faults for cached ones. ok is false when the
// cache zone is exhausted.
func (k *Kernel) TouchFile(p *Process, f *CachedFile, bytes int64) (work sim.Duration, ok bool) {
	if p.exited {
		panic(fmt.Sprintf("guestos: touch on exited pid %d", p.PID))
	}
	npages := units.BytesToPages(bytes)
	if _, mapped := p.mappedFile[f]; !mapped {
		f.mapCount++
	}
	if npages > p.mappedFile[f] {
		p.mappedFile[f] = npages
	}
	// Minor faults for the pages already resident.
	cachedShare := npages
	if f.residentPages < cachedShare {
		cachedShare = f.residentPages
	}
	work = sim.Duration(cachedShare) * k.Cost.GuestFaultPerPage
	// Major faults extend the cache.
	var fresh int64
	for f.residentPages < npages {
		o := HugeOrder
		if remaining := npages - f.residentPages; remaining < 1<<HugeOrder {
			o = 0
		}
		pfn, got := f.Zone.AllocPage(o)
		for !got && o > 0 {
			o--
			pfn, got = f.Zone.AllocPage(o)
		}
		if !got {
			work += k.fileMajorWork(0, fresh)
			return work, false
		}
		c := &Chunk{PFN: pfn, Order: o, Zone: f.Zone, File: f}
		k.addOwner(c)
		f.chunks = append(f.chunks, c)
		f.residentPages += c.Pages()
		fresh += k.markPopulated(pfn, c.Pages())
		work += k.fileMajorWork(c.Pages(), 0)
	}
	if fresh > 0 {
		work += k.VM.PopulatePages(fresh)
	}
	return work, true
}

func (k *Kernel) fileMajorWork(pages, fresh int64) sim.Duration {
	w := sim.Duration(pages) * (k.Cost.GuestFaultPerPage + k.Cost.ZeroPerPage)
	if fresh > 0 {
		w += k.VM.PopulatePages(fresh)
	}
	return w
}

// DropFile evicts a file's pages from the page cache (used by tests and
// partition teardown). The file must have no mappers.
func (k *Kernel) DropFile(f *CachedFile) {
	if f.mapCount != 0 {
		panic(fmt.Sprintf("guestos: dropping mapped file %q (mapcount %d)", f.Name, f.mapCount))
	}
	for _, c := range f.chunks {
		k.delOwner(c)
		c.Zone.FreePage(c.PFN, c.Order)
	}
	f.chunks = nil
	f.residentPages = 0
	delete(k.files, f.Name)
}

// --- population (EPT) tracking ---

// markPopulated sets the populated bit for each page of the chunk and
// returns how many were newly populated (needing a nested fault). The
// whole chunk is one bulk bitset update, not a per-page loop.
func (k *Kernel) markPopulated(pfn mem.PFN, pages int64) int64 {
	return k.populated.setRange(pfn, pages)
}

// PopulatedInRange counts host-backed pages in [start, start+count).
func (k *Kernel) PopulatedInRange(start mem.PFN, count int64) int64 {
	return k.populated.countRange(start, count)
}

// ReleaseRange clears population state for an unplugged range and
// returns the host frames released.
func (k *Kernel) ReleaseRange(start mem.PFN, count int64) int64 {
	n := k.populated.clearRange(start, count)
	k.VM.ReleasePages(n)
	return n
}

// --- migration support for the offline path ---

// ChunksInRange returns the allocated chunks whose head lies inside
// [start, start+count), in ascending address order. It walks the
// per-block chunk index, so cost scales with the chunks present, not
// with the page span.
func (k *Kernel) ChunksInRange(start mem.PFN, count int64) []*Chunk {
	var out []*Chunk
	end := start + count
	lastBlock := int64(len(k.chunksIn)) - 1
	for b := start / units.PagesPerBlock; b <= lastBlock && b*units.PagesPerBlock < end; b++ {
		for c := range k.chunksIn[b] {
			if c.PFN >= start && c.PFN < end {
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PFN < out[j].PFN })
	return out
}

// MigrateChunk moves a chunk to a freshly allocated target in its zone
// (the source block must already be isolated so the allocator cannot
// hand back pages inside it). It returns the pages copied plus any
// extra guest latency from nested faults on unbacked target pages; ok
// is false when no target memory exists, which aborts the offline.
func (k *Kernel) MigrateChunk(c *Chunk) (pages int64, extra sim.Duration, ok bool) {
	dst, got := c.Zone.AllocPage(c.Order)
	if !got {
		return 0, 0, false
	}
	k.delOwner(c)
	c.PFN = dst
	k.addOwner(c)
	if fresh := k.markPopulated(dst, c.Pages()); fresh > 0 {
		extra = k.VM.PopulatePages(fresh)
	}
	return c.Pages(), extra, true
}

// AllocReserved grabs pages of free memory for p without touching them
// — the balloon driver's reservation path: no zeroing, no population,
// no fault cost. It allocates greedily at the largest orders available
// and returns the chunks it reserved and how many pages they total
// (bounded by free memory).
func (k *Kernel) AllocReserved(p *Process, pages int64) (chunks []*Chunk, got int64) {
	zone := k.anonZone(p)
	for got < pages {
		o := HugeOrder
		if remaining := pages - got; remaining < 1<<HugeOrder {
			o = 0
			for int64(1)<<(o+1) <= remaining {
				o++
			}
		}
		pfn, ok := zone.AllocPage(o)
		for !ok && o > 0 {
			o--
			pfn, ok = zone.AllocPage(o)
		}
		if !ok {
			break
		}
		c := &Chunk{PFN: pfn, Order: o, Zone: zone, Proc: p}
		k.addOwner(c)
		p.anonChunks = append(p.anonChunks, c)
		p.anonPages += c.Pages()
		chunks = append(chunks, c)
		got += c.Pages()
	}
	return chunks, got
}

// ReleaseChunkFrames releases the host frames backing a chunk's pages
// (madvise after a balloon report) and returns how many were released.
func (k *Kernel) ReleaseChunkFrames(c *Chunk) int64 {
	return k.ReleaseRange(c.PFN, c.Pages())
}

// ReturnIsolatedGaps aborts an offline attempt on an isolated block:
// every page in [start, start+count) that is not covered by an
// allocated chunk goes back to the zone's allocator. It returns the
// pages re-freed.
func (k *Kernel) ReturnIsolatedGaps(z *mem.Zone, start mem.PFN, count int64) int64 {
	var returned int64
	gapStart := start
	for _, c := range k.ChunksInRange(start, count) {
		if c.PFN > gapStart {
			z.FreePageRange(gapStart, c.PFN-gapStart)
			returned += c.PFN - gapStart
		}
		gapStart = c.PFN + c.Pages()
	}
	if end := start + count; end > gapStart {
		z.FreePageRange(gapStart, end-gapStart)
		returned += end - gapStart
	}
	return returned
}

// --- accounting ---

// AllocatedPages returns guest-allocated pages across all zones — the
// guest's view of memory usage (Figure 1, guest line).
func (k *Kernel) AllocatedPages() int64 {
	var n int64
	for _, z := range k.zones {
		n += z.NrAllocated()
	}
	return n
}

// OnlinePages returns online pages across all zones.
func (k *Kernel) OnlinePages() int64 {
	var n int64
	for _, z := range k.zones {
		n += z.NrOnline()
	}
	return n
}

// CheckInvariants validates cross-layer consistency; O(total span), for
// tests.
func (k *Kernel) CheckInvariants() error {
	for _, z := range k.zones {
		if err := z.CheckInvariants(); err != nil {
			return err
		}
	}
	var owned int64
	for b, m := range k.chunksIn {
		for c := range m {
			if c.PFN/units.PagesPerBlock != int64(b) {
				return fmt.Errorf("rmap block %d != chunk head %d's block", b, c.PFN)
			}
			if !c.Zone.Contains(c.PFN) {
				return fmt.Errorf("chunk %d outside its zone %q", c.PFN, c.Zone.Name)
			}
			owned += c.Pages()
		}
	}
	var allocated int64
	for _, z := range k.zones {
		allocated += z.NrAllocated()
	}
	if owned != allocated {
		return fmt.Errorf("rmap covers %d pages, zones report %d allocated", owned, allocated)
	}
	return nil
}

// --- bitset ---

type bitset struct{ words []uint64 }

func (b *bitset) grow(n int64) {
	need := int((n + 63) / 64)
	for len(b.words) < need {
		b.words = append(b.words, 0)
	}
}

// rangeMasks yields the word span [wlo, whi] of bit range [start,
// start+n) and the partial masks for the first and last word.
func rangeMasks(start, n int64) (wlo, whi int64, first, last uint64) {
	end := start + n - 1
	wlo, whi = start/64, end/64
	first = ^uint64(0) << (start % 64)
	last = ^uint64(0) >> (63 - end%64)
	return wlo, whi, first, last
}

// setRange sets bits [start, start+n), returning how many were
// previously clear. Whole 64-bit words are handled with single
// mask-and-popcount operations.
func (b *bitset) setRange(start, n int64) (fresh int64) {
	if n <= 0 {
		return 0
	}
	wlo, whi, first, last := rangeMasks(start, n)
	if wlo == whi {
		m := first & last
		fresh = int64(bits.OnesCount64(m &^ b.words[wlo]))
		b.words[wlo] |= m
		return fresh
	}
	fresh = int64(bits.OnesCount64(first &^ b.words[wlo]))
	b.words[wlo] |= first
	for w := wlo + 1; w < whi; w++ {
		fresh += int64(64 - bits.OnesCount64(b.words[w]))
		b.words[w] = ^uint64(0)
	}
	fresh += int64(bits.OnesCount64(last &^ b.words[whi]))
	b.words[whi] |= last
	return fresh
}

// clearRange clears bits [start, start+n), returning how many were
// previously set.
func (b *bitset) clearRange(start, n int64) (cleared int64) {
	if n <= 0 {
		return 0
	}
	wlo, whi, first, last := rangeMasks(start, n)
	if wlo == whi {
		m := first & last
		cleared = int64(bits.OnesCount64(m & b.words[wlo]))
		b.words[wlo] &^= m
		return cleared
	}
	cleared = int64(bits.OnesCount64(first & b.words[wlo]))
	b.words[wlo] &^= first
	for w := wlo + 1; w < whi; w++ {
		cleared += int64(bits.OnesCount64(b.words[w]))
		b.words[w] = 0
	}
	cleared += int64(bits.OnesCount64(last & b.words[whi]))
	b.words[whi] &^= last
	return cleared
}

// countRange returns the number of set bits in [start, start+n).
func (b *bitset) countRange(start, n int64) (set int64) {
	if n <= 0 {
		return 0
	}
	wlo, whi, first, last := rangeMasks(start, n)
	if wlo == whi {
		return int64(bits.OnesCount64(first & last & b.words[wlo]))
	}
	set = int64(bits.OnesCount64(first & b.words[wlo]))
	for w := wlo + 1; w < whi; w++ {
		set += int64(bits.OnesCount64(b.words[w]))
	}
	set += int64(bits.OnesCount64(last & b.words[whi]))
	return set
}
