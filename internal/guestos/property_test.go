package guestos

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/mem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

// TestLifecycleProperty drives a random sequence of spawn / touch /
// free / fork / exit / file operations and checks the cross-layer
// invariants after every few steps: rmap coverage equals zone
// accounting, populated never exceeds committed, anonymous memory never
// leaves an assigned zone.
func TestLifecycleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xabc))
		s := sim.NewScheduler()
		vm := vmm.New("prop", s, costmodel.Default(), hostmem.New(0), 4)
		k := NewKernel(vm, Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        4 * units.BlockSize,
			KernelResidentBytes: 8 * units.MiB,
		})
		k.OnlineAllMovable()
		part := k.AddZone("part", mem.ZoneSqueezyPrivate, 2*units.BlockSize)
		vm.Commit(2 * units.PagesPerBlock)
		part.OnlineBlock(0)
		part.OnlineBlock(1)

		var procs []*Process
		for step := 0; step < 300; step++ {
			switch op := rng.IntN(10); {
			case op < 3: // spawn, sometimes confined
				p := k.Spawn("p")
				if rng.IntN(3) == 0 {
					p.AssignedZone = part
				}
				procs = append(procs, p)
			case op < 6 && len(procs) > 0: // touch
				p := procs[rng.IntN(len(procs))]
				bytes := int64(rng.IntN(16)+1) * units.MiB
				order := 0
				if rng.IntN(2) == 0 {
					order = HugeOrder
				}
				k.TouchAnon(p, bytes, order) // may fail under pressure; fine
			case op < 7 && len(procs) > 0: // partial free
				p := procs[rng.IntN(len(procs))]
				k.FreeAnon(p, int64(rng.IntN(8)+1)*units.MiB)
			case op < 8 && len(procs) > 0: // fork
				p := procs[rng.IntN(len(procs))]
				procs = append(procs, k.Fork(p, "child"))
			case op < 9 && len(procs) > 0: // exit
				i := rng.IntN(len(procs))
				k.Exit(procs[i])
				procs = append(procs[:i], procs[i+1:]...)
			default: // file touch
				if len(procs) == 0 {
					continue
				}
				p := procs[rng.IntN(len(procs))]
				f := k.File("shared", 64*units.MiB)
				k.TouchFile(p, f, int64(rng.IntN(32)+1)*units.MiB)
			}
			if step%25 == 0 {
				if err := k.CheckInvariants(); err != nil {
					t.Logf("invariant broken at step %d: %v", step, err)
					return false
				}
				if vm.PopulatedPages() > vm.CommittedPages() {
					return false
				}
			}
		}
		// Confinement: every anon chunk of a confined process is in part.
		for _, p := range procs {
			if p.AssignedZone != part {
				continue
			}
			for _, c := range p.anonChunks {
				if c.Zone != part {
					return false
				}
			}
		}
		// Drain everything; zones must return to empty (files may stay).
		for _, p := range procs {
			k.Exit(p)
		}
		return k.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestOfflineUnderLoadProperty isolates/migrates random blocks while
// processes keep their memory: after each offline, every process still
// owns exactly the pages it touched and the kernel invariants hold.
func TestOfflineUnderLoadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xdef))
		s := sim.NewScheduler()
		vm := vmm.New("prop", s, costmodel.Default(), hostmem.New(0), 4)
		k := NewKernel(vm, Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        8 * units.BlockSize,
			KernelResidentBytes: 8 * units.MiB,
		})
		k.OnlineAllMovable()
		k.ScrambleFreeLists(k.Movable, rng)

		var procs []*Process
		var want []int64
		for i := 0; i < 4; i++ {
			p := k.Spawn("p")
			bytes := int64(rng.IntN(128)+32) * units.MiB
			if _, ok := k.TouchAnon(p, bytes, HugeOrder); !ok {
				return true // overloaded config; skip
			}
			procs = append(procs, p)
			want = append(want, p.AnonPages())
		}

		// Try to offline up to 3 random online blocks.
		offlined := 0
		for attempts := 0; attempts < 10 && offlined < 3; attempts++ {
			online := k.Movable.OnlineBlocks()
			if len(online) == 0 {
				break
			}
			b := online[rng.IntN(len(online))]
			k.Movable.IsolateBlock(b)
			start, count := k.Movable.BlockRange(b)
			ok := true
			for _, c := range k.ChunksInRange(start, count) {
				if _, _, migrated := k.MigrateChunk(c); !migrated {
					ok = false
					break
				}
			}
			if !ok {
				k.ReturnIsolatedGaps(k.Movable, start, count)
				continue
			}
			k.Movable.FinishOffline(b)
			k.ReleaseRange(start, count)
			offlined++
		}

		for i, p := range procs {
			if p.AnonPages() != want[i] {
				return false
			}
		}
		return k.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestScrambleConservesMemory(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		s := sim.NewScheduler()
		vm := vmm.New("prop", s, costmodel.Default(), hostmem.New(0), 4)
		k := NewKernel(vm, Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        4 * units.BlockSize,
			KernelResidentBytes: 8 * units.MiB,
		})
		k.OnlineAllMovable()
		p := k.Spawn("p")
		k.TouchAnon(p, 100*units.MiB, HugeOrder)
		freeBefore := k.Movable.NrFree()
		popBefore := vm.PopulatedPages()
		k.ScrambleFreeLists(k.Movable, rng)
		// Scrambling reorders free lists but conserves free pages,
		// allocated pages, and host population.
		return k.Movable.NrFree() == freeBefore &&
			vm.PopulatedPages() == popBefore &&
			p.AnonPages() == units.BytesToPages(100*units.MiB) &&
			k.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
