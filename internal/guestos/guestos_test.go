package guestos

import (
	"math/rand/v2"
	"testing"

	"squeezy/internal/costmodel"
	"squeezy/internal/hostmem"
	"squeezy/internal/mem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func newTestKernel(t *testing.T, movableBlocks int) *Kernel {
	t.Helper()
	s := sim.NewScheduler()
	host := hostmem.New(0)
	vm := vmm.New("vm0", s, costmodel.Default(), host, 4)
	k := NewKernel(vm, Config{
		BootBytes:           units.BlockSize,
		MovableBytes:        int64(movableBlocks) * units.BlockSize,
		KernelResidentBytes: 16 * units.MiB,
	})
	k.OnlineAllMovable()
	return k
}

func TestBootFootprint(t *testing.T) {
	k := newTestKernel(t, 2)
	wantKernel := units.BytesToPages(16 * units.MiB)
	if got := k.Normal.NrAllocated(); got != wantKernel {
		t.Fatalf("kernel resident = %d pages, want %d", got, wantKernel)
	}
	if got := k.VM.PopulatedPages(); got != wantKernel {
		t.Fatalf("host populated = %d, want %d", got, wantKernel)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTouchAnonAllocatesAndPopulates(t *testing.T) {
	k := newTestKernel(t, 2)
	p := k.Spawn("f1")
	work, ok := k.TouchAnon(p, 64*units.MiB, HugeOrder)
	if !ok {
		t.Fatal("TouchAnon failed")
	}
	pages := units.BytesToPages(64 * units.MiB)
	if p.AnonPages() != pages {
		t.Fatalf("anon = %d, want %d", p.AnonPages(), pages)
	}
	if k.Movable.NrAllocated() != pages {
		t.Fatalf("movable allocated = %d", k.Movable.NrAllocated())
	}
	wantWork := sim.Duration(pages)*(k.Cost.GuestFaultPerPage+k.Cost.ZeroPerPage) +
		sim.Duration(pages)*k.Cost.NestedFaultPerPage
	if work != wantWork {
		t.Fatalf("work = %v, want %v", work, wantWork)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatTouchDoesNotRepopulate(t *testing.T) {
	k := newTestKernel(t, 2)
	p := k.Spawn("f1")
	k.TouchAnon(p, 32*units.MiB, HugeOrder)
	popBefore := k.VM.PopulatedPages()
	k.FreeAnon(p, 32*units.MiB)
	// Re-touch: guest pages are reused; host frames were never released,
	// so no new population.
	work2, _ := k.TouchAnon(p, 32*units.MiB, HugeOrder)
	if k.VM.PopulatedPages() != popBefore {
		t.Fatalf("populated changed: %d -> %d", popBefore, k.VM.PopulatedPages())
	}
	pages := units.BytesToPages(32 * units.MiB)
	want := sim.Duration(pages) * (k.Cost.GuestFaultPerPage + k.Cost.ZeroPerPage)
	if work2 != want {
		t.Fatalf("re-touch work = %v, want %v (no nested faults)", work2, want)
	}
}

func TestExitFreesAnon(t *testing.T) {
	k := newTestKernel(t, 2)
	p := k.Spawn("f1")
	k.TouchAnon(p, 100*units.MiB, HugeOrder)
	before := k.Movable.NrAllocated()
	freed := k.Exit(p)
	if freed != units.BytesToPages(100*units.MiB) {
		t.Fatalf("freed = %d", freed)
	}
	if k.Movable.NrAllocated() != before-freed {
		t.Fatalf("movable allocated = %d", k.Movable.NrAllocated())
	}
	if !p.Exited() || k.NumProcs() != 1 { // kernel proc remains
		t.Fatal("exit bookkeeping wrong")
	}
	// Host frames remain populated (the Figure 1 pathology).
	if k.VM.PopulatedPages() == 0 {
		t.Fatal("host frames should stay populated after guest free")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleExitPanics(t *testing.T) {
	k := newTestKernel(t, 1)
	p := k.Spawn("x")
	k.Exit(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Exit(p)
}

func TestOOMOnZoneExhaustion(t *testing.T) {
	k := newTestKernel(t, 1) // 128 MiB movable
	p := k.Spawn("hog")
	_, ok := k.TouchAnon(p, 256*units.MiB, HugeOrder)
	if ok {
		t.Fatal("TouchAnon should fail when zone exhausted")
	}
	// Partial allocation is retained and freed on exit.
	if p.AnonPages() == 0 {
		t.Fatal("partial allocation lost")
	}
	k.Exit(p)
	if k.Movable.NrAllocated() != 0 {
		t.Fatal("exit did not free partial allocation")
	}
}

func TestAssignedZoneConfinesAnon(t *testing.T) {
	k := newTestKernel(t, 2)
	part := k.AddZone("squeezy0", mem.ZoneSqueezyPrivate, 2*units.BlockSize)
	k.VM.Commit(2 * units.PagesPerBlock)
	part.OnlineBlock(0)
	part.OnlineBlock(1)
	p := k.Spawn("f1")
	p.AssignedZone = part
	k.TouchAnon(p, 64*units.MiB, HugeOrder)
	if part.NrAllocated() != units.BytesToPages(64*units.MiB) {
		t.Fatalf("partition allocated = %d", part.NrAllocated())
	}
	if k.Movable.NrAllocated() != 0 {
		t.Fatal("anon leaked into movable zone")
	}
}

func TestPartitionOverflowOOM(t *testing.T) {
	k := newTestKernel(t, 4)
	part := k.AddZone("squeezy0", mem.ZoneSqueezyPrivate, units.BlockSize)
	k.VM.Commit(units.PagesPerBlock)
	part.OnlineBlock(0)
	p := k.Spawn("f1")
	p.AssignedZone = part
	_, ok := k.TouchAnon(p, 256*units.MiB, HugeOrder)
	if ok {
		t.Fatal("partition overflow should fail (OOM-kill trigger)")
	}
	// Movable zone untouched: the overflow never spills out of the
	// partition (isolation invariant).
	if k.Movable.NrAllocated() != 0 {
		t.Fatal("partition overflow spilled into movable")
	}
}

func TestFileSharingAcrossProcesses(t *testing.T) {
	k := newTestKernel(t, 2)
	f := k.File("rootfs", 64*units.MiB)
	p1 := k.Spawn("f1")
	p2 := k.Spawn("f2")
	w1, ok := k.TouchFile(p1, f, 64*units.MiB)
	if !ok {
		t.Fatal("first TouchFile failed")
	}
	allocAfterFirst := k.Movable.NrAllocated()
	w2, ok := k.TouchFile(p2, f, 64*units.MiB)
	if !ok {
		t.Fatal("second TouchFile failed")
	}
	if k.Movable.NrAllocated() != allocAfterFirst {
		t.Fatal("second mapper allocated new pages; cache not shared")
	}
	if w2 >= w1 {
		t.Fatalf("warm map (%v) should be cheaper than cold (%v)", w2, w1)
	}
	if f.MapCount() != 2 {
		t.Fatalf("mapcount = %d", f.MapCount())
	}
	k.Exit(p1)
	if f.MapCount() != 1 {
		t.Fatalf("mapcount after exit = %d", f.MapCount())
	}
	if f.ResidentPages() != units.BytesToPages(64*units.MiB) {
		t.Fatal("exit evicted cached file pages")
	}
}

func TestFileZoneFollowsSharedZone(t *testing.T) {
	k := newTestKernel(t, 2)
	shared := k.AddZone("squeezy-shared", mem.ZoneSqueezyShared, units.BlockSize)
	k.VM.Commit(units.PagesPerBlock)
	shared.OnlineBlock(0)
	k.SharedZone = shared
	f := k.File("libs", 32*units.MiB)
	p := k.Spawn("f1")
	k.TouchFile(p, f, 32*units.MiB)
	if shared.NrAllocated() != units.BytesToPages(32*units.MiB) {
		t.Fatalf("shared partition allocated = %d", shared.NrAllocated())
	}
	if k.Movable.NrAllocated() != 0 {
		t.Fatal("file pages leaked into movable")
	}
}

func TestForkInheritsZoneAndHooks(t *testing.T) {
	k := newTestKernel(t, 2)
	var forked, exited bool
	k.OnProcFork = func(parent, child *Process) { forked = true }
	k.OnProcExit = func(p *Process) { exited = true }
	part := k.AddZone("sq0", mem.ZoneSqueezyPrivate, units.BlockSize)
	k.VM.Commit(units.PagesPerBlock)
	part.OnlineBlock(0)
	p := k.Spawn("f1")
	p.AssignedZone = part
	c := k.Fork(p, "f1-child")
	if !forked {
		t.Fatal("fork hook not called")
	}
	if c.AssignedZone != part {
		t.Fatal("child did not inherit partition")
	}
	k.Exit(c)
	if !exited {
		t.Fatal("exit hook not called")
	}
}

func TestChunksInRangeAndMigration(t *testing.T) {
	k := newTestKernel(t, 4)
	p := k.Spawn("f1")
	k.TouchAnon(p, 200*units.MiB, HugeOrder)
	// Find a block holding some of the chunks (buddy LIFO fills the
	// highest-onlined block first).
	blk := -1
	for i := 0; i < k.Movable.Blocks(); i++ {
		if k.Movable.OccupiedInBlock(i) > 0 {
			blk = i
			break
		}
	}
	if blk < 0 {
		t.Fatal("no occupied block after touch")
	}
	start, count := k.Movable.BlockRange(blk)
	chunks := k.ChunksInRange(start, count)
	if len(chunks) == 0 {
		t.Fatal("no chunks found in touched block")
	}
	// Isolate the block, then migrate its chunks out.
	occupied := k.Movable.IsolateBlock(blk)
	var migrated int64
	for _, c := range chunks {
		pages, _, ok := k.MigrateChunk(c)
		if !ok {
			t.Fatal("migration failed with free memory available")
		}
		migrated += pages
		if c.PFN >= start && c.PFN < start+count {
			t.Fatal("chunk migrated into the isolated block")
		}
	}
	if migrated != occupied {
		t.Fatalf("migrated %d, isolate reported %d occupied", migrated, occupied)
	}
	k.Movable.FinishOffline(blk)
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Process still owns the same number of pages.
	if p.AnonPages() != units.BytesToPages(200*units.MiB) {
		t.Fatalf("anon pages changed across migration: %d", p.AnonPages())
	}
}

func TestMigrationFailsWhenNoTarget(t *testing.T) {
	k := newTestKernel(t, 1)
	p := k.Spawn("f1")
	// Fill the single movable block completely.
	if _, ok := k.TouchAnon(p, units.BlockSize, HugeOrder); !ok {
		t.Fatal("fill failed")
	}
	start, count := k.Movable.BlockRange(0)
	chunks := k.ChunksInRange(start, count)
	k.Movable.IsolateBlock(0)
	_, _, ok := k.MigrateChunk(chunks[0])
	if ok {
		t.Fatal("migration should fail with no free target")
	}
}

func TestReleaseRange(t *testing.T) {
	k := newTestKernel(t, 2)
	p := k.Spawn("f1")
	k.TouchAnon(p, 128*units.MiB, HugeOrder)
	k.Exit(p)
	popBefore := k.VM.PopulatedPages()
	blk := -1
	for i := 0; i < k.Movable.Blocks(); i++ {
		start, count := k.Movable.BlockRange(i)
		if k.PopulatedInRange(start, count) > 0 {
			blk = i
			break
		}
	}
	if blk < 0 {
		t.Fatal("no populated block")
	}
	start, count := k.Movable.BlockRange(blk)
	inBlock := k.PopulatedInRange(start, count)
	if inBlock == 0 {
		t.Fatal("no populated pages in block 0")
	}
	released := k.ReleaseRange(start, count)
	if released != inBlock {
		t.Fatalf("released %d, populated was %d", released, inBlock)
	}
	if k.VM.PopulatedPages() != popBefore-released {
		t.Fatal("host populated accounting wrong")
	}
	// Double release is a no-op.
	if again := k.ReleaseRange(start, count); again != 0 {
		t.Fatalf("second release freed %d", again)
	}
}

func TestAllocatedPagesAccounting(t *testing.T) {
	k := newTestKernel(t, 2)
	base := k.AllocatedPages()
	p := k.Spawn("f1")
	k.TouchAnon(p, 10*units.MiB, 0)
	if k.AllocatedPages() != base+units.BytesToPages(10*units.MiB) {
		t.Fatal("AllocatedPages did not track touch")
	}
}

func TestOrderFallbackUnderFragmentation(t *testing.T) {
	k := newTestKernel(t, 1)
	// Fragment the zone: fill with 4 KiB pages, free every other one.
	p := k.Spawn("frag")
	if _, ok := k.TouchAnon(p, units.BlockSize, 0); !ok {
		t.Fatal("fill failed")
	}
	// Free half the chunks (newest-first ordering makes them single pages).
	k.FreeAnon(p, units.BlockSize/2)
	// A huge-order touch must fall back to order 0 and still succeed.
	q := k.Spawn("thp")
	if _, ok := k.TouchAnon(q, 16*units.MiB, HugeOrder); !ok {
		t.Fatal("fallback allocation failed")
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDropFile(t *testing.T) {
	k := newTestKernel(t, 2)
	f := k.File("tmp", units.MiB)
	p := k.Spawn("f1")
	k.TouchFile(p, f, units.MiB)
	k.Exit(p)
	k.DropFile(f)
	if k.Movable.NrAllocated() != 0 {
		t.Fatal("DropFile left pages allocated")
	}
}

func TestDropMappedFilePanics(t *testing.T) {
	k := newTestKernel(t, 2)
	f := k.File("tmp", units.MiB)
	p := k.Spawn("f1")
	k.TouchFile(p, f, units.MiB)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.DropFile(f)
}

// The bulk bitset range operations must agree bit-for-bit with a
// straightforward per-bit reference across random, word-straddling
// ranges — these back markPopulated / PopulatedInRange / ReleaseRange.
func TestBitsetRangeOpsMatchReference(t *testing.T) {
	const span = 5 * 64
	var b bitset
	b.grow(span)
	ref := make([]bool, span)
	rng := rand.New(rand.NewPCG(11, 13))
	for step := 0; step < 3000; step++ {
		start := int64(rng.IntN(span))
		n := int64(rng.IntN(span - int(start) + 1))
		switch rng.IntN(3) {
		case 0:
			var want int64
			for i := start; i < start+n; i++ {
				if !ref[i] {
					ref[i] = true
					want++
				}
			}
			if got := b.setRange(start, n); got != want {
				t.Fatalf("step %d: setRange(%d,%d) fresh = %d, want %d", step, start, n, got, want)
			}
		case 1:
			var want int64
			for i := start; i < start+n; i++ {
				if ref[i] {
					ref[i] = false
					want++
				}
			}
			if got := b.clearRange(start, n); got != want {
				t.Fatalf("step %d: clearRange(%d,%d) cleared = %d, want %d", step, start, n, got, want)
			}
		case 2:
			var want int64
			for i := start; i < start+n; i++ {
				if ref[i] {
					want++
				}
			}
			if got := b.countRange(start, n); got != want {
				t.Fatalf("step %d: countRange(%d,%d) = %d, want %d", step, start, n, got, want)
			}
		}
	}
}

// markPopulated must report exactly the newly backed pages when ranges
// overlap — the bulk-update equivalent of the old page-at-a-time loop.
func TestMarkPopulatedBulkCounting(t *testing.T) {
	k := newTestKernel(t, 4)
	base := k.Movable.Start()
	if fresh := k.markPopulated(base, 1000); fresh != 1000 {
		t.Fatalf("first touch fresh = %d, want 1000", fresh)
	}
	if fresh := k.markPopulated(base+500, 1000); fresh != 500 {
		t.Fatalf("overlapping touch fresh = %d, want 500", fresh)
	}
	if got := k.PopulatedInRange(base, 2000); got != 1500 {
		t.Fatalf("PopulatedInRange = %d, want 1500", got)
	}
	if released := k.populated.clearRange(base, 2000); released != 1500 {
		t.Fatalf("clearRange = %d, want 1500", released)
	}
}

// TestRecycledKernelReplaysIdentically is the reset-vs-fresh guard for
// the kernel arena recycler: a kernel built from arenas harvested off
// a released (and differently shaped) kernel must place every chunk at
// the same PFN as a kernel built from fresh storage.
func TestRecycledKernelReplaysIdentically(t *testing.T) {
	program := func(k *Kernel) []mem.PFN {
		k.OnlineAllMovable()
		var log []mem.PFN
		rng := rand.New(rand.NewPCG(5, 17))
		procs := []*Process{k.Spawn("a"), k.Spawn("b"), k.Spawn("c")}
		f := k.File("dep", 0)
		for i := 0; i < 60; i++ {
			p := procs[i%len(procs)]
			switch i % 5 {
			case 0, 1:
				k.TouchAnon(p, 4*units.MiB, HugeOrder)
			case 2:
				k.TouchFile(p, f, 2*units.MiB)
			case 3:
				k.FreeAnonRandom(p, 2*units.MiB, rng)
			case 4:
				for _, c := range p.anonChunks {
					log = append(log, c.PFN)
				}
			}
		}
		for _, c := range k.ChunksInRange(0, k.Movable.Start()+k.Movable.Pages()) {
			log = append(log, c.PFN, mem.PFN(c.Order))
		}
		if err := k.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	build := func(rec *Recycler) *Kernel {
		s := sim.NewScheduler()
		vm := vmm.New("vm", s, costmodel.Default(), hostmem.New(0), 4)
		return NewKernel(vm, Config{
			BootBytes:           units.BlockSize,
			MovableBytes:        4 * units.BlockSize,
			KernelResidentBytes: 16 * units.MiB,
			Recycle:             rec,
		})
	}
	want := program(build(nil))

	rec := NewRecycler()
	// Dirty the recycler with a differently shaped kernel's arenas.
	s := sim.NewScheduler()
	vm := vmm.New("dirty", s, costmodel.Default(), hostmem.New(0), 4)
	dirty := NewKernel(vm, Config{
		BootBytes:           2 * units.BlockSize,
		MovableBytes:        8 * units.BlockSize,
		KernelResidentBytes: 64 * units.MiB,
		Recycle:             rec,
	})
	dirty.OnlineAllMovable()
	p := dirty.Spawn("hog")
	dirty.TouchAnon(p, 512*units.MiB, HugeOrder)
	dirty.Release()

	got := program(build(rec))
	if len(got) != len(want) {
		t.Fatalf("logs differ in length: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement diverged at %d: recycled %d, fresh %d", i, got[i], want[i])
		}
	}
}

// TestReleaseIdempotent double-releases a kernel; the second call must
// be a no-op rather than double-retiring arenas.
func TestReleaseIdempotent(t *testing.T) {
	rec := NewRecycler()
	s := sim.NewScheduler()
	vm := vmm.New("vm", s, costmodel.Default(), hostmem.New(0), 4)
	k := NewKernel(vm, Config{BootBytes: units.BlockSize, Recycle: rec})
	k.Release()
	before := len(rec.words)
	k.Release()
	if len(rec.words) != before {
		t.Fatal("second Release retired the bitmap again")
	}
}
