package sim

import (
	"fmt"
	"math/bits"
	"slices"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds returns the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a handle to a scheduled callback. It is a small value, cheap
// to copy and to keep in structs; the zero value is inert (Cancel and
// Canceled are no-ops on it).
//
// Cancel prevents a pending event from firing; cancelling an
// already-fired, already-cancelled, or zero event is a no-op. The
// underlying event record is recycled once the event fires or its
// cancelled record is discarded; a generation counter makes stale
// handles harmless, so holding an Event past its firing is safe.
type Event struct {
	s    *Scheduler
	idx  int32
	gen  uint32
	when Time
}

// When returns the virtual time at which the event is (or was) scheduled
// to fire.
func (e Event) When() Time { return e.when }

// Cancel marks the event so it will not fire. Safe to call repeatedly,
// after the event has fired, and on the zero Event.
func (e Event) Cancel() {
	if e.s == nil {
		return
	}
	n := &e.s.nodes[e.idx]
	if n.gen == e.gen {
		n.canceled = true
	}
}

// Canceled reports whether the event is pending and has been cancelled.
// Once the event has fired or its record has been discarded, Canceled
// reports false.
func (e Event) Canceled() bool {
	if e.s == nil {
		return false
	}
	n := &e.s.nodes[e.idx]
	return n.gen == e.gen && n.canceled
}

// node is one scheduled event's record, recycled through the arena
// free-list. gen increments on every recycle so stale Event handles
// cannot touch a reused record. The ordering keys live in the queue
// entries (heapEntry), not here.
type node struct {
	fn       func()
	gen      uint32
	canceled bool
}

// heapEntry is the queue-resident form of a pending event: ordering
// keys inline (no pointer chase during sift or sort) plus the arena
// index of its node.
type heapEntry struct {
	when Time
	seq  uint64
	idx  int32
}

func entryLess(a, b heapEntry) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Near-future bucket ring geometry: 256 buckets of 2^20 ns (~1.05 ms)
// cover ~268 ms ahead of the clock. Events inside the horizon go to
// their bucket; events beyond it go to the binary heap. Buckets are
// sorted by (when, seq) when they are first inspected, so ordering is
// identical to a single global priority queue.
const (
	ringShift   = 20
	ringBuckets = 256
	ringMask    = ringBuckets - 1
)

type bucket struct {
	entries []heapEntry
	next    int  // consumed prefix of entries
	sorted  bool // entries[next:] is sorted by (when, seq)
}

// Scheduler is a deterministic discrete-event scheduler over virtual
// time. The zero value is ready to use. Scheduler is not safe for
// concurrent use; the simulation is single-threaded by design.
type Scheduler struct {
	now   Time
	seq   uint64
	fired uint64

	nodes []node  // event record arena
	free  []int32 // recycled arena slots

	heap []heapEntry // far-future events, min-heap by (when, seq)

	ring      [ringBuckets]bucket
	ringOcc   [ringBuckets / 64]uint64 // non-empty bucket bitmap
	ringCount int                      // entries across all buckets
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Reset returns the scheduler to an empty state at time zero while
// keeping its allocated capacity — the node arena, heap storage, and
// ring buckets — so a pooled scheduler can replay the next simulation
// without reallocating. Pending events are discarded and their
// outstanding Event handles go stale (Cancel and Canceled become
// no-ops on them), exactly as if the events had already fired.
//
// Determinism: event ordering depends only on (timestamp, insertion
// sequence), and Reset restores both clock and sequence to zero, so a
// reset scheduler drives a simulation identically to a fresh one.
func (s *Scheduler) Reset() {
	for _, e := range s.heap {
		s.recycle(e.idx)
	}
	s.heap = s.heap[:0]
	for bi := range s.ring {
		b := &s.ring[bi]
		for _, e := range b.entries[b.next:] {
			s.recycle(e.idx)
		}
		b.entries = b.entries[:0]
		b.next = 0
		b.sorted = false
	}
	s.ringOcc = [ringBuckets / 64]uint64{}
	s.ringCount = 0
	s.now = 0
	s.seq = 0
	s.fired = 0
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (possibly cancelled) events.
func (s *Scheduler) Len() int { return len(s.heap) + s.ringCount }

// Fired returns the total number of events that have fired.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a simulation bug, not a recoverable
// condition.
func (s *Scheduler) At(t Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.nodes = append(s.nodes, node{})
		idx = int32(len(s.nodes) - 1)
	}
	n := &s.nodes[idx]
	n.fn = fn
	n.canceled = false
	e := heapEntry{when: t, seq: s.seq, idx: idx}
	s.seq++
	if int64(t)>>ringShift-int64(s.now)>>ringShift < ringBuckets {
		s.ringInsert(e)
	} else {
		s.heapPush(e)
	}
	return Event{s: s, idx: idx, gen: n.gen, when: t}
}

// After schedules fn to run d nanoseconds from now. Negative d is
// clamped to zero.
func (s *Scheduler) After(d Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// recycle returns a node to the free-list, bumping its generation so
// outstanding Event handles go stale.
func (s *Scheduler) recycle(idx int32) {
	n := &s.nodes[idx]
	n.fn = nil
	n.gen++
	s.free = append(s.free, idx)
}

// maxTime is the far end of virtual time, used as a no-op firing limit.
const maxTime = Time(1<<63 - 1)

// fire advances the clock to the entry's timestamp and runs its
// callback. The entry must already be consumed from its queue.
func (s *Scheduler) fire(e heapEntry) {
	s.now = e.when
	s.fired++
	fn := s.nodes[e.idx].fn
	// Recycle before firing: the callback may schedule new events that
	// reuse the slot, and stale handles are generation-checked.
	s.recycle(e.idx)
	fn()
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain. Cancelled events are
// discarded without firing.
func (s *Scheduler) Step() bool {
	e, ok := s.next(true, maxTime)
	if !ok {
		return false
	}
	s.fire(e)
	return true
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires all events with timestamps <= t, then advances the
// clock to exactly t. Events scheduled after t remain pending. The
// limit is pushed into the queue lookup so each fired event resolves
// the queue head exactly once.
func (s *Scheduler) RunUntil(t Time) {
	for {
		e, ok := s.next(true, t)
		if !ok {
			break
		}
		s.fire(e)
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Jump advances the clock to exactly t without firing anything. It is
// the host-join primitive of the fleet dynamics layer: a freshly built
// scheduler starts at time zero, and a host joining a fleet mid-run
// must land on the fleet's epoch boundary before any work is routed to
// it. Jumping over pending work would silently drop it, so Jump panics
// if any pending event is scheduled strictly before t; events at
// exactly t stay pending, matching RunUntilEpoch's boundary semantics.
func (s *Scheduler) Jump(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: jumping to %d before now %d", t, s.now))
	}
	if next, ok := s.NextEventTime(); ok && next < t {
		panic(fmt.Sprintf("sim: jump to %d over pending event at %d", t, next))
	}
	s.now = t
}

// RunUntilEpoch fires all events with timestamps strictly before t,
// then advances the clock to exactly t. Events scheduled at t itself
// stay pending and fire on the next run call, after anything a caller
// schedules at t once the clock has landed there.
//
// This is the primitive epoch-lockstep execution is built on: a host
// simulation advanced with RunUntilEpoch(t) has fully settled the past
// but has not yet consumed the present, so a coordinator paused at t
// can read the host's pre-t state and schedule new work at t before
// the host's own t-stamped backlog is allowed to fire. Ordering stays
// deterministic: pending events at t keep their insertion sequence and
// precede anything the coordinator schedules at t.
func (s *Scheduler) RunUntilEpoch(t Time) {
	if t > 0 {
		s.RunUntil(t - 1)
	}
	if t > s.now {
		s.now = t
	}
}

// NextEventTime returns the timestamp of the earliest pending event and
// true, or zero and false if the queue is empty.
func (s *Scheduler) NextEventTime() (Time, bool) {
	e, ok := s.next(false, maxTime)
	if !ok {
		return 0, false
	}
	return e.when, true
}

// next returns the earliest live event, dropping cancelled events that
// have reached the front of either queue. With consume it also removes
// the returned event — unless the event is after limit, in which case
// it is left queued and ok is false.
func (s *Scheduler) next(consume bool, limit Time) (heapEntry, bool) {
	// Drop cancelled heads lazily — no heap churn beyond the pop the
	// entry would have cost anyway, and no churn at Cancel time.
	for len(s.heap) > 0 && s.nodes[s.heap[0].idx].canceled {
		s.recycle(s.heap[0].idx)
		s.heapPop()
	}
	rb, re, rok := s.ringHead()
	hok := len(s.heap) > 0
	switch {
	case !rok && !hok:
		return heapEntry{}, false
	case rok && (!hok || entryLess(re, s.heap[0])):
		if re.when > limit {
			return heapEntry{}, false
		}
		if consume {
			rb.next++
			s.ringCount--
			s.ringMaybeReset(rb, re.when)
		}
		return re, true
	default:
		e := s.heap[0]
		if e.when > limit {
			return heapEntry{}, false
		}
		if consume {
			s.heapPop()
		}
		return e, true
	}
}

// --- near-future bucket ring ---

func (s *Scheduler) ringInsert(e heapEntry) {
	bi := int(int64(e.when)>>ringShift) & ringMask
	b := &s.ring[bi]
	if b.sorted {
		// The bucket has already been inspected and ordered; keep the
		// live suffix sorted by (when, seq).
		lo, hi := b.next, len(b.entries)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if entryLess(b.entries[mid], e) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.entries = append(b.entries, heapEntry{})
		copy(b.entries[lo+1:], b.entries[lo:])
		b.entries[lo] = e
	} else {
		b.entries = append(b.entries, e)
	}
	s.ringOcc[bi/64] |= 1 << (bi % 64)
	s.ringCount++
}

// ringHead finds the earliest live ring entry, sorting its bucket on
// first inspection and discarding cancelled entries it walks past.
func (s *Scheduler) ringHead() (*bucket, heapEntry, bool) {
	if s.ringCount == 0 {
		return nil, heapEntry{}, false
	}
	start := int(int64(s.now)>>ringShift) & ringMask
	for scanned := 0; scanned < ringBuckets; {
		bi := (start + scanned) & ringMask
		word := s.ringOcc[bi/64] >> (bi % 64)
		if word == 0 {
			// Skip the rest of this bitmap word in one step.
			scanned += 64 - bi%64
			continue
		}
		skip := bits.TrailingZeros64(word)
		scanned += skip
		if scanned >= ringBuckets {
			break
		}
		bi = (start + scanned) & ringMask
		b := &s.ring[bi]
		if !b.sorted {
			sortEntries(b.entries)
			b.sorted = true
		}
		for b.next < len(b.entries) {
			e := b.entries[b.next]
			if !s.nodes[e.idx].canceled {
				return b, e, true
			}
			s.recycle(e.idx)
			b.next++
			s.ringCount--
		}
		s.resetBucket(b, bi)
		if s.ringCount == 0 {
			break
		}
		scanned++
	}
	return nil, heapEntry{}, false
}

// ringMaybeReset clears a bucket whose entries are fully consumed.
func (s *Scheduler) ringMaybeReset(b *bucket, when Time) {
	if b.next >= len(b.entries) {
		s.resetBucket(b, int(int64(when)>>ringShift)&ringMask)
	}
}

func (s *Scheduler) resetBucket(b *bucket, bi int) {
	b.entries = b.entries[:0]
	b.next = 0
	b.sorted = false
	s.ringOcc[bi/64] &^= 1 << (bi % 64)
}

// sortEntries orders entries by (when, seq). seq is unique, so the key
// is a total order and an unstable sort cannot perturb firing order.
func sortEntries(es []heapEntry) {
	slices.SortFunc(es, func(a, b heapEntry) int {
		if entryLess(a, b) {
			return -1
		}
		return 1
	})
}

// --- far-future binary heap ---

func (s *Scheduler) heapPush(e heapEntry) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.heap = h
}

func (s *Scheduler) heapPop() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && entryLess(h[r], h[l]) {
			c = r
		}
		if !entryLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	s.heap = h
}
