// Package sim provides the virtual clock and deterministic discrete-event
// scheduler that drive every experiment in this repository.
//
// All simulated latencies — page migrations, VM exits, function
// executions, keep-alive timers — are expressed in virtual nanoseconds
// and ordered through a single Scheduler. Events that share a timestamp
// fire in insertion order, so a run is a pure function of its inputs and
// seed: two runs with identical inputs produce identical outputs.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case abs >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds returns the time as a floating-point number of seconds since
// simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired or already-cancelled event is a
// no-op.
type Event struct {
	when     Time
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// When returns the virtual time at which the event is (or was) scheduled
// to fire.
func (e *Event) When() Time { return e.when }

// Cancel marks the event so it will not fire. Safe to call repeatedly.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler over virtual
// time. The zero value is ready to use. Scheduler is not safe for
// concurrent use; the simulation is single-threaded by design.
type Scheduler struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	inStep bool
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len returns the number of pending (possibly cancelled) events.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired returns the total number of events that have fired.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: that is always a simulation bug, not a recoverable
// condition.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e := &Event{when: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d nanoseconds from now. Negative d is
// clamped to zero.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false if no events remain. Cancelled events are
// discarded without firing.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil fires all events with timestamps <= t, then advances the
// clock to exactly t. Events scheduled after t remain pending.
func (s *Scheduler) RunUntil(t Time) {
	for {
		e := s.peek()
		if e == nil || e.when > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for d nanoseconds of virtual time.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// NextEventTime returns the timestamp of the earliest pending event and
// true, or zero and false if the queue is empty.
func (s *Scheduler) NextEventTime() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.when, true
}
