// Package sim provides the virtual clock and deterministic discrete-event
// scheduler that drive every experiment in this repository.
//
// All simulated latencies — page migrations, VM exits, function
// executions, keep-alive timers — are expressed in virtual nanoseconds
// and ordered through a single Scheduler. Events that share a timestamp
// fire in insertion order, so a run is a pure function of its inputs and
// seed: two runs with identical inputs produce identical outputs.
//
// The scheduler is built for the dense timer traffic a fleet simulation
// generates (per-request completions, keep-alives, retry timers):
// event records live in a recycled arena instead of being heap-allocated
// per event, cancelled events are dropped lazily when they reach the
// front of the queue, and a coarse near-future bucket ring absorbs the
// events that fire within the next ~268 ms so the binary heap only sees
// far-out timers. None of this changes observable ordering: events fire
// strictly by (timestamp, insertion sequence).
package sim
