package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %d, want 30", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", s.Fired())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	if !e.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Clock does not advance past a cancelled event's time unless asked.
	if s.Now() != 0 {
		t.Fatalf("clock advanced to %d by cancelled event", s.Now())
	}
}

func TestAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var trace []Time
	s.After(5, func() {
		trace = append(trace, s.Now())
		s.After(7, func() {
			trace = append(trace, s.Now())
		})
	})
	s.Run()
	if len(trace) != 2 || trace[0] != 5 || trace[1] != 12 {
		t.Fatalf("nested scheduling trace = %v", trace)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, ts := range []Time{10, 20, 30, 40} {
		ts := ts
		s.At(ts, func() { fired = append(fired, ts) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(25) fired %v", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %d, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("RunUntil(100) fired %v", fired)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %d, want 100", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		s.After(10, tick)
	}
	s.After(10, tick)
	s.RunFor(105)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(50, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(10, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil callback")
		}
	}()
	s.At(10, nil)
}

func TestNextEventTime(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime on empty queue reported an event")
	}
	e := s.At(42, func() {})
	if ts, ok := s.NextEventTime(); !ok || ts != 42 {
		t.Fatalf("NextEventTime = %d,%v", ts, ok)
	}
	e.Cancel()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime reported a cancelled event")
	}
}

// Property: regardless of insertion order, events fire sorted by
// timestamp, and ties fire in insertion order.
func TestOrderingProperty(t *testing.T) {
	f := func(seed uint64, raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		s := NewScheduler()
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, v := range raw {
			when := Time(v)
			i := i
			s.At(when, func() { fired = append(fired, rec{when, i}) })
		}
		_ = rng
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		ok := sort.SliceIsSorted(fired, func(a, b int) bool {
			if fired[a].when != fired[b].when {
				return fired[a].when < fired[b].when
			}
			return fired[a].seq < fired[b].seq
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	ts := Time(5 * Second)
	if ts.Add(Second) != Time(6*Second) {
		t.Error("Add")
	}
	if ts.Sub(Time(2*Second)) != Duration(3*Second) {
		t.Error("Sub")
	}
	if ts.Seconds() != 5 {
		t.Error("Seconds")
	}
}

// Cancelled events must be dropped lazily when they reach the front of
// the queue — never fired, never counted — whether they sit in the
// near-future ring or the far-future heap.
func TestCancelThenPopLazyDrop(t *testing.T) {
	s := NewScheduler()
	var fired []int
	var evs []Event
	// Mix near (ring) and far (heap) events.
	for i, d := range []Duration{Millisecond, 2 * Millisecond, Second, 2 * Second} {
		i := i
		evs = append(evs, s.After(d, func() { fired = append(fired, i) }))
	}
	evs[1].Cancel() // ring-resident
	evs[2].Cancel() // heap-resident
	if s.Len() != 4 {
		t.Fatalf("Len = %d before pop, want 4 (cancelled events pending until popped)", s.Len())
	}
	s.Run()
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [0 3]", fired)
	}
	if s.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", s.Fired())
	}
}

// peek (via NextEventTime) must skip over a run of cancelled events at
// the head and report the first live one.
func TestPeekSkipsCancelledHeads(t *testing.T) {
	s := NewScheduler()
	for _, d := range []Duration{Millisecond, 2 * Millisecond, Second} {
		s.After(d, func() {}).Cancel()
	}
	live := s.After(3*Second, func() {})
	if ts, ok := s.NextEventTime(); !ok || ts != live.When() {
		t.Fatalf("NextEventTime = %v,%v; want %v,true past three cancelled heads", ts, ok, live.When())
	}
	_ = live
}

// RunUntil must fire same-timestamp events in insertion order, even
// when they were inserted interleaved with other timestamps and the
// horizon lands exactly on the tie.
func TestRunUntilFiresTiesInInsertionOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(20, func() { got = append(got, 0) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.At(10, func() { got = append(got, 3) })
	s.At(30, func() { got = append(got, 4) })
	s.At(20, func() { got = append(got, 5) })
	s.RunUntil(20)
	want := []int{1, 3, 0, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if s.Now() != 20 {
		t.Fatalf("clock = %d, want 20", s.Now())
	}
}

// A handle kept past its event's firing must be inert: the record is
// recycled for later events, and a stale Cancel must not touch them.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	s := NewScheduler()
	var stale Event
	fired := false
	stale = s.After(Millisecond, func() {})
	s.Run()
	// The arena slot of `stale` is free; the next event reuses it.
	fresh := s.After(Millisecond, func() { fired = true })
	stale.Cancel()
	if stale.Canceled() {
		t.Fatal("stale handle reports Canceled")
	}
	if fresh.Canceled() {
		t.Fatal("stale Cancel leaked onto the recycled event")
	}
	s.Run()
	if !fired {
		t.Fatal("recycled event did not fire after a stale Cancel")
	}
}

// Cancelling from inside the event's own callback (the keep-alive
// pattern: the timer fires, the handler cancels its stored handle) must
// not corrupt events scheduled by that same callback.
func TestCancelOwnHandleInsideCallback(t *testing.T) {
	s := NewScheduler()
	var ka Event
	nextFired := false
	ka = s.After(Millisecond, func() {
		next := s.After(Millisecond, func() { nextFired = true })
		ka.Cancel() // stale self-cancel, as faas eviction does
		if next.Canceled() {
			t.Fatal("self-cancel hit the freshly scheduled event")
		}
	})
	s.Run()
	if !nextFired {
		t.Fatal("follow-up event did not fire")
	}
}

// Property: the two-level queue (bucket ring + heap) fires any mix of
// near, far, and cancelled events in exactly (timestamp, insertion)
// order — byte-compatible with a single global priority queue.
func TestTwoLevelQueueOrderingProperty(t *testing.T) {
	f := func(seed uint64, raw []uint32) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		rng := rand.New(rand.NewPCG(seed, 2))
		s := NewScheduler()
		type rec struct {
			when Time
			seq  int
		}
		var fired, want []rec
		var evs []Event
		for i, v := range raw {
			// Spread timestamps across ring granules and far beyond the
			// ring horizon so both queues participate.
			when := Time(v % 3_000_000_000)
			i := i
			evs = append(evs, s.At(when, func() { fired = append(fired, rec{when, i}) }))
			want = append(want, rec{when, i})
		}
		cancelled := make(map[int]bool)
		for i := range evs {
			if rng.IntN(4) == 0 {
				evs[i].Cancel()
				cancelled[i] = true
			}
		}
		s.Run()
		kept := want[:0]
		for _, r := range want {
			if !cancelled[r.seq] {
				kept = append(kept, r)
			}
		}
		want = kept
		sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestResetReplaysIdentically is the reset-vs-fresh equivalence guard:
// a reset scheduler must drive the same event program to the same
// firing sequence as a freshly constructed one, including recycled
// arena slots and ring buckets.
func TestResetReplaysIdentically(t *testing.T) {
	program := func(s *Scheduler) []Time {
		var fired []Time
		note := func() { fired = append(fired, s.Now()) }
		// Mix near-future (ring) and far-future (heap) events, a
		// cancellation, and nested scheduling.
		s.At(5, note)
		e := s.At(7, note)
		s.At(Time(Second), func() {
			note()
			s.After(3*Millisecond, note)
		})
		s.After(2*Minute, note)
		e.Cancel()
		s.Run()
		return fired
	}
	fresh := NewScheduler()
	want := program(fresh)

	reused := NewScheduler()
	// Dirty the scheduler thoroughly: pending heap and ring events,
	// cancellations, partially consumed buckets.
	for i := 0; i < 100; i++ {
		ev := reused.At(Time(i)*Time(Millisecond), func() {})
		if i%3 == 0 {
			ev.Cancel()
		}
		reused.At(Time(i)*Time(Minute), func() {})
	}
	reused.RunUntil(Time(20 * Millisecond))
	reused.Reset()
	if reused.Now() != 0 || reused.Len() != 0 || reused.Fired() != 0 {
		t.Fatalf("Reset left state: now=%d len=%d fired=%d", reused.Now(), reused.Len(), reused.Fired())
	}
	got := program(reused)
	if len(got) != len(want) {
		t.Fatalf("reset scheduler fired %d events, fresh fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d at %d on reset scheduler, %d on fresh", i, got[i], want[i])
		}
	}
}

// TestResetStaleHandleInert verifies Event handles from before a Reset
// cannot touch recycled records.
func TestResetStaleHandleInert(t *testing.T) {
	s := NewScheduler()
	stale := s.At(10, func() {})
	s.Reset()
	fired := false
	s.At(1, func() { fired = true })
	stale.Cancel() // must not cancel the new event occupying the slot
	if stale.Canceled() {
		t.Fatal("stale handle reports canceled after Reset")
	}
	s.Run()
	if !fired {
		t.Fatal("event cancelled through a stale pre-Reset handle")
	}
}

// TestRunUntilEpoch pins the epoch-advance contract: events strictly
// before the boundary fire, events at the boundary stay pending, the
// clock lands exactly on the boundary, and work injected at the
// boundary orders after the pending same-timestamp backlog.
func TestRunUntilEpoch(t *testing.T) {
	s := NewScheduler()
	var log []int
	s.At(5, func() { log = append(log, 5) })
	s.At(10, func() { log = append(log, 10) }) // backlog at the boundary
	s.At(15, func() { log = append(log, 15) })

	s.RunUntilEpoch(10)
	if s.Now() != 10 {
		t.Fatalf("clock = %d, want 10", s.Now())
	}
	if len(log) != 1 || log[0] != 5 {
		t.Fatalf("fired %v, want only the pre-boundary event", log)
	}

	// Injected at the boundary: must fire after the pending backlog at
	// the same timestamp (its insertion sequence is later).
	s.At(10, func() { log = append(log, 100) })
	s.Run()
	want := []int{5, 10, 100, 15}
	if len(log) != len(want) {
		t.Fatalf("fired %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fired %v, want %v", log, want)
		}
	}
}

// TestRunUntilEpochZeroAndIdle covers the edges: an epoch advance to 0
// is a no-op on a fresh scheduler, and advancing an empty scheduler
// just moves the clock.
func TestRunUntilEpochZeroAndIdle(t *testing.T) {
	s := NewScheduler()
	s.RunUntilEpoch(0)
	if s.Now() != 0 {
		t.Fatalf("clock = %d after epoch 0", s.Now())
	}
	s.RunUntilEpoch(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %d, want 42", s.Now())
	}
	fired := false
	s.At(42, func() { fired = true })
	s.RunUntilEpoch(43)
	if !fired {
		t.Fatal("event at 42 did not fire when advancing past it")
	}
}

// TestJump covers the host-join primitive: a fresh scheduler must be
// able to land on the fleet clock without replaying history, and the
// guard rails must reject any jump that would skip pending work.
func TestJump(t *testing.T) {
	s := NewScheduler()
	s.Jump(100)
	if s.Now() != 100 {
		t.Fatalf("clock = %d after Jump(100)", s.Now())
	}
	s.Jump(100) // same-time jump is a no-op, not an error
	fired := false
	s.At(200, func() { fired = true })
	s.Jump(200) // jumping exactly onto a pending event is legal...
	if fired {
		t.Fatal("Jump must not fire events")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Jump over a pending event did not panic")
			}
		}()
		s.Jump(201) // ...but jumping past it would lose it
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("backwards Jump did not panic")
			}
		}()
		s.Jump(50)
	}()
}
