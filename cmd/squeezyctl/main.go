// Command squeezyctl runs the paper's experiments and prints the tables
// and series each figure reports.
//
// Usage:
//
//	squeezyctl [-quick] [-seed N] fig1|fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|pluglat|all
package main

import (
	"flag"
	"fmt"
	"os"

	"squeezy/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Uint64("seed", 1, "deterministic experiment seed")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: squeezyctl [-quick] [-seed N] <experiment>")
		fmt.Fprintln(os.Stderr, "experiments: fig1 fig2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 pluglat all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick}

	runners := map[string]func(experiments.Options){
		"fig1":    func(o experiments.Options) { fmt.Print(experiments.Fig1(o).Table()) },
		"fig2":    func(o experiments.Options) { fmt.Print(experiments.Fig2(o).Table()) },
		"fig5":    func(o experiments.Options) { fmt.Print(experiments.Fig5(o).Table()) },
		"fig6":    func(o experiments.Options) { fmt.Print(experiments.Fig6(o).Table()) },
		"fig7":    func(o experiments.Options) { fmt.Print(experiments.Fig7(o).Table()) },
		"fig8":    func(o experiments.Options) { fmt.Print(experiments.Fig8(o).Table()) },
		"fig9":    func(o experiments.Options) { fmt.Print(experiments.Fig9(o).Table()) },
		"fig10":   func(o experiments.Options) { fmt.Print(experiments.Fig10(o).Table()) },
		"fig11":   func(o experiments.Options) { fmt.Print(experiments.Fig11(o).Table()) },
		"pluglat": func(o experiments.Options) { fmt.Print(experiments.PlugLatency(o).Table()) },
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "pluglat"} {
			runners[n](opts)
			fmt.Println()
		}
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	run(opts)
}
