// Command squeezyctl runs the paper's experiments through the
// experiment registry and emits each figure's table as aligned text,
// JSON, or CSV.
//
// Usage:
//
//	squeezyctl [flags] list
//	squeezyctl [flags] run <experiment>...
//	squeezyctl [flags] all
//
// A bare experiment name is accepted as shorthand for `run`, so the
// historical `squeezyctl fig6` invocation still works.
//
// Flags:
//
//	-quick       shrink workloads for a fast smoke run
//	-seed N      base seed (default 1); trial t runs under a
//	             splitmix-derived TrialSeed(seed, t)
//	-trials N    run each experiment N times under derived seeds
//	-parallel N  worker-pool size (default GOMAXPROCS); output is
//	             byte-identical to -parallel 1
//	-format F    text, json, or csv
//	-o FILE      write output to FILE instead of stdout
//	-cellstats   print per-cell wall-clock timings to stderr after the
//	             run (cells are the executor's scheduling unit; the
//	             slowest cell bounds the parallel wall clock)
//	-cpuprofile FILE  write a pprof CPU profile of the run to FILE
//	-memprofile FILE  write a pprof heap profile at exit to FILE
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"squeezy/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Uint64("seed", 1, "deterministic base seed")
	trials := flag.Int("trials", 1, "trials per experiment (derived seeds)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	cellStats := flag.Bool("cellstats", false, "print per-cell wall-clock timings to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var names []string
	switch cmd := flag.Arg(0); cmd {
	case "list", "all":
		if flag.NArg() > 1 {
			// Catch misplaced flags: `squeezyctl all -quick` would
			// otherwise silently run the full protocol.
			fmt.Fprintf(os.Stderr, "squeezyctl: %s takes no arguments (got %q)\n", cmd, flag.Args()[1:])
			usage()
			os.Exit(2)
		}
		if cmd == "list" {
			list(os.Stdout)
			return
		}
		names = experiments.Names()
	case "run":
		names = flag.Args()[1:]
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "squeezyctl: run needs at least one experiment name")
			usage()
			os.Exit(2)
		}
	default:
		// Shorthand: treat bare registered names as `run <names>`.
		names = flag.Args()
		for _, n := range names {
			if _, ok := experiments.Get(n); !ok {
				fmt.Fprintf(os.Stderr, "squeezyctl: unknown command or experiment %q\n", n)
				usage()
				os.Exit(2)
			}
		}
	}
	// Validate every name before touching the output file: a typo'd
	// `run` name must not truncate an existing -o results file.
	for _, n := range names {
		if _, ok := experiments.Get(n); !ok {
			fmt.Fprintf(os.Stderr, "squeezyctl: unknown experiment %q (see `squeezyctl list`)\n", n)
			os.Exit(2)
		}
	}

	// Validate format and open the output file before running
	// anything: a full-protocol `all` takes minutes, and a typo'd
	// -format or unwritable -o should fail in milliseconds.
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "squeezyctl: unknown format %q (want text, json, or csv)\n", *format)
		os.Exit(2)
	}
	out := io.Writer(os.Stdout)
	finishOutput := func() error { return nil }
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		// Called after encoding: a failed flush (e.g. ENOSPC) must not
		// exit 0 with a truncated results file.
		finishOutput = func() error {
			ferr := bw.Flush()
			cerr := f.Close()
			if ferr == nil {
				ferr = cerr
			}
			return ferr
		}
		out = bw
	}

	// Profiling brackets only the experiment runs, not flag parsing or
	// encoding, so profiles from different PRs compare like for like.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	reports, stats, err := experiments.RunWithCellStats(names, opts, *trials, *parallel)
	if *cellStats && err == nil {
		printCellStats(os.Stderr, stats)
	}

	var profErr error
	if cpuFile != nil {
		// A failed close can mean a truncated profile (ENOSPC, NFS);
		// surface it like the memprofile path does.
		pprof.StopCPUProfile()
		profErr = cpuFile.Close()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr == nil {
			runtime.GC() // settle the heap so the profile shows retained memory
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if profErr == nil {
			profErr = merr
		}
	}

	// The experiment error is the primary failure; a broken profile
	// path must not mask it — and must not discard the report either,
	// so the profErr exit waits until the results are written out.
	if err != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", err)
		os.Exit(2)
	}

	switch *format {
	case "text":
		err = experiments.EncodeText(out, reports, *trials)
	case "json":
		err = experiments.EncodeJSON(out, reports)
	case "csv":
		err = experiments.EncodeCSV(out, reports)
	}
	if err == nil {
		err = finishOutput()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", err)
		os.Exit(1)
	}
	// Results are safely written; only now may a profiling failure
	// surface as the exit status.
	if profErr != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", profErr)
		os.Exit(1)
	}
}

// printCellStats writes the per-cell wall-clock table to w (stderr):
// slowest cells first, then per-experiment totals. Timings go to
// stderr only, so -o result files stay byte-identical across runs.
func printCellStats(w io.Writer, stats []experiments.CellStat) {
	sorted := make([]experiments.CellStat, len(stats))
	copy(sorted, stats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Wall > sorted[j].Wall })
	var total time.Duration
	perExp := map[string]time.Duration{}
	for _, s := range stats {
		total += s.Wall
		perExp[s.Experiment] += s.Wall
	}
	// Per-cell walls include any timeslicing between workers, so the
	// total and the floor interpretation are only meaningful when the
	// run was not oversubscribed (workers <= cores; -parallel 1 gives
	// clean per-cell numbers on any box).
	fmt.Fprintf(w, "cells: %d, summed cell wall time %v (== cpu time only if workers <= cores)\n",
		len(stats), total.Round(time.Millisecond))
	if len(sorted) > 0 {
		// On a non-oversubscribed run the slowest cell is the parallel
		// wall-clock floor: no worker count can finish the batch faster.
		fmt.Fprintf(w, "slowest cell: %v (parallel wall-clock floor when workers <= cores)\n",
			sorted[0].Wall.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "%-20s %-8s %-32s %s\n", "experiment", "trial", "cell", "wall")
	for _, s := range sorted {
		fmt.Fprintf(w, "%-20s %-8d %-32s %v\n", s.Experiment, s.Trial, s.Label, s.Wall.Round(time.Millisecond))
	}
	exps := make([]string, 0, len(perExp))
	for e := range perExp {
		exps = append(exps, e)
	}
	sort.Slice(exps, func(i, j int) bool { return perExp[exps[i]] > perExp[exps[j]] })
	fmt.Fprintf(w, "\n%-20s %s\n", "experiment", "total")
	for _, e := range exps {
		fmt.Fprintf(w, "%-20s %v\n", e, perExp[e].Round(time.Millisecond))
	}
}

func list(w io.Writer) {
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	width := 0
	for _, e := range experiments.All() {
		if len(e.Name()) > width {
			width = len(e.Name())
		}
	}
	for _, e := range experiments.All() {
		fmt.Fprintf(tw, "%-*s  %s\n", width, e.Name(), e.Describe())
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: squeezyctl [flags] <command>

commands:
  list              list registered experiments
  run <name>...     run the named experiments
  all               run every registered experiment
  <name>...         shorthand for run

flags:`)
	flag.PrintDefaults()
}
