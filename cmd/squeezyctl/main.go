// Command squeezyctl runs the paper's experiments through the
// experiment registry and emits each figure's table as aligned text,
// JSON, or CSV.
//
// Usage:
//
//	squeezyctl [flags] list
//	squeezyctl [flags] run <experiment>...
//	squeezyctl [flags] all
//
// A bare experiment name is accepted as shorthand for `run`, so the
// historical `squeezyctl fig6` invocation still works.
//
// Flags:
//
//	-quick       shrink workloads for a fast smoke run
//	-seed N      base seed (default 1); trial t runs under a
//	             splitmix-derived TrialSeed(seed, t)
//	-trials N    run each experiment N times under derived seeds
//	-parallel N  worker-pool size; output is byte-identical to
//	             -parallel 1. 0 (the default) uses GOMAXPROCS capped by
//	             the -maxworldmem budget
//	-maxworldmem B  memory budget for -parallel 0 worker sizing (e.g.
//	             4GiB, 512MiB, or bytes); default: the host's available
//	             memory; 0 disables the cap
//	-format F    text, json, or csv
//	-o FILE      write output to FILE instead of stdout
//	-cellstats   print per-cell wall-clock timings to stderr after the
//	             run (cells are the executor's scheduling unit; sharded
//	             fleet cells additionally break down into per-shard
//	             walls, whose slowest shard bounds the parallel wall
//	             clock); -cellstats=json emits the same numbers plus
//	             the parallel-floor rule as JSON on stderr
//	-simtrace FILE  record a simulation trace and write it as Chrome
//	             trace-event JSON (open at https://ui.perfetto.dev): one
//	             process per cell with a fleet/dispatcher track and one
//	             track per host on simulated time, plus a wall-clock
//	             runner process with the executor's cell spans. Tracing
//	             never changes results; tables stay byte-identical.
//	-metrics FILE   dump each traced cell's counter registry (cold
//	             starts, warm hits by tier, re-placements, pages
//	             reclaimed/stranded per backend, autoscaler actions) as
//	             JSON
//	-faults S    overlay a fault plan on every fleet experiment cell:
//	             a named scenario (reclaim-degrade, cold-crash,
//	             straggler; none is the empty plan), a rack-level
//	             scenario (rack-fail, zone-degrade, rack-partition —
//	             meaningful only with -topology), or "fuzz" for a
//	             random plan derived from -faultseed. Single-host
//	             experiments ignore it
//	-faultseed N seed for fuzzed fault plans and every host's fault
//	             decision stream (default: -seed)
//	-topology RxZ  overlay a rack/zone topology on every fleet
//	             experiment cell: R racks spread over Z zones (e.g.
//	             -topology 4x2), hosts assigned round-robin. Enables
//	             the rack-level fault scenarios and makes the
//	             blast-radius-aware policies (spread, zone-headroom)
//	             meaningful; a bare R means Z=1
//	-sketch      collect every fleet experiment's latency samples in
//	             bounded-memory reservoir sketches instead of exact
//	             retained-value samples. Order statistics are then
//	             accurate to a documented rank-error bound rather than
//	             byte-exact; off (the default) keeps every recorded
//	             table byte-identical
//	-days N      simulated days for the multi-day experiments
//	             (cluster-diurnal); 0 keeps the experiment's default
//	-cpuprofile FILE  write a pprof CPU profile of the run to FILE
//	-memprofile FILE  write a pprof heap profile at exit to FILE
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"squeezy/internal/experiments"
	"squeezy/internal/fault"
	"squeezy/internal/obs"
)

// validFaultScenario accepts the empty string (fault-free), any named
// scenario — host-level or rack-level — or the fuzzed-plan keyword.
func validFaultScenario(name string) bool {
	if name == "" || name == "fuzz" {
		return true
	}
	for _, s := range fault.ScenarioNames() {
		if name == s {
			return true
		}
	}
	for _, s := range fault.DomainScenarioNames() {
		if name == s {
			return true
		}
	}
	return false
}

// parseTopology parses a -topology value: "RxZ" (racks x zones) or a
// bare "R" (one zone). "" means no topology.
func parseTopology(s string) (racks, zones int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	r, z := s, ""
	if i := strings.IndexByte(s, 'x'); i >= 0 {
		r, z = s[:i], s[i+1:]
	}
	racks, err = strconv.Atoi(r)
	if err == nil && z != "" {
		zones, err = strconv.Atoi(z)
	}
	if z == "" {
		zones = 1
	}
	if err != nil || racks < 1 || zones < 1 || zones > racks {
		return 0, 0, fmt.Errorf("bad -topology %q (want RxZ with 1 <= Z <= R, e.g. 4x2)", s)
	}
	return racks, zones, nil
}

// cellStatsFlag is the tri-state -cellstats value: "" (off), "text"
// (bare -cellstats), or "json" (-cellstats=json).
type cellStatsFlag struct{ mode string }

func (f *cellStatsFlag) String() string { return f.mode }

func (f *cellStatsFlag) Set(v string) error {
	switch v {
	case "true", "text":
		f.mode = "text"
	case "false", "":
		f.mode = ""
	case "json":
		f.mode = "json"
	default:
		return fmt.Errorf("want -cellstats, -cellstats=text, or -cellstats=json")
	}
	return nil
}

// IsBoolFlag lets a bare -cellstats (no value) select text mode.
func (f *cellStatsFlag) IsBoolFlag() bool { return true }

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	seed := flag.Uint64("seed", 1, "deterministic base seed")
	trials := flag.Int("trials", 1, "trials per experiment (derived seeds)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, capped by -maxworldmem)")
	maxWorldMem := flag.String("maxworldmem", "", "memory budget for -parallel 0 worker sizing, e.g. 4GiB (default: available memory; 0 = no cap)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	var cellStats cellStatsFlag
	flag.Var(&cellStats, "cellstats", "print per-cell wall-clock timings to stderr (=json for machine-readable)")
	simTrace := flag.String("simtrace", "", "write a Chrome/Perfetto trace-event JSON of the run to this file")
	metricsPath := flag.String("metrics", "", "write the per-cell counter registries as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	faults := flag.String("faults", "", `fault scenario for fleet experiments (a fault.ScenarioNames() name or "fuzz")`)
	faultSeed := flag.Uint64("faultseed", 0, "seed for fuzzed fault plans and fault decision streams (0 = -seed)")
	topology := flag.String("topology", "", "rack/zone topology for fleet experiments, RxZ (e.g. 4x2; empty = flat fleet)")
	sketch := flag.Bool("sketch", false, "bounded-memory reservoir sketches for every fleet experiment's latency samples (tables then rank-error-accurate, not byte-exact)")
	days := flag.Float64("days", 0, "simulated days for the multi-day experiments (cluster-diurnal; 0 = experiment default)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	var names []string
	switch cmd := flag.Arg(0); cmd {
	case "list", "all":
		if flag.NArg() > 1 {
			// Catch misplaced flags: `squeezyctl all -quick` would
			// otherwise silently run the full protocol.
			fmt.Fprintf(os.Stderr, "squeezyctl: %s takes no arguments (got %q)\n", cmd, flag.Args()[1:])
			usage()
			os.Exit(2)
		}
		if cmd == "list" {
			list(os.Stdout)
			return
		}
		names = experiments.Names()
	case "run":
		names = flag.Args()[1:]
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "squeezyctl: run needs at least one experiment name")
			usage()
			os.Exit(2)
		}
	default:
		// Shorthand: treat bare registered names as `run <names>`.
		names = flag.Args()
		for _, n := range names {
			if _, ok := experiments.Get(n); !ok {
				fmt.Fprintf(os.Stderr, "squeezyctl: unknown command or experiment %q\n", n)
				usage()
				os.Exit(2)
			}
		}
	}
	// Validate every name before touching the output file: a typo'd
	// `run` name must not truncate an existing -o results file.
	for _, n := range names {
		if _, ok := experiments.Get(n); !ok {
			fmt.Fprintf(os.Stderr, "squeezyctl: unknown experiment %q (see `squeezyctl list`)\n", n)
			os.Exit(2)
		}
	}

	// Validate format and open the output file before running
	// anything: a full-protocol `all` takes minutes, and a typo'd
	// -format or unwritable -o should fail in milliseconds.
	switch *format {
	case "text", "json", "csv":
	default:
		fmt.Fprintf(os.Stderr, "squeezyctl: unknown format %q (want text, json, or csv)\n", *format)
		os.Exit(2)
	}
	out := io.Writer(os.Stdout)
	finishOutput := func() error { return nil }
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		// Called after encoding: a failed flush (e.g. ENOSPC) must not
		// exit 0 with a truncated results file.
		finishOutput = func() error {
			ferr := bw.Flush()
			cerr := f.Close()
			if ferr == nil {
				ferr = cerr
			}
			return ferr
		}
		out = bw
	}

	// Profiling brackets only the experiment runs, not flag parsing or
	// encoding, so profiles from different PRs compare like for like.
	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	workers := *parallel
	if workers <= 0 {
		budget, perr := parseMemBudget(*maxWorldMem)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "squeezyctl:", perr)
			os.Exit(2)
		}
		workers = experiments.AutoWorkers(budget)
	}

	if !validFaultScenario(*faults) {
		fmt.Fprintf(os.Stderr, "squeezyctl: unknown -faults scenario %q (want %s, %s, or fuzz)\n",
			*faults, strings.Join(fault.ScenarioNames(), ", "),
			strings.Join(fault.DomainScenarioNames(), ", "))
		os.Exit(2)
	}
	topoRacks, topoZones, terr := parseTopology(*topology)
	if terr != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", terr)
		os.Exit(2)
	}

	var sink *obs.Sink
	if *simTrace != "" || *metricsPath != "" {
		sink = &obs.Sink{}
	}
	if *days < 0 {
		fmt.Fprintf(os.Stderr, "squeezyctl: bad -days %v (want >= 0)\n", *days)
		os.Exit(2)
	}
	opts := experiments.Options{
		Seed: *seed, Quick: *quick, Obs: sink,
		FaultScenario: *faults, FaultSeed: *faultSeed,
		TopoRacks: topoRacks, TopoZones: topoZones,
		Sketch: *sketch, Days: *days,
	}
	reports, stats, err := experiments.RunWithCellStats(names, opts, *trials, workers)
	if err == nil {
		switch cellStats.mode {
		case "text":
			printCellStats(os.Stderr, stats)
		case "json":
			if jerr := experiments.EncodeCellStatsJSON(os.Stderr, stats); jerr != nil {
				fmt.Fprintln(os.Stderr, "squeezyctl:", jerr)
			}
		}
	}

	var profErr error
	if cpuFile != nil {
		// A failed close can mean a truncated profile (ENOSPC, NFS);
		// surface it like the memprofile path does.
		pprof.StopCPUProfile()
		profErr = cpuFile.Close()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr == nil {
			runtime.GC() // settle the heap so the profile shows retained memory
			merr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); merr == nil {
				merr = cerr
			}
		}
		if profErr == nil {
			profErr = merr
		}
	}

	// The experiment error is the primary failure; a broken profile
	// path must not mask it — and must not discard the report either,
	// so the profErr exit waits until the results are written out.
	if err != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", err)
		os.Exit(2)
	}

	switch *format {
	case "text":
		err = experiments.EncodeText(out, reports, *trials)
	case "json":
		err = experiments.EncodeJSON(out, reports)
	case "csv":
		err = experiments.EncodeCSV(out, reports)
	}
	if err == nil {
		err = finishOutput()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", err)
		os.Exit(1)
	}
	// Tables are safely written; trace and metrics files follow so a
	// broken -simtrace path cannot cost the results.
	if err := writeObsFiles(sink, *simTrace, *metricsPath, stats); err != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", err)
		os.Exit(1)
	}
	// Only now may a profiling failure surface as the exit status.
	if profErr != nil {
		fmt.Fprintln(os.Stderr, "squeezyctl:", profErr)
		os.Exit(1)
	}
}

// writeObsFiles dumps the collected simulation traces as Chrome
// trace-event JSON (-simtrace, with the runner's wall-clock spans on
// their own track) and the counter registries (-metrics).
func writeObsFiles(sink *obs.Sink, tracePath, metricsPath string, stats []experiments.CellStat) error {
	if sink == nil {
		return nil
	}
	traces := sink.Traces()
	writeFile := func(path string, write func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		err = write(bw)
		if ferr := bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if tracePath != "" {
		err := writeFile(tracePath, func(w io.Writer) error {
			return obs.WriteTrace(w, traces, experiments.RunnerSpans(stats))
		})
		if err != nil {
			return err
		}
	}
	if metricsPath != "" {
		err := writeFile(metricsPath, func(w io.Writer) error {
			return obs.WriteMetrics(w, traces)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// parseMemBudget parses a -maxworldmem value: a byte count with an
// optional KiB/MiB/GiB suffix. "" means detect (-1), "0" disables the
// cap.
func parseMemBudget(s string) (int64, error) {
	if s == "" {
		return -1, nil
	}
	mult := int64(1)
	num := s
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}} {
		if strings.HasSuffix(s, u.suffix) {
			mult = u.mult
			num = strings.TrimSuffix(s, u.suffix)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
	// Reject overflow rather than wrapping: a wrapped negative budget
	// would silently mean "auto-detect", discarding the user's value.
	if err != nil || n < 0 || (mult > 1 && n > (1<<63-1)/mult) {
		return 0, fmt.Errorf("bad -maxworldmem %q (want e.g. 4GiB, 512MiB, or bytes)", s)
	}
	return n * mult, nil
}

// printCellStats writes the per-cell wall-clock table to w (stderr):
// slowest cells first, then per-experiment totals. Sharded fleet cells
// get a per-shard breakdown line: with idle workers stealing shard
// advances, the cell's critical path is its slowest shard, and the
// batch's parallel floor is the slowest shard of the slowest cell.
// Timings go to stderr only, so -o result files stay byte-identical
// across runs.
func printCellStats(w io.Writer, stats []experiments.CellStat) {
	sorted := make([]experiments.CellStat, len(stats))
	copy(sorted, stats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Wall > sorted[j].Wall })
	var total time.Duration
	perExp := map[string]time.Duration{}
	for _, s := range stats {
		total += s.Wall
		perExp[s.Experiment] += s.Wall
	}
	// Per-cell walls include any timeslicing between workers, so the
	// total and the floor interpretation are only meaningful when the
	// run was not oversubscribed (workers <= cores; -parallel 1 gives
	// clean per-cell numbers on any box).
	fmt.Fprintf(w, "cells: %d, summed cell wall time %v (== cpu time only if workers <= cores)\n",
		len(stats), total.Round(time.Millisecond))
	if len(sorted) > 0 {
		// On a non-oversubscribed run the slowest undecomposable unit is
		// the parallel wall-clock floor: a plain cell contributes its
		// wall, a sharded cell only its slowest shard (its other shards
		// advance on other workers).
		floor := time.Duration(0)
		for _, s := range stats {
			if f := experiments.CellFloor(s); f > floor {
				floor = f
			}
		}
		fmt.Fprintf(w, "slowest cell: %v, parallel floor (serial dispatch + slowest shard of the worst cell): %v when workers <= cores\n",
			sorted[0].Wall.Round(time.Millisecond), floor.Round(time.Millisecond))
	}
	fmt.Fprintf(w, "%-20s %-8s %-32s %s\n", "experiment", "trial", "cell", "wall")
	for _, s := range sorted {
		fmt.Fprintf(w, "%-20s %-8d %-32s %v\n", s.Experiment, s.Trial, s.Label, s.Wall.Round(time.Millisecond))
		if len(s.ShardWalls) > 0 {
			fmt.Fprintf(w, "%-20s %-8s   shards:", "", "")
			for i, sw := range s.ShardWalls {
				fmt.Fprintf(w, " %d=%v", i, sw.Round(time.Millisecond))
			}
			fmt.Fprintln(w)
		}
	}
	exps := make([]string, 0, len(perExp))
	for e := range perExp {
		exps = append(exps, e)
	}
	sort.Slice(exps, func(i, j int) bool { return perExp[exps[i]] > perExp[exps[j]] })
	fmt.Fprintf(w, "\n%-20s %s\n", "experiment", "total")
	for _, e := range exps {
		fmt.Fprintf(w, "%-20s %v\n", e, perExp[e].Round(time.Millisecond))
	}
}

func list(w io.Writer) {
	tw := bufio.NewWriter(w)
	defer tw.Flush()
	width := 0
	for _, e := range experiments.All() {
		if len(e.Name()) > width {
			width = len(e.Name())
		}
	}
	for _, e := range experiments.All() {
		fmt.Fprintf(tw, "%-*s  %s\n", width, e.Name(), e.Describe())
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: squeezyctl [flags] <command>

commands:
  list              list registered experiments
  run <name>...     run the named experiments
  all               run every registered experiment
  <name>...         shorthand for run

flags:`)
	flag.PrintDefaults()
}
