// Command tracegen synthesizes bursty FaaS invocation traces and prints
// per-minute statistics, the instance-churn analysis of Figure 2, or a
// whole Zipf fleet of traces.
//
// Usage:
//
//	tracegen [-seed N] [-minutes M] [-base RPS] [-burst RPS]
//	         [-burstlen SEC] [-burstgap SEC] [-churn] [-csv] [-events]
//	tracegen -funcs N [-zipf S] ...   # fleet mode (trace.GenFleet)
//
// In fleet mode -base and -burst are fleet-aggregate rates split across
// functions by Zipf popularity. -csv emits machine-readable per-minute
// counts (minute,invocations or func,minute,invocations) for plotting.
// -events instead streams the exact-replay CSV ("func,t_ns", one row
// per invocation) straight from the generator cursors in O(1) memory;
// trace.OpenCSV replays either layout bit for bit.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"squeezy/internal/sim"
	"squeezy/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed")
	minutes := flag.Int("minutes", 10, "trace length in minutes")
	base := flag.Float64("base", 0.5, "quiet-period request rate (rps; fleet-aggregate with -funcs)")
	burst := flag.Float64("burst", 20, "in-burst request rate (rps; fleet-aggregate with -funcs)")
	burstLen := flag.Float64("burstlen", 20, "mean burst duration in seconds")
	burstGap := flag.Float64("burstgap", 45, "mean quiet gap between bursts in seconds")
	funcs := flag.Int("funcs", 0, "fleet mode: generate N functions with Zipf popularity")
	zipf := flag.Float64("zipf", 1.1, "fleet popularity exponent (with -funcs)")
	churn := flag.Bool("churn", false, "print instance churn (Figure 2 analysis) instead of rates")
	csvOut := flag.Bool("csv", false, "emit per-minute counts as CSV for plotting")
	events := flag.Bool("events", false, "emit the exact-replay events CSV (func,t_ns), streamed in O(1) memory")
	flag.Parse()

	if *events && *churn {
		fmt.Fprintln(os.Stderr, "tracegen: -events emits raw invocations; it cannot be combined with -churn")
		os.Exit(2)
	}

	if *burstLen <= 0 || *burstGap <= 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -burstlen and -burstgap must be positive")
		os.Exit(2)
	}
	dur := sim.Duration(*minutes) * sim.Minute
	bl := sim.Duration(*burstLen * float64(sim.Second))
	bg := sim.Duration(*burstGap * float64(sim.Second))

	if *funcs > 0 {
		if *churn {
			fmt.Fprintln(os.Stderr, "tracegen: -churn is a single-trace analysis; it cannot be combined with -funcs")
			os.Exit(2)
		}
		fcfg := trace.FleetConfig{
			Funcs:         *funcs,
			Duration:      dur,
			ZipfS:         *zipf,
			TotalBaseRPS:  *base,
			TotalBurstRPS: *burst,
			BurstLen:      bl,
			BurstGap:      bg,
		}
		if *events {
			writeEvents(trace.NewFleetStream(*seed, fcfg))
			return
		}
		traces := trace.GenFleet(*seed, fcfg)
		if *csvOut {
			rows := [][]string{}
			for fi, tr := range traces {
				for m, c := range perMinute(tr, *minutes) {
					rows = append(rows, []string{strconv.Itoa(fi), strconv.Itoa(m), strconv.Itoa(c)})
				}
			}
			writeCSV([]string{"func", "minute", "invocations"}, rows)
			return
		}
		total := 0
		for _, tr := range traces {
			total += tr.Len()
		}
		fmt.Printf("fleet: %d functions, %d invocations over %d minutes\n", *funcs, total, *minutes)
		fmt.Println("func   invocations  peak_concurrency@1s")
		for fi, tr := range traces {
			fmt.Printf("%4d  %12d  %19d\n", fi, tr.Len(), trace.PeakConcurrency(tr, sim.Second))
		}
		return
	}

	bcfg := trace.BurstyConfig{
		Duration: dur,
		BaseRPS:  *base,
		BurstRPS: *burst,
		BurstLen: bl,
		BurstGap: bg,
	}
	if *events {
		writeEvents(trace.NewBursty(*seed, bcfg))
		return
	}
	tr := trace.GenBursty(*seed, bcfg)
	if *churn {
		points := trace.InstanceChurn(tr, sim.Second, 5*sim.Minute, dur)
		if *csvOut {
			rows := [][]string{}
			for _, p := range points {
				rows = append(rows, []string{strconv.Itoa(p.Minute), strconv.Itoa(p.Creations), strconv.Itoa(p.Evictions)})
			}
			writeCSV([]string{"minute", "creations", "evictions"}, rows)
			return
		}
		fmt.Println("minute  creations  evictions")
		for _, p := range points {
			fmt.Printf("%6d  %9d  %9d\n", p.Minute, p.Creations, p.Evictions)
		}
		return
	}
	counts := perMinute(tr, *minutes)
	if *csvOut {
		rows := [][]string{}
		for m, c := range counts {
			rows = append(rows, []string{strconv.Itoa(m), strconv.Itoa(c)})
		}
		writeCSV([]string{"minute", "invocations"}, rows)
		return
	}
	fmt.Printf("total invocations: %d (peak concurrency %d at 1s exec)\n",
		tr.Len(), trace.PeakConcurrency(tr, sim.Second))
	fmt.Println("minute  invocations")
	for m, c := range counts {
		fmt.Printf("%6d  %11d\n", m, c)
	}
}

func perMinute(tr *trace.Trace, minutes int) []int {
	counts := make([]int, minutes)
	for _, ts := range tr.Times {
		m := int(sim.Duration(ts) / sim.Minute)
		if m < len(counts) {
			counts[m]++
		}
	}
	return counts
}

func writeEvents(s trace.Stream) {
	if _, err := trace.WriteCSV(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func writeCSV(header []string, rows [][]string) {
	w := csv.NewWriter(os.Stdout)
	w.Write(header)
	for _, r := range rows {
		w.Write(r)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
