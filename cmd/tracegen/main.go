// Command tracegen synthesizes bursty FaaS invocation traces and prints
// per-minute statistics (or the instance-churn analysis of Figure 2).
//
// Usage:
//
//	tracegen [-seed N] [-minutes M] [-base RPS] [-burst RPS] [-churn]
package main

import (
	"flag"
	"fmt"

	"squeezy/internal/sim"
	"squeezy/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "deterministic seed")
	minutes := flag.Int("minutes", 10, "trace length in minutes")
	base := flag.Float64("base", 0.5, "quiet-period request rate (rps)")
	burst := flag.Float64("burst", 20, "in-burst request rate (rps)")
	churn := flag.Bool("churn", false, "print instance churn (Figure 2 analysis) instead of rates")
	flag.Parse()

	dur := sim.Duration(*minutes) * sim.Minute
	tr := trace.GenBursty(*seed, trace.BurstyConfig{
		Duration: dur,
		BaseRPS:  *base,
		BurstRPS: *burst,
		BurstLen: 20 * sim.Second,
		BurstGap: 45 * sim.Second,
	})
	if *churn {
		fmt.Println("minute  creations  evictions")
		for _, p := range trace.InstanceChurn(tr, sim.Second, 5*sim.Minute, dur) {
			fmt.Printf("%6d  %9d  %9d\n", p.Minute, p.Creations, p.Evictions)
		}
		return
	}
	counts := make([]int, *minutes)
	for _, ts := range tr.Times {
		m := int(sim.Duration(ts) / sim.Minute)
		if m < len(counts) {
			counts[m]++
		}
	}
	fmt.Printf("total invocations: %d (peak concurrency %d at 1s exec)\n",
		tr.Len(), trace.PeakConcurrency(tr, sim.Second))
	fmt.Println("minute  invocations")
	for m, c := range counts {
		fmt.Printf("%6d  %11d\n", m, c)
	}
}
