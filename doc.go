// Package squeezy is a full reproduction of "Squeezy: Rapid VM Memory
// Reclamation for Serverless Functions" (EuroSys'26) as a deterministic
// discrete-event simulation written in pure Go.
//
// The paper's artifact is a Linux 6.6 kernel extension plus a Cloud
// Hypervisor deployment; this repository re-implements every layer the
// evaluation depends on — buddy allocator, zones and memory blocks, the
// guest process/page-cache model, virtio-mem and balloon drivers, the
// Squeezy partition manager, a host/VMM model with nested-fault and
// VM-exit costs, and an OpenWhisk-style N:1 FaaS runtime — and
// regenerates every figure of §6. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// Entry points:
//
//   - cmd/squeezyctl — list and run registered experiments
//     (`squeezyctl list`, `squeezyctl run fig6`, `squeezyctl all`)
//     with parallel execution, multi-seed trials, and text/JSON/CSV
//     output;
//   - examples/ — runnable demos of the public API;
//   - bench_test.go — registry-driven benchmarks, one per experiment.
//
// README.md has the quickstart; DESIGN.md and EXPERIMENTS.md are in
// the repository root alongside this file.
package squeezy
