module squeezy

go 1.24
