// faasload: an N:1 FaaS runtime serving a bursty trace on a Squeezy VM
// — the §6.2 integration. Prints a per-10s dashboard of live instances,
// committed and populated host memory, and final latency statistics.
package main

import (
	"fmt"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/trace"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func main() {
	sched := sim.NewScheduler()
	rt := faas.NewRuntime(sched, hostmem.New(0), costmodel.Default())
	fn := workload.ByName("Cnn")
	fv := rt.AddVM(faas.VMConfig{
		Name: "cnn-vm", Kind: faas.Squeezy, Fn: fn, N: 16,
		KeepAlive: 45 * sim.Second,
	})

	const duration = 4 * sim.Minute
	tr := trace.GenBursty(7, trace.BurstyConfig{
		Duration: duration * 3 / 4,
		BaseRPS:  0.3, BurstRPS: 5,
		BurstLen: 20 * sim.Second, BurstGap: 40 * sim.Second,
	})
	for _, ts := range tr.Times {
		ts := ts
		sched.At(ts, func() { fv.InvokePrimary(nil) })
	}

	fmt.Println("  time  live  idle  committed  populated")
	var tick func()
	tick = func() {
		fmt.Printf("%5.0fs  %4d  %4d  %9s  %9s\n",
			sched.Now().Seconds(), fv.LiveInstances(), fv.IdleInstances(),
			units.HumanBytes(rt.CommittedBytes()), units.HumanBytes(rt.PopulatedBytes()))
		if sched.Now() < sim.Time(duration) {
			sched.After(10*sim.Second, tick)
		}
	}
	sched.At(0, tick)
	sched.RunUntil(sim.Time(duration))

	lat := fv.Latencies[fn.Name]
	fmt.Printf("\nrequests: %d (cold %d, warm %d)\n", lat.N(), fv.ColdStarts, fv.WarmStarts)
	fmt.Printf("latency: p50 %.0fms  p99 %.0fms  max %.0fms\n", lat.P50(), lat.P99(), lat.Max())
	fmt.Printf("reclaimed %s across %d unplugs (%.0f MiB/s)\n",
		units.HumanBytes(fv.ReclaimedBytes), fv.ReclaimOps, fv.ReclaimThroughputMiBs())
}
