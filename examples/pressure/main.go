// pressure: the §6.2.2 scenario in miniature — two N:1 VMs share a host
// too small for both functions' peaks, so one VM's scale-up must wait
// for the other VM's idle instances to be evicted and unplugged. Run it
// twice (Squeezy vs vanilla virtio-mem) and compare the waits.
package main

import (
	"fmt"

	"squeezy/internal/costmodel"
	"squeezy/internal/faas"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/workload"
)

func main() {
	for _, kind := range []faas.BackendKind{faas.VirtioMem, faas.Squeezy} {
		run(kind)
	}
}

func run(kind faas.BackendKind) {
	bfs := workload.ByName("BFS")
	cnn := workload.ByName("Cnn")
	inst := units.AlignUp(bfs.MemoryLimit, units.BlockSize)
	boot := func(fn *workload.Function) int64 {
		return units.AlignUp(fn.GuestOSBytes+64*units.MiB, units.BlockSize) +
			units.AlignUp(fn.FileSharedBytes*5/4, units.BlockSize)
	}
	// Room for both VMs' fixed state plus ~3 instances total.
	hostBytes := boot(bfs) + boot(cnn) + 3*inst + inst/2

	sched := sim.NewScheduler()
	rt := faas.NewRuntime(sched, hostmem.New(hostBytes), costmodel.Default())
	vmA := rt.AddVM(faas.VMConfig{Name: "bfs-vm", Kind: kind, Fn: bfs, N: 8, KeepAlive: 2 * sim.Minute})
	vmB := rt.AddVM(faas.VMConfig{Name: "cnn-vm", Kind: kind, Fn: cnn, N: 8, KeepAlive: 2 * sim.Minute})

	// Phase 1: BFS burst fills the host.
	for i := 0; i < 3; i++ {
		delay := sim.Duration(i) * 100 * sim.Millisecond
		sched.At(sim.Time(delay), func() { vmA.InvokePrimary(nil) })
	}
	// Phase 2 (t=30s): CNN needs memory; BFS instances are idle and must
	// be evicted + unplugged first.
	var cnnResults []faas.Result
	sched.At(sim.Time(30*sim.Second), func() {
		for i := 0; i < 2; i++ {
			vmB.InvokePrimary(func(r faas.Result) { cnnResults = append(cnnResults, r) })
		}
	})
	sched.RunUntil(sim.Time(2 * sim.Minute))

	fmt.Printf("%s:\n", kind)
	for i, r := range cnnResults {
		fmt.Printf("  CNN cold start %d: total %7.0fms (waited %6.0fms for memory, plug %4.0fms)\n",
			i+1, r.Latency.Milliseconds(), r.Phases.MemWait.Milliseconds(), r.Phases.VMMDelay.Milliseconds())
	}
	fmt.Printf("  BFS evictions under pressure: %d\n\n", vmA.Evictions)
}
