// reclaim: the §6.1 microbenchmark head-to-head — kill a memhog
// instance in a loaded VM and reclaim its memory with ballooning,
// vanilla virtio-mem, and Squeezy, printing the latency breakdowns.
package main

import (
	"fmt"

	"squeezy/internal/balloon"
	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/virtiomem"
	"squeezy/internal/vmm"
	"squeezy/internal/workload"
)

const (
	instSize  = 512 * units.MiB
	instances = 8
)

func main() {
	fmt.Printf("reclaiming %s from a VM with %d memhog instances\n\n",
		units.HumanBytes(instSize), instances)
	runBalloon()
	runVirtioMem()
	runSqueezy()
}

func newVM(sched *sim.Scheduler) *vmm.VM {
	vm := vmm.New("bench", sched, costmodel.Default(), hostmem.New(0), 8)
	vm.PinReclaimThreads()
	return vm
}

func loadHogs(k *guestos.Kernel, attach func(*workload.Memhog)) []*workload.Memhog {
	hogs := make([]*workload.Memhog, instances)
	for i := range hogs {
		hogs[i] = workload.NewMemhog(k, fmt.Sprintf("memhog%d", i), instSize)
		if attach != nil {
			attach(hogs[i])
		}
	}
	// Interleaved warmup scatters footprints across blocks.
	const slice = 16 * units.MiB
	for r := int64(0); r < instSize/slice; r++ {
		for _, h := range hogs {
			k.TouchAnon(h.Proc, slice, guestos.HugeOrder)
		}
	}
	return hogs
}

func runBalloon() {
	sched := sim.NewScheduler()
	vm := newVM(sched)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes: units.BlockSize, MovableBytes: instances * instSize,
		KernelResidentBytes: 16 * units.MiB,
	})
	k.OnlineAllMovable()
	d := balloon.New(k)
	hogs := loadHogs(k, nil)
	hogs[0].Kill()
	d.Inflate(instSize, func(r balloon.InflateResult) {
		fmt.Printf("balloon:    %8.1fms  (%s)\n", r.Latency.Milliseconds(), r.Breakdown)
	})
	sched.Run()
}

func runVirtioMem() {
	sched := sim.NewScheduler()
	vm := newVM(sched)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes: units.BlockSize, MovableBytes: instances * instSize,
		KernelResidentBytes: 16 * units.MiB,
	})
	d := virtiomem.New(k)
	d.Plug(instances*instSize, func(int64) {})
	sched.Run()
	hogs := loadHogs(k, nil)
	hogs[0].Kill()
	d.Unplug(instSize, func(r virtiomem.UnplugResult) {
		fmt.Printf("virtio-mem: %8.1fms  (%s)\n", r.Latency.Milliseconds(), r.Breakdown)
	})
	sched.Run()
}

func runSqueezy() {
	sched := sim.NewScheduler()
	vm := newVM(sched)
	k := guestos.NewKernel(vm, guestos.Config{
		BootBytes: units.BlockSize, KernelResidentBytes: 16 * units.MiB,
	})
	mgr := core.NewManager(k, core.Config{PartitionBytes: instSize, Concurrency: instances})
	mgr.Plug(instances, func(int) {})
	sched.Run()
	hogs := loadHogs(k, func(h *workload.Memhog) {
		mgr.Attach(h.Proc, func(*core.Partition) {})
	})
	hogs[0].Kill()
	mgr.Unplug(1, func(r core.UnplugResult) {
		fmt.Printf("squeezy:    %8.1fms  (%s)\n", r.Latency.Milliseconds(), r.Breakdown)
	})
	sched.Run()
}
