// Quickstart: boot a Squeezy-enabled guest, plug a partition, run a
// function instance inside it, and watch the instant unplug when it
// terminates — the paper's core workflow (Figure 4) in ~60 lines.
package main

import (
	"fmt"

	"squeezy/internal/core"
	"squeezy/internal/costmodel"
	"squeezy/internal/guestos"
	"squeezy/internal/hostmem"
	"squeezy/internal/sim"
	"squeezy/internal/units"
	"squeezy/internal/vmm"
)

func main() {
	sched := sim.NewScheduler()
	host := hostmem.New(0) // unlimited host memory
	vm := vmm.New("demo-vm", sched, costmodel.Default(), host, 4)

	// Guest kernel with 128 MiB of boot memory; Squeezy manages the rest.
	kernel := guestos.NewKernel(vm, guestos.Config{
		BootBytes:           units.BlockSize,
		KernelResidentBytes: 32 * units.MiB,
	})
	// Four 512 MiB partitions (concurrency factor N=4) plus a 256 MiB
	// shared partition for file-backed dependencies.
	mgr := core.NewManager(kernel, core.Config{
		PartitionBytes: 512 * units.MiB,
		Concurrency:    4,
		SharedBytes:    256 * units.MiB,
	})

	// Scale up: the hypervisor plugs one partition (Figure 4, step 2)...
	mgr.Plug(1, func(n int) {
		fmt.Printf("[%7.1fms] plugged %d partition(s)\n", sched.Now().Sub(0).Milliseconds(), n)
	})

	// ...and the agent spawns an instance attached to it (step 3).
	proc := kernel.Spawn("function-instance")
	mgr.Attach(proc, func(p *core.Partition) {
		fmt.Printf("[%7.1fms] instance attached to partition %d\n",
			sched.Now().Sub(0).Milliseconds(), p.ID)
		// The instance lazily faults in 300 MiB of anonymous memory,
		// confined to its partition.
		work, ok := kernel.TouchAnon(proc, 300*units.MiB, guestos.HugeOrder)
		fmt.Printf("           touched 300 MiB (fault work %v, fit=%v)\n", work, ok)
		fmt.Printf("           partition usage: %s\n",
			units.HumanBytes(units.PagesToBytes(p.Zone.NrAllocated())))

		// The instance terminates; its partition drains to zero and
		// becomes reclaimable.
		kernel.Exit(proc)
		fmt.Printf("           instance exited; reclaimable partitions: %d\n",
			mgr.FreeReclaimable())

		// Scale down: unplug the partition instantly — no migrations,
		// no zeroing (steps 5-6).
		start := sched.Now()
		mgr.Unplug(1, func(res core.UnplugResult) {
			fmt.Printf("[%7.1fms] unplugged %s in %v (migration=0, zeroing=0)\n",
				sched.Now().Sub(0).Milliseconds(),
				units.HumanBytes(res.ReclaimedBytes),
				sched.Now().Sub(start))
			fmt.Printf("           host frames now populated: %s\n",
				units.HumanBytes(units.PagesToBytes(vm.PopulatedPages())))
		})
	})

	sched.Run()
}
