package squeezy_test

import (
	"runtime"
	"testing"

	"squeezy/internal/experiments"
	"squeezy/internal/units"
)

// The figure benchmarks go through the experiment registry: every
// registered driver gets a sub-benchmark that regenerates its table.
// Use -short for the reduced (Quick) protocols. Headline quantities
// per figure live in EXPERIMENTS.md and in the drivers' JSON output
// (`squeezyctl -format json all`).

// BenchmarkExperiments regenerates each registered experiment's table
// and reports its row count, so a driver that silently stops
// producing output shows up as a metric change.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range experiments.All() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			o := experiments.Options{Seed: 1, Quick: testing.Short()}
			for i := 0; i < b.N; i++ {
				tab := e.Run(o).Table()
				if tab == nil || len(tab.Rows) == 0 {
					b.Fatalf("%s produced an empty table", e.Name())
				}
				b.ReportMetric(float64(len(tab.Rows)), "rows")
			}
		})
	}
}

// BenchmarkRunnerParallel measures the worker-pool runner end to end:
// every registered experiment in Quick mode across GOMAXPROCS
// workers. Compare with -cpu 1 to see the fan-out win.
func BenchmarkRunnerParallel(b *testing.B) {
	names := experiments.Names()
	for i := 0; i < b.N; i++ {
		reports, err := experiments.Run(names, experiments.Options{Seed: 1, Quick: true}, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(reports)), "experiments")
	}
}

// BenchmarkStreamBytesPerInvocation tracks the streaming replay's
// memory economy on the cluster-diurnal cell shape: cumulative
// allocation per invocation (churn the collector absorbs) and peak
// live heap per invocation (what actually stays resident — the figure
// that must not scale with trace length). Regressions here are caught
// hard by TestStreamingMemoryBounded; the metrics make drift visible
// before it trips that gate.
func BenchmarkStreamBytesPerInvocation(b *testing.B) {
	days := 0.25
	if testing.Short() {
		days = 0.02
	}
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		n, peak := experiments.StreamMemProbe(days, 1)
		runtime.ReadMemStats(&after)
		if n == 0 {
			b.Fatal("degenerate streaming cell: no invocations")
		}
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(n), "alloc-B/inv")
		b.ReportMetric(float64(peak)/float64(n), "live-B/inv")
	}
}

// Ablations keep parameterized benchmarks: the registry runs each
// sweep as one experiment, while these isolate single configurations.

// BenchmarkAblationBatching measures the §8 future-work optimization:
// batching the per-block VM exits of one unplug request into one exit.
func BenchmarkAblationBatching(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "unbatched"
		if batched {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationBatching(batched, 2*units.GiB)
				b.ReportMetric(ms, "unplug-2GiB-ms")
			}
		})
	}
}

// BenchmarkAblationZeroing isolates the §2.2 zeroing tax on the vanilla
// unplug path (24% of latency in the paper).
func BenchmarkAblationZeroing(b *testing.B) {
	for _, zero := range []bool{true, false} {
		name := "zeroing-on"
		if !zero {
			name = "zeroing-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationZeroing(zero)
				b.ReportMetric(ms, "unplug-512MiB-ms")
			}
		})
	}
}

// BenchmarkAblationCandidatePolicy compares virtio-mem block-selection
// policies: the effective emptiest-first behaviour vs a naive top-down
// scan.
func BenchmarkAblationCandidatePolicy(b *testing.B) {
	for _, policy := range []string{"emptiest", "highest"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationCandidatePolicy(policy)
				b.ReportMetric(ms, "unplug-512MiB-ms")
			}
		})
	}
}

// BenchmarkAblationPartitionSize sweeps the Squeezy partition rated
// size: unplug latency scales linearly with blocks per partition.
func BenchmarkAblationPartitionSize(b *testing.B) {
	for _, mib := range []int64{128, 512, 2048} {
		b.Run(units.HumanBytes(mib*units.MiB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationPartitionSize(mib * units.MiB)
				b.ReportMetric(ms, "unplug-one-partition-ms")
			}
		})
	}
}
