package squeezy_test

import (
	"testing"

	"squeezy/internal/experiments"
	"squeezy/internal/units"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation and reports the figure's headline quantity as a custom
// metric. Use -short for the reduced (Quick) protocols.

func opts(b *testing.B) experiments.Options {
	return experiments.Options{Seed: 1, Quick: testing.Short()}
}

func BenchmarkFig1StaticVMIdleMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig1(opts(b))
		b.ReportMetric(res.HostUsage.Max(), "host-peak-GiB")
		b.ReportMetric(res.Guest.Max()-last(res.Guest.Values), "guest-drop-GiB")
	}
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}

func BenchmarkFig2InstanceChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(opts(b))
		b.ReportMetric(float64(res.PeakCreations()), "peak-creations/min")
		b.ReportMetric(float64(res.PeakEvictions()), "peak-evictions/min")
	}
}

func BenchmarkFig5ReclaimLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5(opts(b))
		b.ReportMetric(res.Speedup("virtio-mem", "squeezy"), "squeezy-speedup-x")
		b.ReportMetric(res.Speedup("balloon", "virtio-mem"), "virtiomem-over-balloon-x")
	}
}

func BenchmarkFig6UtilizationSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6(opts(b))
		var sqMax, vmMax float64
		for _, p := range res.Points {
			if p.Method == "squeezy" && p.LatencyMs > sqMax {
				sqMax = p.LatencyMs
			}
			if p.Method == "virtio-mem" && p.LatencyMs > vmMax {
				vmMax = p.LatencyMs
			}
		}
		b.ReportMetric(sqMax, "squeezy-worst-ms")
		b.ReportMetric(vmMax, "virtiomem-worst-ms")
	}
}

func BenchmarkFig7ReclaimCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(opts(b))
		for _, s := range res.Series {
			switch s.Method {
			case "squeezy":
				b.ReportMetric(s.AvgGuest(), "squeezy-guest-avg-%")
			case "virtio-mem":
				b.ReportMetric(s.PeakGuest(), "virtiomem-guest-peak-%")
			case "balloon":
				b.ReportMetric(s.PeakHost(), "balloon-host-peak-%")
			}
		}
	}
}

func BenchmarkFig8ReclaimThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(opts(b))
		b.ReportMetric(res.Geomean("squeezy")/res.Geomean("virtio-mem"), "geomean-speedup-x")
		b.ReportMetric(res.Geomean("squeezy"), "squeezy-MiB/s")
	}
}

func BenchmarkFig9Interference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(opts(b))
		for _, s := range res.Series {
			slow := 0.0
			if base := s.Baseline(); base > 0 {
				slow = s.PeakDuring() / base
			}
			b.ReportMetric(slow, s.Method+"-slowdown-x")
		}
	}
}

func BenchmarkFig10RestrictedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(opts(b))
		b.ReportMetric(res.GeomeanP99("squeezy"), "squeezy-p99-x")
		b.ReportMetric(res.GeomeanP99("virtio-mem"), "virtiomem-p99-x")
		b.ReportMetric(res.GeomeanP99("harvestvm-opts"), "harvest-p99-x")
		b.ReportMetric(res.GiBs("squeezy"), "squeezy-GiBs")
	}
}

func BenchmarkFig11ModelsComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(opts(b))
		b.ReportMetric(res.ColdStartSpeedup(), "n1-coldstart-speedup-x")
		b.ReportMetric(res.FootprintRatio(), "1to1-footprint-ratio-x")
	}
}

func BenchmarkPlugLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.PlugLatency(opts(b))
		var sum float64
		for _, row := range res.Rows {
			sum += row.PlugMs
		}
		b.ReportMetric(sum/float64(len(res.Rows)), "avg-plug-ms")
	}
}

// Ablations: design choices DESIGN.md calls out.

// BenchmarkAblationBatching measures the §8 future-work optimization:
// batching the per-block VM exits of one unplug request into one exit.
func BenchmarkAblationBatching(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "unbatched"
		if batched {
			name = "batched"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationBatching(batched, 2*units.GiB)
				b.ReportMetric(ms, "unplug-2GiB-ms")
			}
		})
	}
}

// BenchmarkAblationZeroing isolates the §2.2 zeroing tax on the vanilla
// unplug path (24% of latency in the paper).
func BenchmarkAblationZeroing(b *testing.B) {
	for _, zero := range []bool{true, false} {
		name := "zeroing-on"
		if !zero {
			name = "zeroing-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationZeroing(zero)
				b.ReportMetric(ms, "unplug-512MiB-ms")
			}
		})
	}
}

// BenchmarkAblationCandidatePolicy compares virtio-mem block-selection
// policies: the effective emptiest-first behaviour vs a naive top-down
// scan.
func BenchmarkAblationCandidatePolicy(b *testing.B) {
	for _, policy := range []string{"emptiest", "highest"} {
		b.Run(policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationCandidatePolicy(policy)
				b.ReportMetric(ms, "unplug-512MiB-ms")
			}
		})
	}
}

// BenchmarkAblationPartitionSize sweeps the Squeezy partition rated
// size: unplug latency scales linearly with blocks per partition.
func BenchmarkAblationPartitionSize(b *testing.B) {
	for _, mib := range []int64{128, 512, 2048} {
		b.Run(units.HumanBytes(mib*units.MiB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ms := experiments.AblationPartitionSize(mib * units.MiB)
				b.ReportMetric(ms, "unplug-one-partition-ms")
			}
		})
	}
}
